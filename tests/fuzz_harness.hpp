// Shared fuzz entry points for the untrusted-input boundary (ISSUE 8).
//
// Contract under test: PcapReader and WireParser sit on the trust boundary
// — their input is capture bytes from outside the process. For ARBITRARY
// bytes they must either succeed, skip-with-a-counted-drop, or throw a
// structured exception (std::runtime_error / core::CorruptArtifactError);
// they must never crash, hang, overflow a buffer, or allocate
// proportionally to an attacker-controlled length field. The harness
// additionally checks the accounting invariants that make drops auditable.
//
// The same two functions back three drivers:
//   * tests/test_fuzz_io.cpp — corpus replay + deterministic mutation
//     sweeps, run under ctest (and ASan/UBSan in CI);
//   * tools/fuzz_pcap.cpp / tools/fuzz_wire.cpp — libFuzzer entry points
//     (LLVMFuzzerTestOneInput), built only with -DPEGASUS_FUZZERS=ON.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>

#include "io/pcap.hpp"
#include "io/wire.hpp"

namespace pegasus::fuzz {

namespace detail {

[[noreturn]] inline void Die(const char* what, const char* detail) {
  // A violated invariant must be fatal even in a libFuzzer build (where
  // there is no gtest to fail the test): abort so the fuzzer minimizes it.
  std::fprintf(stderr, "fuzz invariant violated: %s (%s)\n", what, detail);
  std::abort();
}

}  // namespace detail

/// Feeds `data` to PcapReader as a whole capture file. Returns the number
/// of records successfully decoded (0 when the header itself is rejected).
inline std::size_t FuzzPcap(std::span<const std::uint8_t> data) {
  std::stringstream in(std::string(
      reinterpret_cast<const char*>(data.data()), data.size()));
  std::size_t decoded = 0;
  try {
    io::PcapReader reader(in);
    io::PcapRecord rec;
    while (reader.Next(rec)) {
      // Every accepted record honours the configured ceiling — the reader
      // must never hand back a buffer a corrupt length field sized.
      if (rec.data.size() > io::kMaxRecordBytes) {
        detail::Die("PcapReader record above kMaxRecordBytes",
                    std::to_string(rec.data.size()).c_str());
      }
      ++decoded;
    }
    if (reader.records() != decoded) {
      detail::Die("PcapReader records() != decoded count", "");
    }
  } catch (const std::runtime_error&) {
    // Structured rejection is a valid outcome for garbage input.
  }
  return decoded;
}

/// Feeds `data` to WireParser as one captured frame. Returns true when the
/// frame parsed.
inline bool FuzzWire(std::span<const std::uint8_t> data) {
  io::WireParser parser;
  io::ParsedPacket out;
  const bool ok = parser.Parse(data, /*ts_us=*/1'000'000, out);
  const auto& s = parser.stats();
  // Exactly-one-outcome accounting: every frame lands in `parsed` or in
  // exactly one drop counter.
  if (s.frames != s.parsed + s.truncated + s.non_ip + s.non_l4 + s.fragments) {
    detail::Die("WireParser drop counters do not partition frames", "");
  }
  if (ok != (s.parsed == 1)) {
    detail::Die("WireParser return value disagrees with parsed counter", "");
  }
  if (ok && out.payload_captured > pegasus::traffic::kRawBytesPerPacket) {
    detail::Die("payload_captured above the window size", "");
  }
  return ok;
}

}  // namespace pegasus::fuzz
