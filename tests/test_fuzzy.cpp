#include "core/fuzzy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace core = pegasus::core;

namespace {

std::vector<float> TwoClusterData(std::size_t n, std::uint64_t seed) {
  // Two well-separated 2-D blobs at (40, 40) and (200, 200).
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> noise(0.0f, 6.0f);
  std::vector<float> data;
  for (std::size_t i = 0; i < n; ++i) {
    const float cx = i % 2 == 0 ? 40.0f : 200.0f;
    data.push_back(std::clamp(cx + noise(rng), 0.0f, 255.0f));
    data.push_back(std::clamp(cx + noise(rng), 0.0f, 255.0f));
  }
  return data;
}

}  // namespace

TEST(ClusterTree, SingleLeafIsGlobalMean) {
  const std::vector<float> data{10, 20, 30, 40, 50, 60};
  auto tree = core::ClusterTree::Fit(data, 3, 2, {1, 8, 1});
  ASSERT_EQ(tree.NumLeaves(), 1u);
  EXPECT_FLOAT_EQ(tree.Centroid(0)[0], 30.0f);
  EXPECT_FLOAT_EQ(tree.Centroid(0)[1], 40.0f);
  EXPECT_EQ(tree.Depth(), 0u);
}

TEST(ClusterTree, SeparatesTwoBlobs) {
  const auto data = TwoClusterData(200, 1);
  auto tree = core::ClusterTree::Fit(data, 200, 2, {2, 8, 1});
  ASSERT_EQ(tree.NumLeaves(), 2u);
  const float lo[] = {40.0f, 40.0f};
  const float hi[] = {200.0f, 200.0f};
  const std::size_t leaf_lo = tree.Lookup(lo);
  const std::size_t leaf_hi = tree.Lookup(hi);
  EXPECT_NE(leaf_lo, leaf_hi);
  EXPECT_NEAR(tree.Centroid(leaf_lo)[0], 40.0f, 4.0f);
  EXPECT_NEAR(tree.Centroid(leaf_hi)[0], 200.0f, 4.0f);
}

TEST(ClusterTree, SseMonotoneInLeafCount) {
  const auto data = TwoClusterData(300, 2);
  double prev = 1e18;
  for (std::size_t leaves : {1u, 2u, 4u, 8u, 16u}) {
    auto tree = core::ClusterTree::Fit(data, 300, 2,
                                       {leaves, 8, 1});
    EXPECT_LE(tree.fit_sse(), prev + 1e-6)
        << "SSE must not increase with more leaves (" << leaves << ")";
    prev = tree.fit_sse();
  }
}

TEST(ClusterTree, FigureThreeExample) {
  // The paper's Figure 3 dataset: (1,2),(2,2),(2,3),(1,7),(3,8),(4,9),
  // (5,10). The figure's first split is x1 <= 5 (the min-SSE split),
  // separating the bottom blob {(1,2),(2,2),(2,3)} from the top one.
  // Deeper splits are greedy-tie-break dependent, so we assert the
  // 2-leaf tree exactly and sanity-check the 4-leaf routing.
  const std::vector<float> data{1, 2, 2, 2, 2, 3, 1, 7, 3, 8, 4, 9, 5, 10};
  auto two = core::ClusterTree::Fit(data, 7, 2, {2, 4, 1});
  ASSERT_EQ(two.NumLeaves(), 2u);
  const float bottom[] = {2.0f, 2.0f};
  const float top[] = {3.0f, 8.0f};
  const auto leaf_bottom = two.Lookup(bottom);
  const auto leaf_top = two.Lookup(top);
  ASSERT_NE(leaf_bottom, leaf_top);
  EXPECT_NEAR(two.Centroid(leaf_bottom)[0], 5.0f / 3.0f, 1e-4f);
  EXPECT_NEAR(two.Centroid(leaf_bottom)[1], 7.0f / 3.0f, 1e-4f);
  EXPECT_NEAR(two.Centroid(leaf_top)[0], 13.0f / 4.0f, 1e-4f);
  EXPECT_NEAR(two.Centroid(leaf_top)[1], 34.0f / 4.0f, 1e-4f);

  // With 4 leaves, the Figure 2 probe (3,7) must land in a top-blob leaf
  // whose centroid stays near the probe (fuzzy matching's whole point).
  auto four = core::ClusterTree::Fit(data, 7, 2, {4, 4, 1});
  ASSERT_EQ(four.NumLeaves(), 4u);
  const float probe[] = {3.0f, 7.0f};
  const auto leaf = four.Lookup(probe);
  EXPECT_GT(four.Centroid(leaf)[1], 5.0f);  // top blob
  EXPECT_NEAR(four.Centroid(leaf)[0], 3.0f, 2.0f);
}

TEST(ClusterTree, LeafBoxesTileTheDomain) {
  // Every point in the domain must fall in exactly one leaf box, and that
  // leaf must equal tree traversal — the property TCAM lowering relies on.
  const auto data = TwoClusterData(150, 3);
  auto tree = core::ClusterTree::Fit(data, 150, 2, {8, 8, 1});
  std::mt19937_64 rng(4);
  std::uniform_int_distribution<int> dist(0, 255);
  for (int trial = 0; trial < 2000; ++trial) {
    const float x[] = {static_cast<float>(dist(rng)),
                       static_cast<float>(dist(rng))};
    const std::size_t leaf = tree.Lookup(x);
    std::size_t boxes_containing = 0;
    std::size_t box_leaf = 0;
    for (std::size_t l = 0; l < tree.NumLeaves(); ++l) {
      const auto& box = tree.Box(l);
      bool inside = true;
      for (std::size_t d = 0; d < 2; ++d) {
        const auto v = static_cast<std::uint32_t>(x[d]);
        if (v < box.lo[d] || v > box.hi[d]) {
          inside = false;
          break;
        }
      }
      if (inside) {
        ++boxes_containing;
        box_leaf = l;
      }
    }
    ASSERT_EQ(boxes_containing, 1u);
    EXPECT_EQ(box_leaf, leaf);
  }
}

TEST(ClusterTree, LookupClampsOutOfDomain) {
  const auto data = TwoClusterData(100, 5);
  auto tree = core::ClusterTree::Fit(data, 100, 2, {4, 8, 1});
  const float big[] = {1e6f, 1e6f};
  const float neg[] = {-5.0f, -5.0f};
  EXPECT_NO_THROW(tree.Lookup(big));
  EXPECT_NO_THROW(tree.Lookup(neg));
}

TEST(ClusterTree, CentroidRefinementIsVisible) {
  const auto data = TwoClusterData(100, 6);
  auto tree = core::ClusterTree::Fit(data, 100, 2, {2, 8, 1});
  auto c = tree.MutableCentroid(0);
  c[0] = 123.0f;
  EXPECT_FLOAT_EQ(tree.Centroid(0)[0], 123.0f);
}

TEST(ClusterTree, RejectsBadInput) {
  const std::vector<float> data{1, 2};
  EXPECT_THROW(core::ClusterTree::Fit(data, 0, 2, {2, 8, 1}),
               std::invalid_argument);
  EXPECT_THROW(core::ClusterTree::Fit(data, 1, 2, {0, 8, 1}),
               std::invalid_argument);
  EXPECT_THROW(core::ClusterTree::Fit(data, 1, 2, {2, 0, 1}),
               std::invalid_argument);
  auto tree = core::ClusterTree::Fit(data, 1, 2, {1, 8, 1});
  const float wrong_dim[] = {1.0f};
  EXPECT_THROW(tree.Lookup(wrong_dim), std::invalid_argument);
}

class LeafSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LeafSweep, TreeNeverExceedsRequestedLeaves) {
  const auto data = TwoClusterData(256, 7);
  auto tree = core::ClusterTree::Fit(data, 256, 2, {GetParam(), 8, 1});
  EXPECT_LE(tree.NumLeaves(), GetParam());
  EXPECT_GE(tree.NumLeaves(), 1u);
  // Depth bounded by leaves-1 (worst case chain).
  EXPECT_LE(tree.Depth(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sizes, LeafSweep,
                         ::testing::Values(1, 2, 3, 7, 16, 64, 256));
