#include "core/program.hpp"
#include <cmath>

#include <gtest/gtest.h>

#include "core/operators.hpp"

namespace core = pegasus::core;

TEST(Program, BuilderProducesValidMatMulDecomposition) {
  // Table 3's worked example: Partition -> Map (per-segment product) ->
  // SumReduce reproduces a MatMul.
  core::ProgramBuilder b(4);
  // y = x * W, W = [[1],[2],[3],[4]] (4x1).
  const std::vector<float> w{1, 2, 3, 4};
  const core::ValueId y = core::AppendFullyConnected(
      b, b.input(), w, 4, 1, {}, 2, 4);
  core::Program p = b.Finish(y);
  const std::vector<float> x{1, 1, 2, 2};
  const auto out = p.Evaluate(x);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FLOAT_EQ(out[0], 1 + 2 + 6 + 8);
}

TEST(Program, SoftmaxAsMapSumReduceMap) {
  // §5's Multi-Input Operation example: exp Maps, SumReduce, normalize.
  // Our IR needs the final normalize keyed on (sum, x_i); here we verify
  // the exp+sum part evaluates correctly.
  core::ProgramBuilder b(3);
  auto segs = b.PartitionExplicit(
      b.input(), std::vector<std::pair<std::size_t, std::size_t>>{
                     {0, 1}, {1, 1}, {2, 1}});
  std::vector<core::ValueId> exps;
  for (auto s : segs) {
    exps.push_back(b.Map(
        s,
        core::MakeSubnet("exp", 1, 1,
                         [](std::span<const float> x) {
                           return std::vector<float>{std::exp(x[0])};
                         }),
        16));
  }
  const auto sum = b.SumReduce(std::span<const core::ValueId>(exps));
  core::Program p = b.Finish(sum);
  const std::vector<float> x{0.0f, 1.0f, 2.0f};
  EXPECT_NEAR(p.Evaluate(x)[0],
              std::exp(0.0f) + std::exp(1.0f) + std::exp(2.0f), 1e-4f);
}

TEST(Program, ConcatPacksSegments) {
  core::ProgramBuilder b(4);
  auto segs = b.Partition(b.input(), 2, 2);
  // Swap the two halves.
  const auto out = b.Concat({segs[1], segs[0]});
  core::Program p = b.Finish(out);
  const auto y = p.Evaluate(std::vector<float>{1, 2, 3, 4});
  EXPECT_EQ(y, (std::vector<float>{3, 4, 1, 2}));
}

TEST(Program, ValidateCatchesUseBeforeDef) {
  core::Program p;
  const auto in = p.AddValue("in", 2);
  const auto bogus = p.AddValue("bogus", 2);
  const auto out = p.AddValue("out", 2);
  p.SetInput(in);
  p.SetOutput(out);
  core::Op op;
  op.kind = core::OpKind::kMap;
  op.map.input = bogus;  // never defined
  op.map.output = out;
  op.map.fn = core::MakeReLU(2);
  p.Append(std::move(op));
  EXPECT_THROW(p.Validate(), std::logic_error);
}

TEST(Program, ValidateCatchesDimMismatch) {
  core::Program p;
  const auto in = p.AddValue("in", 2);
  const auto out = p.AddValue("out", 3);
  p.SetInput(in);
  p.SetOutput(out);
  core::Op op;
  op.kind = core::OpKind::kMap;
  op.map.input = in;
  op.map.output = out;
  op.map.fn = core::MakeReLU(2);  // out_dim 2 != 3
  p.Append(std::move(op));
  EXPECT_THROW(p.Validate(), std::logic_error);
}

TEST(Program, ValidateCatchesUnproducedOutput) {
  core::Program p;
  const auto in = p.AddValue("in", 2);
  const auto out = p.AddValue("out", 2);
  p.SetInput(in);
  p.SetOutput(out);
  EXPECT_THROW(p.Validate(), std::logic_error);
}

TEST(Program, PartitionOutOfRangeRejected) {
  core::Program p;
  const auto in = p.AddValue("in", 4);
  const auto seg = p.AddValue("seg", 3);
  p.SetInput(in);
  p.SetOutput(seg);
  core::Op op;
  op.kind = core::OpKind::kPartition;
  op.partition.input = in;
  op.partition.segments.push_back({3, 3, seg});  // 3+3 > 4
  p.Append(std::move(op));
  EXPECT_THROW(p.Validate(), std::logic_error);
}

TEST(MapFunction, ComposePipesAndIntersectsFlags) {
  auto relu = core::MakeReLU(3);
  auto scale = core::MakeAffine({2, 2, 2}, {0, 0, 0}, "x2");
  EXPECT_TRUE(scale.additive);
  auto combo = core::Compose(relu, scale);
  EXPECT_TRUE(combo.elementwise);
  EXPECT_FALSE(combo.additive);  // relu is not additive
  const std::vector<float> x{-1, 0.5f, 2};
  const auto y = combo.fn(x);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 1.0f);
  EXPECT_FLOAT_EQ(y[2], 4.0f);
  EXPECT_THROW(core::Compose(core::MakeReLU(2), core::MakeReLU(3)),
               std::invalid_argument);
}

TEST(MapFunction, SliceElementwiseMatchesFullApplication) {
  auto aff = core::MakeAffine({1, 2, 3, 4}, {10, 20, 30, 40}, "aff");
  auto slice = core::SliceElementwise(aff, 1, 2);
  const std::vector<float> seg{5, 6};
  const auto y = slice.fn(seg);
  EXPECT_FLOAT_EQ(y[0], 2 * 5 + 20);
  EXPECT_FLOAT_EQ(y[1], 3 * 6 + 30);
  EXPECT_THROW(core::SliceElementwise(core::MakeMaxFn(4), 0, 2),
               std::invalid_argument);
}

TEST(Operators, LinearAdditivityFlagTracksBias) {
  EXPECT_TRUE(core::MakeLinear({1, 2}, 2, 1, {}).additive);
  EXPECT_FALSE(core::MakeLinear({1, 2}, 2, 1, {0.5f}).additive);
}

TEST(Operators, EmbeddingLookupClamps) {
  auto emb = core::MakeEmbeddingFn({1, 2, 3, 4, 5, 6}, 3, 2);
  EXPECT_EQ(emb.fn(std::vector<float>{1.0f}), (std::vector<float>{3, 4}));
  EXPECT_EQ(emb.fn(std::vector<float>{99.0f}), (std::vector<float>{5, 6}));
  EXPECT_EQ(emb.fn(std::vector<float>{-1.0f}), (std::vector<float>{1, 2}));
}

TEST(Operators, PoolingFunctions) {
  auto mx = core::MakeMaxFn(4);
  auto mean = core::MakeMeanFn(4);
  const std::vector<float> x{1, 5, 2, 0};
  EXPECT_FLOAT_EQ(mx.fn(x)[0], 5.0f);
  EXPECT_FLOAT_EQ(mean.fn(x)[0], 2.0f);
  EXPECT_TRUE(mean.additive);
  EXPECT_FALSE(mx.additive);
}
