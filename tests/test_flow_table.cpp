// FlowTable property tests: the preallocated open-addressing table must
// evict deterministically under overflow, never corrupt surviving flows,
// and account every hit/miss/insert/eviction in its stats — the invariants
// the StreamServer's shards rely on (ISSUE 2 satellite).
#include "runtime/flow_table.hpp"

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>
#include <stdexcept>
#include <vector>

namespace rt = pegasus::runtime;
using pegasus::dataplane::FlowKey;

namespace {

struct Tag {
  std::uint64_t value = 0;
};

std::vector<FlowKey> RandomKeys(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::set<std::uint64_t> seen;
  std::vector<FlowKey> keys;
  while (keys.size() < n) {
    const std::uint64_t d = rng();
    if (seen.insert(d).second) keys.push_back(FlowKey{d});
  }
  return keys;
}

/// The per-key canary value: any slot mixing between flows shows up as a
/// mismatched tag.
std::uint64_t TagFor(const FlowKey& k) { return k.digest ^ 0x5A5A5A5A5A5A5A5Aull; }

}  // namespace

TEST(FlowTable, InsertFindRoundtripWithinCapacity) {
  rt::FlowTable<Tag> table(64, 8);
  EXPECT_EQ(table.capacity(), 64u);
  const auto keys = RandomKeys(40, 1);
  for (const auto& k : keys) {
    Tag& t = table.FindOrInsert(k);
    EXPECT_EQ(t.value, 0u);  // fresh entries are value-initialized
    t.value = TagFor(k);
  }
  EXPECT_EQ(table.size(), 40u);
  for (const auto& k : keys) {
    Tag* t = table.Find(k);
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->value, TagFor(k));
  }
  EXPECT_EQ(table.stats().inserts, 40u);
  EXPECT_EQ(table.stats().hits, 40u);  // the Find pass
  EXPECT_EQ(table.stats().evictions, 0u);
}

TEST(FlowTable, CapacityRoundsUpToPowerOfTwo) {
  rt::FlowTable<Tag> table(100, 8);
  EXPECT_EQ(table.capacity(), 128u);
  // Probe length is clamped to the table size.
  rt::FlowTable<Tag> tiny(2, 64);
  EXPECT_EQ(tiny.capacity(), 2u);
  EXPECT_EQ(tiny.max_probe(), 2u);
}

TEST(FlowTable, RejectsZeroCapacityOrProbe) {
  EXPECT_THROW(rt::FlowTable<Tag>(0, 8), std::invalid_argument);
  EXPECT_THROW(rt::FlowTable<Tag>(8, 0), std::invalid_argument);
}

TEST(FlowTable, MissingKeyIsAMiss) {
  rt::FlowTable<Tag> table(16, 4);
  EXPECT_EQ(table.Find(FlowKey{42}), nullptr);
  EXPECT_EQ(table.stats().misses, 1u);
  EXPECT_EQ(table.stats().hits, 0u);
}

// The core overflow property: inserting far more flows than capacity (1)
// evicts — never rejects; (2) leaves every surviving entry carrying exactly
// its own flow's value; (3) accounts evictions == inserts - residents; and
// (4) is a pure function of the insertion sequence.
TEST(FlowTable, OverflowEvictsDeterministicallyWithoutCorruption) {
  const auto keys = RandomKeys(512, 7);

  auto fill = [&](rt::FlowTable<Tag>& table) {
    for (const auto& k : keys) {
      table.FindOrInsert(k).value = TagFor(k);
    }
  };

  rt::FlowTable<Tag> a(64, 8);
  fill(a);
  const rt::FlowTableStats after_fill = a.stats();  // before the Find pass
  EXPECT_EQ(after_fill.inserts, 512u);
  EXPECT_EQ(after_fill.misses, 512u);  // all keys distinct
  EXPECT_EQ(a.size(), 64u);            // table ends full
  EXPECT_EQ(after_fill.evictions, after_fill.inserts - a.size());

  // Survivors are intact; evicted keys are genuinely gone.
  std::set<std::uint64_t> survivors_a;
  std::size_t found = 0;
  for (const auto& k : keys) {
    Tag* t = a.Find(k);
    if (t == nullptr) continue;
    ++found;
    EXPECT_EQ(t->value, TagFor(k)) << "flow state corrupted";
    survivors_a.insert(k.digest);
  }
  EXPECT_EQ(found, a.size());

  // Replaying the same sequence yields the same survivors and stats.
  rt::FlowTable<Tag> b(64, 8);
  fill(b);
  EXPECT_EQ(b.stats().inserts, after_fill.inserts);
  EXPECT_EQ(b.stats().evictions, after_fill.evictions);
  EXPECT_EQ(b.stats().probes, after_fill.probes);
  std::set<std::uint64_t> survivors_b;
  for (const auto& k : keys) {
    if (b.Find(k) != nullptr) survivors_b.insert(k.digest);
  }
  EXPECT_EQ(survivors_a, survivors_b);
}

TEST(FlowTable, EvictionResetsStateInsteadOfMerging) {
  // Tiny table: every insert past capacity must evict and hand back a
  // value-initialized entry, not the victim's leftovers.
  rt::FlowTable<Tag> table(4, 4);
  const auto keys = RandomKeys(64, 11);
  for (const auto& k : keys) {
    Tag& t = table.FindOrInsert(k);
    EXPECT_EQ(t.value, 0u) << "evicted slot leaked state into a new flow";
    t.value = TagFor(k);
  }
  EXPECT_GT(table.stats().evictions, 0u);
}

TEST(FlowTable, RecentlyTouchedFlowSurvivesEviction) {
  // Window == whole table, so the eviction victim is the global LRU entry.
  rt::FlowTable<Tag> table(8, 8);
  const auto keys = RandomKeys(9, 13);
  for (std::size_t i = 0; i < 8; ++i) {
    table.FindOrInsert(keys[i]).value = TagFor(keys[i]);
  }
  ASSERT_EQ(table.size(), 8u);
  // Refresh key 0; key 1 becomes the LRU.
  ASSERT_NE(table.Find(keys[0]), nullptr);
  table.FindOrInsert(keys[8]).value = TagFor(keys[8]);
  EXPECT_EQ(table.stats().evictions, 1u);
  EXPECT_NE(table.Find(keys[0]), nullptr) << "refreshed flow was evicted";
  EXPECT_EQ(table.Find(keys[1]), nullptr) << "LRU flow should have gone";
  EXPECT_NE(table.Find(keys[8]), nullptr);
}

TEST(FlowTable, ClearDropsEntriesKeepsCapacity) {
  // Low load factor so no probe window can fill up and evict.
  rt::FlowTable<Tag> table(256, 8);
  for (const auto& k : RandomKeys(20, 17)) table.FindOrInsert(k);
  EXPECT_EQ(table.size(), 20u);
  table.Clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.capacity(), 256u);
  for (const auto& k : RandomKeys(20, 17)) {
    EXPECT_EQ(table.Find(k), nullptr);
  }
}

TEST(FlowTable, PrefetchIsSideEffectFree) {
  // Prefetch is a pure hint: it must not touch stats, size, or entries —
  // before OR after the key is resident (the burst-drain path prefetches
  // every popped key, misses included).
  rt::FlowTable<Tag> table(64, 8);
  const FlowKey key{0xDEADBEEFCAFEull};
  table.Prefetch(key);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.stats().hits + table.stats().misses, 0u);
  table.FindOrInsert(key).value = TagFor(key);
  table.Prefetch(key);
  const Tag* t = table.Find(key);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->value, TagFor(key));
  EXPECT_EQ(table.stats().inserts, 1u);
}

TEST(FlowTable, SramBitsMatchesDataplaneAccounting) {
  rt::FlowTable<Tag> table(1000, 8);  // rounds to 1024 slots
  const std::size_t bits_per_flow = 208;
  EXPECT_EQ(table.SramBits(bits_per_flow),
            pegasus::dataplane::FlowTableSramBits(bits_per_flow, 1024));
  // 208 bits round to 26 bytes; + 16-bit digest = 224 bits/slot.
  EXPECT_EQ(table.SramBits(bits_per_flow), 224u * 1024u);
}

// ------------------------------------------------- split-lane layout (PR 7)

namespace {

/// Drives two tables through an identical randomized churny op mix (Find
/// probes, FindOrInsert upserts, far more distinct keys than slots, so
/// eviction runs continuously) and requires bit-identical behaviour:
/// same return outcomes, same values, same counters, same histogram.
void ExpectTablesEquivalent(rt::FlowTable<Tag>& a, rt::FlowTable<Tag>& b,
                            std::uint64_t seed) {
  const auto keys = RandomKeys(512, seed);
  std::mt19937_64 rng(seed ^ 0xF00Dull);
  for (int op = 0; op < 20'000; ++op) {
    const FlowKey& k = keys[rng() % keys.size()];
    if ((rng() & 3) == 0) {  // 25% lookups
      Tag* ta = a.Find(k);
      Tag* tb = b.Find(k);
      ASSERT_EQ(ta == nullptr, tb == nullptr) << "op " << op;
      if (ta != nullptr) ASSERT_EQ(ta->value, tb->value) << "op " << op;
    } else {
      Tag& ta = a.FindOrInsert(k);
      Tag& tb = b.FindOrInsert(k);
      ASSERT_EQ(ta.value, tb.value) << "op " << op;
      ta.value = tb.value = TagFor(k);
    }
  }
  const auto sa = a.SnapshotStats();
  const auto sb = b.SnapshotStats();
  EXPECT_EQ(sa.hits, sb.hits);
  EXPECT_EQ(sa.misses, sb.misses);
  EXPECT_EQ(sa.inserts, sb.inserts);
  EXPECT_EQ(sa.evictions, sb.evictions);
  EXPECT_EQ(sa.probes, sb.probes);
  EXPECT_EQ(sa.probe_hist, sb.probe_hist);
  EXPECT_EQ(sa.resident, sb.resident);
  EXPECT_EQ(sa.slots, sb.slots);
  EXPECT_GT(sa.evictions, 0u);  // the mix actually stressed eviction
  // Identical survivor sets with identical values.
  for (const auto& k : keys) {
    Tag* ta = a.Find(k);
    Tag* tb = b.Find(k);
    ASSERT_EQ(ta == nullptr, tb == nullptr);
    if (ta != nullptr) {
      EXPECT_EQ(ta->value, TagFor(k));
      EXPECT_EQ(tb->value, TagFor(k));
    }
  }
}

}  // namespace

TEST(FlowTable, SplitAndInterleavedAreBitEquivalent) {
  for (const auto eviction :
       {rt::FlowTableEviction::kLru, rt::FlowTableEviction::kSecondChance}) {
    rt::FlowTableOptions split;
    split.capacity = 128;
    split.max_probe = 8;
    split.layout = rt::FlowTableLayout::kSplit;
    split.eviction = eviction;
    rt::FlowTableOptions inter = split;
    inter.layout = rt::FlowTableLayout::kInterleaved;
    rt::FlowTable<Tag> a(split), b(inter);
    ExpectTablesEquivalent(a, b, 23 + static_cast<std::uint64_t>(eviction));
  }
}

TEST(FlowTable, SecondChanceIsDeterministic) {
  rt::FlowTableOptions opts;
  opts.capacity = 64;
  opts.max_probe = 8;
  opts.eviction = rt::FlowTableEviction::kSecondChance;
  rt::FlowTable<Tag> a(opts), b(opts);
  ExpectTablesEquivalent(a, b, 29);
}

TEST(FlowTable, OptionsSelectLayoutAndEviction) {
  rt::FlowTableOptions opts;
  opts.capacity = 100;  // rounds to 128
  opts.layout = rt::FlowTableLayout::kInterleaved;
  opts.eviction = rt::FlowTableEviction::kSecondChance;
  rt::FlowTable<Tag> table(opts);
  EXPECT_EQ(table.capacity(), 128u);
  EXPECT_EQ(table.layout(), rt::FlowTableLayout::kInterleaved);
  EXPECT_EQ(table.eviction(), rt::FlowTableEviction::kSecondChance);
  // The legacy (capacity, max_probe) ctor keeps the deterministic defaults
  // the MT == ST proofs rely on.
  rt::FlowTable<Tag> legacy(64);
  EXPECT_EQ(legacy.layout(), rt::FlowTableLayout::kSplit);
  EXPECT_EQ(legacy.eviction(), rt::FlowTableEviction::kLru);
  // Option validation matches the legacy ctor's.
  rt::FlowTableOptions bad;
  bad.capacity = 0;
  EXPECT_THROW(rt::FlowTable<Tag>{bad}, std::invalid_argument);
  bad.capacity = 64;
  bad.max_probe = 0;
  EXPECT_THROW(rt::FlowTable<Tag>{bad}, std::invalid_argument);
  EXPECT_STREQ(rt::FlowTableLayoutName(rt::FlowTableLayout::kSplit), "split");
  EXPECT_STREQ(rt::FlowTableEvictionName(rt::FlowTableEviction::kSecondChance),
               "second_chance");
}

TEST(FlowTable, SecondChanceProtectsReferencedEntry) {
  // capacity == max_probe == 4: every probe window covers the whole table,
  // so the scenario is exact regardless of where keys hash.
  rt::FlowTableOptions opts;
  opts.capacity = 4;
  opts.max_probe = 4;
  opts.eviction = rt::FlowTableEviction::kSecondChance;
  rt::FlowTable<Tag> table(opts);
  const auto keys = RandomKeys(5, 41);
  for (int i = 0; i < 4; ++i) {
    table.FindOrInsert(keys[static_cast<std::size_t>(i)]).value =
        TagFor(keys[static_cast<std::size_t>(i)]);
  }
  ASSERT_EQ(table.size(), 4u);
  // Reference keys[1]: a hit sets its reference bit (and only its).
  ASSERT_NE(table.Find(keys[1]), nullptr);
  // Inserting a fifth key forces an eviction. The CLOCK sweep clears
  // reference bits as it walks, so keys[1] survives this eviction no matter
  // where the sweep starts; the victim comes from the unreferenced three.
  table.FindOrInsert(keys[4]).value = TagFor(keys[4]);
  EXPECT_EQ(table.stats().evictions, 1u);
  EXPECT_EQ(table.size(), 4u);  // replaced in place, never emptied
  Tag* survivor = table.Find(keys[1]);
  ASSERT_NE(survivor, nullptr);
  EXPECT_EQ(survivor->value, TagFor(keys[1]));
  ASSERT_NE(table.Find(keys[4]), nullptr);
  int resident = 0;
  for (int i = 0; i < 4; ++i) {
    if (table.Find(keys[static_cast<std::size_t>(i)]) != nullptr) ++resident;
  }
  EXPECT_EQ(resident, 3);  // exactly one of the originals was evicted
}

TEST(FlowTable, LruEvictsExactlyTheOldestInWindow) {
  // Same whole-table-window construction, LRU policy: the victim is
  // exactly the entry with the smallest stamp — the untouched oldest.
  rt::FlowTable<Tag> table(4, 4);
  const auto keys = RandomKeys(5, 43);
  for (int i = 0; i < 4; ++i) {
    table.FindOrInsert(keys[static_cast<std::size_t>(i)]);
  }
  // Touch everything except keys[0], oldest-first ordering preserved.
  for (int i = 1; i < 4; ++i) {
    ASSERT_NE(table.Find(keys[static_cast<std::size_t>(i)]), nullptr);
  }
  table.FindOrInsert(keys[4]);
  EXPECT_EQ(table.Find(keys[0]), nullptr);  // keys[0] was the exact-LRU victim
  for (int i = 1; i < 5; ++i) {
    EXPECT_NE(table.Find(keys[static_cast<std::size_t>(i)]), nullptr);
  }
}

TEST(FlowTable, ProbeHistogramAndOccupancyAccounting) {
  rt::FlowTableOptions opts;
  opts.capacity = 64;
  opts.max_probe = 8;
  rt::FlowTable<Tag> table(opts);
  const auto keys = RandomKeys(200, 47);
  std::mt19937_64 rng(47);
  for (int op = 0; op < 5'000; ++op) {
    const FlowKey& k = keys[rng() % keys.size()];
    if ((rng() & 1) != 0) {
      table.FindOrInsert(k);
    } else {
      table.Find(k);
    }
  }
  const auto s = table.SnapshotStats();
  // Every operation lands in exactly one histogram bucket.
  std::uint64_t hist_ops = 0, hist_probes = 0;
  for (std::size_t b = 0; b < rt::FlowTableStats::kProbeHistBuckets; ++b) {
    hist_ops += s.probe_hist[b];
    hist_probes += s.probe_hist[b] * (b + 1);
  }
  EXPECT_EQ(hist_ops, s.hits + s.misses);
  EXPECT_EQ(hist_ops, 5'000u);
  // max_probe (8) < bucket count (16): the weighted sum is exact.
  EXPECT_EQ(hist_probes, s.probes);
  EXPECT_DOUBLE_EQ(s.MeanProbe(), static_cast<double>(s.probes) / 5'000.0);
  // The snapshot carries occupancy; the live counters do not.
  EXPECT_EQ(s.resident, table.size());
  EXPECT_EQ(s.slots, table.capacity());
  EXPECT_DOUBLE_EQ(s.LoadFactor(), table.LoadFactor());
  EXPECT_EQ(table.stats().resident, 0u);
  EXPECT_EQ(table.stats().slots, 0u);
  // Aggregation semantics: += sums counters, histogram, and occupancy.
  rt::FlowTableStats sum;
  sum += s;
  sum += s;
  EXPECT_EQ(sum.hits, 2 * s.hits);
  EXPECT_EQ(sum.probes, 2 * s.probes);
  EXPECT_EQ(sum.probe_hist[0], 2 * s.probe_hist[0]);
  EXPECT_EQ(sum.resident, 2 * s.resident);
  EXPECT_EQ(sum.slots, 2 * s.slots);
  EXPECT_DOUBLE_EQ(sum.LoadFactor(), s.LoadFactor());
}

TEST(FlowTable, PrefetchIsSideEffectFreeOnEveryConfiguration) {
  for (const auto layout : {rt::FlowTableLayout::kSplit,
                            rt::FlowTableLayout::kInterleaved}) {
    rt::FlowTableOptions opts;
    opts.capacity = 64;
    opts.layout = layout;
    opts.eviction = rt::FlowTableEviction::kSecondChance;
    rt::FlowTable<Tag> table(opts);
    const auto keys = RandomKeys(16, 53);
    for (const auto& k : keys) table.FindOrInsert(k).value = TagFor(k);
    const auto before = table.SnapshotStats();
    for (const auto& k : keys) table.Prefetch(k);
    table.Prefetch(FlowKey{0x1234ull});  // absent key: still a pure hint
    const auto after = table.SnapshotStats();
    EXPECT_EQ(before.hits, after.hits);
    EXPECT_EQ(before.misses, after.misses);
    EXPECT_EQ(before.probes, after.probes);
    EXPECT_EQ(before.resident, after.resident);
    for (const auto& k : keys) {
      Tag* t = table.Find(k);
      ASSERT_NE(t, nullptr);
      EXPECT_EQ(t->value, TagFor(k));
    }
  }
}
