// FlowTable property tests: the preallocated open-addressing table must
// evict deterministically under overflow, never corrupt surviving flows,
// and account every hit/miss/insert/eviction in its stats — the invariants
// the StreamServer's shards rely on (ISSUE 2 satellite).
#include "runtime/flow_table.hpp"

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>
#include <vector>

namespace rt = pegasus::runtime;
using pegasus::dataplane::FlowKey;

namespace {

struct Tag {
  std::uint64_t value = 0;
};

std::vector<FlowKey> RandomKeys(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::set<std::uint64_t> seen;
  std::vector<FlowKey> keys;
  while (keys.size() < n) {
    const std::uint64_t d = rng();
    if (seen.insert(d).second) keys.push_back(FlowKey{d});
  }
  return keys;
}

/// The per-key canary value: any slot mixing between flows shows up as a
/// mismatched tag.
std::uint64_t TagFor(const FlowKey& k) { return k.digest ^ 0x5A5A5A5A5A5A5A5Aull; }

}  // namespace

TEST(FlowTable, InsertFindRoundtripWithinCapacity) {
  rt::FlowTable<Tag> table(64, 8);
  EXPECT_EQ(table.capacity(), 64u);
  const auto keys = RandomKeys(40, 1);
  for (const auto& k : keys) {
    Tag& t = table.FindOrInsert(k);
    EXPECT_EQ(t.value, 0u);  // fresh entries are value-initialized
    t.value = TagFor(k);
  }
  EXPECT_EQ(table.size(), 40u);
  for (const auto& k : keys) {
    Tag* t = table.Find(k);
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->value, TagFor(k));
  }
  EXPECT_EQ(table.stats().inserts, 40u);
  EXPECT_EQ(table.stats().hits, 40u);  // the Find pass
  EXPECT_EQ(table.stats().evictions, 0u);
}

TEST(FlowTable, CapacityRoundsUpToPowerOfTwo) {
  rt::FlowTable<Tag> table(100, 8);
  EXPECT_EQ(table.capacity(), 128u);
  // Probe length is clamped to the table size.
  rt::FlowTable<Tag> tiny(2, 64);
  EXPECT_EQ(tiny.capacity(), 2u);
  EXPECT_EQ(tiny.max_probe(), 2u);
}

TEST(FlowTable, RejectsZeroCapacityOrProbe) {
  EXPECT_THROW(rt::FlowTable<Tag>(0, 8), std::invalid_argument);
  EXPECT_THROW(rt::FlowTable<Tag>(8, 0), std::invalid_argument);
}

TEST(FlowTable, MissingKeyIsAMiss) {
  rt::FlowTable<Tag> table(16, 4);
  EXPECT_EQ(table.Find(FlowKey{42}), nullptr);
  EXPECT_EQ(table.stats().misses, 1u);
  EXPECT_EQ(table.stats().hits, 0u);
}

// The core overflow property: inserting far more flows than capacity (1)
// evicts — never rejects; (2) leaves every surviving entry carrying exactly
// its own flow's value; (3) accounts evictions == inserts - residents; and
// (4) is a pure function of the insertion sequence.
TEST(FlowTable, OverflowEvictsDeterministicallyWithoutCorruption) {
  const auto keys = RandomKeys(512, 7);

  auto fill = [&](rt::FlowTable<Tag>& table) {
    for (const auto& k : keys) {
      table.FindOrInsert(k).value = TagFor(k);
    }
  };

  rt::FlowTable<Tag> a(64, 8);
  fill(a);
  const rt::FlowTableStats after_fill = a.stats();  // before the Find pass
  EXPECT_EQ(after_fill.inserts, 512u);
  EXPECT_EQ(after_fill.misses, 512u);  // all keys distinct
  EXPECT_EQ(a.size(), 64u);            // table ends full
  EXPECT_EQ(after_fill.evictions, after_fill.inserts - a.size());

  // Survivors are intact; evicted keys are genuinely gone.
  std::set<std::uint64_t> survivors_a;
  std::size_t found = 0;
  for (const auto& k : keys) {
    Tag* t = a.Find(k);
    if (t == nullptr) continue;
    ++found;
    EXPECT_EQ(t->value, TagFor(k)) << "flow state corrupted";
    survivors_a.insert(k.digest);
  }
  EXPECT_EQ(found, a.size());

  // Replaying the same sequence yields the same survivors and stats.
  rt::FlowTable<Tag> b(64, 8);
  fill(b);
  EXPECT_EQ(b.stats().inserts, after_fill.inserts);
  EXPECT_EQ(b.stats().evictions, after_fill.evictions);
  EXPECT_EQ(b.stats().probes, after_fill.probes);
  std::set<std::uint64_t> survivors_b;
  for (const auto& k : keys) {
    if (b.Find(k) != nullptr) survivors_b.insert(k.digest);
  }
  EXPECT_EQ(survivors_a, survivors_b);
}

TEST(FlowTable, EvictionResetsStateInsteadOfMerging) {
  // Tiny table: every insert past capacity must evict and hand back a
  // value-initialized entry, not the victim's leftovers.
  rt::FlowTable<Tag> table(4, 4);
  const auto keys = RandomKeys(64, 11);
  for (const auto& k : keys) {
    Tag& t = table.FindOrInsert(k);
    EXPECT_EQ(t.value, 0u) << "evicted slot leaked state into a new flow";
    t.value = TagFor(k);
  }
  EXPECT_GT(table.stats().evictions, 0u);
}

TEST(FlowTable, RecentlyTouchedFlowSurvivesEviction) {
  // Window == whole table, so the eviction victim is the global LRU entry.
  rt::FlowTable<Tag> table(8, 8);
  const auto keys = RandomKeys(9, 13);
  for (std::size_t i = 0; i < 8; ++i) {
    table.FindOrInsert(keys[i]).value = TagFor(keys[i]);
  }
  ASSERT_EQ(table.size(), 8u);
  // Refresh key 0; key 1 becomes the LRU.
  ASSERT_NE(table.Find(keys[0]), nullptr);
  table.FindOrInsert(keys[8]).value = TagFor(keys[8]);
  EXPECT_EQ(table.stats().evictions, 1u);
  EXPECT_NE(table.Find(keys[0]), nullptr) << "refreshed flow was evicted";
  EXPECT_EQ(table.Find(keys[1]), nullptr) << "LRU flow should have gone";
  EXPECT_NE(table.Find(keys[8]), nullptr);
}

TEST(FlowTable, ClearDropsEntriesKeepsCapacity) {
  // Low load factor so no probe window can fill up and evict.
  rt::FlowTable<Tag> table(256, 8);
  for (const auto& k : RandomKeys(20, 17)) table.FindOrInsert(k);
  EXPECT_EQ(table.size(), 20u);
  table.Clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.capacity(), 256u);
  for (const auto& k : RandomKeys(20, 17)) {
    EXPECT_EQ(table.Find(k), nullptr);
  }
}

TEST(FlowTable, PrefetchIsSideEffectFree) {
  // Prefetch is a pure hint: it must not touch stats, size, or entries —
  // before OR after the key is resident (the burst-drain path prefetches
  // every popped key, misses included).
  rt::FlowTable<Tag> table(64, 8);
  const FlowKey key{0xDEADBEEFCAFEull};
  table.Prefetch(key);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.stats().hits + table.stats().misses, 0u);
  table.FindOrInsert(key).value = TagFor(key);
  table.Prefetch(key);
  const Tag* t = table.Find(key);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->value, TagFor(key));
  EXPECT_EQ(table.stats().inserts, 1u);
}

TEST(FlowTable, SramBitsMatchesDataplaneAccounting) {
  rt::FlowTable<Tag> table(1000, 8);  // rounds to 1024 slots
  const std::size_t bits_per_flow = 208;
  EXPECT_EQ(table.SramBits(bits_per_flow),
            pegasus::dataplane::FlowTableSramBits(bits_per_flow, 1024));
  // 208 bits round to 26 bytes; + 16-bit digest = 224 bits/slot.
  EXPECT_EQ(table.SramBits(bits_per_flow), 224u * 1024u);
}
