#include "core/syntax.hpp"

#include <gtest/gtest.h>

#include "core/operators.hpp"

namespace core = pegasus::core;

namespace {

core::FunctionRegistry BasicRegistry() {
  core::FunctionRegistry reg;
  reg.Register("double2", core::MakeAffine({2, 2}, {0, 0}, "double2"));
  reg.Register("relu4", core::MakeReLU(4));
  reg.Register("sum2", core::MakeLinear({1, 1}, 2, 1, {}, "sum2"));
  reg.RegisterFamily(
      "per_seg", {core::MakeAffine({1, 1}, {10, 10}, "a0"),
                  core::MakeAffine({1, 1}, {20, 20}, "a1")});
  return reg;
}

}  // namespace

TEST(Syntax, FigureSixShapedProgramParsesAndEvaluates) {
  // The nested SumReduce(Map(Partition(...))) form of Figure 6.
  const std::string src = R"(
    # Pegasus Syntax example
    input vec[4];
    output SumReduce(Map(Partition(vec, dim=2, stride=2), fn=sum2, leaves=8));
  )";
  core::Program p =
      core::ParsePegasusSyntax(src, BasicRegistry());
  const auto y = p.Evaluate(std::vector<float>{1, 2, 3, 4});
  ASSERT_EQ(y.size(), 1u);
  EXPECT_FLOAT_EQ(y[0], 10.0f);
  EXPECT_EQ(p.NumMaps(), 2u);
}

TEST(Syntax, LetBindingsAndConcat) {
  const std::string src = R"(
    input vec[4];
    segs = Partition(vec, dim=2, stride=2);
    mapped = Map(segs, fn=double2);
    output Concat(mapped);
  )";
  core::Program p = core::ParsePegasusSyntax(src, BasicRegistry());
  const auto y = p.Evaluate(std::vector<float>{1, 2, 3, 4});
  EXPECT_EQ(y, (std::vector<float>{2, 4, 6, 8}));
}

TEST(Syntax, PerSegmentFunctionFamily) {
  const std::string src = R"(
    input vec[4];
    output Concat(Map(Partition(vec, dim=2, stride=2), fn=per_seg));
  )";
  core::Program p = core::ParsePegasusSyntax(src, BasicRegistry());
  const auto y = p.Evaluate(std::vector<float>{1, 2, 3, 4});
  EXPECT_EQ(y, (std::vector<float>{11, 12, 23, 24}));
}

TEST(Syntax, MapOnWholeVector) {
  const std::string src = R"(
    input vec[4];
    output Map(vec, fn=relu4, leaves=32);
  )";
  core::Program p = core::ParsePegasusSyntax(src, BasicRegistry());
  const auto y = p.Evaluate(std::vector<float>{-1, 2, -3, 4});
  EXPECT_EQ(y, (std::vector<float>{0, 2, 0, 4}));
}

TEST(Syntax, DefaultLeavesApplied) {
  const std::string src = R"(
    input vec[4];
    output Map(vec, fn=relu4);
  )";
  core::ParseOptions opts;
  opts.default_fuzzy_leaves = 99;
  core::Program p = core::ParsePegasusSyntax(src, BasicRegistry(), opts);
  for (const auto& op : p.ops()) {
    if (op.kind == core::OpKind::kMap) {
      EXPECT_EQ(op.map.fuzzy_leaves, 99u);
    }
  }
}

TEST(Syntax, CommentsAndWhitespaceIgnored) {
  const std::string src =
      "# header\ninput   v [ 2 ] ;\n"
      "output Map(v, fn=double2); # trailing\n";
  EXPECT_NO_THROW(core::ParsePegasusSyntax(src, BasicRegistry()));
}

// ------------------------------------------------------------- errors

TEST(SyntaxErrors, UnknownFunction) {
  const std::string src = "input v[4]; output Map(v, fn=nope);";
  try {
    core::ParsePegasusSyntax(src, BasicRegistry());
    FAIL() << "expected SyntaxError";
  } catch (const core::SyntaxError& e) {
    EXPECT_NE(std::string(e.what()).find("nope"), std::string::npos);
  }
}

TEST(SyntaxErrors, UnknownName) {
  EXPECT_THROW(core::ParsePegasusSyntax("input v[4]; output w;",
                                        BasicRegistry()),
               core::SyntaxError);
}

TEST(SyntaxErrors, MissingOutput) {
  EXPECT_THROW(core::ParsePegasusSyntax("input v[4];", BasicRegistry()),
               core::SyntaxError);
}

TEST(SyntaxErrors, DimMismatchSurfacesLine) {
  // relu4 on 2-dim segments.
  const std::string src = R"(
    input v[4];
    output Concat(Map(Partition(v, dim=2, stride=2), fn=relu4));
  )";
  try {
    core::ParsePegasusSyntax(src, BasicRegistry());
    FAIL() << "expected SyntaxError";
  } catch (const core::SyntaxError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(SyntaxErrors, RedefinitionRejected) {
  const std::string src = R"(
    input v[4];
    a = Map(v, fn=relu4);
    a = Map(v, fn=relu4);
    output a;
  )";
  EXPECT_THROW(core::ParsePegasusSyntax(src, BasicRegistry()),
               core::SyntaxError);
}

TEST(SyntaxErrors, PartitionNeedsParams) {
  EXPECT_THROW(core::ParsePegasusSyntax(
                   "input v[4]; output Concat(Partition(v, dim=2));",
                   BasicRegistry()),
               core::SyntaxError);
}

TEST(SyntaxErrors, BadCharacterRejected) {
  EXPECT_THROW(core::ParsePegasusSyntax("input v[4]; output v @;",
                                        BasicRegistry()),
               core::SyntaxError);
}

TEST(SyntaxErrors, SumReduceOfMismatchedDims) {
  core::FunctionRegistry reg = BasicRegistry();
  const std::string src = R"(
    input v[4];
    a = Map(v, fn=relu4);
    b = Map(Partition(v, dim=2, stride=2), fn=double2);
    output SumReduce(a, b);
  )";
  EXPECT_THROW(core::ParsePegasusSyntax(src, reg), core::SyntaxError);
}

TEST(Syntax, FamilySizeMismatchRejected) {
  // per_seg has 2 members; partition yields 4 segments.
  const std::string src = R"(
    input v[8];
    output Concat(Map(Partition(v, dim=2, stride=2), fn=per_seg));
  )";
  EXPECT_THROW(core::ParsePegasusSyntax(src, BasicRegistry()),
               core::SyntaxError);
}
