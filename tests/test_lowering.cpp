#include "runtime/lowering.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/fusion.hpp"
#include "core/operators.hpp"
#include "runtime/flow_state.hpp"

namespace core = pegasus::core;
namespace rt = pegasus::runtime;
namespace dp = pegasus::dataplane;

namespace {

std::vector<float> RandomFeatures(std::size_t n, std::size_t dim,
                                  std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(0.0f, 255.0f);
  std::vector<float> x(n * dim);
  for (float& v : x) v = std::floor(dist(rng));
  return x;
}

/// A representative program exercising Partition, fuzzy Maps, SumReduce,
/// Concat and a downstream Map keyed on an accumulator.
core::CompiledModel SmallCompiledModel(std::size_t n, std::uint64_t seed) {
  const std::size_t dim = 4;
  auto x = RandomFeatures(n, dim, seed);
  core::ProgramBuilder b(dim);
  auto segs = b.Partition(b.input(), 2, 2);
  std::vector<core::ValueId> maps;
  maps.push_back(
      b.Map(segs[0], core::MakeLinear({0.05f, -0.02f, 0.01f, 0.04f}, 2, 2,
                                      {0.5f, -0.5f}),
            32));
  maps.push_back(b.Map(
      segs[1], core::MakeLinear({-0.03f, 0.02f, 0.02f, 0.01f}, 2, 2, {}),
      32));
  auto sum = b.SumReduce(std::span<const core::ValueId>(maps));
  auto out = b.Map(sum, core::MakeReLU(2), 32);
  core::Program p = b.Finish(out);
  return core::CompileProgram(std::move(p), x, n, {});
}

}  // namespace

TEST(Lowering, SimulatorMatchesHostBitForBit) {
  auto cm = SmallCompiledModel(2000, 1);
  rt::LoweredModel lowered = rt::Lower(cm, {});
  auto x = RandomFeatures(500, 4, 2);
  for (std::size_t i = 0; i < 500; ++i) {
    std::span<const float> row(x.data() + i * 4, 4);
    const auto host = cm.EvaluateRaw(row);
    const auto sim = lowered.InferRaw(row);
    ASSERT_EQ(host.size(), sim.size());
    for (std::size_t d = 0; d < host.size(); ++d) {
      ASSERT_EQ(host[d], sim[d]) << "sample " << i << " dim " << d;
    }
  }
}

TEST(Lowering, DequantizedOutputsMatchToo) {
  auto cm = SmallCompiledModel(1000, 3);
  rt::LoweredModel lowered = rt::Lower(cm, {});
  auto x = RandomFeatures(100, 4, 4);
  for (std::size_t i = 0; i < 100; ++i) {
    std::span<const float> row(x.data() + i * 4, 4);
    const auto host = cm.Evaluate(row);
    const auto sim = lowered.Infer(row);
    for (std::size_t d = 0; d < host.size(); ++d) {
      EXPECT_FLOAT_EQ(host[d], sim[d]);
    }
  }
}

TEST(Lowering, ResourceReportIsPopulated) {
  auto cm = SmallCompiledModel(1000, 5);
  rt::LoweringOptions opts;
  opts.stateful_bits_per_flow = 44;
  rt::LoweredModel lowered = rt::Lower(cm, opts);
  const auto rep = lowered.Report();
  EXPECT_GT(rep.tcam_bits, 0u);   // fuzzy tables live in TCAM
  EXPECT_GT(rep.sram_bits, 0u);   // action data in SRAM
  EXPECT_GE(lowered.StagesUsed(), 2u);  // ReLU map depends on the sum
  EXPECT_EQ(rep.stateful_bits_per_flow, 44u);
  EXPECT_GT(rep.ActionBusPct(dp::SwitchModel{}), 0.0);
  EXPECT_EQ(lowered.NumTables(), cm.NumTables());
}

TEST(Lowering, PlacementFailsOnTinySwitch) {
  auto cm = SmallCompiledModel(1000, 6);
  rt::LoweringOptions opts;
  opts.switch_model.num_stages = 1;  // ReLU table needs stage >= 1
  EXPECT_THROW(rt::Lower(cm, opts), dp::PlacementError);
}

TEST(Lowering, PhvOverflowDetected) {
  auto cm = SmallCompiledModel(500, 7);
  rt::LoweringOptions opts;
  opts.switch_model.phv_bits = 8;  // absurdly small
  EXPECT_THROW(rt::Lower(cm, opts), dp::PlacementError);
}

TEST(Lowering, InferRejectsWrongDim) {
  auto cm = SmallCompiledModel(500, 8);
  rt::LoweredModel lowered = rt::Lower(cm, {});
  const std::vector<float> bad{1.0f, 2.0f};
  EXPECT_THROW(lowered.Infer(bad), std::invalid_argument);
}

// ---------------------------------------------------------- flow state

TEST(FlowState, BitsPerFlowSumsFields) {
  rt::FlowStateSpec spec;
  spec.Add("idx", 4, 7).Add("ts", 16);
  EXPECT_EQ(spec.BitsPerFlow(), 44u);
  EXPECT_GT(spec.SramBitsFor(1'000'000), 44u * 1'000'000u);
}

TEST(FlowState, WindowPushShiftsInstances) {
  rt::FlowStateSpec spec;
  spec.Add("idx", 8, 3);
  rt::FlowStateTable table(spec, 64);
  dp::FlowKey key{42};
  table.PushWindow(key, 0, 1);
  table.PushWindow(key, 0, 2);
  table.PushWindow(key, 0, 3);
  EXPECT_EQ(table.Read(key, 0, 0), 3);
  EXPECT_EQ(table.Read(key, 0, 1), 2);
  EXPECT_EQ(table.Read(key, 0, 2), 1);
  table.PushWindow(key, 0, 4);
  EXPECT_EQ(table.Read(key, 0, 2), 2);  // oldest (1) dropped
}

TEST(FlowState, SeparateFlowsSeparateSlots) {
  rt::FlowStateSpec spec;
  spec.Add("v", 8);
  rt::FlowStateTable table(spec, 1024);
  dp::FlowKey a{1}, bkey{2};
  table.Write(a, 0, 0, 7);
  table.Write(bkey, 0, 0, 9);
  EXPECT_EQ(table.Read(a, 0, 0), 7);
  EXPECT_EQ(table.Read(bkey, 0, 0), 9);
}

class LoweringSeeds : public ::testing::TestWithParam<int> {};

TEST_P(LoweringSeeds, BitExactnessAcrossSeeds) {
  auto cm = SmallCompiledModel(800, static_cast<std::uint64_t>(GetParam()));
  rt::LoweredModel lowered = rt::Lower(cm, {});
  auto x = RandomFeatures(64, 4, static_cast<std::uint64_t>(GetParam()) + 100);
  for (std::size_t i = 0; i < 64; ++i) {
    std::span<const float> row(x.data() + i * 4, 4);
    EXPECT_EQ(cm.EvaluateRaw(row), lowered.InferRaw(row));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LoweringSeeds, ::testing::Range(20, 30));
