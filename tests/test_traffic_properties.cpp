// Property tests on the synthetic-traffic calibration knobs — the levers
// DESIGN.md §2 says make the substitution preserve each experiment's shape.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/leo.hpp"
#include "eval/experiment.hpp"
#include "traffic/features.hpp"
#include "traffic/synthetic.hpp"

namespace tr = pegasus::traffic;
namespace ev = pegasus::eval;
namespace bl = pegasus::baselines;

namespace {

/// Byte-channel information probe: fit a tree on one generation of the
/// spec and evaluate on a fresh generation (same class templates,
/// different flows) — higher accuracy == more byte information.
double ByteSeparability(tr::DatasetSpec spec) {
  auto collect = [](const tr::Dataset& ds, std::vector<float>& x,
                    std::vector<std::int32_t>& y) {
    for (const auto& f : ds.flows) {
      for (std::size_t p = 0; p < std::min<std::size_t>(f.packets.size(), 3);
           ++p) {
        for (std::size_t b = 0; b < 8; ++b) {
          x.push_back(f.packets[p].bytes[b]);
        }
        y.push_back(f.label);
      }
    }
  };
  std::vector<float> xtr, xte;
  std::vector<std::int32_t> ytr, yte;
  const auto train_ds = tr::Generate(spec);
  spec.seed += 1000;
  const auto test_ds = tr::Generate(spec);
  collect(train_ds, xtr, ytr);
  collect(test_ds, xte, yte);
  auto tree = bl::DecisionTree::Fit(xtr, ytr, ytr.size(), 8,
                                    train_ds.NumClasses(), {256, 4, 8});
  std::size_t ok = 0;
  for (std::size_t i = 0; i < yte.size(); ++i) {
    if (tree.Predict(std::span<const float>(xte.data() + i * 8, 8)) ==
        yte[i]) {
      ++ok;
    }
  }
  return static_cast<double>(ok) / static_cast<double>(yte.size());
}

}  // namespace

TEST(TrafficProperties, GenericPayloadFractionCapsByteSeparability) {
  auto spec_clean = tr::PeerRushSpec(40, 3);
  spec_clean.generic_payload_frac = 0.0f;
  auto spec_murky = spec_clean;
  spec_murky.generic_payload_frac = 0.5f;
  const double clean = ByteSeparability(spec_clean);
  const double murky = ByteSeparability(spec_murky);
  EXPECT_GT(clean, murky + 0.05)
      << "generic payloads must reduce byte-channel information";
}

TEST(TrafficProperties, ClassMixCapsTemporalSeparability) {
  // Higher class_mix -> stat features less separable (Leo as the probe).
  auto probe = [](float mix) {
    auto spec = tr::PeerRushSpec(60, 5);
    spec.class_mix = mix;
    auto prep = ev::Prepare(spec, /*with_raw_bytes=*/false);
    auto tree = bl::DecisionTree::Fit(
        prep.stat.train.x, prep.stat.train.labels, prep.stat.train.size(),
        prep.stat.train.dim, prep.num_classes, {1024, 4, 8});
    const auto pred =
        tree.PredictBatch(prep.stat.test.x, prep.stat.test.size());
    return ev::Evaluate(prep.stat.test.labels, pred, prep.num_classes).f1;
  };
  EXPECT_GT(probe(0.0f), probe(0.4f) + 0.05);
}

TEST(TrafficProperties, DatasetDifficultyOrdering) {
  // The calibrated specs must keep CICIOT/ISCXVPN harder than PeerRush for
  // statistical models (Table 5's dataset ordering).
  auto stat_f1 = [](const tr::DatasetSpec& spec) {
    auto prep = ev::Prepare(spec, /*with_raw_bytes=*/false);
    auto tree = bl::DecisionTree::Fit(
        prep.stat.train.x, prep.stat.train.labels, prep.stat.train.size(),
        prep.stat.train.dim, prep.num_classes, {1024, 4, 8});
    const auto pred =
        tree.PredictBatch(prep.stat.test.x, prep.stat.test.size());
    return ev::Evaluate(prep.stat.test.labels, pred, prep.num_classes).f1;
  };
  const double peerrush = stat_f1(tr::PeerRushSpec(60, 7));
  const double ciciot = stat_f1(tr::CiciotSpec(60, 7));
  const double iscx = stat_f1(tr::IscxVpnSpec(40, 7));
  EXPECT_GT(peerrush, ciciot);
  EXPECT_GT(peerrush, iscx);
}

TEST(TrafficProperties, FloodAttackIsMaximallyRegular) {
  // Flood traffic must have far lower length variance than any benign
  // class — what makes it trivially detectable (Figure 8's easiest AUC).
  const auto attacks = tr::AttackProfiles();
  const auto flood = tr::GenerateFlows(attacks[1], 20, -1, 24, 48, 9);
  auto len_variance = [](const std::vector<tr::Flow>& flows) {
    double sum = 0, sumsq = 0;
    std::size_t n = 0;
    for (const auto& f : flows) {
      for (const auto& p : f.packets) {
        sum += p.len;
        sumsq += static_cast<double>(p.len) * p.len;
        ++n;
      }
    }
    const double mean = sum / static_cast<double>(n);
    return sumsq / static_cast<double>(n) - mean * mean;
  };
  const double flood_var = len_variance(flood);
  auto benign = tr::Generate(tr::PeerRushSpec(20, 11));
  const double benign_var = len_variance(benign.flows);
  EXPECT_LT(flood_var * 20, benign_var);
}

TEST(TrafficProperties, QuantizersCoverRealisticRanges) {
  // Every wire-legal packet length maps into [5, 188); IPDs from 1us to
  // minutes stay distinguishable after companding.
  EXPECT_EQ(tr::QuantizeLen(40), 5);
  EXPECT_EQ(tr::QuantizeLen(1500), 187);
  // The companding curve distinguishes 1 ms / 100 ms / 1 s and saturates
  // around ~2.5 s (anything slower reads as "idle").
  EXPECT_LT(tr::QuantizeIpd(1000), tr::QuantizeIpd(100000));
  EXPECT_LT(tr::QuantizeIpd(100000), tr::QuantizeIpd(1000000));
  EXPECT_LT(tr::QuantizeIpd(1000000), tr::QuantizeIpd(2400000));
  EXPECT_EQ(tr::QuantizeIpd(60ull * 1000 * 1000), 255);
}
