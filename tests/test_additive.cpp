// Tests for the NAM-style AdditiveModel (the architecture Advanced
// Primitive Fusion ❸ relies on) and its use inside CNN-M / CNN-L / AE.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "models/additive.hpp"

namespace md = pegasus::models;

namespace {

/// Data whose label depends additively on two segments:
/// class = (x0 > 0) XOR is NOT learnable additively, but
/// score = f(x0) + g(x2) is. Use class = sign(sin(x0) + 0.8*cos(x2)).
void AdditiveToy(std::size_t n, std::uint64_t seed, std::vector<float>& x,
                 std::vector<std::int32_t>& y) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(-2.0f, 2.0f);
  x.resize(n * 4);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 0; d < 4; ++d) x[i * 4 + d] = dist(rng);
    const float score = std::sin(2 * x[i * 4]) + 0.8f * std::cos(2 * x[i * 4 + 2]);
    y[i] = score > 0 ? 1 : 0;
  }
}

}  // namespace

TEST(Additive, LearnsAdditivelySeparableTarget) {
  md::AdditiveConfig cfg;
  cfg.segments = {{0, 2}, {2, 2}};
  cfg.hidden = {24};
  cfg.out_dim = 2;
  cfg.epochs = 60;
  md::AdditiveModel model(cfg);
  std::vector<float> x;
  std::vector<std::int32_t> y;
  AdditiveToy(1200, 1, x, y);
  model.TrainClassifier(x, y, 1200, 4);

  std::vector<float> xt;
  std::vector<std::int32_t> yt;
  AdditiveToy(400, 2, xt, yt);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < 400; ++i) {
    const auto logits =
        model.Predict(std::span<const float>(xt.data() + i * 4, 4));
    if ((logits[1] > logits[0] ? 1 : 0) == yt[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / 400.0, 0.9);
}

TEST(Additive, PredictionIsSumOfSegmentContributions) {
  // The fused-Map invariant: full prediction == sum of per-segment
  // contributions (what each table stores). Must hold exactly.
  md::AdditiveConfig cfg;
  cfg.segments = {{0, 2}, {2, 2}, {4, 2}};
  cfg.hidden = {8};
  cfg.out_dim = 3;
  md::AdditiveModel model(cfg);
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> x(6);
    for (float& v : x) v = dist(rng);
    const auto full = model.Predict(x);
    std::vector<float> summed(3, 0.0f);
    for (std::size_t s = 0; s < 3; ++s) {
      const auto contrib = model.SegmentContribution(
          s, std::span<const float>(x.data() + s * 2, 2));
      for (std::size_t c = 0; c < 3; ++c) summed[c] += contrib[c];
    }
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(full[c], summed[c], 1e-4f);
    }
  }
}

TEST(Additive, SegmentsOnlySeeTheirSlice) {
  // Perturbing features outside a segment must not change its
  // contribution — the independence property fuzzy tables rely on.
  md::AdditiveConfig cfg;
  cfg.segments = {{0, 2}, {2, 2}};
  cfg.hidden = {8};
  cfg.out_dim = 2;
  md::AdditiveModel model(cfg);
  const std::vector<float> seg{0.5f, -0.5f};
  const auto a = model.SegmentContribution(0, seg);
  const auto b = model.SegmentContribution(0, seg);  // repeatable
  EXPECT_EQ(a, b);
}

TEST(Additive, RejectsBadConfigs) {
  md::AdditiveConfig empty;
  EXPECT_THROW(md::AdditiveModel{empty}, std::invalid_argument);

  md::AdditiveConfig cfg;
  cfg.segments = {{0, 2}};
  md::AdditiveModel model(cfg);
  std::vector<float> x(10);
  std::vector<std::int32_t> y(2, 0);
  EXPECT_THROW(model.TrainClassifier(x, y, 3, 2), std::invalid_argument);
}

TEST(Additive, ParamCountMatchesArchitecture) {
  md::AdditiveConfig cfg;
  cfg.segments = {{0, 2}, {2, 2}};
  cfg.hidden = {10};
  cfg.out_dim = 3;
  md::AdditiveModel model(cfg);
  // Per segment: 2*10+10 + 10*3+3 = 63. Two segments = 126.
  EXPECT_EQ(model.ParamCount(), 126u);
}
