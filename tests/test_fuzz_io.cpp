// Fuzz drivers for the untrusted-input boundary (ISSUE 8): corpus replay
// plus deterministic seeded mutation sweeps over PcapReader and WireParser,
// through the same FuzzPcap/FuzzWire entry points the libFuzzer targets
// use. Everything here is reproducible — no wall-clock, no process
// randomness — so a CI failure replays locally from the seed in the name.
//
// PEGASUS_CORPUS_DIR (a compile definition pointing at tests/corpus) holds
// checked-in seed inputs: pcap/ files are whole capture files, wire/ files
// are single frames. Crashing inputs found by the libFuzzer targets get
// checked in there as regression seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <vector>

#include "fuzz_harness.hpp"
#include "io/pcap.hpp"
#include "io/wire.hpp"

namespace fs = std::filesystem;
namespace io = pegasus::io;
namespace dp = pegasus::dataplane;
namespace fuzz = pegasus::fuzz;

namespace {

std::vector<std::uint8_t> ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return bytes;
}

std::vector<fs::path> CorpusFiles(const char* sub) {
  std::vector<fs::path> files;
  const fs::path dir = fs::path(PEGASUS_CORPUS_DIR) / sub;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// A well-formed little capture to mutate: three real TCP/UDP frames.
std::vector<std::uint8_t> SeedCapture() {
  std::stringstream buf;
  io::PcapWriter writer(buf, {});
  dp::FiveTuple t;
  t.version = 4;
  t.proto = dp::kProtoTcp;
  t.src = {10, 0, 0, 1};
  t.dst = {10, 0, 0, 2};
  t.src_port = 1234;
  t.dst_port = 443;
  const std::vector<std::uint8_t> payload(32, 0x5A);
  writer.Write(1'000'000, io::BuildFrame(t, payload, 72));
  t.proto = dp::kProtoUdp;
  writer.Write(2'000'000, io::BuildFrame(t, payload, 60));
  t.version = 6;
  t.proto = dp::kProtoTcp;
  writer.Write(3'000'000, io::BuildFrame(t, payload, 92));
  const std::string s = buf.str();
  return {s.begin(), s.end()};
}

std::vector<std::uint8_t> SeedFrame() {
  dp::FiveTuple t;
  t.version = 4;
  t.proto = dp::kProtoUdp;
  t.src = {192, 168, 1, 1};
  t.dst = {192, 168, 1, 2};
  t.src_port = 53;
  t.dst_port = 5353;
  return io::BuildFrame(t, std::vector<std::uint8_t>(24, 0xC3), 52);
}

/// One deterministic mutation: flip / overwrite / truncate / extend.
std::vector<std::uint8_t> Mutate(std::vector<std::uint8_t> bytes,
                                 std::mt19937_64& rng) {
  if (bytes.empty()) return bytes;
  switch (rng() % 4) {
    case 0:  // single bit flip
      bytes[rng() % bytes.size()] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
      break;
    case 1: {  // stomp a 4-byte window (length fields live in these)
      const std::size_t at = rng() % bytes.size();
      for (std::size_t i = at; i < bytes.size() && i < at + 4; ++i) {
        bytes[i] = static_cast<std::uint8_t>(rng());
      }
      break;
    }
    case 2:  // truncate
      bytes.resize(rng() % bytes.size());
      break;
    default:  // extend with garbage
      for (std::size_t i = 0, n = rng() % 64; i < n; ++i) {
        bytes.push_back(static_cast<std::uint8_t>(rng()));
      }
      break;
  }
  return bytes;
}

}  // namespace

TEST(FuzzIo, PcapCorpusReplays) {
  const auto files = CorpusFiles("pcap");
  ASSERT_FALSE(files.empty()) << "corpus dir missing: " << PEGASUS_CORPUS_DIR;
  std::size_t decoded = 0;
  for (const auto& f : files) {
    decoded += fuzz::FuzzPcap(ReadFile(f));
  }
  // At least the intact seed capture decodes; corrupt seeds contribute 0.
  EXPECT_GT(decoded, 0u);
}

TEST(FuzzIo, WireCorpusReplays) {
  const auto files = CorpusFiles("wire");
  ASSERT_FALSE(files.empty()) << "corpus dir missing: " << PEGASUS_CORPUS_DIR;
  std::size_t parsed = 0;
  for (const auto& f : files) {
    parsed += fuzz::FuzzWire(ReadFile(f)) ? 1 : 0;
  }
  EXPECT_GT(parsed, 0u);
}

TEST(FuzzIo, PcapSeededMutationSweep) {
  const auto seed = SeedCapture();
  ASSERT_GT(fuzz::FuzzPcap(seed), 0u) << "the unmutated seed must decode";
  for (std::uint64_t s = 0; s < 400; ++s) {
    std::mt19937_64 rng(s);
    auto bytes = seed;
    // Stack 1..3 mutations so corruption compounds.
    const std::size_t rounds = 1 + rng() % 3;
    for (std::size_t r = 0; r < rounds; ++r) bytes = Mutate(std::move(bytes), rng);
    fuzz::FuzzPcap(bytes);  // parse-or-reject, never crash
  }
}

TEST(FuzzIo, WireSeededMutationSweep) {
  const auto seed = SeedFrame();
  ASSERT_TRUE(fuzz::FuzzWire(seed)) << "the unmutated seed must parse";
  for (std::uint64_t s = 0; s < 2000; ++s) {
    std::mt19937_64 rng(s + 1'000'000);
    auto bytes = seed;
    const std::size_t rounds = 1 + rng() % 3;
    for (std::size_t r = 0; r < rounds; ++r) bytes = Mutate(std::move(bytes), rng);
    fuzz::FuzzWire(bytes);
  }
}

TEST(FuzzIo, WireRandomBytesSweep) {
  // Pure garbage of every small length: the parser's header-bounds checks
  // see every truncation point.
  for (std::size_t len = 0; len < 128; ++len) {
    std::mt19937_64 rng(len);
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    fuzz::FuzzWire(bytes);
  }
}

TEST(FuzzIo, PcapRandomBytesSweep) {
  for (std::size_t len : {0, 1, 16, 23, 24, 25, 40, 64, 256}) {
    std::mt19937_64 rng(len * 7919);
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    fuzz::FuzzPcap(bytes);
  }
}
