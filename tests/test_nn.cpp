#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/tensor.hpp"
#include "nn/trainer.hpp"

namespace nn = pegasus::nn;

// ----------------------------------------------------------------- tensor

TEST(Tensor, ShapeAndAccess) {
  nn::Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6u);
  t.at(1, 2) = 5.0f;
  EXPECT_EQ(t[5], 5.0f);
  EXPECT_EQ(t.ShapeString(), "[2,3]");
  EXPECT_THROW(nn::Tensor({2, 2}, {1.0f}), std::invalid_argument);
}

TEST(Tensor, MatMulAgainstHandComputed) {
  nn::Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  nn::Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  nn::Tensor c = nn::MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
  EXPECT_THROW(nn::MatMul(a, a), std::invalid_argument);
}

TEST(Tensor, TransposedMatMulsAgree) {
  std::mt19937_64 rng(3);
  nn::Tensor a({4, 5});
  nn::Tensor b({5, 3});
  nn::XavierInit(a, 4, 5, rng);
  nn::XavierInit(b, 5, 3, rng);
  // a * b via MatMulTransposedB(a, b^T).
  nn::Tensor bt({3, 5});
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 3; ++j) bt.at(j, i) = b.at(i, j);
  }
  nn::Tensor c1 = nn::MatMul(a, b);
  nn::Tensor c2 = nn::MatMulTransposedB(a, bt);
  for (std::size_t i = 0; i < c1.size(); ++i) {
    EXPECT_NEAR(c1[i], c2[i], 1e-5f);
  }
}

// ---------------------------------------------------- finite-diff checks

namespace {

/// Numerical gradient check of a layer through a scalar loss L = sum(y*g).
void GradCheck(nn::Layer& layer, nn::Tensor x, float tol = 2e-2f) {
  std::mt19937_64 rng(11);
  nn::Tensor y = layer.Forward(x, /*training=*/true);
  nn::Tensor g(y.shape());
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (std::size_t i = 0; i < g.size(); ++i) g[i] = dist(rng);
  nn::Tensor dx = layer.Backward(g);

  const float eps = 1e-2f;
  for (std::size_t i = 0; i < x.size(); i += std::max<std::size_t>(1, x.size() / 7)) {
    nn::Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    nn::Tensor yp = layer.Forward(xp, true);
    nn::Tensor ym = layer.Forward(xm, true);
    float lp = 0, lm = 0;
    for (std::size_t k = 0; k < yp.size(); ++k) {
      lp += yp[k] * g[k];
      lm += ym[k] * g[k];
    }
    const float numeric = (lp - lm) / (2 * eps);
    EXPECT_NEAR(dx[i], numeric, tol * std::max(1.0f, std::abs(numeric)))
        << "input index " << i;
  }
}

nn::Tensor RandomTensor(std::vector<std::size_t> shape, std::uint64_t seed) {
  nn::Tensor t(std::move(shape));
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(-2.0f, 2.0f);
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = dist(rng);
  return t;
}

}  // namespace

TEST(GradCheck, Dense) {
  std::mt19937_64 rng(1);
  nn::Dense layer(6, 4, rng);
  GradCheck(layer, RandomTensor({3, 6}, 2));
}

TEST(GradCheck, Conv1D) {
  std::mt19937_64 rng(1);
  nn::Conv1D layer(2, 3, 2, 2, rng);
  GradCheck(layer, RandomTensor({2, 2, 8}, 3));
}

TEST(GradCheck, Tanh) {
  nn::Tanh layer;
  GradCheck(layer, RandomTensor({2, 5}, 4));
}

TEST(GradCheck, Sigmoid) {
  nn::Sigmoid layer;
  GradCheck(layer, RandomTensor({2, 5}, 5));
}

TEST(GradCheck, AvgPool) {
  nn::AvgPool1D layer(2, 2);
  GradCheck(layer, RandomTensor({2, 3, 6}, 6));
}

TEST(GradCheck, SimpleRNN) {
  std::mt19937_64 rng(1);
  nn::SimpleRNN layer(3, 4, rng);
  GradCheck(layer, RandomTensor({2, 5, 3}, 7), 5e-2f);
}

// ----------------------------------------------------------- layer logic

TEST(Layers, ReLUMasksNegatives) {
  nn::ReLU relu;
  nn::Tensor x({1, 4}, {-1.0f, 0.0f, 2.0f, -3.0f});
  nn::Tensor y = relu.Forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  nn::Tensor g({1, 4}, {1, 1, 1, 1});
  nn::Tensor dx = relu.Backward(g);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
  EXPECT_FLOAT_EQ(dx[2], 1.0f);
}

TEST(Layers, MaxPoolForwardBackward) {
  nn::MaxPool1D pool(2, 2);
  nn::Tensor x({1, 1, 4}, {1.0f, 5.0f, 2.0f, 0.5f});
  nn::Tensor y = pool.Forward(x, true);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0), 5.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1), 2.0f);
  nn::Tensor g({1, 1, 2}, {1.0f, 1.0f});
  nn::Tensor dx = pool.Backward(g);
  EXPECT_FLOAT_EQ(dx.at(0, 0, 1), 1.0f);  // argmax positions get gradient
  EXPECT_FLOAT_EQ(dx.at(0, 0, 0), 0.0f);
}

TEST(Layers, BatchNormNormalizesInTraining) {
  nn::BatchNorm1d bn(2);
  nn::Tensor x({4, 2}, {1, 10, 2, 20, 3, 30, 4, 40});
  nn::Tensor y = bn.Forward(x, true);
  for (std::size_t f = 0; f < 2; ++f) {
    float mean = 0;
    for (std::size_t i = 0; i < 4; ++i) mean += y.at(i, f);
    EXPECT_NEAR(mean / 4, 0.0f, 1e-5f);
  }
}

TEST(Layers, BatchNormInferenceAffineMatchesEval) {
  nn::BatchNorm1d bn(2);
  std::mt19937_64 rng(5);
  // Train-mode passes to populate running stats.
  for (int it = 0; it < 50; ++it) {
    bn.Forward(RandomTensor({16, 2}, rng()), true);
  }
  std::vector<float> scale, shift;
  bn.InferenceAffine(scale, shift);
  nn::Tensor x = RandomTensor({3, 2}, 99);
  nn::Tensor y = bn.Forward(x, false);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t f = 0; f < 2; ++f) {
      EXPECT_NEAR(y.at(i, f), scale[f] * x.at(i, f) + shift[f], 1e-4f);
    }
  }
}

TEST(Layers, EmbeddingLooksUpAndClamps) {
  std::mt19937_64 rng(1);
  nn::Embedding emb(4, 3, rng);
  nn::Tensor idx({1, 2}, {1.0f, 99.0f});  // 99 clamps to 3
  nn::Tensor y = emb.Forward(idx, true);
  for (std::size_t d = 0; d < 3; ++d) {
    EXPECT_FLOAT_EQ(y.at(0, 0, d), emb.table().value.at(1, d));
    EXPECT_FLOAT_EQ(y.at(0, 1, d), emb.table().value.at(3, d));
  }
}

// ----------------------------------------------------------------- losses

TEST(Loss, SoftmaxSumsToOne) {
  nn::Tensor logits({2, 3}, {1, 2, 3, -1, 0, 1});
  nn::Tensor p = nn::Softmax(logits);
  for (std::size_t i = 0; i < 2; ++i) {
    float s = 0;
    for (std::size_t j = 0; j < 3; ++j) s += p.at(i, j);
    EXPECT_NEAR(s, 1.0f, 1e-6f);
  }
}

TEST(Loss, CrossEntropyGradientIsProbMinusOneHot) {
  nn::Tensor logits({1, 3}, {0.0f, 0.0f, 0.0f});
  auto res = nn::SoftmaxCrossEntropy(logits, {1});
  EXPECT_NEAR(res.loss, std::log(3.0f), 1e-5f);
  EXPECT_NEAR(res.grad.at(0, 0), 1.0f / 3.0f, 1e-5f);
  EXPECT_NEAR(res.grad.at(0, 1), 1.0f / 3.0f - 1.0f, 1e-5f);
}

TEST(Loss, MaePerSample) {
  nn::Tensor pred({2, 2}, {1, 2, 3, 4});
  nn::Tensor target({2, 2}, {1, 0, 0, 4});
  const auto mae = nn::PerSampleMae(pred, target);
  EXPECT_FLOAT_EQ(mae[0], 1.0f);
  EXPECT_FLOAT_EQ(mae[1], 1.5f);
}

// ------------------------------------------------------------- end-to-end

TEST(Training, LearnsXorWithMlp) {
  // XOR needs a hidden layer — a smoke test that backprop works end to end.
  std::mt19937_64 rng(17);
  nn::Sequential net;
  net.Emplace<nn::Dense>(2, 8, rng);
  net.Emplace<nn::Tanh>();
  net.Emplace<nn::Dense>(8, 2, rng);

  std::vector<float> xs;
  std::vector<std::int32_t> ys;
  for (int i = 0; i < 200; ++i) {
    const int a = i % 2, b = (i / 2) % 2;
    xs.push_back(static_cast<float>(a));
    xs.push_back(static_cast<float>(b));
    ys.push_back(a ^ b);
  }
  nn::Tensor tx({200, 2}, xs);
  nn::TrainConfig cfg;
  cfg.epochs = 120;
  cfg.lr = 5e-3f;
  const float loss = nn::TrainClassifier(net, tx, ys, cfg);
  EXPECT_LT(loss, 0.1f);
  nn::Tensor logits = nn::Predict(net, tx);
  const auto pred = nn::ArgmaxRows(logits);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == ys[i]) ++correct;
  }
  EXPECT_GT(correct, 195u);
}

TEST(Training, AutoencoderReducesReconstructionError) {
  std::mt19937_64 rng(19);
  nn::Sequential net;
  net.Emplace<nn::Dense>(4, 2, rng);
  net.Emplace<nn::Tanh>();
  net.Emplace<nn::Dense>(2, 4, rng);
  // Rank-1 data is compressible to 2 dims.
  std::vector<float> xs;
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (int i = 0; i < 256; ++i) {
    const float t = dist(rng);
    for (float c : {1.0f, 0.5f, -0.5f, 0.25f}) xs.push_back(c * t);
  }
  nn::Tensor tx({256, 4}, xs);
  nn::TrainConfig cfg;
  cfg.epochs = 80;
  cfg.lr = 5e-3f;
  const float loss = nn::TrainAutoencoder(net, tx, tx, cfg);
  EXPECT_LT(loss, 0.02f);
}

TEST(Training, DivergenceThrows) {
  std::mt19937_64 rng(23);
  nn::Sequential net;
  net.Emplace<nn::Dense>(2, 2, rng);
  std::vector<float> xs{1e30f, 1e30f, -1e30f, -1e30f};
  nn::Tensor tx({2, 2}, xs);
  nn::TrainConfig cfg;
  cfg.epochs = 3;
  cfg.lr = 1e10f;
  EXPECT_THROW(nn::TrainClassifier(net, tx, {0, 1}, cfg), std::exception);
}

TEST(Optimizers, AdamConvergesOnQuadratic) {
  // Minimize ||w - target||^2 through the Param/Optimizer interface.
  nn::Param w({4});
  const float target[] = {1.0f, -2.0f, 0.5f, 3.0f};
  nn::Adam opt({&w}, 0.05f);
  for (int it = 0; it < 500; ++it) {
    opt.ZeroGrad();
    for (std::size_t i = 0; i < 4; ++i) {
      w.grad[i] = 2.0f * (w.value[i] - target[i]);
    }
    opt.Step();
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(w.value[i], target[i], 1e-2f);
  }
}

TEST(Optimizers, SgdMomentumConverges) {
  nn::Param w({2});
  nn::Sgd opt({&w}, 0.05f, 0.9f);
  for (int it = 0; it < 300; ++it) {
    opt.ZeroGrad();
    w.grad[0] = 2.0f * (w.value[0] - 1.0f);
    w.grad[1] = 2.0f * (w.value[1] + 1.0f);
    opt.Step();
  }
  EXPECT_NEAR(w.value[0], 1.0f, 1e-2f);
  EXPECT_NEAR(w.value[1], -1.0f, 1e-2f);
}
