#include "core/fusion.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/operators.hpp"

namespace core = pegasus::core;

namespace {

/// Asserts two programs compute the same function on random inputs.
void ExpectSameFunction(const core::Program& a, const core::Program& b,
                        std::size_t in_dim, float tol = 1e-3f) {
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<float> dist(0.0f, 255.0f);
  for (int trial = 0; trial < 64; ++trial) {
    std::vector<float> x(in_dim);
    for (float& v : x) v = dist(rng);
    const auto ya = a.Evaluate(x);
    const auto yb = b.Evaluate(x);
    ASSERT_EQ(ya.size(), yb.size());
    for (std::size_t i = 0; i < ya.size(); ++i) {
      EXPECT_NEAR(ya[i], yb[i], tol * std::max(1.0f, std::abs(ya[i])));
    }
  }
}

/// A small MLP-shaped program: norm -> BN -> FC -> ReLU -> FC.
core::Program MlpShapedProgram(std::mt19937_64& rng) {
  std::uniform_real_distribution<float> wd(-0.5f, 0.5f);
  auto rand_vec = [&](std::size_t n) {
    std::vector<float> v(n);
    for (float& x : v) x = wd(rng);
    return v;
  };
  core::ProgramBuilder b(4);
  auto v = b.Map(b.input(),
                 core::MakeAffine({0.01f, 0.01f, 0.01f, 0.01f},
                                  {-1.0f, -1.0f, -1.0f, -1.0f}, "norm"),
                 16);
  v = b.Map(v, core::MakeAffine(rand_vec(4), rand_vec(4), "bn"), 16);
  v = core::AppendFullyConnected(b, v, rand_vec(4 * 6), 4, 6, rand_vec(6), 2,
                                 16);
  v = b.Map(v, core::MakeReLU(6), 16);
  v = core::AppendFullyConnected(b, v, rand_vec(6 * 2), 6, 2, rand_vec(2), 2,
                                 16);
  return b.Finish(v);
}

}  // namespace

TEST(Fusion, MergeConsecutiveMaps) {
  core::ProgramBuilder b(3);
  auto v = b.Map(b.input(), core::MakeReLU(3), 8);
  v = b.Map(v, core::MakeAffine({2, 2, 2}, {1, 1, 1}, "aff"), 8);
  core::Program p = b.Finish(v);
  core::Program orig = p;
  EXPECT_EQ(p.NumMaps(), 2u);
  EXPECT_EQ(core::MergeConsecutiveMaps(p), 1u);
  EXPECT_EQ(p.NumMaps(), 1u);
  ExpectSameFunction(orig, p, 3);
}

TEST(Fusion, MergeSkipsMultiConsumerValues) {
  core::ProgramBuilder b(2);
  auto v = b.Map(b.input(), core::MakeReLU(2), 8);
  auto a = b.Map(v, core::MakeAffine({1, 1}, {1, 1}, "a"), 8);
  auto c = b.Map(v, core::MakeAffine({2, 2}, {0, 0}, "c"), 8);
  auto out = b.SumReduce({a, c});
  core::Program p = b.Finish(out);
  // v has two consumers; only a->?/c->? have single-use chains but their
  // outputs feed SumReduce, so nothing merges.
  EXPECT_EQ(core::MergeConsecutiveMaps(p), 0u);
}

TEST(Fusion, PushElementwiseThroughPartition) {
  std::mt19937_64 rng(1);
  core::Program p = MlpShapedProgram(rng);
  core::Program orig = p;
  EXPECT_GT(core::PushElementwiseThroughPartition(p), 0u);
  ExpectSameFunction(orig, p, 4);
}

TEST(Fusion, LinearReorderOverSumReduce) {
  // FC (no bias) followed by a pure linear Map: reorder then merge.
  std::mt19937_64 rng(2);
  std::uniform_real_distribution<float> wd(-1.0f, 1.0f);
  core::ProgramBuilder b(4);
  std::vector<float> w(4 * 3);
  for (float& x : w) x = wd(rng);
  auto v = core::AppendFullyConnected(b, b.input(), w, 4, 3, {}, 2, 8);
  v = b.Map(v, core::MakeAffine({2, 3, 4}, {0, 0, 0}, "scale"), 8);
  core::Program p = b.Finish(v);
  core::Program orig = p;
  EXPECT_EQ(core::LinearReorderOverSumReduce(p), 1u);
  ExpectSameFunction(orig, p, 4);
  // After reorder, merging collapses the scale into the FC maps.
  EXPECT_GT(core::MergeConsecutiveMaps(p), 0u);
  ExpectSameFunction(orig, p, 4);
}

TEST(Fusion, NonAdditiveMapDoesNotReorder) {
  core::ProgramBuilder b(4);
  std::vector<float> w(4 * 2, 0.5f);
  auto v = core::AppendFullyConnected(b, b.input(), w, 4, 2, {}, 2, 8);
  v = b.Map(v, core::MakeReLU(2), 8);  // not additive
  core::Program p = b.Finish(v);
  EXPECT_EQ(core::LinearReorderOverSumReduce(p), 0u);
}

TEST(Fusion, FlattenSumReduces) {
  core::ProgramBuilder b(8);
  auto segs = b.Partition(b.input(), 2, 2);
  std::vector<core::ValueId> inner_maps;
  for (std::size_t i = 0; i < 2; ++i) {
    inner_maps.push_back(
        b.Map(segs[i], core::MakeLinear({1, 0, 0, 1}, 2, 2, {}), 8));
  }
  auto inner = b.SumReduce(std::span<const core::ValueId>(inner_maps));
  // inner feeds an outer SumReduce along with two more maps.
  std::vector<core::ValueId> outer_in{inner};
  for (std::size_t i = 2; i < 4; ++i) {
    outer_in.push_back(
        b.Map(segs[i], core::MakeLinear({1, 0, 0, 1}, 2, 2, {}), 8));
  }
  auto outer = b.SumReduce(std::span<const core::ValueId>(outer_in));
  core::Program p = b.Finish(outer);
  core::Program orig = p;
  EXPECT_EQ(core::FlattenSumReduces(p), 1u);
  EXPECT_EQ(p.NumSumReduces(), 1u);
  ExpectSameFunction(orig, p, 8);
}

TEST(Fusion, BasicFusionReachesFigureFiveShape) {
  // Figure 5 ❶: an MLP layer stack's per-layer Maps collapse so each hidden
  // layer costs one Map per segment — norm/BN/ReLU all disappear into the
  // FC tables, leaving NumMaps == number of FC segments.
  std::mt19937_64 rng(3);
  core::Program p = MlpShapedProgram(rng);
  core::Program orig = p;
  const std::size_t maps_before = p.NumMaps();
  const auto stats = core::FuseBasic(p);
  EXPECT_EQ(stats.maps_before, maps_before);
  EXPECT_LT(stats.maps_after, maps_before);
  // 4-dim input, segment 2 -> 2 maps for FC1; 6-dim hidden, segment 2 ->
  // 3 maps for FC2. Norm, BN and ReLU must all be fused away.
  EXPECT_EQ(stats.maps_after, 2u + 3u);
  ExpectSameFunction(orig, p, 4);
}

TEST(Fusion, FuseBasicIsIdempotent) {
  std::mt19937_64 rng(4);
  core::Program p = MlpShapedProgram(rng);
  const auto first = core::FuseBasic(p);
  EXPECT_GT(first.rewrites, 0u);
  const std::size_t maps = p.NumMaps();
  // Second run: a fixpoint is already reached, so zero rewrites are applied
  // and the single iteration only confirms it.
  const auto again = core::FuseBasic(p);
  EXPECT_EQ(again.maps_after, maps);
  EXPECT_EQ(again.maps_before, maps);
  EXPECT_EQ(again.rewrites, 0u);
  EXPECT_EQ(again.iterations, 1u);
  EXPECT_EQ(again.sum_reduces_before, again.sum_reduces_after);
}

class FusionRandomized : public ::testing::TestWithParam<int> {};

TEST_P(FusionRandomized, SemanticsPreservedOnRandomPrograms) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  core::Program p = MlpShapedProgram(rng);
  core::Program orig = p;
  core::FuseBasic(p);
  ExpectSameFunction(orig, p, 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusionRandomized,
                         ::testing::Range(10, 26));
