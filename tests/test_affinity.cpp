// CPU pinning / NUMA placement policy tests (ISSUE 7). The plan builder is
// pure (topology in, CPU ids out), so its policies are tested exactly;
// actual pinning is advisory and only smoke-tested — CI runners give no
// topology guarantees.
#include "runtime/affinity.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <thread>

namespace rt = pegasus::runtime;

TEST(Affinity, OnlineCpuCountIsPositive) {
  EXPECT_GE(rt::OnlineCpuCount(), 1);
}

TEST(Affinity, PolicyNamesAreStable) {
  // These strings land in bench JSON rows; renames are schema breaks.
  EXPECT_STREQ(rt::CpuPinPolicyName(rt::CpuPinPolicy::kNone), "none");
  EXPECT_STREQ(rt::CpuPinPolicyName(rt::CpuPinPolicy::kCompact), "compact");
  EXPECT_STREQ(rt::CpuPinPolicyName(rt::CpuPinPolicy::kScatter), "scatter");
  EXPECT_STREQ(rt::CpuPinPolicyName(rt::CpuPinPolicy::kExplicit), "explicit");
}

TEST(Affinity, NonePlanLeavesEveryThreadUnpinned) {
  const auto plan = rt::MakePinPlan(rt::CpuPinPolicy::kNone, 4, 2);
  ASSERT_EQ(plan.worker_cpu.size(), 4u);
  ASSERT_EQ(plan.ingest_cpu.size(), 2u);
  for (int cpu : plan.worker_cpu) EXPECT_EQ(cpu, -1);
  for (int cpu : plan.ingest_cpu) EXPECT_EQ(cpu, -1);
}

TEST(Affinity, CompactPlanPacksWorkersThenIngest) {
  const int ncpu = rt::OnlineCpuCount();
  const auto plan = rt::MakePinPlan(rt::CpuPinPolicy::kCompact, 3, 2);
  ASSERT_EQ(plan.worker_cpu.size(), 3u);
  ASSERT_EQ(plan.ingest_cpu.size(), 2u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(plan.worker_cpu[i], i % ncpu);
  for (int t = 0; t < 2; ++t) EXPECT_EQ(plan.ingest_cpu[t], (3 + t) % ncpu);
}

TEST(Affinity, ScatterPlanSpreadsAndStaysInRange) {
  const int ncpu = rt::OnlineCpuCount();
  const auto plan = rt::MakePinPlan(rt::CpuPinPolicy::kScatter, 4, 2);
  std::set<int> used;
  for (int cpu : plan.worker_cpu) {
    EXPECT_GE(cpu, 0);
    EXPECT_LT(cpu, ncpu);
    used.insert(cpu);
  }
  for (int cpu : plan.ingest_cpu) {
    EXPECT_GE(cpu, 0);
    EXPECT_LT(cpu, ncpu);
    used.insert(cpu);
  }
  // As many distinct CPUs as the machine can offer the 6 threads.
  EXPECT_GE(static_cast<int>(used.size()),
            std::min(ncpu, 6) > 0 ? 1 : 0);
  EXPECT_LE(static_cast<int>(used.size()), ncpu);
}

TEST(Affinity, ExplicitPlanAppliesListsModulo) {
  const int ncpu = rt::OnlineCpuCount();
  if (ncpu < 1) GTEST_SKIP();
  // Lists shorter than the thread count wrap (4 workers over one CPU id).
  const auto plan =
      rt::MakePinPlan(rt::CpuPinPolicy::kExplicit, 4, 3, {0}, {0, 0});
  ASSERT_EQ(plan.worker_cpu.size(), 4u);
  for (int cpu : plan.worker_cpu) EXPECT_EQ(cpu, 0);
  ASSERT_EQ(plan.ingest_cpu.size(), 3u);
  for (int cpu : plan.ingest_cpu) EXPECT_EQ(cpu, 0);
}

TEST(Affinity, ExplicitPlanValidates) {
  // Empty worker list with workers to place: a misconfiguration, not a
  // silent no-pin.
  EXPECT_THROW(rt::MakePinPlan(rt::CpuPinPolicy::kExplicit, 2, 0),
               std::invalid_argument);
  // Out-of-range CPU ids throw instead of failing at thread start.
  EXPECT_THROW(
      rt::MakePinPlan(rt::CpuPinPolicy::kExplicit, 1, 0, {1 << 20}),
      std::invalid_argument);
  EXPECT_THROW(rt::MakePinPlan(rt::CpuPinPolicy::kExplicit, 1, 1, {0}, {-3}),
               std::invalid_argument);
  // No ingest threads: an empty ingest list is fine.
  const auto plan = rt::MakePinPlan(rt::CpuPinPolicy::kExplicit, 1, 0, {0});
  EXPECT_EQ(plan.worker_cpu[0], 0);
  EXPECT_TRUE(plan.ingest_cpu.empty());
}

TEST(Affinity, DescribeSummarizesThePlan) {
  const auto plan =
      rt::MakePinPlan(rt::CpuPinPolicy::kExplicit, 2, 1, {0, 0}, {0});
  const std::string desc = plan.Describe();
  EXPECT_NE(desc.find("w:"), std::string::npos);
  EXPECT_NE(desc.find("i:"), std::string::npos);
  const auto none = rt::MakePinPlan(rt::CpuPinPolicy::kNone, 1, 1);
  EXPECT_FALSE(none.Describe().empty());
}

TEST(Affinity, PinThisThreadSmoke) {
  // cpu < 0 is the documented no-op path.
  EXPECT_TRUE(rt::PinThisThread(-1));
  // Pinning to CPU 0 must succeed on Linux (every runner has CPU 0) and
  // no-op true elsewhere. Run it on a scratch thread so a pinned test
  // runner thread is not a side effect of the suite.
  bool ok = false;
  std::thread([&ok] { ok = rt::PinThisThread(0); }).join();
  EXPECT_TRUE(ok);
}

TEST(Affinity, ScopedPinRestoresCallerMask) {
  // Exercised on a scratch thread: pin inside a scope, then verify the
  // thread can still land on any CPU of its original mask afterwards by
  // re-pinning to the highest online CPU (would fail if the scope leaked a
  // one-CPU mask AND restore was broken — the call re-widens from the
  // restored mask).
  bool scoped_active = false;
  bool repin_ok = false;
  std::thread([&] {
    {
      rt::ScopedThreadPin pin(0);
      scoped_active = pin.active();
    }
    repin_ok = rt::PinThisThread(rt::OnlineCpuCount() - 1);
  }).join();
#if defined(__linux__)
  EXPECT_TRUE(scoped_active);
#endif
  EXPECT_TRUE(repin_ok);
}

TEST(Affinity, NumaNodeProbeDoesNotCrash) {
  // Topology varies by runner; the contract is just "node id or -1".
  const int node = rt::NumaNodeOfCpu(0);
  EXPECT_GE(node, -1);
  EXPECT_EQ(rt::NumaNodeOfCpu(-1), -1);
  EXPECT_EQ(rt::NumaNodeOfCpu(1 << 24), -1);
}
