// Cross-module integration tests: every model family must lower onto the
// simulated switch with bit-exact semantics (host fuzzy reference ==
// pipeline), fit the resource envelope, and emit plausible P4. These are
// the end-to-end guarantees a deployment would rely on.
#include <gtest/gtest.h>

#include "eval/experiment.hpp"
#include "models/autoencoder.hpp"
#include "models/cnn_m.hpp"
#include "models/rnn_b.hpp"
#include "runtime/lowering.hpp"
#include "runtime/p4gen.hpp"

namespace ev = pegasus::eval;
namespace md = pegasus::models;
namespace rt = pegasus::runtime;
namespace tr = pegasus::traffic;

namespace {

const ev::PreparedDataset& Data() {
  static const ev::PreparedDataset prep =
      ev::Prepare(tr::CiciotSpec(30, 23), /*with_raw_bytes=*/false);
  return prep;
}

void ExpectBitExact(const pegasus::core::CompiledModel& cm,
                    const rt::LoweredModel& lowered,
                    const tr::SampleSet& samples, std::size_t count) {
  for (std::size_t i = 0; i < std::min(samples.size(), count); ++i) {
    std::span<const float> row(samples.x.data() + i * samples.dim,
                               samples.dim);
    ASSERT_EQ(cm.EvaluateRaw(row), lowered.InferRaw(row)) << "sample " << i;
  }
}

}  // namespace

TEST(Integration, RnnBLowersBitExact) {
  const auto& prep = Data();
  md::RnnBConfig cfg;
  cfg.epochs = 8;
  auto m = md::RnnB::Train(prep.seq.train.x, prep.seq.train.labels,
                           prep.seq.train.size(), prep.seq.train.dim,
                           prep.num_classes, cfg);
  // The RNN's wide step tables exercise the range-match fallback.
  auto lowered = rt::Lower(m->Compiled(), {});
  ExpectBitExact(m->Compiled(), lowered, prep.seq.test, 80);
  const auto rep = lowered.Report();
  EXPECT_GT(rep.tcam_bits, 0u);
  // Chained steps need at least window-many stages.
  EXPECT_GE(lowered.StagesUsed(), tr::kWindow);
}

TEST(Integration, CnnMLowersBitExactInOneStage) {
  const auto& prep = Data();
  md::CnnMConfig cfg;
  cfg.epochs = 8;
  auto m = md::CnnM::Train(prep.seq.train.x, prep.seq.train.labels,
                           prep.seq.train.size(), prep.seq.train.dim,
                           prep.num_classes, cfg);
  auto lowered = rt::Lower(m->Compiled(), {});
  ExpectBitExact(m->Compiled(), lowered, prep.seq.test, 80);
  // Advanced fusion: independent per-segment Maps, all level-0.
  EXPECT_EQ(lowered.StagesUsed(), 1u);
}

TEST(Integration, AutoencoderLowersBitExact) {
  const auto& prep = Data();
  md::AutoencoderConfig cfg;
  cfg.epochs = 10;
  auto m = md::Autoencoder::Train(prep.seq.train.x, prep.seq.train.size(),
                                  prep.seq.train.dim, cfg);
  auto lowered = rt::Lower(m->Compiled(), {});
  ExpectBitExact(m->Compiled(), lowered, prep.seq.test, 80);
  // The anomaly score leaves the pipeline as a single dequantizable field.
  const auto raw = lowered.InferRaw(std::span<const float>(
      prep.seq.test.x.data(), prep.seq.test.dim));
  EXPECT_EQ(raw.size(), 1u);
}

TEST(Integration, P4EmissionCoversEveryModelFamily) {
  const auto& prep = Data();
  md::CnnMConfig cfg;
  cfg.epochs = 2;
  auto m = md::CnnM::Train(prep.seq.train.x, prep.seq.train.labels,
                           prep.seq.train.size(), prep.seq.train.dim,
                           prep.num_classes, cfg);
  const std::string p4 = rt::EmitP4(m->Compiled());
  EXPECT_NE(p4.find("control PegasusIngress"), std::string::npos);
  std::size_t tables = 0, pos = 0;
  while ((pos = p4.find("table map_", pos)) != std::string::npos) {
    ++tables;
    pos += 10;
  }
  EXPECT_EQ(tables, m->Compiled().NumTables());
}

TEST(Integration, ResourceEnvelopeHoldsForAllModels) {
  // Every §6.3 model must fit the Tofino-2 envelope — the feasibility
  // claim behind Table 6.
  const auto& prep = Data();
  const pegasus::dataplane::SwitchModel sw;
  {
    md::RnnBConfig cfg;
    cfg.epochs = 2;
    auto m = md::RnnB::Train(prep.seq.train.x, prep.seq.train.labels,
                             prep.seq.train.size(), prep.seq.train.dim,
                             prep.num_classes, cfg);
    const auto rep = rt::Lower(m->Compiled(), {}).Report();
    EXPECT_LT(rep.SramPct(sw), 100.0);
    EXPECT_LT(rep.TcamPct(sw), 100.0);
  }
  {
    md::AutoencoderConfig cfg;
    cfg.epochs = 2;
    auto m = md::Autoencoder::Train(prep.seq.train.x, prep.seq.train.size(),
                                    prep.seq.train.dim, cfg);
    const auto rep = rt::Lower(m->Compiled(), {}).Report();
    EXPECT_LT(rep.TcamPct(sw), 100.0);
  }
}

TEST(Integration, DeterministicEndToEnd) {
  // Same seeds -> identical compiled tables and predictions.
  const auto& prep = Data();
  md::CnnMConfig cfg;
  cfg.epochs = 3;
  auto a = md::CnnM::Train(prep.seq.train.x, prep.seq.train.labels,
                           prep.seq.train.size(), prep.seq.train.dim,
                           prep.num_classes, cfg);
  auto b = md::CnnM::Train(prep.seq.train.x, prep.seq.train.labels,
                           prep.seq.train.size(), prep.seq.train.dim,
                           prep.num_classes, cfg);
  for (std::size_t i = 0; i < std::min<std::size_t>(prep.seq.test.size(), 50);
       ++i) {
    std::span<const float> row(
        prep.seq.test.x.data() + i * prep.seq.test.dim, prep.seq.test.dim);
    EXPECT_EQ(a->Compiled().EvaluateRaw(row), b->Compiled().EvaluateRaw(row));
  }
}
