// The packet-I/O subsystem's acceptance criteria (ISSUE 5):
//
//  * PcapWriter -> PcapReader round-trips records bit-identically, for both
//    byte orders and both timestamp resolutions, and a read -> re-write
//    pipe reproduces the file byte for byte.
//  * The wire parser handles Ethernet(+VLAN/QinQ)/IPv4/IPv6/TCP/UDP,
//    skips what it cannot key flow state on with counted drops, and is the
//    exact inverse of BuildFrame.
//  * A capture written from a synthetic Dataset re-imports bit-identically
//    (flow identity, labels, timestamps, lengths, payload windows).
//  * Replaying that capture through the StreamServer (single- and
//    multi-threaded) produces identical per-flow decisions to serving the
//    original Dataset's merged trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <random>
#include <sstream>
#include <utility>

#include "compiler/compiler.hpp"
#include "core/operators.hpp"
#include "eval/experiment.hpp"
#include "io/assemble.hpp"
#include "io/pcap.hpp"
#include "io/replay.hpp"
#include "io/wire.hpp"
#include "runtime/stream_server.hpp"
#include "traffic/synthetic.hpp"

namespace core = pegasus::core;
namespace dp = pegasus::dataplane;
namespace io = pegasus::io;
namespace rt = pegasus::runtime;
namespace tr = pegasus::traffic;
namespace ev = pegasus::eval;

namespace {

// ---------------------------------------------------------------------------
// pcap container
// ---------------------------------------------------------------------------

std::vector<io::PcapRecord> RandomRecords(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<std::size_t> len(0, 200);
  std::vector<io::PcapRecord> records(n);
  std::uint32_t sec = 1000;
  for (auto& r : records) {
    r.ts_sec = sec++;
    r.ts_frac = static_cast<std::uint32_t>(rng() % 999999);
    r.data.resize(len(rng));
    for (auto& b : r.data) b = static_cast<std::uint8_t>(byte(rng));
    r.orig_len = static_cast<std::uint32_t>(r.data.size()) +
                 static_cast<std::uint32_t>(rng() % 64);
  }
  return records;
}

TEST(Pcap, RoundTripIsBitIdenticalAcrossEndiannessAndResolution) {
  const auto records = RandomRecords(17, 42);
  for (const bool swapped : {false, true}) {
    for (const bool nanos : {false, true}) {
      io::PcapOptions opts;
      opts.swapped = swapped;
      opts.nanos = nanos;
      opts.snaplen = 4096;
      std::stringstream buf;
      {
        io::PcapWriter writer(buf, opts);
        for (const auto& r : records) writer.Write(r);
        EXPECT_EQ(writer.records(), records.size());
      }
      const std::string bytes = buf.str();

      std::stringstream in(bytes);
      io::PcapReader reader(in);
      EXPECT_EQ(reader.options().swapped, swapped);
      EXPECT_EQ(reader.nanos(), nanos);
      EXPECT_EQ(reader.options().snaplen, 4096u);
      EXPECT_EQ(reader.options().linktype, io::kLinktypeEthernet);

      // Records come back bit-identical, and re-writing them with the same
      // options reproduces the file byte for byte.
      std::stringstream rewrite;
      io::PcapWriter rewriter(rewrite, opts);
      io::PcapRecord rec;
      std::size_t i = 0;
      while (reader.Next(rec)) {
        ASSERT_LT(i, records.size());
        EXPECT_EQ(rec, records[i]) << "record " << i;
        rewriter.Write(rec);
        ++i;
      }
      EXPECT_EQ(i, records.size());
      EXPECT_EQ(rewrite.str(), bytes);
    }
  }
}

TEST(Pcap, TimestampSplitMatchesResolution) {
  for (const bool nanos : {false, true}) {
    std::stringstream buf;
    io::PcapOptions opts;
    opts.nanos = nanos;
    io::PcapWriter writer(buf, opts);
    const std::uint64_t ts_us = 3'141'592'653ull;  // 3141.592653 s
    writer.Write(ts_us, std::vector<std::uint8_t>{1, 2, 3});

    std::stringstream in(buf.str());
    io::PcapReader reader(in);
    io::PcapRecord rec;
    ASSERT_TRUE(reader.Next(rec));
    EXPECT_EQ(rec.ts_sec, 3141u);
    EXPECT_EQ(rec.ts_frac, nanos ? 592'653'000u : 592'653u);
    EXPECT_EQ(rec.TsMicros(reader.nanos()), ts_us);
    EXPECT_EQ(rec.orig_len, 3u);
  }
}

TEST(Pcap, ReaderRejectsGarbageAndTruncation) {
  {
    std::stringstream buf("not a pcap file at all......");
    EXPECT_THROW(io::PcapReader r(buf), std::runtime_error);
  }
  {
    std::stringstream buf;  // empty
    EXPECT_THROW(io::PcapReader r(buf), std::runtime_error);
  }
  {
    // Valid header, then a record header whose payload is cut short.
    std::stringstream buf;
    io::PcapWriter writer(buf, {});
    writer.Write(5, std::vector<std::uint8_t>(64, 0xAB));
    const std::string bytes = buf.str();
    std::stringstream in(bytes.substr(0, bytes.size() - 10));
    io::PcapReader reader(in);
    io::PcapRecord rec;
    EXPECT_THROW(reader.Next(rec), std::runtime_error);
  }
  {
    // incl_len above snaplen: corrupt, not silently accepted.
    std::stringstream buf;
    io::PcapOptions opts;
    opts.snaplen = 16;
    io::PcapWriter writer(buf, opts);
    io::PcapRecord bad;
    bad.orig_len = 8;
    bad.data.resize(9);
    EXPECT_THROW(writer.Write(bad),
                 std::invalid_argument);  // orig_len < incl_len
  }
  {
    // snaplen 0 ("unlimited"): a record above the built-in ceiling is
    // counted and skipped — never a multi-GiB allocation — and reading
    // resumes on the next record.
    std::stringstream buf;
    io::PcapOptions opts;
    opts.snaplen = 0;
    io::PcapWriter writer(buf, opts);
    writer.Write(1, std::vector<std::uint8_t>(io::kMaxRecordBytes + 1,
                                              0x11));
    writer.Write(2, std::vector<std::uint8_t>(8, 0x22));
    std::stringstream in(buf.str());
    io::PcapReader reader(in);
    io::PcapRecord rec;
    ASSERT_TRUE(reader.Next(rec));  // the oversize record was skipped
    EXPECT_EQ(rec.ts_sec, 0u);
    EXPECT_EQ(rec.data.size(), 8u);
    EXPECT_FALSE(reader.Next(rec));
    EXPECT_EQ(reader.records(), 1u);
    EXPECT_EQ(reader.drops().oversize, 1u);
    EXPECT_EQ(reader.drops().overcapture, 0u);
  }
}

TEST(Pcap, OvercaptureRecordsAreCountedAndSkipped) {
  // incl_len > orig_len never comes out of PcapWriter (it rejects it), so
  // hand-patch the length fields of a well-formed file.
  std::stringstream buf;
  io::PcapWriter writer(buf, {});
  writer.Write(1, std::vector<std::uint8_t>(24, 0xAA), /*orig_len=*/24);
  writer.Write(2, std::vector<std::uint8_t>(16, 0xBB), /*orig_len=*/16);
  std::string bytes = buf.str();
  // Record 0 starts right after the 24-byte global header; orig_len is the
  // fourth u32 of the record header. Lower it below incl_len (24 -> 4).
  const std::size_t orig_len_off = 24 + 12;
  bytes[orig_len_off] = 4;
  std::stringstream in(bytes);
  io::PcapReader reader(in);
  io::PcapRecord rec;
  ASSERT_TRUE(reader.Next(rec));  // record 1 — record 0 was dropped
  EXPECT_EQ(rec.data, std::vector<std::uint8_t>(16, 0xBB));
  EXPECT_FALSE(reader.Next(rec));
  EXPECT_EQ(reader.records(), 1u);
  EXPECT_EQ(reader.drops().overcapture, 1u);
  EXPECT_EQ(reader.drops().oversize, 0u);
  EXPECT_EQ(reader.drops().total(), 1u);
}

TEST(Pcap, ConfigurableSnaplenCapTightensTheCeiling) {
  // A reader-side cap below the file's declared snaplen drops records the
  // file itself would have allowed.
  std::stringstream buf;
  io::PcapOptions opts;
  opts.snaplen = 4096;
  io::PcapWriter writer(buf, opts);
  writer.Write(1, std::vector<std::uint8_t>(300, 0x33));
  writer.Write(2, std::vector<std::uint8_t>(100, 0x44));
  const std::string bytes = buf.str();
  {
    std::stringstream in(bytes);
    io::PcapReader reader(in, /*max_snaplen=*/128);
    io::PcapRecord rec;
    ASSERT_TRUE(reader.Next(rec));
    EXPECT_EQ(rec.data.size(), 100u);
    EXPECT_FALSE(reader.Next(rec));
    EXPECT_EQ(reader.drops().oversize, 1u);
  }
  {
    // Default cap: both records pass.
    std::stringstream in(bytes);
    io::PcapReader reader(in);
    io::PcapRecord rec;
    std::size_t n = 0;
    while (reader.Next(rec)) ++n;
    EXPECT_EQ(n, 2u);
    EXPECT_EQ(reader.drops().total(), 0u);
  }
}

// ---------------------------------------------------------------------------
// wire parser
// ---------------------------------------------------------------------------

dp::FiveTuple TcpTuple() {
  dp::FiveTuple t;
  t.version = 4;
  t.proto = dp::kProtoTcp;
  t.src = {10, 1, 2, 3};
  t.dst = {172, 16, 9, 9};
  t.src_port = 4321;
  t.dst_port = 20001;
  return t;
}

TEST(WireParser, ParsesBuiltFramesExactly) {
  // BuildFrame -> Parse is the identity on (tuple, wire_len, payload) for
  // random tuples of both IP versions and both L4 protocols.
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<int> byte(0, 255);
  io::WireParser parser;
  for (int i = 0; i < 200; ++i) {
    dp::FiveTuple t;
    t.version = (rng() & 1) ? 4 : 6;
    t.proto = (rng() & 1) ? dp::kProtoTcp : dp::kProtoUdp;
    const std::size_t addr_bytes = t.version == 4 ? 4 : 16;
    for (std::size_t b = 0; b < addr_bytes; ++b) {
      t.src[b] = static_cast<std::uint8_t>(byte(rng));
      t.dst[b] = static_cast<std::uint8_t>(byte(rng));
    }
    t.src_port = static_cast<std::uint16_t>(rng());
    t.dst_port = static_cast<std::uint16_t>(rng());

    std::array<std::uint8_t, tr::kRawBytesPerPacket> payload;
    for (auto& b : payload) b = static_cast<std::uint8_t>(byte(rng));
    const std::uint16_t wire_len = static_cast<std::uint16_t>(
        io::MinWireLen(t) + rng() % 1200);

    const auto frame = io::BuildFrame(t, payload, wire_len);
    io::ParsedPacket out;
    ASSERT_TRUE(parser.Parse(frame, 123456, out));
    EXPECT_EQ(out.tuple, dp::Canonical(t));
    EXPECT_EQ(out.key.digest, dp::DigestTuple(t).digest);
    EXPECT_EQ(out.wire_len, wire_len);
    EXPECT_EQ(out.payload, payload);
    EXPECT_EQ(out.payload_captured, tr::kRawBytesPerPacket);
    EXPECT_EQ(out.ts_us, 123456u);
  }
  EXPECT_EQ(parser.stats().parsed, 200u);
  EXPECT_EQ(parser.stats().frames, 200u);
}

TEST(WireParser, UnwrapsSingleAndStackedVlanTags) {
  const auto t = TcpTuple();
  std::array<std::uint8_t, tr::kRawBytesPerPacket> payload{};
  payload[0] = 0x5A;
  auto frame = io::BuildFrame(t, payload, 200);

  // Splice one 802.1Q tag, then a QinQ (0x88a8 outer) pair, after the MACs.
  auto tagged = [&](std::initializer_list<std::uint16_t> tpids) {
    std::vector<std::uint8_t> f(frame.begin(), frame.begin() + 12);
    std::uint16_t inner_type =
        static_cast<std::uint16_t>((frame[12] << 8) | frame[13]);
    std::vector<std::uint16_t> chain(tpids);
    for (std::size_t i = 0; i < chain.size(); ++i) {
      f.push_back(static_cast<std::uint8_t>(chain[i] >> 8));
      f.push_back(static_cast<std::uint8_t>(chain[i]));
      f.push_back(0x00);  // PCP/VID
      f.push_back(static_cast<std::uint8_t>(100 + i));
    }
    f.push_back(static_cast<std::uint8_t>(inner_type >> 8));
    f.push_back(static_cast<std::uint8_t>(inner_type));
    f.insert(f.end(), frame.begin() + 14, frame.end());
    return f;
  };

  io::WireParser parser;
  io::ParsedPacket out;
  ASSERT_TRUE(parser.Parse(tagged({io::kEtherTypeVlan}), 1, out));
  EXPECT_EQ(out.vlan_tags, 1u);
  EXPECT_EQ(out.tuple, dp::Canonical(t));
  EXPECT_EQ(out.payload[0], 0x5A);

  ASSERT_TRUE(
      parser.Parse(tagged({io::kEtherTypeQinQ, io::kEtherTypeVlan}), 2, out));
  EXPECT_EQ(out.vlan_tags, 2u);
  EXPECT_EQ(out.tuple, dp::Canonical(t));
  EXPECT_EQ(parser.stats().vlan_tags, 3u);
  EXPECT_EQ(parser.stats().parsed, 2u);
}

TEST(WireParser, CountsDropsByReason) {
  io::WireParser parser;
  io::ParsedPacket out;

  // ARP frame: valid Ethernet, non-IP ethertype.
  std::vector<std::uint8_t> arp(42, 0);
  arp[12] = 0x08;
  arp[13] = 0x06;
  EXPECT_FALSE(parser.Parse(arp, 1, out));
  EXPECT_EQ(parser.stats().non_ip, 1u);

  // ICMP: IPv4 with proto 1 — parsed IP, dropped at L4.
  auto icmp = io::BuildFrame(TcpTuple(), std::vector<std::uint8_t>(8), 60);
  icmp[14 + 9] = 1;  // overwrite the protocol byte
  EXPECT_FALSE(parser.Parse(icmp, 2, out));
  EXPECT_EQ(parser.stats().non_l4, 1u);

  // Non-first IPv4 fragment: the bytes at the port offsets are mid-datagram
  // payload, not an L4 header.
  auto frag = io::BuildFrame(TcpTuple(), std::vector<std::uint8_t>(8), 60);
  frag[14 + 6] = 0x00;
  frag[14 + 7] = 0x03;  // fragment offset 3
  EXPECT_FALSE(parser.Parse(frag, 2, out));
  EXPECT_EQ(parser.stats().fragments, 1u);

  // Truncations at every layer: runt Ethernet, cut IPv4 header, cut TCP
  // header, cut VLAN tag.
  const auto whole = io::BuildFrame(TcpTuple(), std::vector<std::uint8_t>(8),
                                    60);
  for (const std::size_t keep : {std::size_t{9}, std::size_t{20},
                                 std::size_t{40}}) {
    EXPECT_FALSE(parser.Parse(
        std::span<const std::uint8_t>(whole.data(), keep), 3, out));
  }
  EXPECT_EQ(parser.stats().truncated, 3u);
  EXPECT_EQ(parser.stats().frames, 6u);
  EXPECT_EQ(parser.stats().parsed, 0u);

  // A capture truncated inside the *payload* still parses: wire_len comes
  // from the IP header, missing payload bytes zero-pad.
  std::array<std::uint8_t, tr::kRawBytesPerPacket> payload;
  payload.fill(0xCC);
  const auto full = io::BuildFrame(TcpTuple(), payload, 1000);
  const std::size_t cut = 14 + 20 + 20 + 10;  // 10 payload bytes captured
  io::ParsedPacket short_out;
  ASSERT_TRUE(parser.Parse(
      std::span<const std::uint8_t>(full.data(), cut), 4, short_out));
  EXPECT_EQ(short_out.wire_len, 1000u);
  EXPECT_EQ(short_out.payload_captured, 10u);
  for (std::size_t b = 0; b < tr::kRawBytesPerPacket; ++b) {
    EXPECT_EQ(short_out.payload[b], b < 10 ? 0xCC : 0x00);
  }
}

TEST(WireParser, StripsEthernetMinimumFramePadding) {
  // A 1-byte UDP datagram (IP total length 29) padded by the NIC to the
  // 60-byte Ethernet minimum: the 17 pad bytes after the datagram must not
  // enter the payload window.
  auto t = TcpTuple();
  t.proto = dp::kProtoUdp;
  std::vector<std::uint8_t> body(18, 0xEE);  // 1 real byte + 17 "pad" bytes
  const auto frame = io::BuildFrame(t, body, /*wire_len=*/29);
  ASSERT_EQ(frame.size(), 60u);

  io::WireParser parser;
  io::ParsedPacket out;
  ASSERT_TRUE(parser.Parse(frame, 1, out));
  EXPECT_EQ(out.wire_len, 29u);
  EXPECT_EQ(out.payload_captured, 1u);
  EXPECT_EQ(out.payload[0], 0xEE);
  for (std::size_t b = 1; b < tr::kRawBytesPerPacket; ++b) {
    EXPECT_EQ(out.payload[b], 0x00) << "pad byte " << b << " leaked";
  }
}

TEST(WireParser, BuildFrameRejectsImpossibleRequests) {
  auto t = TcpTuple();
  EXPECT_THROW(io::BuildFrame(t, {}, 39), std::invalid_argument);  // < 20+20
  t.proto = 47;  // GRE
  EXPECT_THROW(io::BuildFrame(t, {}, 100), std::invalid_argument);
  t = TcpTuple();
  t.version = 5;
  EXPECT_THROW(io::BuildFrame(t, {}, 100), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// flow assembly + labeling
// ---------------------------------------------------------------------------

io::ParsedPacket MakeParsed(const dp::FiveTuple& t, std::uint64_t ts_us,
                            std::uint16_t len = 100) {
  io::ParsedPacket p;
  p.ts_us = ts_us;
  p.tuple = dp::Canonical(t);
  p.key = dp::DigestTuple(t);
  p.wire_len = len;
  return p;
}

TEST(FlowAssembler, GroupsBidirectionallyAndRebasesTimestamps) {
  auto fwd = TcpTuple();
  auto rev = fwd;
  std::swap(rev.src, rev.dst);
  std::swap(rev.src_port, rev.dst_port);
  dp::FiveTuple other = fwd;
  other.dst_port = 20002;

  io::FlowAssembler asem(io::FlowLabeler{}.MapPort(20001, 7).Default(-1));
  asem.Add(MakeParsed(fwd, 1000));
  asem.Add(MakeParsed(other, 1500));
  asem.Add(MakeParsed(rev, 2000));   // same conversation as fwd
  asem.Add(MakeParsed(fwd, 900));    // reordered: before the flow's start
  const auto ds = asem.Finish("t", {});

  ASSERT_EQ(ds.flows.size(), 2u);
  EXPECT_EQ(ds.flows[0].label, 7);       // port rule
  EXPECT_EQ(ds.flows[1].label, -1);      // default
  ASSERT_EQ(ds.flows[0].packets.size(), 3u);
  EXPECT_EQ(ds.flows[0].packets[0].ts_us, 0u);
  EXPECT_EQ(ds.flows[0].packets[1].ts_us, 1000u);
  EXPECT_EQ(ds.flows[0].packets[2].ts_us, 0u);  // clamped
  EXPECT_EQ(asem.stats().reordered, 1u);
  EXPECT_EQ(ds.flows[0].tuple, dp::Canonical(fwd));
  EXPECT_EQ(ds.flows[0].key.digest, dp::DigestTuple(rev).digest);
}

TEST(FlowLabeler, SubnetRulesMatchEitherEndpointAndPrefixLength) {
  io::FlowLabeler labeler;
  const std::array<std::uint8_t, 4> attacker = {192, 168, 4, 0};
  labeler.MapSubnet(4, attacker, 22, 99).Default(0);

  auto t = TcpTuple();
  EXPECT_EQ(labeler.LabelFor(t), 0);
  t.dst = {192, 168, 5, 77};  // inside /22 of 192.168.4.0
  EXPECT_EQ(labeler.LabelFor(t), 99);
  t.dst = {192, 168, 8, 1};  // outside
  EXPECT_EQ(labeler.LabelFor(t), 0);
  t.src = {192, 168, 6, 2};  // src side matches too
  EXPECT_EQ(labeler.LabelFor(t), 99);

  EXPECT_THROW(labeler.MapSubnet(4, attacker, 40, 1), std::invalid_argument);
  // The prefix bytes must cover the declared prefix length.
  const std::array<std::uint8_t, 2> short_prefix = {192, 168};
  EXPECT_THROW(labeler.MapSubnet(4, short_prefix, 24, 1),
               std::invalid_argument);
  io::FlowLabeler conflicted;
  conflicted.MapPort(80, 1);
  EXPECT_THROW(conflicted.MapPort(80, 2), std::invalid_argument);
  conflicted.MapPort(80, 1);  // re-adding the same mapping is fine
}

// ---------------------------------------------------------------------------
// dataset round trip + replay parity (the ISSUE's acceptance criteria)
// ---------------------------------------------------------------------------

void ExpectDatasetsBitIdentical(const tr::Dataset& a, const tr::Dataset& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.class_names, b.class_names);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    const auto& fa = a.flows[i];
    const auto& fb = b.flows[i];
    EXPECT_EQ(fa.key.digest, fb.key.digest) << "flow " << i;
    EXPECT_EQ(fa.tuple, fb.tuple) << "flow " << i;
    EXPECT_EQ(fa.label, fb.label) << "flow " << i;
    ASSERT_EQ(fa.packets.size(), fb.packets.size()) << "flow " << i;
    for (std::size_t p = 0; p < fa.packets.size(); ++p) {
      ASSERT_EQ(fa.packets[p].ts_us, fb.packets[p].ts_us)
          << "flow " << i << " pkt " << p;
      ASSERT_EQ(fa.packets[p].len, fb.packets[p].len)
          << "flow " << i << " pkt " << p;
      ASSERT_EQ(fa.packets[p].bytes, fb.packets[p].bytes)
          << "flow " << i << " pkt " << p;
    }
  }
}

TEST(PcapDataset, SyntheticDatasetRoundTripsBitIdentically) {
  const auto ds = tr::Generate(tr::PeerRushSpec(6, 321));
  for (const bool nanos : {false, true}) {
    std::stringstream buf;
    io::PcapExportOptions eopts;
    eopts.pcap.nanos = nanos;
    const auto records = io::WriteDatasetPcap(buf, ds, eopts);
    std::size_t packets = 0;
    for (const auto& f : ds.flows) packets += f.packets.size();
    EXPECT_EQ(records, packets);

    const auto imported = io::ReadDatasetPcap(buf, io::ImportOptionsFor(ds));
    EXPECT_EQ(imported.records, records);
    EXPECT_EQ(imported.parse.parsed, records);
    EXPECT_EQ(imported.parse.truncated + imported.parse.non_ip +
                  imported.parse.non_l4,
              0u);
    ExpectDatasetsBitIdentical(ds, imported.dataset);
  }
}

TEST(PcapDataset, NegativeAttackLabelsSurviveTheRoundTrip) {
  // Mixed benign + injected-attack dataset (the anomaly_detection shape):
  // attack flows carry negative labels on distinct service ports, and
  // ImportOptionsFor must recover them from the flows, not 0..NumClasses-1.
  auto ds = tr::Generate(tr::PeerRushSpec(3, 55));
  const auto profiles = tr::AttackProfiles();
  for (auto& flow :
       tr::GenerateFlows(profiles[0], 2, /*label=*/-1, 24, 32, 77)) {
    ds.flows.push_back(std::move(flow));
  }
  std::stringstream buf;
  io::WriteDatasetPcap(buf, ds);
  const auto imported = io::ReadDatasetPcap(buf, io::ImportOptionsFor(ds));
  ExpectDatasetsBitIdentical(ds, imported.dataset);
}

TEST(PcapDataset, MergedExportPreservesFlowContents) {
  // Merged (interleaved) export reorders flows by first appearance, but
  // every flow's identity, label and packet sequence must survive.
  const auto ds = tr::Generate(tr::PeerRushSpec(5, 11));
  std::stringstream buf;
  io::PcapExportOptions eopts;
  eopts.merged = true;
  io::WriteDatasetPcap(buf, ds, eopts);
  const auto imported = io::ReadDatasetPcap(buf, io::ImportOptionsFor(ds));

  ASSERT_EQ(imported.dataset.flows.size(), ds.flows.size());
  std::map<std::uint64_t, const tr::Flow*> by_digest;
  for (const auto& f : ds.flows) by_digest[f.key.digest] = &f;
  for (const auto& f : imported.dataset.flows) {
    const auto it = by_digest.find(f.key.digest);
    ASSERT_NE(it, by_digest.end());
    const tr::Flow& want = *it->second;
    EXPECT_EQ(f.label, want.label);
    EXPECT_EQ(f.tuple, want.tuple);
    ASSERT_EQ(f.packets.size(), want.packets.size());
    for (std::size_t p = 0; p < f.packets.size(); ++p) {
      EXPECT_EQ(f.packets[p].ts_us, want.packets[p].ts_us);
      EXPECT_EQ(f.packets[p].len, want.packets[p].len);
      EXPECT_EQ(f.packets[p].bytes, want.packets[p].bytes);
    }
  }
}

/// The 16-dim seq-family model test_stream_server.cpp uses, rebuilt here so
/// replay parity runs against a real compiled pipeline.
rt::LoweredModel BuildSeqModel(const tr::Dataset& ds, std::uint64_t seed) {
  const auto offline = tr::ExtractSeqFeatures(ds.flows);
  core::ProgramBuilder b(16);
  auto segs = b.Partition(b.input(), 2, 2);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> w(-0.05f, 0.05f);
  std::vector<core::ValueId> maps;
  for (auto seg : segs) {
    std::vector<float> weights(2 * 3);
    for (float& v : weights) v = w(rng);
    maps.push_back(
        b.Map(seg, core::MakeLinear(std::move(weights), 2, 3, {}), 32));
  }
  auto sum = b.SumReduce(std::span<const core::ValueId>(maps));
  auto out = b.Map(sum, core::MakeReLU(3), 64);
  return pegasus::compiler::CompileToSwitch(b.Finish(out), offline.x,
                                            offline.size())
      .lowered;
}

std::map<std::pair<std::uint32_t, std::uint32_t>, std::pair<std::int32_t, float>>
ByFlowPacket(const std::vector<rt::StreamDecision>& decisions) {
  std::map<std::pair<std::uint32_t, std::uint32_t>,
           std::pair<std::int32_t, float>>
      out;
  for (const auto& d : decisions) {
    out[{d.flow, d.index}] = {d.predicted, d.score};
  }
  return out;
}

TEST(PcapReplay, CaptureReplayMatchesServingTheOriginalDataset) {
  const auto ds = tr::Generate(tr::PeerRushSpec(6, 2025));
  const auto lowered = BuildSeqModel(ds, 5);

  // Reference: the merged in-memory trace, single-threaded.
  const auto trace = tr::MergeTrace(ds.flows);
  auto make_opts = [](std::size_t shards, bool mt) {
    rt::StreamServerOptions o;
    o.num_shards = shards;
    o.flows_per_shard = 1 << 10;
    o.batch_size = 32;
    o.feature = rt::FeatureKind::kSeq;
    o.multithreaded = mt;
    return o;
  };
  rt::StreamServer ref_server(lowered, make_opts(1, false));
  const auto want = ByFlowPacket(ref_server.Serve(trace));
  ASSERT_GT(want.size(), 0u);

  // Export once, replay through PcapPacketSource in ST and MT mode.
  std::stringstream buf;
  io::WriteDatasetPcap(buf, ds, {});
  const std::string capture = buf.str();
  const auto iopts = io::ImportOptionsFor(ds);

  for (const bool mt : {false, true}) {
    std::stringstream in(capture);
    io::PcapPacketSource source(in, iopts.labeler);
    rt::StreamServer server(lowered, make_opts(mt ? 4 : 1, mt));
    const auto got = ByFlowPacket(server.Serve(source));
    ASSERT_EQ(got.size(), want.size()) << (mt ? "MT" : "ST");
    for (const auto& [at, decision] : want) {
      const auto it = got.find(at);
      ASSERT_NE(it, got.end())
          << "flow " << at.first << " pkt " << at.second;
      EXPECT_EQ(it->second.first, decision.first)
          << "flow " << at.first << " pkt " << at.second;
      EXPECT_EQ(it->second.second, decision.second)
          << "flow " << at.first << " pkt " << at.second;
    }
    EXPECT_EQ(source.parse_stats().parsed, source.parse_stats().frames);
    EXPECT_EQ(source.flows_seen(), ds.flows.size());
  }
}

TEST(PcapReplay, PartitionedReplayMatchesUnpartitioned) {
  // Multi-ingest from a capture file: PartitionedPcapSource gives each
  // partition its own decode pass, so flow numbering matches the
  // unpartitioned source and a 2-ingest replay produces the same per-flow
  // decisions as the single-threaded reference.
  const auto ds = tr::Generate(tr::PeerRushSpec(6, 2025));
  const auto lowered = BuildSeqModel(ds, 5);
  const auto trace = tr::MergeTrace(ds.flows);

  auto make_opts = [](std::size_t shards, bool mt, std::size_t ingest) {
    rt::StreamServerOptions o;
    o.num_shards = shards;
    o.flows_per_shard = 1 << 10;
    o.batch_size = 32;
    o.feature = rt::FeatureKind::kSeq;
    o.multithreaded = mt;
    o.num_ingest = ingest;
    return o;
  };
  rt::StreamServer ref_server(lowered, make_opts(1, false, 1));
  const auto want = ByFlowPacket(ref_server.Serve(trace));
  ASSERT_GT(want.size(), 0u);

  const std::string path = "partitioned_replay_test.pcap";
  io::WriteDatasetPcap(path, ds, {});
  const auto iopts = io::ImportOptionsFor(ds);

  rt::StreamServer server(lowered, make_opts(4, true, 2));
  io::PartitionedPcapSource source(
      path, 2,
      [&server](std::uint64_t digest) {
        return server.IngestPartitionOf(digest);
      },
      iopts.labeler);
  ASSERT_EQ(source.partitions(), 2u);
  const auto got = ByFlowPacket(server.Serve(source));
  EXPECT_EQ(server.Stats().shed.total(), 0u);
  ASSERT_EQ(got.size(), want.size());
  for (const auto& [at, decision] : want) {
    const auto it = got.find(at);
    ASSERT_NE(it, got.end()) << "flow " << at.first << " pkt " << at.second;
    EXPECT_EQ(it->second.first, decision.first)
        << "flow " << at.first << " pkt " << at.second;
    EXPECT_EQ(it->second.second, decision.second)
        << "flow " << at.first << " pkt " << at.second;
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// replay pacing
// ---------------------------------------------------------------------------

TEST(TraceReplayer, SpanSourceMatchesSpanServe) {
  const auto ds = tr::Generate(tr::PeerRushSpec(4, 99));
  const auto lowered = BuildSeqModel(ds, 6);
  const auto trace = tr::MergeTrace(ds.flows);

  rt::StreamServerOptions opts;
  opts.feature = rt::FeatureKind::kSeq;
  opts.flows_per_shard = 1 << 10;
  rt::StreamServer a(lowered, opts);
  rt::StreamServer b(lowered, opts);
  const auto via_span = a.Serve(trace);
  rt::SpanPacketSource source(trace);
  const auto via_source = b.Serve(source);
  ASSERT_EQ(via_span.size(), via_source.size());
  for (std::size_t i = 0; i < via_span.size(); ++i) {
    EXPECT_EQ(via_span[i].flow, via_source[i].flow);
    EXPECT_EQ(via_span[i].index, via_source[i].index);
    EXPECT_EQ(via_span[i].predicted, via_source[i].predicted);
  }
}

TEST(TraceReplayer, PacesDeliveryAndRecordsStats) {
  // A 3-packet trace spanning 40ms, replayed at x2 => >= ~20ms wall.
  std::vector<tr::Packet> packets(3);
  std::vector<tr::TracePacket> trace(3);
  for (std::size_t i = 0; i < 3; ++i) {
    trace[i].ts_us = i * 20000;
    trace[i].index = static_cast<std::uint32_t>(i);
    trace[i].packet = &packets[i];
  }
  rt::SpanPacketSource source(trace);
  io::ReplayOptions ropts;
  ropts.clock = io::ReplayClock::kSpeedup;
  ropts.speedup = 2.0;
  io::TraceReplayer replayer(source, ropts);

  tr::TracePacket tp;
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t n = 0;
  while (replayer.Next(tp)) ++n;
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(n, 3u);
  EXPECT_GE(wall_ms, 19.0);  // 40ms span at x2
  const auto& stats = replayer.stats();
  EXPECT_EQ(stats.packets, 3u);
  EXPECT_EQ(stats.TraceSpanUs(), 40000u);
  EXPECT_GE(stats.wall_ms, 19.0);

  // Afap mode does not pace (and records zero lag).
  rt::SpanPacketSource fast_source(trace);
  io::TraceReplayer fast(fast_source, {});
  while (fast.Next(tp)) {
  }
  EXPECT_EQ(fast.stats().packets, 3u);
  EXPECT_EQ(fast.stats().max_lag_us, 0u);
  EXPECT_LT(fast.stats().wall_ms, 19.0);

  io::ReplayOptions zero;
  zero.clock = io::ReplayClock::kSpeedup;
  zero.speedup = 0.0;
  EXPECT_THROW(io::TraceReplayer(source, zero), std::invalid_argument);
}

}  // namespace
