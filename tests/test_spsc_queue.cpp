// SpscQueue unit tests (ISSUE 6 satellite): burst push/pop semantics at
// capacity boundaries and across wraparound, partial transfers, in-band
// control items riding between packets, and a producer/consumer stress run
// mixing single and burst operations — the ring invariants the burst
// dataplane rework leans on.
#include "runtime/spsc_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <span>
#include <thread>
#include <vector>

namespace rt = pegasus::runtime;

namespace {

std::vector<int> Iota(std::size_t n, int start = 0) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), start);
  return v;
}

}  // namespace

TEST(SpscQueue, CapacityRoundsUpToPowerOfTwo) {
  rt::SpscQueue<int> q(5);
  EXPECT_EQ(q.capacity(), 8u);
  EXPECT_THROW(rt::SpscQueue<int>(0), std::invalid_argument);
}

TEST(SpscQueue, SingleElementRoundTripPreservesOrder) {
  rt::SpscQueue<int> q(4);
  for (int v : {10, 20, 30}) EXPECT_TRUE(q.TryPush(v));
  int out = 0;
  for (int want : {10, 20, 30}) {
    ASSERT_TRUE(q.TryPop(out));
    EXPECT_EQ(out, want);
  }
  EXPECT_FALSE(q.TryPop(out));
}

TEST(SpscQueue, BurstPushStopsExactlyAtCapacity) {
  rt::SpscQueue<int> q(8);
  auto items = Iota(8);
  EXPECT_EQ(q.TryPushBurst(std::span<int>(items)), 8u);
  // Full: both the burst and the single push must refuse.
  auto more = Iota(3, 100);
  EXPECT_EQ(q.TryPushBurst(std::span<int>(more)), 0u);
  EXPECT_FALSE(q.TryPush(200));
  // Drain confirms order and count.
  std::vector<int> out(8);
  EXPECT_EQ(q.TryPopBurst(std::span<int>(out)), 8u);
  EXPECT_EQ(out, Iota(8));
}

TEST(SpscQueue, BurstPushIsPartialWhenNearlyFull) {
  rt::SpscQueue<int> q(8);
  for (int v : {0, 1, 2, 3, 4}) ASSERT_TRUE(q.TryPush(v));
  auto items = Iota(8, 5);  // 5..12, only 3 slots free
  EXPECT_EQ(q.TryPushBurst(std::span<int>(items)), 3u);
  std::vector<int> out(16);
  EXPECT_EQ(q.TryPopBurst(std::span<int>(out)), 8u);
  out.resize(8);
  EXPECT_EQ(out, Iota(8));  // 0..4 singles + 5..7 from the burst
}

TEST(SpscQueue, BurstPopIsPartialWhenNearlyEmpty) {
  rt::SpscQueue<int> q(8);
  for (int v : {7, 8, 9}) ASSERT_TRUE(q.TryPush(v));
  std::vector<int> out(8, -1);
  EXPECT_EQ(q.TryPopBurst(std::span<int>(out)), 3u);
  EXPECT_EQ(out[0], 7);
  EXPECT_EQ(out[1], 8);
  EXPECT_EQ(out[2], 9);
  EXPECT_EQ(out[3], -1);  // untouched beyond the popped count
  EXPECT_EQ(q.TryPopBurst(std::span<int>(out)), 0u);
  // Empty spans are no-ops on both sides.
  EXPECT_EQ(q.TryPushBurst(std::span<int>()), 0u);
  EXPECT_EQ(q.TryPopBurst(std::span<int>()), 0u);
}

TEST(SpscQueue, BurstsPreserveOrderAcrossWraparound) {
  // Capacity 8, transfers of 5: the cursors wrap the index mask every
  // other burst, which is exactly where a modular-arithmetic bug would
  // reorder or drop elements.
  rt::SpscQueue<int> q(8);
  int produced = 0;
  int consumed = 0;
  std::vector<int> stage(5);
  std::vector<int> out(5);
  for (int round = 0; round < 100; ++round) {
    std::iota(stage.begin(), stage.end(), produced);
    const std::size_t pushed = q.TryPushBurst(std::span<int>(stage));
    produced += static_cast<int>(pushed);
    const std::size_t popped = q.TryPopBurst(std::span<int>(out));
    for (std::size_t i = 0; i < popped; ++i) {
      ASSERT_EQ(out[i], consumed) << "round " << round;
      ++consumed;
    }
  }
  // Drain the tail.
  std::size_t n;
  while ((n = q.TryPopBurst(std::span<int>(out))) != 0) {
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], consumed);
      ++consumed;
    }
  }
  EXPECT_EQ(consumed, produced);
  EXPECT_GT(consumed, 100);  // the ring made real progress
}

TEST(SpscQueue, ControlItemsInterleaveInOrderAndLeaveRingEmpty) {
  // Mirrors the StreamServer's in-band swap: elements owning a shared_ptr
  // must pop in position and must not stay pinned in the ring afterwards.
  struct Item {
    int seq = -1;
    std::shared_ptr<int> control;
  };
  rt::SpscQueue<Item> q(8);
  auto ctrl = std::make_shared<int>(42);
  ASSERT_TRUE(q.TryPush(Item{0, nullptr}));
  ASSERT_TRUE(q.TryPush(Item{1, ctrl}));
  std::vector<Item> tail;
  tail.push_back(Item{2, nullptr});
  tail.push_back(Item{3, ctrl});
  tail.push_back(Item{4, nullptr});
  ASSERT_EQ(q.TryPushBurst(std::span<Item>(tail)), 3u);
  // Burst-staged control items moved INTO the ring, not copied (tail[1]
  // held seq 3's handle before the push).
  EXPECT_EQ(tail[1].control, nullptr);

  std::vector<Item> out(8);
  ASSERT_EQ(q.TryPopBurst(std::span<Item>(out)), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i].seq, i);
  EXPECT_EQ(out[1].control.get(), ctrl.get());
  EXPECT_EQ(out[3].control.get(), ctrl.get());
  // Popped slots are moved out: only `ctrl` and the two popped copies
  // remain — nothing pinned inside the ring.
  out.clear();
  EXPECT_EQ(ctrl.use_count(), 1);
}

TEST(SpscQueue, ConcurrentMixedBurstStressKeepsSequence) {
  // One producer, one consumer, mixed single/burst transfers with varying
  // sizes: the consumer must observe 0..N-1 exactly, in order. (Also the
  // TSan target for the cached-cursor fast path.)
  constexpr int kTotal = 200000;
  rt::SpscQueue<int> q(256);
  std::thread producer([&] {
    const std::size_t sizes[] = {1, 3, 17, 64, 5};
    std::vector<int> stage;
    int next = 0;
    std::size_t round = 0;
    while (next < kTotal) {
      const std::size_t want =
          std::min<std::size_t>(sizes[round++ % 5],
                                static_cast<std::size_t>(kTotal - next));
      stage.resize(want);
      std::iota(stage.begin(), stage.end(), next);
      std::span<int> rest(stage);
      while (!rest.empty()) {
        const std::size_t pushed = q.TryPushBurst(rest);
        rest = rest.subspan(pushed);
        if (pushed == 0) std::this_thread::yield();
      }
      next += static_cast<int>(want);
    }
  });
  int expect = 0;
  std::vector<int> out(100);
  while (expect < kTotal) {
    const std::size_t n = q.TryPopBurst(std::span<int>(out));
    if (n == 0) {
      int one = -1;
      if (q.TryPop(one)) {
        ASSERT_EQ(one, expect);
        ++expect;
      } else {
        std::this_thread::yield();
      }
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], expect);
      ++expect;
    }
  }
  producer.join();
  EXPECT_FALSE(q.TryPop(expect));
}
