// Property tests on lowering modes: the CRC-ternary path and the
// range-match (DirtCAM) fallback must be *semantically identical* — only
// their resource accounting differs. Also covers range-match tables at the
// dataplane level.
#include <gtest/gtest.h>

#include <random>

#include "core/operators.hpp"
#include "core/tablegen.hpp"
#include "runtime/lowering.hpp"

namespace core = pegasus::core;
namespace rt = pegasus::runtime;
namespace dp = pegasus::dataplane;

namespace {

constexpr std::size_t kDim = 2;

core::CompiledModel WideKeyModel(std::uint64_t seed) {
  // A 2-dim-key Map with enough leaves that CRC expansion is nontrivial
  // yet still placeable fully-ternary (6-dim keys would not be — that is
  // the situation the range fallback exists for, covered by the RNN-B
  // integration test).
  core::ProgramBuilder b(kDim);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> wdist(-0.02f, 0.02f);
  std::vector<float> w(kDim * 2);
  for (float& v : w) v = wdist(rng);
  core::ValueId v =
      b.Map(b.input(), core::MakeLinear(w, kDim, 2, {0.1f, -0.1f}), 32);
  std::uniform_real_distribution<float> fdist(0.0f, 255.0f);
  std::vector<float> x(2000 * kDim);
  for (float& f : x) f = std::floor(fdist(rng));
  return core::CompileProgram(b.Finish(v), x, 2000, {});
}

}  // namespace

TEST(LoweringModes, TernaryAndRangePathsAgreeBitForBit) {
  const auto model = WideKeyModel(1);
  rt::LoweringOptions ternary_opts;
  ternary_opts.max_ternary_entries_per_table = 1u << 24;  // never fall back
  rt::LoweringOptions range_opts;
  range_opts.max_ternary_entries_per_table = 1;  // always fall back
  auto via_ternary = rt::Lower(model, ternary_opts);
  auto via_range = rt::Lower(model, range_opts);

  std::mt19937_64 rng(2);
  std::uniform_real_distribution<float> dist(0.0f, 255.0f);
  for (int i = 0; i < 400; ++i) {
    std::vector<float> x(kDim);
    for (float& f : x) f = std::floor(dist(rng));
    const auto host = model.EvaluateRaw(x);
    ASSERT_EQ(via_ternary.InferRaw(x), host) << i;
    ASSERT_EQ(via_range.InferRaw(x), host) << i;
  }
}

TEST(LoweringModes, RangeFallbackShrinksEntriesButCostsPerEntry) {
  const auto model = WideKeyModel(3);
  rt::LoweringOptions ternary_opts;
  ternary_opts.max_ternary_entries_per_table = 1u << 24;
  rt::LoweringOptions range_opts;
  range_opts.max_ternary_entries_per_table = 1;
  const auto rep_t = rt::Lower(model, ternary_opts).Report();
  const auto rep_r = rt::Lower(model, range_opts).Report();
  // Range mode: exactly one entry per leaf; SRAM (action data) shrinks
  // accordingly when CRC produced many entries per leaf.
  EXPECT_LE(rep_r.sram_bits, rep_t.sram_bits);
  EXPECT_GT(rep_r.tcam_bits, 0u);
}

TEST(LoweringModes, RangeTableMatchesInclusiveBounds) {
  dp::PhvLayout layout;
  const auto key = layout.AddField("k", 8);
  const auto out = layout.AddField("o", 16);
  std::vector<dp::ActionOp> prog{
      {dp::ActionOp::Kind::kSetFromData, out, 0, 0, -1}};
  dp::MatchActionTable t("t", dp::MatchKind::kRange, {key}, {8}, prog, 16);
  t.AddEntry({.range_lo = {10}, .range_hi = {20}, .action_data = {1}});
  t.AddEntry({.range_lo = {21}, .range_hi = {30}, .action_data = {2}});
  dp::Phv phv(layout);
  const auto expect = [&](std::int64_t k, bool hit, std::int64_t val) {
    phv.Set(key, k);
    phv.Set(out, -1);
    EXPECT_EQ(t.Apply(phv), hit) << k;
    if (hit) {
      EXPECT_EQ(phv.Get(out), val) << k;
    }
  };
  expect(9, false, 0);
  expect(10, true, 1);
  expect(20, true, 1);
  expect(21, true, 2);
  expect(30, true, 2);
  expect(31, false, 0);
}

TEST(LoweringModes, RangeTableDirtCamCost) {
  dp::PhvLayout layout;
  const auto key = layout.AddField("k", 10);
  std::vector<dp::ActionOp> prog;
  dp::MatchActionTable t("t", dp::MatchKind::kRange, {key}, {10}, prog, 16);
  t.AddEntry({.range_lo = {0}, .range_hi = {100}});
  // 10-bit key -> 3 nibbles -> 12 encoded bits x 4 = 48 TCAM bits/entry.
  EXPECT_EQ(t.TcamBits(), 48u);
}

TEST(LoweringModes, RangeArityValidated) {
  dp::PhvLayout layout;
  const auto key = layout.AddField("k", 8);
  std::vector<dp::ActionOp> prog;
  dp::MatchActionTable t("t", dp::MatchKind::kRange, {key}, {8}, prog, 16);
  EXPECT_THROW(t.AddEntry({.range_lo = {1, 2}, .range_hi = {3, 4}}),
               std::invalid_argument);
}

TEST(LoweringModes, TernaryExpansionOverflowingStageTcamThrows) {
  // With the fallback disabled (threshold never binds) and a switch whose
  // per-stage TCAM cannot hold the CRC cross-product expansion, placement
  // must fail — the simulator's rendition of a Tofino compile failure.
  const auto model = WideKeyModel(11);
  rt::LoweringOptions opts;
  opts.max_ternary_entries_per_table = 1u << 24;
  opts.switch_model.tcam_bits_per_stage = 64;  // a handful of entries
  EXPECT_THROW(rt::Lower(model, opts), dp::PlacementError);
}

TEST(LoweringModes, RangeFallbackRescuesTernaryOverflow) {
  // Same tiny-TCAM switch, but sized so one DirtCAM entry per leaf fits
  // while the ternary expansion does not: forcing the fallback turns the
  // PlacementError into a successful, semantics-preserving placement.
  const auto model = WideKeyModel(12);
  rt::LoweringOptions ternary_opts;
  ternary_opts.max_ternary_entries_per_table = 1u << 24;
  const auto ternary_bits = rt::Lower(model, ternary_opts).Report().tcam_bits;

  rt::LoweringOptions range_opts;
  range_opts.max_ternary_entries_per_table = 1;
  const auto range_bits = rt::Lower(model, range_opts).Report().tcam_bits;
  ASSERT_LT(range_bits, ternary_bits);

  rt::LoweringOptions tight_ternary = ternary_opts;
  tight_ternary.switch_model.tcam_bits_per_stage = range_bits;
  EXPECT_THROW(rt::Lower(model, tight_ternary), dp::PlacementError);

  rt::LoweringOptions tight_range = range_opts;
  tight_range.switch_model.tcam_bits_per_stage = range_bits;
  auto lowered = rt::Lower(model, tight_range);
  std::mt19937_64 rng(13);
  std::uniform_real_distribution<float> dist(0.0f, 255.0f);
  for (int i = 0; i < 100; ++i) {
    std::vector<float> x(kDim);
    for (float& f : x) f = std::floor(dist(rng));
    ASSERT_EQ(lowered.InferRaw(x), model.EvaluateRaw(x));
  }
}

class ThresholdSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ThresholdSweep, AnyThresholdPreservesSemantics) {
  const auto model = WideKeyModel(7);
  rt::LoweringOptions opts;
  opts.max_ternary_entries_per_table = GetParam();
  auto lowered = rt::Lower(model, opts);
  std::mt19937_64 rng(8);
  std::uniform_real_distribution<float> dist(0.0f, 255.0f);
  for (int i = 0; i < 100; ++i) {
    std::vector<float> x(kDim);
    for (float& f : x) f = std::floor(dist(rng));
    ASSERT_EQ(lowered.InferRaw(x), model.EvaluateRaw(x));
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdSweep,
                         ::testing::Values(1, 64, 1024, 1u << 20));
