#include <gtest/gtest.h>

#include <set>

#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "traffic/features.hpp"
#include "traffic/synthetic.hpp"

namespace tr = pegasus::traffic;
namespace ev = pegasus::eval;

TEST(Synthetic, DeterministicInSeed) {
  auto spec = tr::PeerRushSpec(10, 99);
  auto a = tr::Generate(spec);
  auto b = tr::Generate(spec);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    ASSERT_EQ(a.flows[i].packets.size(), b.flows[i].packets.size());
    EXPECT_EQ(a.flows[i].label, b.flows[i].label);
    EXPECT_EQ(a.flows[i].packets[0].len, b.flows[i].packets[0].len);
    EXPECT_EQ(a.flows[i].packets[0].bytes, b.flows[i].packets[0].bytes);
  }
}

TEST(Synthetic, ClassBalanceAndLabels) {
  auto ds = tr::Generate(tr::CiciotSpec(25, 7));
  ASSERT_EQ(ds.NumClasses(), 3u);
  std::vector<int> counts(3, 0);
  for (const auto& f : ds.flows) ++counts[static_cast<std::size_t>(f.label)];
  for (int c : counts) EXPECT_EQ(c, 25);
}

TEST(Synthetic, PacketInvariants) {
  auto ds = tr::Generate(tr::IscxVpnSpec(5, 3));
  for (const auto& flow : ds.flows) {
    ASSERT_GE(flow.packets.size(), 24u);
    std::uint64_t prev_ts = 0;
    for (const auto& pkt : flow.packets) {
      EXPECT_GE(pkt.len, 40);
      EXPECT_LE(pkt.len, 1500);
      EXPECT_GE(pkt.ts_us, prev_ts);  // timestamps monotone
      prev_ts = pkt.ts_us;
    }
  }
}

TEST(Synthetic, ByteTemplatesAreClassSpecific) {
  auto ds = tr::Generate(tr::PeerRushSpec(30, 11));
  // Average protocol-magic byte (index 0) per class should differ clearly.
  std::vector<double> mean(3, 0.0);
  std::vector<int> cnt(3, 0);
  for (const auto& f : ds.flows) {
    for (const auto& p : f.packets) {
      mean[static_cast<std::size_t>(f.label)] += p.bytes[0];
      ++cnt[static_cast<std::size_t>(f.label)];
    }
  }
  for (int c = 0; c < 3; ++c) mean[static_cast<std::size_t>(c)] /= cnt[static_cast<std::size_t>(c)];
  // All three class means must be pairwise distinct by a margin.
  EXPECT_GT(std::abs(mean[0] - mean[1]), 8.0);
  EXPECT_GT(std::abs(mean[0] - mean[2]), 8.0);
  EXPECT_GT(std::abs(mean[1] - mean[2]), 8.0);
}

TEST(Synthetic, AttackProfilesGenerate) {
  const auto profiles = tr::AttackProfiles();
  ASSERT_EQ(profiles.size(), 6u);
  EXPECT_EQ(profiles[1].name, "Flood");
  auto flows = tr::GenerateFlows(profiles[1], 20, -1, 24, 48, 5);
  EXPECT_EQ(flows.size(), 20u);
  // Flood: near-constant packet size.
  for (const auto& f : flows) {
    for (const auto& p : f.packets) {
      EXPECT_NEAR(p.len, 320, 40);
    }
  }
}

// ------------------------------------------------------------- features

TEST(Features, QuantizersAreMonotone) {
  EXPECT_LE(tr::QuantizeLen(100), tr::QuantizeLen(200));
  EXPECT_LE(tr::QuantizeIpd(10), tr::QuantizeIpd(10000));
  EXPECT_EQ(tr::QuantizeLen(1500), 187);
  EXPECT_EQ(tr::QuantizeIpd(0), 0);
  EXPECT_LE(tr::QuantizeIpd(~0ull >> 16), 255);
}

TEST(Features, DimensionsMatchPaperInputScales) {
  EXPECT_EQ(tr::kStatDim * 8, 128u);   // Leo / N3IC / MLP-B: 128 b
  EXPECT_EQ(tr::kSeqDim * 8, 128u);    // RNN-B / CNN-B / CNN-M: 128 b
  EXPECT_EQ(tr::kRawDim * 8, 3840u);   // CNN-L: 3840 b
}

TEST(Features, ExtractorsEmitConsistentShapes) {
  auto ds = tr::Generate(tr::PeerRushSpec(10, 21));
  const auto stat = tr::ExtractStatFeatures(ds.flows);
  const auto seq = tr::ExtractSeqFeatures(ds.flows);
  const auto raw = tr::ExtractRawBytes(ds.flows);
  EXPECT_EQ(stat.dim, tr::kStatDim);
  EXPECT_EQ(seq.dim, tr::kSeqDim);
  EXPECT_EQ(raw.dim, tr::kRawDim);
  EXPECT_EQ(stat.x.size(), stat.size() * stat.dim);
  // Same walk -> same sample count across feature families.
  EXPECT_EQ(stat.size(), seq.size());
  EXPECT_EQ(stat.size(), raw.size());
  for (std::size_t i = 0; i < stat.size(); ++i) {
    EXPECT_EQ(stat.labels[i], seq.labels[i]);
    EXPECT_EQ(stat.flow_index[i], raw.flow_index[i]);
  }
  // All features are valid 8-bit values.
  for (float v : stat.x) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 255.0f);
  }
}

TEST(Features, StatMinMaxAreConsistent) {
  auto ds = tr::Generate(tr::CiciotSpec(5, 31));
  const auto stat = tr::ExtractStatFeatures(ds.flows);
  for (std::size_t i = 0; i < stat.size(); ++i) {
    const float* f = stat.x.data() + i * stat.dim;
    EXPECT_LE(f[0], f[1]);  // min_len <= max_len
    EXPECT_LE(f[2], f[3]);  // min_ipd <= max_ipd
    EXPECT_GE(f[4], f[0]);  // current len within [min,max]
    EXPECT_LE(f[4], f[1]);
  }
}

TEST(Features, PerFlowSampleCap) {
  auto ds = tr::Generate(tr::PeerRushSpec(8, 41));
  tr::ExtractOptions opts;
  opts.max_samples_per_flow = 3;
  const auto stat = tr::ExtractStatFeatures(ds.flows, opts);
  std::vector<int> per_flow(ds.flows.size(), 0);
  for (std::size_t fi : stat.flow_index) ++per_flow[fi];
  for (int c : per_flow) EXPECT_LE(c, 3);
}

TEST(Features, ShortFlowsAreSkipped) {
  tr::Flow tiny;
  tiny.label = 0;
  tiny.packets.resize(tr::kWindow - 1);
  const auto stat = tr::ExtractStatFeatures({tiny});
  EXPECT_EQ(stat.size(), 0u);
}

// ----------------------------------------------------------------- eval

TEST(Eval, MetricsOnPerfectAndWorstPredictions) {
  std::vector<std::int32_t> truth{0, 0, 1, 1, 2, 2};
  auto perfect = ev::Evaluate(truth, truth, 3);
  EXPECT_DOUBLE_EQ(perfect.f1, 1.0);
  EXPECT_DOUBLE_EQ(perfect.accuracy, 1.0);
  std::vector<std::int32_t> wrong{1, 1, 2, 2, 0, 0};
  auto worst = ev::Evaluate(truth, wrong, 3);
  EXPECT_DOUBLE_EQ(worst.f1, 0.0);
}

TEST(Eval, MacroF1HandlesImbalance) {
  // 9 of class 0, 1 of class 1; always predicting 0 gives high accuracy but
  // poor macro-F1.
  std::vector<std::int32_t> truth{0, 0, 0, 0, 0, 0, 0, 0, 0, 1};
  std::vector<std::int32_t> pred(10, 0);
  auto rep = ev::Evaluate(truth, pred, 2);
  EXPECT_GT(rep.accuracy, 0.85);
  EXPECT_LT(rep.f1, 0.55);
}

TEST(Eval, RocAucPerfectAndRandom) {
  std::vector<float> scores{0.9f, 0.8f, 0.2f, 0.1f};
  std::vector<bool> attack{true, true, false, false};
  auto roc = ev::ComputeRoc(scores, attack);
  EXPECT_DOUBLE_EQ(roc.auc, 1.0);
  std::vector<float> flat{0.5f, 0.5f, 0.5f, 0.5f};
  auto tie = ev::ComputeRoc(flat, attack);
  EXPECT_DOUBLE_EQ(tie.auc, 0.5);
  EXPECT_THROW(ev::ComputeRoc({0.5f}, {true}), std::invalid_argument);
}

TEST(Eval, SplitIsStratifiedAndDisjoint) {
  std::vector<std::int32_t> labels;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 100; ++i) labels.push_back(c);
  }
  const auto split = ev::SplitFlows(labels, 0.75, 0.10, 5);
  std::vector<std::vector<int>> counts(3, std::vector<int>(3, 0));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    ++counts[static_cast<std::size_t>(labels[i])]
            [static_cast<std::size_t>(split[i])];
  }
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(counts[static_cast<std::size_t>(c)][0], 75);
    EXPECT_EQ(counts[static_cast<std::size_t>(c)][1], 10);
    EXPECT_EQ(counts[static_cast<std::size_t>(c)][2], 15);
  }
}

TEST(Eval, PrepareSplitsByFlowNotBySample) {
  auto prep = ev::Prepare(tr::PeerRushSpec(20, 51), /*with_raw_bytes=*/false);
  // No flow index may appear in two different splits.
  std::set<std::size_t> train_flows(prep.stat.train.flow_index.begin(),
                                    prep.stat.train.flow_index.end());
  for (std::size_t fi : prep.stat.test.flow_index) {
    EXPECT_FALSE(train_flows.count(fi)) << "flow " << fi << " leaks";
  }
  EXPECT_GT(prep.stat.train.size(), prep.stat.test.size());
}
