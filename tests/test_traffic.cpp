#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <stdexcept>

#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "traffic/features.hpp"
#include "traffic/stream.hpp"
#include "traffic/synthetic.hpp"

namespace tr = pegasus::traffic;
namespace ev = pegasus::eval;

TEST(Synthetic, DeterministicInSeed) {
  auto spec = tr::PeerRushSpec(10, 99);
  auto a = tr::Generate(spec);
  auto b = tr::Generate(spec);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    ASSERT_EQ(a.flows[i].packets.size(), b.flows[i].packets.size());
    EXPECT_EQ(a.flows[i].label, b.flows[i].label);
    EXPECT_EQ(a.flows[i].packets[0].len, b.flows[i].packets[0].len);
    EXPECT_EQ(a.flows[i].packets[0].bytes, b.flows[i].packets[0].bytes);
  }
}

TEST(Synthetic, ClassBalanceAndLabels) {
  auto ds = tr::Generate(tr::CiciotSpec(25, 7));
  ASSERT_EQ(ds.NumClasses(), 3u);
  std::vector<int> counts(3, 0);
  for (const auto& f : ds.flows) ++counts[static_cast<std::size_t>(f.label)];
  for (int c : counts) EXPECT_EQ(c, 25);
}

TEST(Synthetic, PacketInvariants) {
  auto ds = tr::Generate(tr::IscxVpnSpec(5, 3));
  for (const auto& flow : ds.flows) {
    ASSERT_GE(flow.packets.size(), 24u);
    std::uint64_t prev_ts = 0;
    for (const auto& pkt : flow.packets) {
      EXPECT_GE(pkt.len, 40);
      EXPECT_LE(pkt.len, 1500);
      EXPECT_GE(pkt.ts_us, prev_ts);  // timestamps monotone
      prev_ts = pkt.ts_us;
    }
  }
}

TEST(Synthetic, ByteTemplatesAreClassSpecific) {
  auto ds = tr::Generate(tr::PeerRushSpec(30, 11));
  // Average protocol-magic byte (index 0) per class should differ clearly.
  std::vector<double> mean(3, 0.0);
  std::vector<int> cnt(3, 0);
  for (const auto& f : ds.flows) {
    for (const auto& p : f.packets) {
      mean[static_cast<std::size_t>(f.label)] += p.bytes[0];
      ++cnt[static_cast<std::size_t>(f.label)];
    }
  }
  for (int c = 0; c < 3; ++c) mean[static_cast<std::size_t>(c)] /= cnt[static_cast<std::size_t>(c)];
  // All three class means must be pairwise distinct by a margin.
  EXPECT_GT(std::abs(mean[0] - mean[1]), 8.0);
  EXPECT_GT(std::abs(mean[0] - mean[2]), 8.0);
  EXPECT_GT(std::abs(mean[1] - mean[2]), 8.0);
}

TEST(Synthetic, AttackProfilesGenerate) {
  const auto profiles = tr::AttackProfiles();
  ASSERT_EQ(profiles.size(), 6u);
  EXPECT_EQ(profiles[1].name, "Flood");
  auto flows = tr::GenerateFlows(profiles[1], 20, -1, 24, 48, 5);
  EXPECT_EQ(flows.size(), 20u);
  // Flood: near-constant packet size.
  for (const auto& f : flows) {
    for (const auto& p : f.packets) {
      EXPECT_NEAR(p.len, 320, 40);
    }
  }
}

// ------------------------------------------------------------- features

TEST(Features, QuantizersAreMonotone) {
  EXPECT_LE(tr::QuantizeLen(100), tr::QuantizeLen(200));
  EXPECT_LE(tr::QuantizeIpd(10), tr::QuantizeIpd(10000));
  EXPECT_EQ(tr::QuantizeLen(1500), 187);
  EXPECT_EQ(tr::QuantizeIpd(0), 0);
  EXPECT_LE(tr::QuantizeIpd(~0ull >> 16), 255);
}

// Boundary lock-in for the companding curves (ISSUE 2 satellite): these
// exact values are what the switch range tables would be generated from, so
// any drift is a silent dataplane/model skew.
TEST(Features, QuantizeLenBoundaries) {
  EXPECT_EQ(tr::QuantizeLen(0), 0);
  EXPECT_EQ(tr::QuantizeLen(7), 0);    // sub-bucket lengths floor to 0
  EXPECT_EQ(tr::QuantizeLen(8), 1);
  EXPECT_EQ(tr::QuantizeLen(40), 5);   // minimum wire length
  EXPECT_EQ(tr::QuantizeLen(1500), 187);  // MTU: well inside 8 bits
  EXPECT_EQ(tr::QuantizeLen(1501), 187);  // >MTU floors into the same bucket
  EXPECT_EQ(tr::QuantizeLen(2039), 254);
  EXPECT_EQ(tr::QuantizeLen(2040), 255);  // first saturated length
  EXPECT_EQ(tr::QuantizeLen(65535), 255);  // max uint16 stays capped
}

TEST(Features, QuantizeIpdBoundariesAndCompandingCurve) {
  EXPECT_EQ(tr::QuantizeIpd(0), 0);
  EXPECT_EQ(tr::QuantizeIpd(1), 12);  // 12*log2(2)
  // The curve is exactly round(12*log2(1+us)) until saturation.
  for (const std::uint64_t us :
       {3ull, 100ull, 1000ull, 123456ull, 1000000ull}) {
    const auto want = static_cast<std::uint8_t>(
        std::lround(12.0 * std::log2(1.0 + static_cast<double>(us))));
    EXPECT_EQ(tr::QuantizeIpd(us), want) << "us=" << us;
  }
  // Saturation starts around 2.5 s: 12*log2(1+us) first reaches 255 there.
  EXPECT_EQ(tr::QuantizeIpd(2'500'000), 255);
  // A ~24-day gap (the longest IPD a 48-bit microsecond timestamp pair
  // would realistically see) pins to 255...
  EXPECT_EQ(tr::QuantizeIpd(24ull * 86'400 * 1'000'000), 255);
  // ...and so does an overflow-ish IPD: no wraparound below 255.
  EXPECT_EQ(tr::QuantizeIpd(std::numeric_limits<std::uint64_t>::max()), 255);
  // Monotone across the boundary samples.
  std::uint8_t prev = 0;
  for (const std::uint64_t us : {0ull, 1ull, 10ull, 1000ull, 2'500'000ull,
                                 1ull << 40, ~0ull}) {
    EXPECT_GE(tr::QuantizeIpd(us), prev);
    prev = tr::QuantizeIpd(us);
  }
}

TEST(Features, DimensionsMatchPaperInputScales) {
  EXPECT_EQ(tr::kStatDim * 8, 128u);   // Leo / N3IC / MLP-B: 128 b
  EXPECT_EQ(tr::kSeqDim * 8, 128u);    // RNN-B / CNN-B / CNN-M: 128 b
  EXPECT_EQ(tr::kRawDim * 8, 3840u);   // CNN-L: 3840 b
}

TEST(Features, ExtractorsEmitConsistentShapes) {
  auto ds = tr::Generate(tr::PeerRushSpec(10, 21));
  const auto stat = tr::ExtractStatFeatures(ds.flows);
  const auto seq = tr::ExtractSeqFeatures(ds.flows);
  const auto raw = tr::ExtractRawBytes(ds.flows);
  EXPECT_EQ(stat.dim, tr::kStatDim);
  EXPECT_EQ(seq.dim, tr::kSeqDim);
  EXPECT_EQ(raw.dim, tr::kRawDim);
  EXPECT_EQ(stat.x.size(), stat.size() * stat.dim);
  // Same walk -> same sample count across feature families.
  EXPECT_EQ(stat.size(), seq.size());
  EXPECT_EQ(stat.size(), raw.size());
  for (std::size_t i = 0; i < stat.size(); ++i) {
    EXPECT_EQ(stat.labels[i], seq.labels[i]);
    EXPECT_EQ(stat.flow_index[i], raw.flow_index[i]);
  }
  // All features are valid 8-bit values.
  for (float v : stat.x) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 255.0f);
  }
}

TEST(Features, StatMinMaxAreConsistent) {
  auto ds = tr::Generate(tr::CiciotSpec(5, 31));
  const auto stat = tr::ExtractStatFeatures(ds.flows);
  for (std::size_t i = 0; i < stat.size(); ++i) {
    const float* f = stat.x.data() + i * stat.dim;
    EXPECT_LE(f[0], f[1]);  // min_len <= max_len
    EXPECT_LE(f[2], f[3]);  // min_ipd <= max_ipd
    EXPECT_GE(f[4], f[0]);  // current len within [min,max]
    EXPECT_LE(f[4], f[1]);
  }
}

TEST(Features, PerFlowSampleCap) {
  auto ds = tr::Generate(tr::PeerRushSpec(8, 41));
  tr::ExtractOptions opts;
  opts.max_samples_per_flow = 3;
  const auto stat = tr::ExtractStatFeatures(ds.flows, opts);
  std::vector<int> per_flow(ds.flows.size(), 0);
  for (std::size_t fi : stat.flow_index) ++per_flow[fi];
  for (int c : per_flow) EXPECT_LE(c, 3);
}

TEST(Features, ShortFlowsAreSkipped) {
  tr::Flow tiny;
  tiny.label = 0;
  tiny.packets.resize(tr::kWindow - 1);
  const auto stat = tr::ExtractStatFeatures({tiny});
  EXPECT_EQ(stat.size(), 0u);
}

// ---------------------------------------------------------------- stream

namespace {

std::uint64_t IpdOf(const tr::Flow& flow, std::size_t j) {
  return j == 0 ? 0 : flow.packets[j].ts_us - flow.packets[j - 1].ts_us;
}

}  // namespace

// The online extractor must match a from-scratch recomputation of the
// documented feature semantics at every window position — this is the
// independent check that the offline wrappers (which *are* the online path)
// haven't quietly redefined the features.
TEST(Stream, OnlineExtractorMatchesBruteForceAtEveryPacket) {
  const auto ds = tr::Generate(tr::PeerRushSpec(4, 61));
  const tr::OnlineFeatureExtractor ex;
  for (const auto& flow : ds.flows) {
    tr::OnlineFlowStateRaw st;  // raw state embeds the stat/seq base state
    for (std::size_t i = 0; i < flow.packets.size(); ++i) {
      ex.Update(st, flow.packets[i], flow.packets[i].ts_us);
      if (i + 1 < tr::kWindow) {
        EXPECT_FALSE(st.WindowFull());
        continue;
      }
      ASSERT_TRUE(st.WindowFull());

      float stat[tr::kStatDim], seq[tr::kSeqDim];
      std::vector<float> raw(tr::kRawDim);
      ex.EmitStat(st.base, stat);
      ex.EmitSeq(st.base, seq);
      ex.EmitRaw(st, raw.data());

      // Brute-force stat: running min/max over [0, i] + current + history.
      std::uint8_t mn = 255, mx = 0, mni = 255, mxi = 0;
      for (std::size_t j = 0; j <= i; ++j) {
        const auto ql = tr::QuantizeLen(flow.packets[j].len);
        mn = std::min(mn, ql);
        mx = std::max(mx, ql);
        if (j > 0) {
          const auto qi = tr::QuantizeIpd(IpdOf(flow, j));
          mni = std::min(mni, qi);
          mxi = std::max(mxi, qi);
        }
      }
      EXPECT_EQ(stat[0], mn);
      EXPECT_EQ(stat[1], mx);
      EXPECT_EQ(stat[2], mni);
      EXPECT_EQ(stat[3], mxi);
      EXPECT_EQ(stat[4], tr::QuantizeLen(flow.packets[i].len));
      EXPECT_EQ(stat[5], tr::QuantizeIpd(IpdOf(flow, i)));
      for (std::size_t h = 0; h < 5; ++h) {
        EXPECT_EQ(stat[6 + 2 * h],
                  tr::QuantizeLen(flow.packets[i - 1 - h].len));
        EXPECT_EQ(stat[7 + 2 * h], tr::QuantizeIpd(IpdOf(flow, i - 1 - h)));
      }
      // Brute-force seq + raw: the last kWindow packets, oldest first.
      for (std::size_t w = 0; w < tr::kWindow; ++w) {
        const std::size_t j = i - (tr::kWindow - 1) + w;
        EXPECT_EQ(seq[2 * w], tr::QuantizeLen(flow.packets[j].len));
        EXPECT_EQ(seq[2 * w + 1], tr::QuantizeIpd(IpdOf(flow, j)));
        for (std::size_t b = 0; b < tr::kRawBytesPerPacket; ++b) {
          ASSERT_EQ(raw[w * tr::kRawBytesPerPacket + b],
                    flow.packets[j].bytes[b]);
        }
      }
    }
  }
}

TEST(Stream, OfflineExtractorsAreOnlineWrappers) {
  // Offline extraction at an uncapped walk == feeding the online extractor
  // and emitting at every eligible packet (the bit-exactness contract).
  const auto ds = tr::Generate(tr::CiciotSpec(4, 71));
  tr::ExtractOptions all;
  all.max_samples_per_flow = std::numeric_limits<std::size_t>::max();
  const auto stat = tr::ExtractStatFeatures(ds.flows, all);

  std::size_t cursor = 0;
  const tr::OnlineFeatureExtractor ex;
  for (const auto& flow : ds.flows) {
    tr::OnlineFlowState st;
    for (std::size_t i = 0; i < flow.packets.size(); ++i) {
      ex.Update(st, flow.packets[i], flow.packets[i].ts_us);
      if (!st.WindowFull()) continue;
      float feat[tr::kStatDim];
      ex.EmitStat(st, feat);
      ASSERT_LT(cursor, stat.size());
      for (std::size_t d = 0; d < tr::kStatDim; ++d) {
        ASSERT_EQ(feat[d], stat.x[cursor * tr::kStatDim + d])
            << "sample " << cursor << " dim " << d;
      }
      ++cursor;
    }
  }
  EXPECT_EQ(cursor, stat.size());
}

TEST(Stream, NonMonotonicTimestampsClampToZeroIpd) {
  // Regression: real captures reorder packets, so ts_us can step backwards.
  // The IPD must clamp to 0 — before the fix the unsigned subtraction
  // wrapped to ~2^64 us and pinned the quantized IPD (and max_ipd) at 255.
  const tr::OnlineFeatureExtractor ex;
  tr::Packet pkt;
  pkt.len = 100;

  tr::OnlineFlowState st;
  ex.Update(st, pkt, 1000);
  ex.Update(st, pkt, 3000);  // IPD 2000us
  ex.Update(st, pkt, 2000);  // reordered: clamps to IPD 0
  EXPECT_EQ(st.min_ipd, 0);
  EXPECT_EQ(st.max_ipd, tr::QuantizeIpd(2000));
  const std::size_t newest = (st.packets - 1) % tr::kWindow;
  EXPECT_EQ(st.fuzzy_ipd[newest], 0);
  // The reordered packet's (smaller) timestamp becomes the new reference.
  EXPECT_EQ(st.last_ts_us, 2000u);

  // A reordered *first-window* packet must not poison min/max either.
  tr::OnlineFlowState fresh;
  ex.Update(fresh, pkt, 5000);
  ex.Update(fresh, pkt, 100);
  EXPECT_EQ(fresh.max_ipd, 0);
  EXPECT_EQ(fresh.min_ipd, 0);
}

TEST(Stream, EmitBeforeWindowFullThrows) {
  // (Emitting raw features from a stat/seq state is impossible by
  // construction: EmitRaw only accepts OnlineFlowStateRaw.)
  tr::OnlineFeatureExtractor ex;
  tr::OnlineFlowState st;
  float out[tr::kStatDim];
  EXPECT_THROW(ex.EmitStat(st, out), std::logic_error);
  tr::OnlineFlowStateRaw raw_st;
  std::vector<float> raw(tr::kRawDim);
  EXPECT_THROW(ex.EmitRaw(raw_st, raw.data()), std::logic_error);
}

TEST(Stream, MergeTraceIsTimeOrderedAndFlowPreserving) {
  const auto ds = tr::Generate(tr::PeerRushSpec(8, 81));
  const auto trace = tr::MergeTrace(ds.flows);

  std::size_t total = 0;
  for (const auto& f : ds.flows) total += f.packets.size();
  ASSERT_EQ(trace.size(), total);

  std::vector<std::uint32_t> next_index(ds.flows.size(), 0);
  std::uint64_t prev_ts = 0;
  for (const auto& tp : trace) {
    EXPECT_GE(tp.ts_us, prev_ts);  // globally time-ordered
    prev_ts = tp.ts_us;
    // Per-flow packet order survives the interleaving.
    EXPECT_EQ(tp.index, next_index[tp.flow]++);
    const auto& flow = ds.flows[tp.flow];
    EXPECT_EQ(tp.key.digest, flow.key.digest);
    EXPECT_EQ(tp.label, flow.label);
    EXPECT_EQ(tp.packet, &flow.packets[tp.index]);
  }
  for (std::size_t fi = 0; fi < ds.flows.size(); ++fi) {
    EXPECT_EQ(next_index[fi], ds.flows[fi].packets.size());
  }

  // Offset constancy: ts_us - packet.ts_us identical for all of a flow's
  // packets -> IPDs computed on the trace clock equal flow-relative IPDs.
  std::vector<std::int64_t> offset(ds.flows.size(), -1);
  for (const auto& tp : trace) {
    const auto off = static_cast<std::int64_t>(
        tp.ts_us - ds.flows[tp.flow].packets[tp.index].ts_us);
    if (offset[tp.flow] < 0) {
      offset[tp.flow] = off;
    } else {
      EXPECT_EQ(offset[tp.flow], off);
    }
  }

  // Deterministic in the seed; different seeds shuffle the interleaving.
  const auto again = tr::MergeTrace(ds.flows);
  ASSERT_EQ(again.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(again[i].flow, trace[i].flow);
    EXPECT_EQ(again[i].index, trace[i].index);
    EXPECT_EQ(again[i].ts_us, trace[i].ts_us);
  }
  tr::MergeOptions other;
  other.seed = 1234;
  const auto shuffled = tr::MergeTrace(ds.flows, other);
  bool any_diff = false;
  for (std::size_t i = 0; i < trace.size() && !any_diff; ++i) {
    any_diff = shuffled[i].flow != trace[i].flow ||
               shuffled[i].ts_us != trace[i].ts_us;
  }
  EXPECT_TRUE(any_diff);
}

// ----------------------------------------------------------------- churn

TEST(Churn, DeterministicAndBudgetExact) {
  tr::ChurnSpec spec;
  spec.live_flows = 500;
  spec.packets = 20'000;
  spec.scan_every = 4'000;
  spec.scan_burst = 64;
  spec.flood_every = 9'000;
  spec.flood_burst = 256;
  tr::ChurnGenerator a(spec), b(spec);
  tr::TracePacket pa, pb;
  std::uint64_t n = 0;
  while (a.Next(pa)) {
    ASSERT_TRUE(b.Next(pb));
    ASSERT_EQ(pa.key.digest, pb.key.digest);
    ASSERT_EQ(pa.flow, pb.flow);
    ASSERT_EQ(pa.index, pb.index);
    ASSERT_EQ(pa.ts_us, pb.ts_us);
    ASSERT_EQ(pa.label, pb.label);
    ASSERT_EQ(pa.packet->len, pb.packet->len);
    ASSERT_EQ(pa.packet->bytes, pb.packet->bytes);
    ++n;
  }
  EXPECT_FALSE(b.Next(pb));
  EXPECT_EQ(n, spec.packets);  // budget exact, bursts included
  EXPECT_EQ(a.packets_emitted(), spec.packets);
  EXPECT_EQ(a.flows_started(), b.flows_started());
  EXPECT_EQ(a.flows_retired(), b.flows_retired());
  // 20K packets cross the scan schedule 4+ times and the flood once.
  EXPECT_GE(a.scan_packets(), 4u * spec.scan_burst);
  EXPECT_EQ(a.flood_packets() % spec.flood_burst, 0u);
  EXPECT_GT(a.flood_packets(), 0u);
}

TEST(Churn, WorkingSetAndBurstInvariants) {
  tr::ChurnSpec spec;
  spec.live_flows = 200;
  spec.elephant_frac = 0.05;
  spec.packets = 30'000;
  spec.scan_every = 10'000;
  spec.scan_burst = 100;
  spec.flood_every = 20'000;
  spec.flood_burst = 300;
  tr::ChurnGenerator gen(spec);

  std::set<std::uint64_t> digests;          // across all flows ever started
  std::map<std::uint32_t, std::uint64_t> flow_digest;
  std::map<std::uint32_t, std::uint32_t> burst_packets;  // per burst flow
  std::uint64_t ts_prev = 0;
  std::uint64_t benign = 0, scan = 0, flood = 0;
  tr::TracePacket p;
  while (gen.Next(p)) {
    EXPECT_GT(p.ts_us, ts_prev);  // strictly increasing clock
    ts_prev = p.ts_us;
    // One digest per flow id, never reused across retire/replace.
    auto [it, fresh] = flow_digest.emplace(p.flow, p.key.digest);
    if (fresh) {
      EXPECT_TRUE(digests.insert(p.key.digest).second)
          << "digest reused by flow " << p.flow;
    } else {
      EXPECT_EQ(it->second, p.key.digest);
    }
    // Payload header carries the digest (little-endian) — flow-identifying
    // payloads without fill_payload.
    std::uint64_t hdr = 0;
    for (int i = 7; i >= 0; --i) {
      hdr = (hdr << 8) | p.packet->bytes[static_cast<std::size_t>(i)];
    }
    EXPECT_EQ(hdr, p.key.digest);
    switch (p.label) {
      case tr::kChurnScanLabel:
        ++scan;
        EXPECT_EQ(p.packet->len, 60);
        ++burst_packets[p.flow];
        break;
      case tr::kChurnFloodLabel:
        ++flood;
        EXPECT_EQ(p.packet->len, 512);
        ++burst_packets[p.flow];
        break;
      default:
        EXPECT_TRUE(p.label == 0 || p.label == 1);
        ++benign;
    }
  }
  EXPECT_EQ(scan, gen.scan_packets());
  EXPECT_EQ(flood, gen.flood_packets());
  EXPECT_EQ(benign + scan + flood, spec.packets);
  // Burst flows are single-packet and never repeat.
  for (const auto& [flow, count] : burst_packets) EXPECT_EQ(count, 1u);
  // Retire-and-replace keeps the pool size fixed; every retirement mints a
  // new flow, so ids fall in [0, pool + retired + burst flows).
  EXPECT_EQ(gen.flows_started(),
            spec.live_flows + gen.flows_retired() + burst_packets.size());
}

TEST(Churn, MaterializeMatchesStreamingAndSelfConsistent) {
  tr::ChurnSpec spec;
  spec.live_flows = 300;
  spec.packets = 5'000;
  const auto mat = tr::MaterializeChurn(spec);
  ASSERT_EQ(mat.trace.size(), spec.packets);
  ASSERT_EQ(mat.packets.size(), spec.packets);

  tr::ChurnGenerator gen(spec);
  tr::TracePacket p;
  for (std::size_t i = 0; i < mat.trace.size(); ++i) {
    ASSERT_TRUE(gen.Next(p));
    // trace[i] borrows packets[i] (self-contained, movable).
    ASSERT_EQ(mat.trace[i].packet, &mat.packets[i]);
    EXPECT_EQ(mat.trace[i].key.digest, p.key.digest);
    EXPECT_EQ(mat.trace[i].ts_us, p.ts_us);
    EXPECT_EQ(mat.trace[i].packet->len, p.packet->len);
    EXPECT_EQ(mat.trace[i].packet->bytes, p.packet->bytes);
  }
  EXPECT_FALSE(gen.Next(p));
}

TEST(Churn, RejectsDegenerateSpecs) {
  tr::ChurnSpec zero_live;
  zero_live.live_flows = 0;
  EXPECT_THROW(tr::ChurnGenerator{zero_live}, std::invalid_argument);
  tr::ChurnSpec zero_packets;
  zero_packets.mouse_packets_min = 0;
  EXPECT_THROW(tr::ChurnGenerator{zero_packets}, std::invalid_argument);
}

// ----------------------------------------------------------------- eval

TEST(Eval, MetricsOnPerfectAndWorstPredictions) {
  std::vector<std::int32_t> truth{0, 0, 1, 1, 2, 2};
  auto perfect = ev::Evaluate(truth, truth, 3);
  EXPECT_DOUBLE_EQ(perfect.f1, 1.0);
  EXPECT_DOUBLE_EQ(perfect.accuracy, 1.0);
  std::vector<std::int32_t> wrong{1, 1, 2, 2, 0, 0};
  auto worst = ev::Evaluate(truth, wrong, 3);
  EXPECT_DOUBLE_EQ(worst.f1, 0.0);
}

TEST(Eval, MacroF1HandlesImbalance) {
  // 9 of class 0, 1 of class 1; always predicting 0 gives high accuracy but
  // poor macro-F1.
  std::vector<std::int32_t> truth{0, 0, 0, 0, 0, 0, 0, 0, 0, 1};
  std::vector<std::int32_t> pred(10, 0);
  auto rep = ev::Evaluate(truth, pred, 2);
  EXPECT_GT(rep.accuracy, 0.85);
  EXPECT_LT(rep.f1, 0.55);
}

TEST(Eval, RocAucPerfectAndRandom) {
  std::vector<float> scores{0.9f, 0.8f, 0.2f, 0.1f};
  std::vector<bool> attack{true, true, false, false};
  auto roc = ev::ComputeRoc(scores, attack);
  EXPECT_DOUBLE_EQ(roc.auc, 1.0);
  std::vector<float> flat{0.5f, 0.5f, 0.5f, 0.5f};
  auto tie = ev::ComputeRoc(flat, attack);
  EXPECT_DOUBLE_EQ(tie.auc, 0.5);
  EXPECT_THROW(ev::ComputeRoc({0.5f}, {true}), std::invalid_argument);
}

TEST(Eval, SplitIsStratifiedAndDisjoint) {
  std::vector<std::int32_t> labels;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 100; ++i) labels.push_back(c);
  }
  const auto split = ev::SplitFlows(labels, 0.75, 0.10, 5);
  std::vector<std::vector<int>> counts(3, std::vector<int>(3, 0));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    ++counts[static_cast<std::size_t>(labels[i])]
            [static_cast<std::size_t>(split[i])];
  }
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(counts[static_cast<std::size_t>(c)][0], 75);
    EXPECT_EQ(counts[static_cast<std::size_t>(c)][1], 10);
    EXPECT_EQ(counts[static_cast<std::size_t>(c)][2], 15);
  }
}

TEST(Eval, PrepareSplitsByFlowNotBySample) {
  auto prep = ev::Prepare(tr::PeerRushSpec(20, 51), /*with_raw_bytes=*/false);
  // No flow index may appear in two different splits.
  std::set<std::size_t> train_flows(prep.stat.train.flow_index.begin(),
                                    prep.stat.train.flow_index.end());
  for (std::size_t fi : prep.stat.test.flow_index) {
    EXPECT_FALSE(train_flows.count(fi)) << "flow " << fi << " leaks";
  }
  EXPECT_GT(prep.stat.train.size(), prep.stat.test.size());
}
