// The batched InferenceEngine must be bit-identical to N sequential
// LoweredModel::InferRaw calls (the refactor's acceptance criterion), stay
// correct across chunking/reuse, and reject malformed buffers.
#include "runtime/inference_engine.hpp"

#include <gtest/gtest.h>

#include <random>

#include "compiler/compiler.hpp"
#include "core/operators.hpp"
#include "eval/experiment.hpp"

namespace core = pegasus::core;
namespace rt = pegasus::runtime;
namespace pc = pegasus::compiler;

namespace {

constexpr std::size_t kDim = 4;

std::vector<float> RandomFeatures(std::size_t n, std::size_t dim,
                                  std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(0.0f, 255.0f);
  std::vector<float> x(n * dim);
  for (float& v : x) v = std::floor(dist(rng));
  return x;
}

/// Partition + fuzzy Maps + SumReduce + downstream Map — exercises parser
/// inits (accumulator bias) and multi-stage placement.
rt::LoweredModel SmallLoweredModel(std::uint64_t seed) {
  const std::size_t n = 2000;
  const auto x = RandomFeatures(n, kDim, seed);
  core::ProgramBuilder b(kDim);
  auto segs = b.Partition(b.input(), 2, 2);
  std::vector<core::ValueId> maps;
  maps.push_back(
      b.Map(segs[0], core::MakeLinear({0.05f, -0.02f, 0.01f, 0.04f}, 2, 2,
                                      {0.5f, -0.5f}),
            32));
  maps.push_back(b.Map(
      segs[1], core::MakeLinear({-0.03f, 0.02f, 0.02f, 0.01f}, 2, 2, {}),
      32));
  auto sum = b.SumReduce(std::span<const core::ValueId>(maps));
  auto out = b.Map(sum, core::MakeReLU(2), 32);
  return pc::CompileToSwitch(b.Finish(out), x, n).lowered;
}

}  // namespace

TEST(InferenceEngine, BatchedBitIdenticalToSequentialInferRaw) {
  const rt::LoweredModel lowered = SmallLoweredModel(1);
  rt::InferenceEngine engine(lowered, 32);

  const std::size_t n = 300;
  const auto x = RandomFeatures(n, kDim, 2);
  std::vector<std::int64_t> batched(n * engine.output_dim());
  engine.InferRaw(x, n, batched);

  for (std::size_t i = 0; i < n; ++i) {
    std::span<const float> row(x.data() + i * kDim, kDim);
    const auto sequential = lowered.InferRaw(row);
    ASSERT_EQ(sequential.size(), engine.output_dim());
    for (std::size_t d = 0; d < sequential.size(); ++d) {
      ASSERT_EQ(sequential[d], batched[i * engine.output_dim() + d])
          << "sample " << i << " dim " << d;
    }
  }
}

TEST(InferenceEngine, ChunkingAcrossCapacityBoundaries) {
  const rt::LoweredModel lowered = SmallLoweredModel(3);
  // Capacities around the batch size: chunk == n, chunk > n, chunk that
  // divides n unevenly.
  for (const std::size_t capacity : {1u, 7u, 37u, 64u}) {
    rt::InferenceEngine engine(lowered, capacity);
    const std::size_t n = 37;
    const auto x = RandomFeatures(n, kDim, 4);
    std::vector<std::int64_t> batched(n * engine.output_dim());
    engine.InferRaw(x, n, batched);
    for (std::size_t i = 0; i < n; ++i) {
      std::span<const float> row(x.data() + i * kDim, kDim);
      EXPECT_EQ(lowered.InferRaw(row),
                std::vector<std::int64_t>(
                    batched.begin() +
                        static_cast<std::ptrdiff_t>(i * engine.output_dim()),
                    batched.begin() + static_cast<std::ptrdiff_t>(
                                          (i + 1) * engine.output_dim())))
          << "capacity " << capacity << " sample " << i;
    }
  }
}

TEST(InferenceEngine, DequantizedBatchMatchesPerCallInfer) {
  const rt::LoweredModel lowered = SmallLoweredModel(5);
  rt::InferenceEngine engine(lowered, 16);
  const std::size_t n = 64;
  const auto x = RandomFeatures(n, kDim, 6);
  std::vector<float> batched(n * engine.output_dim());
  engine.Infer(x, n, batched);
  for (std::size_t i = 0; i < n; ++i) {
    std::span<const float> row(x.data() + i * kDim, kDim);
    const auto single = lowered.Infer(row);
    for (std::size_t d = 0; d < single.size(); ++d) {
      EXPECT_FLOAT_EQ(single[d], batched[i * engine.output_dim() + d]);
    }
  }
}

TEST(InferenceEngine, PoolReuseDoesNotLeakStateAcrossBatches) {
  const rt::LoweredModel lowered = SmallLoweredModel(7);
  rt::InferenceEngine engine(lowered, 8);
  const auto a = RandomFeatures(8, kDim, 8);
  const auto b = RandomFeatures(8, kDim, 9);
  std::vector<std::int64_t> first(8 * engine.output_dim());
  std::vector<std::int64_t> second(8 * engine.output_dim());
  std::vector<std::int64_t> again(8 * engine.output_dim());
  engine.InferRaw(a, 8, first);
  engine.InferRaw(b, 8, second);
  engine.InferRaw(a, 8, again);
  EXPECT_EQ(first, again);
  EXPECT_NE(first, second);  // distinct inputs produce distinct outputs
}

TEST(InferenceEngine, SingleRowConvenienceMatchesLoweredModel) {
  const rt::LoweredModel lowered = SmallLoweredModel(10);
  rt::InferenceEngine engine(lowered, 4);
  const auto x = RandomFeatures(20, kDim, 11);
  for (std::size_t i = 0; i < 20; ++i) {
    std::span<const float> row(x.data() + i * kDim, kDim);
    EXPECT_EQ(engine.InferRaw(row), lowered.InferRaw(row));
  }
}

TEST(InferenceEngine, RejectsMalformedBuffers) {
  const rt::LoweredModel lowered = SmallLoweredModel(12);
  rt::InferenceEngine engine(lowered, 4);
  const auto x = RandomFeatures(4, kDim, 13);
  std::vector<std::int64_t> raw(4 * engine.output_dim());
  std::vector<float> out(4 * engine.output_dim());

  // Feature buffer not n x input_dim.
  EXPECT_THROW(engine.InferRaw(std::span<const float>(x.data(), 7), 4, raw),
               std::invalid_argument);
  EXPECT_THROW(engine.Infer(std::span<const float>(x.data(), 7), 4, out),
               std::invalid_argument);
  // Output buffer too small.
  std::vector<std::int64_t> small_raw(3);
  EXPECT_THROW(engine.InferRaw(x, 4, small_raw), std::invalid_argument);
  // Single-row dim mismatch.
  const std::vector<float> bad{1.0f, 2.0f};
  EXPECT_THROW(engine.InferRaw(bad), std::invalid_argument);
  // Zero-capacity engine.
  EXPECT_THROW(rt::InferenceEngine(lowered, 0), std::invalid_argument);
}

TEST(InferenceEngine, MovedLoweredModelStillInfers) {
  rt::LoweredModel lowered = SmallLoweredModel(14);
  const auto x = RandomFeatures(4, kDim, 15);
  std::span<const float> row(x.data(), kDim);
  const auto before = lowered.InferRaw(row);  // materializes scratch engine
  rt::LoweredModel moved = std::move(lowered);
  EXPECT_EQ(moved.InferRaw(row), before);
}

TEST(InferenceEngine, PredictClassesLoweredMatchesPerSampleArgmax) {
  const rt::LoweredModel lowered = SmallLoweredModel(16);
  rt::InferenceEngine engine(lowered, 16);

  pegasus::traffic::SampleSet set;
  set.dim = kDim;
  set.x = RandomFeatures(100, kDim, 17);
  set.labels.assign(100, 0);
  set.flow_index.assign(100, 0);

  const auto predictions = pegasus::eval::PredictClassesLowered(engine, set);
  ASSERT_EQ(predictions.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    const auto logits = lowered.Infer(
        std::span<const float>(set.x.data() + i * kDim, kDim));
    std::size_t best = 0;
    for (std::size_t d = 1; d < logits.size(); ++d) {
      if (logits[d] > logits[best]) best = d;
    }
    EXPECT_EQ(predictions[i], static_cast<std::int32_t>(best)) << i;
  }
}
