// Fault-injection acceptance criteria (ISSUE 8):
//
//  * The FaultInjector's schedules are exact: fires land on hits
//    first, first+every, ... with the fire count capped at `limit`, and
//    FaultScope disarms on every exit path.
//  * SwapModel is transactional under an injected publish failure: in
//    single-threaded mode already-applied shards roll back, in
//    multi-threaded mode the probe fails before anything reaches the
//    rings; either way SwapError surfaces, the old version keeps serving,
//    and retrying the same version succeeds once the fault clears.
//  * A transient inference fault inside the retry budget delays but does
//    not change decisions; a persistent one sheds the batch, counted as
//    ShedStats::inference, and the server keeps serving.
//  * The watchdog flags a heartbeat-frozen worker as stalled while its
//    ring holds work, and the flag self-clears when the worker resumes.
//  * Registry envelopes corrupted in flight (bit flip, truncation) are
//    rejected by the CRC seal with CorruptArtifactError; previously loaded
//    snapshots stay usable.
//  * Soak: randomized bounded fault plans through a multi-threaded
//    serve + swap never deadlock and always satisfy the exact accounting
//    identities — offered == packets + shed, packets == decisions +
//    warmup + shed.inference — ending healthy.
#include "runtime/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <memory>
#include <random>
#include <thread>
#include <tuple>
#include <vector>

#include "compiler/compiler.hpp"
#include "control/registry.hpp"
#include "core/operators.hpp"
#include "core/stream_io.hpp"
#include "eval/experiment.hpp"
#include "runtime/stream_server.hpp"
#include "traffic/synthetic.hpp"

namespace core = pegasus::core;
namespace comp = pegasus::compiler;
namespace ctrl = pegasus::control;
namespace rt = pegasus::runtime;
namespace tr = pegasus::traffic;
namespace ev = pegasus::eval;
namespace fs = std::filesystem;

namespace {

/// Same small 16-dim model family the stream-server tests serve.
rt::LoweredModel Build16DimModel(std::span<const float> train_x,
                                 std::size_t n, std::uint64_t seed) {
  core::ProgramBuilder b(16);
  auto segs = b.Partition(b.input(), 2, 2);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> w(-0.05f, 0.05f);
  std::vector<core::ValueId> maps;
  for (auto seg : segs) {
    std::vector<float> weights(2 * 3);
    for (float& v : weights) v = w(rng);
    maps.push_back(
        b.Map(seg, core::MakeLinear(std::move(weights), 2, 3, {}), 32));
  }
  auto sum = b.SumReduce(std::span<const core::ValueId>(maps));
  auto out = b.Map(sum, core::MakeReLU(3), 64);
  return comp::CompileToSwitch(b.Finish(out), train_x, n).lowered;
}

std::shared_ptr<const rt::LoweredModel> Alias(const rt::LoweredModel& m) {
  return std::shared_ptr<const rt::LoweredModel>(std::shared_ptr<void>{}, &m);
}

struct Fixture {
  tr::Dataset ds;
  rt::LoweredModel v1;
  rt::LoweredModel v2;
  std::vector<tr::TracePacket> trace;
};

const Fixture& SharedFixture() {
  static const Fixture* fx = [] {
    auto* f = new Fixture;
    f->ds = tr::Generate(tr::PeerRushSpec(8, 2025));
    const auto offline = tr::ExtractSeqFeatures(f->ds.flows);
    f->v1 = Build16DimModel(offline.x, offline.size(), 51);
    f->v2 = Build16DimModel(offline.x, offline.size(), 52);
    f->trace = tr::MergeTrace(f->ds.flows);
    return f;
  }();
  return *fx;
}

rt::StreamServerOptions BaseOptions(std::size_t shards) {
  rt::StreamServerOptions opts;
  opts.num_shards = shards;
  opts.flows_per_shard = 1 << 10;
  opts.batch_size = 32;
  opts.feature = rt::FeatureKind::kSeq;
  return opts;
}

/// A versioned model for the registry tests (4-dim, like test_control's).
comp::VersionedModel CompileSmall(std::uint64_t seed) {
  core::ProgramBuilder b(4);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> wdist(-0.05f, 0.05f);
  std::vector<float> w(4 * 3);
  for (float& v : w) v = wdist(rng);
  core::ValueId v =
      core::AppendFullyConnected(b, b.input(), w, 4, 3, {}, 2, 24);
  v = b.Map(v, core::MakeReLU(3), 24);
  std::uniform_real_distribution<float> dist(0.0f, 255.0f);
  std::vector<float> x(1000 * 4);
  for (float& f : x) f = std::floor(dist(rng));
  return comp::CompileVersioned(b.Finish(v), x, 1000);
}

}  // namespace

// ---------------------------------------------------------------------------
// The injector itself
// ---------------------------------------------------------------------------

TEST(FaultInjector, DisarmedHooksNeverFire) {
  ASSERT_FALSE(rt::FaultInjector::Instance().armed());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rt::FaultFires(rt::FaultSite::kRingPushStall));
  }
  EXPECT_EQ(rt::FaultInjector::Instance().Param(rt::FaultSite::kWorkerSlow),
            0u);
}

TEST(FaultInjector, ScheduleFiresOnFirstEveryUpToLimit) {
  rt::FaultPlan plan;
  plan.Arm(rt::FaultSite::kInferenceFault, /*first=*/2, /*every=*/3,
           /*limit=*/2, /*param=*/7);
  rt::FaultScope scope(plan);
  std::vector<std::size_t> fired_at;
  for (std::size_t hit = 0; hit < 12; ++hit) {
    if (rt::FaultFires(rt::FaultSite::kInferenceFault)) fired_at.push_back(hit);
  }
  // Schedule: hits 2, 5, 8, ... — capped at 2 fires.
  EXPECT_EQ(fired_at, (std::vector<std::size_t>{2, 5}));
  const auto stats =
      rt::FaultInjector::Instance().stats(rt::FaultSite::kInferenceFault);
  EXPECT_EQ(stats.hits, 12u);
  EXPECT_EQ(stats.fires, 2u);
  EXPECT_EQ(rt::FaultInjector::Instance().Param(rt::FaultSite::kInferenceFault),
            7u);
  // Other sites are hit-counted but never fire.
  EXPECT_FALSE(rt::FaultFires(rt::FaultSite::kWireCorrupt));
}

TEST(FaultInjector, ScopeDisarmsOnExitEvenThroughExceptions) {
  rt::FaultPlan plan;
  plan.Arm(rt::FaultSite::kWorkerSlow, 0, 1, 100, 5);
  try {
    rt::FaultScope scope(plan);
    ASSERT_TRUE(rt::FaultInjector::Instance().armed());
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_FALSE(rt::FaultInjector::Instance().armed());
  EXPECT_FALSE(rt::FaultFires(rt::FaultSite::kWorkerSlow));
}

TEST(FaultInjector, RandomizedPlansAreBoundedAndDataplaneOnly) {
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const auto plan = rt::FaultPlan::Randomized(seed);
    EXPECT_EQ(plan.seed, seed);
    // Artifact sites stay disarmed — Randomized stresses the serving loop.
    EXPECT_FALSE(plan.at(rt::FaultSite::kEnvelopeBitFlip).armed);
    EXPECT_FALSE(plan.at(rt::FaultSite::kEnvelopeTruncate).armed);
    EXPECT_FALSE(plan.at(rt::FaultSite::kWireCorrupt).armed);
    for (const auto& spec : plan.sites) {
      if (!spec.armed) continue;
      EXPECT_GE(spec.every, 1u);
      EXPECT_LE(spec.limit, 64u);     // bounded fires: the run always drains
      EXPECT_LE(spec.param, 2000u);   // bounded stall microseconds
    }
    // Determinism: the same seed yields the same plan.
    const auto again = rt::FaultPlan::Randomized(seed);
    for (std::size_t i = 0; i < rt::kNumFaultSites; ++i) {
      EXPECT_EQ(plan.sites[i].armed, again.sites[i].armed);
      EXPECT_EQ(plan.sites[i].first, again.sites[i].first);
      EXPECT_EQ(plan.sites[i].every, again.sites[i].every);
      EXPECT_EQ(plan.sites[i].limit, again.sites[i].limit);
      EXPECT_EQ(plan.sites[i].param, again.sites[i].param);
    }
  }
}

TEST(FaultInjector, SiteNamesAreStable) {
  EXPECT_STREQ(rt::FaultSiteName(rt::FaultSite::kRingPushStall),
               "ring_push_stall");
  EXPECT_STREQ(rt::FaultSiteName(rt::FaultSite::kSwapPublishFail),
               "swap_publish_fail");
  EXPECT_STREQ(rt::FaultSiteName(rt::FaultSite::kWireCorrupt), "wire_corrupt");
}

// ---------------------------------------------------------------------------
// Transactional swap
// ---------------------------------------------------------------------------

TEST(FaultSwap, SingleThreadedPublishFailureRollsBackAppliedShards) {
  const auto& fx = SharedFixture();
  auto opts = BaseOptions(4);
  rt::StreamServer server(fx.v1, opts);
  // Serve the first half so shards hold live state and partial batches.
  const std::size_t half = fx.trace.size() / 2;
  for (std::size_t i = 0; i < half; ++i) server.Push(fx.trace[i]);

  {
    // Fail on the THIRD shard apply: shards 0 and 1 have already swapped
    // and must be rolled back to v1.
    rt::FaultPlan plan;
    plan.Arm(rt::FaultSite::kSwapPublishFail, /*first=*/2, 1, 1);
    rt::FaultScope scope(plan);
    EXPECT_THROW(server.SwapModel(Alias(fx.v2), 2), rt::SwapError);
    EXPECT_EQ(server.active_version(), 1u);
    // The fault budget is spent — the same version retries successfully.
    server.SwapModel(Alias(fx.v2), 2);
    EXPECT_EQ(server.active_version(), 2u);
  }
  for (std::size_t i = half; i < fx.trace.size(); ++i) server.Push(fx.trace[i]);
  server.Flush();

  const auto stats = server.Stats();
  // Engine rebuilds: 2 forward + 2 rollback (failed attempt) + 4 (retry).
  EXPECT_EQ(stats.swaps, 8u);
  EXPECT_EQ(stats.packets, fx.trace.size());
  EXPECT_EQ(stats.decisions + stats.warmup, stats.packets);
  // Decisions match a clean run with the swap at the same packet boundary:
  // the failed attempt was hitless.
  rt::StreamServer clean(fx.v1, opts);
  auto clean_run = ev::ServeTraceWithSwap(clean, fx.trace, half,
                                          Alias(fx.v2), 2);
  auto got = server.TakeDecisions();
  auto sort = [](std::vector<rt::StreamDecision>& v) {
    std::sort(v.begin(), v.end(),
              [](const rt::StreamDecision& a, const rt::StreamDecision& b) {
                return std::tie(a.flow, a.index) < std::tie(b.flow, b.index);
              });
  };
  sort(got);
  sort(clean_run.decisions);
  ASSERT_EQ(got.size(), clean_run.decisions.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].predicted, clean_run.decisions[i].predicted);
    EXPECT_EQ(got[i].version, clean_run.decisions[i].version);
  }
}

TEST(FaultSwap, MultiThreadedProbeFailureLeavesRingsUntouched) {
  const auto& fx = SharedFixture();
  auto opts = BaseOptions(2);
  opts.multithreaded = true;
  rt::StreamServer server(fx.v1, opts);
  server.Start();
  const std::size_t half = fx.trace.size() / 2;
  for (std::size_t i = 0; i < half; ++i) server.Push(fx.trace[i]);
  {
    rt::FaultPlan plan;
    plan.Arm(rt::FaultSite::kSwapPublishFail, 0, 1, 1);
    rt::FaultScope scope(plan);
    EXPECT_THROW(server.SwapModel(Alias(fx.v2), 2), rt::SwapError);
    EXPECT_EQ(server.active_version(), 1u);
    server.SwapModel(Alias(fx.v2), 2);
    EXPECT_EQ(server.active_version(), 2u);
  }
  for (std::size_t i = half; i < fx.trace.size(); ++i) server.Push(fx.trace[i]);
  server.Stop();
  const auto stats = server.Stats();
  EXPECT_EQ(stats.packets, fx.trace.size());
  EXPECT_EQ(stats.decisions + stats.warmup, stats.packets);
  EXPECT_EQ(stats.active_version, 2u);
  // The failed probe never reached a ring: one successful swap per shard.
  EXPECT_EQ(stats.swaps, 2u);
  bool saw_v2 = false;
  for (const auto& d : server.TakeDecisions()) saw_v2 |= d.version == 2;
  EXPECT_TRUE(saw_v2);
}

// ---------------------------------------------------------------------------
// Inference retry ladder
// ---------------------------------------------------------------------------

TEST(FaultInference, TransientFaultWithinRetryBudgetChangesNothing) {
  const auto& fx = SharedFixture();
  auto opts = BaseOptions(1);
  opts.inference_retry_backoff_us = 1;  // keep the test fast

  rt::StreamServer clean(fx.v1, opts);
  const auto want = clean.Serve(fx.trace);

  rt::StreamServer server(fx.v1, opts);
  rt::FaultPlan plan;
  // Two consecutive throws on the first flush: retries 3 > 2, recovered.
  plan.Arm(rt::FaultSite::kInferenceFault, 0, 1, 2);
  rt::FaultScope scope(plan);
  const auto got = server.Serve(fx.trace);

  const auto stats = server.Stats();
  EXPECT_EQ(stats.inference_faults, 2u);
  EXPECT_EQ(stats.batches_dropped, 0u);
  EXPECT_EQ(stats.shed.inference, 0u);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].predicted, want[i].predicted);
    EXPECT_EQ(got[i].score, want[i].score);
  }
}

TEST(FaultInference, PersistentFaultShedsTheBatchAndKeepsServing) {
  const auto& fx = SharedFixture();
  auto opts = BaseOptions(1);
  opts.inference_retries = 2;
  opts.inference_retry_backoff_us = 1;

  rt::StreamServer server(fx.v1, opts);
  rt::FaultPlan plan;
  // More consecutive throws than the retry budget (2 retries = 3 attempts)
  // on the first flush only: that batch sheds, later batches are clean.
  plan.Arm(rt::FaultSite::kInferenceFault, 0, 1, 3);
  rt::FaultScope scope(plan);
  const auto decisions = server.Serve(fx.trace);

  const auto stats = server.Stats();
  EXPECT_EQ(stats.inference_faults, 3u);
  EXPECT_EQ(stats.batches_dropped, 1u);
  EXPECT_EQ(stats.shed.inference, opts.batch_size);
  // The exact accounting identity: shed-at-inference packets were counted
  // as processed but produced no decision.
  EXPECT_EQ(stats.packets, fx.trace.size());
  EXPECT_EQ(stats.decisions + stats.warmup + stats.shed.inference,
            stats.packets);
  EXPECT_EQ(stats.decisions, decisions.size());
  EXPECT_GT(decisions.size(), 0u) << "later batches must keep serving";
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

TEST(FaultWatchdog, FlagsStuckWorkerThenSelfClears) {
  const auto& fx = SharedFixture();
  auto opts = BaseOptions(1);
  opts.multithreaded = true;
  opts.queue_capacity = 1 << 12;
  opts.watchdog_interval_us = 500;
  opts.watchdog_stall_intervals = 3;
  rt::StreamServer server(fx.v1, opts);

  rt::FaultPlan plan;
  // One 80ms heartbeat-frozen sleep after the first burst: far past the
  // 3 x 500us stall window, far below any test timeout.
  plan.Arm(rt::FaultSite::kWorkerStuck, 0, 1, 1, 80'000);
  rt::FaultScope scope(plan);

  server.Start();
  // Push a prefix smaller than the ring so Push never blocks: the worker
  // freezes after its first burst with the rest still queued, which is
  // exactly the watchdog's "stagnant heartbeat + pending work" condition —
  // and the producer is free to poll Health() during the stall.
  const std::size_t pushed = std::min<std::size_t>(fx.trace.size(), 1000);
  for (std::size_t i = 0; i < pushed; ++i) server.Push(fx.trace[i]);

  bool saw_stall = false;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto health = server.Health();
    ASSERT_TRUE(health.running);
    if (health.stalled_shards > 0) {
      saw_stall = true;
      EXPECT_TRUE(health.shards[0].stalled);
      EXPECT_GE(health.stall_events, 1u);
      break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  EXPECT_TRUE(saw_stall) << "watchdog never flagged the frozen worker";

  // Once the sleep ends the worker drains and the flag self-clears.
  bool cleared = false;
  while (std::chrono::steady_clock::now() < deadline) {
    const auto health = server.Health();
    if (health.stalled_shards == 0 && health.shards[0].ring_depth == 0) {
      cleared = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(cleared) << "stall flag never self-cleared";

  server.Stop();
  const auto stats = server.Stats();
  EXPECT_GE(stats.stall_events, 1u);
  EXPECT_GT(stats.watchdog_checks, 0u);
  EXPECT_EQ(stats.packets, pushed);
  const auto health = server.Health();
  EXPECT_FALSE(health.running);
  EXPECT_TRUE(health.healthy()) << "quiesced server must report healthy";
  // Progress counters round-trip through Health too.
  EXPECT_EQ(health.shards[0].processed, pushed);
}

// ---------------------------------------------------------------------------
// Registry envelope corruption
// ---------------------------------------------------------------------------

TEST(FaultRegistry, CorruptedEnvelopesAreRejectedBySeal) {
  const fs::path dir = ::testing::TempDir();
  const auto good_path = (dir / "fault_env_good.bin").string();
  const auto flip_path = (dir / "fault_env_flip.bin").string();
  const auto trunc_path = (dir / "fault_env_trunc.bin").string();

  ctrl::ModelRegistry reg;
  reg.Publish("clf", CompileSmall(3));

  // Clean publish round-trips.
  reg.SaveModelToFile(good_path, "clf", 1);
  ctrl::ModelRegistry other;
  const auto snap = other.LoadModelFromFile(good_path);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->name, "clf");
  EXPECT_EQ(snap->version, 1u);

  {
    // One flipped payload byte: the magic still matches, so only the CRC
    // seal can catch it.
    rt::FaultPlan plan;
    plan.Arm(rt::FaultSite::kEnvelopeBitFlip, 0, 1, 1, /*param=*/12345);
    rt::FaultScope scope(plan);
    reg.SaveModelToFile(flip_path, "clf", 1);
  }
  ctrl::ModelRegistry r2;
  EXPECT_THROW(r2.LoadModelFromFile(flip_path), core::CorruptArtifactError);

  {
    rt::FaultPlan plan;
    plan.Arm(rt::FaultSite::kEnvelopeTruncate, 0, 1, 1);
    rt::FaultScope scope(plan);
    reg.SaveModelToFile(trunc_path, "clf", 1);
  }
  ctrl::ModelRegistry r3;
  EXPECT_THROW(r3.LoadModelFromFile(trunc_path), core::CorruptArtifactError);

  // A missing file is the same structured failure, not a crash.
  ctrl::ModelRegistry r4;
  EXPECT_THROW(r4.LoadModelFromFile((dir / "no_such_file.bin").string()),
               core::CorruptArtifactError);

  // The snapshot loaded before the corruption is untouched and usable.
  const std::vector<float> probe_in{1.0f, 2.0f, 3.0f, 4.0f};
  EXPECT_EQ(snap->lowered->InferRaw(probe_in).size(), 3u);

  // And the good file still loads after all the corrupt publishes (they
  // went to their own paths via tmp+rename — nothing scribbled on it).
  ctrl::ModelRegistry r5;
  EXPECT_NE(r5.LoadModelFromFile(good_path), nullptr);
}

// ---------------------------------------------------------------------------
// Soak
// ---------------------------------------------------------------------------

TEST(FaultSoak, RandomizedPlansNeverBreakAccountingOrHealth) {
  const auto& fx = SharedFixture();
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto plan = rt::FaultPlan::Randomized(seed);
    rt::FaultScope scope(plan);

    auto opts = BaseOptions(4);
    opts.multithreaded = true;
    opts.queue_capacity = 256;
    opts.shed = true;
    // A short ladder so injected ring stalls actually shed sometimes.
    opts.escalation = rt::EscalationPolicy{8, 8, 4, 1, 32};
    opts.watchdog_interval_us = 500;
    opts.watchdog_stall_intervals = 2;
    opts.inference_retry_backoff_us = 1;
    rt::StreamServer server(fx.v1, opts);

    server.Start();
    const std::size_t half = fx.trace.size() / 2;
    for (std::size_t i = 0; i < half; ++i) server.Push(fx.trace[i]);
    bool swapped = true;
    try {
      server.SwapModel(Alias(fx.v2), 2);
    } catch (const rt::SwapError&) {
      swapped = false;  // kSwapPublishFail fired — still serving v1
    }
    for (std::size_t i = half; i < fx.trace.size(); ++i) {
      server.Push(fx.trace[i]);
    }
    server.Stop();

    const auto stats = server.Stats();
    // The exact accounting identities, regardless of what fired.
    EXPECT_EQ(stats.packets + stats.shed.ring_full + stats.shed.misrouted,
              fx.trace.size());
    EXPECT_EQ(stats.decisions + stats.warmup + stats.shed.inference,
              stats.packets);
    EXPECT_EQ(stats.active_version, swapped ? 2u : 1u);
    EXPECT_EQ(stats.shed.misrouted, 0u);

    const auto decisions = server.TakeDecisions();
    EXPECT_EQ(decisions.size(), stats.decisions);
    for (const auto& d : decisions) {
      EXPECT_TRUE(d.version == 1 || (swapped && d.version == 2));
    }

    // Always ends healthy: drained, quiesced, no stuck flags.
    const auto health = server.Health();
    EXPECT_FALSE(health.running);
    EXPECT_TRUE(health.healthy());
    for (const auto& sh : health.shards) {
      EXPECT_EQ(sh.ring_depth, 0u);
    }

    // A bounded plan fully drains: every armed fire budget is finite and
    // the injector never exceeds it.
    for (std::size_t i = 0; i < rt::kNumFaultSites; ++i) {
      const auto s = rt::FaultInjector::Instance().stats(
          static_cast<rt::FaultSite>(i));
      EXPECT_LE(s.fires, plan.sites[i].armed ? plan.sites[i].limit : 0u);
    }
  }
}

// Disarmed fault hooks must not perturb determinism: MT == ST per-flow
// decisions with the hooks compiled in (the hooks are in the hot path of
// every Push/flush — this pins "branch-predictable no-op" behaviorally).
TEST(FaultSoak, DisarmedHooksPreserveMtStEquality) {
  const auto& fx = SharedFixture();
  ASSERT_FALSE(rt::FaultInjector::Instance().armed());
  auto opts = BaseOptions(4);
  rt::StreamServer st(fx.v1, opts);
  auto st_dec = st.Serve(fx.trace);
  opts.multithreaded = true;
  rt::StreamServer mt(fx.v1, opts);
  auto mt_dec = mt.Serve(fx.trace);
  auto sort = [](std::vector<rt::StreamDecision>& v) {
    std::sort(v.begin(), v.end(),
              [](const rt::StreamDecision& a, const rt::StreamDecision& b) {
                return std::tie(a.flow, a.index) < std::tie(b.flow, b.index);
              });
  };
  sort(st_dec);
  sort(mt_dec);
  ASSERT_EQ(st_dec.size(), mt_dec.size());
  for (std::size_t i = 0; i < st_dec.size(); ++i) {
    EXPECT_EQ(st_dec[i].flow, mt_dec[i].flow);
    EXPECT_EQ(st_dec[i].index, mt_dec[i].index);
    EXPECT_EQ(st_dec[i].predicted, mt_dec[i].predicted);
    EXPECT_EQ(st_dec[i].score, mt_dec[i].score);
  }
}
