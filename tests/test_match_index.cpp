// Property tests for the compiled bit-vector match index: the sealed
// (indexed) lookup path must be bit-identical to the linear-scan reference
// on randomized ternary/range tables — same winners under priority ties,
// same misses, same PHV contents after ApplyBatch — plus seal/mutate
// lifecycle and exact-match hash-collision coverage.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <random>
#include <vector>

#include "dataplane/match_index.hpp"
#include "dataplane/pipeline.hpp"
#include "dataplane/table.hpp"

namespace dp = pegasus::dataplane;

namespace {

struct TablePair {
  dp::PhvLayout layout;
  std::vector<dp::FieldId> keys;
  dp::FieldId out = 0;
  std::unique_ptr<dp::MatchActionTable> indexed;  // sealed
  std::unique_ptr<dp::MatchActionTable> linear;   // never sealed
};

TablePair MakePair(dp::MatchKind kind, const std::vector<int>& widths,
                   const std::vector<dp::TableEntry>& entries) {
  TablePair p;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    p.keys.push_back(p.layout.AddField("k" + std::to_string(i), widths[i]));
  }
  p.out = p.layout.AddField("o", 32);
  std::vector<dp::ActionOp> prog{
      {dp::ActionOp::Kind::kSetFromData, p.out, 0, 0, -1}};
  p.indexed = std::make_unique<dp::MatchActionTable>("idx", kind, p.keys,
                                                     widths, prog, 32);
  p.linear = std::make_unique<dp::MatchActionTable>("lin", kind, p.keys,
                                                    widths, prog, 32);
  for (const dp::TableEntry& e : entries) {
    p.indexed->AddEntry(e);
    p.linear->AddEntry(e);
  }
  p.indexed->Seal();
  return p;
}

/// Lookups on both tables must agree exactly (hit/miss and entry index).
void ExpectSameLookup(const TablePair& p, const std::vector<std::uint64_t>& key) {
  dp::Phv phv(p.layout);
  for (std::size_t i = 0; i < p.keys.size(); ++i) {
    phv.Set(p.keys[i], static_cast<std::int64_t>(key[i]));
  }
  const std::optional<std::size_t> a = p.indexed->Lookup(phv);
  const std::optional<std::size_t> b = p.linear->Lookup(phv);
  ASSERT_EQ(a, b) << "key[0]=" << key[0];
}

std::vector<std::uint64_t> RandomKey(std::mt19937_64& rng,
                                     const std::vector<int>& widths,
                                     bool allow_overwide) {
  std::vector<std::uint64_t> key;
  for (int w : widths) {
    const std::uint64_t dmax =
        w >= 64 ? ~0ull : (1ull << w) - 1;
    std::uint64_t v = rng() & dmax;
    // Overwide keys: bits above the declared field width must not change
    // the outcome on either path (no rule masks them).
    if (allow_overwide && w < 60 && rng() % 4 == 0) v |= 1ull << (w + 2);
    key.push_back(v);
  }
  return key;
}

}  // namespace

TEST(MatchIndex, RandomTernaryTablesMatchLinearReference) {
  std::mt19937_64 rng(1234);
  const std::vector<std::vector<int>> shapes = {{10}, {8, 8}, {6, 10, 16}};
  for (const auto& widths : shapes) {
    for (int trial = 0; trial < 6; ++trial) {
      std::vector<dp::TableEntry> entries;
      const std::size_t n = 20 + rng() % 180;
      for (std::size_t e = 0; e < n; ++e) {
        dp::TableEntry entry;
        for (int w : widths) {
          const std::uint64_t dmax = (1ull << w) - 1;
          // Mix of rule shapes: exact value, random mask (non-prefix
          // masks included), and catch-all.
          const int mode = static_cast<int>(rng() % 4);
          dp::TernaryRule r;
          if (mode == 0) {
            r = {rng() & dmax, dmax};
          } else if (mode == 3) {
            r = {0, 0};
          } else {
            r = {rng() & dmax, rng() & dmax};
          }
          entry.ternary.push_back(r);
        }
        entry.priority = static_cast<int>(rng() % 5);  // plenty of ties
        entry.action_data = {static_cast<std::int64_t>(e)};
        entries.push_back(entry);
      }
      const TablePair p = MakePair(dp::MatchKind::kTernary, widths, entries);
      ASSERT_NE(p.indexed->index_stats(), nullptr);
      for (int probe = 0; probe < 300; ++probe) {
        ExpectSameLookup(p, RandomKey(rng, widths, /*allow_overwide=*/true));
      }
      // Probes seeded from entry values (guaranteed-hit-heavy).
      for (std::size_t e = 0; e < entries.size(); e += 3) {
        std::vector<std::uint64_t> key;
        for (std::size_t i = 0; i < widths.size(); ++i) {
          key.push_back(entries[e].ternary[i].value ^
                        (rng() % 3 == 0 ? 1ull : 0ull));
        }
        ExpectSameLookup(p, key);
      }
    }
  }
}

TEST(MatchIndex, RandomRangeTablesMatchLinearReference) {
  std::mt19937_64 rng(987);
  const std::vector<std::vector<int>> shapes = {{16}, {12, 12}, {8, 16, 10}};
  for (const auto& widths : shapes) {
    for (int trial = 0; trial < 6; ++trial) {
      std::vector<dp::TableEntry> entries;
      const std::size_t n = 20 + rng() % 120;
      for (std::size_t e = 0; e < n; ++e) {
        dp::TableEntry entry;
        for (int w : widths) {
          const std::uint64_t dmax = (1ull << w) - 1;
          std::uint64_t lo = rng() & dmax, hi = rng() & dmax;
          if (lo > hi) std::swap(lo, hi);
          if (rng() % 8 == 0) hi = dmax;  // top-of-domain edge
          if (rng() % 8 == 1) lo = 0;
          entry.range_lo.push_back(lo);
          entry.range_hi.push_back(hi);
        }
        entry.priority = static_cast<int>(rng() % 4);
        entry.action_data = {static_cast<std::int64_t>(e)};
        entries.push_back(entry);
      }
      const TablePair p = MakePair(dp::MatchKind::kRange, widths, entries);
      ASSERT_NE(p.indexed->index_stats(), nullptr);
      for (int probe = 0; probe < 300; ++probe) {
        ExpectSameLookup(p, RandomKey(rng, widths, /*allow_overwide=*/false));
      }
      // Boundary probes: lo-1, lo, hi, hi+1 of random entries.
      for (std::size_t e = 0; e < entries.size(); e += 2) {
        for (int which = 0; which < 4; ++which) {
          std::vector<std::uint64_t> key;
          for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::uint64_t lo = entries[e].range_lo[i];
            const std::uint64_t hi = entries[e].range_hi[i];
            const std::uint64_t v = which == 0   ? (lo == 0 ? 0 : lo - 1)
                                    : which == 1 ? lo
                                    : which == 2 ? hi
                                                 : hi + 1;
            key.push_back(v);
          }
          ExpectSameLookup(p, key);
        }
      }
    }
  }
}

TEST(MatchIndex, WideSixtyFourBitTernaryField) {
  std::mt19937_64 rng(55);
  std::vector<dp::TableEntry> entries;
  for (std::size_t e = 0; e < 64; ++e) {
    // Masks spanning the full 64-bit word, including high-bit-only masks.
    const std::uint64_t mask = rng() | (1ull << 63);
    entries.push_back({.ternary = {dp::TernaryRule{rng(), mask}},
                       .priority = static_cast<int>(e % 3),
                       .action_data = {static_cast<std::int64_t>(e)}});
  }
  entries.push_back(
      {.ternary = {dp::TernaryRule{0, 0}}, .priority = -1, .action_data = {99}});
  const TablePair p = MakePair(dp::MatchKind::kTernary, {64}, entries);
  for (int probe = 0; probe < 500; ++probe) {
    ExpectSameLookup(p, {rng()});
  }
  for (const auto& e : entries) {
    ExpectSameLookup(p, {e.ternary[0].value});
  }
}

TEST(MatchIndex, RangeTopOfDomain64Bit) {
  std::vector<dp::TableEntry> entries;
  entries.push_back({.range_lo = {0}, .range_hi = {~0ull}, .priority = 0,
                     .action_data = {1}});
  entries.push_back({.range_lo = {~0ull - 10}, .range_hi = {~0ull},
                     .priority = 5, .action_data = {2}});
  for (std::uint64_t i = 0; i < 10; ++i) {
    entries.push_back({.range_lo = {i * 100}, .range_hi = {i * 100 + 50},
                       .priority = 3,
                       .action_data = {static_cast<std::int64_t>(i)}});
  }
  const TablePair p = MakePair(dp::MatchKind::kRange, {64}, entries);
  for (const std::uint64_t v :
       {0ull, 50ull, 51ull, 99ull, 100ull, 949ull, 950ull, ~0ull - 11,
        ~0ull - 10, ~0ull - 1, ~0ull}) {
    ExpectSameLookup(p, {v});
  }
}

TEST(MatchIndex, PriorityTiesResolveToEarliestEntry) {
  // Three overlapping same-priority entries: the earliest must win on both
  // paths (TCAM physical ordering).
  std::vector<dp::TableEntry> entries;
  for (int e = 0; e < 10; ++e) {
    entries.push_back({.ternary = {dp::TernaryRule{0, 0}},
                       .priority = 7,
                       .action_data = {e}});
  }
  const TablePair p = MakePair(dp::MatchKind::kTernary, {8}, entries);
  dp::Phv phv(p.layout);
  phv.Set(p.keys[0], 3);
  EXPECT_EQ(p.indexed->Lookup(phv), std::optional<std::size_t>{0});
  EXPECT_EQ(p.linear->Lookup(phv), std::optional<std::size_t>{0});
  // Higher priority inserted later still wins.
  dp::TableEntry top{.ternary = {dp::TernaryRule{0, 0}},
                     .priority = 9,
                     .action_data = {42}};
  p.indexed->AddEntry(top);
  p.linear->AddEntry(top);
  p.indexed->Seal();
  EXPECT_EQ(p.indexed->Lookup(phv), std::optional<std::size_t>{10});
  EXPECT_EQ(p.linear->Lookup(phv), std::optional<std::size_t>{10});
}

TEST(MatchIndex, ApplyBatchBitIdenticalToSequentialApply) {
  std::mt19937_64 rng(321);
  for (const dp::MatchKind kind :
       {dp::MatchKind::kTernary, dp::MatchKind::kRange}) {
    std::vector<dp::TableEntry> entries;
    for (std::size_t e = 0; e < 100; ++e) {
      dp::TableEntry entry;
      if (kind == dp::MatchKind::kTernary) {
        entry.ternary = {dp::TernaryRule{rng() & 0x3ff, rng() & 0x3ff}};
      } else {
        std::uint64_t lo = rng() & 0x3ff, hi = rng() & 0x3ff;
        if (lo > hi) std::swap(lo, hi);
        entry.range_lo = {lo};
        entry.range_hi = {hi};
      }
      entry.priority = static_cast<int>(rng() % 4);
      entry.action_data = {static_cast<std::int64_t>(e), -7};
      entries.push_back(entry);
    }
    TablePair p = MakePair(kind, {10}, entries);
    p.indexed->SetMissProgram({{dp::ActionOp::Kind::kSetConst, p.out, 0,
                                -123, -1}},
                              {});
    p.linear->SetMissProgram({{dp::ActionOp::Kind::kSetConst, p.out, 0,
                               -123, -1}},
                             {});
    // Miss program mutation re-opens nothing (programs are not entries),
    // but be explicit that the indexed table is still sealed.
    ASSERT_TRUE(p.indexed->sealed());

    const std::size_t batch = 64;
    std::vector<dp::Phv> batch_indexed(batch, dp::Phv(p.layout));
    std::vector<dp::Phv> seq(batch, dp::Phv(p.layout));
    for (std::size_t i = 0; i < batch; ++i) {
      const std::int64_t v = static_cast<std::int64_t>(rng() & 0x7ff);
      batch_indexed[i].Set(p.keys[0], v);
      seq[i].Set(p.keys[0], v);
    }
    const std::size_t hits_indexed =
        p.indexed->ApplyBatch(std::span<dp::Phv>(batch_indexed));
    std::size_t hits_seq = 0;
    for (dp::Phv& phv : seq) {
      if (p.linear->Apply(phv)) ++hits_seq;
    }
    EXPECT_EQ(hits_indexed, hits_seq);
    for (std::size_t i = 0; i < batch; ++i) {
      for (std::size_t f = 0; f < p.layout.NumFields(); ++f) {
        ASSERT_EQ(batch_indexed[i].Get(f), seq[i].Get(f))
            << "packet " << i << " field " << f;
      }
    }
  }
}

TEST(MatchIndex, SealMutateLifecycle) {
  std::vector<dp::TableEntry> entries;
  for (std::size_t e = 0; e < 32; ++e) {
    entries.push_back({.ternary = {dp::TernaryRule{e, 0xff}},
                       .priority = 1,
                       .action_data = {static_cast<std::int64_t>(e)}});
  }
  TablePair p = MakePair(dp::MatchKind::kTernary, {8}, entries);
  EXPECT_TRUE(p.indexed->sealed());
  EXPECT_NE(p.indexed->index_stats(), nullptr);
  EXPECT_FALSE(p.linear->sealed());
  EXPECT_EQ(p.linear->index_stats(), nullptr);

  // Mutation invalidates the index; lookups stay correct on the fallback.
  p.indexed->AddEntry({.ternary = {dp::TernaryRule{200, 0xff}},
                       .priority = 2,
                       .action_data = {777}});
  EXPECT_FALSE(p.indexed->sealed());
  EXPECT_EQ(p.indexed->index_stats(), nullptr);
  dp::Phv phv(p.layout);
  phv.Set(p.keys[0], 200);
  EXPECT_EQ(p.indexed->Lookup(phv), std::optional<std::size_t>{32});

  // Re-seal rebuilds the index over the new entry list.
  p.indexed->Seal();
  EXPECT_TRUE(p.indexed->sealed());
  ASSERT_NE(p.indexed->index_stats(), nullptr);
  EXPECT_EQ(p.indexed->index_stats()->entries, 33u);
  EXPECT_GT(p.indexed->index_stats()->bytes, 0u);
  EXPECT_GT(p.indexed->index_stats()->nibble_chunks, 0u);
  EXPECT_EQ(p.indexed->Lookup(phv), std::optional<std::size_t>{32});
  phv.Set(p.keys[0], 5);
  EXPECT_EQ(p.indexed->Lookup(phv), std::optional<std::size_t>{5});

  // Seal is idempotent.
  const dp::MatchIndexStats* stats = p.indexed->index_stats();
  p.indexed->Seal();
  EXPECT_EQ(p.indexed->index_stats(), stats);
}

TEST(MatchIndex, GenerationCounterTracksSealInvalidation) {
  // The sealed-table mutation hazard (ISSUE 4 satellite): AddEntry after
  // Seal() must be *observable* — a monotonic generation counter moves on
  // every mutation/seal, and invalidated() flags the sealed->mutated->
  // not-yet-resealed window (the serving paths assert on it in debug
  // builds; Lookup stays usable as the linear oracle).
  std::vector<dp::TableEntry> entries;
  for (std::size_t e = 0; e < 16; ++e) {
    entries.push_back({.ternary = {dp::TernaryRule{e, 0xff}},
                       .priority = 1,
                       .action_data = {static_cast<std::int64_t>(e)}});
  }
  TablePair p = MakePair(dp::MatchKind::kTernary, {8}, entries);

  // Never-sealed tables are not "invalidated" — linear serving is legal.
  EXPECT_FALSE(p.linear->invalidated());
  // Sealed tables are not invalidated either.
  EXPECT_TRUE(p.indexed->sealed());
  EXPECT_FALSE(p.indexed->invalidated());

  const std::uint64_t g0 = p.indexed->generation();
  p.indexed->AddEntry({.ternary = {dp::TernaryRule{200, 0xff}},
                       .priority = 2,
                       .action_data = {777}});
  EXPECT_GT(p.indexed->generation(), g0) << "mutation bumps the generation";
  EXPECT_TRUE(p.indexed->invalidated()) << "sealed -> mutated -> hazard";
  EXPECT_FALSE(p.indexed->sealed());

  const std::uint64_t g1 = p.indexed->generation();
  p.indexed->Seal();
  EXPECT_GT(p.indexed->generation(), g1) << "re-seal bumps the generation";
  EXPECT_FALSE(p.indexed->invalidated());
  // Idempotent Seal() does not move the generation (no observable change).
  const std::uint64_t g2 = p.indexed->generation();
  p.indexed->Seal();
  EXPECT_EQ(p.indexed->generation(), g2);

  // Pipeline::Generation() aggregates placed tables, so a live
  // InferenceEngine can snapshot one number for the whole dataplane.
  dp::Pipeline pipe;
  auto table = std::make_unique<dp::MatchActionTable>(
      "gen", dp::MatchKind::kTernary, std::vector<dp::FieldId>{p.keys[0]},
      std::vector<int>{8}, std::vector<dp::ActionOp>{}, 16);
  for (const auto& e : entries) table->AddEntry(e);
  const std::uint64_t before = pipe.Generation();
  pipe.PlaceTable(std::move(table), 0);
  EXPECT_GT(pipe.Generation(), before)
      << "placement seals the table and moves the pipeline stamp";
}

TEST(MatchIndex, TinyTablesSealWithoutIndex) {
  std::vector<dp::TableEntry> entries;
  for (std::size_t e = 0; e < dp::MatchActionTable::kIndexMinEntries - 1;
       ++e) {
    entries.push_back({.ternary = {dp::TernaryRule{e, 0xff}},
                       .priority = 0,
                       .action_data = {static_cast<std::int64_t>(e)}});
  }
  const TablePair p = MakePair(dp::MatchKind::kTernary, {8}, entries);
  EXPECT_TRUE(p.indexed->sealed());
  EXPECT_EQ(p.indexed->index_stats(), nullptr);  // linear fallback
  dp::Phv phv(p.layout);
  for (std::uint64_t v = 0; v < 16; ++v) {
    phv.Set(p.keys[0], static_cast<std::int64_t>(v));
    EXPECT_EQ(p.indexed->Lookup(phv), p.linear->Lookup(phv));
  }
}

TEST(MatchIndex, ExactHashCollisionsResolveViaChaining) {
  // Truncate the hash to 6 bits so distinct keys collide constantly; every
  // key must still find its own entry (the old last-write-wins index
  // silently shadowed earlier entries).
  dp::PhvLayout layout;
  const auto k0 = layout.AddField("k0", 32);
  const auto k1 = layout.AddField("k1", 32);
  const auto out = layout.AddField("o", 32);
  std::vector<dp::ActionOp> prog{
      {dp::ActionOp::Kind::kSetFromData, out, 0, 0, -1}};
  dp::MatchActionTable t("e", dp::MatchKind::kExact, {k0, k1}, {32, 32},
                         prog, 32);
  t.SetExactHashBitsForTest(6);
  std::mt19937_64 rng(777);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> keys;
  for (std::size_t e = 0; e < 300; ++e) {
    const std::uint64_t a = rng() & 0xffffffff, b = rng() & 0xffffffff;
    keys.emplace_back(a, b);
    t.AddEntry({.exact_key = {a, b},
                .action_data = {static_cast<std::int64_t>(e)}});
  }
  dp::Phv phv(layout);
  for (std::size_t e = 0; e < keys.size(); ++e) {
    phv.Set(k0, static_cast<std::int64_t>(keys[e].first));
    phv.Set(k1, static_cast<std::int64_t>(keys[e].second));
    ASSERT_EQ(t.Lookup(phv), std::optional<std::size_t>{e});
    EXPECT_TRUE(t.Apply(phv));
    EXPECT_EQ(phv.Get(out), static_cast<std::int64_t>(e));
  }
  // Absent key sharing a truncated hash bucket: must miss, not alias.
  phv.Set(k0, static_cast<std::int64_t>(keys[0].first ^ 1));
  phv.Set(k1, static_cast<std::int64_t>(keys[0].second));
  EXPECT_EQ(t.Lookup(phv), std::nullopt);
}

TEST(MatchIndex, ExactDuplicateKeyKeepsLatestEntry) {
  dp::PhvLayout layout;
  const auto k = layout.AddField("k", 16);
  const auto out = layout.AddField("o", 32);
  std::vector<dp::ActionOp> prog{
      {dp::ActionOp::Kind::kSetFromData, out, 0, 0, -1}};
  dp::MatchActionTable t("e", dp::MatchKind::kExact, {k}, {16}, prog, 32);
  t.AddEntry({.exact_key = {9}, .action_data = {1}});
  t.AddEntry({.exact_key = {9}, .action_data = {2}});
  dp::Phv phv(layout);
  phv.Set(k, 9);
  EXPECT_EQ(t.Lookup(phv), std::optional<std::size_t>{1});
}

TEST(MatchIndex, PlaceTableSealsAndPipelineReportsIndex) {
  dp::Pipeline pipe;
  dp::PhvLayout layout;
  const auto key = layout.AddField("k", 10);
  const auto out = layout.AddField("o", 16);
  std::vector<dp::ActionOp> prog{
      {dp::ActionOp::Kind::kSetFromData, out, 0, 0, -1}};
  auto t = std::make_unique<dp::MatchActionTable>(
      "t", dp::MatchKind::kTernary, std::vector<dp::FieldId>{key},
      std::vector<int>{10}, prog, 16);
  for (std::uint64_t e = 0; e < 64; ++e) {
    t->AddEntry({.ternary = {dp::TernaryRule{e, 0x3ff}},
                 .priority = 1,
                 .action_data = {static_cast<std::int64_t>(e)}});
  }
  EXPECT_FALSE(t->sealed());
  pipe.PlaceTable(std::move(t), 0);
  EXPECT_TRUE(pipe.FullySealed());
  const auto report = pipe.MatchIndexReport();
  EXPECT_EQ(report.indexed_tables, 1u);
  EXPECT_GT(report.nibble_chunks, 0u);
  EXPECT_GT(report.bytes, 0u);

  dp::Phv phv(layout);
  phv.Set(key, 7);
  EXPECT_EQ(pipe.Process(phv), 1u);
  EXPECT_EQ(phv.Get(out), 7);
}

// ---------------------------------------------------------------------------
// O(delta) in-place updates (ApplyDelta): a patched sealed index must be
// bit-identical to re-sealing from scratch over the patched entry list —
// same winners under priority ties, same misses — across repeated patch
// rounds, and the table must never pass through invalidated().
// ---------------------------------------------------------------------------

namespace {

/// Mutates `entries` in place and returns the equivalent patch batch.
/// Donor masks/bounds are taken from existing entries, so every patch is
/// absorbable by construction (donor masks are subsets of the mask union;
/// donor range bounds are existing elementary-interval boundaries).
std::vector<dp::EntryPatch> RandomAbsorbablePatches(
    std::mt19937_64& rng, dp::MatchKind kind,
    std::vector<dp::TableEntry>& entries, const std::vector<int>& widths,
    std::size_t count) {
  std::vector<dp::EntryPatch> patches;
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t e = rng() % entries.size();
    const std::size_t o = rng() % entries.size();
    dp::EntryPatch p;
    p.entry_index = e;
    p.priority = entries[e].priority;
    for (std::size_t d = 0; d < widths.size(); ++d) {
      const std::uint64_t dmax =
          widths[d] >= 64 ? ~0ull : (1ull << widths[d]) - 1;
      if (kind == dp::MatchKind::kTernary) {
        p.ternary.push_back({rng() & dmax, entries[o].ternary[d].mask});
      } else {
        p.range_lo.push_back(entries[o].range_lo[d]);
        p.range_hi.push_back(entries[o].range_hi[d]);
      }
    }
    p.action_data = {static_cast<std::int64_t>(rng() % 1000)};
    if (kind == dp::MatchKind::kTernary) {
      entries[e].ternary = p.ternary;
    } else {
      entries[e].range_lo = p.range_lo;
      entries[e].range_hi = p.range_hi;
    }
    entries[e].action_data = p.action_data;
    patches.push_back(std::move(p));
  }
  return patches;
}

}  // namespace

TEST(MatchIndexDelta, PatchedIndexBitIdenticalToFreshSeal) {
  std::mt19937_64 rng(20240808);
  for (const dp::MatchKind kind :
       {dp::MatchKind::kTernary, dp::MatchKind::kRange}) {
    const std::vector<std::vector<int>> shapes = {{10}, {8, 12}};
    for (const auto& widths : shapes) {
      for (int trial = 0; trial < 4; ++trial) {
        std::vector<dp::TableEntry> entries;
        const std::size_t n = 24 + rng() % 100;
        for (std::size_t e = 0; e < n; ++e) {
          dp::TableEntry entry;
          for (int w : widths) {
            const std::uint64_t dmax = (1ull << w) - 1;
            if (kind == dp::MatchKind::kTernary) {
              const int mode = static_cast<int>(rng() % 4);
              entry.ternary.push_back(
                  mode == 0   ? dp::TernaryRule{rng() & dmax, dmax}
                  : mode == 3 ? dp::TernaryRule{0, 0}
                              : dp::TernaryRule{rng() & dmax, rng() & dmax});
            } else {
              std::uint64_t lo = rng() & dmax, hi = rng() & dmax;
              if (lo > hi) std::swap(lo, hi);
              if (rng() % 8 == 0) hi = dmax;
              entry.range_lo.push_back(lo);
              entry.range_hi.push_back(hi);
            }
          }
          entry.priority = static_cast<int>(rng() % 4);  // plenty of ties
          entry.action_data = {static_cast<std::int64_t>(e)};
          entries.push_back(entry);
        }
        TablePair p = MakePair(kind, widths, entries);
        ASSERT_NE(p.indexed->index_stats(), nullptr);

        // Several patch rounds against the SAME sealed index — repeated
        // in-place deltas must not accumulate drift.
        for (int round = 0; round < 3; ++round) {
          const auto patches = RandomAbsorbablePatches(
              rng, kind, entries, widths, 1 + rng() % 8);
          p.indexed->ApplyDelta(patches);
          p.linear->ApplyDelta(patches);
          EXPECT_TRUE(p.indexed->sealed());
          EXPECT_FALSE(p.indexed->invalidated());

          // Reference: a fresh table sealed over the patched entry list.
          const TablePair fresh = MakePair(kind, widths, entries);
          for (int probe = 0; probe < 150; ++probe) {
            const auto key = RandomKey(rng, widths, false);
            dp::Phv a(p.layout), b(fresh.layout);
            for (std::size_t i = 0; i < p.keys.size(); ++i) {
              a.Set(p.keys[i], static_cast<std::int64_t>(key[i]));
              b.Set(fresh.keys[i], static_cast<std::int64_t>(key[i]));
            }
            ASSERT_EQ(p.indexed->Lookup(a), fresh.indexed->Lookup(b));
            ASSERT_EQ(p.indexed->Lookup(a), p.linear->Lookup(a));
          }
          // Probes seeded from patched entries (guaranteed-hit-heavy).
          for (const auto& patch : patches) {
            std::vector<std::uint64_t> key;
            for (std::size_t i = 0; i < widths.size(); ++i) {
              key.push_back(kind == dp::MatchKind::kTernary
                                ? entries[patch.entry_index].ternary[i].value
                                : entries[patch.entry_index].range_lo[i]);
            }
            dp::Phv a(p.layout), b(fresh.layout);
            for (std::size_t i = 0; i < p.keys.size(); ++i) {
              a.Set(p.keys[i], static_cast<std::int64_t>(key[i]));
              b.Set(fresh.keys[i], static_cast<std::int64_t>(key[i]));
            }
            ASSERT_EQ(p.indexed->Lookup(a), fresh.indexed->Lookup(b));
          }
        }
      }
    }
  }
}

TEST(MatchIndexDelta, KeepsTableSealedAndBumpsGenerationOnce) {
  std::vector<dp::TableEntry> entries;
  for (std::size_t e = 0; e < 32; ++e) {
    entries.push_back({.ternary = {dp::TernaryRule{e, 0xff}},
                       .priority = 1,
                       .action_data = {static_cast<std::int64_t>(e)}});
  }
  TablePair p = MakePair(dp::MatchKind::kTernary, {8}, entries);
  const std::uint64_t g0 = p.indexed->generation();
  const auto* stats = p.indexed->index_stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->deltas_applied, 0u);
  EXPECT_EQ(stats->reseals_avoided, 0u);

  // One batch of three patches: generation moves exactly once (the whole
  // batch publishes atomically) and the table NEVER leaves sealed state.
  std::vector<dp::EntryPatch> patches;
  for (std::size_t k = 0; k < 3; ++k) {
    patches.push_back({.entry_index = k,
                       .ternary = {dp::TernaryRule{100 + k, 0xff}},
                       .priority = 1,
                       .action_data = {static_cast<std::int64_t>(500 + k)}});
  }
  const std::size_t bytes = p.indexed->ApplyDelta(patches);
  EXPECT_GT(bytes, 0u);
  EXPECT_EQ(p.indexed->generation(), g0 + 1);
  EXPECT_TRUE(p.indexed->sealed());
  EXPECT_FALSE(p.indexed->invalidated());
  EXPECT_EQ(p.indexed->index_stats(), stats) << "no index rebuild";
  EXPECT_EQ(stats->deltas_applied, 3u);
  EXPECT_EQ(stats->leaf_words_patched, 3u);
  EXPECT_EQ(stats->reseals_avoided, 1u);

  // The patched rules serve immediately through the still-sealed index.
  dp::Phv phv(p.layout);
  phv.Set(p.keys[0], 101);
  EXPECT_EQ(p.indexed->Lookup(phv), std::optional<std::size_t>{1});
  phv.Set(p.keys[0], 1);
  EXPECT_EQ(p.indexed->Lookup(phv), std::nullopt);
}

TEST(MatchIndexDelta, TinyUnindexedTablesPatchEntriesDirectly) {
  std::vector<dp::TableEntry> entries;
  for (std::size_t e = 0; e + 1 < dp::MatchActionTable::kIndexMinEntries;
       ++e) {
    entries.push_back({.ternary = {dp::TernaryRule{e, 0xff}},
                       .priority = 0,
                       .action_data = {static_cast<std::int64_t>(e)}});
  }
  TablePair p = MakePair(dp::MatchKind::kTernary, {8}, entries);
  ASSERT_EQ(p.indexed->index_stats(), nullptr);  // linear fallback
  p.indexed->ApplyDelta(std::vector<dp::EntryPatch>{
      {.entry_index = 2,
       .ternary = {dp::TernaryRule{77, 0xff}},
       .priority = 0,
       .action_data = {42}}});
  EXPECT_TRUE(p.indexed->sealed());
  dp::Phv phv(p.layout);
  phv.Set(p.keys[0], 77);
  EXPECT_EQ(p.indexed->Lookup(phv), std::optional<std::size_t>{2});
}

TEST(MatchIndexDelta, RejectsUnabsorbablePatchesAndStaysIntact) {
  // Chunk coverage: masks only touch the low nibble, so a patch masking
  // the high nibble cannot be absorbed in place.
  std::vector<dp::TableEntry> entries;
  for (std::size_t e = 0; e < 16; ++e) {
    entries.push_back({.ternary = {dp::TernaryRule{e & 0xf, 0x0f}},
                       .priority = 1,
                       .action_data = {static_cast<std::int64_t>(e)}});
  }
  TablePair p = MakePair(dp::MatchKind::kTernary, {8}, entries);
  const std::uint64_t g0 = p.indexed->generation();

  const auto reject = [&](dp::EntryPatch patch) {
    EXPECT_THROW(
        p.indexed->ApplyDelta(std::vector<dp::EntryPatch>{std::move(patch)}),
        std::invalid_argument);
    EXPECT_EQ(p.indexed->generation(), g0) << "rejected patch must not move "
                                              "the table";
    EXPECT_TRUE(p.indexed->sealed());
  };
  // Mask outside the index's chunk coverage.
  reject({.entry_index = 0,
          .ternary = {dp::TernaryRule{0x30, 0x30}},
          .priority = 1,
          .action_data = {9}});
  // Entry index out of range.
  reject({.entry_index = 99,
          .ternary = {dp::TernaryRule{1, 0x0f}},
          .priority = 1,
          .action_data = {9}});
  // Action-data resize.
  reject({.entry_index = 0,
          .ternary = {dp::TernaryRule{1, 0x0f}},
          .priority = 1,
          .action_data = {9, 9}});
  // Priority change (would reorder the sorted arena).
  reject({.entry_index = 0,
          .ternary = {dp::TernaryRule{1, 0x0f}},
          .priority = 2,
          .action_data = {9}});
  // Key arity mismatch.
  reject({.entry_index = 0,
          .ternary = {dp::TernaryRule{1, 0x0f}, dp::TernaryRule{1, 0x0f}},
          .priority = 1,
          .action_data = {9}});

  // Range: lo/hi must land on existing elementary-interval boundaries.
  std::vector<dp::TableEntry> rentries;
  for (std::uint64_t e = 0; e < 12; ++e) {
    rentries.push_back({.range_lo = {e * 100}, .range_hi = {e * 100 + 49},
                        .priority = 1,
                        .action_data = {static_cast<std::int64_t>(e)}});
  }
  TablePair r = MakePair(dp::MatchKind::kRange, {16}, rentries);
  EXPECT_THROW(r.indexed->ApplyDelta(std::vector<dp::EntryPatch>{
                   {.entry_index = 0,
                    .range_lo = {37},  // not a boundary
                    .range_hi = {49},
                    .priority = 1,
                    .action_data = {9}}}),
               std::invalid_argument);
  // Donor boundaries from another entry are absorbable.
  r.indexed->ApplyDelta(std::vector<dp::EntryPatch>{
      {.entry_index = 0,
       .range_lo = {300},
       .range_hi = {349},
       .priority = 1,
       .action_data = {9}}});
  dp::Phv phv(r.layout);
  phv.Set(r.keys[0], 320);
  EXPECT_EQ(r.indexed->Lookup(phv), std::optional<std::size_t>{0});
}

TEST(MatchIndexDelta, PipelineApplyDeltaIsAtomicAcrossTables) {
  // Two placed tables; the second table's patch is invalid. The pipeline
  // must reject the whole batch with BOTH tables untouched.
  dp::Pipeline pipe;
  dp::PhvLayout layout;
  const auto key = layout.AddField("k", 8);
  const auto out = layout.AddField("o", 16);
  std::vector<dp::ActionOp> prog{
      {dp::ActionOp::Kind::kSetFromData, out, 0, 0, -1}};
  for (const char* name : {"a", "b"}) {
    auto t = std::make_unique<dp::MatchActionTable>(
        name, dp::MatchKind::kTernary, std::vector<dp::FieldId>{key},
        std::vector<int>{8}, prog, 16);
    for (std::uint64_t e = 0; e < 16; ++e) {
      t->AddEntry({.ternary = {dp::TernaryRule{e, 0xff}},
                   .priority = 0,
                   .action_data = {static_cast<std::int64_t>(e)}});
    }
    pipe.PlaceTable(std::move(t), 0);
  }
  const std::uint64_t g0 = pipe.Generation();

  std::vector<dp::TablePatch> bad(2);
  bad[0] = {"a",
            {{.entry_index = 0,
              .ternary = {dp::TernaryRule{200, 0xff}},
              .priority = 0,
              .action_data = {42}}}};
  bad[1] = {"b",
            {{.entry_index = 99,  // out of range
              .ternary = {dp::TernaryRule{1, 0xff}},
              .priority = 0,
              .action_data = {1}}}};
  EXPECT_THROW(pipe.ApplyDelta(bad), std::invalid_argument);
  EXPECT_EQ(pipe.Generation(), g0) << "table 'a' must not be patched when "
                                      "table 'b' fails validation";
  // Unknown table name is rejected up front, too.
  std::vector<dp::TablePatch> unknown{{"nope", {}}};
  EXPECT_THROW(pipe.ApplyDelta(unknown), std::invalid_argument);

  // A valid batch across both tables applies and bumps each table once.
  bad[1].patches[0].entry_index = 1;
  const std::size_t bytes = pipe.ApplyDelta(bad);
  EXPECT_GT(bytes, 0u);
  EXPECT_EQ(pipe.Generation(), g0 + 2);
  EXPECT_TRUE(pipe.FullySealed());
  const auto report = pipe.MatchIndexReport();
  EXPECT_EQ(report.deltas_applied, 2u);
  EXPECT_EQ(report.reseals_avoided, 2u);
}

TEST(MatchIndexDelta, CloneIsIndependentAndPreservesIndex) {
  std::vector<dp::TableEntry> entries;
  for (std::size_t e = 0; e < 32; ++e) {
    entries.push_back({.ternary = {dp::TernaryRule{e, 0xff}},
                       .priority = 1,
                       .action_data = {static_cast<std::int64_t>(e)}});
  }
  TablePair p = MakePair(dp::MatchKind::kTernary, {8}, entries);
  const auto clone = p.indexed->Clone();
  EXPECT_TRUE(clone->sealed());
  ASSERT_NE(clone->index_stats(), nullptr) << "clone keeps the compiled "
                                              "index";
  // Patch the clone: the original's lookups must not move.
  clone->ApplyDelta(std::vector<dp::EntryPatch>{
      {.entry_index = 5,
       .ternary = {dp::TernaryRule{200, 0xff}},
       .priority = 1,
       .action_data = {77}}});
  dp::Phv phv(p.layout);
  phv.Set(p.keys[0], 200);
  EXPECT_EQ(clone->Lookup(phv), std::optional<std::size_t>{5});
  EXPECT_EQ(p.indexed->Lookup(phv), std::nullopt);
  phv.Set(p.keys[0], 5);
  EXPECT_EQ(clone->Lookup(phv), std::nullopt);
  EXPECT_EQ(p.indexed->Lookup(phv), std::optional<std::size_t>{5});
}
