#include "dataplane/crc.hpp"

#include <gtest/gtest.h>

#include <random>

namespace dp = pegasus::dataplane;

namespace {

/// Exhaustively checks that the rule set covers exactly [lo, hi].
void CheckExactCoverage(std::uint64_t lo, std::uint64_t hi, int width) {
  const auto rules = dp::RangeToTernary(lo, hi, width);
  ASSERT_FALSE(rules.empty());
  EXPECT_LE(static_cast<int>(rules.size()), dp::MaxRulesForWidth(width));
  const std::uint64_t max = (std::uint64_t{1} << width) - 1;
  for (std::uint64_t v = 0; v <= max; ++v) {
    int matches = 0;
    for (const auto& r : rules) {
      if (r.Matches(v)) ++matches;
    }
    const bool inside = v >= lo && v <= hi;
    EXPECT_EQ(matches, inside ? 1 : 0)
        << "v=" << v << " lo=" << lo << " hi=" << hi;
  }
}

}  // namespace

TEST(Crc, SingleValue) { CheckExactCoverage(5, 5, 8); }

TEST(Crc, FullDomainIsOneRule) {
  const auto rules = dp::RangeToTernary(0, 255, 8);
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].mask & 0xff, 0u);
}

TEST(Crc, AlignedPowerOfTwoBlock) {
  const auto rules = dp::RangeToTernary(64, 127, 8);
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_TRUE(rules[0].Matches(64));
  EXPECT_TRUE(rules[0].Matches(127));
  EXPECT_FALSE(rules[0].Matches(63));
  EXPECT_FALSE(rules[0].Matches(128));
}

TEST(Crc, WorstCaseRange) {
  // [1, 2^w - 2] is the classical worst case: 2w-2 rules.
  CheckExactCoverage(1, 254, 8);
  const auto rules = dp::RangeToTernary(1, 254, 8);
  EXPECT_EQ(static_cast<int>(rules.size()), dp::MaxRulesForWidth(8));
}

TEST(Crc, RejectsBadArguments) {
  EXPECT_THROW(dp::RangeToTernary(5, 4, 8), std::invalid_argument);
  EXPECT_THROW(dp::RangeToTernary(0, 256, 8), std::invalid_argument);
  EXPECT_THROW(dp::RangeToTernary(0, 1, 0), std::invalid_argument);
  EXPECT_THROW(dp::RangeToTernary(0, 1, 64), std::invalid_argument);
}

TEST(Crc, Crc32KnownAnswers) {
  // Reflected IEEE CRC-32 check value (ITU-T V.42, zlib's crc32).
  const char check[] = "123456789";
  EXPECT_EQ(dp::Crc32(check, 9), 0xCBF43926u);
  EXPECT_EQ(dp::Crc32(nullptr, 0), 0u);
  EXPECT_EQ(dp::Crc32("a", 1), 0xE8B7BE43u);
}

TEST(Crc, Crc32SeedChainsIncrementalUpdates) {
  // Crc32(b, n) == Crc32(b + k, n - k, Crc32(b, k)) for every split point,
  // so the registry can checksum an envelope payload in pieces.
  const char data[] = "pegasus envelope payload";
  const std::size_t n = sizeof(data) - 1;
  const std::uint32_t whole = dp::Crc32(data, n);
  for (std::size_t k = 0; k <= n; ++k) {
    EXPECT_EQ(dp::Crc32(data + k, n - k, dp::Crc32(data, k)), whole)
        << "split at " << k;
  }
}

class CrcExhaustive : public ::testing::TestWithParam<int> {};

TEST_P(CrcExhaustive, AllRangesCoverExactly) {
  // Exhaustive over every (lo, hi) pair for small widths.
  const int width = GetParam();
  const std::uint64_t max = (std::uint64_t{1} << width) - 1;
  for (std::uint64_t lo = 0; lo <= max; ++lo) {
    for (std::uint64_t hi = lo; hi <= max; ++hi) {
      CheckExactCoverage(lo, hi, width);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallWidths, CrcExhaustive, ::testing::Values(1, 4, 6));

TEST(Crc, RandomRangesWiderWidths) {
  std::mt19937_64 rng(7);
  for (int width : {10, 16}) {
    const std::uint64_t max = (std::uint64_t{1} << width) - 1;
    std::uniform_int_distribution<std::uint64_t> dist(0, max);
    for (int trial = 0; trial < 50; ++trial) {
      std::uint64_t a = dist(rng), b = dist(rng);
      if (a > b) std::swap(a, b);
      const auto rules = dp::RangeToTernary(a, b, width);
      EXPECT_LE(static_cast<int>(rules.size()), dp::MaxRulesForWidth(width));
      // Spot-check membership at boundaries and a few interior points.
      for (std::uint64_t v :
           {a, b, (a + b) / 2, a == 0 ? max : a - 1, b == max ? std::uint64_t{0} : b + 1}) {
        int matches = 0;
        for (const auto& r : rules) {
          if (r.Matches(v)) ++matches;
        }
        EXPECT_EQ(matches, (v >= a && v <= b) ? 1 : 0);
      }
    }
  }
}
