// Tests for the extended Table 4 operator set: LayerNorm, Hadamard, and
// the Softmax primitive decomposition (§5's Multi-Input Operation).
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/operators.hpp"
#include "core/tablegen.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"

namespace core = pegasus::core;
namespace nn = pegasus::nn;

// ------------------------------------------------------------ LayerNorm

TEST(LayerNorm, NormalizesEachRow) {
  nn::LayerNorm ln(4);
  nn::Tensor x({2, 4}, {1, 2, 3, 4, 10, 10, 10, 10});
  nn::Tensor y = ln.Forward(x, true);
  // Row 0: zero mean, unit-ish variance.
  float mean = 0;
  for (std::size_t f = 0; f < 4; ++f) mean += y.at(0, f);
  EXPECT_NEAR(mean / 4, 0.0f, 1e-5f);
  // Row 1 is constant: normalized values are 0 (eps guards the division).
  for (std::size_t f = 0; f < 4; ++f) {
    EXPECT_NEAR(y.at(1, f), 0.0f, 1e-3f);
  }
}

TEST(LayerNorm, GradCheck) {
  nn::LayerNorm ln(5);
  std::mt19937_64 rng(3);
  nn::Tensor x({3, 5});
  std::uniform_real_distribution<float> dist(-2.0f, 2.0f);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = dist(rng);
  nn::Tensor y = ln.Forward(x, true);
  nn::Tensor g(y.shape());
  for (std::size_t i = 0; i < g.size(); ++i) g[i] = dist(rng);
  nn::Tensor dx = ln.Backward(g);
  const float eps = 1e-2f;
  for (std::size_t i = 0; i < x.size(); i += 4) {
    nn::Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    nn::Tensor yp = ln.Forward(xp, true);
    nn::Tensor ym = ln.Forward(xm, true);
    float lp = 0, lm = 0;
    for (std::size_t k = 0; k < yp.size(); ++k) {
      lp += yp[k] * g[k];
      lm += ym[k] * g[k];
    }
    const float numeric = (lp - lm) / (2 * eps);
    EXPECT_NEAR(dx[i], numeric, 2e-2f * std::max(1.0f, std::abs(numeric)));
  }
}

// ------------------------------------------------------------- Hadamard

TEST(Hadamard, LayerForwardBackward) {
  nn::HadamardGate gate;
  nn::Tensor x({1, 4}, {2, 3, 5, 7});
  nn::Tensor y = gate.Forward(x, true);
  EXPECT_FLOAT_EQ(y.at(0, 0), 10.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 21.0f);
  nn::Tensor g({1, 2}, {1.0f, 1.0f});
  nn::Tensor dx = gate.Backward(g);
  EXPECT_FLOAT_EQ(dx.at(0, 0), 5.0f);  // d/da (a*b) = b
  EXPECT_FLOAT_EQ(dx.at(0, 2), 2.0f);  // d/db (a*b) = a
  nn::Tensor odd({1, 3});
  EXPECT_THROW(gate.Forward(odd, true), std::invalid_argument);
}

TEST(Hadamard, MapFunctionMatchesLayer) {
  auto fn = core::MakeHadamardFn(3);
  const std::vector<float> x{1, 2, 3, 4, 5, 6};
  EXPECT_EQ(fn.fn(x), (std::vector<float>{4, 10, 18}));
  EXPECT_EQ(fn.in_dim, 6u);
  EXPECT_EQ(fn.out_dim, 3u);
}

// ------------------------------------------------- Softmax decomposition

TEST(SoftmaxPrimitives, ReferenceMatchesClosedForm) {
  core::ProgramBuilder b(3);
  const core::ValueId sm = core::AppendSoftmax(b, b.input(), 3, 64);
  core::Program p = b.Finish(sm);
  const std::vector<float> x{1.0f, 2.0f, 3.0f};
  const auto y = p.Evaluate(x);
  nn::Tensor logits({1, 3}, x);
  nn::Tensor expect = nn::Softmax(logits);
  ASSERT_EQ(y.size(), 3u);
  float sum = 0.0f;
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(y[i], expect[i], 1e-5f);
    sum += y[i];
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST(SoftmaxPrimitives, CompilesToFuzzyTables) {
  // Softmax over small-ranged inputs compiles and stays a valid
  // distribution under fuzzy evaluation.
  core::ProgramBuilder b(3);
  const core::ValueId sm = core::AppendSoftmax(b, b.input(), 3, 128);
  core::Program p = b.Finish(sm);

  std::mt19937_64 rng(5);
  std::uniform_real_distribution<float> dist(0.0f, 8.0f);
  const std::size_t n = 3000;
  std::vector<float> x(n * 3);
  for (float& v : x) v = std::floor(dist(rng));
  core::CompileOptions opts;
  opts.input_bits = 4;  // logits in [0, 16)
  auto cm = core::CompileProgram(std::move(p), x, n, opts);
  EXPECT_EQ(cm.NumTables(), 6u);  // 3 exp maps + 3 normalize maps

  // exp() spans three orders of magnitude over [0,8), so per-probability
  // fuzzy error is coarse; the distribution property that matters (and
  // that argmax relies on) is that mass stays near 1 on average.
  double mean_sum_err = 0.0;
  for (std::size_t i = 0; i < 200; ++i) {
    const auto y = cm.Evaluate(std::span<const float>(x.data() + i * 3, 3));
    float sum = 0.0f;
    for (float v : y) {
      EXPECT_GE(v, -0.05f);
      sum += v;
    }
    mean_sum_err += std::abs(double{sum} - 1.0);
  }
  EXPECT_LT(mean_sum_err / 200.0, 0.25);
}

TEST(SoftmaxPrimitives, ArgmaxPreservedUnderFuzzing) {
  core::ProgramBuilder b(3);
  const core::ValueId sm = core::AppendSoftmax(b, b.input(), 3, 128);
  core::Program p = b.Finish(sm);
  core::Program ref = p;
  std::mt19937_64 rng(6);
  std::uniform_real_distribution<float> dist(0.0f, 8.0f);
  const std::size_t n = 3000;
  std::vector<float> x(n * 3);
  for (float& v : x) v = std::floor(dist(rng));
  core::CompileOptions opts;
  opts.input_bits = 4;
  auto cm = core::CompileProgram(std::move(p), x, n, opts);
  std::size_t agree = 0, total = 0;
  for (std::size_t i = 0; i < 300; ++i) {
    std::span<const float> row(x.data() + i * 3, 3);
    const auto exact = ref.Evaluate(row);
    const auto fuzzy = cm.Evaluate(row);
    const auto am = [](const std::vector<float>& v) {
      return std::distance(v.begin(), std::max_element(v.begin(), v.end()));
    };
    // Only count confident rows (clear winner).
    std::vector<float> sorted = exact;
    std::sort(sorted.begin(), sorted.end());
    if (sorted[2] - sorted[1] < 0.15f) continue;
    ++total;
    if (am(exact) == am(fuzzy)) ++agree;
  }
  ASSERT_GT(total, 50u);
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.95);
}
