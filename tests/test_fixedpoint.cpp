#include "fixedpoint/fixedpoint.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace fp = pegasus::fixedpoint;

TEST(Format, ResolutionAndBounds) {
  fp::Format f{16, 8};
  EXPECT_DOUBLE_EQ(f.Resolution(), 1.0 / 256.0);
  EXPECT_DOUBLE_EQ(f.MaxValue(), 32767.0 / 256.0);
  EXPECT_DOUBLE_EQ(f.MinValue(), -32768.0 / 256.0);
}

TEST(Format, NegativeFracBitsMeansCoarseSteps) {
  fp::Format f{8, -2};  // steps of 4
  EXPECT_DOUBLE_EQ(f.Resolution(), 4.0);
  EXPECT_EQ(fp::Quantize(10.0, f), 3);  // round(10/4)=3 -> 12
  EXPECT_DOUBLE_EQ(fp::Dequantize(3, f), 12.0);
}

TEST(Quantize, RoundTripErrorBoundedByHalfLsb) {
  fp::Format f{16, 10};
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> dist(-20.0, 20.0);
  for (int i = 0; i < 1000; ++i) {
    const double v = dist(rng);
    const double rt = fp::QuantizeValue(v, f);
    EXPECT_LE(std::abs(rt - v), fp::MaxAbsError(f) + 1e-12) << v;
  }
}

TEST(Quantize, SaturatesAtBounds) {
  fp::Format f{8, 4};
  EXPECT_EQ(fp::Quantize(1e9, f), 127);
  EXPECT_EQ(fp::Quantize(-1e9, f), -128);
}

TEST(Quantize, RejectsBadFormat) {
  EXPECT_THROW(fp::Quantize(1.0, fp::Format{1, 0}), std::invalid_argument);
  EXPECT_THROW(fp::Quantize(1.0, fp::Format{63, 0}), std::invalid_argument);
}

TEST(SaturatingAdd, ClampsBothSides) {
  fp::Format f{8, 0};
  EXPECT_EQ(fp::SaturatingAdd(100, 100, f), 127);
  EXPECT_EQ(fp::SaturatingAdd(-100, -100, f), -128);
  EXPECT_EQ(fp::SaturatingAdd(5, 7, f), 12);
}

TEST(Rescale, ShiftsBetweenFormats) {
  fp::Format a{16, 8}, b{16, 4};
  // 1.5 in a = raw 384; in b = raw 24.
  EXPECT_EQ(fp::Rescale(384, a, b), 24);
  EXPECT_EQ(fp::Rescale(24, b, a), 384);
}

TEST(Rescale, RoundsToNearestOnNarrowing) {
  fp::Format a{16, 8}, b{16, 0};
  EXPECT_EQ(fp::Rescale(128, a, b), 1);   // 0.5 -> 1 (round half up)
  EXPECT_EQ(fp::Rescale(127, a, b), 0);   // 0.496 -> 0
  EXPECT_EQ(fp::Rescale(-128, a, b), -1);
}

TEST(ChooseFormat, MaximizesFracWithoutOverflow) {
  const float vals[] = {0.5f, -1.25f, 3.0f};
  fp::Format f = fp::ChooseFormat(vals, 16);
  // max |v| = 3 -> needs 2 integer bits -> frac = 16-1-2 = 13.
  EXPECT_EQ(f.frac_bits, 13);
  EXPECT_GE(f.MaxValue(), 3.0);
}

TEST(ChooseFormat, HeadroomWidensRange) {
  const float vals[] = {3.0f};
  fp::Format with = fp::ChooseFormat(vals, 16, 4.0);
  EXPECT_GE(with.MaxValue(), 12.0);
}

TEST(ChooseFormat, AllZeroInputGetsMaxFrac) {
  const float vals[] = {0.0f, 0.0f};
  fp::Format f = fp::ChooseFormat(vals, 16);
  EXPECT_EQ(f.frac_bits, 14);
}

class QuantizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(QuantizeSweep, EveryRepresentableValueRoundTripsExactly) {
  const int frac = GetParam();
  fp::Format f{12, frac};
  for (std::int64_t raw = -2048; raw < 2048; raw += 7) {
    const double v = fp::Dequantize(raw, f);
    EXPECT_EQ(fp::Quantize(v, f), raw);
  }
}

INSTANTIATE_TEST_SUITE_P(FracBits, QuantizeSweep,
                         ::testing::Values(-3, 0, 2, 5, 8));
