#include <gtest/gtest.h>

#include <random>

#include "baselines/bos.hpp"
#include "baselines/leo.hpp"
#include "baselines/n3ic.hpp"
#include "eval/metrics.hpp"

namespace bl = pegasus::baselines;
namespace ev = pegasus::eval;

namespace {

/// Toy 2-class problem: class = (feature0 > 128), plus noise features.
void ToyData(std::size_t n, std::size_t dim, std::uint64_t seed,
             std::vector<float>& x, std::vector<std::int32_t>& y) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(0.0f, 255.0f);
  x.resize(n * dim);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 0; d < dim; ++d) {
      x[i * dim + d] = std::floor(dist(rng));
    }
    y[i] = x[i * dim] > 128.0f ? 1 : 0;
  }
}

/// Sequence toy data: class decided by whether lengths alternate (period 2)
/// or stay flat — invisible to marginals, visible to sequence models.
void SeqToyData(std::size_t n, std::uint64_t seed, std::vector<float>& x,
                std::vector<std::int32_t>& y) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> noise(0.0f, 5.0f);
  std::uniform_int_distribution<int> cls(0, 1);
  const std::size_t window = 8;
  x.resize(n * window * 2);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int c = cls(rng);
    y[i] = c;
    for (std::size_t t = 0; t < window; ++t) {
      float len = 128.0f;
      if (c == 1) len += (t % 2 == 0) ? 80.0f : -80.0f;
      x[i * window * 2 + 2 * t] =
          std::clamp(len + noise(rng), 0.0f, 255.0f);
      x[i * window * 2 + 2 * t + 1] =
          std::clamp(100.0f + noise(rng), 0.0f, 255.0f);
    }
  }
}

double Accuracy(const std::vector<std::int32_t>& truth,
                const std::vector<std::int32_t>& pred) {
  std::size_t ok = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == pred[i]) ++ok;
  }
  return static_cast<double>(ok) / truth.size();
}

}  // namespace

// ------------------------------------------------------------------ Leo

TEST(Leo, LearnsAxisAlignedRule) {
  std::vector<float> x;
  std::vector<std::int32_t> y;
  ToyData(600, 4, 1, x, y);
  auto tree = bl::DecisionTree::Fit(x, y, 600, 4, 2, {64, 4, 8});
  std::vector<float> xt;
  std::vector<std::int32_t> yt;
  ToyData(200, 4, 2, xt, yt);
  EXPECT_GT(Accuracy(yt, tree.PredictBatch(xt, 200)), 0.95);
}

TEST(Leo, NodeBudgetRespected) {
  std::vector<float> x;
  std::vector<std::int32_t> y;
  ToyData(500, 4, 3, x, y);
  auto tree = bl::DecisionTree::Fit(x, y, 500, 4, 2, {17, 1, 8});
  EXPECT_LE(tree.NumNodes(), 17u);
  EXPECT_EQ(tree.NumNodes(), 2 * tree.NumLeaves() - 1);
}

TEST(Leo, FootprintCountsTernaryRules) {
  std::vector<float> x;
  std::vector<std::int32_t> y;
  ToyData(500, 4, 4, x, y);
  auto tree = bl::DecisionTree::Fit(x, y, 500, 4, 2, {128, 4, 8});
  const auto rep = tree.Footprint({});
  EXPECT_GT(rep.tcam_bits, 0u);
  EXPECT_EQ(rep.stateful_bits_per_flow, 80u);
  EXPECT_EQ(rep.tcam_bits % (2 * 4 * 8), 0u);  // entries * 2 * key_bits
}

TEST(Leo, RejectsBadData) {
  std::vector<float> x{1, 2};
  EXPECT_THROW(bl::DecisionTree::Fit(x, {0}, 2, 2, 2, {}),
               std::invalid_argument);
}

// ----------------------------------------------------------------- N3IC

TEST(N3ic, LearnsToyProblem) {
  std::vector<float> x;
  std::vector<std::int32_t> y;
  ToyData(800, 16, 5, x, y);
  bl::N3icConfig cfg;  // default epochs/lr
  auto mlp = bl::BinaryMlp::Train(x, y, 800, 16, 2, cfg);
  std::vector<float> xt;
  std::vector<std::int32_t> yt;
  ToyData(300, 16, 6, xt, yt);
  // A single informative bit among 128: learnable, but binarization costs
  // accuracy — which is exactly the paper's criticism of N3IC.
  EXPECT_GE(Accuracy(yt, mlp.PredictBatch(xt, 300)), 0.84);
}

TEST(N3ic, ModelSizeMatchesPaperBallpark) {
  std::vector<float> x;
  std::vector<std::int32_t> y;
  ToyData(100, 16, 7, x, y);
  bl::N3icConfig cfg;
  cfg.epochs = 1;
  auto mlp = bl::BinaryMlp::Train(x, y, 100, 16, 3, cfg);
  // 128x128 + 128x64 + 64x3 binary weights = 24.8 Kb (paper: 24.4 Kb).
  EXPECT_NEAR(mlp.ModelSizeKb(), 24.4, 1.0);
}

TEST(N3ic, PopcountPathIsAuthentic) {
  // XNOR+popcount logits must be odd/even-consistent with the layer width
  // (2*popcount - n has n's parity) — a structural property of the
  // dataplane arithmetic.
  std::vector<float> x;
  std::vector<std::int32_t> y;
  ToyData(200, 16, 8, x, y);
  bl::N3icConfig cfg;
  cfg.epochs = 2;
  auto mlp = bl::BinaryMlp::Train(x, y, 200, 16, 2, cfg);
  const auto logits = mlp.PopcountLogits(std::span<const float>(x.data(), 16));
  for (int l : logits) {
    EXPECT_EQ((l + 64) % 2, 0);  // last layer in = 64 (even), so logits even
  }
}

TEST(N3ic, InputBitsMustMatch) {
  std::vector<float> x;
  std::vector<std::int32_t> y;
  ToyData(10, 4, 9, x, y);
  bl::N3icConfig cfg;  // input_bits 128 != 4*8
  EXPECT_THROW(bl::BinaryMlp::Train(x, y, 10, 4, 2, cfg),
               std::invalid_argument);
}

// ------------------------------------------------------------------ BoS

TEST(Bos, LearnsMarginalToy) {
  // Flat-vs-alternating at +-80 around 128 flips the top length bit per
  // packet — learnable even from BoS's 3 bits per step.
  std::vector<float> x;
  std::vector<std::int32_t> y;
  SeqToyData(800, 10, x, y);
  bl::BosConfig cfg;
  cfg.epochs = 25;
  auto rnn = bl::BosRnn::Train(x, y, 800, 16, 2, cfg);
  std::vector<float> xt;
  std::vector<std::int32_t> yt;
  SeqToyData(300, 11, xt, yt);
  EXPECT_GT(Accuracy(yt, rnn.PredictBatch(xt, 300)), 0.8);
}

TEST(Bos, InputScaleIsEighteenBits) {
  std::vector<float> x;
  std::vector<std::int32_t> y;
  SeqToyData(50, 12, x, y);
  bl::BosConfig cfg;
  cfg.epochs = 1;
  auto rnn = bl::BosRnn::Train(x, y, 50, 16, 2, cfg);
  EXPECT_EQ(rnn.InputScaleBits(), 18u);  // 6 steps x 3 bits (Table 5)
}

TEST(Bos, TableScalingLawIsExponential) {
  std::vector<float> x;
  std::vector<std::int32_t> y;
  SeqToyData(50, 13, x, y);
  bl::BosConfig small;
  small.hidden = 8;
  small.epochs = 1;
  auto rnn8 = bl::BosRnn::Train(x, y, 50, 16, 2, small);
  EXPECT_EQ(rnn8.TableEntriesPerStep(), 1u << 11);
  bl::BosConfig big = small;
  big.hidden = 16;
  auto rnn16 = bl::BosRnn::Train(x, y, 50, 16, 2, big);
  // +8 hidden bits -> 256x more entries: the §2 scalability wall.
  EXPECT_EQ(rnn16.TableEntriesPerStep(), rnn8.TableEntriesPerStep() << 8);
}

TEST(Bos, FootprintMatchesTableSixShape) {
  std::vector<float> x;
  std::vector<std::int32_t> y;
  SeqToyData(50, 14, x, y);
  bl::BosConfig cfg;
  cfg.hidden = 8;  // the paper's moderate resource configuration
  cfg.epochs = 1;
  auto rnn = bl::BosRnn::Train(x, y, 50, 16, 2, cfg);
  const auto rep = rnn.Footprint({});
  EXPECT_EQ(rep.tcam_bits, 0u);                 // BoS uses no TCAM
  EXPECT_EQ(rep.stateful_bits_per_flow, 72u);   // Table 6
  EXPECT_GT(rep.sram_bits, 0u);
}
