#include "runtime/p4gen.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/operators.hpp"

namespace core = pegasus::core;
namespace rt = pegasus::runtime;

namespace {

core::CompiledModel SmallModel() {
  core::ProgramBuilder b(4);
  const std::vector<float> w{0.1f, 0.2f, 0.3f, 0.4f, 0.5f, 0.6f, 0.7f, 0.8f};
  core::ValueId v = core::AppendFullyConnected(b, b.input(), w, 4, 2,
                                               {}, 2, 16);
  v = b.Map(v, core::MakeReLU(2), 16);
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<float> dist(0.0f, 255.0f);
  std::vector<float> x(500 * 4);
  for (float& f : x) f = std::floor(dist(rng));
  return core::CompileProgram(b.Finish(v), x, 500, {});
}

}  // namespace

TEST(P4Gen, EmitsOneTablePerMap) {
  const auto model = SmallModel();
  const std::string p4 = rt::EmitP4(model);
  for (std::size_t oi = 0; oi < model.program().ops().size(); ++oi) {
    if (model.program().ops()[oi].kind == core::OpKind::kMap) {
      const std::string tbl = "table map_" + std::to_string(oi);
      EXPECT_NE(p4.find(tbl), std::string::npos) << tbl;
      EXPECT_NE(p4.find("map_" + std::to_string(oi) + ".apply();"),
                std::string::npos);
    }
  }
}

TEST(P4Gen, MetadataCarriesInputAndAccumulatorFields) {
  const auto model = SmallModel();
  const std::string p4 = rt::EmitP4(model);
  EXPECT_NE(p4.find("struct pegasus_meta_t"), std::string::npos);
  // 4 input fields with the 8-bit match domain.
  for (int d = 0; d < 4; ++d) {
    EXPECT_NE(p4.find("bit<8> v0_" + std::to_string(d)), std::string::npos);
  }
  // The SumReduce accumulator documents its parser-time bias.
  EXPECT_NE(p4.find("accumulator, parser init ="), std::string::npos);
}

TEST(P4Gen, SumReduceUsesSaturatingAdd) {
  const auto model = SmallModel();
  const std::string p4 = rt::EmitP4(model);
  EXPECT_NE(p4.find("|+|"), std::string::npos);  // P4 saturating add
}

TEST(P4Gen, TernaryVsRangeSelection) {
  const auto model = SmallModel();
  rt::P4GenOptions ternary_opts;
  const std::string p4_ternary = rt::EmitP4(model, ternary_opts);
  EXPECT_NE(p4_ternary.find(": ternary;"), std::string::npos);
  EXPECT_EQ(p4_ternary.find(": range;"), std::string::npos);

  rt::P4GenOptions range_opts;
  range_opts.max_ternary_entries_per_table = 1;  // force range fallback
  const std::string p4_range = rt::EmitP4(model, range_opts);
  EXPECT_NE(p4_range.find(": range;"), std::string::npos);
  EXPECT_NE(p4_range.find("DirtCAM"), std::string::npos);
}

TEST(P4Gen, ControlNameHonored) {
  const auto model = SmallModel();
  rt::P4GenOptions opts;
  opts.control_name = "MyPipe";
  EXPECT_NE(rt::EmitP4(model, opts).find("control MyPipe"),
            std::string::npos);
}

TEST(P4Gen, TableSizesMatchCompiledLeaves) {
  const auto model = SmallModel();
  const std::string p4 = rt::EmitP4(model);
  // Every table advertises a concrete size with the leaf count in the
  // trailing comment.
  std::size_t found = 0;
  std::size_t pos = 0;
  while ((pos = p4.find("size = ", pos)) != std::string::npos) {
    ++found;
    pos += 7;
  }
  EXPECT_EQ(found, model.NumTables());
}
