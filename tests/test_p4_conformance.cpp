// P4 push conformance (O(delta) updates tentpole): the exported switch
// program and the control plane's table-entry push sequence must together
// reproduce the served artifact exactly.
//
//  * EmitPushSequence(model) replayed through LowerFromPush yields an
//    artifact bit-identical to Lower() — decision for decision.
//  * p4gen's emitted program agrees with the push sequence on every
//    table's name, match kind and installed entry count (both sides use
//    the shared LowerMapEntries helper; this pins the contract).
//  * The delta path conforms too: the push sequence of the *target*
//    version replayed from scratch equals the serving version's clone
//    patched with CollectPatches — the switch agent may install v2 either
//    way and serve the same bits.
//  * Malformed pushes (missing table, match-kind mismatch) are rejected.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "control/planner.hpp"
#include "core/operators.hpp"
#include "runtime/lowering.hpp"
#include "runtime/p4gen.hpp"

namespace core = pegasus::core;
namespace ctrl = pegasus::control;
namespace comp = pegasus::compiler;
namespace rt = pegasus::runtime;
namespace dp = pegasus::dataplane;

namespace {

core::Program BuildProgram(std::uint64_t seed, std::size_t leaves = 24) {
  core::ProgramBuilder b(4);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> wdist(-0.05f, 0.05f);
  std::vector<float> w(4 * 3);
  for (float& v : w) v = wdist(rng);
  core::ValueId v =
      core::AppendFullyConnected(b, b.input(), w, 4, 3, {}, 2, leaves);
  v = b.Map(v, core::MakeReLU(3), leaves);
  return b.Finish(v);
}

std::vector<float> TrainInputs(std::uint64_t seed, std::size_t n = 1500) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(0.0f, 255.0f);
  std::vector<float> x(n * 4);
  for (float& f : x) f = std::floor(dist(rng));
  return x;
}

void ExpectBitIdentical(const rt::LoweredModel& a, const rt::LoweredModel& b,
                        std::uint64_t seed, int probes = 300) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(0.0f, 255.0f);
  for (int i = 0; i < probes; ++i) {
    const std::vector<float> in{std::floor(dist(rng)), std::floor(dist(rng)),
                                std::floor(dist(rng)), std::floor(dist(rng))};
    ASSERT_EQ(a.InferRaw(in), b.InferRaw(in)) << "probe " << i;
  }
}

}  // namespace

TEST(P4Conformance, PushSequenceReplayedThroughPipelineMatchesLower) {
  for (const std::size_t cap : {std::size_t{4096}, std::size_t{1}}) {
    rt::LoweringOptions lopts;
    lopts.max_ternary_entries_per_table = cap;  // cap=1 forces range tables
    const auto x = TrainInputs(2);
    const auto vm = comp::CompileVersioned(BuildProgram(1), x, 1500, {},
                                           lopts);
    const auto pushes = ctrl::EmitPushSequence(vm);
    ASSERT_EQ(pushes.size(), vm.compiled->NumTables());

    const rt::LoweredModel replayed =
        rt::LowerFromPush(*vm.compiled, lopts, pushes);
    ExpectBitIdentical(replayed, *vm.lowered, 31 + cap);
  }
}

TEST(P4Conformance, EmittedProgramAgreesWithPushSequence) {
  const auto x = TrainInputs(2);
  const auto vm = comp::CompileVersioned(BuildProgram(1), x, 1500);
  rt::P4GenOptions popts;
  popts.max_ternary_entries_per_table =
      vm.lowering.max_ternary_entries_per_table;
  const std::string p4 = rt::EmitP4(*vm.compiled, popts);
  const auto pushes = ctrl::EmitPushSequence(vm);
  ASSERT_FALSE(pushes.empty());
  for (const auto& push : pushes) {
    // The program declares the table the push targets...
    EXPECT_NE(p4.find("table " + push.table + " {"), std::string::npos)
        << push.table;
    // ...with the match kind the push's entries carry...
    const char* kind =
        push.kind == dp::MatchKind::kRange ? ": range;" : ": ternary;";
    EXPECT_NE(p4.find(kind), std::string::npos) << push.table;
    // ...and sizes it to exactly the installed entry count.
    EXPECT_NE(
        p4.find("size = " + std::to_string(push.entries.size()) + ";"),
        std::string::npos)
        << push.table << " expects size " << push.entries.size();
  }
}

TEST(P4Conformance, DeltaPatchedCloneMatchesTargetPushReplay) {
  // Two install strategies for v2 on a switch already serving v1:
  //   (a) wipe + replay v2's full push sequence;
  //   (b) patch v1's tables in place with the planner's entry deltas.
  // Both must serve identical bits.
  auto build = [] {
    core::ProgramBuilder b(4);
    core::MapFunction sq;
    sq.name = "square";
    sq.in_dim = 4;
    sq.out_dim = 2;
    sq.fn = [](std::span<const float> x) {
      return std::vector<float>{x[0] * x[0] / 255.0f + x[1],
                                x[2] * x[2] / 255.0f + x[3]};
    };
    return b.Finish(b.Map(b.input(), std::move(sq), 24));
  };
  core::CompileOptions with;
  core::CompileOptions without;
  without.refine_outputs = false;
  const auto x = TrainInputs(2);
  const auto v1 = comp::CompileVersioned(build(), x, 1500, with);
  const auto v2 = comp::CompileVersioned(build(), x, 1500, without);

  const auto plan = ctrl::PlanUpdate(v1, v2);
  ASSERT_GT(plan.entry_delta, 0u);
  ASSERT_EQ(plan.reseal, 0u);

  auto patched = v1.lowered->Clone();
  patched.ApplyDelta(ctrl::CollectPatches(plan));

  const rt::LoweredModel replayed = rt::LowerFromPush(
      *v2.compiled, v2.lowering, ctrl::EmitPushSequence(v2));
  ExpectBitIdentical(patched, replayed, 77);
}

TEST(P4Conformance, MalformedPushSequencesAreRejected) {
  const auto x = TrainInputs(2);
  const auto vm = comp::CompileVersioned(BuildProgram(1), x, 1500);
  auto pushes = ctrl::EmitPushSequence(vm);
  ASSERT_FALSE(pushes.empty());

  // Missing push for a lowered table.
  std::vector<rt::TableEntryPush> missing(pushes.begin() + 1, pushes.end());
  EXPECT_THROW(rt::LowerFromPush(*vm.compiled, vm.lowering, missing),
               std::invalid_argument);
  EXPECT_THROW(rt::LowerFromPush(*vm.compiled, vm.lowering, {}),
               std::invalid_argument);

  // Match-kind mismatch between the push and the lowering's decision.
  auto wrong = pushes;
  wrong[0].kind = wrong[0].kind == dp::MatchKind::kRange
                      ? dp::MatchKind::kTernary
                      : dp::MatchKind::kRange;
  EXPECT_THROW(rt::LowerFromPush(*vm.compiled, vm.lowering, wrong),
               std::invalid_argument);
}
