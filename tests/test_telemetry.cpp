// Telemetry acceptance (ISSUE 10):
//
//  * Metrics core — log2 histogram bucket boundaries, merge and quantile
//    properties; counter/gauge basics; sampler cadence.
//  * Flight recorder — ring retention/overflow semantics, multi-writer
//    safety, JSON dump shape.
//  * Serving integration — sampled stage histograms populate in ST and MT
//    runs; decisions carry end-to-end latency; MT == ST decision equality
//    is UNCHANGED by telemetry at any setting (sampling observes, never
//    steers); TelemetrySnapshot() is callable while the server runs (the
//    TSan job runs this suite); swap + shed + stall lifecycle events land
//    in the trace.
//  * Stats audit locks (satellite): every merge/reset path is pinned by a
//    per-field identity test plus a sizeof static_assert, so adding a
//    field without extending the merge fails compilation here.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <random>
#include <sstream>
#include <thread>

#include "compiler/compiler.hpp"
#include "core/operators.hpp"
#include "dataplane/match_index.hpp"
#include "eval/experiment.hpp"
#include "runtime/stream_server.hpp"
#include "telemetry/exposition.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "traffic/stream.hpp"
#include "traffic/synthetic.hpp"

namespace core = pegasus::core;
namespace rt = pegasus::runtime;
namespace tr = pegasus::traffic;
namespace tel = pegasus::telemetry;
namespace ev = pegasus::eval;

namespace {

// ---------------------------------------------------------------------------
// Metrics core.
// ---------------------------------------------------------------------------

TEST(Log2Histogram, BucketBoundaries) {
  // Bucket 0 holds exactly {0}; bucket k >= 1 holds [2^(k-1), 2^k).
  EXPECT_EQ(tel::HistogramBucketOf(0), 0u);
  EXPECT_EQ(tel::HistogramBucketOf(1), 1u);
  EXPECT_EQ(tel::HistogramBucketOf(2), 2u);
  EXPECT_EQ(tel::HistogramBucketOf(3), 2u);
  EXPECT_EQ(tel::HistogramBucketOf(4), 3u);
  EXPECT_EQ(tel::HistogramBucketOf(7), 3u);
  EXPECT_EQ(tel::HistogramBucketOf(8), 4u);
  for (std::size_t k = 1; k < 62; ++k) {
    const std::uint64_t lo = std::uint64_t{1} << (k - 1);
    EXPECT_EQ(tel::HistogramBucketOf(lo), k) << "k=" << k;
    EXPECT_EQ(tel::HistogramBucketOf(2 * lo - 1), k) << "k=" << k;
    EXPECT_EQ(tel::HistogramBucketLow(k), lo);
    EXPECT_EQ(tel::HistogramBucketHigh(k), 2 * lo - 1);
  }
  // The last bucket absorbs the top of the range.
  EXPECT_EQ(tel::HistogramBucketOf(~std::uint64_t{0}),
            tel::kHistogramBuckets - 1);

  tel::Log2Histogram h;
  h.Record(0);
  h.Record(1);
  h.Record(2);
  h.Record(3);
  h.Record(1024);
  const auto s = h.Snapshot();
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.sum, 0u + 1 + 2 + 3 + 1024);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 2u);
  EXPECT_EQ(s.buckets[11], 1u);  // 1024 = 2^10 -> bit_width 11
}

TEST(Log2Histogram, QuantileProperties) {
  tel::Log2Histogram h;
  EXPECT_EQ(tel::HistogramSnapshot{}.Quantile(0.5), 0.0);  // empty -> 0

  // All mass in one bucket: every quantile stays within that bucket.
  for (int i = 0; i < 1000; ++i) h.Record(100);  // bucket [64, 127]
  auto s = h.Snapshot();
  for (double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_GE(s.Quantile(q), 64.0) << q;
    EXPECT_LE(s.Quantile(q), 127.0) << q;
  }

  // Monotonicity in q, and bucket-level correctness against a known
  // distribution: 90 small values, 10 large ones.
  h.Reset();
  for (int i = 0; i < 90; ++i) h.Record(10);     // [8, 15]
  for (int i = 0; i < 10; ++i) h.Record(10000);  // [8192, 16383]
  s = h.Snapshot();
  EXPECT_LE(s.Quantile(0.5), s.Quantile(0.9));
  EXPECT_LE(s.Quantile(0.9), s.Quantile(0.99));
  EXPECT_LE(s.Quantile(0.99), s.Quantile(0.999));
  EXPECT_LE(s.Quantile(0.5), 15.0);
  EXPECT_GE(s.Quantile(0.95), 8192.0);
  EXPECT_NEAR(s.Mean(), (90.0 * 10 + 10 * 10000) / 100.0, 1e-9);

  // Randomized: the histogram quantile must land inside the bucket of the
  // exact quantile (log2 buckets guarantee a within-2x answer).
  std::mt19937_64 rng(7);
  std::vector<std::uint64_t> vals;
  h.Reset();
  std::lognormal_distribution<double> d(6.0, 2.0);
  for (int i = 0; i < 5000; ++i) {
    const auto v = static_cast<std::uint64_t>(d(rng)) + 1;
    vals.push_back(v);
    h.Record(v);
  }
  std::sort(vals.begin(), vals.end());
  s = h.Snapshot();
  for (double q : {0.5, 0.9, 0.99}) {
    const std::uint64_t exact =
        vals[static_cast<std::size_t>(q * (vals.size() - 1))];
    const double approx = s.Quantile(q);
    const std::size_t bucket = tel::HistogramBucketOf(exact);
    EXPECT_GE(approx, static_cast<double>(tel::HistogramBucketLow(
                          bucket > 0 ? bucket - 1 : 0)))
        << q;
    EXPECT_LE(approx,
              static_cast<double>(tel::HistogramBucketHigh(bucket + 1)))
        << q;
  }
}

TEST(Log2Histogram, MergeEqualsUnion) {
  tel::Log2Histogram a;
  tel::Log2Histogram b;
  tel::Log2Histogram u;
  std::mt19937_64 rng(11);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng() % 100000;
    if (i % 2 == 0) {
      a.Record(v);
    } else {
      b.Record(v);
    }
    u.Record(v);
  }
  auto sa = a.Snapshot();
  sa.Merge(b.Snapshot());
  const auto su = u.Snapshot();
  EXPECT_EQ(sa.count, su.count);
  EXPECT_EQ(sa.sum, su.sum);
  for (std::size_t i = 0; i < tel::kHistogramBuckets; ++i) {
    EXPECT_EQ(sa.buckets[i], su.buckets[i]) << i;
  }
  EXPECT_EQ(sa.Quantile(0.99), su.Quantile(0.99));
}

TEST(Metrics, CounterAndGauge) {
  tel::Counter c;
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);

  tel::Gauge g;
  g.Set(7);
  EXPECT_EQ(g.value(), 7u);
  g.UpdateMax(3);
  EXPECT_EQ(g.value(), 7u);  // max never lowers
  g.UpdateMax(9);
  EXPECT_EQ(g.value(), 9u);

  // Cache-line padding keeps adjacent counters from false sharing.
  static_assert(sizeof(tel::Counter) == 64);
  static_assert(sizeof(tel::Gauge) == 64);
  static_assert(alignof(tel::Counter) == 64);
}

TEST(Metrics, SamplerCadence) {
  tel::Sampler off(0);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(off.Sample());

  // every = 4: fires on the 1st eligible event, then every 4th.
  tel::Sampler s(4);
  int fired = 0;
  std::vector<int> at;
  for (int i = 0; i < 40; ++i) {
    if (s.Sample()) {
      ++fired;
      at.push_back(i);
    }
  }
  EXPECT_EQ(fired, 10);
  ASSERT_GE(at.size(), 2u);
  EXPECT_EQ(at[0], 0);
  EXPECT_EQ(at[1] - at[0], 4);

  tel::Sampler every(1);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(every.Sample());
}

// ---------------------------------------------------------------------------
// Flight recorder.
// ---------------------------------------------------------------------------

TEST(EventRing, RetainsLastCapacityEvents) {
  tel::EventRing ring(8);
  EXPECT_TRUE(ring.enabled());
  for (std::uint64_t i = 0; i < 5; ++i) {
    ring.Record(tel::TraceEventKind::kShed, 1, 100 + i, 0, i, 0);
  }
  auto dump = ring.Dump();
  ASSERT_EQ(dump.size(), 5u);

  // Overflow: 20 more events into capacity 8 — exactly the newest 8
  // survive, identified by seq.
  for (std::uint64_t i = 5; i < 25; ++i) {
    ring.Record(tel::TraceEventKind::kShed, 1, 100 + i, 0, i, 0);
  }
  EXPECT_EQ(ring.recorded(), 25u);
  dump = ring.Dump();
  ASSERT_EQ(dump.size(), 8u);
  std::uint64_t min_seq = ~std::uint64_t{0};
  for (const auto& e : dump) min_seq = std::min(min_seq, e.seq);
  EXPECT_EQ(min_seq, 18u);  // seqs 18..25 of 25

  ring.Reset();
  EXPECT_TRUE(ring.Dump().empty());
}

TEST(EventRing, DisabledRingIsNoOp) {
  tel::EventRing ring(0);
  EXPECT_FALSE(ring.enabled());
  ring.Record(tel::TraceEventKind::kStall, 0, 1);
  EXPECT_TRUE(ring.Dump().empty());
  EXPECT_EQ(ring.recorded(), 0u);
}

TEST(EventRing, MultiWriterSurvivesContention) {
  // 4 threads hammer one ring; the dump must only ever contain values the
  // writers actually wrote (payload a == ts), in any interleaving. TSan
  // covers the ordering; this covers the torn-read rejection.
  tel::EventRing ring(64);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 5000;
  std::vector<std::thread> ts;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const auto& e : ring.Dump()) {
        ASSERT_EQ(e.arg_a, e.ts_ns);
      }
    }
  });
  for (int w = 0; w < kWriters; ++w) {
    ts.emplace_back([&ring, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        const std::uint64_t v =
            static_cast<std::uint64_t>(w) * kPerWriter + i;
        ring.Record(tel::TraceEventKind::kPacketSpan,
                    static_cast<std::uint32_t>(w), v, 0, v, 0);
      }
    });
  }
  for (auto& t : ts) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(ring.recorded(),
            static_cast<std::uint64_t>(kWriters) * kPerWriter);
  const auto dump = ring.Dump();
  EXPECT_EQ(dump.size(), 64u);
  for (const auto& e : dump) EXPECT_EQ(e.arg_a, e.ts_ns);
}

TEST(EventRing, TraceJsonShape) {
  tel::EventRing ring(8);
  ring.Record(tel::TraceEventKind::kSwapPublish,
              tel::TraceEvent::kControlTrack, 123, 0, 2, 0);
  ring.Record(tel::TraceEventKind::kPacketSpan, 1, 50, 10, 99, 2);
  std::ostringstream os;
  tel::WriteTraceJson(tel::MergeTraceDumps({ring.Dump()}), os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"swap_publish\""), std::string::npos);
  EXPECT_NE(json.find("\"packet_span\""), std::string::npos);
  EXPECT_NE(json.find("\"shard\": -1"), std::string::npos);  // control track
  // Merge sorts by timestamp: packet_span (ts 50) precedes swap (ts 123).
  EXPECT_LT(json.find("packet_span"), json.find("swap_publish"));
}

// ---------------------------------------------------------------------------
// Stats audit locks (satellite): merge/reset completeness, pinned by
// sizeof. If a PR adds a field to any of these structs, the static_assert
// fails until the merge test (and the operator) are extended.
// ---------------------------------------------------------------------------

TEST(StatsAudit, ShedStatsMergesEveryField) {
  static_assert(sizeof(rt::ShedStats) == 24,
                "ShedStats changed: extend operator+= and this test");
  rt::ShedStats a{1, 2, 3};
  const rt::ShedStats b{10, 20, 30};
  a += b;
  EXPECT_EQ(a.ring_full, 11u);
  EXPECT_EQ(a.misrouted, 22u);
  EXPECT_EQ(a.inference, 33u);
  EXPECT_EQ(a.total(), 66u);
}

TEST(StatsAudit, FlowTableStatsMergesEveryField) {
  static_assert(sizeof(rt::FlowTableStats) == 184,
                "FlowTableStats changed: extend operator+= and this test");
  rt::FlowTableStats a;
  a.hits = 1;
  a.misses = 2;
  a.inserts = 3;
  a.evictions = 4;
  a.probes = 5;
  for (std::size_t i = 0; i < rt::FlowTableStats::kProbeHistBuckets; ++i) {
    a.probe_hist[i] = i + 1;
  }
  a.resident = 6;
  a.slots = 7;
  rt::FlowTableStats b = a;
  a += b;
  EXPECT_EQ(a.hits, 2u);
  EXPECT_EQ(a.misses, 4u);
  EXPECT_EQ(a.inserts, 6u);
  EXPECT_EQ(a.evictions, 8u);
  EXPECT_EQ(a.probes, 10u);
  for (std::size_t i = 0; i < rt::FlowTableStats::kProbeHistBuckets; ++i) {
    EXPECT_EQ(a.probe_hist[i], 2 * (i + 1)) << i;
  }
  EXPECT_EQ(a.resident, 12u);  // resident/slots were the PR 7 merge trap
  EXPECT_EQ(a.slots, 14u);
}

TEST(StatsAudit, InferenceEngineStatsMergesEveryField) {
  static_assert(sizeof(rt::InferenceEngine::Stats) == 24,
                "InferenceEngine::Stats changed: extend operator+=");
  rt::InferenceEngine::Stats a{1, 2, 3};
  a += rt::InferenceEngine::Stats{10, 20, 30};
  EXPECT_EQ(a.packets, 11u);
  EXPECT_EQ(a.chunks, 22u);
  EXPECT_EQ(a.table_hits, 33u);
}

TEST(StatsAudit, MatchIndexStatsShapeIsPinned) {
  // Aggregated field-by-field in Pipeline::MatchIndexReport (the PR 9
  // delta counters were the trap there) — pin the struct so a new field
  // forces that aggregation to be revisited.
  static_assert(sizeof(pegasus::dataplane::MatchIndexStats) == 80,
                "MatchIndexStats changed: extend Pipeline::MatchIndexReport");
  SUCCEED();
}

TEST(StatsAudit, StreamServerStatsResetIsComplete) {
  // Reset() is `*this = {}` — complete by construction. Lock the
  // aggregate's shape instead: the count of scalar tallies Stats() fills
  // is pinned by sizeof, so a new counter added to the struct without a
  // Stats()/ResetStats() pass fails here, not silently in a bench.
  static_assert(sizeof(rt::StreamServerStats) == 448,
                "StreamServerStats changed: update Stats(), ResetStats() "
                "and the accounting tests");
  rt::StreamServerStats s;
  s.packets = 1;
  s.delta_swaps = 2;
  s.shard_shed.push_back({1, 2, 3});
  s.Reset();
  EXPECT_EQ(s.packets, 0u);
  EXPECT_EQ(s.delta_swaps, 0u);
  EXPECT_TRUE(s.shard_shed.empty());
}

TEST(StatsAudit, StreamDecisionAndTracePacketStayPacked) {
  // latency_ns landed in StreamDecision's tail padding and tele_stamp in
  // TracePacket's interior hole: neither struct may grow (the MT ring
  // item is exactly two cache lines).
  static_assert(sizeof(rt::StreamDecision) == 40);
  static_assert(sizeof(tr::TracePacket) == 40);
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Serving integration.
// ---------------------------------------------------------------------------

rt::LoweredModel BuildModel(std::span<const float> train_x, std::size_t n,
                            std::uint64_t seed) {
  core::ProgramBuilder b(16);
  auto segs = b.Partition(b.input(), 2, 2);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> w(-0.05f, 0.05f);
  std::vector<core::ValueId> maps;
  for (auto seg : segs) {
    std::vector<float> weights(2 * 3);
    for (float& v : weights) v = w(rng);
    maps.push_back(
        b.Map(seg, core::MakeLinear(std::move(weights), 2, 3, {}), 32));
  }
  auto sum = b.SumReduce(std::span<const core::ValueId>(maps));
  auto out = b.Map(sum, core::MakeReLU(3), 64);
  return pegasus::compiler::CompileToSwitch(b.Finish(out), train_x, n)
      .lowered;
}

struct World {
  tr::Dataset ds;
  std::vector<tr::TracePacket> trace;
  std::shared_ptr<const rt::LoweredModel> model;
};

World MakeWorld(std::uint64_t seed = 2024) {
  World w;
  w.ds = tr::Generate(tr::PeerRushSpec(10, seed));
  tr::ExtractOptions every;
  every.max_samples_per_flow = std::numeric_limits<std::size_t>::max();
  const auto feats = tr::ExtractSeqFeatures(w.ds.flows, every);
  w.model = std::make_shared<const rt::LoweredModel>(
      BuildModel(feats.x, feats.size(), 3));
  w.trace = tr::MergeTrace(w.ds.flows);
  return w;
}

rt::StreamServerOptions BaseOpts() {
  rt::StreamServerOptions opts;
  opts.num_shards = 2;
  opts.flows_per_shard = 1 << 10;
  opts.max_probe = 16;
  opts.batch_size = 32;
  opts.feature = rt::FeatureKind::kSeq;
  return opts;
}

std::vector<rt::StreamDecision> Sorted(std::vector<rt::StreamDecision> d) {
  std::sort(d.begin(), d.end(), [](const auto& a, const auto& b) {
    return std::tie(a.flow, a.index) < std::tie(b.flow, b.index);
  });
  return d;
}

TEST(ServerTelemetry, SampledStagesPopulateSingleThreaded) {
  const World w = MakeWorld();
  auto opts = BaseOpts();
  opts.telemetry.sample_every = 1;  // sample every packet
  opts.telemetry.trace_events = 256;
  rt::StreamServer server(w.model, opts);
  const auto decisions = server.Serve(w.trace);
  ASSERT_GT(decisions.size(), 0u);

  const auto snap = server.TelemetrySnapshot();
  EXPECT_TRUE(snap.attached);
  EXPECT_EQ(snap.sample_every, 1u);
  EXPECT_TRUE(snap.tracing);
  EXPECT_EQ(snap.packets, w.trace.size());
  EXPECT_EQ(snap.decisions, decisions.size());

  // Every packet was sampled: lookup/extract counts equal the packet
  // count, end-to-end equals the decision count.
  EXPECT_EQ(snap.stage(tel::Stage::kFlowLookup).count, w.trace.size());
  EXPECT_EQ(snap.stage(tel::Stage::kFeatureExtract).count, w.trace.size());
  EXPECT_EQ(snap.stage(tel::Stage::kEndToEnd).count, decisions.size());
  EXPECT_GT(snap.stage(tel::Stage::kInferFlush).count, 0u);
  // ST mode has no ring: dwell stays empty.
  EXPECT_EQ(snap.stage(tel::Stage::kRingDwell).count, 0u);

  // Quantiles are ordered and nonzero for a real latency distribution.
  const auto& e2e = snap.stage(tel::Stage::kEndToEnd);
  EXPECT_GT(e2e.p50_ns, 0.0);
  EXPECT_LE(e2e.p50_ns, e2e.p99_ns);
  EXPECT_LE(e2e.p99_ns, e2e.p999_ns);

  // Every decision carries its end-to-end latency at sample_every == 1.
  for (const auto& d : decisions) EXPECT_NE(d.latency_ns, 0u);

  // Packet spans landed in the trace.
  const auto trace_dump = server.DumpTrace();
  bool saw_span = false;
  for (const auto& e : trace_dump) {
    if (e.kind == tel::TraceEventKind::kPacketSpan) saw_span = true;
  }
  EXPECT_TRUE(saw_span);
}

TEST(ServerTelemetry, DetachedServerReportsHealthOnly) {
  const World w = MakeWorld();
  rt::StreamServer server(w.model, BaseOpts());  // telemetry detached
  const auto decisions = server.Serve(w.trace);
  const auto snap = server.TelemetrySnapshot();
  EXPECT_FALSE(snap.attached);
  EXPECT_EQ(snap.packets, w.trace.size());  // health-backed counter works
  EXPECT_EQ(snap.decisions, 0u);            // telemetry counters detached
  EXPECT_EQ(snap.stage(tel::Stage::kEndToEnd).count, 0u);
  EXPECT_TRUE(server.DumpTrace().empty());
  for (const auto& d : decisions) EXPECT_EQ(d.latency_ns, 0u);
}

TEST(ServerTelemetry, SamplingNeverChangesDecisions) {
  // The zero-overhead/equality contract: decisions (flow, index,
  // predicted, score, version) are bit-identical across telemetry off /
  // attached-disabled / sampled, in both execution modes.
  const World w = MakeWorld();
  auto run = [&](bool mt, std::uint32_t sample_every, bool attach) {
    auto opts = BaseOpts();
    opts.multithreaded = mt;
    opts.telemetry.sample_every = sample_every;
    opts.telemetry.attach = attach;
    opts.telemetry.trace_events = sample_every != 0 ? 128 : 0;
    rt::StreamServer server(w.model, opts);
    return Sorted(server.Serve(w.trace));
  };
  const auto off = run(false, 0, false);
  ASSERT_GT(off.size(), 0u);
  for (const bool mt : {false, true}) {
    for (const auto& [every, attach] :
         std::vector<std::pair<std::uint32_t, bool>>{
             {0, false}, {0, true}, {7, false}, {1, false}}) {
      const auto got = run(mt, every, attach);
      ASSERT_EQ(got.size(), off.size())
          << "mt=" << mt << " every=" << every;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].flow, off[i].flow);
        EXPECT_EQ(got[i].index, off[i].index);
        EXPECT_EQ(got[i].predicted, off[i].predicted);
        EXPECT_EQ(got[i].score, off[i].score);
        EXPECT_EQ(got[i].version, off[i].version);
      }
    }
  }
}

TEST(ServerTelemetry, MultiThreadedDwellAndHwm) {
  const World w = MakeWorld();
  auto opts = BaseOpts();
  opts.multithreaded = true;
  opts.telemetry.sample_every = 2;
  opts.telemetry.trace_events = 512;
  rt::StreamServer server(w.model, opts);
  const auto decisions = server.Serve(w.trace);
  ASSERT_GT(decisions.size(), 0u);

  const auto snap = server.TelemetrySnapshot();
  // Ring dwell is measured in MT mode; roughly 1-in-2 packets sampled.
  EXPECT_GT(snap.stage(tel::Stage::kRingDwell).count, 0u);
  EXPECT_LE(snap.stage(tel::Stage::kRingDwell).count, w.trace.size());
  EXPECT_GT(snap.stage(tel::Stage::kEndToEnd).count, 0u);

  // The worker observed a nonzero ring depth at some drain.
  const auto health = server.Health();
  ASSERT_EQ(health.shards.size(), 2u);
  std::size_t hwm = 0;
  for (const auto& sh : health.shards) {
    hwm = std::max(hwm, sh.ring_depth_hwm);
    EXPECT_LE(sh.ring_depth_hwm, opts.queue_capacity);
  }
  EXPECT_GT(hwm, 0u);

  // ResetStats clears the HWM and the histograms.
  server.ResetStats();
  const auto after = server.TelemetrySnapshot();
  EXPECT_EQ(after.stage(tel::Stage::kEndToEnd).count, 0u);
  for (const auto& sh : server.Health().shards) {
    EXPECT_EQ(sh.ring_depth_hwm, 0u);
  }
}

TEST(ServerTelemetry, SnapshotWhileServingIsSafe) {
  // The live-observer contract under the TSan job: TelemetrySnapshot(),
  // Health() and DumpTrace() race the workers and ingest continuously.
  const World w = MakeWorld(4242);
  auto opts = BaseOpts();
  opts.multithreaded = true;
  opts.queue_capacity = 1 << 8;
  opts.telemetry.sample_every = 4;
  opts.telemetry.trace_events = 256;
  rt::StreamServer server(w.model, opts);

  std::atomic<bool> stop{false};
  std::thread observer([&] {
    std::uint64_t last_packets = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const auto snap = server.TelemetrySnapshot();
      EXPECT_GE(snap.packets, last_packets);  // monotone under the race
      last_packets = snap.packets;
      (void)server.Health();
      (void)server.DumpTrace();
      std::this_thread::yield();
    }
  });
  std::vector<rt::StreamDecision> decisions;
  for (int round = 0; round < 3; ++round) {
    auto got = server.Serve(w.trace);
    decisions.insert(decisions.end(), got.begin(), got.end());
  }
  stop.store(true, std::memory_order_release);
  observer.join();
  ASSERT_GT(decisions.size(), 0u);
  const auto snap = server.TelemetrySnapshot();
  EXPECT_EQ(snap.packets, 3 * w.trace.size());
  EXPECT_EQ(snap.decisions, decisions.size());
}

TEST(ServerTelemetry, SwapAndShedEventsInTrace) {
  // A mid-trace hot swap plus forced shedding must both be visible in the
  // flight recorder — the Perfetto story of the acceptance criteria.
  const World w = MakeWorld(77);
  tr::ExtractOptions every;
  every.max_samples_per_flow = std::numeric_limits<std::size_t>::max();
  const auto feats = tr::ExtractSeqFeatures(w.ds.flows, every);
  auto v2 = std::make_shared<const rt::LoweredModel>(
      BuildModel(feats.x, feats.size(), 99));

  auto opts = BaseOpts();
  opts.multithreaded = true;
  opts.queue_capacity = 1 << 4;  // tiny ring: force overload
  opts.burst = 4;
  opts.shed = true;
  opts.escalation = rt::EscalationPolicy::Immediate();
  opts.telemetry.sample_every = 8;
  opts.telemetry.trace_events = 1024;
  rt::StreamServer server(w.model, opts);

  const auto run = ev::ServeTraceWithSwap(
      server, w.trace, w.trace.size() / 2, v2, /*version=*/2);

  bool saw_swap_begin = false;
  bool saw_swap_publish = false;
  bool saw_swap_apply = false;
  for (const auto& e : server.DumpTrace()) {
    saw_swap_begin |= e.kind == tel::TraceEventKind::kSwapBegin;
    saw_swap_publish |= e.kind == tel::TraceEventKind::kSwapPublish;
    saw_swap_apply |= e.kind == tel::TraceEventKind::kSwapApply;
  }
  EXPECT_TRUE(saw_swap_begin);
  EXPECT_TRUE(saw_swap_publish);
  EXPECT_TRUE(saw_swap_apply);
  // Both the serving-gap histogram and the stats agree swaps happened.
  const auto snap = server.TelemetrySnapshot();
  EXPECT_EQ(snap.stage(tel::Stage::kSwapPublish).count,
            server.num_shards());
  EXPECT_EQ(snap.active_version, 2u);
  EXPECT_EQ(run.stats.swaps, server.num_shards());

  // If the tiny ring shed anything (expected under Immediate), the trace
  // carries shed events; either way accounting must agree.
  if (run.stats.shed.total() != 0) {
    bool saw_shed = false;
    for (const auto& e : server.DumpTrace()) {
      saw_shed |= e.kind == tel::TraceEventKind::kShed;
    }
    EXPECT_TRUE(saw_shed);
  }
  EXPECT_EQ(run.stats.packets + run.stats.shed.total(), w.trace.size());
}

TEST(ServerTelemetry, AccountingIdentityWithTelemetry) {
  // offered == packets + shed; packets == decisions + warmup +
  // shed.inference — per shard and in aggregate, with telemetry attached
  // and sampling on (telemetry must not perturb accounting).
  const World w = MakeWorld(5);
  auto opts = BaseOpts();
  opts.multithreaded = true;
  opts.telemetry.sample_every = 3;
  rt::StreamServer server(w.model, opts);
  const auto decisions = server.Serve(w.trace);
  const auto stats = server.Stats();
  EXPECT_EQ(stats.packets + stats.shed.ring_full + stats.shed.misrouted,
            w.trace.size());
  EXPECT_EQ(stats.packets,
            stats.decisions + stats.warmup + stats.shed.inference);
  EXPECT_EQ(stats.decisions, decisions.size());
  std::uint64_t shard_sum = 0;
  for (const auto& p : stats.shard_packets) shard_sum += p;
  EXPECT_EQ(shard_sum, stats.packets);
  // The live decision counter agrees with the quiesced one.
  EXPECT_EQ(server.TelemetrySnapshot().decisions, stats.decisions);
}

// ---------------------------------------------------------------------------
// Exposition.
// ---------------------------------------------------------------------------

TEST(Exposition, JsonAndPrometheusWriters) {
  const World w = MakeWorld();
  auto opts = BaseOpts();
  opts.telemetry.sample_every = 1;
  opts.telemetry.trace_events = 64;
  rt::StreamServer server(w.model, opts);
  (void)server.Serve(w.trace);
  const auto snap = server.TelemetrySnapshot();

  std::ostringstream js;
  tel::WriteJson(snap, js);
  const std::string json = js.str();
  EXPECT_NE(json.find("\"attached\": true"), std::string::npos);
  EXPECT_NE(json.find("\"end_to_end\""), std::string::npos);
  EXPECT_NE(json.find("\"p999_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"ring_depth_hwm\""), std::string::npos);
  // Balanced braces/brackets — the writer is hand-rolled.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));

  std::ostringstream prom;
  tel::WritePrometheus(snap, prom);
  const std::string text = prom.str();
  EXPECT_NE(text.find("# TYPE pegasus_packets_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("pegasus_stage_latency_seconds_bucket{stage=\"end_"
                      "to_end\",le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("pegasus_ring_depth_hwm{shard=\"0\"}"),
            std::string::npos);
}

TEST(Exposition, StatsReporterEmitsLines) {
  std::atomic<int> calls{0};
  std::ostringstream os;
  tel::StatsReporter reporter(
      [&calls] {
        tel::TelemetrySnapshot snap;
        snap.attached = true;
        snap.now_ns = static_cast<std::uint64_t>(
                          calls.fetch_add(1, std::memory_order_relaxed) + 1) *
                      1000000ull;
        snap.packets = static_cast<std::uint64_t>(calls.load()) * 500;
        return snap;
      },
      os, /*interval_ms=*/20);
  reporter.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  reporter.Stop();
  EXPECT_GE(reporter.ticks(), 2u);  // interval ticks + the final flush
  const std::string out = os.str();
  EXPECT_NE(out.find("[telemetry] pps="), std::string::npos);
  EXPECT_NE(out.find("e2e_p50="), std::string::npos);
}

// ---------------------------------------------------------------------------
// eval: per-version accuracy/latency correlation (satellite).
// ---------------------------------------------------------------------------

TEST(Eval, EvaluateDecisionsDetailedSlicesByVersion) {
  std::vector<rt::StreamDecision> decisions;
  // v1: 3 decisions, 2 correct, latencies 100/200 sampled on two of them.
  for (int i = 0; i < 3; ++i) {
    rt::StreamDecision d;
    d.version = 1;
    d.label = 1;
    d.predicted = i < 2 ? 1 : 0;
    d.latency_ns = i == 0 ? 100 : (i == 1 ? 200 : 0);
    decisions.push_back(d);
  }
  // v2: 2 decisions, both correct, unsampled.
  for (int i = 0; i < 2; ++i) {
    rt::StreamDecision d;
    d.version = 2;
    d.label = 0;
    d.predicted = 0;
    decisions.push_back(d);
  }
  const auto report = ev::EvaluateDecisionsDetailed(decisions, 2);
  ASSERT_EQ(report.versions.size(), 2u);
  const auto& v1 = report.versions[0];
  EXPECT_EQ(v1.version, 1u);
  EXPECT_EQ(v1.decisions, 3u);
  EXPECT_EQ(v1.correct, 2u);
  EXPECT_NEAR(v1.accuracy, 2.0 / 3.0, 1e-9);
  EXPECT_EQ(v1.sampled, 2u);
  EXPECT_NEAR(v1.latency_mean_ns, 150.0, 1e-9);
  EXPECT_GE(v1.latency_p99_ns, v1.latency_p50_ns);
  const auto& v2 = report.versions[1];
  EXPECT_EQ(v2.version, 2u);
  EXPECT_NEAR(v2.accuracy, 1.0, 1e-9);
  EXPECT_EQ(v2.sampled, 0u);
  EXPECT_EQ(v2.latency_p50_ns, 0.0);
  EXPECT_NEAR(report.overall.accuracy, 4.0 / 5.0, 1e-9);
}

TEST(Eval, SwapRunCorrelatesVersionsWithLatency) {
  const World w = MakeWorld(123);
  tr::ExtractOptions every;
  every.max_samples_per_flow = std::numeric_limits<std::size_t>::max();
  const auto feats = tr::ExtractSeqFeatures(w.ds.flows, every);
  auto v2 = std::make_shared<const rt::LoweredModel>(
      BuildModel(feats.x, feats.size(), 321));
  auto opts = BaseOpts();
  opts.telemetry.sample_every = 1;
  rt::StreamServer server(w.model, opts);
  const auto run = ev::ServeTraceWithSwap(server, w.trace,
                                          w.trace.size() / 2, v2, 2);
  const auto report =
      ev::EvaluateDecisionsDetailed(run.decisions, w.ds.NumClasses());
  ASSERT_EQ(report.versions.size(), 2u);
  EXPECT_EQ(report.versions[0].version, 1u);
  EXPECT_EQ(report.versions[1].version, 2u);
  EXPECT_GT(report.versions[0].decisions, 0u);
  EXPECT_GT(report.versions[1].decisions, 0u);
  // Every decision sampled at every=1 -> latency present on both sides.
  EXPECT_EQ(report.versions[0].sampled, report.versions[0].decisions);
  EXPECT_EQ(report.versions[1].sampled, report.versions[1].decisions);
  EXPECT_GT(report.versions[0].latency_p50_ns, 0.0);
  EXPECT_GT(report.versions[1].latency_p50_ns, 0.0);
  // And the run's snapshot rode along in StreamRun.
  EXPECT_TRUE(run.telemetry.attached);
  EXPECT_EQ(run.telemetry.stage(tel::Stage::kEndToEnd).count,
            run.decisions.size());
}

}  // namespace
