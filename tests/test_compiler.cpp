// The unified compiler driver must be observationally identical to the
// legacy ad-hoc call sequence (FuseBasic; CompileProgram; Lower) — same
// compiled tables, same lowered ResourceReport, bit-identical inference —
// while additionally recording per-pass diagnostics.
#include "compiler/compiler.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/operators.hpp"

namespace core = pegasus::core;
namespace rt = pegasus::runtime;
namespace pc = pegasus::compiler;
namespace dp = pegasus::dataplane;

namespace {

std::vector<float> RandomFeatures(std::size_t n, std::size_t dim,
                                  std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(0.0f, 255.0f);
  std::vector<float> x(n * dim);
  for (float& v : x) v = std::floor(dist(rng));
  return x;
}

/// A fusable program: norm Map + per-segment linear Maps + SumReduce + ReLU
/// head, the shape every model builder emits.
core::Program FusableProgram() {
  const std::size_t dim = 4;
  core::ProgramBuilder b(dim);
  core::ValueId v = b.Map(
      b.input(),
      core::MakeAffine(std::vector<float>(dim, 1.0f / 64.0f),
                       std::vector<float>(dim, -2.0f), "norm"),
      32);
  v = core::AppendFullyConnected(
      b, v, std::vector<float>{0.5f, -0.2f, 0.1f, 0.4f, -0.3f, 0.2f, 0.2f,
                               0.1f},
      dim, 2, std::vector<float>{0.5f, -0.25f}, /*segment_dim=*/2,
      /*fuzzy_leaves=*/32);
  v = b.Map(v, core::MakeReLU(2), 32);
  return b.Finish(v);
}

void ExpectSameReport(const dp::ResourceReport& a, const dp::ResourceReport& b) {
  EXPECT_EQ(a.sram_bits, b.sram_bits);
  EXPECT_EQ(a.tcam_bits, b.tcam_bits);
  EXPECT_EQ(a.max_stage_action_bus_bits, b.max_stage_action_bus_bits);
  EXPECT_EQ(a.total_action_bus_bits, b.total_action_bus_bits);
  EXPECT_EQ(a.stages_used, b.stages_used);
  EXPECT_EQ(a.stateful_bits_per_flow, b.stateful_bits_per_flow);
}

}  // namespace

TEST(Compiler, PassManagerMatchesAdHocSequence) {
  const std::size_t n = 2000;
  const auto x = RandomFeatures(n, 4, 1);

  // Legacy ad-hoc sequence.
  core::Program legacy_program = FusableProgram();
  core::FuseBasic(legacy_program);
  const core::CompiledModel legacy_model =
      core::CompileProgram(std::move(legacy_program), x, n, {});
  rt::LoweringOptions lopts;
  lopts.stateful_bits_per_flow = 32;
  const rt::LoweredModel legacy_lowered = rt::Lower(legacy_model, lopts);

  // PassManager path.
  pc::CompileSwitchResult result =
      pc::CompileToSwitch(FusableProgram(), x, n, {}, lopts);

  EXPECT_EQ(result.model.NumTables(), legacy_model.NumTables());
  EXPECT_EQ(result.model.TotalLeaves(), legacy_model.TotalLeaves());
  ExpectSameReport(result.lowered.Report(), legacy_lowered.Report());

  const auto probes = RandomFeatures(200, 4, 2);
  for (std::size_t i = 0; i < 200; ++i) {
    std::span<const float> row(probes.data() + i * 4, 4);
    EXPECT_EQ(result.model.EvaluateRaw(row), legacy_model.EvaluateRaw(row));
    EXPECT_EQ(result.lowered.InferRaw(row), legacy_lowered.InferRaw(row));
  }
}

TEST(Compiler, AugmentedCompileMatchesAdHocSequence) {
  const std::size_t n = 1000;
  const auto x = RandomFeatures(n, 4, 3);
  core::CompileOptions copts;
  copts.uniform_augment = 0.5;

  core::Program legacy_program = FusableProgram();
  core::FuseBasic(legacy_program);
  const core::CompiledModel legacy_model =
      core::CompileProgram(std::move(legacy_program), x, n, copts);

  const pc::CompileModelResult result =
      pc::CompileToModel(FusableProgram(), x, n, copts);

  const auto probes = RandomFeatures(100, 4, 4);
  for (std::size_t i = 0; i < 100; ++i) {
    std::span<const float> row(probes.data() + i * 4, 4);
    EXPECT_EQ(result.model.EvaluateRaw(row), legacy_model.EvaluateRaw(row));
  }
}

TEST(Compiler, HistoryRecordsNamedPassesInOrder) {
  const std::size_t n = 1500;
  const auto x = RandomFeatures(n, 4, 5);
  const pc::CompileSwitchResult result =
      pc::CompileToSwitch(FusableProgram(), x, n);

  ASSERT_EQ(result.history.size(), 5u);
  EXPECT_EQ(result.history[0].name, "fuse-basic");
  EXPECT_EQ(result.history[1].name, "augment");
  EXPECT_EQ(result.history[2].name, "quantize-plan");
  EXPECT_EQ(result.history[3].name, "tablegen");
  EXPECT_EQ(result.history[4].name, "lower");

  // fuse-basic eliminated the norm/BN/ReLU maps.
  EXPECT_GT(result.history[0].rewrites_applied, 0u);
  EXPECT_LT(result.history[0].maps_after, result.history[0].maps_before);
  EXPECT_EQ(result.fusion.maps_after, result.history[0].maps_after);

  // tablegen emitted the fuzzy tables.
  EXPECT_EQ(result.history[3].tables_emitted, result.model.NumTables());
  EXPECT_EQ(result.history[3].leaves_emitted, result.model.TotalLeaves());

  // lower recorded the resource bill.
  const dp::ResourceReport report = result.lowered.Report();
  EXPECT_EQ(result.history[4].sram_bits, report.sram_bits);
  EXPECT_EQ(result.history[4].tcam_bits, report.tcam_bits);
  EXPECT_EQ(result.history[4].stages_used, report.stages_used);
}

TEST(Compiler, PlaceOnSwitchMatchesDirectLower) {
  const std::size_t n = 1200;
  const auto x = RandomFeatures(n, 4, 6);
  const pc::CompileModelResult compiled =
      pc::CompileToModel(FusableProgram(), x, n);

  std::vector<pc::PassStats> history;
  const rt::LoweredModel via_driver =
      pc::PlaceOnSwitch(compiled.model, {}, &history);
  const rt::LoweredModel direct = rt::Lower(compiled.model, {});
  ExpectSameReport(via_driver.Report(), direct.Report());
  ASSERT_EQ(history.size(), 1u);
  EXPECT_EQ(history[0].name, "lower");
}

TEST(Compiler, FusionPassIsIdempotentAcrossRuns) {
  const auto x = RandomFeatures(500, 4, 7);
  pc::CompilationContext ctx(FusableProgram(), x, 500);
  pc::PassManager::FusionPipeline().Run(ctx);
  EXPECT_GT(ctx.fusion_stats.rewrites, 0u);

  // Re-running the fusion pipeline on the already-fused program must apply
  // zero rewrites.
  pc::CompilationContext ctx2(ctx.TakeProgram(), x, 500);
  pc::PassManager::FusionPipeline().Run(ctx2);
  EXPECT_EQ(ctx2.fusion_stats.rewrites, 0u);
  EXPECT_EQ(ctx2.history()[0].maps_before, ctx2.history()[0].maps_after);
}

TEST(Compiler, IndividualRewritePassesComposeToFuseBasic) {
  const auto x = RandomFeatures(400, 4, 8);
  core::Program reference = FusableProgram();
  const core::FusionStats fs = core::FuseBasic(reference);

  pc::CompilationContext ctx(FusableProgram(), x, 400);
  pc::PassManager pm;
  // One fixpoint round of the named rewrites, repeated enough times for
  // this program shape (FuseBasic loops internally; here we unroll).
  for (int round = 0; round < 4; ++round) {
    pm.Add(pc::MakePushPartitionPass())
        .Add(pc::MakeLinearReorderPass())
        .Add(pc::MakeMergeMapsPass())
        .Add(pc::MakeFlattenSumsPass());
  }
  pm.Run(ctx);
  EXPECT_EQ(ctx.program().NumMaps(), fs.maps_after);
  EXPECT_EQ(ctx.history().size(), 16u);
  EXPECT_EQ(ctx.history()[0].name, "fuse-push-partition");
}

TEST(Compiler, LoweringPipelineWithoutCompiledModelThrows) {
  const auto x = RandomFeatures(100, 4, 9);
  pc::CompilationContext ctx(FusableProgram(), x, 100);
  EXPECT_THROW(pc::PassManager::LoweringPipeline().Run(ctx),
               std::logic_error);
}

TEST(Compiler, TableGenWithoutPlanThrows) {
  const auto x = RandomFeatures(100, 4, 10);
  pc::CompilationContext ctx(FusableProgram(), x, 100);
  pc::PassManager pm;
  pm.Add(pc::MakeTableGenPass());
  EXPECT_THROW(pm.Run(ctx), std::logic_error);
}
