// Control-plane model lifecycle (ISSUE 4):
//
//  * CompileVersioned freezes the same artifact CompileToSwitch produces
//    (bit-identical inference, same resource bill).
//  * ModelRegistry stamps monotonic per-name versions, hands out immutable
//    snapshots, and its on-disk envelope round-trips to a bit-identical
//    artifact (serialize the CompiledModel + lowering knobs, re-lower).
//  * UpdatePlanner classifies table diffs (unchanged / entry-delta /
//    reseal) and costs them in bytes.
//  * Co-placement admits model sets that fit one SwitchModel budget and
//    rejects over-subscription with a structured AdmissionError.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "control/planner.hpp"
#include "control/registry.hpp"
#include "core/operators.hpp"
#include "core/stream_io.hpp"
#include "runtime/inference_engine.hpp"

namespace core = pegasus::core;
namespace ctrl = pegasus::control;
namespace comp = pegasus::compiler;
namespace rt = pegasus::runtime;
namespace dp = pegasus::dataplane;

namespace {

core::Program BuildProgram(std::uint64_t seed, std::size_t leaves = 24) {
  core::ProgramBuilder b(4);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> wdist(-0.05f, 0.05f);
  std::vector<float> w(4 * 3);
  for (float& v : w) v = wdist(rng);
  core::ValueId v =
      core::AppendFullyConnected(b, b.input(), w, 4, 3, {}, 2, leaves);
  v = b.Map(v, core::MakeReLU(3), leaves);
  return b.Finish(v);
}

std::vector<float> TrainInputs(std::uint64_t seed, std::size_t n = 1500,
                               std::size_t dim = 4) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(0.0f, 255.0f);
  std::vector<float> x(n * dim);
  for (float& f : x) f = std::floor(dist(rng));
  return x;
}

comp::VersionedModel Compile(std::uint64_t weight_seed,
                             std::uint64_t data_seed,
                             const core::CompileOptions& copts = {},
                             const rt::LoweringOptions& lopts = {}) {
  const auto x = TrainInputs(data_seed);
  return comp::CompileVersioned(BuildProgram(weight_seed), x, 1500, copts,
                                lopts);
}

}  // namespace

TEST(CompileVersioned, MatchesCompileToSwitchBitForBit) {
  const auto x = TrainInputs(11);
  const auto vm = comp::CompileVersioned(BuildProgram(3), x, 1500);
  const auto ref = comp::CompileToSwitch(BuildProgram(3), x, 1500);

  EXPECT_EQ(vm.version, 0u) << "unpublished artifacts carry version 0";
  ASSERT_NE(vm.compiled, nullptr);
  ASSERT_NE(vm.lowered, nullptr);
  EXPECT_EQ(vm.report.sram_bits, ref.lowered.Report().sram_bits);
  EXPECT_EQ(vm.report.tcam_bits, ref.lowered.Report().tcam_bits);
  EXPECT_EQ(vm.report.stages_used, ref.lowered.Report().stages_used);

  std::mt19937_64 rng(5);
  std::uniform_real_distribution<float> dist(0.0f, 255.0f);
  for (int i = 0; i < 100; ++i) {
    const std::vector<float> in{std::floor(dist(rng)), std::floor(dist(rng)),
                                std::floor(dist(rng)), std::floor(dist(rng))};
    EXPECT_EQ(vm.lowered->InferRaw(in), ref.lowered.InferRaw(in));
  }
}

TEST(ModelRegistry, PublishesMonotonicPerNameVersions) {
  ctrl::ModelRegistry reg;
  EXPECT_EQ(reg.Publish("clf", Compile(1, 2)), 1u);
  EXPECT_EQ(reg.Publish("clf", Compile(3, 2)), 2u);
  EXPECT_EQ(reg.Publish("anomaly", Compile(4, 2)), 1u);
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(reg.Names(), (std::vector<std::string>{"anomaly", "clf"}));
  EXPECT_EQ(reg.Versions("clf"), (std::vector<std::uint64_t>{1, 2}));

  const auto latest = reg.Latest("clf");
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->name, "clf");
  EXPECT_EQ(latest->version, 2u);
  const auto v1 = reg.Get("clf", 1);
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->version, 1u);
  EXPECT_EQ(reg.Get("clf", 3), nullptr);
  EXPECT_EQ(reg.Latest("nope"), nullptr);

  // Snapshots are immutable shared state: the registry dropping a model
  // must not invalidate a held snapshot (RCU-style retirement).
  EXPECT_THROW(reg.Publish("bad", comp::VersionedModel{}),
               std::invalid_argument);
}

TEST(ModelRegistry, OnDiskEnvelopeRoundTripsBitIdentical) {
  ctrl::ModelRegistry reg;
  rt::LoweringOptions lopts;
  lopts.stateful_bits_per_flow = 184;
  lopts.max_ternary_entries_per_table = 512;
  reg.Publish("clf", Compile(7, 8, {}, lopts));

  std::stringstream buf;
  reg.SaveModel(buf, "clf", 1);

  ctrl::ModelRegistry other;
  const auto restored = other.LoadModel(buf);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->name, "clf");
  EXPECT_EQ(restored->version, 1u);
  EXPECT_EQ(restored->lowering.stateful_bits_per_flow, 184u);
  EXPECT_EQ(restored->lowering.max_ternary_entries_per_table, 512u);

  const auto orig = reg.Get("clf", 1);
  EXPECT_EQ(restored->report.sram_bits, orig->report.sram_bits);
  EXPECT_EQ(restored->report.tcam_bits, orig->report.tcam_bits);
  EXPECT_EQ(restored->report.stages_used, orig->report.stages_used);
  EXPECT_EQ(restored->report.stateful_bits_per_flow,
            orig->report.stateful_bits_per_flow);

  std::mt19937_64 rng(9);
  std::uniform_real_distribution<float> dist(0.0f, 255.0f);
  for (int i = 0; i < 100; ++i) {
    const std::vector<float> in{std::floor(dist(rng)), std::floor(dist(rng)),
                                std::floor(dist(rng)), std::floor(dist(rng))};
    EXPECT_EQ(restored->lowered->InferRaw(in), orig->lowered->InferRaw(in));
  }

  // Duplicate (name, version) load is rejected; garbage is rejected.
  std::stringstream again;
  reg.SaveModel(again, "clf", 1);
  EXPECT_THROW(other.LoadModel(again), std::invalid_argument);
  std::stringstream garbage("definitely not an artifact");
  EXPECT_THROW(other.LoadModel(garbage), std::runtime_error);
  EXPECT_THROW(reg.SaveModel(buf, "clf", 99), std::out_of_range);
}

TEST(ModelRegistry, EnvelopePayloadSizeBombIsRejectedBeforeAllocating) {
  // A well-formed header whose payload_size field claims 2^64-1 bytes (and
  // one just past the documented ceiling): LoadModel must throw the
  // structured corruption error from the length check, before the payload
  // string is ever allocated. A CRC of zero is fine — the size check runs
  // first.
  for (const std::uint64_t claimed :
       {~std::uint64_t{0}, ctrl::kMaxEnvelopePayloadBytes + 1}) {
    std::stringstream buf;
    core::WritePod(buf, ctrl::kRegistryArtifactMagic);
    core::WritePod(buf, ctrl::kRegistryArtifactVersion);
    core::WritePod<std::uint64_t>(buf, claimed);
    core::WritePod<std::uint32_t>(buf, 0);
    ctrl::ModelRegistry reg;
    EXPECT_THROW(reg.LoadModel(buf), core::CorruptArtifactError)
        << "claimed payload_size=" << claimed;
  }

  // An in-cap size with no payload behind it is truncation, also
  // structured.
  std::stringstream buf;
  core::WritePod(buf, ctrl::kRegistryArtifactMagic);
  core::WritePod(buf, ctrl::kRegistryArtifactVersion);
  core::WritePod<std::uint64_t>(buf, 64);
  core::WritePod<std::uint32_t>(buf, 0);
  ctrl::ModelRegistry reg;
  EXPECT_THROW(reg.LoadModel(buf), core::CorruptArtifactError);
}

TEST(UpdatePlanner, IdenticalCompilesPlanToAllUnchanged) {
  ctrl::ModelRegistry reg;
  reg.Publish("clf", Compile(1, 2));
  reg.Publish("clf", Compile(1, 2));  // same weights, same data
  const auto plan = ctrl::PlanUpdate(*reg.Get("clf", 1), *reg.Get("clf", 2));
  EXPECT_EQ(plan.from_version, 1u);
  EXPECT_EQ(plan.to_version, 2u);
  EXPECT_FALSE(plan.structure_changed);
  ASSERT_GT(plan.tables.size(), 0u);
  EXPECT_EQ(plan.unchanged, plan.tables.size());
  EXPECT_EQ(plan.entry_delta, 0u);
  EXPECT_EQ(plan.reseal, 0u);
  EXPECT_EQ(plan.total_bytes_to_push, 0u);
}

TEST(UpdatePlanner, RefinedOutputsPlanToEntryDeltas) {
  // Same program, same training data, refine_outputs toggled: the
  // quantization plan and the tree (fitted on the input distribution) are
  // identical, only the stored leaf output words move — the entry-delta
  // case. The map must be nonlinear (mean f(x) != f(centroid)); for linear
  // maps §4.4 refinement is a no-op and the plan correctly says unchanged.
  auto build = [] {
    core::ProgramBuilder b(4);
    core::MapFunction sq;
    sq.name = "square";
    sq.in_dim = 4;
    sq.out_dim = 2;
    sq.fn = [](std::span<const float> x) {
      return std::vector<float>{x[0] * x[0] / 255.0f + x[1],
                                x[2] * x[2] / 255.0f + x[3]};
    };
    return b.Finish(b.Map(b.input(), std::move(sq), 24));
  };
  core::CompileOptions with;
  core::CompileOptions without;
  without.refine_outputs = false;
  const auto x = TrainInputs(2);
  const auto a = comp::CompileVersioned(build(), x, 1500, with);
  const auto b = comp::CompileVersioned(build(), x, 1500, without);
  const auto plan = ctrl::PlanUpdate(a, b);
  EXPECT_FALSE(plan.structure_changed);
  EXPECT_GT(plan.entry_delta, 0u);
  EXPECT_GT(plan.total_bytes_to_push, 0u);
  for (const auto& u : plan.tables) {
    if (u.kind == ctrl::TableUpdateKind::kEntryDelta) {
      EXPECT_GT(u.changed_leaves, 0u);
      EXPECT_LE(u.changed_leaves, u.leaves_after);
      EXPECT_EQ(u.leaves_before, u.leaves_after);
    }
  }
  EXPECT_NE(ctrl::FormatPlan(plan).find("entry-delta"), std::string::npos);
}

TEST(UpdatePlanner, RetrainedWeightsPlanToReseals) {
  // Different weights shift the propagated training distribution, so the
  // fitted leaf boxes move: full reseal, no silent reuse of stale TCAM.
  const auto a = Compile(1, 2);
  const auto b = Compile(99, 2);
  const auto plan = ctrl::PlanUpdate(a, b);
  EXPECT_FALSE(plan.structure_changed);
  EXPECT_GT(plan.reseal, 0u);
  EXPECT_GT(plan.total_bytes_to_push, 0u);
}

TEST(UpdatePlanner, StructureChangeResealsEverything) {
  const auto x = TrainInputs(2);
  const auto a = Compile(1, 2);
  // A differently shaped program: extra ReLU head over 2x leaves.
  core::ProgramBuilder b2(4);
  std::vector<float> w(4 * 3, 0.01f);
  core::ValueId v = core::AppendFullyConnected(b2, b2.input(), w, 4, 3, {},
                                               2, 16);
  v = b2.Map(v, core::MakeReLU(3), 16);
  v = b2.Map(v, core::MakeReLU(3), 16);
  const auto b = comp::CompileVersioned(b2.Finish(v), x, 1500);

  const auto plan = ctrl::PlanUpdate(a, b);
  EXPECT_TRUE(plan.structure_changed);
  EXPECT_EQ(plan.reseal, plan.tables.size());
  EXPECT_EQ(plan.unchanged, 0u);
  EXPECT_EQ(plan.entry_delta, 0u);
}

TEST(CoPlacement, AdmitsWithinBudgetAndStacksStages) {
  ctrl::ModelRegistry reg;
  reg.Publish("clf", Compile(1, 2));
  reg.Publish("anomaly", Compile(5, 6));
  const auto a = reg.Latest("clf");
  const auto b = reg.Latest("anomaly");

  const auto joint = ctrl::PlanCoPlacement({a.get(), b.get()}, {});
  ASSERT_EQ(joint.models.size(), 2u);
  EXPECT_EQ(joint.models[0].stage_offset, 0u);
  EXPECT_EQ(joint.models[1].stage_offset, joint.models[0].stages_used);
  EXPECT_EQ(joint.stages_used,
            joint.models[0].stages_used + joint.models[1].stages_used);
  EXPECT_EQ(joint.phv_bits,
            joint.models[0].phv_bits + joint.models[1].phv_bits);
  EXPECT_EQ(joint.sram_bits,
            a->report.sram_bits + b->report.sram_bits);
  EXPECT_LE(joint.stages_used, dp::SwitchModel{}.num_stages);
}

TEST(CoPlacement, RejectsOverSubscriptionWithStructuredError) {
  ctrl::ModelRegistry reg;
  reg.Publish("clf", Compile(1, 2));
  reg.Publish("anomaly", Compile(5, 6));
  const auto a = reg.Latest("clf");
  const auto b = reg.Latest("anomaly");

  // A switch with exactly enough stages for the first model: admitting the
  // second must fail on the stage budget, naming the culprit.
  dp::SwitchModel tight;
  tight.num_stages = a->report.stages_used;
  try {
    ctrl::PlanCoPlacement({a.get(), b.get()}, tight);
    FAIL() << "over-subscription must be rejected";
  } catch (const ctrl::AdmissionError& e) {
    EXPECT_EQ(e.resource(), ctrl::AdmissionError::Resource::kStages);
    EXPECT_EQ(e.model(), "anomaly v1");
    EXPECT_EQ(e.required(),
              a->report.stages_used + b->report.stages_used);
    EXPECT_EQ(e.available(), tight.num_stages);
    EXPECT_NE(std::string(e.what()).find("stages"), std::string::npos);
  }

  // PHV over-subscription is structured the same way.
  dp::SwitchModel tiny_phv;
  tiny_phv.phv_bits = a->lowered->layout().TotalBits();
  try {
    ctrl::PlanCoPlacement({a.get(), b.get()}, tiny_phv);
    FAIL() << "PHV over-subscription must be rejected";
  } catch (const ctrl::AdmissionError& e) {
    EXPECT_EQ(e.resource(), ctrl::AdmissionError::Resource::kPhvBits);
  }

  // A model lowered against wider per-stage budgets cannot be stacked onto
  // a narrower switch without re-lowering.
  dp::SwitchModel narrow;
  narrow.tcam_bits_per_stage = 1024;
  EXPECT_THROW(ctrl::PlanCoPlacement({a.get()}, narrow),
               std::invalid_argument);
}

TEST(UpdatePlanner, EntryDeltaPatchesReproduceTargetBitForBit) {
  // The O(delta) path end-to-end at the control layer: CollectPatches on
  // an entry-delta plan, applied to a Clone() of the serving artifact,
  // must (a) cost exactly what the dataplane reports pushing and (b)
  // yield an artifact bit-identical to the freshly lowered target.
  auto build = [] {
    core::ProgramBuilder b(4);
    core::MapFunction sq;
    sq.name = "square";
    sq.in_dim = 4;
    sq.out_dim = 2;
    sq.fn = [](std::span<const float> x) {
      return std::vector<float>{x[0] * x[0] / 255.0f + x[1],
                                x[2] * x[2] / 255.0f + x[3]};
    };
    return b.Finish(b.Map(b.input(), std::move(sq), 24));
  };
  core::CompileOptions with;
  core::CompileOptions without;
  without.refine_outputs = false;
  const auto x = TrainInputs(2);
  const auto a = comp::CompileVersioned(build(), x, 1500, with);
  const auto b = comp::CompileVersioned(build(), x, 1500, without);
  const auto plan = ctrl::PlanUpdate(a, b);
  ASSERT_FALSE(plan.structure_changed);
  ASSERT_GT(plan.entry_delta, 0u);
  ASSERT_EQ(plan.reseal, 0u);

  const auto patches = ctrl::CollectPatches(plan);
  ASSERT_EQ(patches.size(), plan.entry_delta);
  for (const auto& u : plan.tables) {
    if (u.kind == ctrl::TableUpdateKind::kEntryDelta) {
      EXPECT_FALSE(u.patches.empty());
    } else {
      EXPECT_TRUE(u.patches.empty());
    }
  }

  auto patched = a.lowered->Clone();
  const std::size_t bytes = patched.ApplyDelta(patches);
  EXPECT_EQ(bytes, plan.total_bytes_to_push)
      << "planner costing must equal the dataplane's reported push bytes";

  std::mt19937_64 rng(7);
  std::uniform_real_distribution<float> dist(0.0f, 255.0f);
  for (int i = 0; i < 200; ++i) {
    const std::vector<float> in{std::floor(dist(rng)), std::floor(dist(rng)),
                                std::floor(dist(rng)), std::floor(dist(rng))};
    ASSERT_EQ(patched.InferRaw(in), b.lowered->InferRaw(in));
  }
  // The serving artifact itself is untouched by the clone's patches.
  const auto fresh_a = a.lowered->Clone();
  for (int i = 0; i < 50; ++i) {
    const std::vector<float> in{std::floor(dist(rng)), std::floor(dist(rng)),
                                std::floor(dist(rng)), std::floor(dist(rng))};
    ASSERT_EQ(a.lowered->InferRaw(in), fresh_a.InferRaw(in));
  }
}

TEST(UpdatePlanner, CollectPatchesRejectsResealAndStructurePlans) {
  // Reseal plan: applying only its deltas would serve a torn model.
  const auto a = Compile(1, 2);
  const auto b = Compile(99, 2);
  const auto reseal_plan = ctrl::PlanUpdate(a, b);
  ASSERT_GT(reseal_plan.reseal, 0u);
  EXPECT_THROW(ctrl::CollectPatches(reseal_plan), std::invalid_argument);

  // Structure change: ditto.
  const auto x = TrainInputs(2);
  core::ProgramBuilder b2(4);
  std::vector<float> w(4 * 3, 0.01f);
  core::ValueId v = core::AppendFullyConnected(b2, b2.input(), w, 4, 3, {},
                                               2, 16);
  v = b2.Map(v, core::MakeReLU(3), 16);
  v = b2.Map(v, core::MakeReLU(3), 16);
  const auto c = comp::CompileVersioned(b2.Finish(v), x, 1500);
  const auto structure_plan = ctrl::PlanUpdate(a, c);
  ASSERT_TRUE(structure_plan.structure_changed);
  EXPECT_THROW(ctrl::CollectPatches(structure_plan), std::invalid_argument);
}

TEST(UpdatePlanner, ExpansionCapChangeForcesReseal) {
  // Same weights, same data — but the expansion cap moved, so tables may
  // flip between CRC ternary and range lowering: entry indices would not
  // line up, and the plan must refuse to call it a delta.
  rt::LoweringOptions wide;
  rt::LoweringOptions narrow;
  narrow.max_ternary_entries_per_table = 1;  // force range fallback
  const auto a = Compile(1, 2, {}, wide);
  const auto b = Compile(1, 2, {}, narrow);
  const auto plan = ctrl::PlanUpdate(a, b);
  EXPECT_FALSE(plan.structure_changed);
  EXPECT_EQ(plan.entry_delta, 0u);
  EXPECT_EQ(plan.unchanged, 0u);
  EXPECT_EQ(plan.reseal, plan.tables.size());
}
