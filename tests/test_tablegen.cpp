#include "core/tablegen.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/fusion.hpp"
#include "core/operators.hpp"

namespace core = pegasus::core;

namespace {

std::vector<float> RandomFeatures(std::size_t n, std::size_t dim,
                                  std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(0.0f, 255.0f);
  std::vector<float> x(n * dim);
  for (float& v : x) v = std::floor(dist(rng));
  return x;
}

/// Identity-ish affine program: one Map over the whole input.
core::Program AffineProgram(std::size_t dim, float scale, float shift) {
  core::ProgramBuilder b(dim);
  auto v = b.Map(b.input(),
                 core::MakeAffine(std::vector<float>(dim, scale),
                                  std::vector<float>(dim, shift), "aff"),
                 64);
  return b.Finish(v);
}

}  // namespace

TEST(Tablegen, FuzzyApproximatesAffineWithinLeafResolution) {
  const std::size_t n = 2000, dim = 2;
  auto x = RandomFeatures(n, dim, 1);
  core::CompileOptions opts;
  auto cm = core::CompileProgram(AffineProgram(dim, 0.1f, -5.0f), x, n, opts);
  EXPECT_EQ(cm.NumTables(), 1u);

  // The fuzzy output must track the exact function with error bounded by
  // the cluster radius times the slope.
  double worst = 0.0;
  for (std::size_t i = 0; i < 200; ++i) {
    std::span<const float> row(x.data() + i * dim, dim);
    const auto y = cm.Evaluate(row);
    for (std::size_t d = 0; d < dim; ++d) {
      const double exact = 0.1 * row[d] - 5.0;
      worst = std::max(worst, std::abs(exact - y[d]));
    }
  }
  // 64 leaves over a 256^2 uniform domain -> cells ~32 wide -> |err| <=
  // slope * cell/2 + quantization ~ 1.6 + eps. Allow slack.
  EXPECT_LT(worst, 4.0);
}

TEST(Tablegen, MoreLeavesMonotonicallyImproveAccuracy) {
  const std::size_t n = 3000, dim = 2;
  auto x = RandomFeatures(n, dim, 2);
  double prev_err = 1e18;
  for (std::size_t leaves : {4u, 16u, 64u, 256u}) {
    core::ProgramBuilder b(dim);
    auto v = b.Map(b.input(),
                   core::MakeSubnet("prod", dim, 1,
                                    [](std::span<const float> in) {
                                      return std::vector<float>{
                                          in[0] * in[1] / 256.0f};
                                    }),
                   leaves);
    core::CompileOptions opts;
    auto cm = core::CompileProgram(b.Finish(v), x, n, opts);
    double err = 0.0;
    for (std::size_t i = 0; i < 500; ++i) {
      std::span<const float> row(x.data() + i * dim, dim);
      err += std::abs(cm.Evaluate(row)[0] - row[0] * row[1] / 256.0f);
    }
    EXPECT_LT(err, prev_err * 1.05) << leaves;  // allow small noise
    prev_err = err;
  }
}

TEST(Tablegen, RefinementBeatsPlainCentroids) {
  // On a curved function, storing per-leaf means of f(x) (the §4.4
  // refinement) must not be worse than f(centroid).
  const std::size_t n = 4000, dim = 2;
  auto x = RandomFeatures(n, dim, 3);
  auto make = [&](bool refine) {
    core::ProgramBuilder b(dim);
    auto v = b.Map(b.input(),
                   core::MakeSubnet("curve", dim, 1,
                                    [](std::span<const float> in) {
                                      const float a = in[0] / 255.0f;
                                      const float c = in[1] / 255.0f;
                                      return std::vector<float>{
                                          std::sin(3 * a) * c * c};
                                    }),
                   16);
    core::CompileOptions opts;
    opts.refine_outputs = refine;
    return core::CompileProgram(b.Finish(v), x, n, opts);
  };
  auto plain = make(false);
  auto refined = make(true);
  double err_plain = 0, err_refined = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::span<const float> row(x.data() + i * dim, dim);
    const float a = row[0] / 255.0f, c = row[1] / 255.0f;
    const float exact = std::sin(3 * a) * c * c;
    err_plain += std::abs(plain.Evaluate(row)[0] - exact);
    err_refined += std::abs(refined.Evaluate(row)[0] - exact);
  }
  EXPECT_LE(err_refined, err_plain * 1.001);
}

TEST(Tablegen, SumReduceMatchesFloatWithinQuantization) {
  // FC decomposition compiled and evaluated fuzzily stays close to exact.
  const std::size_t n = 4000, dim = 4;
  auto x = RandomFeatures(n, dim, 4);
  core::ProgramBuilder b(dim);
  const std::vector<float> w{0.02f, -0.01f, 0.03f, 0.005f,
                             -0.02f, 0.01f, 0.0f,  0.015f};  // 4x2
  const std::vector<float> bias{1.0f, -1.0f};
  auto v = core::AppendFullyConnected(b, b.input(), w, 4, 2, bias, 2, 128);
  core::Program p = b.Finish(v);
  core::Program ref = p;
  core::CompileOptions opts;
  auto cm = core::CompileProgram(std::move(p), x, n, opts);
  double worst = 0;
  for (std::size_t i = 0; i < 500; ++i) {
    std::span<const float> row(x.data() + i * dim, dim);
    const auto exact = ref.Evaluate(row);
    const auto fuzzy = cm.Evaluate(row);
    for (std::size_t d = 0; d < 2; ++d) {
      worst = std::max(worst, std::abs(double{exact[d]} - fuzzy[d]));
    }
  }
  // Segment cells are ~(256/sqrt(128))^2; slopes <= 0.03.
  EXPECT_LT(worst, 2.0);
}

TEST(Tablegen, QuantPlanCoversObservedRanges) {
  const std::size_t n = 1000, dim = 2;
  auto x = RandomFeatures(n, dim, 5);
  auto cm = core::CompileProgram(AffineProgram(dim, 0.5f, 100.0f), x, n, {});
  // Output range ~ [100, 227]; the output quant must cover it.
  const auto& oq = cm.quant()[cm.program().output()];
  ASSERT_EQ(oq.size(), dim);
  EXPECT_GE(oq[0].fmt.MaxValue(), 227.0);
  EXPECT_LE(oq[0].fmt.MinValue(), 100.0);
  // Domain bits respect the cap.
  for (const auto& q : oq) {
    EXPECT_LE(q.domain_bits, cm.options().max_domain_bits);
  }
}

TEST(Tablegen, RejectsBadPrograms) {
  const std::size_t dim = 4;
  auto x = RandomFeatures(10, dim, 6);
  // SumReduce over raw partition segments (not Map outputs) is not
  // lowerable.
  core::ProgramBuilder b(dim);
  auto segs = b.Partition(b.input(), 2, 2);
  auto out = b.SumReduce(std::span<const core::ValueId>(segs));
  EXPECT_THROW(core::CompileProgram(b.Finish(out), x, 10, {}),
               std::logic_error);
  // Empty training data.
  EXPECT_THROW(core::CompileProgram(AffineProgram(dim, 1, 0), x, 0, {}),
               std::invalid_argument);
}

TEST(Tablegen, EvaluateRejectsWrongDim) {
  auto x = RandomFeatures(100, 2, 7);
  auto cm = core::CompileProgram(AffineProgram(2, 1, 0), x, 100, {});
  const std::vector<float> bad{1.0f};
  EXPECT_THROW(cm.Evaluate(bad), std::invalid_argument);
}

TEST(Tablegen, TotalLeavesRespectBudget) {
  auto x = RandomFeatures(500, 4, 8);
  core::ProgramBuilder b(4);
  auto segs = b.Partition(b.input(), 2, 2);
  std::vector<core::ValueId> maps;
  for (auto s : segs) {
    maps.push_back(b.Map(s, core::MakeLinear({0.1f, 0.1f}, 2, 1, {}), 32));
  }
  auto out = b.SumReduce(std::span<const core::ValueId>(maps));
  auto cm = core::CompileProgram(b.Finish(out), x, 500, {});
  EXPECT_EQ(cm.NumTables(), 2u);
  EXPECT_LE(cm.TotalLeaves(), 64u);
}

class ValueBitsSweep : public ::testing::TestWithParam<int> {};

TEST_P(ValueBitsSweep, WiderActivationsNeverHurt) {
  const std::size_t n = 2000, dim = 2;
  auto x = RandomFeatures(n, dim, 9);
  core::CompileOptions opts;
  opts.value_bits = GetParam();
  auto cm = core::CompileProgram(AffineProgram(dim, 0.07f, -3.0f), x, n, opts);
  double err = 0;
  for (std::size_t i = 0; i < 300; ++i) {
    std::span<const float> row(x.data() + i * dim, dim);
    const auto y = cm.Evaluate(row);
    for (std::size_t d = 0; d < dim; ++d) {
      err += std::abs(y[d] - (0.07f * row[d] - 3.0f));
    }
  }
  // All widths must stay within the fuzzy-cell bound; wider widths are
  // covered by the monotone leaf test above.
  EXPECT_LT(err / 600.0, 2.5);
}

INSTANTIATE_TEST_SUITE_P(Widths, ValueBitsSweep,
                         ::testing::Values(8, 12, 16, 24));
