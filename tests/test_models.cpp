// Integration tests: every §6.3 model trains on a small synthetic dataset,
// compiles to a primitive program, and its fuzzy (dataplane) accuracy lands
// within a small gap of its own full-precision accuracy — the Figure 9a-c
// property at test scale.
#include <gtest/gtest.h>

#include "eval/experiment.hpp"
#include "models/autoencoder.hpp"
#include "models/cnn_b.hpp"
#include "models/cnn_l.hpp"
#include "models/cnn_m.hpp"
#include "models/mlp_b.hpp"
#include "models/rnn_b.hpp"
#include "runtime/lowering.hpp"

namespace ev = pegasus::eval;
namespace tr = pegasus::traffic;
namespace md = pegasus::models;

namespace {

/// One small PeerRush-like dataset shared by all tests in this binary.
const ev::PreparedDataset& Data() {
  static const ev::PreparedDataset prep =
      ev::Prepare(tr::PeerRushSpec(40, 17));
  return prep;
}

struct Scores {
  double float_f1 = 0.0;
  double fuzzy_f1 = 0.0;
};

Scores EvalClassifier(const md::TrainedModel& model,
                      const tr::SampleSet& test, std::size_t num_classes) {
  std::vector<std::int32_t> pf, pz;
  for (std::size_t i = 0; i < test.size(); ++i) {
    std::span<const float> row(test.x.data() + i * test.dim, test.dim);
    pf.push_back(model.PredictClassFloat(row));
    pz.push_back(model.PredictClassFuzzy(row));
  }
  return {ev::Evaluate(test.labels, pf, num_classes).f1,
          ev::Evaluate(test.labels, pz, num_classes).f1};
}

}  // namespace

TEST(Models, MlpBEndToEnd) {
  const auto& prep = Data();
  md::MlpBConfig cfg;
  cfg.epochs = 20;
  auto model = md::MlpB::Train(prep.stat.train.x, prep.stat.train.labels,
                               prep.stat.train.size(), prep.stat.train.dim,
                               prep.num_classes, cfg);
  const auto s = EvalClassifier(*model, prep.stat.test, prep.num_classes);
  EXPECT_GT(s.float_f1, 0.70);
  EXPECT_GT(s.fuzzy_f1, s.float_f1 - 0.08);
  EXPECT_EQ(model->InputScaleBits(), 128u);
  EXPECT_NEAR(model->ModelSizeKb(), 34.3, 8.0);  // paper: 34.3 Kb
  EXPECT_EQ(model->FlowState().BitsPerFlow(), 80u);
  // Basic fusion must have collapsed norm/BN/ReLU tables.
  EXPECT_LT(model->fusion_stats().maps_after,
            model->fusion_stats().maps_before);
}

TEST(Models, MlpBLowersAndMatchesSimulator) {
  const auto& prep = Data();
  md::MlpBConfig cfg;
  cfg.epochs = 6;
  auto model = md::MlpB::Train(prep.stat.train.x, prep.stat.train.labels,
                               prep.stat.train.size(), prep.stat.train.dim,
                               prep.num_classes, cfg);
  auto lowered = pegasus::runtime::Lower(model->Compiled(), {});
  const auto& test = prep.stat.test;
  for (std::size_t i = 0; i < std::min<std::size_t>(test.size(), 64); ++i) {
    std::span<const float> row(test.x.data() + i * test.dim, test.dim);
    EXPECT_EQ(model->Compiled().EvaluateRaw(row), lowered.InferRaw(row));
  }
  const auto rep = lowered.Report();
  EXPECT_GT(rep.tcam_bits, 0u);
}

TEST(Models, RnnBEndToEnd) {
  const auto& prep = Data();
  md::RnnBConfig cfg;
  cfg.epochs = 20;
  auto model = md::RnnB::Train(prep.seq.train.x, prep.seq.train.labels,
                               prep.seq.train.size(), prep.seq.train.dim,
                               prep.num_classes, cfg);
  const auto s = EvalClassifier(*model, prep.seq.test, prep.num_classes);
  EXPECT_GT(s.float_f1, 0.70);
  EXPECT_GT(s.fuzzy_f1, s.float_f1 - 0.12);
  EXPECT_EQ(model->FlowState().BitsPerFlow(), 240u);
}

TEST(Models, CnnBEndToEnd) {
  const auto& prep = Data();
  md::CnnBConfig cfg;
  cfg.epochs = 20;
  auto model = md::CnnB::Train(prep.seq.train.x, prep.seq.train.labels,
                               prep.seq.train.size(), prep.seq.train.dim,
                               prep.num_classes, cfg);
  const auto s = EvalClassifier(*model, prep.seq.test, prep.num_classes);
  EXPECT_GT(s.float_f1, 0.70);
  EXPECT_GT(s.fuzzy_f1, s.float_f1 - 0.10);
  EXPECT_EQ(model->FlowState().BitsPerFlow(), 72u);
}

TEST(Models, CnnMEndToEndAndFewTables) {
  const auto& prep = Data();
  md::CnnMConfig cfg;
  cfg.epochs = 20;
  auto model = md::CnnM::Train(prep.seq.train.x, prep.seq.train.labels,
                               prep.seq.train.size(), prep.seq.train.dim,
                               prep.num_classes, cfg);
  const auto s = EvalClassifier(*model, prep.seq.test, prep.num_classes);
  EXPECT_GT(s.float_f1, 0.72);
  EXPECT_GT(s.fuzzy_f1, s.float_f1 - 0.10);
  // Advanced fusion: one Map per segment, nothing else (7 segments for a
  // window of 8 packets).
  EXPECT_EQ(model->Compiled().NumTables(), 7u);
  // CNN-M is much bigger than CNN-B yet uses fewer tables (Table 6 story).
  EXPECT_GT(model->ModelSizeKb(), 500.0);
}

TEST(Models, CnnLEndToEnd) {
  const auto& prep = Data();
  md::CnnLConfig cfg;
  cfg.epochs = 6;
  const auto& train = prep.raw.train;
  auto model =
      md::CnnL::Train(train.x, prep.seq.train.x, train.labels, train.size(),
                      prep.num_classes, cfg);
  // Evaluate on packed inputs.
  const auto& test = prep.raw.test;
  std::vector<std::int32_t> pf, pz;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const auto packed = md::CnnL::PackInput(
        std::span<const float>(test.x.data() + i * test.dim, test.dim),
        std::span<const float>(prep.seq.test.x.data() + i * prep.seq.test.dim,
                               prep.seq.test.dim),
        cfg.use_ipd);
    pf.push_back(model->PredictClassFloat(packed));
    pz.push_back(model->PredictClassFuzzy(packed));
  }
  const double f1_float =
      ev::Evaluate(test.labels, pf, prep.num_classes).f1;
  const double f1_fuzzy =
      ev::Evaluate(test.labels, pz, prep.num_classes).f1;
  // Raw bytes carry near-noiseless class signal: CNN-L should dominate.
  EXPECT_GT(f1_float, 0.9);
  EXPECT_GT(f1_fuzzy, f1_float - 0.1);
  EXPECT_EQ(model->InputScaleBits(), 3840u);
  EXPECT_EQ(model->FlowState().BitsPerFlow(), 44u);  // Figure 7 midpoint
}

TEST(Models, CnnLFlowStateVariants) {
  md::CnnLConfig cfg28;
  cfg28.use_ipd = false;
  md::CnnLConfig cfg72;
  cfg72.index_bits = 8;
  // FlowState depends only on config; build via a tiny training run.
  const auto& prep = Data();
  const auto& train = prep.raw.train;
  cfg28.epochs = 1;
  cfg72.epochs = 1;
  auto m28 = md::CnnL::Train(train.x, prep.seq.train.x, train.labels,
                             train.size(), prep.num_classes, cfg28);
  auto m72 = md::CnnL::Train(train.x, prep.seq.train.x, train.labels,
                             train.size(), prep.num_classes, cfg72);
  EXPECT_EQ(m28->FlowState().BitsPerFlow(), 28u);
  EXPECT_EQ(m72->FlowState().BitsPerFlow(), 72u);
}

TEST(Models, AutoencoderSeparatesAttacks) {
  const auto& prep = Data();
  md::AutoencoderConfig cfg;
  cfg.epochs = 25;
  auto model = md::Autoencoder::Train(prep.seq.train.x, prep.seq.train.size(),
                                      prep.seq.train.dim, cfg);
  // Benign test scores vs flood-attack scores.
  const auto attacks = tr::AttackProfiles();
  auto flood = tr::GenerateFlows(attacks[1], 30, -1, 24, 48, 77);
  const auto atk = tr::ExtractSeqFeatures(flood);
  double benign_mean = 0, attack_mean = 0;
  const auto& test = prep.seq.test;
  for (std::size_t i = 0; i < test.size(); ++i) {
    benign_mean += model->ScoreFuzzy(
        std::span<const float>(test.x.data() + i * test.dim, test.dim));
  }
  benign_mean /= static_cast<double>(test.size());
  for (std::size_t i = 0; i < atk.size(); ++i) {
    attack_mean += model->ScoreFuzzy(
        std::span<const float>(atk.x.data() + i * atk.dim, atk.dim));
  }
  attack_mean /= static_cast<double>(atk.size());
  EXPECT_GT(attack_mean, benign_mean * 1.3)
      << "flood traffic must reconstruct worse than benign";
  EXPECT_EQ(model->FlowState().BitsPerFlow(), 240u);
}
