// The streaming runtime's acceptance criteria (ISSUE 2):
//
//  * Parity — replaying a merged trace through a single-shard StreamServer
//    produces bit-identical per-packet class decisions to the offline
//    Extract*Features + eval::PredictClassesLowered path, for both the
//    stat and the seq feature family.
//  * Multi-threaded mode produces the same per-flow decision multiset as
//    the deterministic single-threaded mode.
//  * The merged trace is time-ordered, flow-order-preserving and
//    deterministic.
#include "runtime/stream_server.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <random>
#include <utility>

#include "compiler/compiler.hpp"
#include "control/planner.hpp"
#include "core/operators.hpp"
#include "eval/experiment.hpp"
#include "runtime/fault.hpp"
#include "traffic/stream.hpp"
#include "traffic/synthetic.hpp"

namespace core = pegasus::core;
namespace rt = pegasus::runtime;
namespace tr = pegasus::traffic;
namespace ev = pegasus::eval;

namespace {

/// A small multi-class model over one 16-dim feature family: Partition into
/// 2-dim segments, per-segment fuzzy linear Maps, SumReduce, ReLU head.
/// Trained (fuzzy tables calibrated) on the actual extracted features.
rt::LoweredModel Build16DimModel(std::span<const float> train_x,
                                 std::size_t n, std::uint64_t seed) {
  core::ProgramBuilder b(16);
  // 8 segments of 2 dims (Partition(vec, dim=2, stride=2) over 16 inputs).
  auto segs = b.Partition(b.input(), 2, 2);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> w(-0.05f, 0.05f);
  std::vector<core::ValueId> maps;
  for (auto seg : segs) {
    std::vector<float> weights(2 * 3);
    for (float& v : weights) v = w(rng);
    maps.push_back(
        b.Map(seg, core::MakeLinear(std::move(weights), 2, 3, {}), 32));
  }
  auto sum = b.SumReduce(std::span<const core::ValueId>(maps));
  auto out = b.Map(sum, core::MakeReLU(3), 64);
  return pegasus::compiler::CompileToSwitch(b.Finish(out), train_x, n)
      .lowered;
}

tr::ExtractOptions EveryPacket() {
  tr::ExtractOptions opts;
  opts.max_samples_per_flow = std::numeric_limits<std::size_t>::max();
  return opts;
}

/// Offline reference: per-(flow, packet index) predicted class. With an
/// uncapped walk, a flow's k-th sample is the window ending at packet
/// kWindow-1+k.
std::map<std::pair<std::uint32_t, std::uint32_t>, std::int32_t>
OfflineByPacket(const tr::SampleSet& set,
                const std::vector<std::int32_t>& predictions) {
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::int32_t> out;
  std::map<std::size_t, std::uint32_t> emitted;  // per-flow sample counter
  for (std::size_t i = 0; i < set.size(); ++i) {
    const auto flow = static_cast<std::uint32_t>(set.flow_index[i]);
    const std::uint32_t k = emitted[flow]++;
    const auto index = static_cast<std::uint32_t>(tr::kWindow) - 1 + k;
    out[{flow, index}] = predictions[i];
  }
  return out;
}

std::map<std::pair<std::uint32_t, std::uint32_t>, std::int32_t> StreamByPacket(
    const std::vector<rt::StreamDecision>& decisions) {
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::int32_t> out;
  for (const auto& d : decisions) out[{d.flow, d.index}] = d.predicted;
  return out;
}

void CheckParity(rt::FeatureKind kind, std::uint64_t model_seed) {
  const auto ds = tr::Generate(tr::PeerRushSpec(8, 2024));
  const auto offline = kind == rt::FeatureKind::kStat
                           ? tr::ExtractStatFeatures(ds.flows, EveryPacket())
                           : tr::ExtractSeqFeatures(ds.flows, EveryPacket());
  ASSERT_GT(offline.size(), 0u);

  const auto lowered =
      Build16DimModel(offline.x, offline.size(), model_seed);
  rt::InferenceEngine engine(lowered, 64);
  const auto offline_pred = ev::PredictClassesLowered(engine, offline);
  const auto want = OfflineByPacket(offline, offline_pred);

  const auto trace = tr::MergeTrace(ds.flows);
  rt::StreamServerOptions opts;
  opts.num_shards = 1;
  opts.flows_per_shard = 1 << 10;
  opts.max_probe = 16;
  opts.batch_size = 32;  // exercises batch flush boundaries
  opts.feature = kind;
  rt::StreamServer server(lowered, opts);
  const auto decisions = server.Serve(trace);

  const auto stats = server.Stats();
  ASSERT_EQ(stats.table.evictions, 0u) << "capacity must avoid evictions";
  EXPECT_EQ(stats.packets, trace.size());
  EXPECT_EQ(stats.decisions, decisions.size());

  const auto got = StreamByPacket(decisions);
  ASSERT_EQ(got.size(), want.size());
  for (const auto& [at, predicted] : want) {
    const auto it = got.find(at);
    ASSERT_NE(it, got.end()) << "flow " << at.first << " pkt " << at.second;
    EXPECT_EQ(it->second, predicted)
        << "flow " << at.first << " pkt " << at.second;
  }
}

}  // namespace

TEST(StreamServer, StatParityWithOfflinePath) {
  CheckParity(rt::FeatureKind::kStat, 1);
}

TEST(StreamServer, SeqParityWithOfflinePath) {
  CheckParity(rt::FeatureKind::kSeq, 2);
}

TEST(StreamServer, MultiThreadedMatchesSingleThreadedDecisions) {
  const auto ds = tr::Generate(tr::PeerRushSpec(10, 77));
  const auto offline = tr::ExtractSeqFeatures(ds.flows, EveryPacket());
  const auto lowered = Build16DimModel(offline.x, offline.size(), 3);
  const auto trace = tr::MergeTrace(ds.flows);

  auto serve = [&](bool mt) {
    rt::StreamServerOptions opts;
    opts.num_shards = 4;
    opts.flows_per_shard = 1 << 10;
    opts.feature = rt::FeatureKind::kSeq;
    opts.multithreaded = mt;
    rt::StreamServer server(lowered, opts);
    auto decisions = server.Serve(trace);
    // Order-normalize: a flow lives on exactly one shard, so the per-flow
    // sequences must agree; only cross-shard interleaving may differ.
    std::sort(decisions.begin(), decisions.end(),
              [](const rt::StreamDecision& a, const rt::StreamDecision& b) {
                return std::tie(a.flow, a.index) < std::tie(b.flow, b.index);
              });
    return decisions;
  };

  const auto st = serve(false);
  const auto mt = serve(true);
  ASSERT_EQ(st.size(), mt.size());
  for (std::size_t i = 0; i < st.size(); ++i) {
    EXPECT_EQ(st[i].flow, mt[i].flow);
    EXPECT_EQ(st[i].index, mt[i].index);
    EXPECT_EQ(st[i].predicted, mt[i].predicted);
    EXPECT_EQ(st[i].score, mt[i].score);
    EXPECT_EQ(st[i].label, mt[i].label);
  }
}

TEST(StreamServer, RejectsMismatchedFeatureFamily) {
  const auto ds = tr::Generate(tr::PeerRushSpec(6, 5));
  const auto offline = tr::ExtractSeqFeatures(ds.flows);
  const auto lowered = Build16DimModel(offline.x, offline.size(), 4);
  rt::StreamServerOptions opts;
  opts.feature = rt::FeatureKind::kRaw;  // 480-dim family vs 16-dim model
  EXPECT_THROW(rt::StreamServer(lowered, opts), std::invalid_argument);
  opts.feature = rt::FeatureKind::kSeq;
  opts.num_shards = 0;
  EXPECT_THROW(rt::StreamServer(lowered, opts), std::invalid_argument);
}

TEST(StreamServer, ShardStateIsInaccessibleWhileWorkersRun) {
  const auto ds = tr::Generate(tr::PeerRushSpec(4, 15));
  const auto offline = tr::ExtractSeqFeatures(ds.flows);
  const auto lowered = Build16DimModel(offline.x, offline.size(), 9);
  rt::StreamServerOptions opts;
  opts.feature = rt::FeatureKind::kSeq;
  opts.multithreaded = true;
  rt::StreamServer server(lowered, opts);
  server.Start();
  // The workers own the shards until Stop(); reads would race them.
  EXPECT_THROW(server.Stats(), std::logic_error);
  EXPECT_THROW(server.TakeDecisions(), std::logic_error);
  EXPECT_THROW(server.Flush(), std::logic_error);
  server.Stop();
  EXPECT_EQ(server.Stats().packets, 0u);
  // Single-threaded servers reject Start().
  rt::StreamServerOptions st_opts;
  st_opts.feature = rt::FeatureKind::kSeq;
  rt::StreamServer st_server(lowered, st_opts);
  EXPECT_THROW(st_server.Start(), std::logic_error);
}

TEST(StreamServer, EvictionPressureRestartsFlowsButKeepsServing) {
  const auto ds = tr::Generate(tr::PeerRushSpec(20, 9));
  const auto offline = tr::ExtractSeqFeatures(ds.flows);
  const auto lowered = Build16DimModel(offline.x, offline.size(), 6);
  const auto trace = tr::MergeTrace(ds.flows);

  rt::StreamServerOptions opts;
  opts.num_shards = 1;
  opts.flows_per_shard = 8;  // far fewer slots than the 60 concurrent flows
  opts.max_probe = 4;
  opts.feature = rt::FeatureKind::kSeq;
  rt::StreamServer server(lowered, opts);
  const auto decisions = server.Serve(trace);

  const auto stats = server.Stats();
  EXPECT_GT(stats.table.evictions, 0u);
  EXPECT_EQ(stats.packets, trace.size());
  // Evicted flows restart their 8-packet warm-up, so strictly fewer
  // decisions than the no-eviction packet budget — but the stream keeps
  // flowing and every packet is accounted for.
  EXPECT_EQ(stats.decisions + stats.warmup, stats.packets);
  EXPECT_GT(decisions.size(), 0u);
}

// ---------------------------------------------------------------------------
// Model lifecycle: hitless hot swap (ISSUE 4 acceptance criteria).
// ---------------------------------------------------------------------------

namespace {

/// Serves `trace`, swapping v1 -> v2 after pushing `swap_at` packets, and
/// returns the decisions sorted per flow.
std::vector<rt::StreamDecision> ServeWithSwap(
    const rt::LoweredModel& v1, const rt::LoweredModel& v2,
    std::span<const tr::TracePacket> trace, std::size_t swap_at,
    std::size_t shards, bool mt) {
  rt::StreamServerOptions opts;
  opts.num_shards = shards;
  opts.flows_per_shard = 1 << 10;
  opts.batch_size = 32;
  opts.feature = rt::FeatureKind::kSeq;
  opts.multithreaded = mt;
  rt::StreamServer server(v1, opts);
  auto run = ev::ServeTraceWithSwap(
      server, trace, swap_at,
      std::shared_ptr<const rt::LoweredModel>(std::shared_ptr<void>{}, &v2),
      2);
  EXPECT_EQ(run.stats.swaps, shards) << "one swap application per shard";
  EXPECT_EQ(run.stats.active_version, 2u);
  // Engines retired by the swap fold their counters into the shard carry:
  // every decision of the whole run stays accounted.
  EXPECT_EQ(run.stats.engine.packets, run.stats.decisions);
  std::sort(run.decisions.begin(), run.decisions.end(),
            [](const rt::StreamDecision& a, const rt::StreamDecision& b) {
              return std::tie(a.flow, a.index) < std::tie(b.flow, b.index);
            });
  return run.decisions;
}

}  // namespace

TEST(StreamServer, HotSwapIsHitlessAndDeterministic) {
  const auto ds = tr::Generate(tr::PeerRushSpec(8, 41));
  const auto offline = tr::ExtractSeqFeatures(ds.flows, EveryPacket());
  const auto v1 = Build16DimModel(offline.x, offline.size(), 21);
  const auto v2 = Build16DimModel(offline.x, offline.size(), 22);
  const auto trace = tr::MergeTrace(ds.flows);
  const std::size_t swap_at = trace.size() / 2;

  // Reference runs: the whole trace under each version alone.
  auto serve_pure = [&](const rt::LoweredModel& m) {
    rt::StreamServerOptions opts;
    opts.num_shards = 1;
    opts.flows_per_shard = 1 << 10;
    opts.batch_size = 32;
    opts.feature = rt::FeatureKind::kSeq;
    rt::StreamServer server(m, opts);
    return StreamByPacket(server.Serve(trace));
  };
  const auto pure_v1 = serve_pure(v1);
  const auto pure_v2 = serve_pure(v2);

  const auto swapped = ServeWithSwap(v1, v2, trace, swap_at, 1, false);

  // Zero lost decisions: exactly the no-swap decision count, every packet
  // position present, per-flow order intact.
  ASSERT_EQ(swapped.size(), pure_v1.size());
  std::map<std::uint32_t, std::uint32_t> last_index;
  for (const auto& d : swapped) {
    const auto it = last_index.find(d.flow);
    if (it != last_index.end()) {
      EXPECT_LT(it->second, d.index) << "reordered decision in flow " << d.flow;
    }
    last_index[d.flow] = d.index;
  }

  // The swap point splits the decision stream exactly: pre-swap decisions
  // equal the pure-v1 run, post-swap the pure-v2 run — for every flow,
  // which is only possible if per-flow state survived the swap (a restarted
  // window would drop the first kWindow-1 post-swap decisions).
  std::size_t from_v1 = 0, from_v2 = 0;
  for (const auto& d : swapped) {
    ASSERT_TRUE(d.version == 1 || d.version == 2);
    const auto& want = d.version == 1 ? pure_v1 : pure_v2;
    const auto it = want.find({d.flow, d.index});
    ASSERT_NE(it, want.end());
    EXPECT_EQ(it->second, d.predicted)
        << "flow " << d.flow << " pkt " << d.index << " v" << d.version;
    (d.version == 1 ? from_v1 : from_v2) += 1;
  }
  EXPECT_GT(from_v1, 0u);
  EXPECT_GT(from_v2, 0u);

  // MT == ST across the swap point: identical per-flow decision streams,
  // including each decision's version tag.
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    const auto st = ServeWithSwap(v1, v2, trace, swap_at, shards, false);
    const auto mt = ServeWithSwap(v1, v2, trace, swap_at, shards, true);
    ASSERT_EQ(st.size(), mt.size());
    for (std::size_t i = 0; i < st.size(); ++i) {
      EXPECT_EQ(st[i].flow, mt[i].flow);
      EXPECT_EQ(st[i].index, mt[i].index);
      EXPECT_EQ(st[i].predicted, mt[i].predicted);
      EXPECT_EQ(st[i].score, mt[i].score);
      EXPECT_EQ(st[i].version, mt[i].version);
    }
    // The ST swap stream must also match the 1-shard reference exactly
    // (sharding must not move the swap point within any flow).
    ASSERT_EQ(st.size(), swapped.size());
    for (std::size_t i = 0; i < st.size(); ++i) {
      EXPECT_EQ(st[i].version, swapped[i].version);
      EXPECT_EQ(st[i].predicted, swapped[i].predicted);
    }
  }
}

TEST(StreamServer, SwapRejectsMismatchedModelsAndStaleVersions) {
  const auto ds = tr::Generate(tr::PeerRushSpec(4, 13));
  const auto offline = tr::ExtractSeqFeatures(ds.flows);
  const auto v1 = Build16DimModel(offline.x, offline.size(), 31);
  const auto v2 = Build16DimModel(offline.x, offline.size(), 32);
  auto alias = [](const rt::LoweredModel& m) {
    return std::shared_ptr<const rt::LoweredModel>(std::shared_ptr<void>{},
                                                   &m);
  };

  rt::StreamServerOptions opts;
  opts.feature = rt::FeatureKind::kSeq;
  rt::StreamServer server(alias(v1), opts, 5);
  EXPECT_EQ(server.active_version(), 5u);
  EXPECT_THROW(server.SwapModel(nullptr, 6), std::invalid_argument);
  EXPECT_THROW(server.SwapModel(alias(v2), 5), std::invalid_argument);
  EXPECT_THROW(server.SwapModel(alias(v2), 4), std::invalid_argument);
  server.SwapModel(alias(v2), 6);
  EXPECT_EQ(server.active_version(), 6u);
  EXPECT_EQ(server.Stats().swaps, 1u);
}

TEST(StreamServer, ResetStatsReportsPerPhaseCounters) {
  const auto ds = tr::Generate(tr::PeerRushSpec(6, 17));
  const auto offline = tr::ExtractSeqFeatures(ds.flows, EveryPacket());
  const auto lowered = Build16DimModel(offline.x, offline.size(), 23);
  const auto trace = tr::MergeTrace(ds.flows);
  const std::size_t half = trace.size() / 2;

  rt::StreamServerOptions opts;
  opts.num_shards = 2;
  opts.flows_per_shard = 1 << 10;
  opts.feature = rt::FeatureKind::kSeq;
  rt::StreamServer server(lowered, opts);

  for (std::size_t i = 0; i < half; ++i) server.Push(trace[i]);
  server.Flush();
  const auto phase1 = server.Stats();
  EXPECT_EQ(phase1.packets, half);
  EXPECT_GT(phase1.engine.packets, 0u);
  EXPECT_EQ(phase1.engine.packets, phase1.decisions);
  EXPECT_GT(phase1.engine.table_hits, 0u);
  EXPECT_GT(phase1.table.inserts, 0u);

  server.ResetStats();
  const auto cleared = server.Stats();
  EXPECT_EQ(cleared.packets, 0u);
  EXPECT_EQ(cleared.decisions, 0u);
  EXPECT_EQ(cleared.batches, 0u);
  EXPECT_EQ(cleared.engine.packets, 0u);
  EXPECT_EQ(cleared.engine.table_hits, 0u);
  EXPECT_EQ(cleared.table.hits, 0u);
  EXPECT_EQ(cleared.table.inserts, 0u);
  EXPECT_EQ(cleared.swaps, 0u);
  // Resident flow state is NOT reset — only the counters are.
  EXPECT_GT(cleared.flows_resident, 0u);
  EXPECT_EQ(cleared.flows_resident, phase1.flows_resident);

  // Phase 2 counts only its own work; resident windows keep serving (the
  // phase-2 warm-up count stays below a cold start's).
  for (std::size_t i = half; i < trace.size(); ++i) server.Push(trace[i]);
  server.Flush();
  const auto phase2 = server.Stats();
  EXPECT_EQ(phase2.packets, trace.size() - half);
  EXPECT_EQ(phase2.decisions + phase2.warmup, phase2.packets);

  // StreamServerStats::Reset zeroes a snapshot in place.
  auto snap = phase2;
  snap.Reset();
  EXPECT_EQ(snap.packets, 0u);
  EXPECT_EQ(snap.engine.chunks, 0u);
}

// ---------------------------------------------------------------------------
// Multi-ingest burst dataplane (ISSUE 6 acceptance criteria).
// ---------------------------------------------------------------------------

namespace {

/// Sorts decisions into the canonical per-flow order used by every
/// equality check (a flow lives on one shard, so (flow, index) is total).
void SortByFlow(std::vector<rt::StreamDecision>& decisions) {
  std::sort(decisions.begin(), decisions.end(),
            [](const rt::StreamDecision& a, const rt::StreamDecision& b) {
              return std::tie(a.flow, a.index) < std::tie(b.flow, b.index);
            });
}

}  // namespace

TEST(StreamServer, PartitionedMultiIngestMatchesSingleThreaded) {
  const auto ds = tr::Generate(tr::PeerRushSpec(10, 77));
  const auto offline = tr::ExtractSeqFeatures(ds.flows, EveryPacket());
  const auto lowered = Build16DimModel(offline.x, offline.size(), 3);
  const auto trace = tr::MergeTrace(ds.flows);

  auto serve = [&](bool mt, std::size_t ingest) {
    rt::StreamServerOptions opts;
    opts.num_shards = 4;
    opts.flows_per_shard = 1 << 10;
    opts.feature = rt::FeatureKind::kSeq;
    opts.multithreaded = mt;
    opts.num_ingest = ingest;
    opts.burst = 16;  // forces many partial-burst flushes on a small trace
    rt::StreamServer server(lowered, opts);
    auto run = ev::ServeTracePartitioned(server, trace);
    EXPECT_EQ(run.stats.shed.total(), 0u)
        << "shedding disabled + correct partitioner must shed nothing";
    EXPECT_EQ(run.stats.packets, trace.size());
    SortByFlow(run.decisions);
    return run.decisions;
  };

  // Reference: the deterministic single-threaded push loop.
  rt::StreamServerOptions ref_opts;
  ref_opts.num_shards = 4;
  ref_opts.flows_per_shard = 1 << 10;
  ref_opts.feature = rt::FeatureKind::kSeq;
  rt::StreamServer ref_server(lowered, ref_opts);
  auto ref = ref_server.Serve(trace);
  SortByFlow(ref);

  // Single-threaded partitioned drain and 1/2-ingest multi-threaded runs
  // must all equal the reference per flow, bit for bit.
  for (auto& got : {serve(false, 1), serve(true, 1), serve(true, 2)}) {
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].flow, ref[i].flow);
      EXPECT_EQ(got[i].index, ref[i].index);
      EXPECT_EQ(got[i].predicted, ref[i].predicted);
      EXPECT_EQ(got[i].score, ref[i].score);
      EXPECT_EQ(got[i].label, ref[i].label);
    }
  }
}

TEST(StreamServer, MultiIngestHotSwapKeepsPerFlowDecisions) {
  // SwapModel before a partitioned run: every ingest thread's packets must
  // be decided by the new version (the swap rides the rings before any
  // packet), and per-flow decisions equal the single-threaded run on the
  // same version — the multi-ingest path composes with the lifecycle API.
  const auto ds = tr::Generate(tr::PeerRushSpec(8, 41));
  const auto offline = tr::ExtractSeqFeatures(ds.flows, EveryPacket());
  const auto v1 = Build16DimModel(offline.x, offline.size(), 21);
  const auto v2 = Build16DimModel(offline.x, offline.size(), 22);
  const auto trace = tr::MergeTrace(ds.flows);
  auto alias = [](const rt::LoweredModel& m) {
    return std::shared_ptr<const rt::LoweredModel>(std::shared_ptr<void>{},
                                                   &m);
  };

  auto serve = [&](bool mt, std::size_t ingest) {
    rt::StreamServerOptions opts;
    opts.num_shards = 4;
    opts.flows_per_shard = 1 << 10;
    opts.feature = rt::FeatureKind::kSeq;
    opts.multithreaded = mt;
    opts.num_ingest = ingest;
    rt::StreamServer server(alias(v1), opts, 1);
    server.SwapModel(alias(v2), 2);
    auto run = ev::ServeTracePartitioned(server, trace);
    EXPECT_EQ(run.stats.active_version, 2u);
    SortByFlow(run.decisions);
    return run.decisions;
  };

  const auto st = serve(false, 1);
  const auto mt = serve(true, 2);
  ASSERT_EQ(st.size(), mt.size());
  for (std::size_t i = 0; i < st.size(); ++i) {
    EXPECT_EQ(st[i].flow, mt[i].flow);
    EXPECT_EQ(st[i].index, mt[i].index);
    EXPECT_EQ(st[i].predicted, mt[i].predicted);
    EXPECT_EQ(st[i].version, 2u);
  }
}

TEST(StreamServer, SheddingIsBoundedAndAccounted) {
  const auto ds = tr::Generate(tr::PeerRushSpec(10, 77));
  const auto offline = tr::ExtractSeqFeatures(ds.flows);
  const auto lowered = Build16DimModel(offline.x, offline.size(), 3);
  const auto trace = tr::MergeTrace(ds.flows);

  rt::StreamServerOptions opts;
  opts.num_shards = 1;
  opts.flows_per_shard = 1 << 10;
  opts.feature = rt::FeatureKind::kSeq;
  opts.multithreaded = true;
  opts.queue_capacity = 4;  // the ring can never hold a full 64-burst...
  opts.burst = 64;
  opts.shed = true;
  // ...and an immediately-exhausted ladder sheds every stall
  opts.escalation = rt::EscalationPolicy::Immediate();
  rt::StreamServer server(lowered, opts);
  const auto decisions = server.Serve(trace);

  const auto stats = server.Stats();
  // Every offered packet is either served or counted shed — none lost.
  EXPECT_GT(stats.shed.ring_full, 0u);
  EXPECT_EQ(stats.shed.misrouted, 0u);
  EXPECT_EQ(stats.packets + stats.shed.total(), trace.size());
  EXPECT_EQ(stats.decisions + stats.warmup, stats.packets);
  EXPECT_EQ(stats.decisions, decisions.size());
  // Per-shard breakdown sums to the aggregate.
  ASSERT_EQ(stats.shard_shed.size(), 1u);
  EXPECT_EQ(stats.shard_shed[0].ring_full, stats.shed.ring_full);

  // ResetStats clears the shed counters too.
  server.ResetStats();
  EXPECT_EQ(server.Stats().shed.total(), 0u);
}

TEST(StreamServer, ShedAccountingHoldsAcrossMidStreamSwap) {
  // A mid-stream SwapModel under active shedding must not lose or double-
  // count anything: offered == packets + shed, shard by shard and in
  // aggregate, with decisions from both model versions present.
  const auto ds = tr::Generate(tr::PeerRushSpec(10, 91));
  const auto offline = tr::ExtractSeqFeatures(ds.flows);
  const auto v1 = Build16DimModel(offline.x, offline.size(), 41);
  const auto v2 = Build16DimModel(offline.x, offline.size(), 42);
  const auto trace = tr::MergeTrace(ds.flows);

  rt::StreamServerOptions opts;
  opts.num_shards = 4;
  opts.flows_per_shard = 1 << 10;
  opts.feature = rt::FeatureKind::kSeq;
  opts.multithreaded = true;
  // Small enough to force ring_full sheds on both sides of the swap, big
  // enough that flows still clear warmup and decide under both versions.
  opts.queue_capacity = 64;
  opts.burst = 64;
  opts.shed = true;
  opts.escalation = rt::EscalationPolicy::Immediate();
  rt::StreamServer server(v1, opts);

  std::vector<std::uint64_t> offered(opts.num_shards, 0);
  for (const auto& p : trace) {
    ++offered[rt::StreamServer::ShardIndexOf(p.key.digest, opts.num_shards)];
  }

  auto run = ev::ServeTraceWithSwap(
      server, trace, trace.size() / 2,
      std::shared_ptr<const rt::LoweredModel>(std::shared_ptr<void>{}, &v2),
      2);
  const auto& stats = run.stats;
  EXPECT_EQ(stats.active_version, 2u);
  EXPECT_GT(stats.shed.ring_full, 0u);

  // Aggregate identities (documented on ShedStats).
  EXPECT_EQ(stats.packets + stats.shed.ring_full + stats.shed.misrouted,
            trace.size());
  EXPECT_EQ(stats.decisions + stats.warmup + stats.shed.inference,
            stats.packets);
  EXPECT_EQ(stats.decisions, run.decisions.size());

  // Per-shard: each shard's offered load is exactly served + shed there,
  // and the per-shard breakdowns sum to the aggregate.
  ASSERT_EQ(stats.shard_packets.size(), opts.num_shards);
  ASSERT_EQ(stats.shard_shed.size(), opts.num_shards);
  rt::ShedStats shed_sum;
  std::uint64_t packet_sum = 0;
  for (std::size_t s = 0; s < opts.num_shards; ++s) {
    EXPECT_EQ(stats.shard_packets[s] + stats.shard_shed[s].ring_full +
                  stats.shard_shed[s].misrouted,
              offered[s])
        << "shard " << s;
    shed_sum += stats.shard_shed[s];
    packet_sum += stats.shard_packets[s];
  }
  EXPECT_EQ(shed_sum.total(), stats.shed.total());
  EXPECT_EQ(packet_sum, stats.packets);

  // The swap actually took effect mid-stream: both versions decided.
  bool saw_v1 = false, saw_v2 = false;
  for (const auto& d : run.decisions) {
    saw_v1 |= d.version == 1;
    saw_v2 |= d.version == 2;
  }
  EXPECT_TRUE(saw_v1);
  EXPECT_TRUE(saw_v2);
}

TEST(StreamServer, MisroutedPacketsAreShedNotEnqueued) {
  const auto ds = tr::Generate(tr::PeerRushSpec(8, 19));
  const auto offline = tr::ExtractSeqFeatures(ds.flows);
  const auto lowered = Build16DimModel(offline.x, offline.size(), 5);
  const auto trace = tr::MergeTrace(ds.flows);

  rt::StreamServerOptions opts;
  opts.num_shards = 4;
  opts.flows_per_shard = 1 << 10;
  opts.feature = rt::FeatureKind::kSeq;
  opts.multithreaded = true;
  opts.num_ingest = 2;
  rt::StreamServer server(lowered, opts);

  // A broken partitioner that claims EVERY packet for partition 0: ingest
  // thread 0 then pulls packets whose shard rings belong to thread 1.
  // Those cannot be enqueued (single-producer invariant) — they must be
  // shed and counted, regardless of the shed knob being off.
  rt::DigestPartitionedSource source(trace, 2,
                                     [](std::uint64_t) { return 0u; });
  std::size_t expect_misrouted = 0;
  for (const auto& p : trace) {
    if (server.IngestPartitionOf(p.key.digest) != 0) ++expect_misrouted;
  }
  ASSERT_GT(expect_misrouted, 0u) << "trace must hit both partitions";

  const auto decisions = server.Serve(source);
  const auto stats = server.Stats();
  EXPECT_EQ(stats.shed.misrouted, expect_misrouted);
  EXPECT_EQ(stats.shed.ring_full, 0u);
  EXPECT_EQ(stats.packets + stats.shed.total(), trace.size());
  EXPECT_EQ(stats.decisions, decisions.size());
}

TEST(StreamServer, RejectsBadPartitionAndBurstConfigs) {
  const auto ds = tr::Generate(tr::PeerRushSpec(4, 13));
  const auto offline = tr::ExtractSeqFeatures(ds.flows);
  const auto lowered = Build16DimModel(offline.x, offline.size(), 31);
  const auto trace = tr::MergeTrace(ds.flows);

  rt::StreamServerOptions opts;
  opts.feature = rt::FeatureKind::kSeq;
  opts.num_ingest = 0;
  EXPECT_THROW(rt::StreamServer(lowered, opts), std::invalid_argument);
  opts.num_ingest = 1;
  opts.burst = 0;
  EXPECT_THROW(rt::StreamServer(lowered, opts), std::invalid_argument);

  // MT mode requires the source's partition count to match num_ingest.
  opts.burst = 64;
  opts.multithreaded = true;
  opts.num_ingest = 2;
  opts.num_shards = 4;
  rt::StreamServer server(lowered, opts);
  rt::DigestPartitionedSource three(
      trace, 3, [](std::uint64_t d) { return std::size_t{d % 3}; });
  EXPECT_THROW(server.Serve(three), std::invalid_argument);

  // DigestPartitionedSource rejects degenerate construction and
  // out-of-range partition functions.
  EXPECT_THROW(
      rt::DigestPartitionedSource(trace, 0, [](std::uint64_t) { return 0u; }),
      std::invalid_argument);
  EXPECT_THROW(rt::DigestPartitionedSource(trace, 2, nullptr),
               std::invalid_argument);
  EXPECT_THROW(
      rt::DigestPartitionedSource(trace, 2,
                                  [](std::uint64_t) { return 7u; }),
      std::out_of_range);
}

TEST(StreamServer, StatsAccountRegisterFootprint) {
  const auto ds = tr::Generate(tr::PeerRushSpec(4, 3));
  const auto offline = tr::ExtractSeqFeatures(ds.flows);
  const auto lowered = Build16DimModel(offline.x, offline.size(), 8);
  rt::StreamServerOptions opts;
  opts.num_shards = 2;
  opts.flows_per_shard = 256;
  opts.feature = rt::FeatureKind::kSeq;
  rt::StreamServer server(lowered, opts);

  const auto stats = server.Stats();
  const auto spec = rt::OnlineFlowStateSpec(rt::FeatureKind::kSeq);
  EXPECT_EQ(stats.stateful_bits_per_flow, spec.BitsPerFlow());
  EXPECT_EQ(stats.flow_table_sram_bits,
            2 * pegasus::dataplane::FlowTableSramBits(spec.BitsPerFlow(),
                                                      256));
  // The raw family additionally carries the 8x60-byte window.
  EXPECT_GT(rt::OnlineFlowStateSpec(rt::FeatureKind::kRaw).BitsPerFlow(),
            spec.BitsPerFlow());
}

// ---------------------------------------------------------------------------
// Flow churn at eviction pressure + CPU pinning (ISSUE 7 acceptance
// criteria): per-flow decisions stay bit-identical between single- and
// multi-threaded serving — including across a mid-stream model swap — when
// the table is overloaded, evicting continuously, and the dataplane
// threads are pinned.
// ---------------------------------------------------------------------------

namespace {

tr::ChurnTrace SmallChurn(std::size_t packets = 60'000) {
  tr::ChurnSpec spec;
  spec.live_flows = 512;
  spec.packets = packets;
  spec.scan_every = 10'000;
  spec.scan_burst = 256;
  spec.flood_every = 25'000;
  spec.flood_burst = 1'024;
  return tr::MaterializeChurn(spec);
}

std::vector<rt::StreamDecision> SortPerFlow(
    std::vector<rt::StreamDecision> decisions) {
  std::sort(decisions.begin(), decisions.end(),
            [](const rt::StreamDecision& a, const rt::StreamDecision& b) {
              return std::tie(a.flow, a.index) < std::tie(b.flow, b.index);
            });
  return decisions;
}

}  // namespace

TEST(StreamServer, ChurnMtMatchesStUnderEvictionWithPinning) {
  const auto churn = SmallChurn();
  const auto ds = tr::Generate(tr::PeerRushSpec(6, 70));
  const auto offline = tr::ExtractStatFeatures(ds.flows);
  const auto lowered = Build16DimModel(offline.x, offline.size(), 71);

  auto serve = [&](bool mt, rt::CpuPinPolicy pin) {
    rt::StreamServerOptions opts;
    opts.num_shards = 4;
    opts.flows_per_shard = 64;  // far under the 512-flow working set
    opts.max_probe = 4;
    opts.feature = rt::FeatureKind::kStat;
    opts.multithreaded = mt;
    opts.pin_policy = pin;
    rt::StreamServer server(lowered, opts);
    auto decisions = SortPerFlow(server.Serve(churn.trace));
    const auto stats = server.Stats();
    EXPECT_GT(stats.table.evictions, 1'000u) << "churn must stress eviction";
    EXPECT_EQ(stats.packets, churn.trace.size());
    return decisions;
  };

  const auto st = serve(false, rt::CpuPinPolicy::kNone);
  const auto mt = serve(true, rt::CpuPinPolicy::kCompact);
  ASSERT_EQ(st.size(), mt.size());
  for (std::size_t i = 0; i < st.size(); ++i) {
    ASSERT_EQ(st[i].flow, mt[i].flow) << "decision " << i;
    ASSERT_EQ(st[i].index, mt[i].index) << "decision " << i;
    ASSERT_EQ(st[i].predicted, mt[i].predicted) << "decision " << i;
    ASSERT_EQ(st[i].score, mt[i].score) << "decision " << i;
  }
  // Scatter pinning is just a different placement: same decisions again.
  const auto scattered = serve(true, rt::CpuPinPolicy::kScatter);
  ASSERT_EQ(scattered.size(), st.size());
  for (std::size_t i = 0; i < st.size(); ++i) {
    ASSERT_EQ(scattered[i].predicted, st[i].predicted) << "decision " << i;
  }
}

TEST(StreamServer, ChurnLayoutsAndEvictionPoliciesDecideConsistently) {
  const auto churn = SmallChurn(30'000);
  const auto ds = tr::Generate(tr::PeerRushSpec(6, 72));
  const auto offline = tr::ExtractStatFeatures(ds.flows);
  const auto lowered = Build16DimModel(offline.x, offline.size(), 73);

  auto serve = [&](rt::FlowTableLayout layout, rt::FlowTableEviction ev) {
    rt::StreamServerOptions opts;
    opts.num_shards = 2;
    opts.flows_per_shard = 64;
    opts.max_probe = 4;
    opts.feature = rt::FeatureKind::kStat;
    opts.table_layout = layout;
    opts.table_eviction = ev;
    rt::StreamServer server(lowered, opts);
    auto decisions = server.Serve(churn.trace);  // ST: deterministic order
    const auto stats = server.Stats();
    EXPECT_GT(stats.table.evictions, 0u);
    return std::pair{std::move(decisions), stats};
  };

  // The layout is a physical choice only: bit-identical decisions AND
  // bit-identical table counters (hits/misses/evictions/probe histogram),
  // for either eviction policy.
  for (const auto ev : {rt::FlowTableEviction::kLru,
                        rt::FlowTableEviction::kSecondChance}) {
    const auto [split, split_stats] = serve(rt::FlowTableLayout::kSplit, ev);
    const auto [inter, inter_stats] =
        serve(rt::FlowTableLayout::kInterleaved, ev);
    ASSERT_EQ(split.size(), inter.size());
    for (std::size_t i = 0; i < split.size(); ++i) {
      ASSERT_EQ(split[i].flow, inter[i].flow) << "decision " << i;
      ASSERT_EQ(split[i].index, inter[i].index) << "decision " << i;
      ASSERT_EQ(split[i].predicted, inter[i].predicted) << "decision " << i;
    }
    EXPECT_EQ(split_stats.table.hits, inter_stats.table.hits);
    EXPECT_EQ(split_stats.table.misses, inter_stats.table.misses);
    EXPECT_EQ(split_stats.table.evictions, inter_stats.table.evictions);
    EXPECT_EQ(split_stats.table.probes, inter_stats.table.probes);
    EXPECT_EQ(split_stats.table.probe_hist, inter_stats.table.probe_hist);
  }
}

TEST(StreamServer, ChurnMtMatchesStAcrossMidStreamSwapWithPinning) {
  const auto churn = SmallChurn(40'000);
  const auto ds = tr::Generate(tr::PeerRushSpec(6, 74));
  const auto offline = tr::ExtractStatFeatures(ds.flows);
  const auto v1 = Build16DimModel(offline.x, offline.size(), 75);
  const auto v2 = Build16DimModel(offline.x, offline.size(), 76);

  auto serve = [&](bool mt) {
    rt::StreamServerOptions opts;
    opts.num_shards = 4;
    opts.flows_per_shard = 64;
    opts.max_probe = 4;
    opts.feature = rt::FeatureKind::kStat;
    opts.multithreaded = mt;
    opts.pin_policy = mt ? rt::CpuPinPolicy::kCompact : rt::CpuPinPolicy::kNone;
    rt::StreamServer server(v1, opts);
    auto run = ev::ServeTraceWithSwap(
        server, churn.trace, churn.trace.size() / 2,
        std::shared_ptr<const rt::LoweredModel>(std::shared_ptr<void>{}, &v2),
        2);
    EXPECT_EQ(run.stats.active_version, 2u);
    EXPECT_GT(run.stats.table.evictions, 0u);
    return SortPerFlow(std::move(run.decisions));
  };

  const auto st = serve(false);
  const auto mt = serve(true);
  ASSERT_EQ(st.size(), mt.size());
  for (std::size_t i = 0; i < st.size(); ++i) {
    ASSERT_EQ(st[i].flow, mt[i].flow) << "decision " << i;
    ASSERT_EQ(st[i].index, mt[i].index) << "decision " << i;
    ASSERT_EQ(st[i].predicted, mt[i].predicted) << "decision " << i;
    ASSERT_EQ(st[i].score, mt[i].score) << "decision " << i;
  }
}

TEST(StreamServer, PinningOptionsValidateAtConstruction) {
  const auto ds = tr::Generate(tr::PeerRushSpec(4, 77));
  const auto offline = tr::ExtractStatFeatures(ds.flows);
  const auto lowered = Build16DimModel(offline.x, offline.size(), 78);

  rt::StreamServerOptions opts;
  opts.feature = rt::FeatureKind::kStat;
  opts.pin_policy = rt::CpuPinPolicy::kExplicit;  // empty worker_cpus
  EXPECT_THROW(rt::StreamServer(lowered, opts), std::invalid_argument);
  opts.worker_cpus = {1 << 20};  // no such CPU
  EXPECT_THROW(rt::StreamServer(lowered, opts), std::invalid_argument);
  // A valid explicit plan constructs and serves.
  opts.worker_cpus = {0};
  opts.ingest_cpus = {0};
  rt::StreamServer server(lowered, opts);
  const auto churn = SmallChurn(5'000);
  const auto decisions = server.Serve(churn.trace);
  EXPECT_EQ(decisions.size(), server.Stats().decisions);
}

// ---------------------------------------------------------------------------
// O(delta) hot swap (SwapModelDelta): publishing the planner's entry
// patches against a clone of the serving model must be decision-identical
// to a full SwapModel of the freshly lowered target — single- and
// multi-threaded — and must keep the transactional rollback guarantee.
// ---------------------------------------------------------------------------

namespace ctrl = pegasus::control;
namespace comp = pegasus::compiler;
namespace dp = pegasus::dataplane;

namespace {

struct DeltaFixture {
  comp::VersionedModel v1, v2;
  std::vector<dp::TablePatch> patches;
  std::size_t plan_bytes = 0;
};

/// Two compiles of the same 16-dim program over the same training data,
/// differing only in §4.4 output refinement: identical tree geometry and
/// quantization, moved leaf output words — a pure entry-delta plan. The
/// head map is quadratic so refinement genuinely moves outputs (for a
/// linear map it is a no-op).
DeltaFixture BuildDeltaFixture(std::span<const float> train_x,
                               std::size_t n) {
  auto build = [] {
    core::ProgramBuilder b(16);
    auto segs = b.Partition(b.input(), 2, 2);
    std::mt19937_64 rng(91);
    std::uniform_real_distribution<float> w(-0.05f, 0.05f);
    std::vector<core::ValueId> maps;
    for (auto seg : segs) {
      std::vector<float> weights(2 * 3);
      for (float& v : weights) v = w(rng);
      maps.push_back(
          b.Map(seg, core::MakeLinear(std::move(weights), 2, 3, {}), 32));
    }
    auto sum = b.SumReduce(std::span<const core::ValueId>(maps));
    core::MapFunction quad;
    quad.name = "quad_head";
    quad.in_dim = 3;
    quad.out_dim = 3;
    quad.fn = [](std::span<const float> x) {
      return std::vector<float>{x[0] * x[0] / 16.0f, x[1] * x[1] / 16.0f,
                                x[2] * x[2] / 16.0f};
    };
    return b.Finish(b.Map(sum, std::move(quad), 64));
  };
  core::CompileOptions with;
  core::CompileOptions without;
  without.refine_outputs = false;
  DeltaFixture fx;
  fx.v1 = comp::CompileVersioned(build(), train_x, n, with);
  fx.v2 = comp::CompileVersioned(build(), train_x, n, without);
  const auto plan = ctrl::PlanUpdate(fx.v1, fx.v2);
  EXPECT_FALSE(plan.structure_changed);
  EXPECT_GT(plan.entry_delta, 0u);
  EXPECT_EQ(plan.reseal, 0u);
  fx.patches = ctrl::CollectPatches(plan);
  fx.plan_bytes = plan.total_bytes_to_push;
  return fx;
}

std::shared_ptr<const rt::LoweredModel> Alias(const rt::LoweredModel& m) {
  return std::shared_ptr<const rt::LoweredModel>(std::shared_ptr<void>{},
                                                 &m);
}

rt::StreamServerOptions DeltaSwapOptions(std::size_t shards, bool mt) {
  rt::StreamServerOptions opts;
  opts.num_shards = shards;
  opts.flows_per_shard = 1 << 10;
  opts.batch_size = 32;
  opts.feature = rt::FeatureKind::kSeq;
  opts.multithreaded = mt;
  return opts;
}

void SortDecisions(std::vector<rt::StreamDecision>& v) {
  std::sort(v.begin(), v.end(),
            [](const rt::StreamDecision& a, const rt::StreamDecision& b) {
              return std::tie(a.flow, a.index) < std::tie(b.flow, b.index);
            });
}

}  // namespace

TEST(StreamServerDelta, DeltaSwapMatchesFullSwapDecisionForDecision) {
  const auto ds = tr::Generate(tr::PeerRushSpec(8, 47));
  const auto offline = tr::ExtractSeqFeatures(ds.flows, EveryPacket());
  const auto fx = BuildDeltaFixture(offline.x, offline.size());
  const auto trace = tr::MergeTrace(ds.flows);
  const std::size_t swap_at = trace.size() / 2;

  // Reference: full SwapModel of the freshly lowered target (ST, 1 shard).
  rt::StreamServer full(Alias(*fx.v1.lowered), DeltaSwapOptions(1, false));
  auto full_run =
      ev::ServeTraceWithSwap(full, trace, swap_at, Alias(*fx.v2.lowered), 2);
  SortDecisions(full_run.decisions);
  std::size_t post_swap = 0;
  for (const auto& d : full_run.decisions) post_swap += d.version == 2;
  ASSERT_GT(post_swap, 0u) << "swap point must split the decision stream";

  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    for (const bool mt : {false, true}) {
      rt::StreamServer server(Alias(*fx.v1.lowered),
                              DeltaSwapOptions(shards, mt));
      auto run =
          ev::ServeTraceWithDeltaSwap(server, trace, swap_at, fx.patches, 2);
      EXPECT_EQ(run.stats.active_version, 2u);
      EXPECT_EQ(run.stats.swaps, shards)
          << "delta swap still rebuilds one engine per shard";
      EXPECT_EQ(run.stats.delta_swaps, 1u);
      EXPECT_EQ(run.stats.delta_bytes_pushed, fx.plan_bytes)
          << "served delta cost must equal the plan's byte estimate";
      EXPECT_GT(run.stats.deltas_applied, 0u);
      EXPECT_GT(run.stats.leaf_words_patched, 0u);
      EXPECT_GT(run.stats.reseals_avoided, 0u);
      SortDecisions(run.decisions);
      ASSERT_EQ(run.decisions.size(), full_run.decisions.size())
          << shards << " shards, mt=" << mt;
      for (std::size_t i = 0; i < run.decisions.size(); ++i) {
        ASSERT_EQ(run.decisions[i].flow, full_run.decisions[i].flow);
        ASSERT_EQ(run.decisions[i].index, full_run.decisions[i].index);
        ASSERT_EQ(run.decisions[i].predicted, full_run.decisions[i].predicted)
            << "flow " << run.decisions[i].flow << " pkt "
            << run.decisions[i].index << " (" << shards << " shards, mt="
            << mt << ")";
        ASSERT_EQ(run.decisions[i].score, full_run.decisions[i].score);
        ASSERT_EQ(run.decisions[i].version, full_run.decisions[i].version);
      }
    }
  }
}

TEST(StreamServerDelta, RejectsStaleVersionsAndUnknownTables) {
  const auto ds = tr::Generate(tr::PeerRushSpec(4, 48));
  const auto offline = tr::ExtractSeqFeatures(ds.flows);
  const auto fx = BuildDeltaFixture(offline.x, offline.size());

  rt::StreamServer server(Alias(*fx.v1.lowered), DeltaSwapOptions(2, false));
  EXPECT_THROW(server.SwapModelDelta(fx.patches, 1), std::invalid_argument);
  EXPECT_THROW(server.SwapModelDelta(fx.patches, 0), std::invalid_argument);
  std::vector<dp::TablePatch> unknown{{"map_999", {}}};
  EXPECT_THROW(server.SwapModelDelta(unknown, 2), std::invalid_argument);
  EXPECT_EQ(server.active_version(), 1u);
  EXPECT_EQ(server.Stats().delta_swaps, 0u);
  // The real patches still apply after the rejections.
  server.SwapModelDelta(fx.patches, 2);
  EXPECT_EQ(server.active_version(), 2u);
  EXPECT_EQ(server.Stats().delta_swaps, 1u);
}

TEST(StreamServerDelta, PublishFailureRollsBackAndRetries) {
  const auto ds = tr::Generate(tr::PeerRushSpec(8, 49));
  const auto offline = tr::ExtractSeqFeatures(ds.flows, EveryPacket());
  const auto fx = BuildDeltaFixture(offline.x, offline.size());
  const auto trace = tr::MergeTrace(ds.flows);
  const std::size_t half = trace.size() / 2;

  // Single-threaded: fail on the third shard apply — shards 0 and 1 roll
  // back, the patched clone is discarded, the old version keeps serving.
  rt::StreamServer server(Alias(*fx.v1.lowered), DeltaSwapOptions(4, false));
  for (std::size_t i = 0; i < half; ++i) server.Push(trace[i]);
  {
    rt::FaultPlan plan;
    plan.Arm(rt::FaultSite::kSwapPublishFail, /*first=*/2, 1, 1);
    rt::FaultScope scope(plan);
    EXPECT_THROW(server.SwapModelDelta(fx.patches, 2), rt::SwapError);
    EXPECT_EQ(server.active_version(), 1u);
    EXPECT_EQ(server.Stats().delta_swaps, 0u)
        << "a rolled-back delta swap must not count as published";
    server.SwapModelDelta(fx.patches, 2);
    EXPECT_EQ(server.active_version(), 2u);
  }
  for (std::size_t i = half; i < trace.size(); ++i) server.Push(trace[i]);
  server.Flush();
  auto got = server.TakeDecisions();
  SortDecisions(got);
  EXPECT_EQ(server.Stats().delta_swaps, 1u);

  // Decisions match a clean delta run with the swap at the same boundary:
  // the failed attempt was hitless.
  rt::StreamServer clean(Alias(*fx.v1.lowered), DeltaSwapOptions(4, false));
  auto clean_run =
      ev::ServeTraceWithDeltaSwap(clean, trace, half, fx.patches, 2);
  SortDecisions(clean_run.decisions);
  ASSERT_EQ(got.size(), clean_run.decisions.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].predicted, clean_run.decisions[i].predicted);
    EXPECT_EQ(got[i].version, clean_run.decisions[i].version);
  }

  // Multi-threaded: the probe build fails before anything reaches a ring.
  rt::StreamServer mt(Alias(*fx.v1.lowered), DeltaSwapOptions(2, true));
  mt.Start();
  for (std::size_t i = 0; i < half; ++i) mt.Push(trace[i]);
  {
    rt::FaultPlan plan;
    plan.Arm(rt::FaultSite::kSwapPublishFail, 0, 1, 1);
    rt::FaultScope scope(plan);
    EXPECT_THROW(mt.SwapModelDelta(fx.patches, 2), rt::SwapError);
    EXPECT_EQ(mt.active_version(), 1u);
    mt.SwapModelDelta(fx.patches, 2);
    EXPECT_EQ(mt.active_version(), 2u);
  }
  for (std::size_t i = half; i < trace.size(); ++i) mt.Push(trace[i]);
  mt.Stop();
  const auto stats = mt.Stats();
  EXPECT_EQ(stats.active_version, 2u);
  EXPECT_EQ(stats.swaps, 2u) << "the failed probe never reached a ring";
  EXPECT_EQ(stats.delta_swaps, 1u);
}
