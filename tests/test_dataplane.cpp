#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <set>
#include <utility>

#include "dataplane/flow_key.hpp"
#include "dataplane/phv.hpp"
#include "dataplane/pipeline.hpp"
#include "dataplane/registers.hpp"
#include "dataplane/resources.hpp"
#include "dataplane/table.hpp"

namespace dp = pegasus::dataplane;

// ---------------------------------------------------------------- PHV

TEST(Phv, LayoutTracksWidthsAndTotal) {
  dp::PhvLayout layout;
  const auto a = layout.AddField("a", 8);
  const auto b = layout.AddField("b", 16);
  EXPECT_EQ(layout.TotalBits(), 24u);
  EXPECT_EQ(layout.width(a), 8);
  EXPECT_EQ(layout.Find("b"), b);
  EXPECT_THROW(layout.Find("c"), std::out_of_range);
  EXPECT_THROW(layout.AddField("a", 8), std::invalid_argument);
  EXPECT_THROW(layout.AddField("w", 0), std::invalid_argument);
}

TEST(Phv, GetSetRoundTrip) {
  dp::PhvLayout layout;
  const auto f = layout.AddField("x", 16);
  dp::Phv phv(layout);
  EXPECT_EQ(phv.Get(f), 0);
  phv.Set(f, -42);
  EXPECT_EQ(phv.Get(f), -42);
}

// --------------------------------------------------------------- tables

namespace {

std::unique_ptr<dp::MatchActionTable> MakeExactTable(dp::FieldId key,
                                                     dp::FieldId out) {
  std::vector<dp::ActionOp> prog{{dp::ActionOp::Kind::kSetFromData, out, 0,
                                  0, -1}};
  auto t = std::make_unique<dp::MatchActionTable>(
      "t", dp::MatchKind::kExact, std::vector<dp::FieldId>{key},
      std::vector<int>{8}, prog, 16);
  return t;
}

}  // namespace

TEST(Table, ExactMatchHitAndMiss) {
  dp::PhvLayout layout;
  const auto key = layout.AddField("k", 8);
  const auto out = layout.AddField("o", 16);
  auto t = MakeExactTable(key, out);
  t->AddEntry({.exact_key = {5}, .action_data = {111}});
  t->AddEntry({.exact_key = {9}, .action_data = {222}});

  dp::Phv phv(layout);
  phv.Set(key, 5);
  EXPECT_TRUE(t->Apply(phv));
  EXPECT_EQ(phv.Get(out), 111);
  phv.Set(key, 7);
  EXPECT_FALSE(t->Apply(phv));
  EXPECT_EQ(phv.Get(out), 111);  // unchanged on miss
}

TEST(Table, MissProgramRuns) {
  dp::PhvLayout layout;
  const auto key = layout.AddField("k", 8);
  const auto out = layout.AddField("o", 16);
  auto t = MakeExactTable(key, out);
  t->SetMissProgram({{dp::ActionOp::Kind::kSetConst, out, 0, -7, -1}}, {});
  dp::Phv phv(layout);
  phv.Set(key, 1);
  EXPECT_FALSE(t->Apply(phv));
  EXPECT_EQ(phv.Get(out), -7);
}

TEST(Table, TernaryPriorityOrder) {
  dp::PhvLayout layout;
  const auto key = layout.AddField("k", 8);
  const auto out = layout.AddField("o", 16);
  std::vector<dp::ActionOp> prog{{dp::ActionOp::Kind::kSetFromData, out, 0,
                                  0, -1}};
  dp::MatchActionTable t("t", dp::MatchKind::kTernary, {key}, {8}, prog, 16);
  // Catch-all (low priority) vs exact 5 (high priority).
  t.AddEntry({.ternary = {dp::TernaryRule{0, 0}}, .priority = 0, .action_data = {1}});
  t.AddEntry({.ternary = {dp::TernaryRule{5, 0xff}}, .priority = 10, .action_data = {2}});
  dp::Phv phv(layout);
  phv.Set(key, 5);
  t.Apply(phv);
  EXPECT_EQ(phv.Get(out), 2);
  phv.Set(key, 6);
  t.Apply(phv);
  EXPECT_EQ(phv.Get(out), 1);
}

TEST(Table, SaturatingAddAction) {
  dp::PhvLayout layout;
  const auto key = layout.AddField("k", 8);
  const auto acc = layout.AddField("acc", 10);
  std::vector<dp::ActionOp> prog{{dp::ActionOp::Kind::kAddFromData, acc, 0,
                                  0, 1023}};
  dp::MatchActionTable t("t", dp::MatchKind::kExact, {key}, {8}, prog, 16);
  t.AddEntry({.exact_key = {1}, .action_data = {1000}});
  dp::Phv phv(layout);
  phv.Set(key, 1);
  phv.Set(acc, 100);
  t.Apply(phv);
  EXPECT_EQ(phv.Get(acc), 1023);  // 1100 saturates to 1023
}

TEST(Table, ResourceAccounting) {
  dp::PhvLayout layout;
  const auto key = layout.AddField("k", 10);
  const auto out = layout.AddField("o", 16);
  std::vector<dp::ActionOp> prog{{dp::ActionOp::Kind::kSetFromData, out, 0,
                                  0, -1}};
  dp::MatchActionTable ternary("t", dp::MatchKind::kTernary, {key}, {10},
                               prog, 16);
  ternary.AddEntry({.ternary = {dp::TernaryRule{0, 0}}, .action_data = {1, 2}});
  ternary.AddEntry({.ternary = {dp::TernaryRule{1, 1}}, .action_data = {3, 4}});
  EXPECT_EQ(ternary.KeyBits(), 10u);
  EXPECT_EQ(ternary.ActionDataBits(), 32u);           // 2 words x 16 b
  EXPECT_EQ(ternary.TcamBits(), 2u * 2u * 10u);       // 2 entries
  EXPECT_EQ(ternary.SramBits(), 2u * 32u);            // data only

  dp::MatchActionTable exact("e", dp::MatchKind::kExact, {key}, {10}, prog,
                             16);
  exact.AddEntry({.exact_key = {3}, .action_data = {1}});
  EXPECT_EQ(exact.TcamBits(), 0u);
  EXPECT_EQ(exact.SramBits(), 10u + 16u);
}

TEST(Table, ArityValidation) {
  dp::PhvLayout layout;
  const auto key = layout.AddField("k", 8);
  auto t = MakeExactTable(key, key);
  EXPECT_THROW(t->AddEntry({.exact_key = {1, 2}}), std::invalid_argument);
}

// -------------------------------------------------------------- pipeline

TEST(Pipeline, PlacementRespectsMinStageAndCapacity) {
  dp::SwitchModel sw;
  sw.num_stages = 2;
  sw.action_bus_bits_per_stage = 16;  // fits exactly one 16-bit table
  dp::Pipeline pipe(sw);
  dp::PhvLayout layout;
  const auto key = layout.AddField("k", 8);
  const auto out = layout.AddField("o", 16);

  auto t1 = MakeExactTable(key, out);
  t1->AddEntry({.exact_key = {1}, .action_data = {10}});
  auto t2 = MakeExactTable(key, out);
  t2->AddEntry({.exact_key = {1}, .action_data = {20}});
  EXPECT_EQ(pipe.PlaceTable(std::move(t1), 0), 0u);
  // Second table exceeds stage 0's action bus -> spills to stage 1.
  EXPECT_EQ(pipe.PlaceTable(std::move(t2), 0), 1u);

  auto t3 = MakeExactTable(key, out);
  t3->AddEntry({.exact_key = {1}, .action_data = {30}});
  EXPECT_THROW(pipe.PlaceTable(std::move(t3), 0), dp::PlacementError);
}

TEST(Pipeline, ProcessRunsStagesInOrder) {
  dp::Pipeline pipe;
  dp::PhvLayout layout;
  const auto key = layout.AddField("k", 8);
  const auto out = layout.AddField("o", 16);
  // Stage 0 writes 1; stage 1 adds 2 (reads the stage-0 result).
  auto t1 = MakeExactTable(key, out);
  t1->AddEntry({.exact_key = {1}, .action_data = {100}});
  std::vector<dp::ActionOp> add_prog{{dp::ActionOp::Kind::kAddConst, out, 0,
                                      23, -1}};
  auto t2 = std::make_unique<dp::MatchActionTable>(
      "add", dp::MatchKind::kExact, std::vector<dp::FieldId>{key},
      std::vector<int>{8}, add_prog, 16);
  t2->AddEntry({.exact_key = {1}});
  pipe.PlaceTable(std::move(t1), 0);
  pipe.PlaceTable(std::move(t2), 1);

  dp::Phv phv(layout);
  phv.Set(key, 1);
  EXPECT_EQ(pipe.Process(phv), 2u);
  EXPECT_EQ(phv.Get(out), 123);
}

TEST(Pipeline, ReportAggregates) {
  dp::Pipeline pipe;
  dp::PhvLayout layout;
  const auto key = layout.AddField("k", 8);
  const auto out = layout.AddField("o", 16);
  auto t = MakeExactTable(key, out);
  t->AddEntry({.exact_key = {1}, .action_data = {10}});
  pipe.PlaceTable(std::move(t), 3);
  pipe.DeclareFlowState(44);
  const auto rep = pipe.Report();
  EXPECT_EQ(rep.stages_used, 1u);
  EXPECT_EQ(rep.sram_bits, 8u + 16u);
  EXPECT_EQ(rep.stateful_bits_per_flow, 44u);
  EXPECT_GT(rep.SramPct(pipe.switch_model()), 0.0);
}

// -------------------------------------------------------------- registers

TEST(Registers, SaturateToWidth) {
  dp::RegisterArray arr("r", 8, 16);
  dp::FlowKey key{123};
  arr.Write(key, 1000);
  EXPECT_EQ(arr.Read(key), 127);
  arr.Write(key, -1000);
  EXPECT_EQ(arr.Read(key), -128);
  EXPECT_EQ(arr.SramBits(), 16u * 8u);
}

TEST(Registers, FlowsHashToSlots) {
  dp::RegisterArray arr("r", 16, 8);
  dp::FlowKey a{1}, b{9};  // collide mod 8
  arr.Write(a, 5);
  EXPECT_EQ(arr.Read(b), 5);  // hash collision is visible, as on hardware
  EXPECT_EQ(arr.SlotFor(a), arr.SlotFor(b));
}

// -------------------------------------------------------------- resources

TEST(Resources, PerFlowSramRoundsAndOverheads) {
  // 28 bits -> 32-bit slot + 16-bit digest, / 0.85 occupancy.
  const std::size_t bits = dp::PerFlowSramBits(28, 1'000'000);
  EXPECT_EQ(bits, static_cast<std::size_t>((32 + 16) * 1'000'000 / 0.85));
  // Monotone in bits/flow.
  EXPECT_LT(dp::PerFlowSramBits(28, 1000), dp::PerFlowSramBits(44, 1000));
  EXPECT_LT(dp::PerFlowSramBits(44, 1000), dp::PerFlowSramBits(72, 1000));
}

TEST(Resources, SwitchTotalsMatchPaperConstants) {
  dp::SwitchModel sw;
  EXPECT_EQ(sw.num_stages, 20u);
  EXPECT_EQ(sw.TotalSramBits(), 20u * 10u * 1024u * 1024u);
  EXPECT_EQ(sw.TotalTcamBits(), 20u * 512u * 1024u);
  EXPECT_EQ(sw.phv_bits, 4096u);
}

// -------------------------------------------------------------- flow keys

TEST(FlowKey, DigestIsDirectionSymmetric) {
  dp::FiveTuple fwd;
  fwd.version = 4;
  fwd.proto = dp::kProtoTcp;
  fwd.src = {10, 0, 0, 1};
  fwd.dst = {172, 16, 0, 2};
  fwd.src_port = 31337;
  fwd.dst_port = 443;
  dp::FiveTuple rev = fwd;
  std::swap(rev.src, rev.dst);
  std::swap(rev.src_port, rev.dst_port);

  EXPECT_EQ(dp::Canonical(fwd), dp::Canonical(rev));
  EXPECT_EQ(dp::Canonical(dp::Canonical(fwd)), dp::Canonical(fwd));
  EXPECT_EQ(dp::DigestTuple(fwd).digest, dp::DigestTuple(rev).digest);

  // Same addresses, ports swapped only — still one conversation.
  dp::FiveTuple hairpin = fwd;
  hairpin.dst = fwd.src;
  dp::FiveTuple hairpin_rev = hairpin;
  std::swap(hairpin_rev.src_port, hairpin_rev.dst_port);
  EXPECT_EQ(dp::DigestTuple(hairpin).digest,
            dp::DigestTuple(hairpin_rev).digest);
}

TEST(FlowKey, DistinctTuplesGetDistinctDigests) {
  // 20k random tuples (both IP versions, both protocols): with 64-bit
  // digests a single collision would be a ~1e-11 event — treat it as a
  // mixing bug. Also pins that version/proto/port/address all feed the
  // digest.
  std::mt19937_64 rng(2718);
  std::set<std::uint64_t> seen;
  std::size_t tuples = 0;
  for (int i = 0; i < 10000; ++i) {
    dp::FiveTuple t;
    t.version = (rng() & 1) ? 4 : 6;
    t.proto = (rng() & 1) ? dp::kProtoTcp : dp::kProtoUdp;
    const std::size_t addr_bytes = t.version == 4 ? 4 : 16;
    for (std::size_t b = 0; b < addr_bytes; ++b) {
      t.src[b] = static_cast<std::uint8_t>(rng());
      t.dst[b] = static_cast<std::uint8_t>(rng());
    }
    t.src_port = static_cast<std::uint16_t>(rng());
    t.dst_port = static_cast<std::uint16_t>(rng());
    seen.insert(dp::DigestTuple(t).digest);
    ++tuples;

    // Single-field perturbations must move the digest.
    dp::FiveTuple u = t;
    u.src_port ^= 1;
    seen.insert(dp::DigestTuple(u).digest);
    ++tuples;
  }
  EXPECT_EQ(seen.size(), tuples);

  // A v4 tuple and a v6 tuple with identical leading bytes differ.
  dp::FiveTuple v4;
  v4.src = {1, 2, 3, 4};
  v4.dst = {5, 6, 7, 8};
  dp::FiveTuple v6 = v4;
  v6.version = 6;
  EXPECT_NE(dp::DigestTuple(v4).digest, dp::DigestTuple(v6).digest);
}
