// Randomized end-to-end property test: generate random (but valid)
// primitive programs, fuse them, compile them against random training
// data, lower them onto the simulated switch, and assert the invariants
// that hold for EVERY Pegasus program:
//
//   1. FuseBasic never changes the reference semantics;
//   2. the lowered pipeline is bit-identical to the host fuzzy evaluator;
//   3. fuzzy outputs track the exact float outputs within a bound derived
//      from the program's Lipschitz-ish structure (loose sanity bound);
//   4. serialization round-trips the dataplane semantics.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "core/fusion.hpp"
#include "core/operators.hpp"
#include "core/tablegen.hpp"
#include "runtime/lowering.hpp"

namespace core = pegasus::core;
namespace rt = pegasus::runtime;

namespace {

/// Builds a random two-layer program: input -> partition -> per-segment
/// linear maps -> sumreduce -> elementwise nonlinearity -> FC -> output.
core::Program RandomProgram(std::mt19937_64& rng, std::size_t* in_dim_out) {
  std::uniform_int_distribution<std::size_t> seg_dist(1, 3);
  std::uniform_int_distribution<std::size_t> nseg_dist(2, 4);
  std::uniform_int_distribution<std::size_t> mid_dist(2, 4);
  std::uniform_real_distribution<float> wdist(-0.04f, 0.04f);
  const std::size_t seg = seg_dist(rng);
  const std::size_t nseg = nseg_dist(rng);
  const std::size_t in_dim = seg * nseg;
  const std::size_t mid = mid_dist(rng);
  *in_dim_out = in_dim;

  auto rand_vec = [&](std::size_t n) {
    std::vector<float> v(n);
    for (float& x : v) x = wdist(rng);
    return v;
  };

  core::ProgramBuilder b(in_dim);
  core::ValueId v = core::AppendFullyConnected(
      b, b.input(), rand_vec(in_dim * mid), in_dim, mid, rand_vec(mid), seg,
      48);
  // Random nonlinearity.
  switch (rng() % 3) {
    case 0:
      v = b.Map(v, core::MakeReLU(mid), 48);
      break;
    case 1:
      v = b.Map(v, core::MakeTanhFn(mid), 48);
      break;
    default:
      v = b.Map(v, core::MakeSigmoidFn(mid), 48);
      break;
  }
  const std::size_t out_dim = 2;
  const std::size_t seg2 = mid % 2 == 0 ? 2 : (mid % 3 == 0 ? 3 : 1);
  v = core::AppendFullyConnected(b, v, rand_vec(mid * out_dim), mid, out_dim,
                                 rand_vec(out_dim), seg2, 48);
  return b.Finish(v);
}

std::vector<float> RandomRows(std::mt19937_64& rng, std::size_t n,
                              std::size_t dim) {
  std::uniform_real_distribution<float> dist(0.0f, 255.0f);
  std::vector<float> x(n * dim);
  for (float& f : x) f = std::floor(dist(rng));
  return x;
}

}  // namespace

class RandomPrograms : public ::testing::TestWithParam<int> {};

TEST_P(RandomPrograms, AllInvariantsHold) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  std::size_t in_dim = 0;
  core::Program p = RandomProgram(rng, &in_dim);
  core::Program reference = p;

  // (1) fusion preserves reference semantics.
  core::FuseBasic(p);
  const auto train = RandomRows(rng, 1500, in_dim);
  for (int i = 0; i < 32; ++i) {
    std::span<const float> row(train.data() + i * in_dim, in_dim);
    const auto a = reference.Evaluate(row);
    const auto b = p.Evaluate(row);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t d = 0; d < a.size(); ++d) {
      ASSERT_NEAR(a[d], b[d], 1e-3f * std::max(1.0f, std::abs(a[d])));
    }
  }

  // (2) lowering is bit-exact with the host fuzzy evaluator.
  auto cm = core::CompileProgram(std::move(p), train, 1500, {});
  auto lowered = rt::Lower(cm, {});
  const auto probes = RandomRows(rng, 64, in_dim);
  double fuzzy_err = 0.0;
  for (int i = 0; i < 64; ++i) {
    std::span<const float> row(probes.data() + i * in_dim, in_dim);
    ASSERT_EQ(cm.EvaluateRaw(row), lowered.InferRaw(row)) << "probe " << i;
    // (3) loose tracking bound: small weights + bounded input keep outputs
    // within a few units, and fuzzy cells are coarse but finite.
    const auto exact = reference.Evaluate(row);
    const auto fuzzy = cm.Evaluate(row);
    for (std::size_t d = 0; d < exact.size(); ++d) {
      fuzzy_err = std::max(
          fuzzy_err, std::abs(double{exact[d]} - fuzzy[d]));
    }
  }
  EXPECT_LT(fuzzy_err, 4.0);

  // (4) serialization round-trip.
  std::stringstream buf;
  cm.Save(buf);
  const auto loaded = core::CompiledModel::Load(buf);
  for (int i = 0; i < 16; ++i) {
    std::span<const float> row(probes.data() + i * in_dim, in_dim);
    ASSERT_EQ(cm.EvaluateRaw(row), loaded.EvaluateRaw(row));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms, ::testing::Range(0, 12));
