#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "core/operators.hpp"
#include "core/stream_io.hpp"
#include "core/tablegen.hpp"
#include "runtime/inference_engine.hpp"
#include "runtime/lowering.hpp"

namespace core = pegasus::core;
namespace rt = pegasus::runtime;

namespace {

core::CompiledModel BuildModel(std::uint64_t seed) {
  core::ProgramBuilder b(4);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> wdist(-0.05f, 0.05f);
  std::vector<float> w(4 * 3);
  for (float& v : w) v = wdist(rng);
  core::ValueId v = core::AppendFullyConnected(b, b.input(), w, 4, 3,
                                               {}, 2, 32);
  v = b.Map(v, core::MakeReLU(3), 32);
  std::uniform_real_distribution<float> fdist(0.0f, 255.0f);
  std::vector<float> x(1500 * 4);
  for (float& f : x) f = std::floor(fdist(rng));
  return core::CompileProgram(b.Finish(v), x, 1500, {});
}

}  // namespace

TEST(Serialize, RoundTripPreservesRawEvaluation) {
  const auto model = BuildModel(1);
  std::stringstream buf;
  model.Save(buf);
  const auto loaded = core::CompiledModel::Load(buf);

  std::mt19937_64 rng(2);
  std::uniform_real_distribution<float> dist(0.0f, 255.0f);
  for (int i = 0; i < 200; ++i) {
    const std::vector<float> x{std::floor(dist(rng)), std::floor(dist(rng)),
                               std::floor(dist(rng)), std::floor(dist(rng))};
    EXPECT_EQ(model.EvaluateRaw(x), loaded.EvaluateRaw(x));
    EXPECT_EQ(model.Evaluate(x), loaded.Evaluate(x));
  }
}

TEST(Serialize, LoadedModelLowersIdentically) {
  const auto model = BuildModel(3);
  std::stringstream buf;
  model.Save(buf);
  const auto loaded = core::CompiledModel::Load(buf);

  auto lowered_orig = rt::Lower(model, {});
  auto lowered_loaded = rt::Lower(loaded, {});
  EXPECT_EQ(lowered_orig.NumTables(), lowered_loaded.NumTables());
  const auto rep_a = lowered_orig.Report();
  const auto rep_b = lowered_loaded.Report();
  EXPECT_EQ(rep_a.sram_bits, rep_b.sram_bits);
  EXPECT_EQ(rep_a.tcam_bits, rep_b.tcam_bits);

  std::mt19937_64 rng(4);
  std::uniform_real_distribution<float> dist(0.0f, 255.0f);
  for (int i = 0; i < 100; ++i) {
    const std::vector<float> x{std::floor(dist(rng)), std::floor(dist(rng)),
                               std::floor(dist(rng)), std::floor(dist(rng))};
    EXPECT_EQ(lowered_orig.InferRaw(x), lowered_loaded.InferRaw(x));
  }
}

TEST(Serialize, MetadataSurvives) {
  const auto model = BuildModel(5);
  std::stringstream buf;
  model.Save(buf);
  const auto loaded = core::CompiledModel::Load(buf);
  EXPECT_EQ(loaded.NumTables(), model.NumTables());
  EXPECT_EQ(loaded.TotalLeaves(), model.TotalLeaves());
  EXPECT_EQ(loaded.options().input_bits, model.options().input_bits);
  EXPECT_EQ(loaded.options().value_bits, model.options().value_bits);
  EXPECT_EQ(loaded.program().NumValues(), model.program().NumValues());
  EXPECT_EQ(loaded.quant().size(), model.quant().size());
}

TEST(Serialize, HostFunctionsAreNotSerialized) {
  const auto model = BuildModel(6);
  std::stringstream buf;
  model.Save(buf);
  const auto loaded = core::CompiledModel::Load(buf);
  // The float reference interpreter must refuse (its functions are
  // training-side artifacts).
  const std::vector<float> x{1, 2, 3, 4};
  EXPECT_THROW(loaded.program().Evaluate(x), std::logic_error);
}

TEST(Serialize, RejectsGarbageAndTruncation) {
  std::stringstream garbage("not a pegasus artifact");
  EXPECT_THROW(core::CompiledModel::Load(garbage), std::runtime_error);

  const auto model = BuildModel(7);
  std::stringstream buf;
  model.Save(buf);
  const std::string full = buf.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(core::CompiledModel::Load(truncated), std::runtime_error);
}

TEST(Serialize, RejectsAllocationBombLengthFields) {
  // A crafted payload whose value count claims ~4.3 billion entries: the
  // capped length reader must reject it as CorruptArtifactError before any
  // allocation is attempted (the old unchecked resize was a multi-GB
  // allocation driven by attacker bytes).
  const auto model = BuildModel(13);
  std::stringstream buf;
  model.Save(buf);
  std::string bytes = buf.str();
  // Header: u64 magic, u32 version, i32+i32 bit widths, u64 leaves,
  // u8 refine, double margin, i32 domain bits = 41 bytes; the program's
  // NumValues u32 is next.
  const std::size_t num_values_off = 41;
  ASSERT_GT(bytes.size(), num_values_off + 4);
  for (std::size_t i = 0; i < 4; ++i) bytes[num_values_off + i] = '\xFF';
  std::stringstream bombed(bytes);
  EXPECT_THROW(core::CompiledModel::Load(bombed),
               core::CorruptArtifactError);

  // Same contract for string lengths: stomping any 4-byte window in the
  // body must never crash or over-allocate — reject or load, nothing else.
  for (std::size_t off = num_values_off; off + 4 <= bytes.size();
       off += 7) {
    std::string mutated = buf.str();
    for (std::size_t i = 0; i < 4; ++i) mutated[off + i] = '\xFF';
    std::stringstream in(mutated);
    try {
      (void)core::CompiledModel::Load(in);
    } catch (const std::exception&) {
      // Structured rejection: CorruptArtifactError for bad lengths /
      // truncation, invalid_argument from program validation.
    }
  }
}

// The on-disk format the control plane's ModelRegistry relies on (ISSUE 4):
// a reloaded artifact must lower to a pipeline whose *batched* inference is
// bit-identical to the original's — tables, fuzzy entries and quantization
// params all survive, including tables lowered through the DirtCAM range
// fallback.
TEST(Serialize, ReloadedModelServesBitIdenticalBatchedInference) {
  const auto model = BuildModel(11);
  std::stringstream buf;
  model.Save(buf);
  const auto loaded = core::CompiledModel::Load(buf);

  // Quantization plan: per-value, per-dim formats/bias/domain all equal.
  ASSERT_EQ(loaded.quant().size(), model.quant().size());
  for (std::size_t v = 0; v < model.quant().size(); ++v) {
    ASSERT_EQ(loaded.quant()[v].size(), model.quant()[v].size());
    for (std::size_t d = 0; d < model.quant()[v].size(); ++d) {
      EXPECT_EQ(loaded.quant()[v][d].fmt, model.quant()[v][d].fmt);
      EXPECT_EQ(loaded.quant()[v][d].bias, model.quant()[v][d].bias);
      EXPECT_EQ(loaded.quant()[v][d].domain_bits,
                model.quant()[v][d].domain_bits);
    }
  }
  // Fuzzy tables: same leaf boxes and output words per table site.
  ASSERT_EQ(loaded.tables().size(), model.tables().size());
  for (std::size_t oi = 0; oi < model.tables().size(); ++oi) {
    ASSERT_EQ(loaded.tables()[oi].has_value(),
              model.tables()[oi].has_value());
    if (!model.tables()[oi]) continue;
    const auto& a = *model.tables()[oi];
    const auto& b = *loaded.tables()[oi];
    ASSERT_EQ(a.tree.NumLeaves(), b.tree.NumLeaves());
    EXPECT_EQ(a.leaf_raw, b.leaf_raw);
    for (std::size_t leaf = 0; leaf < a.tree.NumLeaves(); ++leaf) {
      EXPECT_EQ(a.tree.Box(leaf).lo, b.tree.Box(leaf).lo);
      EXPECT_EQ(a.tree.Box(leaf).hi, b.tree.Box(leaf).hi);
    }
  }

  // Lower both — once on the normal ternary path, once forcing the DirtCAM
  // range fallback — and compare whole batches through the engine.
  for (const std::size_t max_ternary : {std::size_t{4096}, std::size_t{1}}) {
    rt::LoweringOptions lopts;
    lopts.max_ternary_entries_per_table = max_ternary;
    const auto lowered_orig = rt::Lower(model, lopts);
    const auto lowered_loaded = rt::Lower(loaded, lopts);
    rt::InferenceEngine engine_orig(lowered_orig, 64);
    rt::InferenceEngine engine_loaded(lowered_loaded, 64);

    std::mt19937_64 rng(12);
    std::uniform_real_distribution<float> dist(0.0f, 255.0f);
    constexpr std::size_t kRows = 256;
    std::vector<float> batch(kRows * 4);
    for (float& f : batch) f = std::floor(dist(rng));
    std::vector<std::int64_t> raw_a(kRows * lowered_orig.OutputDim());
    std::vector<std::int64_t> raw_b(kRows * lowered_loaded.OutputDim());
    engine_orig.InferRaw(batch, kRows, raw_a);
    engine_loaded.InferRaw(batch, kRows, raw_b);
    EXPECT_EQ(raw_a, raw_b) << "max_ternary=" << max_ternary;
  }
}

TEST(Serialize, ClusterTreeRoundTrip) {
  std::mt19937_64 rng(8);
  std::uniform_real_distribution<float> dist(0.0f, 255.0f);
  std::vector<float> data(500 * 3);
  for (float& v : data) v = std::floor(dist(rng));
  auto tree = core::ClusterTree::Fit(data, 500, 3, {16, 8, 1});
  std::stringstream buf;
  tree.Save(buf);
  const auto loaded = core::ClusterTree::Load(buf);
  EXPECT_EQ(loaded.NumLeaves(), tree.NumLeaves());
  EXPECT_EQ(loaded.dim(), tree.dim());
  EXPECT_DOUBLE_EQ(loaded.fit_sse(), tree.fit_sse());
  for (int i = 0; i < 500; ++i) {
    const float x[] = {std::floor(dist(rng)), std::floor(dist(rng)),
                       std::floor(dist(rng))};
    EXPECT_EQ(tree.Lookup(x), loaded.Lookup(x));
  }
}
