#include "dataplane/resources.hpp"

namespace pegasus::dataplane {

std::size_t FlowTableSramBits(std::size_t bits_per_flow,
                              std::size_t capacity) {
  const std::size_t rounded = ((bits_per_flow + 7) / 8) * 8;
  const std::size_t slot_bits = rounded + 16;  // state + flow digest
  return slot_bits * capacity;
}

std::size_t PerFlowSramBits(std::size_t bits_per_flow, std::size_t flows) {
  const double occupancy = 0.85;
  return static_cast<std::size_t>(
      static_cast<double>(FlowTableSramBits(bits_per_flow, flows)) /
      occupancy);
}

}  // namespace pegasus::dataplane
