#include "dataplane/resources.hpp"

namespace pegasus::dataplane {

std::size_t PerFlowSramBits(std::size_t bits_per_flow, std::size_t flows) {
  // Register slots are allocated in 8-bit units (no 4-bit registers on
  // PISA), and the hash-addressed flow table needs a 16-bit digest per slot
  // plus ~15% headroom to keep collision rates acceptable.
  const std::size_t rounded = ((bits_per_flow + 7) / 8) * 8;
  const std::size_t slot_bits = rounded + 16;
  const double occupancy = 0.85;
  return static_cast<std::size_t>(
      static_cast<double>(slot_bits * flows) / occupancy);
}

}  // namespace pegasus::dataplane
