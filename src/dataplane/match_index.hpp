// Compiled bit-vector match index for ternary/range tables — the classic
// Lucent bit-vector / DCFL decomposition applied to the software TCAM.
//
// A linear TCAM scan costs O(entries) rule evaluations plus a priority
// compare per matching entry. The index instead precomputes, per key field,
// the set of entries compatible with every possible field value:
//
//   * ternary fields are decomposed into 4-bit nibble chunks; each chunk
//     owns a 16-row table of entry bitsets (row v = entries whose rule
//     accepts nibble value v). Arbitrary masks — not just prefixes — are
//     exactly representable because a ternary rule constrains each nibble
//     independently: (key & mask) == (value & mask) holds iff it holds
//     nibble-by-nibble. Chunks only cover bits some entry actually masks;
//     higher key bits cannot influence any rule and are skipped.
//   * range fields are decomposed into sorted disjoint elementary
//     intervals (boundaries = every entry's lo and hi+1); each interval
//     owns the bitset of entries whose [lo, hi] covers it. A lookup is one
//     binary search per field.
//
// Entries are pre-sorted by (priority desc, insertion order asc), so after
// ANDing the per-field bitsets the winner is simply the first set bit
// (std::countr_zero) — no per-entry priority compares survive to lookup
// time. Action data is copied into a contiguous arena in sorted order, so
// dispatching the winning action touches one cache line, not a scattered
// TableEntry.
//
// Lookup cost: sum(chunks) word-parallel ANDs over ceil(entries/64) words
// (ternary) or nk binary searches (range), independent of entry count up to
// the bitset width — near-O(1) per packet where the scan was O(entries).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dataplane/crc.hpp"

namespace pegasus::dataplane {

struct TableEntry;
struct EntryPatch;

/// Build/footprint counters for one compiled index (surfaced per table by
/// the compiler's `lower` pass diagnostics and aggregated per pipeline).
struct MatchIndexStats {
  std::size_t entries = 0;
  /// Bitset row width: ceil(entries / 64).
  std::size_t words_per_row = 0;
  /// Range fields: total elementary intervals across key fields.
  std::size_t intervals = 0;
  /// Ternary fields: nibble chunk tables built (16 bitset rows each).
  std::size_t nibble_chunks = 0;
  /// Resident footprint of the bitset planes + boundaries + arena.
  std::size_t bytes = 0;
  double build_ms = 0.0;
  /// O(delta) update counters: in-place patches applied without a reseal.
  std::uint64_t deltas_applied = 0;     // entry patches applied in place
  std::uint64_t leaf_words_patched = 0; // action-arena words rewritten
  std::uint64_t reseals_avoided = 0;    // ApplyDelta batches (each would
                                        // otherwise have been a full reseal)
  std::uint64_t delta_apply_ns = 0;     // cumulative in-place patch time
};

/// Immutable lookup structure compiled from a table's entry list at
/// Seal() time. One index serves either a ternary or a range table.
class MatchIndex {
 public:
  /// Sentinel returned by FindBest on miss.
  static constexpr std::int32_t kMiss = -1;

  /// Compiles the index. `kind_is_ternary` selects the nibble-chunk
  /// decomposition; otherwise entries' range_lo/range_hi are used. Field
  /// coverage is derived from the rules themselves (mask union /
  /// boundaries), so declared key widths are not needed.
  MatchIndex(std::span<const TableEntry> entries, bool kind_is_ternary);

  /// Highest-priority match for the per-field key values (earliest
  /// insertion wins ties), as a *sorted position*; kMiss when no entry
  /// matches. `keys[i]` is the value of key field i.
  std::int32_t FindBest(const std::uint64_t* keys) const;

  /// Original entry index of sorted position `pos`.
  std::size_t EntryIndex(std::int32_t pos) const {
    return order_[static_cast<std::size_t>(pos)];
  }

  /// Action-data words of sorted position `pos` (contiguous arena slice).
  std::span<const std::int64_t> ActionData(std::int32_t pos) const {
    const auto p = static_cast<std::size_t>(pos);
    return {arena_.data() + arena_offset_[p],
            arena_offset_[p + 1] - arena_offset_[p]};
  }

  const MatchIndexStats& stats() const { return stats_; }

  /// True when `patch` can be applied in place: same action-data size (so
  /// arena offsets stay valid) and a match representable by the compiled
  /// planes — ternary masks within existing chunk coverage, range bounds
  /// landing on existing elementary-interval boundaries. Anything else
  /// needs a full reseal.
  bool CanAbsorb(const EntryPatch& patch) const;

  /// Applies pre-validated patches in place: rewrites each entry's arena
  /// words and flips its bits in every chunk/interval row. Never
  /// reallocates, so a cloned index stays independent and patching is
  /// O(patches), not O(entries). Every patch must satisfy CanAbsorb.
  void ApplyDelta(std::span<const EntryPatch> patches);

 private:
  /// One 4-bit chunk of a ternary key field: 16 bitset rows starting at
  /// `plane_row * words_` inside plane_.
  struct NibbleChunk {
    std::uint32_t field = 0;
    std::uint32_t shift = 0;
    std::uint32_t plane_row = 0;
  };
  /// One range key field: elementary interval starts (sorted, starts[0]=0)
  /// and the first bitset row of its interval plane.
  struct RangeField {
    std::uint32_t field = 0;
    std::uint32_t plane_row = 0;
    std::vector<std::uint64_t> starts;
  };

  void BuildTernary(std::span<const TableEntry> entries);
  void BuildRange(std::span<const TableEntry> entries);

  std::size_t words_ = 0;            // bitset words per row
  std::size_t num_entries_ = 0;
  std::vector<std::uint64_t> plane_; // all bitset rows, row-major
  std::vector<NibbleChunk> chunks_;
  std::vector<RangeField> ranges_;
  /// sorted position -> original entry index ((priority desc, idx asc)).
  std::vector<std::uint32_t> order_;
  /// original entry index -> sorted position (inverse of order_), so a
  /// delta patch addressed by entry index finds its bitset column in O(1).
  std::vector<std::uint32_t> pos_of_;
  /// Action-data arena in sorted order; offsets has num_entries_+1 slots.
  std::vector<std::int64_t> arena_;
  std::vector<std::size_t> arena_offset_;
  MatchIndexStats stats_;
};

}  // namespace pegasus::dataplane
