// Match-action tables — the MAT abstraction of §2 and Figure 4.
//
// A table matches a tuple of PHV fields (exact in SRAM or ternary in TCAM)
// and executes a small declarative action program on hit: write or
// accumulate action-data words into PHV fields. This is exactly the shape
// Pegasus needs: a Map primitive is a lookup whose action data holds the
// precomputed f(centroid) vector, and SumReduce rides along as AddFromData
// ops (Figure 4's "Correspondence between the MAT abstraction and
// primitives").
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "dataplane/crc.hpp"
#include "dataplane/match_index.hpp"
#include "dataplane/phv.hpp"

namespace pegasus::dataplane {

// kExact lives in SRAM; kTernary in TCAM (value+mask planes); kRange is
// native range matching via 4-bit-nibble DirtCAM encoding (as on Tofino):
// one entry per hyperrectangle, but each key bit costs 4 TCAM bits instead
// of 2. The Pegasus lowering prefers CRC-expanded ternary entries and falls
// back to range matching when the cross-product expansion of a wide-key
// table would explode (e.g. RNN step tables keyed on the hidden state).
enum class MatchKind { kExact, kTernary, kRange };

/// One step of an action program.
struct ActionOp {
  enum class Kind {
    kSetConst,     // target = imm
    kAddConst,     // target += imm
    kSetFromData,  // target = action_data[data_index]
    kAddFromData,  // target += action_data[data_index]
  };
  Kind kind = Kind::kSetConst;
  FieldId target = 0;
  std::size_t data_index = 0;
  std::int64_t imm = 0;
  /// When >= 0, the result is saturated into [0, sat_max] after the op —
  /// PISA ALUs perform saturating adds, and Pegasus accumulators rely on it
  /// to stay inside their match domain.
  std::int64_t sat_max = -1;
};

/// A table entry: the match (exact key or per-field ternary rules), a
/// priority (ternary only; higher wins), and the action-data words consumed
/// by the table's action program.
struct TableEntry {
  std::vector<std::uint64_t> exact_key;       // kExact
  std::vector<TernaryRule> ternary;           // kTernary, one per key field
  std::vector<std::uint64_t> range_lo;        // kRange, inclusive per field
  std::vector<std::uint64_t> range_hi;        // kRange
  int priority = 0;
  std::vector<std::int64_t> action_data;
};

/// An in-place update to one existing entry — the dataplane unit of an
/// O(delta) model push. Addressed by original entry index; the match and
/// priority ride along for validation: priority must not change (it pins
/// the entry's sorted position in the compiled index) and the action data
/// must keep its word count (it pins the arena offsets). The match may
/// change only within what the compiled planes can absorb — see
/// MatchIndex::CanAbsorb.
struct EntryPatch {
  std::size_t entry_index = 0;
  std::vector<TernaryRule> ternary;     // kTernary, one per key field
  std::vector<std::uint64_t> range_lo;  // kRange, inclusive per field
  std::vector<std::uint64_t> range_hi;  // kRange
  int priority = 0;
  std::vector<std::int64_t> action_data;
};

/// A single match-action table.
class MatchActionTable {
 public:
  MatchActionTable(std::string name, MatchKind kind,
                   std::vector<FieldId> key_fields,
                   std::vector<int> key_widths,
                   std::vector<ActionOp> action_program,
                   int action_data_word_bits);

  const std::string& name() const { return name_; }
  MatchKind kind() const { return kind_; }

  /// Adds an entry. Invalidates a previously sealed match index; call
  /// Seal() again before serving traffic to restore the indexed path.
  void AddEntry(TableEntry entry);
  std::size_t NumEntries() const { return entries_.size(); }

  // ---- sealed/mutable lifecycle ---------------------------------------
  //
  // A table is *mutable* while entries are loaded and *sealed* while
  // serving. Seal() compiles the bit-vector MatchIndex for ternary/range
  // tables (see dataplane/match_index.hpp) so Apply/ApplyBatch/Lookup run
  // word-parallel bitset ANDs instead of a linear entry scan. Tables below
  // kIndexMinEntries seal without an index — the scan is already cheaper
  // than two bitset probes there. Pipeline::PlaceTable seals automatically,
  // so every compiled/lowered model serves from the indexed path.

  /// Entry count below which Seal() keeps the linear scan.
  static constexpr std::size_t kIndexMinEntries = 8;

  /// Compiles the match index (idempotent). Exact tables seal trivially —
  /// their hash index is maintained incrementally by AddEntry.
  void Seal();
  bool sealed() const { return sealed_; }
  /// True when a previously sealed table was mutated and not re-sealed —
  /// the use-after-invalidate hazard window. A live InferenceEngine holding
  /// the pipeline would silently serve the linear fallback here, so the
  /// serving paths (Apply/ApplyBatch) assert !invalidated() in debug
  /// builds; Lookup stays usable as the linear-scan oracle for tests.
  bool invalidated() const { return ever_sealed_ && !sealed_; }
  /// Monotonic generation counter: bumped by every mutation (AddEntry,
  /// SetMissProgram) and every (non-idempotent) Seal(). Snapshot it when
  /// handing the table to a long-lived reader — a changed generation means
  /// the reader's view is stale. Pipeline::Generation() aggregates it.
  std::uint64_t generation() const { return generation_; }
  /// Build/footprint stats of the compiled index; nullptr when the table
  /// is unsealed, exact, or too small to index.
  const MatchIndexStats* index_stats() const {
    return index_ ? &index_->stats() : nullptr;
  }

  /// Applies in-place entry patches without invalidating the seal. All
  /// patches are validated up front (index range, arity, data size,
  /// priority, absorbable by the compiled index); on any failure the table
  /// is left byte-identical and std::invalid_argument is thrown — the
  /// caller falls back to a full reseal. On success entries and index are
  /// patched together and generation() bumps once, so the table never
  /// passes through invalidated() and lookups never see a torn state.
  /// Returns the control-plane bytes the push writes (action-data words +
  /// value/mask match words per patch).
  std::size_t ApplyDelta(std::span<const EntryPatch> patches);

  /// The validation half of ApplyDelta, without the mutation — throws
  /// std::invalid_argument on the first unabsorbable patch. Lets a caller
  /// pre-validate a multi-table delta so the whole push is atomic.
  void ValidateDelta(std::span<const EntryPatch> patches) const;

  /// Deep copy, including the compiled match index (a memcpy-level copy —
  /// no recompilation). The foundation of clone→patch→publish updates.
  std::unique_ptr<MatchActionTable> Clone() const;

  /// Default action program executed on miss (empty = no-op).
  void SetMissProgram(std::vector<ActionOp> ops,
                      std::vector<std::int64_t> data);

  /// Looks up the PHV and applies the hit (or miss) action program.
  /// Returns true on hit.
  bool Apply(Phv& phv) const;

  /// Batch counterpart of Apply with identical per-packet semantics:
  /// gathers every packet's key once, then scans ternary/range entries
  /// entry-major so each entry's rules are streamed across the whole batch
  /// (instead of re-walking the entry list per packet through field
  /// accessors). Actions run after the scan — exactly the lookup-then-act
  /// order of Apply. Returns the number of hits.
  std::size_t ApplyBatch(std::span<Phv> batch) const;

  /// Index of the matching entry, if any (for tests/debugging).
  std::optional<std::size_t> Lookup(const Phv& phv) const;

  /// Test-only: truncates the exact-match hash to `bits` so collisions are
  /// reproducible (verifies the chained index resolves them). Must be
  /// called before the first AddEntry.
  void SetExactHashBitsForTest(int bits) {
    exact_hash_mask_ = bits >= 64 ? ~0ull : (1ull << bits) - 1;
  }

  // ---- resource accounting -------------------------------------------
  std::size_t KeyBits() const;
  /// Bits of action data fetched per lookup (drives the action bus column).
  std::size_t ActionDataBits() const;
  /// SRAM bits: exact tables store key+data; ternary tables keep their
  /// action data in SRAM while the match lives in TCAM.
  std::size_t SramBits() const;
  /// TCAM bits: value+mask per key bit per entry (ternary only).
  std::size_t TcamBits() const;

 private:
  std::uint64_t ExactHash(const std::vector<std::uint64_t>& key) const;
  /// Same byte-for-byte hash, computed straight from the PHV key fields —
  /// no per-lookup key buffer is materialized.
  std::uint64_t ExactHashFromPhv(const Phv& phv) const;
  std::optional<std::size_t> ExactLookup(const Phv& phv) const;
  bool EntryMatches(const TableEntry& e, const Phv& phv) const;
  void RunProgram(Phv& phv, const std::vector<ActionOp>& ops,
                  std::span<const std::int64_t> data) const;
  /// Linear-scan reference for ternary/range (unsealed fallback; also the
  /// oracle the indexed path is property-tested against).
  std::optional<std::size_t> LinearLookupTernary(
      const std::uint64_t* key) const;
  /// Gathers the PHV key fields and consults the compiled index; the
  /// returned value is a MatchIndex sorted position (kMiss on miss).
  std::int32_t IndexedFind(const Phv& phv) const;

  std::string name_;
  MatchKind kind_;
  std::vector<FieldId> key_fields_;
  std::vector<int> key_widths_;
  std::vector<ActionOp> action_program_;
  int action_data_word_bits_;
  std::vector<TableEntry> entries_;
  std::vector<ActionOp> miss_program_;
  std::vector<std::int64_t> miss_data_;
  // Exact-match index: hashed key -> chained entry indices. Chaining (not
  // last-write-wins) keeps distinct keys with colliding hashes reachable;
  // Lookup verifies the full key on every candidate.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> exact_index_;
  std::uint64_t exact_hash_mask_ = ~0ull;
  // Compiled ternary/range index (sealed lifecycle).
  bool sealed_ = false;
  bool ever_sealed_ = false;
  std::uint64_t generation_ = 0;
  std::unique_ptr<MatchIndex> index_;
};

}  // namespace pegasus::dataplane
