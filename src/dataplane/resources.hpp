// Resource model for a Tofino-2-class PISA switch (paper §2):
// "each pipeline only has 20 MAT stages, with each stage equipped with
//  10 Mb of SRAM, 0.5 Mb of TCAM, and a 1024-bit-wide Action Data Bus",
// plus a 4096-bit Packet Header Vector (§7.3).
//
// These constants drive both placement feasibility (does a model fit?) and
// the utilization percentages reported in Table 6 / Figure 7.
#pragma once

#include <cstddef>
#include <cstdint>

namespace pegasus::dataplane {

struct SwitchModel {
  std::size_t num_stages = 20;
  /// Per-stage capacities, in bits. "Mb" is 2^20 bits.
  std::size_t sram_bits_per_stage = 10ull * 1024 * 1024;
  std::size_t tcam_bits_per_stage = 512ull * 1024;  // 0.5 Mb
  std::size_t action_bus_bits_per_stage = 1024;
  std::size_t phv_bits = 4096;

  std::size_t TotalSramBits() const {
    return num_stages * sram_bits_per_stage;
  }
  std::size_t TotalTcamBits() const {
    return num_stages * tcam_bits_per_stage;
  }

  /// Line rate of the switching ASIC (Tofino 2: 12.8 Tb/s). Used by the
  /// Figure 9d throughput model: at line rate the dataplane classifies
  /// every packet regardless of model size.
  double line_rate_bits_per_sec = 12.8e12;
};

/// Utilization snapshot aggregated over the pipeline; the percentages match
/// Table 6's columns.
struct ResourceReport {
  std::size_t sram_bits = 0;
  std::size_t tcam_bits = 0;
  /// Worst-case action-data bits moved in a single stage.
  std::size_t max_stage_action_bus_bits = 0;
  /// Sum of action-data bits across stages (for mean utilization).
  std::size_t total_action_bus_bits = 0;
  std::size_t stages_used = 0;
  std::size_t stateful_bits_per_flow = 0;

  double SramPct(const SwitchModel& sw) const {
    return 100.0 * static_cast<double>(sram_bits) /
           static_cast<double>(sw.TotalSramBits());
  }
  double TcamPct(const SwitchModel& sw) const {
    return 100.0 * static_cast<double>(tcam_bits) /
           static_cast<double>(sw.TotalTcamBits());
  }
  /// Mean action-bus utilization over the stages the program occupies.
  double ActionBusPct(const SwitchModel& sw) const {
    if (stages_used == 0) return 0.0;
    return 100.0 * static_cast<double>(total_action_bus_bits) /
           static_cast<double>(stages_used * sw.action_bus_bits_per_stage);
  }
};

/// SRAM bits of a preallocated, hash-addressed flow table with `capacity`
/// slots of `bits_per_flow` state each. Register slots are allocated in
/// 8-bit units (the paper notes "PISA switches do not support 4-bit
/// registers") and every slot carries a 16-bit flow digest for collision
/// detection. This is the footprint of one runtime::FlowTable shard.
std::size_t FlowTableSramBits(std::size_t bits_per_flow,
                              std::size_t capacity);

/// SRAM cost of per-flow state for `flows` concurrent flows (Figure 7's
/// X-axis): FlowTableSramBits sized so the table runs at ~85% occupancy,
/// keeping collision rates acceptable.
std::size_t PerFlowSramBits(std::size_t bits_per_flow, std::size_t flows);

}  // namespace pegasus::dataplane
