// Canonical 5-tuple flow identity.
//
// Real dataplanes key per-flow state on the packet's 5-tuple; Pegasus keeps
// only a 64-bit digest of it (registers.hpp's FlowKey). This header owns the
// tuple itself and the one digest function every producer — the synthetic
// generator, the pcap wire parser (src/io/wire.hpp), the flow assembler —
// must share, so a flow captured on the wire lands in the same FlowTable
// slot as its synthetic twin.
//
// The digest is *bidirectional*: a conversation's forward and reverse
// packets (src/dst endpoints swapped) canonicalize to the same tuple and
// therefore the same digest, which is how per-flow feature state follows
// both directions of a TCP connection.
#pragma once

#include <array>
#include <cstdint>

#include "dataplane/registers.hpp"

namespace pegasus::dataplane {

/// IP protocol numbers the traffic substrate parses.
inline constexpr std::uint8_t kProtoTcp = 6;
inline constexpr std::uint8_t kProtoUdp = 17;

/// One flow's 5-tuple. IPv4 addresses occupy the first 4 bytes of the
/// 16-byte fields (remaining bytes zero); IPv6 uses all 16.
struct FiveTuple {
  std::uint8_t version = 4;  // 4 or 6
  std::uint8_t proto = kProtoTcp;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::array<std::uint8_t, 16> src{};
  std::array<std::uint8_t, 16> dst{};

  bool operator==(const FiveTuple&) const = default;
};

/// Canonical bidirectional form: the lexicographically smaller
/// (address, port) endpoint becomes src, so a conversation's forward and
/// reverse tuples canonicalize identically. Idempotent.
FiveTuple Canonical(const FiveTuple& t);

/// 64-bit digest of the canonical form (splitmix64-chained over every
/// field). Direction-symmetric by construction: DigestTuple(t) ==
/// DigestTuple(reversed t). Collisions between distinct conversations are
/// possible — and part of real switch behaviour — but 2^-64-rare.
FlowKey DigestTuple(const FiveTuple& t);

}  // namespace pegasus::dataplane
