#include "dataplane/phv.hpp"

namespace pegasus::dataplane {

FieldId PhvLayout::AddField(std::string name, int width_bits) {
  if (width_bits <= 0 || width_bits > 64) {
    throw std::invalid_argument("PhvLayout: field width out of [1,64]: " +
                                name);
  }
  for (const auto& existing : names_) {
    if (existing == name) {
      throw std::invalid_argument("PhvLayout: duplicate field " + name);
    }
  }
  names_.push_back(std::move(name));
  widths_.push_back(width_bits);
  total_bits_ += static_cast<std::size_t>(width_bits);
  return names_.size() - 1;
}

FieldId PhvLayout::Find(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  throw std::out_of_range("PhvLayout: no field named " + name);
}

}  // namespace pegasus::dataplane
