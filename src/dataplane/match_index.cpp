#include "dataplane/match_index.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <numeric>

#include "dataplane/table.hpp"

namespace pegasus::dataplane {

namespace {

// Entries up to 64*64 = 4096 fit the stack accumulator; larger tables fall
// back to a thread-local buffer (rare: the lowering caps ternary expansion
// at 4096 entries per table).
constexpr std::size_t kStackWords = 64;

inline std::uint64_t* AccBuffer(std::size_t words,
                                std::uint64_t* stack_buf) {
  if (words <= kStackWords) return stack_buf;
  static thread_local std::vector<std::uint64_t> heap_buf;
  if (heap_buf.size() < words) heap_buf.resize(words);
  return heap_buf.data();
}

}  // namespace

MatchIndex::MatchIndex(std::span<const TableEntry> entries,
                       bool kind_is_ternary) {
  const auto start = std::chrono::steady_clock::now();
  num_entries_ = entries.size();
  words_ = (num_entries_ + 63) / 64;

  // TCAM physical order: higher priority first, insertion order on ties —
  // the winner of an AND'd bitset is then always the lowest set bit.
  order_.resize(num_entries_);
  std::iota(order_.begin(), order_.end(), 0u);
  std::stable_sort(order_.begin(), order_.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return entries[a].priority > entries[b].priority;
                   });
  pos_of_.resize(num_entries_);
  for (std::size_t pos = 0; pos < num_entries_; ++pos) {
    pos_of_[order_[pos]] = static_cast<std::uint32_t>(pos);
  }

  // Action-data arena in sorted order: the winning entry's words are one
  // contiguous, cache-resident slice.
  arena_offset_.resize(num_entries_ + 1, 0);
  for (std::size_t pos = 0; pos < num_entries_; ++pos) {
    arena_offset_[pos + 1] =
        arena_offset_[pos] + entries[order_[pos]].action_data.size();
  }
  arena_.reserve(arena_offset_.back());
  for (std::size_t pos = 0; pos < num_entries_; ++pos) {
    const auto& data = entries[order_[pos]].action_data;
    arena_.insert(arena_.end(), data.begin(), data.end());
  }

  if (kind_is_ternary) {
    BuildTernary(entries);
  } else {
    BuildRange(entries);
  }

  stats_.entries = num_entries_;
  stats_.words_per_row = words_;
  stats_.nibble_chunks = chunks_.size();
  for (const RangeField& rf : ranges_) stats_.intervals += rf.starts.size();
  stats_.bytes = plane_.size() * sizeof(std::uint64_t) +
                 (order_.size() + pos_of_.size()) * sizeof(std::uint32_t) +
                 arena_.size() * sizeof(std::int64_t) +
                 arena_offset_.size() * sizeof(std::size_t);
  for (const RangeField& rf : ranges_) {
    stats_.bytes += rf.starts.size() * sizeof(std::uint64_t);
  }
  stats_.build_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
}

void MatchIndex::BuildTernary(std::span<const TableEntry> entries) {
  const std::size_t nk = entries.empty() ? 0 : entries[0].ternary.size();
  for (std::size_t f = 0; f < nk; ++f) {
    // Only bits some entry actually masks can influence a match; everything
    // above is don't-care for every rule and needs no chunk table.
    std::uint64_t mask_union = 0;
    for (const TableEntry& e : entries) mask_union |= e.ternary[f].mask;
    const int cover_bits =
        64 - std::countl_zero(mask_union | 1ull);  // >=1 to avoid UB on 0
    const std::size_t num_chunks =
        mask_union == 0 ? 0 : (static_cast<std::size_t>(cover_bits) + 3) / 4;
    for (std::size_t c = 0; c < num_chunks; ++c) {
      NibbleChunk chunk;
      chunk.field = static_cast<std::uint32_t>(f);
      chunk.shift = static_cast<std::uint32_t>(4 * c);
      chunk.plane_row = static_cast<std::uint32_t>(plane_.size() / words_);
      plane_.resize(plane_.size() + 16 * words_, 0);
      std::uint64_t* rows = plane_.data() + chunk.plane_row * words_;
      for (std::size_t pos = 0; pos < num_entries_; ++pos) {
        const TernaryRule& r = entries[order_[pos]].ternary[f];
        const std::uint64_t m = (r.mask >> chunk.shift) & 0xf;
        const std::uint64_t v = (r.value >> chunk.shift) & m;
        for (std::uint64_t nib = 0; nib < 16; ++nib) {
          if ((nib & m) == v) {
            rows[nib * words_ + pos / 64] |= 1ull << (pos % 64);
          }
        }
      }
      chunks_.push_back(chunk);
    }
  }
}

void MatchIndex::BuildRange(std::span<const TableEntry> entries) {
  const std::size_t nk = entries.empty() ? 0 : entries[0].range_lo.size();
  for (std::size_t f = 0; f < nk; ++f) {
    RangeField rf;
    rf.field = static_cast<std::uint32_t>(f);
    // Elementary intervals: every lo starts one, every hi ends one. The
    // hi+1 boundary is skipped at the top of the 64-bit domain (no wrap).
    rf.starts.push_back(0);
    for (const TableEntry& e : entries) {
      rf.starts.push_back(e.range_lo[f]);
      if (e.range_hi[f] != ~0ull) rf.starts.push_back(e.range_hi[f] + 1);
    }
    std::sort(rf.starts.begin(), rf.starts.end());
    rf.starts.erase(std::unique(rf.starts.begin(), rf.starts.end()),
                    rf.starts.end());
    rf.plane_row = static_cast<std::uint32_t>(plane_.size() / words_);
    plane_.resize(plane_.size() + rf.starts.size() * words_, 0);
    std::uint64_t* rows = plane_.data() + rf.plane_row * words_;
    for (std::size_t i = 0; i < rf.starts.size(); ++i) {
      const std::uint64_t first = rf.starts[i];
      const std::uint64_t last =
          i + 1 < rf.starts.size() ? rf.starts[i + 1] - 1 : ~0ull;
      for (std::size_t pos = 0; pos < num_entries_; ++pos) {
        const TableEntry& e = entries[order_[pos]];
        if (e.range_lo[f] <= first && e.range_hi[f] >= last) {
          rows[i * words_ + pos / 64] |= 1ull << (pos % 64);
        }
      }
    }
    ranges_.push_back(std::move(rf));
  }
}

bool MatchIndex::CanAbsorb(const EntryPatch& patch) const {
  if (patch.entry_index >= num_entries_) return false;
  const std::size_t pos = pos_of_[patch.entry_index];
  // Arena offsets stay valid only if the patched slice keeps its size.
  if (patch.action_data.size() !=
      arena_offset_[pos + 1] - arena_offset_[pos]) {
    return false;
  }
  // Ternary: every masked bit of the new rule must fall inside some
  // existing chunk — bits above the compiled coverage have no rows to
  // express them, so a rule using them forces a reseal.
  for (const NibbleChunk& c : chunks_) {
    if (c.field >= patch.ternary.size()) return false;
  }
  for (std::size_t f = 0; f < patch.ternary.size(); ++f) {
    std::uint64_t covered = 0;
    for (const NibbleChunk& c : chunks_) {
      if (c.field == f) covered |= 0xfull << c.shift;
    }
    if ((patch.ternary[f].mask & ~covered) != 0) return false;
  }
  // Range: the new bounds must land on existing elementary-interval
  // boundaries, otherwise an interval would need splitting (reseal).
  for (const RangeField& rf : ranges_) {
    if (rf.field >= patch.range_lo.size() ||
        rf.field >= patch.range_hi.size()) {
      return false;
    }
    const std::uint64_t lo = patch.range_lo[rf.field];
    const std::uint64_t hi = patch.range_hi[rf.field];
    if (lo > hi) return false;
    if (!std::binary_search(rf.starts.begin(), rf.starts.end(), lo)) {
      return false;
    }
    if (hi != ~0ull &&
        !std::binary_search(rf.starts.begin(), rf.starts.end(), hi + 1)) {
      return false;
    }
  }
  return true;
}

void MatchIndex::ApplyDelta(std::span<const EntryPatch> patches) {
  const auto start = std::chrono::steady_clock::now();
  for (const EntryPatch& p : patches) {
    const std::size_t pos = pos_of_[p.entry_index];
    std::copy(p.action_data.begin(), p.action_data.end(),
              arena_.begin() + static_cast<std::ptrdiff_t>(arena_offset_[pos]));
    const std::uint64_t bit = 1ull << (pos % 64);
    const std::size_t word = pos / 64;
    for (const NibbleChunk& c : chunks_) {
      const TernaryRule& r = p.ternary[c.field];
      const std::uint64_t m = (r.mask >> c.shift) & 0xf;
      const std::uint64_t v = (r.value >> c.shift) & m;
      std::uint64_t* rows = plane_.data() + c.plane_row * words_;
      for (std::uint64_t nib = 0; nib < 16; ++nib) {
        std::uint64_t& w = rows[nib * words_ + word];
        if ((nib & m) == v) {
          w |= bit;
        } else {
          w &= ~bit;
        }
      }
    }
    for (const RangeField& rf : ranges_) {
      const std::uint64_t lo = p.range_lo[rf.field];
      const std::uint64_t hi = p.range_hi[rf.field];
      std::uint64_t* rows = plane_.data() + rf.plane_row * words_;
      for (std::size_t i = 0; i < rf.starts.size(); ++i) {
        const std::uint64_t first = rf.starts[i];
        const std::uint64_t last =
            i + 1 < rf.starts.size() ? rf.starts[i + 1] - 1 : ~0ull;
        std::uint64_t& w = rows[i * words_ + word];
        if (lo <= first && hi >= last) {
          w |= bit;
        } else {
          w &= ~bit;
        }
      }
    }
    ++stats_.deltas_applied;
    stats_.leaf_words_patched += p.action_data.size();
  }
  ++stats_.reseals_avoided;
  stats_.delta_apply_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

std::int32_t MatchIndex::FindBest(const std::uint64_t* keys) const {
  if (num_entries_ == 0) return kMiss;
  const std::size_t words = words_;
  std::uint64_t stack_buf[kStackWords];
  std::uint64_t* acc = AccBuffer(words, stack_buf);
  // Start from "every entry matches" (trimmed to the entry count) so
  // catch-all-only tables — zero chunks/fields — still hit.
  for (std::size_t w = 0; w < words; ++w) acc[w] = ~0ull;
  if (num_entries_ % 64 != 0) {
    acc[words - 1] = (1ull << (num_entries_ % 64)) - 1;
  }
  for (const NibbleChunk& c : chunks_) {
    const std::uint64_t nib = (keys[c.field] >> c.shift) & 0xf;
    const std::uint64_t* row =
        plane_.data() + (c.plane_row + nib) * words;
    std::uint64_t any = 0;
    for (std::size_t w = 0; w < words; ++w) {
      acc[w] &= row[w];
      any |= acc[w];
    }
    if (any == 0) return kMiss;
  }
  for (const RangeField& rf : ranges_) {
    // Interval containing the key: last start <= key (starts[0] == 0).
    const auto it = std::upper_bound(rf.starts.begin(), rf.starts.end(),
                                     keys[rf.field]);
    const auto interval =
        static_cast<std::size_t>(it - rf.starts.begin()) - 1;
    const std::uint64_t* row =
        plane_.data() + (rf.plane_row + interval) * words;
    std::uint64_t any = 0;
    for (std::size_t w = 0; w < words; ++w) {
      acc[w] &= row[w];
      any |= acc[w];
    }
    if (any == 0) return kMiss;
  }
  for (std::size_t w = 0; w < words; ++w) {
    if (acc[w] != 0) {
      return static_cast<std::int32_t>(w * 64 +
                                       static_cast<std::size_t>(
                                           std::countr_zero(acc[w])));
    }
  }
  return kMiss;
}

}  // namespace pegasus::dataplane
