// The staged PISA pipeline: tables are placed into one of `num_stages`
// stages under per-stage SRAM/TCAM/action-bus budgets, and a packet's PHV
// traverses the stages in order. Placement failures are the simulator's
// rendition of "the model does not fit on the switch" — the scalability
// wall the paper's §2 motivates.
#pragma once

#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "dataplane/resources.hpp"
#include "dataplane/table.hpp"

namespace pegasus::dataplane {

/// Thrown when a table cannot be placed within the switch's resources.
class PlacementError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Patches addressed to one named table — the pipeline-level unit of an
/// O(delta) model push (UpdatePlanner emits one per kEntryDelta table).
struct TablePatch {
  std::string table;
  std::vector<EntryPatch> patches;
};

class Pipeline {
 public:
  explicit Pipeline(SwitchModel model = {});

  const SwitchModel& switch_model() const { return model_; }

  /// Places `table` in the first stage >= `min_stage` with room for its
  /// SRAM/TCAM footprint and action-bus demand. Returns the stage index.
  /// Throws PlacementError when no stage fits. Placement seals the table
  /// (compiling its bit-vector match index), so every table served from a
  /// pipeline runs the indexed lookup path.
  std::size_t PlaceTable(std::unique_ptr<MatchActionTable> table,
                         std::size_t min_stage);

  /// Declares per-flow stateful register usage (bits per flow). Stateful
  /// SRAM is accounted separately from table SRAM, as in Table 6's
  /// "Stateful bits/flow" column.
  void DeclareFlowState(std::size_t bits_per_flow) {
    stateful_bits_per_flow_ += bits_per_flow;
  }

  /// Runs the PHV through every stage in order. Returns the number of table
  /// hits (for diagnostics).
  std::size_t Process(Phv& phv) const;

  /// Runs a batch of independent PHVs through the pipeline, traversing
  /// stage-major/table-major so each table's entries stay hot in cache
  /// across the whole batch. Per-packet semantics are identical to calling
  /// Process on each PHV in turn (packets never interact). Returns total
  /// table hits across the batch.
  std::size_t ProcessBatch(std::span<Phv> batch) const;

  ResourceReport Report() const;

  std::size_t NumTables() const;
  std::size_t StagesUsed() const;

  /// True when every placed ternary/range table is sealed — i.e. the whole
  /// pipeline serves from compiled match indexes. (PlaceTable guarantees
  /// this; the check is the runtime's seam for asserting it.)
  bool FullySealed() const;

  /// Sum of the placed tables' generation counters — a cheap version stamp
  /// of the whole dataplane program. A long-lived reader (InferenceEngine)
  /// snapshots it at construction and asserts it unchanged in debug builds:
  /// any AddEntry/Seal on a placed table moves the stamp, turning a silent
  /// use-after-invalidate into a loud failure.
  std::uint64_t Generation() const;

  /// Aggregate match-index build stats across all placed tables.
  struct IndexReport {
    std::size_t indexed_tables = 0;
    std::size_t intervals = 0;
    std::size_t nibble_chunks = 0;
    std::size_t bytes = 0;
    double build_ms = 0.0;
    // O(delta) update counters (see MatchIndexStats).
    std::uint64_t deltas_applied = 0;
    std::uint64_t leaf_words_patched = 0;
    std::uint64_t reseals_avoided = 0;
    std::uint64_t delta_apply_ns = 0;
  };
  IndexReport MatchIndexReport() const;

  /// Applies per-table entry deltas in place, by table name. Tables stay
  /// sealed throughout (generation bumps, invalidated() never holds), so
  /// no placed index is rebuilt. Throws std::invalid_argument on an
  /// unknown table or an unabsorbable patch — validation of every table
  /// runs before any mutation, so a throwing call leaves the pipeline
  /// byte-identical. Returns total control-plane bytes pushed.
  std::size_t ApplyDelta(std::span<const TablePatch> patches);

  /// Deep copy preserving placement, budgets and every compiled index (no
  /// recompilation) — the O(entries-copied), not O(rebuild), half of the
  /// clone→patch→publish update path.
  std::unique_ptr<Pipeline> Clone() const;

 private:
  struct Stage {
    std::vector<std::unique_ptr<MatchActionTable>> tables;
    std::size_t sram_bits = 0;
    std::size_t tcam_bits = 0;
    std::size_t action_bus_bits = 0;
  };

  SwitchModel model_;
  std::vector<Stage> stages_;
  std::size_t stateful_bits_per_flow_ = 0;
};

}  // namespace pegasus::dataplane
