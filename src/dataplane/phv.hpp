// Packet Header Vector model.
//
// The PHV is the per-packet working set that flows through the PISA
// pipeline: every value a MAT can match on or write to must live in a PHV
// field, and the total PHV budget (4096 bits on Tofino 2) caps the feature
// scale a model can carry — the paper's §7.3 explains that CNN-L only fits
// because Partition spreads the 3840-bit input across the packets of a
// window so each packet carries only 480 bits.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace pegasus::dataplane {

using FieldId = std::size_t;

/// Static layout of PHV fields for one compiled program. Fields are signed
/// fixed-point raw values or unsigned match keys; the layout only tracks
/// widths for budget accounting.
class PhvLayout {
 public:
  /// Registers a field; throws std::invalid_argument on duplicate name or
  /// non-positive width.
  FieldId AddField(std::string name, int width_bits);

  std::size_t NumFields() const { return widths_.size(); }
  int width(FieldId id) const { return widths_.at(id); }
  const std::string& name(FieldId id) const { return names_.at(id); }

  /// Total bits across all fields (compared against SwitchModel::phv_bits).
  std::size_t TotalBits() const { return total_bits_; }

  /// Looks a field up by name; throws std::out_of_range if absent.
  FieldId Find(const std::string& name) const;

 private:
  std::vector<std::string> names_;
  std::vector<int> widths_;
  std::size_t total_bits_ = 0;
};

/// A concrete per-packet PHV: one signed 64-bit raw value per field. Width
/// enforcement happens on Set (values are masked/saturated to field width
/// by callers that care; the simulator stores full precision and the
/// fixed-point layer guarantees ranges).
class Phv {
 public:
  explicit Phv(const PhvLayout& layout)
      : layout_(&layout), values_(layout.NumFields(), 0) {}

  std::int64_t Get(FieldId id) const { return values_.at(id); }
  void Set(FieldId id, std::int64_t v) { values_.at(id) = v; }

  /// Returns the PHV to its parse-time state (all fields zero) so a
  /// preallocated PHV can be reused across packets — the hook the batched
  /// runtime::InferenceEngine relies on to stay allocation-free.
  void Reset() {
    for (std::int64_t& v : values_) v = 0;
  }

  const PhvLayout& layout() const { return *layout_; }

 private:
  const PhvLayout* layout_;
  std::vector<std::int64_t> values_;
};

}  // namespace pegasus::dataplane
