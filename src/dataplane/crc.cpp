#include "dataplane/crc.hpp"

#include <bit>
#include <stdexcept>

namespace pegasus::dataplane {

std::vector<TernaryRule> RangeToTernary(std::uint64_t lo, std::uint64_t hi,
                                        int width) {
  if (width < 1 || width > 63) {
    throw std::invalid_argument("RangeToTernary: width out of [1,63]");
  }
  const std::uint64_t field_max = (std::uint64_t{1} << width) - 1;
  if (lo > hi || hi > field_max) {
    throw std::invalid_argument("RangeToTernary: bad range");
  }
  const std::uint64_t full_mask = field_max;
  std::vector<TernaryRule> rules;
  std::uint64_t cursor = lo;
  while (true) {
    // Largest aligned power-of-two block starting at cursor that stays
    // within [cursor, hi].
    int block_log = cursor == 0 ? width : std::countr_zero(cursor);
    if (block_log > width) block_log = width;
    while (block_log > 0) {
      const std::uint64_t block_size = std::uint64_t{1} << block_log;
      if (block_size - 1 <= hi - cursor) break;
      --block_log;
    }
    const std::uint64_t block_size = std::uint64_t{1} << block_log;
    rules.push_back(TernaryRule{cursor, full_mask & ~(block_size - 1)});
    if (hi - cursor < block_size) break;  // block reaches hi exactly
    cursor += block_size;
    if (cursor > hi) break;
  }
  return rules;
}

namespace {

// 256-entry table for the reflected IEEE polynomial, built once at first
// use. Byte-at-a-time is plenty: envelopes are checksummed once per
// publish/load, never on the packet path.
struct Crc32Table {
  std::uint32_t entries[256];
  Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const Crc32Table table;
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table.entries[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace pegasus::dataplane
