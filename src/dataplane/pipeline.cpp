#include "dataplane/pipeline.hpp"

namespace pegasus::dataplane {

Pipeline::Pipeline(SwitchModel model)
    : model_(model), stages_(model.num_stages) {}

std::size_t Pipeline::PlaceTable(std::unique_ptr<MatchActionTable> table,
                                 std::size_t min_stage) {
  if (min_stage >= stages_.size()) {
    throw PlacementError("table '" + table->name() +
                         "' needs stage >= " + std::to_string(min_stage) +
                         " but the switch has only " +
                         std::to_string(stages_.size()) + " stages");
  }
  // Entry loading is done once a table reaches placement: compile its
  // match index so the serving path is indexed from the first packet.
  table->Seal();
  const std::size_t sram = table->SramBits();
  const std::size_t tcam = table->TcamBits();
  const std::size_t bus = table->ActionDataBits();
  for (std::size_t s = min_stage; s < stages_.size(); ++s) {
    Stage& stage = stages_[s];
    if (stage.sram_bits + sram <= model_.sram_bits_per_stage &&
        stage.tcam_bits + tcam <= model_.tcam_bits_per_stage &&
        stage.action_bus_bits + bus <= model_.action_bus_bits_per_stage) {
      stage.sram_bits += sram;
      stage.tcam_bits += tcam;
      stage.action_bus_bits += bus;
      stage.tables.push_back(std::move(table));
      return s;
    }
  }
  throw PlacementError(
      "table '" + table->name() + "' does not fit: needs " +
      std::to_string(sram) + "b SRAM, " + std::to_string(tcam) +
      "b TCAM, " + std::to_string(bus) + "b action bus in one stage");
}

std::size_t Pipeline::Process(Phv& phv) const {
  std::size_t hits = 0;
  for (const Stage& stage : stages_) {
    for (const auto& table : stage.tables) {
      if (table->Apply(phv)) ++hits;
    }
  }
  return hits;
}

std::size_t Pipeline::ProcessBatch(std::span<Phv> batch) const {
  std::size_t hits = 0;
  for (const Stage& stage : stages_) {
    for (const auto& table : stage.tables) {
      hits += table->ApplyBatch(batch);
    }
  }
  return hits;
}

ResourceReport Pipeline::Report() const {
  ResourceReport r;
  for (const Stage& stage : stages_) {
    if (stage.tables.empty()) continue;
    ++r.stages_used;
    r.sram_bits += stage.sram_bits;
    r.tcam_bits += stage.tcam_bits;
    r.total_action_bus_bits += stage.action_bus_bits;
    r.max_stage_action_bus_bits =
        std::max(r.max_stage_action_bus_bits, stage.action_bus_bits);
  }
  r.stateful_bits_per_flow = stateful_bits_per_flow_;
  return r;
}

std::uint64_t Pipeline::Generation() const {
  std::uint64_t g = 0;
  for (const Stage& stage : stages_) {
    for (const auto& table : stage.tables) g += table->generation();
  }
  return g;
}

bool Pipeline::FullySealed() const {
  for (const Stage& stage : stages_) {
    for (const auto& table : stage.tables) {
      if (!table->sealed()) return false;
    }
  }
  return true;
}

Pipeline::IndexReport Pipeline::MatchIndexReport() const {
  IndexReport r;
  for (const Stage& stage : stages_) {
    for (const auto& table : stage.tables) {
      const MatchIndexStats* s = table->index_stats();
      if (s == nullptr) continue;
      ++r.indexed_tables;
      r.intervals += s->intervals;
      r.nibble_chunks += s->nibble_chunks;
      r.bytes += s->bytes;
      r.build_ms += s->build_ms;
      r.deltas_applied += s->deltas_applied;
      r.leaf_words_patched += s->leaf_words_patched;
      r.reseals_avoided += s->reseals_avoided;
      r.delta_apply_ns += s->delta_apply_ns;
    }
  }
  return r;
}

std::size_t Pipeline::ApplyDelta(std::span<const TablePatch> patches) {
  // Resolve + pre-validate every target first so a bad patch anywhere
  // leaves the whole pipeline untouched.
  std::vector<MatchActionTable*> targets;
  targets.reserve(patches.size());
  for (const TablePatch& tp : patches) {
    MatchActionTable* found = nullptr;
    for (Stage& stage : stages_) {
      for (const auto& table : stage.tables) {
        if (table->name() == tp.table) {
          found = table.get();
          break;
        }
      }
      if (found != nullptr) break;
    }
    if (found == nullptr) {
      throw std::invalid_argument("ApplyDelta: no table named '" + tp.table +
                                  "'");
    }
    found->ValidateDelta(tp.patches);
    targets.push_back(found);
  }
  std::size_t bytes = 0;
  for (std::size_t i = 0; i < patches.size(); ++i) {
    bytes += targets[i]->ApplyDelta(patches[i].patches);
  }
  return bytes;
}

std::unique_ptr<Pipeline> Pipeline::Clone() const {
  auto copy = std::make_unique<Pipeline>(model_);
  copy->stateful_bits_per_flow_ = stateful_bits_per_flow_;
  copy->stages_.resize(stages_.size());
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    const Stage& src = stages_[s];
    Stage& dst = copy->stages_[s];
    dst.sram_bits = src.sram_bits;
    dst.tcam_bits = src.tcam_bits;
    dst.action_bus_bits = src.action_bus_bits;
    dst.tables.reserve(src.tables.size());
    for (const auto& table : src.tables) dst.tables.push_back(table->Clone());
  }
  return copy;
}

std::size_t Pipeline::NumTables() const {
  std::size_t n = 0;
  for (const Stage& s : stages_) n += s.tables.size();
  return n;
}

std::size_t Pipeline::StagesUsed() const {
  std::size_t n = 0;
  for (const Stage& s : stages_) {
    if (!s.tables.empty()) ++n;
  }
  return n;
}

}  // namespace pegasus::dataplane
