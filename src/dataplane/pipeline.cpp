#include "dataplane/pipeline.hpp"

namespace pegasus::dataplane {

Pipeline::Pipeline(SwitchModel model)
    : model_(model), stages_(model.num_stages) {}

std::size_t Pipeline::PlaceTable(std::unique_ptr<MatchActionTable> table,
                                 std::size_t min_stage) {
  if (min_stage >= stages_.size()) {
    throw PlacementError("table '" + table->name() +
                         "' needs stage >= " + std::to_string(min_stage) +
                         " but the switch has only " +
                         std::to_string(stages_.size()) + " stages");
  }
  // Entry loading is done once a table reaches placement: compile its
  // match index so the serving path is indexed from the first packet.
  table->Seal();
  const std::size_t sram = table->SramBits();
  const std::size_t tcam = table->TcamBits();
  const std::size_t bus = table->ActionDataBits();
  for (std::size_t s = min_stage; s < stages_.size(); ++s) {
    Stage& stage = stages_[s];
    if (stage.sram_bits + sram <= model_.sram_bits_per_stage &&
        stage.tcam_bits + tcam <= model_.tcam_bits_per_stage &&
        stage.action_bus_bits + bus <= model_.action_bus_bits_per_stage) {
      stage.sram_bits += sram;
      stage.tcam_bits += tcam;
      stage.action_bus_bits += bus;
      stage.tables.push_back(std::move(table));
      return s;
    }
  }
  throw PlacementError(
      "table '" + table->name() + "' does not fit: needs " +
      std::to_string(sram) + "b SRAM, " + std::to_string(tcam) +
      "b TCAM, " + std::to_string(bus) + "b action bus in one stage");
}

std::size_t Pipeline::Process(Phv& phv) const {
  std::size_t hits = 0;
  for (const Stage& stage : stages_) {
    for (const auto& table : stage.tables) {
      if (table->Apply(phv)) ++hits;
    }
  }
  return hits;
}

std::size_t Pipeline::ProcessBatch(std::span<Phv> batch) const {
  std::size_t hits = 0;
  for (const Stage& stage : stages_) {
    for (const auto& table : stage.tables) {
      hits += table->ApplyBatch(batch);
    }
  }
  return hits;
}

ResourceReport Pipeline::Report() const {
  ResourceReport r;
  for (const Stage& stage : stages_) {
    if (stage.tables.empty()) continue;
    ++r.stages_used;
    r.sram_bits += stage.sram_bits;
    r.tcam_bits += stage.tcam_bits;
    r.total_action_bus_bits += stage.action_bus_bits;
    r.max_stage_action_bus_bits =
        std::max(r.max_stage_action_bus_bits, stage.action_bus_bits);
  }
  r.stateful_bits_per_flow = stateful_bits_per_flow_;
  return r;
}

std::uint64_t Pipeline::Generation() const {
  std::uint64_t g = 0;
  for (const Stage& stage : stages_) {
    for (const auto& table : stage.tables) g += table->generation();
  }
  return g;
}

bool Pipeline::FullySealed() const {
  for (const Stage& stage : stages_) {
    for (const auto& table : stage.tables) {
      if (!table->sealed()) return false;
    }
  }
  return true;
}

Pipeline::IndexReport Pipeline::MatchIndexReport() const {
  IndexReport r;
  for (const Stage& stage : stages_) {
    for (const auto& table : stage.tables) {
      const MatchIndexStats* s = table->index_stats();
      if (s == nullptr) continue;
      ++r.indexed_tables;
      r.intervals += s->intervals;
      r.nibble_chunks += s->nibble_chunks;
      r.bytes += s->bytes;
      r.build_ms += s->build_ms;
    }
  }
  return r;
}

std::size_t Pipeline::NumTables() const {
  std::size_t n = 0;
  for (const Stage& s : stages_) n += s.tables.size();
  return n;
}

std::size_t Pipeline::StagesUsed() const {
  std::size_t n = 0;
  for (const Stage& s : stages_) {
    if (!s.tables.empty()) ++n;
  }
  return n;
}

}  // namespace pegasus::dataplane
