// Consecutive Range Coding (paper §6.1): converting a numeric range
// [lo, hi] over a w-bit field into TCAM ternary rules — plus the *other*
// CRC: a CRC-32 checksum used to seal model-artifact envelopes against
// torn or corrupted writes (control/registry.cpp). Both live here because
// they are the dataplane's two bit-twiddling primitives with no other
// dependencies.
//
// PISA TCAMs match (value, mask) pairs; a clustering-tree leaf is a
// hyperrectangle of fuzzy-match thresholds, so each dimension's interval
// must be expanded into prefix-style ternary rules. The classic bound is at
// most 2w-2 rules for a w-bit range; the expansion below achieves it by
// greedily emitting the largest aligned block that fits at the current
// cursor.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pegasus::dataplane {

/// One ternary match: bitwise (key & mask) == (value & mask).
struct TernaryRule {
  std::uint64_t value = 0;
  std::uint64_t mask = 0;  // 1-bits participate in the match

  bool Matches(std::uint64_t key) const {
    return (key & mask) == (value & mask);
  }
  bool operator==(const TernaryRule&) const = default;
};

/// Expands the inclusive integer range [lo, hi] over a `width`-bit field
/// into ternary rules whose union covers exactly [lo, hi].
/// Throws std::invalid_argument if lo > hi or hi does not fit in `width`.
std::vector<TernaryRule> RangeToTernary(std::uint64_t lo, std::uint64_t hi,
                                        int width);

/// Upper bound on the number of rules RangeToTernary can return.
inline int MaxRulesForWidth(int width) { return width <= 1 ? 1 : 2 * width - 2; }

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `size` bytes,
/// table-driven. `seed` lets callers chain incremental updates:
/// Crc32(b, n) == Crc32(b + k, n - k, Crc32(b, k)).
std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

}  // namespace pegasus::dataplane
