// Consecutive Range Coding (paper §6.1): converting a numeric range
// [lo, hi] over a w-bit field into TCAM ternary rules.
//
// PISA TCAMs match (value, mask) pairs; a clustering-tree leaf is a
// hyperrectangle of fuzzy-match thresholds, so each dimension's interval
// must be expanded into prefix-style ternary rules. The classic bound is at
// most 2w-2 rules for a w-bit range; the expansion below achieves it by
// greedily emitting the largest aligned block that fits at the current
// cursor.
#pragma once

#include <cstdint>
#include <vector>

namespace pegasus::dataplane {

/// One ternary match: bitwise (key & mask) == (value & mask).
struct TernaryRule {
  std::uint64_t value = 0;
  std::uint64_t mask = 0;  // 1-bits participate in the match

  bool Matches(std::uint64_t key) const {
    return (key & mask) == (value & mask);
  }
  bool operator==(const TernaryRule&) const = default;
};

/// Expands the inclusive integer range [lo, hi] over a `width`-bit field
/// into ternary rules whose union covers exactly [lo, hi].
/// Throws std::invalid_argument if lo > hi or hi does not fit in `width`.
std::vector<TernaryRule> RangeToTernary(std::uint64_t lo, std::uint64_t hi,
                                        int width);

/// Upper bound on the number of rules RangeToTernary can return.
inline int MaxRulesForWidth(int width) { return width <= 1 ? 1 : 2 * width - 2; }

}  // namespace pegasus::dataplane
