#include "dataplane/flow_key.hpp"

namespace pegasus::dataplane {

namespace {

/// splitmix64 finalizer — the same mixer runtime/flow_table.hpp uses, so
/// digest bits stay well distributed under the table's secondary mix.
std::uint64_t SplitMix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t Word(const std::array<std::uint8_t, 16>& a, std::size_t at) {
  std::uint64_t w = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    w = (w << 8) | a[at + i];
  }
  return w;
}

}  // namespace

FiveTuple Canonical(const FiveTuple& t) {
  // Endpoint order: address bytes first, port as the tiebreaker (two ends
  // of a conversation can share an address under NAT hairpinning).
  const bool swap = [&] {
    if (t.src != t.dst) return t.dst < t.src;
    return t.dst_port < t.src_port;
  }();
  if (!swap) return t;
  FiveTuple c = t;
  c.src = t.dst;
  c.dst = t.src;
  c.src_port = t.dst_port;
  c.dst_port = t.src_port;
  return c;
}

FlowKey DigestTuple(const FiveTuple& t) {
  const FiveTuple c = Canonical(t);
  std::uint64_t h = 0x9ae16a3b2f90404full;  // fixed seed
  h = SplitMix(h ^ (static_cast<std::uint64_t>(c.version) << 8 | c.proto));
  h = SplitMix(h ^ (static_cast<std::uint64_t>(c.src_port) << 16 |
                    c.dst_port));
  h = SplitMix(h ^ Word(c.src, 0));
  h = SplitMix(h ^ Word(c.src, 8));
  h = SplitMix(h ^ Word(c.dst, 0));
  h = SplitMix(h ^ Word(c.dst, 8));
  return FlowKey{h};
}

}  // namespace pegasus::dataplane
