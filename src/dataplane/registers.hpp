// Stateful per-flow registers.
//
// PISA keeps flow state (previous-packet timestamp, stored fuzzy indexes,
// running min/max features) in stage-local SRAM register arrays indexed by
// a hash of the flow key. The paper's Figure 7 studies exactly this cost:
// bits per flow times concurrent flows, which competes with mapping-table
// SRAM.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace pegasus::dataplane {

/// A 5-tuple flow key reduced to a 64-bit digest (the simulator never needs
/// the raw tuple; collisions are part of real switch behaviour too).
struct FlowKey {
  std::uint64_t digest = 0;
  bool operator==(const FlowKey&) const = default;
};

/// One register array: `num_slots` slots of `width_bits` each, indexed by
/// flow hash. Reads and writes are saturating to the slot width.
class RegisterArray {
 public:
  RegisterArray(std::string name, int width_bits, std::size_t num_slots);

  const std::string& name() const { return name_; }
  int width_bits() const { return width_bits_; }
  std::size_t num_slots() const { return slots_.size(); }

  std::size_t SlotFor(const FlowKey& key) const {
    return static_cast<std::size_t>(key.digest % slots_.size());
  }

  std::int64_t Read(const FlowKey& key) const {
    return slots_[SlotFor(key)];
  }
  /// Writes, saturating to the signed range of width_bits.
  void Write(const FlowKey& key, std::int64_t value);

  /// Total SRAM bits consumed by this array.
  std::size_t SramBits() const {
    return slots_.size() * static_cast<std::size_t>(width_bits_);
  }

 private:
  std::string name_;
  int width_bits_;
  std::vector<std::int64_t> slots_;
};

}  // namespace pegasus::dataplane
