#include "dataplane/registers.hpp"

#include <algorithm>

namespace pegasus::dataplane {

RegisterArray::RegisterArray(std::string name, int width_bits,
                             std::size_t num_slots)
    : name_(std::move(name)), width_bits_(width_bits) {
  if (width_bits < 1 || width_bits > 64) {
    throw std::invalid_argument("RegisterArray: width out of [1,64]");
  }
  if (num_slots == 0) {
    throw std::invalid_argument("RegisterArray: zero slots");
  }
  slots_.assign(num_slots, 0);
}

void RegisterArray::Write(const FlowKey& key, std::int64_t value) {
  if (width_bits_ < 64) {
    const std::int64_t hi = (std::int64_t{1} << (width_bits_ - 1)) - 1;
    const std::int64_t lo = -(std::int64_t{1} << (width_bits_ - 1));
    value = std::clamp(value, lo, hi);
  }
  slots_[SlotFor(key)] = value;
}

}  // namespace pegasus::dataplane
