#include "dataplane/table.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace pegasus::dataplane {

namespace {

// Key-gather scratch: tables keep at most a few dozen key fields; wider
// keys (flattened CNN windows) spill to a thread-local buffer.
constexpr std::size_t kStackKeyFields = 32;

inline std::uint64_t* KeyBuffer(std::size_t nk, std::uint64_t* stack_buf) {
  if (nk <= kStackKeyFields) return stack_buf;
  static thread_local std::vector<std::uint64_t> heap_buf;
  if (heap_buf.size() < nk) heap_buf.resize(nk);
  return heap_buf.data();
}

}  // namespace

MatchActionTable::MatchActionTable(std::string name, MatchKind kind,
                                   std::vector<FieldId> key_fields,
                                   std::vector<int> key_widths,
                                   std::vector<ActionOp> action_program,
                                   int action_data_word_bits)
    : name_(std::move(name)),
      kind_(kind),
      key_fields_(std::move(key_fields)),
      key_widths_(std::move(key_widths)),
      action_program_(std::move(action_program)),
      action_data_word_bits_(action_data_word_bits) {
  if (key_fields_.size() != key_widths_.size()) {
    throw std::invalid_argument("MatchActionTable: key width count mismatch");
  }
  if (action_data_word_bits_ <= 0 || action_data_word_bits_ > 64) {
    throw std::invalid_argument("MatchActionTable: bad action word width");
  }
}

void MatchActionTable::AddEntry(TableEntry entry) {
  if (kind_ == MatchKind::kExact) {
    if (entry.exact_key.size() != key_fields_.size()) {
      throw std::invalid_argument(name_ + ": exact key arity mismatch");
    }
    exact_index_[ExactHash(entry.exact_key)].push_back(
        static_cast<std::uint32_t>(entries_.size()));
  } else if (kind_ == MatchKind::kTernary) {
    if (entry.ternary.size() != key_fields_.size()) {
      throw std::invalid_argument(name_ + ": ternary rule arity mismatch");
    }
  } else {
    if (entry.range_lo.size() != key_fields_.size() ||
        entry.range_hi.size() != key_fields_.size()) {
      throw std::invalid_argument(name_ + ": range arity mismatch");
    }
  }
  entries_.push_back(std::move(entry));
  // Any mutation invalidates the compiled index until the next Seal().
  sealed_ = false;
  index_.reset();
  ++generation_;
}

void MatchActionTable::Seal() {
  if (sealed_) return;
  if (kind_ != MatchKind::kExact && entries_.size() >= kIndexMinEntries) {
    index_ = std::make_unique<MatchIndex>(
        std::span<const TableEntry>(entries_), kind_ == MatchKind::kTernary);
  }
  sealed_ = true;
  ever_sealed_ = true;
  ++generation_;
}

void MatchActionTable::ValidateDelta(
    std::span<const EntryPatch> patches) const {
  if (kind_ == MatchKind::kExact) {
    throw std::invalid_argument(name_ +
                                ": ApplyDelta on an exact-match table");
  }
  for (const EntryPatch& p : patches) {
    if (p.entry_index >= entries_.size()) {
      throw std::invalid_argument(name_ + ": patch entry index out of range");
    }
    const TableEntry& e = entries_[p.entry_index];
    if (kind_ == MatchKind::kTernary) {
      if (p.ternary.size() != key_fields_.size()) {
        throw std::invalid_argument(name_ + ": patch ternary arity mismatch");
      }
    } else {
      if (p.range_lo.size() != key_fields_.size() ||
          p.range_hi.size() != key_fields_.size()) {
        throw std::invalid_argument(name_ + ": patch range arity mismatch");
      }
    }
    if (p.action_data.size() != e.action_data.size()) {
      throw std::invalid_argument(name_ + ": patch resizes action data");
    }
    if (p.priority != e.priority) {
      throw std::invalid_argument(name_ + ": patch changes entry priority");
    }
    if (index_ && !index_->CanAbsorb(p)) {
      throw std::invalid_argument(
          name_ + ": patch not absorbable by the compiled index");
    }
  }
}

std::size_t MatchActionTable::ApplyDelta(
    std::span<const EntryPatch> patches) {
  // Validate everything before touching anything: a delta either applies
  // atomically or leaves the table byte-identical so the caller can
  // reseal instead.
  ValidateDelta(patches);
  for (const EntryPatch& p : patches) {
    TableEntry& e = entries_[p.entry_index];
    if (kind_ == MatchKind::kTernary) {
      e.ternary = p.ternary;
    } else {
      e.range_lo = p.range_lo;
      e.range_hi = p.range_hi;
    }
    std::copy(p.action_data.begin(), p.action_data.end(),
              e.action_data.begin());
  }
  if (index_) index_->ApplyDelta(patches);
  ++generation_;
  // Bytes a control plane pushes for this delta: the action-data words
  // plus the entry's value+mask match words. UpdatePlanner costs plans
  // with the identical formula; tests assert the two agree.
  const std::size_t match_bytes = (2 * KeyBits() + 7) / 8;
  std::size_t bytes = 0;
  for (const EntryPatch& p : patches) {
    bytes += (p.action_data.size() *
                  static_cast<std::size_t>(action_data_word_bits_) +
              7) /
                 8 +
             match_bytes;
  }
  return bytes;
}

std::unique_ptr<MatchActionTable> MatchActionTable::Clone() const {
  auto copy = std::make_unique<MatchActionTable>(
      name_, kind_, key_fields_, key_widths_, action_program_,
      action_data_word_bits_);
  copy->entries_ = entries_;
  copy->miss_program_ = miss_program_;
  copy->miss_data_ = miss_data_;
  copy->exact_index_ = exact_index_;
  copy->exact_hash_mask_ = exact_hash_mask_;
  copy->sealed_ = sealed_;
  copy->ever_sealed_ = ever_sealed_;
  copy->generation_ = generation_;
  if (index_) copy->index_ = std::make_unique<MatchIndex>(*index_);
  return copy;
}

void MatchActionTable::SetMissProgram(std::vector<ActionOp> ops,
                                      std::vector<std::int64_t> data) {
  miss_program_ = std::move(ops);
  miss_data_ = std::move(data);
  ++generation_;
}

namespace {

inline std::uint64_t FnvMixWord(std::uint64_t h, std::uint64_t word) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (word >> (byte * 8)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::uint64_t MatchActionTable::ExactHash(
    const std::vector<std::uint64_t>& key) const {
  // FNV-1a over the key words; collisions are harmless because the index
  // chains all entries per hash and Lookup verifies the full key.
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint64_t word : key) h = FnvMixWord(h, word);
  return h & exact_hash_mask_;
}

std::uint64_t MatchActionTable::ExactHashFromPhv(const Phv& phv) const {
  std::uint64_t h = 1469598103934665603ull;
  for (FieldId f : key_fields_) {
    h = FnvMixWord(h, static_cast<std::uint64_t>(phv.Get(f)));
  }
  return h & exact_hash_mask_;
}

std::optional<std::size_t> MatchActionTable::ExactLookup(
    const Phv& phv) const {
  const auto it = exact_index_.find(ExactHashFromPhv(phv));
  if (it == exact_index_.end()) return std::nullopt;
  // Chains hold insertion order; scan back-to-front so duplicate keys keep
  // the historical "latest AddEntry wins" behavior.
  const std::vector<std::uint32_t>& chain = it->second;
  for (auto ci = chain.rbegin(); ci != chain.rend(); ++ci) {
    if (EntryMatches(entries_[*ci], phv)) return *ci;
  }
  return std::nullopt;
}

bool MatchActionTable::EntryMatches(const TableEntry& e,
                                    const Phv& phv) const {
  if (kind_ == MatchKind::kExact) {
    for (std::size_t i = 0; i < key_fields_.size(); ++i) {
      if (static_cast<std::uint64_t>(phv.Get(key_fields_[i])) !=
          e.exact_key[i]) {
        return false;
      }
    }
    return true;
  }
  if (kind_ == MatchKind::kTernary) {
    for (std::size_t i = 0; i < key_fields_.size(); ++i) {
      if (!e.ternary[i].Matches(static_cast<std::uint64_t>(
              phv.Get(key_fields_[i])))) {
        return false;
      }
    }
    return true;
  }
  for (std::size_t i = 0; i < key_fields_.size(); ++i) {
    const auto v = static_cast<std::uint64_t>(phv.Get(key_fields_[i]));
    if (v < e.range_lo[i] || v > e.range_hi[i]) return false;
  }
  return true;
}

std::optional<std::size_t> MatchActionTable::LinearLookupTernary(
    const std::uint64_t* key) const {
  // Reference scan: highest priority wins; ties resolve to the earliest
  // entry, matching TCAM physical ordering.
  const std::size_t nk = key_fields_.size();
  std::optional<std::size_t> best;
  for (std::size_t ei = 0; ei < entries_.size(); ++ei) {
    const TableEntry& e = entries_[ei];
    bool match = true;
    if (kind_ == MatchKind::kTernary) {
      for (std::size_t i = 0; i < nk; ++i) {
        if (!e.ternary[i].Matches(key[i])) {
          match = false;
          break;
        }
      }
    } else {
      for (std::size_t i = 0; i < nk; ++i) {
        if (key[i] < e.range_lo[i] || key[i] > e.range_hi[i]) {
          match = false;
          break;
        }
      }
    }
    if (!match) continue;
    if (!best || e.priority > entries_[*best].priority) best = ei;
  }
  return best;
}

std::int32_t MatchActionTable::IndexedFind(const Phv& phv) const {
  const std::size_t nk = key_fields_.size();
  std::uint64_t stack_key[kStackKeyFields];
  std::uint64_t* key = KeyBuffer(nk, stack_key);
  for (std::size_t i = 0; i < nk; ++i) {
    key[i] = static_cast<std::uint64_t>(phv.Get(key_fields_[i]));
  }
  return index_->FindBest(key);
}

std::optional<std::size_t> MatchActionTable::Lookup(const Phv& phv) const {
  if (kind_ == MatchKind::kExact) return ExactLookup(phv);
  if (index_) {
    const std::int32_t pos = IndexedFind(phv);
    if (pos == MatchIndex::kMiss) return std::nullopt;
    return index_->EntryIndex(pos);
  }
  const std::size_t nk = key_fields_.size();
  std::uint64_t stack_key[kStackKeyFields];
  std::uint64_t* key = KeyBuffer(nk, stack_key);
  for (std::size_t i = 0; i < nk; ++i) {
    key[i] = static_cast<std::uint64_t>(phv.Get(key_fields_[i]));
  }
  return LinearLookupTernary(key);
}

void MatchActionTable::RunProgram(Phv& phv, const std::vector<ActionOp>& ops,
                                  std::span<const std::int64_t> data) const {
  for (const ActionOp& op : ops) {
    std::int64_t result = 0;
    switch (op.kind) {
      case ActionOp::Kind::kSetConst:
        result = op.imm;
        break;
      case ActionOp::Kind::kAddConst:
        result = phv.Get(op.target) + op.imm;
        break;
      case ActionOp::Kind::kSetFromData:
        if (op.data_index >= data.size()) {
          throw std::out_of_range(name_ + ": action data index");
        }
        result = data[op.data_index];
        break;
      case ActionOp::Kind::kAddFromData:
        if (op.data_index >= data.size()) {
          throw std::out_of_range(name_ + ": action data index");
        }
        result = phv.Get(op.target) + data[op.data_index];
        break;
    }
    if (op.sat_max >= 0) result = std::clamp<std::int64_t>(result, 0, op.sat_max);
    phv.Set(op.target, result);
  }
}

bool MatchActionTable::Apply(Phv& phv) const {
  assert(!invalidated() &&
         "MatchActionTable::Apply after seal invalidation — re-Seal() "
         "before serving");
  if (kind_ != MatchKind::kExact && index_) {
    const std::int32_t pos = IndexedFind(phv);
    if (pos != MatchIndex::kMiss) {
      RunProgram(phv, action_program_, index_->ActionData(pos));
      return true;
    }
    if (!miss_program_.empty()) RunProgram(phv, miss_program_, miss_data_);
    return false;
  }
  if (auto hit = Lookup(phv)) {
    RunProgram(phv, action_program_, entries_[*hit].action_data);
    return true;
  }
  if (!miss_program_.empty()) RunProgram(phv, miss_program_, miss_data_);
  return false;
}

std::size_t MatchActionTable::ApplyBatch(std::span<Phv> batch) const {
  assert(!invalidated() &&
         "MatchActionTable::ApplyBatch after seal invalidation — re-Seal() "
         "before serving");
  if (kind_ == MatchKind::kExact) {
    // Exact lookups are already O(1) hash probes; per-packet is fine.
    std::size_t hits = 0;
    for (Phv& phv : batch) {
      if (Apply(phv)) ++hits;
    }
    return hits;
  }
  const std::size_t nk = key_fields_.size();
  const std::size_t n = batch.size();
  // Reused scratch: no allocation on the steady-state hot path.
  static thread_local std::vector<std::uint64_t> keys;
  static thread_local std::vector<std::int32_t> best;
  keys.resize(n * nk);
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t i = 0; i < nk; ++i) {
      keys[p * nk + i] =
          static_cast<std::uint64_t>(batch[p].Get(key_fields_[i]));
    }
  }
  if (index_) {
    // Sealed path: one bit-vector probe per packet; the index is already
    // entry-order-free (priority is encoded in bitset position).
    std::size_t hits = 0;
    for (std::size_t p = 0; p < n; ++p) {
      const std::int32_t pos = index_->FindBest(keys.data() + p * nk);
      if (pos != MatchIndex::kMiss) {
        RunProgram(batch[p], action_program_, index_->ActionData(pos));
        ++hits;
      } else if (!miss_program_.empty()) {
        RunProgram(batch[p], miss_program_, miss_data_);
      }
    }
    return hits;
  }
  best.assign(n, -1);
  for (std::size_t ei = 0; ei < entries_.size(); ++ei) {
    const TableEntry& e = entries_[ei];
    const TernaryRule* rules = e.ternary.data();
    const std::uint64_t* lo = e.range_lo.data();
    const std::uint64_t* hi = e.range_hi.data();
    for (std::size_t p = 0; p < n; ++p) {
      const std::uint64_t* k = keys.data() + p * nk;
      bool match = true;
      if (kind_ == MatchKind::kTernary) {
        for (std::size_t i = 0; i < nk; ++i) {
          if (!rules[i].Matches(k[i])) {
            match = false;
            break;
          }
        }
      } else {
        for (std::size_t i = 0; i < nk; ++i) {
          if (k[i] < lo[i] || k[i] > hi[i]) {
            match = false;
            break;
          }
        }
      }
      if (!match) continue;
      // Highest priority wins; ties resolve to the earliest entry (ei
      // ascends), mirroring Lookup's TCAM ordering.
      if (best[p] < 0 ||
          e.priority > entries_[static_cast<std::size_t>(best[p])].priority) {
        best[p] = static_cast<std::int32_t>(ei);
      }
    }
  }
  std::size_t hits = 0;
  for (std::size_t p = 0; p < n; ++p) {
    if (best[p] >= 0) {
      RunProgram(batch[p], action_program_,
                 entries_[static_cast<std::size_t>(best[p])].action_data);
      ++hits;
    } else if (!miss_program_.empty()) {
      RunProgram(batch[p], miss_program_, miss_data_);
    }
  }
  return hits;
}

std::size_t MatchActionTable::KeyBits() const {
  std::size_t bits = 0;
  for (int w : key_widths_) bits += static_cast<std::size_t>(w);
  return bits;
}

std::size_t MatchActionTable::ActionDataBits() const {
  std::size_t max_words = 0;
  for (const auto& e : entries_) {
    max_words = std::max(max_words, e.action_data.size());
  }
  return max_words * static_cast<std::size_t>(action_data_word_bits_);
}

std::size_t MatchActionTable::SramBits() const {
  const std::size_t data_bits = ActionDataBits();
  if (kind_ == MatchKind::kExact) {
    return entries_.size() * (KeyBits() + data_bits);
  }
  return entries_.size() * data_bits;
}

std::size_t MatchActionTable::TcamBits() const {
  switch (kind_) {
    case MatchKind::kExact:
      return 0;
    case MatchKind::kTernary:
      return entries_.size() * 2 * KeyBits();  // value + mask planes
    case MatchKind::kRange: {
      // DirtCAM nibble encoding: every 4-bit nibble of the key occupies 16
      // TCAM bits, i.e. 4x the key width per entry.
      std::size_t nibble_bits = 0;
      for (int w : key_widths_) {
        nibble_bits += 4u * static_cast<std::size_t>((w + 3) / 4) * 4u;
      }
      return entries_.size() * nibble_bits;
    }
  }
  return 0;
}

}  // namespace pegasus::dataplane
