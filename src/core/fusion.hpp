// Primitive Fusion (paper §4.3, Figure 5).
//
// Every Map op costs one mapping-table lookup on the dataplane, so the
// compiler's job is to shrink the Map count without changing the program's
// function. Basic Primitive Fusion needs no model changes and rests on two
// rewrites the paper names explicitly:
//
//  (1) Linear Reordering — a SumReduce followed by a Map whose function is
//      additive (f(a+b) = f(a)+f(b)) commutes: apply the Map to each
//      summand, then SumReduce.
//  (2) Merging Consecutive Map Primitives — Map∘Map collapses into one Map
//      because each Map applies independently per partition.
//
// Two auxiliary rewrites make (1)/(2) reach the Figure 5 ❶ result on real
// layer stacks: an *elementwise* Map commutes with Partition (pushing BN /
// ReLU down into the per-segment tables), and nested SumReduces flatten.
//
// Advanced Primitive Fusion (❷ removal of nonlinear mappings, ❸ NAM-style
// reduction to a single SumReduce) changes the model architecture, so it
// lives in the model builders (src/models) — the passes here never alter
// semantics, which is what the property tests assert.
#pragma once

#include "core/program.hpp"

namespace pegasus::core {

struct FusionStats {
  std::size_t maps_before = 0;
  std::size_t maps_after = 0;
  std::size_t sum_reduces_before = 0;
  std::size_t sum_reduces_after = 0;
  std::size_t iterations = 0;
  /// Total rewrites applied across all iterations (0 on a fixpoint rerun —
  /// FuseBasic is idempotent).
  std::size_t rewrites = 0;
};

/// Rewrite (2): collapses Map chains where the intermediate value has a
/// single consumer. Returns the number of merges applied.
std::size_t MergeConsecutiveMaps(Program& p);

/// Auxiliary: Map (elementwise) feeding exactly one Partition is pushed
/// below it as per-segment Maps. Returns rewrites applied.
std::size_t PushElementwiseThroughPartition(Program& p);

/// Rewrite (1): SumReduce feeding exactly one additive Map is swapped.
/// Returns rewrites applied.
std::size_t LinearReorderOverSumReduce(Program& p);

/// Auxiliary: SumReduce whose input is another single-consumer SumReduce is
/// flattened. Returns rewrites applied.
std::size_t FlattenSumReduces(Program& p);

/// Runs all basic-fusion rewrites to a fixpoint. The program's semantics
/// are preserved exactly (up to float associativity).
FusionStats FuseBasic(Program& p);

}  // namespace pegasus::core
