// Fuzzy matching (paper §4.2).
//
// Instead of enumerating every possible input bit pattern (2^n entries),
// Pegasus builds an axis-aligned *clustering tree* over the training
// distribution of each Map primitive's input segment: internal nodes hold a
// (feature, threshold) test, leaves hold a centroid. An input sub-vector is
// routed to a leaf by comparisons only — dataplane-friendly — and the leaf
// index ("fuzzy index") keys the mapping table whose entries store the
// full-precision function applied to the centroid.
//
// The tree is grown greedily: at each step the split (leaf, feature,
// threshold) with the largest total SSE reduction is applied, exactly the
// Figure 3 procedure. Each leaf also records its bounding hyperrectangle in
// feature space so the runtime can lower it to TCAM ternary rules via CRC.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace pegasus::core {

/// Per-dimension inclusive integer interval of a leaf region, in the
/// quantized input domain. `lo == 0 && hi == domain_max` means the
/// dimension is unconstrained on that side of the tree.
struct LeafBox {
  std::vector<std::uint32_t> lo;
  std::vector<std::uint32_t> hi;
};

/// Axis-aligned clustering tree with integer-domain thresholds.
///
/// Inputs are quantized feature vectors (each dimension an unsigned value
/// in [0, 2^width)). Thresholds are of the form "x[f] <= t" with integer t,
/// so leaf regions are integer hyperrectangles.
class ClusterTree {
 public:
  struct FitConfig {
    std::size_t num_leaves = 16;
    /// Input domain width in bits per dimension (8 -> values in [0,255]).
    int input_bits = 8;
    /// Minimum samples a child must keep for a split to be considered.
    std::size_t min_leaf_samples = 1;
  };

  /// Learns the tree from row-major training data (`n` rows of `dim`
  /// columns). Throws std::invalid_argument on empty data or bad config.
  static ClusterTree Fit(std::span<const float> data, std::size_t n,
                         std::size_t dim, const FitConfig& cfg);

  /// Number of leaves (fuzzy-index range is [0, NumLeaves())).
  std::size_t NumLeaves() const { return leaves_.size(); }
  std::size_t dim() const { return dim_; }
  int input_bits() const { return input_bits_; }
  /// Depth of the comparison cascade (worst-case comparisons per lookup).
  std::size_t Depth() const;

  /// Routes a (float) input vector to its fuzzy index by tree traversal.
  std::size_t Lookup(std::span<const float> x) const;

  /// The centroid of a leaf — the approximation substituted for any input
  /// that lands there.
  std::span<const float> Centroid(std::size_t leaf) const;

  /// Mutable access for centroid refinement (paper §4.4 backpropagation).
  std::span<float> MutableCentroid(std::size_t leaf);

  /// Integer hyperrectangle of a leaf for TCAM rule generation.
  const LeafBox& Box(std::size_t leaf) const { return leaves_[leaf].box; }

  /// Total SSE of the training data against the leaf centroids at fit time
  /// (for tests: must not increase as num_leaves grows).
  double fit_sse() const { return fit_sse_; }

  /// Serialization to/from a binary stream (deployment artifact: the
  /// control plane ships trees + table values to the switch agent).
  void Save(std::ostream& os) const;
  static ClusterTree Load(std::istream& is);

 private:
  struct Node {
    // internal node: test x[feature] <= threshold ? left : right
    int feature = -1;
    std::uint32_t threshold = 0;
    int left = -1;
    int right = -1;
    // leaf node:
    int leaf_index = -1;
  };
  struct Leaf {
    std::vector<float> centroid;
    LeafBox box;
  };

  std::size_t dim_ = 0;
  int input_bits_ = 8;
  std::vector<Node> nodes_;
  std::vector<Leaf> leaves_;
  double fit_sse_ = 0.0;
};

}  // namespace pegasus::core
