#include "core/serialize.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

#include "core/stream_io.hpp"

namespace pegasus::core {

namespace {

constexpr std::uint64_t kMagic = kModelArtifactMagic;
constexpr std::uint32_t kVersion = kModelArtifactVersion;

// Shared helpers from core/stream_io.hpp; the local wrapper just pins the
// loader name reported on truncation.
template <typename T>
T ReadPod(std::istream& is) {
  return core::ReadPod<T>(is, "CompiledModel::Load");
}

// Every length field that sizes an allocation goes through the capped
// reader: a flipped bit in a count must surface as CorruptArtifactError,
// not as a multi-GB resize attempt.
template <typename T>
std::uint64_t ReadLen(std::istream& is,
                      std::uint64_t cap = core::kMaxStreamElements) {
  return core::ReadLength<T>(is, "CompiledModel::Load", cap);
}

void WriteString(std::ostream& os, const std::string& s) {
  WritePod<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string ReadString(std::istream& is) {
  // Names are human-written identifiers; 64 KiB is already generous.
  const auto len = ReadLen<std::uint32_t>(is, 1 << 16);
  std::string s(len, '\0');
  is.read(s.data(), static_cast<std::streamsize>(len));
  if (!is) throw core::CorruptArtifactError(
      "CompiledModel::Load: truncated string");
  return s;
}

void WriteIds(std::ostream& os, const std::vector<ValueId>& ids) {
  WritePod<std::uint32_t>(os, static_cast<std::uint32_t>(ids.size()));
  for (ValueId v : ids) WritePod<std::uint64_t>(os, v);
}

std::vector<ValueId> ReadIds(std::istream& is) {
  std::vector<ValueId> ids(ReadLen<std::uint32_t>(is));
  for (ValueId& v : ids) v = ReadPod<std::uint64_t>(is);
  return ids;
}

}  // namespace

void SaveCompiledModel(std::ostream& os, const CompiledModel& model) {
  model.Save(os);
}

CompiledModel LoadCompiledModel(std::istream& is) {
  return CompiledModel::Load(is);
}

void CompiledModel::Save(std::ostream& os) const {
  WritePod(os, kMagic);
  WritePod(os, kVersion);
  // options
  WritePod<std::int32_t>(os, options_.input_bits);
  WritePod<std::int32_t>(os, options_.value_bits);
  WritePod<std::uint64_t>(os, options_.default_fuzzy_leaves);
  WritePod<std::uint8_t>(os, options_.refine_outputs ? 1 : 0);
  WritePod<double>(os, options_.range_margin);
  WritePod<std::int32_t>(os, options_.max_domain_bits);

  // program values
  const Program& p = program_;
  WritePod<std::uint32_t>(os, static_cast<std::uint32_t>(p.NumValues()));
  for (std::size_t v = 0; v < p.NumValues(); ++v) {
    WriteString(os, p.value(v).name);
    WritePod<std::uint64_t>(os, p.value(v).dim);
  }
  WritePod<std::uint64_t>(os, p.input());
  WritePod<std::uint64_t>(os, p.output());

  // ops (Map functions reduced to their signature)
  WritePod<std::uint32_t>(os, static_cast<std::uint32_t>(p.ops().size()));
  for (const Op& op : p.ops()) {
    WritePod<std::uint8_t>(os, static_cast<std::uint8_t>(op.kind));
    switch (op.kind) {
      case OpKind::kPartition: {
        WritePod<std::uint64_t>(os, op.partition.input);
        WritePod<std::uint32_t>(
            os, static_cast<std::uint32_t>(op.partition.segments.size()));
        for (const PartitionSegment& s : op.partition.segments) {
          WritePod<std::uint64_t>(os, s.offset);
          WritePod<std::uint64_t>(os, s.length);
          WritePod<std::uint64_t>(os, s.output);
        }
        break;
      }
      case OpKind::kMap: {
        WritePod<std::uint64_t>(os, op.map.input);
        WritePod<std::uint64_t>(os, op.map.output);
        WritePod<std::uint64_t>(os, op.map.fuzzy_leaves);
        WriteString(os, op.map.fn.name);
        WritePod<std::uint64_t>(os, op.map.fn.in_dim);
        WritePod<std::uint64_t>(os, op.map.fn.out_dim);
        break;
      }
      case OpKind::kSumReduce: {
        WriteIds(os, op.sum_reduce.inputs);
        WritePod<std::uint64_t>(os, op.sum_reduce.output);
        break;
      }
      case OpKind::kConcat: {
        WriteIds(os, op.concat.inputs);
        WritePod<std::uint64_t>(os, op.concat.output);
        break;
      }
    }
  }

  // quantization plan
  for (std::size_t v = 0; v < p.NumValues(); ++v) {
    WritePod<std::uint32_t>(os, static_cast<std::uint32_t>(quant_[v].size()));
    for (const DimQuant& q : quant_[v]) {
      WritePod<std::int32_t>(os, q.fmt.total_bits);
      WritePod<std::int32_t>(os, q.fmt.frac_bits);
      WritePod<std::int64_t>(os, q.bias);
      WritePod<std::int32_t>(os, q.domain_bits);
    }
  }

  // fuzzy tables
  for (const auto& table : tables_) {
    WritePod<std::uint8_t>(os, table ? 1 : 0);
    if (!table) continue;
    table->tree.Save(os);
    WritePod<std::uint32_t>(os,
                            static_cast<std::uint32_t>(table->leaf_raw.size()));
    for (const auto& row : table->leaf_raw) {
      WritePod<std::uint32_t>(os, static_cast<std::uint32_t>(row.size()));
      for (std::int64_t w : row) WritePod<std::int64_t>(os, w);
    }
  }
}

CompiledModel CompiledModel::Load(std::istream& is) {
  if (ReadPod<std::uint64_t>(is) != kMagic) {
    throw std::runtime_error("CompiledModel::Load: bad magic");
  }
  if (ReadPod<std::uint32_t>(is) != kVersion) {
    throw std::runtime_error("CompiledModel::Load: unsupported version");
  }
  CompiledModel model;
  model.options_.input_bits = ReadPod<std::int32_t>(is);
  model.options_.value_bits = ReadPod<std::int32_t>(is);
  model.options_.default_fuzzy_leaves = ReadPod<std::uint64_t>(is);
  model.options_.refine_outputs = ReadPod<std::uint8_t>(is) != 0;
  model.options_.range_margin = ReadPod<double>(is);
  model.options_.max_domain_bits = ReadPod<std::int32_t>(is);

  Program p;
  const auto num_values =
      static_cast<std::uint32_t>(ReadLen<std::uint32_t>(is));
  for (std::uint32_t v = 0; v < num_values; ++v) {
    const std::string name = ReadString(is);
    const auto dim = ReadPod<std::uint64_t>(is);
    p.AddValue(name, dim);
  }
  p.SetInput(ReadPod<std::uint64_t>(is));
  p.SetOutput(ReadPod<std::uint64_t>(is));

  const auto num_ops = static_cast<std::uint32_t>(ReadLen<std::uint32_t>(is));
  for (std::uint32_t i = 0; i < num_ops; ++i) {
    Op op;
    op.kind = static_cast<OpKind>(ReadPod<std::uint8_t>(is));
    switch (op.kind) {
      case OpKind::kPartition: {
        op.partition.input = ReadPod<std::uint64_t>(is);
        const auto segs = ReadLen<std::uint32_t>(is);
        for (std::uint32_t s = 0; s < segs; ++s) {
          PartitionSegment seg;
          seg.offset = ReadPod<std::uint64_t>(is);
          seg.length = ReadPod<std::uint64_t>(is);
          seg.output = ReadPod<std::uint64_t>(is);
          op.partition.segments.push_back(seg);
        }
        break;
      }
      case OpKind::kMap: {
        op.map.input = ReadPod<std::uint64_t>(is);
        op.map.output = ReadPod<std::uint64_t>(is);
        op.map.fuzzy_leaves = ReadPod<std::uint64_t>(is);
        op.map.fn.name = ReadString(is);
        op.map.fn.in_dim = ReadPod<std::uint64_t>(is);
        op.map.fn.out_dim = ReadPod<std::uint64_t>(is);
        // Placeholder: the host function is a training-side artifact.
        op.map.fn.fn = [name = op.map.fn.name](std::span<const float>)
            -> std::vector<float> {
          throw std::logic_error("Map '" + name +
                                 "' was loaded from a deployment artifact; "
                                 "its host function is not serialized");
        };
        break;
      }
      case OpKind::kSumReduce: {
        op.sum_reduce.inputs = ReadIds(is);
        op.sum_reduce.output = ReadPod<std::uint64_t>(is);
        break;
      }
      case OpKind::kConcat: {
        op.concat.inputs = ReadIds(is);
        op.concat.output = ReadPod<std::uint64_t>(is);
        break;
      }
      default:
        throw std::runtime_error("CompiledModel::Load: bad op kind");
    }
    p.Append(std::move(op));
  }
  p.Validate();

  model.quant_.resize(num_values);
  for (std::uint32_t v = 0; v < num_values; ++v) {
    const auto dims = ReadLen<std::uint32_t>(is);
    model.quant_[v].resize(dims);
    for (DimQuant& q : model.quant_[v]) {
      q.fmt.total_bits = ReadPod<std::int32_t>(is);
      q.fmt.frac_bits = ReadPod<std::int32_t>(is);
      q.bias = ReadPod<std::int64_t>(is);
      q.domain_bits = ReadPod<std::int32_t>(is);
    }
  }

  model.tables_.resize(num_ops);
  for (std::uint32_t i = 0; i < num_ops; ++i) {
    if (ReadPod<std::uint8_t>(is) == 0) continue;
    FuzzyMapTable table;
    table.tree = ClusterTree::Load(is);
    table.leaf_raw.resize(ReadLen<std::uint32_t>(is));
    for (auto& row : table.leaf_raw) {
      row.resize(ReadLen<std::uint32_t>(is));
      for (std::int64_t& w : row) w = ReadPod<std::int64_t>(is);
    }
    model.tables_[i] = std::move(table);
  }
  model.program_ = std::move(p);
  return model;
}

}  // namespace pegasus::core
