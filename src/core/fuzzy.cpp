#include "core/fuzzy.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>
#include <stdexcept>

#include "core/stream_io.hpp"

namespace pegasus::core {

namespace {

struct SplitChoice {
  bool valid = false;
  int feature = -1;
  std::uint32_t threshold = 0;
  double gain = 0.0;  // SSE reduction
};

/// SSE of a set of rows against their mean, summed over all dims, computed
/// from aggregate sums: sum of squares minus n * mean^2 per dim.
double SseFromSums(std::span<const double> sum, std::span<const double> sumsq,
                   std::size_t n) {
  if (n == 0) return 0.0;
  double sse = 0.0;
  for (std::size_t d = 0; d < sum.size(); ++d) {
    sse += sumsq[d] - sum[d] * sum[d] / static_cast<double>(n);
  }
  return std::max(sse, 0.0);
}

struct WorkItem {
  std::vector<std::size_t> rows;
  LeafBox box;
  int node_slot;
  double sse;
  SplitChoice best;
  bool best_computed = false;
};

}  // namespace

ClusterTree ClusterTree::Fit(std::span<const float> data, std::size_t n,
                             std::size_t dim, const FitConfig& cfg) {
  if (n == 0 || dim == 0 || data.size() != n * dim) {
    throw std::invalid_argument("ClusterTree::Fit: bad data dimensions");
  }
  if (cfg.num_leaves == 0) {
    throw std::invalid_argument("ClusterTree::Fit: num_leaves must be >= 1");
  }
  if (cfg.input_bits < 1 || cfg.input_bits > 31) {
    throw std::invalid_argument("ClusterTree::Fit: input_bits out of [1,31]");
  }
  const std::uint32_t domain_max =
      (std::uint32_t{1} << cfg.input_bits) - 1;

  // Quantize rows into the integer domain once.
  std::vector<std::uint32_t> q(n * dim);
  for (std::size_t i = 0; i < n * dim; ++i) {
    const float v = std::clamp(data[i], 0.0f,
                               static_cast<float>(domain_max));
    q[i] = static_cast<std::uint32_t>(std::lround(v));
  }

  ClusterTree tree;
  tree.dim_ = dim;
  tree.input_bits_ = cfg.input_bits;
  tree.nodes_.push_back(Node{});  // root at slot 0

  auto leaf_sse = [&](const std::vector<std::size_t>& rows) {
    std::vector<double> sum(dim, 0.0), sumsq(dim, 0.0);
    for (std::size_t r : rows) {
      for (std::size_t d = 0; d < dim; ++d) {
        const double v = q[r * dim + d];
        sum[d] += v;
        sumsq[d] += v * v;
      }
    }
    return SseFromSums(sum, sumsq, rows.size());
  };

  auto find_best_split = [&](const WorkItem& w) {
    SplitChoice best;
    const std::size_t rows = w.rows.size();
    if (rows < 2 * cfg.min_leaf_samples) return best;
    std::vector<std::size_t> order(w.rows);
    std::vector<double> pre_sum(dim), pre_sq(dim), tot_sum(dim), tot_sq(dim);
    for (std::size_t d = 0; d < dim; ++d) {
      tot_sum[d] = 0.0;
      tot_sq[d] = 0.0;
    }
    for (std::size_t r : w.rows) {
      for (std::size_t d = 0; d < dim; ++d) {
        const double v = q[r * dim + d];
        tot_sum[d] += v;
        tot_sq[d] += v * v;
      }
    }
    const double parent_sse = SseFromSums(tot_sum, tot_sq, rows);
    for (std::size_t f = 0; f < dim; ++f) {
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                  return q[a * dim + f] < q[b * dim + f];
                });
      std::fill(pre_sum.begin(), pre_sum.end(), 0.0);
      std::fill(pre_sq.begin(), pre_sq.end(), 0.0);
      for (std::size_t i = 0; i + 1 < rows; ++i) {
        const std::size_t r = order[i];
        for (std::size_t d = 0; d < dim; ++d) {
          const double v = q[r * dim + d];
          pre_sum[d] += v;
          pre_sq[d] += v * v;
        }
        const std::uint32_t cur = q[r * dim + f];
        const std::uint32_t next = q[order[i + 1] * dim + f];
        if (cur == next) continue;  // not a boundary between distinct values
        const std::size_t left_n = i + 1;
        const std::size_t right_n = rows - left_n;
        if (left_n < cfg.min_leaf_samples || right_n < cfg.min_leaf_samples) {
          continue;
        }
        std::vector<double> right_sum(dim), right_sq(dim);
        for (std::size_t d = 0; d < dim; ++d) {
          right_sum[d] = tot_sum[d] - pre_sum[d];
          right_sq[d] = tot_sq[d] - pre_sq[d];
        }
        const double child_sse = SseFromSums(pre_sum, pre_sq, left_n) +
                                 SseFromSums(right_sum, right_sq, right_n);
        const double gain = parent_sse - child_sse;
        if (gain > best.gain + 1e-12) {
          best.valid = true;
          best.feature = static_cast<int>(f);
          best.threshold = cur;  // test: x[f] <= cur
          best.gain = gain;
        }
      }
    }
    return best;
  };

  std::vector<WorkItem> actives;
  {
    WorkItem root;
    root.rows.resize(n);
    std::iota(root.rows.begin(), root.rows.end(), 0);
    root.box.lo.assign(dim, 0);
    root.box.hi.assign(dim, domain_max);
    root.node_slot = 0;
    root.sse = leaf_sse(root.rows);
    actives.push_back(std::move(root));
  }

  while (actives.size() < cfg.num_leaves) {
    // Choose the active leaf whose best split reduces total SSE the most.
    std::size_t best_i = actives.size();
    double best_gain = 0.0;
    for (std::size_t i = 0; i < actives.size(); ++i) {
      if (!actives[i].best_computed) {
        actives[i].best = find_best_split(actives[i]);
        actives[i].best_computed = true;
      }
      if (actives[i].best.valid && actives[i].best.gain > best_gain) {
        best_gain = actives[i].best.gain;
        best_i = i;
      }
    }
    if (best_i == actives.size()) break;  // nothing splittable

    WorkItem parent = std::move(actives[best_i]);
    actives.erase(actives.begin() + static_cast<std::ptrdiff_t>(best_i));

    const int f = parent.best.feature;
    const std::uint32_t t = parent.best.threshold;
    WorkItem left, right;
    left.box = parent.box;
    right.box = parent.box;
    left.box.hi[static_cast<std::size_t>(f)] = t;
    right.box.lo[static_cast<std::size_t>(f)] = t + 1;
    for (std::size_t r : parent.rows) {
      (q[r * dim + static_cast<std::size_t>(f)] <= t ? left.rows
                                                     : right.rows)
          .push_back(r);
    }
    // Turn the parent's slot into an internal node with two children.
    const int left_slot = static_cast<int>(tree.nodes_.size());
    tree.nodes_.push_back(Node{});
    const int right_slot = static_cast<int>(tree.nodes_.size());
    tree.nodes_.push_back(Node{});
    Node& pnode = tree.nodes_[static_cast<std::size_t>(parent.node_slot)];
    pnode.feature = f;
    pnode.threshold = t;
    pnode.left = left_slot;
    pnode.right = right_slot;
    left.node_slot = left_slot;
    right.node_slot = right_slot;
    left.sse = leaf_sse(left.rows);
    right.sse = leaf_sse(right.rows);
    actives.push_back(std::move(left));
    actives.push_back(std::move(right));
  }

  // Finalize leaves.
  tree.fit_sse_ = 0.0;
  for (WorkItem& w : actives) {
    Leaf leaf;
    leaf.centroid.assign(dim, 0.0f);
    for (std::size_t r : w.rows) {
      for (std::size_t d = 0; d < dim; ++d) {
        leaf.centroid[d] += static_cast<float>(q[r * dim + d]);
      }
    }
    for (std::size_t d = 0; d < dim; ++d) {
      leaf.centroid[d] /= static_cast<float>(w.rows.size());
    }
    leaf.box = std::move(w.box);
    tree.nodes_[static_cast<std::size_t>(w.node_slot)].leaf_index =
        static_cast<int>(tree.leaves_.size());
    tree.leaves_.push_back(std::move(leaf));
    tree.fit_sse_ += w.sse;
  }
  return tree;
}

std::size_t ClusterTree::Depth() const {
  // Iterative depth computation over the explicit node structure.
  struct Frame {
    int node;
    std::size_t depth;
  };
  std::size_t max_depth = 0;
  std::vector<Frame> stack{{0, 0}};
  while (!stack.empty()) {
    const Frame fr = stack.back();
    stack.pop_back();
    const Node& nd = nodes_[static_cast<std::size_t>(fr.node)];
    if (nd.leaf_index >= 0) {
      max_depth = std::max(max_depth, fr.depth);
      continue;
    }
    stack.push_back({nd.left, fr.depth + 1});
    stack.push_back({nd.right, fr.depth + 1});
  }
  return max_depth;
}

std::size_t ClusterTree::Lookup(std::span<const float> x) const {
  if (x.size() != dim_) {
    throw std::invalid_argument("ClusterTree::Lookup: dim mismatch");
  }
  const std::uint32_t domain_max =
      (std::uint32_t{1} << input_bits_) - 1;
  int node = 0;
  while (true) {
    const Node& nd = nodes_[static_cast<std::size_t>(node)];
    if (nd.leaf_index >= 0) return static_cast<std::size_t>(nd.leaf_index);
    const float v = std::clamp(x[static_cast<std::size_t>(nd.feature)], 0.0f,
                               static_cast<float>(domain_max));
    const auto qi = static_cast<std::uint32_t>(std::lround(v));
    node = qi <= nd.threshold ? nd.left : nd.right;
  }
}

namespace {

// Shared helpers from core/stream_io.hpp; the local wrapper just pins the
// loader name reported on truncation.
template <typename T>
T ReadPod(std::istream& is) {
  return core::ReadPod<T>(is, "ClusterTree::Load");
}

}  // namespace

void ClusterTree::Save(std::ostream& os) const {
  WritePod<std::uint64_t>(os, 0x50454746555A5901ull);  // "PEGFUZY" v1
  WritePod<std::uint32_t>(os, static_cast<std::uint32_t>(dim_));
  WritePod<std::int32_t>(os, input_bits_);
  WritePod<std::uint32_t>(os, static_cast<std::uint32_t>(nodes_.size()));
  for (const Node& nd : nodes_) {
    WritePod<std::int32_t>(os, nd.feature);
    WritePod<std::uint32_t>(os, nd.threshold);
    WritePod<std::int32_t>(os, nd.left);
    WritePod<std::int32_t>(os, nd.right);
    WritePod<std::int32_t>(os, nd.leaf_index);
  }
  WritePod<std::uint32_t>(os, static_cast<std::uint32_t>(leaves_.size()));
  for (const Leaf& leaf : leaves_) {
    for (float c : leaf.centroid) WritePod<float>(os, c);
    for (std::uint32_t v : leaf.box.lo) WritePod<std::uint32_t>(os, v);
    for (std::uint32_t v : leaf.box.hi) WritePod<std::uint32_t>(os, v);
  }
  WritePod<double>(os, fit_sse_);
}

ClusterTree ClusterTree::Load(std::istream& is) {
  if (ReadPod<std::uint64_t>(is) != 0x50454746555A5901ull) {
    throw std::runtime_error("ClusterTree::Load: bad magic");
  }
  ClusterTree tree;
  // dim_ sizes three per-leaf resizes below; cap it tightly (feature
  // vectors here are tens of dims, not millions).
  tree.dim_ = static_cast<std::size_t>(
      core::ReadLength<std::uint32_t>(is, "ClusterTree::Load", 1 << 20));
  tree.input_bits_ = ReadPod<std::int32_t>(is);
  const auto num_nodes =
      core::ReadLength<std::uint32_t>(is, "ClusterTree::Load");
  tree.nodes_.resize(num_nodes);
  for (Node& nd : tree.nodes_) {
    nd.feature = ReadPod<std::int32_t>(is);
    nd.threshold = ReadPod<std::uint32_t>(is);
    nd.left = ReadPod<std::int32_t>(is);
    nd.right = ReadPod<std::int32_t>(is);
    nd.leaf_index = ReadPod<std::int32_t>(is);
  }
  const auto num_leaves =
      core::ReadLength<std::uint32_t>(is, "ClusterTree::Load");
  tree.leaves_.resize(num_leaves);
  for (Leaf& leaf : tree.leaves_) {
    leaf.centroid.resize(tree.dim_);
    for (float& c : leaf.centroid) c = ReadPod<float>(is);
    leaf.box.lo.resize(tree.dim_);
    for (std::uint32_t& v : leaf.box.lo) v = ReadPod<std::uint32_t>(is);
    leaf.box.hi.resize(tree.dim_);
    for (std::uint32_t& v : leaf.box.hi) v = ReadPod<std::uint32_t>(is);
  }
  tree.fit_sse_ = ReadPod<double>(is);
  return tree;
}

std::span<const float> ClusterTree::Centroid(std::size_t leaf) const {
  return leaves_.at(leaf).centroid;
}

std::span<float> ClusterTree::MutableCentroid(std::size_t leaf) {
  return leaves_.at(leaf).centroid;
}

}  // namespace pegasus::core
