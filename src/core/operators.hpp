// MapFunction factories for the DL operators of Table 4 (paper §5), plus
// the composite lowering of Weighted Aggregation (FC / Conv) into
// Partition -> Map -> SumReduce sequences on a ProgramBuilder.
//
// During inference all weights/biases are constants baked into the
// functions ("these can be treated as constants, part of the function
// rather than inputs"), which is exactly why a Map can realize them as a
// precomputed table.
#pragma once

#include <span>
#include <vector>

#include "core/program.hpp"

namespace pegasus::core {

/// y = x * W + b over a segment: W is [in x out] row-major, b optional
/// (empty = none). additive == (b empty).
MapFunction MakeLinear(std::vector<float> w, std::size_t in, std::size_t out,
                       std::vector<float> b, std::string name = "linear");

/// Element-wise affine y_i = scale_i * x_i + shift_i (BN at inference).
MapFunction MakeAffine(std::vector<float> scale, std::vector<float> shift,
                       std::string name = "affine");

/// Element-wise ReLU over `dim` elements.
MapFunction MakeReLU(std::size_t dim);

/// Element-wise tanh.
MapFunction MakeTanhFn(std::size_t dim);

/// Element-wise logistic sigmoid.
MapFunction MakeSigmoidFn(std::size_t dim);

/// Scalar-output max over the segment (max-pooling as a Multi-Input
/// Operation realized by a single Map).
MapFunction MakeMaxFn(std::size_t dim);

/// Scalar-output mean over the segment (average pooling).
MapFunction MakeMeanFn(std::size_t dim);

/// Embedding Lookup: scalar index -> `dim`-wide row of `table`
/// ([rows x dim] row-major). Out-of-range indices clamp.
MapFunction MakeEmbeddingFn(std::vector<float> table, std::size_t rows,
                            std::size_t dim);

/// Arbitrary per-segment subnetwork: wraps any callable. Used for Advanced
/// Primitive Fusion (❸), where a whole sub-model becomes one Map.
MapFunction MakeSubnet(std::string name, std::size_t in, std::size_t out,
                       std::function<std::vector<float>(
                           std::span<const float>)> fn);

/// Element-wise product of two equal halves (Table 4's Hadamard, the
/// gating op of recurrent cells): [2F] -> [F].
MapFunction MakeHadamardFn(std::size_t half_dim);

/// Scalar exponential (the first stage of the §5 Softmax decomposition).
MapFunction MakeExpFn(std::size_t dim);

/// Softmax as primitives (paper §5, Multi-Input Operation, first method):
/// exp Maps per element -> SumReduce -> per-element normalization Maps
/// keyed on (sum, exp_i) -> Concat. Returns the softmax output value.
/// Demonstrates that even division-bearing operators lower to the three
/// primitives; classifiers don't need it (argmax is monotone in logits).
ValueId AppendSoftmax(ProgramBuilder& b, ValueId x, std::size_t dim,
                      std::size_t fuzzy_leaves);

/// Weighted Aggregation (paper §5): appends a fully connected layer
/// y = x W + b to the builder as Partition(dim=segment) -> per-segment
/// linear Maps -> SumReduce. The bias is folded into the first segment's
/// Map so the SumReduce yields the complete result.
/// `w` is [in x out] row-major, in = dim of `x`.
ValueId AppendFullyConnected(ProgramBuilder& b, ValueId x,
                             std::span<const float> w, std::size_t in,
                             std::size_t out, std::span<const float> bias,
                             std::size_t segment_dim,
                             std::size_t fuzzy_leaves);

}  // namespace pegasus::core
