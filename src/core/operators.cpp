#include "core/operators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pegasus::core {

MapFunction MakeLinear(std::vector<float> w, std::size_t in, std::size_t out,
                       std::vector<float> b, std::string name) {
  if (w.size() != in * out) {
    throw std::invalid_argument("MakeLinear: weight size mismatch");
  }
  if (!b.empty() && b.size() != out) {
    throw std::invalid_argument("MakeLinear: bias size mismatch");
  }
  MapFunction f;
  f.name = std::move(name);
  f.in_dim = in;
  f.out_dim = out;
  f.elementwise = false;
  f.additive = b.empty();
  f.fn = [w = std::move(w), b = std::move(b), in,
          out](std::span<const float> x) {
    std::vector<float> y(out, 0.0f);
    if (!b.empty()) std::copy(b.begin(), b.end(), y.begin());
    for (std::size_t i = 0; i < in; ++i) {
      const float xv = x[i];
      if (xv == 0.0f) continue;
      for (std::size_t j = 0; j < out; ++j) y[j] += xv * w[i * out + j];
    }
    return y;
  };
  return f;
}

MapFunction MakeAffine(std::vector<float> scale, std::vector<float> shift,
                       std::string name) {
  if (scale.size() != shift.size() || scale.empty()) {
    throw std::invalid_argument("MakeAffine: size mismatch");
  }
  MapFunction f;
  f.name = std::move(name);
  f.in_dim = scale.size();
  f.out_dim = scale.size();
  f.elementwise = true;
  // Affine with a shift is not additive; a pure scaling is.
  f.additive = std::all_of(shift.begin(), shift.end(),
                           [](float s) { return s == 0.0f; });
  f.fn = [scale = std::move(scale),
          shift = std::move(shift)](std::span<const float> x) {
    std::vector<float> y(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      y[i] = scale[i] * x[i] + shift[i];
    }
    return y;
  };
  return f;
}

MapFunction MakeReLU(std::size_t dim) {
  MapFunction f;
  f.name = "relu";
  f.in_dim = dim;
  f.out_dim = dim;
  f.elementwise = true;
  f.additive = false;
  f.fn = [](std::span<const float> x) {
    std::vector<float> y(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) y[i] = std::max(0.0f, x[i]);
    return y;
  };
  return f;
}

MapFunction MakeTanhFn(std::size_t dim) {
  MapFunction f;
  f.name = "tanh";
  f.in_dim = dim;
  f.out_dim = dim;
  f.elementwise = true;
  f.additive = false;
  f.fn = [](std::span<const float> x) {
    std::vector<float> y(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) y[i] = std::tanh(x[i]);
    return y;
  };
  return f;
}

MapFunction MakeSigmoidFn(std::size_t dim) {
  MapFunction f;
  f.name = "sigmoid";
  f.in_dim = dim;
  f.out_dim = dim;
  f.elementwise = true;
  f.additive = false;
  f.fn = [](std::span<const float> x) {
    std::vector<float> y(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      y[i] = 1.0f / (1.0f + std::exp(-x[i]));
    }
    return y;
  };
  return f;
}

MapFunction MakeMaxFn(std::size_t dim) {
  MapFunction f;
  f.name = "max";
  f.in_dim = dim;
  f.out_dim = 1;
  f.elementwise = false;
  f.additive = false;
  f.fn = [](std::span<const float> x) {
    return std::vector<float>{*std::max_element(x.begin(), x.end())};
  };
  return f;
}

MapFunction MakeMeanFn(std::size_t dim) {
  MapFunction f;
  f.name = "mean";
  f.in_dim = dim;
  f.out_dim = 1;
  f.elementwise = false;
  f.additive = true;  // mean(a+b) = mean(a)+mean(b)
  f.fn = [dim](std::span<const float> x) {
    float acc = 0.0f;
    for (float v : x) acc += v;
    return std::vector<float>{acc / static_cast<float>(dim)};
  };
  return f;
}

MapFunction MakeEmbeddingFn(std::vector<float> table, std::size_t rows,
                            std::size_t dim) {
  if (table.size() != rows * dim || rows == 0) {
    throw std::invalid_argument("MakeEmbeddingFn: table size mismatch");
  }
  MapFunction f;
  f.name = "embedding";
  f.in_dim = 1;
  f.out_dim = dim;
  f.elementwise = false;
  f.additive = false;
  f.fn = [table = std::move(table), rows, dim](std::span<const float> x) {
    auto idx = static_cast<std::int64_t>(std::lround(x[0]));
    idx = std::clamp<std::int64_t>(idx, 0,
                                   static_cast<std::int64_t>(rows) - 1);
    const auto base = static_cast<std::size_t>(idx) * dim;
    return std::vector<float>(table.begin() + static_cast<std::ptrdiff_t>(base),
                              table.begin() +
                                  static_cast<std::ptrdiff_t>(base + dim));
  };
  return f;
}

MapFunction MakeSubnet(std::string name, std::size_t in, std::size_t out,
                       std::function<std::vector<float>(
                           std::span<const float>)> fn) {
  MapFunction f;
  f.name = std::move(name);
  f.in_dim = in;
  f.out_dim = out;
  f.elementwise = false;
  f.additive = false;
  f.fn = std::move(fn);
  return f;
}

MapFunction MakeHadamardFn(std::size_t half_dim) {
  MapFunction f;
  f.name = "hadamard";
  f.in_dim = 2 * half_dim;
  f.out_dim = half_dim;
  f.elementwise = false;
  f.additive = false;
  f.fn = [half_dim](std::span<const float> x) {
    std::vector<float> y(half_dim);
    for (std::size_t i = 0; i < half_dim; ++i) {
      y[i] = x[i] * x[half_dim + i];
    }
    return y;
  };
  return f;
}

MapFunction MakeExpFn(std::size_t dim) {
  MapFunction f;
  f.name = "exp";
  f.in_dim = dim;
  f.out_dim = dim;
  f.elementwise = true;
  f.additive = false;
  f.fn = [](std::span<const float> x) {
    std::vector<float> y(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) y[i] = std::exp(x[i]);
    return y;
  };
  return f;
}

ValueId AppendSoftmax(ProgramBuilder& b, ValueId x, std::size_t dim,
                      std::size_t fuzzy_leaves) {
  if (dim == 0) {
    throw std::invalid_argument("AppendSoftmax: zero dim");
  }
  // Per-element exp Maps (Partition to scalars, Map exp).
  const std::vector<ValueId> elems = b.Partition(x, 1, 1);
  std::vector<ValueId> exp_for_sum;
  for (ValueId e : elems) {
    exp_for_sum.push_back(b.Map(e, MakeExpFn(1), fuzzy_leaves));
  }
  const ValueId denom = b.SumReduce(std::span<const ValueId>(exp_for_sum));
  // Normalization Maps keyed on (denominator, x_i): e^{x_i} / sum. A second
  // Partition provides fresh x_i values (a value may feed one chain).
  const std::vector<ValueId> elems2 = b.Partition(x, 1, 1);
  std::vector<ValueId> normalized;
  for (ValueId e : elems2) {
    const ValueId key = b.Concat({denom, e});
    MapFunction norm;
    norm.name = "softmax_norm";
    norm.in_dim = 2;
    norm.out_dim = 1;
    norm.fn = [](std::span<const float> in) {
      const float sum = std::max(in[0], 1e-12f);
      return std::vector<float>{std::exp(in[1]) / sum};
    };
    normalized.push_back(b.Map(key, std::move(norm), fuzzy_leaves));
  }
  return b.Concat(std::span<const ValueId>(normalized));
}

ValueId AppendFullyConnected(ProgramBuilder& b, ValueId x,
                             std::span<const float> w, std::size_t in,
                             std::size_t out, std::span<const float> bias,
                             std::size_t segment_dim,
                             std::size_t fuzzy_leaves) {
  if (w.size() != in * out) {
    throw std::invalid_argument("AppendFullyConnected: weight size mismatch");
  }
  if (segment_dim == 0 || in % segment_dim != 0) {
    throw std::invalid_argument(
        "AppendFullyConnected: segment_dim must divide input dim");
  }
  const std::vector<ValueId> segs = b.Partition(x, segment_dim, segment_dim);
  std::vector<ValueId> mapped;
  mapped.reserve(segs.size());
  for (std::size_t s = 0; s < segs.size(); ++s) {
    // Rows [s*segment_dim, (s+1)*segment_dim) of W.
    std::vector<float> w_rows(w.begin() +
                                  static_cast<std::ptrdiff_t>(s * segment_dim *
                                                              out),
                              w.begin() +
                                  static_cast<std::ptrdiff_t>(
                                      (s + 1) * segment_dim * out));
    std::vector<float> seg_bias;
    if (s == 0 && !bias.empty()) {
      seg_bias.assign(bias.begin(), bias.end());
    }
    MapFunction fn =
        MakeLinear(std::move(w_rows), segment_dim, out, std::move(seg_bias),
                   "fc_seg" + std::to_string(s));
    mapped.push_back(b.Map(segs[s], std::move(fn), fuzzy_leaves));
  }
  if (mapped.size() == 1) return mapped[0];
  return b.SumReduce(std::span<const ValueId>(mapped));
}

}  // namespace pegasus::core
