#include "core/fusion.hpp"

#include <algorithm>
#include <optional>

namespace pegasus::core {

namespace {

/// Index of the single op consuming `v`, or nullopt if it has != 1 op
/// consumers or is the program output.
std::optional<std::size_t> SoleConsumer(const Program& p, ValueId v) {
  if (v == p.output()) return std::nullopt;
  std::optional<std::size_t> found;
  const auto& ops = p.ops();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    std::size_t reads = 0;
    switch (op.kind) {
      case OpKind::kPartition:
        reads = op.partition.input == v ? 1 : 0;
        break;
      case OpKind::kMap:
        reads = op.map.input == v ? 1 : 0;
        break;
      case OpKind::kSumReduce:
        reads = static_cast<std::size_t>(
            std::count(op.sum_reduce.inputs.begin(),
                       op.sum_reduce.inputs.end(), v));
        break;
      case OpKind::kConcat:
        reads = static_cast<std::size_t>(std::count(
            op.concat.inputs.begin(), op.concat.inputs.end(), v));
        break;
    }
    if (reads == 0) continue;
    if (found || reads > 1) return std::nullopt;
    found = i;
  }
  return found;
}

}  // namespace

std::size_t MergeConsecutiveMaps(Program& p) {
  std::size_t merges = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    auto& ops = p.mutable_ops();
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].kind != OpKind::kMap) continue;
      const ValueId mid = ops[i].map.output;
      auto consumer = SoleConsumer(p, mid);
      if (!consumer || ops[*consumer].kind != OpKind::kMap) continue;
      Op& a = ops[i];
      Op& b = ops[*consumer];
      b.map.fn = Compose(a.map.fn, b.map.fn);
      b.map.input = a.map.input;
      b.map.fuzzy_leaves = std::max(a.map.fuzzy_leaves, b.map.fuzzy_leaves);
      ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i));
      ++merges;
      changed = true;
      break;
    }
  }
  if (merges > 0) p.Validate();
  return merges;
}

std::size_t PushElementwiseThroughPartition(Program& p) {
  std::size_t rewrites = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    auto& ops = p.mutable_ops();
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].kind != OpKind::kMap || !ops[i].map.fn.elementwise) continue;
      const ValueId mid = ops[i].map.output;
      auto consumer = SoleConsumer(p, mid);
      if (!consumer || ops[*consumer].kind != OpKind::kPartition) continue;

      const MapOp map_op = ops[i].map;  // copy before mutation
      Op& part = ops[*consumer];
      part.partition.input = map_op.input;

      // Insert per-segment restricted Maps right after the Partition. Each
      // segment gets a fresh raw value; the old segment value becomes the
      // restricted Map's output so downstream ops are untouched.
      std::vector<Op> seg_maps;
      for (PartitionSegment& s : part.partition.segments) {
        const ValueId raw = p.AddValue(
            p.value(s.output).name + "_raw", s.length);
        Op m;
        m.kind = OpKind::kMap;
        m.map.input = raw;
        m.map.output = s.output;
        m.map.fn = SliceElementwise(map_op.fn, s.offset, s.length);
        m.map.fuzzy_leaves = map_op.fuzzy_leaves;
        s.output = raw;
        seg_maps.push_back(std::move(m));
      }
      const std::size_t part_pos = *consumer > i ? *consumer - 1 : *consumer;
      ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i));
      ops.insert(ops.begin() + static_cast<std::ptrdiff_t>(part_pos) + 1,
                 std::make_move_iterator(seg_maps.begin()),
                 std::make_move_iterator(seg_maps.end()));
      ++rewrites;
      changed = true;
      break;
    }
  }
  if (rewrites > 0) p.Validate();
  return rewrites;
}

std::size_t LinearReorderOverSumReduce(Program& p) {
  std::size_t rewrites = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    auto& ops = p.mutable_ops();
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].kind != OpKind::kSumReduce) continue;
      const ValueId mid = ops[i].sum_reduce.output;
      auto consumer = SoleConsumer(p, mid);
      if (!consumer || ops[*consumer].kind != OpKind::kMap) continue;
      if (!ops[*consumer].map.fn.additive) continue;

      const SumReduceOp sr = ops[i].sum_reduce;
      const MapOp mp = ops[*consumer].map;

      // Build: t_j = Map(x_j); Map.output = SumReduce(t_1..t_k).
      std::vector<Op> new_ops;
      std::vector<ValueId> mapped;
      for (ValueId x : sr.inputs) {
        const ValueId t = p.AddValue("lr_t", mp.fn.out_dim);
        Op m;
        m.kind = OpKind::kMap;
        m.map.input = x;
        m.map.output = t;
        m.map.fn = mp.fn;
        m.map.fuzzy_leaves = mp.fuzzy_leaves;
        new_ops.push_back(std::move(m));
        mapped.push_back(t);
      }
      Op s;
      s.kind = OpKind::kSumReduce;
      s.sum_reduce.inputs = std::move(mapped);
      s.sum_reduce.output = mp.output;
      new_ops.push_back(std::move(s));

      // Remove the Map first (it is later in the vector), then replace the
      // SumReduce slot with the new op sequence.
      ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(*consumer));
      ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i));
      ops.insert(ops.begin() + static_cast<std::ptrdiff_t>(i),
                 std::make_move_iterator(new_ops.begin()),
                 std::make_move_iterator(new_ops.end()));
      ++rewrites;
      changed = true;
      break;
    }
  }
  if (rewrites > 0) p.Validate();
  return rewrites;
}

std::size_t FlattenSumReduces(Program& p) {
  std::size_t rewrites = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    auto& ops = p.mutable_ops();
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].kind != OpKind::kSumReduce) continue;
      const ValueId mid = ops[i].sum_reduce.output;
      auto consumer = SoleConsumer(p, mid);
      if (!consumer || ops[*consumer].kind != OpKind::kSumReduce) continue;
      Op& inner = ops[i];
      Op& outer = ops[*consumer];
      auto it = std::find(outer.sum_reduce.inputs.begin(),
                          outer.sum_reduce.inputs.end(), mid);
      it = outer.sum_reduce.inputs.erase(it);
      outer.sum_reduce.inputs.insert(it, inner.sum_reduce.inputs.begin(),
                                     inner.sum_reduce.inputs.end());
      ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i));
      ++rewrites;
      changed = true;
      break;
    }
  }
  if (rewrites > 0) p.Validate();
  return rewrites;
}

FusionStats FuseBasic(Program& p) {
  FusionStats stats;
  stats.maps_before = p.NumMaps();
  stats.sum_reduces_before = p.NumSumReduces();
  // Fixpoint over all rewrites. Each rewrite strictly reduces op count or
  // unblocks a reduction, so this terminates; the iteration cap is a
  // safety net.
  for (std::size_t iter = 0; iter < 64; ++iter) {
    std::size_t total = 0;
    total += PushElementwiseThroughPartition(p);
    total += LinearReorderOverSumReduce(p);
    total += MergeConsecutiveMaps(p);
    total += FlattenSumReduces(p);
    ++stats.iterations;
    stats.rewrites += total;
    if (total == 0) break;
  }
  stats.maps_after = p.NumMaps();
  stats.sum_reduces_after = p.NumSumReduces();
  return stats;
}

}  // namespace pegasus::core
