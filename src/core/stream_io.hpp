// POD stream helpers shared by every binary-artifact writer/reader
// (core/serialize.cpp, core/fuzzy.cpp, control/registry.cpp). One
// definition means one place to fix validation or byte-order handling —
// the on-disk formats cannot silently diverge across readers.
//
// Values are written in native byte order (the artifacts are host-local
// deployment files, not wire formats).
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <type_traits>

namespace pegasus::core {

/// Structured error for artifacts that fail validation on load: bad magic,
/// checksum mismatch, truncation, or length fields that no honest writer
/// could have produced. Derives runtime_error so pre-existing callers that
/// catch the generic type keep working; new callers catch this to
/// distinguish "corrupt file" from "programming error" and fall back to
/// the previous known-good artifact.
class CorruptArtifactError : public std::runtime_error {
 public:
  explicit CorruptArtifactError(const std::string& what)
      : std::runtime_error(what) {}
};

template <typename T>
inline void WritePod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

/// `what` names the loader in truncation errors, e.g. "ClusterTree::Load".
template <typename T>
inline T ReadPod(std::istream& is, const char* what) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) {
    throw CorruptArtifactError(std::string(what) + ": truncated stream");
  }
  return v;
}

/// Ceiling on any element count read from an artifact. The largest honest
/// artifacts this repo produces hold a few million table rows; 1<<28
/// leaves two orders of magnitude of headroom while keeping the worst
/// admissible `resize` in the hundreds-of-MB range instead of the
/// hundreds-of-GB a corrupted 64-bit length field can demand.
inline constexpr std::uint64_t kMaxStreamElements = 1ull << 28;

/// Reads a length/count field and validates it against `cap` before the
/// caller allocates: a corrupted or adversarial length field must be
/// rejected as CorruptArtifactError, never fed to resize()/string()
/// (allocation bomb). Every loader length read goes through here.
template <typename T>
inline std::uint64_t ReadLength(std::istream& is, const char* what,
                                std::uint64_t cap = kMaxStreamElements) {
  static_assert(std::is_unsigned_v<T>, "length fields are unsigned");
  const std::uint64_t n = ReadPod<T>(is, what);
  if (n > cap) {
    throw CorruptArtifactError(std::string(what) + ": length field " +
                               std::to_string(n) + " exceeds cap " +
                               std::to_string(cap) +
                               " (corrupt or adversarial artifact)");
  }
  return n;
}

}  // namespace pegasus::core
