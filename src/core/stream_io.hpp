// POD stream helpers shared by every binary-artifact writer/reader
// (core/serialize.cpp, core/fuzzy.cpp, control/registry.cpp). One
// definition means one place to fix validation or byte-order handling —
// the on-disk formats cannot silently diverge across readers.
//
// Values are written in native byte order (the artifacts are host-local
// deployment files, not wire formats).
#pragma once

#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace pegasus::core {

template <typename T>
inline void WritePod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

/// `what` names the loader in truncation errors, e.g. "ClusterTree::Load".
template <typename T>
inline T ReadPod(std::istream& is, const char* what) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) {
    throw std::runtime_error(std::string(what) + ": truncated stream");
  }
  return v;
}

}  // namespace pegasus::core
