// CompiledModel serialization — the deployment artifact a control plane
// ships to the switch agent: program wiring, quantization plan, clustering
// trees and precomputed table values.
//
// Host-side Map functions are training-time objects and are NOT serialized;
// a loaded model supports EvaluateRaw / Evaluate and runtime::Lower
// (everything the dataplane needs) but not the float reference interpreter
// (Program::Evaluate) or recompilation.
//
// CompiledModel::Save/Load are thin wrappers over these free functions.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "core/tablegen.hpp"

namespace pegasus::core {

/// Artifact magic ("PEGASUS") and the current format version. Load rejects
/// streams with a different magic or version.
inline constexpr std::uint64_t kModelArtifactMagic = 0x50454741535553ull;
inline constexpr std::uint32_t kModelArtifactVersion = 1;

/// Writes the deployable state of `model` to `os` in the versioned binary
/// artifact format.
void SaveCompiledModel(std::ostream& os, const CompiledModel& model);

/// Reads an artifact written by SaveCompiledModel. Throws
/// std::runtime_error on bad magic, unsupported version or truncation.
CompiledModel LoadCompiledModel(std::istream& is);

}  // namespace pegasus::core
