// The Pegasus primitive IR (paper §4.1, Table 3).
//
// A DL model is compiled into a dataflow program over named vector values
// with exactly three op kinds:
//
//   Partition(X)            = {X1, ..., Xk}     (select sub-vectors)
//   Map(F, {X1,...,Xk})     = {F1(X1),...,Fk(Xk)}  (per-segment functions)
//   SumReduce({X1,...,Xk})  = sum_i Xi          (element-wise summation)
//
// Each Map carries its full-precision host function plus the metadata the
// fusion passes need: `elementwise` (applies per element, so it commutes
// with Partition) and `additive` (f(a+b) = f(a)+f(b), so it commutes with
// SumReduce — the paper's "linearity property" in Basic Primitive Fusion).
//
// The IR has a reference interpreter (full-precision, host floats) used by
// the tests to prove fusion passes preserve semantics, and by Figure 9 as
// the "CPU/GPU" comparison path.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/fuzzy.hpp"

namespace pegasus::core {

using ValueId = std::size_t;

/// A typed SSA-like value: a fixed-dimension vector of reals.
struct ValueInfo {
  std::string name;
  std::size_t dim = 0;
};

/// Full-precision function attached to a Map op.
struct MapFunction {
  std::string name;
  std::size_t in_dim = 0;
  std::size_t out_dim = 0;
  /// f applies independently per element (requires in_dim == out_dim at
  /// call sites that exploit it; used to push Maps through Partitions).
  bool elementwise = false;
  /// f(a+b) == f(a)+f(b) element-wise (pure linear, no bias) — licenses the
  /// Linear Reordering rewrite across SumReduce.
  bool additive = false;
  std::function<std::vector<float>(std::span<const float>)> fn;
};

/// Composition g(f(x)) with metadata intersection.
MapFunction Compose(const MapFunction& f, const MapFunction& g);

/// Restriction of an elementwise function to a [offset, offset+len) slice.
MapFunction SliceElementwise(const MapFunction& f, std::size_t offset,
                             std::size_t len);

struct PartitionSegment {
  std::size_t offset = 0;
  std::size_t length = 0;
  ValueId output = 0;
};

struct PartitionOp {
  ValueId input = 0;
  std::vector<PartitionSegment> segments;
};

struct MapOp {
  ValueId input = 0;
  ValueId output = 0;
  MapFunction fn;
  /// Number of clustering-tree leaves the dataplane realization may use for
  /// this Map (fuzzy-match budget). 0 = exact (enumerate input domain).
  std::size_t fuzzy_leaves = 0;
};

struct SumReduceOp {
  std::vector<ValueId> inputs;
  ValueId output = 0;
};

/// Pure wiring: packs several values into one vector (the inverse of
/// Partition). Map in Table 3 produces a *set* of outputs which downstream
/// primitives consume as a single conceptual vector; Concat realizes that
/// re-packing. It is free on the dataplane (PHV field aliasing).
struct ConcatOp {
  std::vector<ValueId> inputs;
  ValueId output = 0;
};

enum class OpKind { kPartition, kMap, kSumReduce, kConcat };

struct Op {
  OpKind kind = OpKind::kMap;
  PartitionOp partition;
  MapOp map;
  SumReduceOp sum_reduce;
  ConcatOp concat;
};

/// A primitive program: values + topologically ordered ops, with one
/// designated input vector and one output vector.
class Program {
 public:
  ValueId AddValue(std::string name, std::size_t dim);

  const ValueInfo& value(ValueId id) const { return values_.at(id); }
  std::size_t NumValues() const { return values_.size(); }

  void SetInput(ValueId id) { input_ = id; }
  void SetOutput(ValueId id) { output_ = id; }
  ValueId input() const { return input_; }
  ValueId output() const { return output_; }

  void Append(Op op) { ops_.push_back(std::move(op)); }
  const std::vector<Op>& ops() const { return ops_; }
  std::vector<Op>& mutable_ops() { return ops_; }

  std::size_t NumMaps() const;
  std::size_t NumSumReduces() const;

  /// Structural checks: dims agree, every op's inputs are produced before
  /// use, output is produced. Throws std::logic_error on violation.
  void Validate() const;

  /// Reference interpreter: evaluates the program on a host float vector.
  std::vector<float> Evaluate(std::span<const float> input) const;

 private:
  std::vector<ValueInfo> values_;
  std::vector<Op> ops_;
  ValueId input_ = 0;
  ValueId output_ = 0;
};

/// Convenience builder mirroring the Pegasus Syntax (paper §6.2, Figure 6):
/// nested SumReduce(Map(Partition(...))) expressions become chained calls.
class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::size_t input_dim,
                          std::string input_name = "input");

  /// Splits `input` into contiguous segments of `dim` every `stride`
  /// elements (Figure 6's `Partition(vec, dim=2, stride=2)`).
  std::vector<ValueId> Partition(ValueId input, std::size_t dim,
                                 std::size_t stride);
  /// Arbitrary (offset, length) segments.
  std::vector<ValueId> PartitionExplicit(
      ValueId input, std::span<const std::pair<std::size_t, std::size_t>>
                         segments);

  ValueId Map(ValueId input, MapFunction fn, std::size_t fuzzy_leaves);

  ValueId SumReduce(std::span<const ValueId> inputs);
  ValueId SumReduce(std::initializer_list<ValueId> inputs);

  ValueId Concat(std::span<const ValueId> inputs);
  ValueId Concat(std::initializer_list<ValueId> inputs);

  ValueId input() const { return program_.input(); }
  /// Dimension of a value created so far (for front-ends that want to
  /// validate before Finish()).
  std::size_t dim(ValueId v) const { return program_.value(v).dim; }
  Program Finish(ValueId output);

 private:
  Program program_;
  std::size_t next_id_ = 0;
  std::string FreshName(const std::string& stem);
};

}  // namespace pegasus::core
