// Mapping-table generation (paper §4.2 fuzzy matching + §4.4 mapping
// optimization).
//
// CompileProgram turns a (typically fused) primitive Program plus its
// training-input distribution into a CompiledModel:
//
//  * a quantization plan — per value dimension, a fixed-point Format, a
//    bias and an unsigned match domain, so every PHV field holds
//    u = raw + bias in [0, 2^domain_bits) (the "adaptive fixed-point
//    quantization" of §4.4: every table's stored outputs use their own
//    fixed-point position chosen from the observed numerical range);
//
//  * per Map op, a fuzzy table — a ClusterTree fitted on the *propagated*
//    quantized inputs of that Map (so later tables see the approximation
//    error of earlier ones, as on the real switch), and per-leaf raw output
//    words holding the full-precision function result, quantized;
//
//  * optionally, §4.4's output refinement: instead of f(centroid), a leaf
//    stores the training-mean of f(x) over the samples routed to it — the
//    value output-side backpropagation converges to under L2 loss.
//
// CompiledModel::Evaluate is the host-side reference of the dataplane
// execution and is *bit-exact* with the lowered pipeline (saturating adds
// in the same order, identical clamping): the integration tests assert it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <vector>

#include "core/fuzzy.hpp"
#include "core/program.hpp"
#include "fixedpoint/fixedpoint.hpp"

namespace pegasus::core {

/// Quantization of one value dimension.
struct DimQuant {
  fixedpoint::Format fmt;
  std::int64_t bias = 0;
  int domain_bits = 8;

  std::int64_t DomainMax() const {
    return (std::int64_t{1} << domain_bits) - 1;
  }
};

/// The dataplane realization of one Map op.
struct FuzzyMapTable {
  ClusterTree tree;
  /// Per leaf: out_dim raw words in the output value's format.
  std::vector<std::vector<std::int64_t>> leaf_raw;
};

struct CompileOptions {
  /// Bit width of program-input features (match keys).
  int input_bits = 8;
  /// Total bits of fixed-point activation words.
  int value_bits = 16;
  /// Leaves for Map ops that did not specify fuzzy_leaves.
  std::size_t default_fuzzy_leaves = 16;
  /// §4.4 refinement: store per-leaf training means instead of f(centroid).
  bool refine_outputs = true;
  /// Range margin applied when sizing formats/domains, as a fraction of the
  /// observed training range per side.
  double range_margin = 0.25;
  /// Cap on the match-domain width of any value dimension. Wider domains
  /// would explode the CRC ternary expansion; when the cap binds, the
  /// value's fixed-point resolution is coarsened (fewer frac bits) so the
  /// whole range still fits — trading activation precision for TCAM, the
  /// same dial the paper's translator turns.
  int max_domain_bits = 10;
  /// Fraction of additional *uniform-random* probe inputs appended to the
  /// training set before fitting (0 = none; 1.0 doubles the data).
  /// Mapping-table values are precomputed from the known function, so
  /// probing beyond the training distribution is always sound; it matters
  /// for anomaly detectors, whose whole job is to score regions benign
  /// training data never visits (the Figure 8 AutoEncoder uses this).
  double uniform_augment = 0.0;
  std::uint64_t augment_seed = 97;
};

struct QuantizationPlan;

/// A program compiled against a training distribution.
class CompiledModel {
 public:
  const Program& program() const { return program_; }
  const std::vector<std::vector<DimQuant>>& quant() const { return quant_; }
  const std::vector<std::optional<FuzzyMapTable>>& tables() const {
    return tables_;
  }

  /// Dataplane-equivalent inference on one input feature vector (values in
  /// [0, 2^input_bits)). Returns dequantized outputs.
  std::vector<float> Evaluate(std::span<const float> input) const;

  /// Raw (fixed-point) outputs, for tests that compare against the switch
  /// simulator bit-for-bit.
  std::vector<std::int64_t> EvaluateRaw(std::span<const float> input) const;

  /// Sum of leaf counts over all tables (total mapping-table entries before
  /// TCAM expansion).
  std::size_t TotalLeaves() const;

  /// Number of Map tables (the paper's "table lookups" metric, Figure 5).
  std::size_t NumTables() const;

  const CompileOptions& options() const { return options_; }

  /// Serializes the *deployable* state: program structure, quantization
  /// plan, clustering trees and table values — everything EvaluateRaw /
  /// runtime::Lower need. Map host functions are NOT serialized (they are
  /// training-side artifacts); a loaded model supports the dataplane paths
  /// but not Program::Evaluate.
  void Save(std::ostream& os) const;
  static CompiledModel Load(std::istream& is);

 private:
  friend CompiledModel BuildFuzzyTables(Program program,
                                        QuantizationPlan plan,
                                        std::span<const float> train_inputs,
                                        std::size_t n,
                                        const CompileOptions& options);

  Program program_;
  CompileOptions options_;
  std::vector<std::vector<DimQuant>> quant_;           // [value][dim]
  std::vector<std::optional<FuzzyMapTable>> tables_;   // [op index]
};

/// Compiles `program` against `n` training inputs (row-major, dim =
/// program input dim). Throws std::invalid_argument on empty data.
///
/// Equivalent to the staged sequence AugmentTrainingInputs ->
/// PlanQuantization -> BuildFuzzyTables below; the compiler::PassManager
/// runs those stages as individual named passes with per-pass diagnostics.
CompiledModel CompileProgram(Program program,
                             std::span<const float> train_inputs,
                             std::size_t n, const CompileOptions& options);

// ---------------------------------------------------------------------------
// Staged compilation API (driven by pegasus::compiler).
// ---------------------------------------------------------------------------

/// The quantization plan for every program value, plus the SumReduce
/// consumer analysis both later stages depend on.
struct QuantizationPlan {
  std::vector<std::vector<DimQuant>> quant;  // [value][dim]
  /// Values consumed by a SumReduce: never materialized as PHV fields;
  /// their raw words are accumulated directly (Figure 4's AddFromData).
  std::vector<bool> feeds_sum;               // [value]
};

/// Applies CompileOptions::uniform_augment: returns the training matrix
/// with `uniform_augment * n` uniform-random probe rows appended and sets
/// `augmented_n` to the new row count. Returns an empty vector (and
/// `augmented_n = n`) when no augmentation is configured — callers keep
/// using the original span.
std::vector<float> AugmentTrainingInputs(std::size_t in_dim,
                                         std::span<const float> train_inputs,
                                         std::size_t n,
                                         const CompileOptions& options,
                                         std::size_t& augmented_n);

/// Stage 1 (§4.4 adaptive fixed-point quantization): interprets the program
/// in full precision over the training inputs, collects per-dimension value
/// ranges (including SumReduce partial-sum excursions) and chooses every
/// value's fixed-point format, bias and match-domain width. Validates the
/// program and its SumReduce structure; throws std::invalid_argument /
/// std::logic_error as CompileProgram does.
QuantizationPlan PlanQuantization(const Program& program,
                                  std::span<const float> train_inputs,
                                  std::size_t n, const CompileOptions& options);

/// Stage 2 (§4.2 fuzzy matching): fits one clustering tree per Map op on the
/// *propagated* quantized inputs and fills the per-leaf output words,
/// producing the final CompiledModel. `plan` must come from PlanQuantization
/// over the same program and training inputs.
CompiledModel BuildFuzzyTables(Program program, QuantizationPlan plan,
                               std::span<const float> train_inputs,
                               std::size_t n, const CompileOptions& options);

}  // namespace pegasus::core
