// Pegasus Syntax (paper §6.2, Figure 6): a small declarative language for
// wiring primitives, so model authors "focus on high-level logic design
// without delving into the intricacies of low-level P4 code".
//
// Grammar (statements end with ';', '#' starts a line comment):
//
//   input  <name>[<dim>];
//   <name> = <expr>;
//   output <expr>;
//
//   expr := Partition(<expr>, dim=<int>, stride=<int>)     -> segment list
//         | Map(<expr>, fn=<ident> [, leaves=<int>])       -> value / list
//         | SumReduce(<expr> {, <expr>})                   -> value
//         | Concat(<expr> {, <expr>})                      -> value
//         | <ident>                                        -> bound value
//
// Map applies per element when given a segment list (the set semantics of
// Table 3: Map(F, {X1..Xk}) = {F1(X1)..Fk(Xk)}); `fn` names either a single
// MapFunction (shared across segments) or a function family registered with
// one function per segment.
//
// Weights cannot be written in a text file, so functions are provided by a
// FunctionRegistry — the same separation the paper's translator has between
// the syntax and the trained parameters it splices in.
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/program.hpp"

namespace pegasus::core {

/// Thrown on any parse or binding error; carries line information.
class SyntaxError : public std::runtime_error {
 public:
  SyntaxError(std::size_t line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Named MapFunctions (and families) the syntax can reference.
class FunctionRegistry {
 public:
  /// Registers one function usable for any segment with a matching dim.
  void Register(std::string name, MapFunction fn);
  /// Registers a per-segment family: segment i uses family[i].
  void RegisterFamily(std::string name, std::vector<MapFunction> family);

  bool Contains(const std::string& name) const;
  /// Function for segment `index` out of `count`; throws SyntaxError-free
  /// std::out_of_range on unknown name or family size mismatch.
  const MapFunction& Resolve(const std::string& name, std::size_t index,
                             std::size_t count) const;

 private:
  std::map<std::string, std::vector<MapFunction>> fns_;
};

struct ParseOptions {
  std::size_t default_fuzzy_leaves = 16;
};

/// Parses Pegasus Syntax source into a validated primitive Program.
Program ParsePegasusSyntax(const std::string& source,
                           const FunctionRegistry& registry,
                           const ParseOptions& options = {});

}  // namespace pegasus::core
