#include "core/program.hpp"

#include <stdexcept>

namespace pegasus::core {

MapFunction Compose(const MapFunction& f, const MapFunction& g) {
  if (f.out_dim != g.in_dim) {
    throw std::invalid_argument("Compose: dim mismatch " + f.name + " -> " +
                                g.name);
  }
  MapFunction out;
  out.name = g.name + "∘" + f.name;
  out.in_dim = f.in_dim;
  out.out_dim = g.out_dim;
  out.elementwise = f.elementwise && g.elementwise;
  out.additive = f.additive && g.additive;
  auto ff = f.fn;
  auto gf = g.fn;
  out.fn = [ff, gf](std::span<const float> x) {
    std::vector<float> mid = ff(x);
    return gf(mid);
  };
  return out;
}

MapFunction SliceElementwise(const MapFunction& f, std::size_t offset,
                             std::size_t len) {
  if (!f.elementwise) {
    throw std::invalid_argument("SliceElementwise: " + f.name +
                                " is not elementwise");
  }
  MapFunction out;
  out.name = f.name + "[" + std::to_string(offset) + ":" +
             std::to_string(offset + len) + "]";
  out.in_dim = len;
  out.out_dim = len;
  out.elementwise = true;
  out.additive = f.additive;
  auto ff = f.fn;
  const std::size_t full = f.in_dim;
  out.fn = [ff, offset, len, full](std::span<const float> x) {
    // Embed the slice into a full-width vector, apply, and re-slice. An
    // elementwise function must not couple positions, so padding with zeros
    // is safe.
    std::vector<float> padded(full, 0.0f);
    for (std::size_t i = 0; i < len; ++i) padded[offset + i] = x[i];
    std::vector<float> y = ff(padded);
    return std::vector<float>(y.begin() + static_cast<std::ptrdiff_t>(offset),
                              y.begin() +
                                  static_cast<std::ptrdiff_t>(offset + len));
  };
  return out;
}

ValueId Program::AddValue(std::string name, std::size_t dim) {
  if (dim == 0) {
    throw std::invalid_argument("Program::AddValue: zero-dim value " + name);
  }
  values_.push_back(ValueInfo{std::move(name), dim});
  return values_.size() - 1;
}

std::size_t Program::NumMaps() const {
  std::size_t n = 0;
  for (const Op& op : ops_) {
    if (op.kind == OpKind::kMap) ++n;
  }
  return n;
}

std::size_t Program::NumSumReduces() const {
  std::size_t n = 0;
  for (const Op& op : ops_) {
    if (op.kind == OpKind::kSumReduce) ++n;
  }
  return n;
}

void Program::Validate() const {
  std::vector<bool> defined(values_.size(), false);
  if (input_ >= values_.size()) throw std::logic_error("bad input id");
  defined[input_] = true;
  auto require_defined = [&](ValueId v, const char* what) {
    if (v >= values_.size() || !defined[v]) {
      throw std::logic_error(std::string("use before def in ") + what);
    }
  };
  auto define = [&](ValueId v, const char* what) {
    if (v >= values_.size()) {
      throw std::logic_error(std::string("bad value id in ") + what);
    }
    if (defined[v]) {
      throw std::logic_error(std::string("redefinition in ") + what);
    }
    defined[v] = true;
  };
  // Bounds-checked dim accessor for ids that have not been through
  // require_defined/define yet (op outputs): programs can arrive from
  // deserialized artifacts, so an id must never index values_ unchecked.
  auto dim_of = [&](ValueId v, const char* what) {
    if (v >= values_.size()) {
      throw std::logic_error(std::string("bad value id in ") + what);
    }
    return values_[v].dim;
  };
  for (const Op& op : ops_) {
    switch (op.kind) {
      case OpKind::kPartition: {
        require_defined(op.partition.input, "Partition");
        const std::size_t in_dim = values_[op.partition.input].dim;
        for (const PartitionSegment& s : op.partition.segments) {
          // Overflow-safe form of `offset + length > in_dim`.
          if (s.length == 0 || s.length > in_dim ||
              s.offset > in_dim - s.length) {
            throw std::logic_error("Partition segment out of range");
          }
          if (dim_of(s.output, "Partition") != s.length) {
            throw std::logic_error("Partition segment dim mismatch");
          }
          define(s.output, "Partition");
        }
        break;
      }
      case OpKind::kMap: {
        require_defined(op.map.input, "Map");
        if (values_[op.map.input].dim != op.map.fn.in_dim ||
            dim_of(op.map.output, "Map") != op.map.fn.out_dim) {
          throw std::logic_error("Map dim mismatch for " + op.map.fn.name);
        }
        if (!op.map.fn.fn) {
          throw std::logic_error("Map has no function: " + op.map.fn.name);
        }
        define(op.map.output, "Map");
        break;
      }
      case OpKind::kSumReduce: {
        if (op.sum_reduce.inputs.empty()) {
          throw std::logic_error("SumReduce with no inputs");
        }
        const std::size_t dim = dim_of(op.sum_reduce.inputs[0], "SumReduce");
        for (ValueId v : op.sum_reduce.inputs) {
          require_defined(v, "SumReduce");
          if (values_[v].dim != dim) {
            throw std::logic_error("SumReduce input dim mismatch");
          }
        }
        if (dim_of(op.sum_reduce.output, "SumReduce") != dim) {
          throw std::logic_error("SumReduce output dim mismatch");
        }
        define(op.sum_reduce.output, "SumReduce");
        break;
      }
      case OpKind::kConcat: {
        if (op.concat.inputs.empty()) {
          throw std::logic_error("Concat with no inputs");
        }
        std::size_t total = 0;
        for (ValueId v : op.concat.inputs) {
          require_defined(v, "Concat");
          total += values_[v].dim;
        }
        if (dim_of(op.concat.output, "Concat") != total) {
          throw std::logic_error("Concat output dim mismatch");
        }
        define(op.concat.output, "Concat");
        break;
      }
    }
  }
  if (output_ >= values_.size() || !defined[output_]) {
    throw std::logic_error("program output never produced");
  }
}

std::vector<float> Program::Evaluate(std::span<const float> input) const {
  if (input.size() != values_.at(input_).dim) {
    throw std::invalid_argument("Evaluate: input dim mismatch");
  }
  std::vector<std::vector<float>> env(values_.size());
  env[input_].assign(input.begin(), input.end());
  for (const Op& op : ops_) {
    switch (op.kind) {
      case OpKind::kPartition: {
        const auto& src = env[op.partition.input];
        for (const PartitionSegment& s : op.partition.segments) {
          env[s.output].assign(
              src.begin() + static_cast<std::ptrdiff_t>(s.offset),
              src.begin() + static_cast<std::ptrdiff_t>(s.offset + s.length));
        }
        break;
      }
      case OpKind::kMap: {
        env[op.map.output] = op.map.fn.fn(env[op.map.input]);
        if (env[op.map.output].size() != op.map.fn.out_dim) {
          throw std::logic_error("Map " + op.map.fn.name +
                                 " returned wrong dim");
        }
        break;
      }
      case OpKind::kSumReduce: {
        const std::size_t dim = values_[op.sum_reduce.output].dim;
        std::vector<float> acc(dim, 0.0f);
        for (ValueId v : op.sum_reduce.inputs) {
          for (std::size_t i = 0; i < dim; ++i) acc[i] += env[v][i];
        }
        env[op.sum_reduce.output] = std::move(acc);
        break;
      }
      case OpKind::kConcat: {
        std::vector<float> packed;
        packed.reserve(values_[op.concat.output].dim);
        for (ValueId v : op.concat.inputs) {
          packed.insert(packed.end(), env[v].begin(), env[v].end());
        }
        env[op.concat.output] = std::move(packed);
        break;
      }
    }
  }
  return env[output_];
}

ProgramBuilder::ProgramBuilder(std::size_t input_dim, std::string input_name) {
  const ValueId in = program_.AddValue(std::move(input_name), input_dim);
  program_.SetInput(in);
}

std::string ProgramBuilder::FreshName(const std::string& stem) {
  return stem + "_" + std::to_string(next_id_++);
}

std::vector<ValueId> ProgramBuilder::Partition(ValueId input, std::size_t dim,
                                               std::size_t stride) {
  if (dim == 0 || stride == 0) {
    throw std::invalid_argument("Partition: dim/stride must be positive");
  }
  std::vector<std::pair<std::size_t, std::size_t>> segs;
  const std::size_t total = program_.value(input).dim;
  for (std::size_t off = 0; off + dim <= total; off += stride) {
    segs.emplace_back(off, dim);
  }
  return PartitionExplicit(input, segs);
}

std::vector<ValueId> ProgramBuilder::PartitionExplicit(
    ValueId input,
    std::span<const std::pair<std::size_t, std::size_t>> segments) {
  if (segments.empty()) {
    throw std::invalid_argument("Partition: no segments");
  }
  Op op;
  op.kind = OpKind::kPartition;
  op.partition.input = input;
  std::vector<ValueId> outs;
  for (const auto& [off, len] : segments) {
    const ValueId v = program_.AddValue(FreshName("seg"), len);
    op.partition.segments.push_back(PartitionSegment{off, len, v});
    outs.push_back(v);
  }
  program_.Append(std::move(op));
  return outs;
}

ValueId ProgramBuilder::Map(ValueId input, MapFunction fn,
                            std::size_t fuzzy_leaves) {
  const ValueId out = program_.AddValue(FreshName("map"), fn.out_dim);
  Op op;
  op.kind = OpKind::kMap;
  op.map.input = input;
  op.map.output = out;
  op.map.fn = std::move(fn);
  op.map.fuzzy_leaves = fuzzy_leaves;
  program_.Append(std::move(op));
  return out;
}

ValueId ProgramBuilder::SumReduce(std::span<const ValueId> inputs) {
  if (inputs.empty()) {
    throw std::invalid_argument("SumReduce: no inputs");
  }
  const std::size_t dim = program_.value(inputs[0]).dim;
  const ValueId out = program_.AddValue(FreshName("sum"), dim);
  Op op;
  op.kind = OpKind::kSumReduce;
  op.sum_reduce.inputs.assign(inputs.begin(), inputs.end());
  op.sum_reduce.output = out;
  program_.Append(std::move(op));
  return out;
}

ValueId ProgramBuilder::SumReduce(std::initializer_list<ValueId> inputs) {
  return SumReduce(std::span<const ValueId>(inputs.begin(), inputs.size()));
}

ValueId ProgramBuilder::Concat(std::span<const ValueId> inputs) {
  if (inputs.empty()) {
    throw std::invalid_argument("Concat: no inputs");
  }
  std::size_t total = 0;
  for (ValueId v : inputs) total += program_.value(v).dim;
  const ValueId out = program_.AddValue(FreshName("cat"), total);
  Op op;
  op.kind = OpKind::kConcat;
  op.concat.inputs.assign(inputs.begin(), inputs.end());
  op.concat.output = out;
  program_.Append(std::move(op));
  return out;
}

ValueId ProgramBuilder::Concat(std::initializer_list<ValueId> inputs) {
  return Concat(std::span<const ValueId>(inputs.begin(), inputs.size()));
}

Program ProgramBuilder::Finish(ValueId output) {
  program_.SetOutput(output);
  program_.Validate();
  return std::move(program_);
}

}  // namespace pegasus::core
