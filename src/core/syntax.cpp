#include "core/syntax.hpp"

#include <cctype>
#include <optional>

namespace pegasus::core {

void FunctionRegistry::Register(std::string name, MapFunction fn) {
  fns_[std::move(name)] = {std::move(fn)};
}

void FunctionRegistry::RegisterFamily(std::string name,
                                      std::vector<MapFunction> family) {
  if (family.empty()) {
    throw std::invalid_argument("RegisterFamily: empty family");
  }
  fns_[std::move(name)] = std::move(family);
}

bool FunctionRegistry::Contains(const std::string& name) const {
  return fns_.count(name) > 0;
}

const MapFunction& FunctionRegistry::Resolve(const std::string& name,
                                             std::size_t index,
                                             std::size_t count) const {
  const auto it = fns_.find(name);
  if (it == fns_.end()) {
    throw std::out_of_range("unknown function '" + name + "'");
  }
  const auto& family = it->second;
  if (family.size() == 1) return family[0];  // shared across segments
  if (family.size() != count) {
    throw std::out_of_range("function family '" + name + "' has " +
                            std::to_string(family.size()) +
                            " members but the Map has " +
                            std::to_string(count) + " segments");
  }
  return family[index];
}

namespace {

// ------------------------------------------------------------- lexer

enum class TokKind {
  kIdent,
  kNumber,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kEquals,
  kSemicolon,
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  long value = 0;
  std::size_t line = 1;
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) { Advance(); }

  const Token& peek() const { return current_; }

  Token Take() {
    Token t = current_;
    Advance();
    return t;
  }

 private:
  void Advance() {
    // skip whitespace and # comments
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
    current_ = Token{};
    current_.line = line_;
    if (pos_ >= src_.size()) {
      current_.kind = TokKind::kEnd;
      return;
    }
    const char c = src_[pos_];
    auto single = [&](TokKind k) {
      current_.kind = k;
      current_.text = std::string(1, c);
      ++pos_;
    };
    if (c == '(') return single(TokKind::kLParen);
    if (c == ')') return single(TokKind::kRParen);
    if (c == '[') return single(TokKind::kLBracket);
    if (c == ']') return single(TokKind::kRBracket);
    if (c == ',') return single(TokKind::kComma);
    if (c == '=') return single(TokKind::kEquals);
    if (c == ';') return single(TokKind::kSemicolon);
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t end = pos_;
      while (end < src_.size() &&
             std::isdigit(static_cast<unsigned char>(src_[end]))) {
        ++end;
      }
      current_.kind = TokKind::kNumber;
      current_.text = src_.substr(pos_, end - pos_);
      current_.value = std::stol(current_.text);
      pos_ = end;
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t end = pos_;
      while (end < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[end])) ||
              src_[end] == '_')) {
        ++end;
      }
      current_.kind = TokKind::kIdent;
      current_.text = src_.substr(pos_, end - pos_);
      pos_ = end;
      return;
    }
    throw SyntaxError(line_, std::string("unexpected character '") + c + "'");
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  Token current_;
};

// ------------------------------------------------------------ parser

/// A syntax value: either one IR value or a segment list (the {X1..Xk}
/// sets of Table 3).
struct SynValue {
  std::vector<ValueId> ids;
  bool is_list = false;

  ValueId Single(std::size_t line) const {
    if (is_list || ids.size() != 1) {
      throw SyntaxError(line, "expected a single vector, got a segment list");
    }
    return ids[0];
  }
};

class Parser {
 public:
  Parser(const std::string& src, const FunctionRegistry& registry,
         const ParseOptions& options)
      : lex_(src), registry_(registry), options_(options) {}

  Program Parse() {
    // input declaration first
    Expect(TokKind::kIdent, "input");
    const Token name = ExpectKind(TokKind::kIdent, "input name");
    Expect(TokKind::kLBracket, "[");
    const Token dim = ExpectKind(TokKind::kNumber, "input dimension");
    Expect(TokKind::kRBracket, "]");
    Expect(TokKind::kSemicolon, ";");
    if (dim.value <= 0) {
      throw SyntaxError(dim.line, "input dimension must be positive");
    }
    builder_.emplace(static_cast<std::size_t>(dim.value), name.text);
    bindings_[name.text] = SynValue{{builder_->input()}, false};

    std::optional<ValueId> output;
    while (lex_.peek().kind != TokKind::kEnd) {
      const Token head = ExpectKind(TokKind::kIdent, "statement");
      if (head.text == "output") {
        const SynValue v = ParseExpr();
        Expect(TokKind::kSemicolon, ";");
        output = v.Single(head.line);
      } else {
        Expect(TokKind::kEquals, "=");
        const SynValue v = ParseExpr();
        Expect(TokKind::kSemicolon, ";");
        if (bindings_.count(head.text)) {
          throw SyntaxError(head.line, "redefinition of '" + head.text + "'");
        }
        bindings_[head.text] = v;
      }
    }
    if (!output) {
      throw SyntaxError(lex_.peek().line, "missing output statement");
    }
    try {
      return builder_->Finish(*output);
    } catch (const std::exception& e) {
      throw SyntaxError(0, std::string("program validation failed: ") +
                               e.what());
    }
  }

 private:
  SynValue ParseExpr() {
    const Token head = ExpectKind(TokKind::kIdent, "expression");
    if (head.text == "Partition") return ParsePartition(head);
    if (head.text == "Map") return ParseMap(head);
    if (head.text == "SumReduce") return ParseReduceLike(head, true);
    if (head.text == "Concat") return ParseReduceLike(head, false);
    const auto it = bindings_.find(head.text);
    if (it == bindings_.end()) {
      throw SyntaxError(head.line, "unknown name '" + head.text + "'");
    }
    return it->second;
  }

  SynValue ParsePartition(const Token& head) {
    Expect(TokKind::kLParen, "(");
    const SynValue input = ParseExpr();
    long dim = -1, stride = -1;
    while (lex_.peek().kind == TokKind::kComma) {
      lex_.Take();
      const auto [key, value] = ParseKeyValueNumber();
      if (key == "dim") {
        dim = value;
      } else if (key == "stride") {
        stride = value;
      } else {
        throw SyntaxError(head.line, "Partition: unknown parameter '" + key +
                                         "'");
      }
    }
    Expect(TokKind::kRParen, ")");
    if (dim <= 0 || stride <= 0) {
      throw SyntaxError(head.line, "Partition requires dim= and stride=");
    }
    SynValue out;
    out.is_list = true;
    out.ids = builder_->Partition(input.Single(head.line),
                                  static_cast<std::size_t>(dim),
                                  static_cast<std::size_t>(stride));
    return out;
  }

  SynValue ParseMap(const Token& head) {
    Expect(TokKind::kLParen, "(");
    const SynValue input = ParseExpr();
    std::string fn_name;
    long leaves = static_cast<long>(options_.default_fuzzy_leaves);
    while (lex_.peek().kind == TokKind::kComma) {
      lex_.Take();
      const Token key = ExpectKind(TokKind::kIdent, "parameter name");
      Expect(TokKind::kEquals, "=");
      if (key.text == "fn") {
        fn_name = ExpectKind(TokKind::kIdent, "function name").text;
      } else if (key.text == "leaves") {
        leaves = ExpectKind(TokKind::kNumber, "leaf count").value;
      } else {
        throw SyntaxError(key.line, "Map: unknown parameter '" + key.text +
                                        "'");
      }
    }
    Expect(TokKind::kRParen, ")");
    if (fn_name.empty()) {
      throw SyntaxError(head.line, "Map requires fn=");
    }
    if (leaves <= 0) {
      throw SyntaxError(head.line, "Map leaves must be positive");
    }
    const std::vector<ValueId>& inputs = input.ids;
    SynValue out;
    out.is_list = input.is_list;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      MapFunction fn;
      try {
        fn = registry_.Resolve(fn_name, i, inputs.size());
      } catch (const std::out_of_range& e) {
        throw SyntaxError(head.line, e.what());
      }
      if (fn.in_dim != builder_->dim(inputs[i])) {
        throw SyntaxError(head.line,
                          "function '" + fn_name + "' expects " +
                              std::to_string(fn.in_dim) +
                              " inputs but segment " + std::to_string(i) +
                              " has " +
                              std::to_string(builder_->dim(inputs[i])));
      }
      try {
        out.ids.push_back(builder_->Map(inputs[i], std::move(fn),
                                        static_cast<std::size_t>(leaves)));
      } catch (const std::exception& e) {
        throw SyntaxError(head.line, std::string("Map: ") + e.what());
      }
    }
    return out;
  }

  SynValue ParseReduceLike(const Token& head, bool is_sum) {
    Expect(TokKind::kLParen, "(");
    std::vector<ValueId> inputs;
    const SynValue first = ParseExpr();
    inputs.insert(inputs.end(), first.ids.begin(), first.ids.end());
    while (lex_.peek().kind == TokKind::kComma) {
      lex_.Take();
      const SynValue next = ParseExpr();
      inputs.insert(inputs.end(), next.ids.begin(), next.ids.end());
    }
    Expect(TokKind::kRParen, ")");
    SynValue out;
    try {
      out.ids.push_back(
          is_sum ? builder_->SumReduce(std::span<const ValueId>(inputs))
                 : builder_->Concat(std::span<const ValueId>(inputs)));
    } catch (const std::exception& e) {
      throw SyntaxError(head.line,
                        std::string(is_sum ? "SumReduce: " : "Concat: ") +
                            e.what());
    }
    return out;
  }

  std::pair<std::string, long> ParseKeyValueNumber() {
    const Token key = ExpectKind(TokKind::kIdent, "parameter name");
    Expect(TokKind::kEquals, "=");
    const Token value = ExpectKind(TokKind::kNumber, "parameter value");
    return {key.text, value.value};
  }

  Token ExpectKind(TokKind kind, const char* what) {
    if (lex_.peek().kind != kind) {
      throw SyntaxError(lex_.peek().line,
                        std::string("expected ") + what + ", got '" +
                            lex_.peek().text + "'");
    }
    return lex_.Take();
  }

  void Expect(TokKind kind, const char* text) {
    const Token t = ExpectKind(kind, text);
    if (kind == TokKind::kIdent && t.text != text) {
      throw SyntaxError(t.line, std::string("expected '") + text +
                                    "', got '" + t.text + "'");
    }
  }

  Lexer lex_;
  const FunctionRegistry& registry_;
  ParseOptions options_;
  std::optional<ProgramBuilder> builder_;
  std::map<std::string, SynValue> bindings_;
};

}  // namespace

Program ParsePegasusSyntax(const std::string& source,
                           const FunctionRegistry& registry,
                           const ParseOptions& options) {
  Parser parser(source, registry, options);
  return parser.Parse();
}

}  // namespace pegasus::core
