#include "core/tablegen.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <random>
#include <stdexcept>

namespace pegasus::core {

namespace {

using fixedpoint::Format;

struct Range {
  float lo = std::numeric_limits<float>::max();
  float hi = std::numeric_limits<float>::lowest();

  void Update(float v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  void Merge(const Range& o) {
    lo = std::min(lo, o.lo);
    hi = std::max(hi, o.hi);
  }
  bool Valid() const { return lo <= hi; }
};

/// Applies the compile margin to an observed range.
Range WithMargin(Range r, double margin) {
  if (!r.Valid()) return Range{0.0f, 1.0f};
  const float span = std::max(r.hi - r.lo, 1.0f);
  r.lo -= static_cast<float>(margin) * span + 1e-5f;
  r.hi += static_cast<float>(margin) * span + 1e-5f;
  return r;
}

int DomainBitsFor(std::int64_t umax) {
  int bits = 1;
  while ((std::int64_t{1} << bits) <= umax && bits < 30) ++bits;
  return bits;
}

std::int64_t ClampU(std::int64_t u, std::int64_t dmax) {
  return std::clamp<std::int64_t>(u, 0, dmax);
}

}  // namespace

std::vector<float> AugmentTrainingInputs(std::size_t in_dim,
                                         std::span<const float> train_inputs,
                                         std::size_t n,
                                         const CompileOptions& options,
                                         std::size_t& augmented_n) {
  augmented_n = n;
  if (options.uniform_augment <= 0.0) return {};
  const auto extra = static_cast<std::size_t>(
      options.uniform_augment * static_cast<double>(n));
  std::vector<float> augmented(train_inputs.begin(), train_inputs.end());
  std::mt19937_64 rng(options.augment_seed);
  std::uniform_int_distribution<int> dist(0, (1 << options.input_bits) - 1);
  for (std::size_t i = 0; i < extra * in_dim; ++i) {
    augmented.push_back(static_cast<float>(dist(rng)));
  }
  augmented_n = n + extra;
  return augmented;
}

QuantizationPlan PlanQuantization(const Program& program,
                                  std::span<const float> train_inputs,
                                  std::size_t n,
                                  const CompileOptions& options) {
  program.Validate();
  const std::size_t in_dim = program.value(program.input()).dim;
  if (n == 0 || train_inputs.size() != n * in_dim) {
    throw std::invalid_argument("PlanQuantization: bad training data size");
  }

  const auto& ops = program.ops();
  const std::size_t num_values = program.NumValues();

  // ---------------------------------------------------------------------
  // Pass 1: full-precision batch interpretation, collecting per-dim float
  // ranges for every value and for every SumReduce prefix (partial sums,
  // which bound the accumulator's excursion).
  // ---------------------------------------------------------------------
  std::vector<std::vector<float>> env_f(num_values);  // [value] N*dim
  std::vector<std::vector<Range>> stats(num_values);
  auto dim_of = [&](ValueId v) { return program.value(v).dim; };

  env_f[program.input()].assign(train_inputs.begin(), train_inputs.end());
  std::vector<std::vector<Range>> sum_prefix_stats(ops.size());

  auto record_stats = [&](ValueId v) {
    const std::size_t d = dim_of(v);
    stats[v].assign(d, Range{});
    const auto& buf = env_f[v];
    for (std::size_t s = 0; s < n; ++s) {
      for (std::size_t k = 0; k < d; ++k) stats[v][k].Update(buf[s * d + k]);
    }
  };
  record_stats(program.input());

  for (std::size_t oi = 0; oi < ops.size(); ++oi) {
    const Op& op = ops[oi];
    switch (op.kind) {
      case OpKind::kPartition: {
        const auto& src = env_f[op.partition.input];
        const std::size_t pdim = dim_of(op.partition.input);
        for (const PartitionSegment& s : op.partition.segments) {
          auto& dst = env_f[s.output];
          dst.resize(n * s.length);
          for (std::size_t smp = 0; smp < n; ++smp) {
            std::copy_n(src.begin() +
                            static_cast<std::ptrdiff_t>(smp * pdim + s.offset),
                        s.length,
                        dst.begin() +
                            static_cast<std::ptrdiff_t>(smp * s.length));
          }
          record_stats(s.output);
        }
        break;
      }
      case OpKind::kMap: {
        const std::size_t id = dim_of(op.map.input);
        const std::size_t od = dim_of(op.map.output);
        const auto& src = env_f[op.map.input];
        auto& dst = env_f[op.map.output];
        dst.resize(n * od);
        for (std::size_t smp = 0; smp < n; ++smp) {
          std::vector<float> y = op.map.fn.fn(
              std::span<const float>(src.data() + smp * id, id));
          std::copy_n(y.begin(), od,
                      dst.begin() + static_cast<std::ptrdiff_t>(smp * od));
        }
        record_stats(op.map.output);
        break;
      }
      case OpKind::kSumReduce: {
        const std::size_t d = dim_of(op.sum_reduce.output);
        auto& dst = env_f[op.sum_reduce.output];
        dst.assign(n * d, 0.0f);
        Range prefix_hull;
        for (ValueId v : op.sum_reduce.inputs) {
          const auto& src = env_f[v];
          for (std::size_t i = 0; i < n * d; ++i) {
            dst[i] += src[i];
            prefix_hull.Update(dst[i]);
          }
        }
        sum_prefix_stats[oi].assign(1, prefix_hull);
        record_stats(op.sum_reduce.output);
        break;
      }
      case OpKind::kConcat: {
        const std::size_t d = dim_of(op.concat.output);
        auto& dst = env_f[op.concat.output];
        dst.resize(n * d);
        std::size_t off = 0;
        for (ValueId v : op.concat.inputs) {
          const std::size_t vd = dim_of(v);
          const auto& src = env_f[v];
          for (std::size_t smp = 0; smp < n; ++smp) {
            std::copy_n(src.begin() + static_cast<std::ptrdiff_t>(smp * vd),
                        vd,
                        dst.begin() +
                            static_cast<std::ptrdiff_t>(smp * d + off));
          }
          off += vd;
        }
        record_stats(op.concat.output);
        break;
      }
    }
  }
  env_f.clear();
  env_f.shrink_to_fit();

  // ---------------------------------------------------------------------
  // Quantization plan.
  // ---------------------------------------------------------------------
  QuantizationPlan plan;
  auto& quant = plan.quant;
  quant.assign(num_values, {});
  {
    DimQuant q;
    q.fmt = Format{options.input_bits + 1, 0};
    q.bias = 0;
    q.domain_bits = options.input_bits;
    quant[program.input()].assign(in_dim, q);
  }

  // Which value ids are consumed by a SumReduce (their format is dictated
  // by the accumulator). Dataplane lowering requires SumReduce inputs to be
  // Map outputs consumed by nothing else: the Map's action *is* the
  // accumulation (Figure 4), so the summand never exists as a separate
  // field.
  auto& feeds_sum = plan.feeds_sum;
  feeds_sum.assign(num_values, false);
  std::vector<bool> is_map_output(num_values, false);
  for (const Op& op : ops) {
    if (op.kind == OpKind::kMap) is_map_output[op.map.output] = true;
  }
  for (const Op& op : ops) {
    if (op.kind != OpKind::kSumReduce) continue;
    for (ValueId v : op.sum_reduce.inputs) {
      if (feeds_sum[v]) {
        throw std::logic_error(
            "CompileProgram: value feeds two SumReduce reads");
      }
      if (!is_map_output[v]) {
        throw std::logic_error(
            "CompileProgram: SumReduce input must be a Map output");
      }
      feeds_sum[v] = true;
    }
  }
  // Contributor values must have exactly one consumer (the SumReduce).
  for (const Op& op : ops) {
    auto check = [&](ValueId v, const char* what) {
      if (feeds_sum[v] && op.kind != OpKind::kSumReduce) {
        throw std::logic_error(std::string("CompileProgram: SumReduce "
                                           "contributor also consumed by ") +
                               what);
      }
    };
    switch (op.kind) {
      case OpKind::kPartition:
        check(op.partition.input, "Partition");
        break;
      case OpKind::kMap:
        check(op.map.input, "Map");
        break;
      case OpKind::kConcat:
        for (ValueId v : op.concat.inputs) check(v, "Concat");
        break;
      case OpKind::kSumReduce:
        break;
    }
  }
  if (feeds_sum[program.output()]) {
    throw std::logic_error(
        "CompileProgram: program output cannot feed a SumReduce");
  }

  auto make_quant_from_range = [&](Range r) {
    const Range rm = WithMargin(r, options.range_margin);
    const std::array<float, 2> probe{rm.lo, rm.hi};
    DimQuant q;
    q.fmt = fixedpoint::ChooseFormat(probe, options.value_bits);
    auto size_domain = [&] {
      const std::int64_t raw_lo = fixedpoint::Quantize(rm.lo, q.fmt);
      const std::int64_t raw_hi = fixedpoint::Quantize(rm.hi, q.fmt);
      q.bias = -raw_lo;
      q.domain_bits = DomainBitsFor(raw_hi + q.bias);
    };
    size_domain();
    // Coarsen resolution until the match domain fits the cap (negative
    // frac_bits = integer steps larger than 1; the fixed-point layer
    // handles it).
    while (q.domain_bits > options.max_domain_bits && q.fmt.frac_bits > -20) {
      q.fmt.frac_bits -= q.domain_bits - options.max_domain_bits;
      size_domain();
    }
    return q;
  };

  for (std::size_t oi = 0; oi < ops.size(); ++oi) {
    const Op& op = ops[oi];
    switch (op.kind) {
      case OpKind::kPartition: {
        const auto& pq = quant[op.partition.input];
        for (const PartitionSegment& s : op.partition.segments) {
          quant[s.output].assign(
              pq.begin() + static_cast<std::ptrdiff_t>(s.offset),
              pq.begin() + static_cast<std::ptrdiff_t>(s.offset + s.length));
        }
        break;
      }
      case OpKind::kConcat: {
        auto& dst = quant[op.concat.output];
        dst.clear();
        for (ValueId v : op.concat.inputs) {
          dst.insert(dst.end(), quant[v].begin(), quant[v].end());
        }
        break;
      }
      case OpKind::kMap: {
        if (feeds_sum[op.map.output]) break;  // assigned by the SumReduce
        Range hull;
        for (const Range& r : stats[op.map.output]) hull.Merge(r);
        quant[op.map.output].assign(dim_of(op.map.output),
                                    make_quant_from_range(hull));
        break;
      }
      case OpKind::kSumReduce: {
        Range hull = sum_prefix_stats[oi][0];
        for (const Range& r : stats[op.sum_reduce.output]) hull.Merge(r);
        const DimQuant q = make_quant_from_range(hull);
        quant[op.sum_reduce.output].assign(dim_of(op.sum_reduce.output), q);
        // Contributors share the accumulator's format; their bias/domain
        // are unused (raw words are added directly).
        DimQuant cq = q;
        cq.bias = 0;
        for (ValueId v : op.sum_reduce.inputs) {
          quant[v].assign(dim_of(v), cq);
        }
        break;
      }
    }
  }
  return plan;
}

CompiledModel BuildFuzzyTables(Program program, QuantizationPlan plan,
                               std::span<const float> train_inputs,
                               std::size_t n, const CompileOptions& options) {
  const std::size_t in_dim = program.value(program.input()).dim;
  if (n == 0 || train_inputs.size() != n * in_dim) {
    throw std::invalid_argument("BuildFuzzyTables: bad training data size");
  }
  const auto& ops = program.ops();
  const std::size_t num_values = program.NumValues();
  if (plan.quant.size() != num_values ||
      plan.feeds_sum.size() != num_values) {
    throw std::invalid_argument(
        "BuildFuzzyTables: plan does not match program");
  }
  auto dim_of = [&](ValueId v) { return program.value(v).dim; };

  CompiledModel model;
  model.options_ = options;
  model.quant_ = std::move(plan.quant);
  const auto& quant = model.quant_;
  const auto& feeds_sum = plan.feeds_sum;

  // ---------------------------------------------------------------------
  // Pass 2: build fuzzy tables in op order, propagating the *quantized*
  // values so later trees see upstream approximation error.
  // ---------------------------------------------------------------------
  model.tables_.assign(ops.size(), std::nullopt);
  std::vector<std::vector<std::int64_t>> env_r(num_values);
  {
    auto& in = env_r[program.input()];
    in.resize(n * in_dim);
    const std::int64_t dmax =
        (std::int64_t{1} << options.input_bits) - 1;
    for (std::size_t i = 0; i < n * in_dim; ++i) {
      in[i] = ClampU(std::llround(train_inputs[i]), dmax);
    }
  }

  for (std::size_t oi = 0; oi < ops.size(); ++oi) {
    const Op& op = ops[oi];
    switch (op.kind) {
      case OpKind::kPartition: {
        const auto& src = env_r[op.partition.input];
        const std::size_t pdim = dim_of(op.partition.input);
        for (const PartitionSegment& s : op.partition.segments) {
          auto& dst = env_r[s.output];
          dst.resize(n * s.length);
          for (std::size_t smp = 0; smp < n; ++smp) {
            std::copy_n(src.begin() +
                            static_cast<std::ptrdiff_t>(smp * pdim + s.offset),
                        s.length,
                        dst.begin() +
                            static_cast<std::ptrdiff_t>(smp * s.length));
          }
        }
        break;
      }
      case OpKind::kConcat: {
        const std::size_t d = dim_of(op.concat.output);
        auto& dst = env_r[op.concat.output];
        dst.resize(n * d);
        std::size_t off = 0;
        for (ValueId v : op.concat.inputs) {
          const std::size_t vd = dim_of(v);
          const auto& src = env_r[v];
          for (std::size_t smp = 0; smp < n; ++smp) {
            std::copy_n(src.begin() + static_cast<std::ptrdiff_t>(smp * vd),
                        vd,
                        dst.begin() +
                            static_cast<std::ptrdiff_t>(smp * d + off));
          }
          off += vd;
        }
        break;
      }
      case OpKind::kMap: {
        const std::size_t id = dim_of(op.map.input);
        const std::size_t od = dim_of(op.map.output);
        const auto& in_q = quant[op.map.input];
        const auto& out_q = quant[op.map.output][0];
        const auto& src = env_r[op.map.input];

        // u-domain training matrix for the clustering tree.
        std::vector<float> u_data(n * id);
        int max_bits = 1;
        for (const DimQuant& dq : in_q) {
          max_bits = std::max(max_bits, dq.domain_bits);
        }
        for (std::size_t smp = 0; smp < n; ++smp) {
          for (std::size_t k = 0; k < id; ++k) {
            const std::int64_t u =
                ClampU(src[smp * id + k] + in_q[k].bias, in_q[k].DomainMax());
            u_data[smp * id + k] = static_cast<float>(u);
          }
        }
        ClusterTree::FitConfig fcfg;
        fcfg.num_leaves = op.map.fuzzy_leaves != 0
                              ? op.map.fuzzy_leaves
                              : options.default_fuzzy_leaves;
        fcfg.input_bits = max_bits;
        ClusterTree tree = ClusterTree::Fit(u_data, n, id, fcfg);

        // Leaf assignment + per-leaf output accumulation.
        const std::size_t leaves = tree.NumLeaves();
        std::vector<std::size_t> leaf_of(n);
        std::vector<std::vector<double>> sum(leaves,
                                             std::vector<double>(od, 0.0));
        std::vector<std::size_t> count(leaves, 0);
        std::vector<float> x_float(id);
        for (std::size_t smp = 0; smp < n; ++smp) {
          const std::size_t leaf = tree.Lookup(
              std::span<const float>(u_data.data() + smp * id, id));
          leaf_of[smp] = leaf;
          if (options.refine_outputs) {
            for (std::size_t k = 0; k < id; ++k) {
              const double u = u_data[smp * id + k];
              x_float[k] = static_cast<float>(
                  (u - static_cast<double>(in_q[k].bias)) *
                  in_q[k].fmt.Resolution());
            }
            std::vector<float> y = op.map.fn.fn(x_float);
            for (std::size_t k = 0; k < od; ++k) sum[leaf][k] += y[k];
            ++count[leaf];
          }
        }

        FuzzyMapTable table;
        table.leaf_raw.resize(leaves);
        for (std::size_t leaf = 0; leaf < leaves; ++leaf) {
          std::vector<float> y;
          if (options.refine_outputs && count[leaf] > 0) {
            y.resize(od);
            for (std::size_t k = 0; k < od; ++k) {
              y[k] = static_cast<float>(sum[leaf][k] /
                                        static_cast<double>(count[leaf]));
            }
          } else {
            auto c = tree.Centroid(leaf);
            for (std::size_t k = 0; k < id; ++k) {
              x_float[k] = static_cast<float>(
                  (static_cast<double>(c[k]) -
                   static_cast<double>(in_q[k].bias)) *
                  in_q[k].fmt.Resolution());
            }
            y = op.map.fn.fn(x_float);
          }
          auto& raw = table.leaf_raw[leaf];
          raw.resize(od);
          const bool to_sum = feeds_sum[op.map.output];
          for (std::size_t k = 0; k < od; ++k) {
            raw[k] = fixedpoint::Quantize(y[k], out_q.fmt);
            if (!to_sum) {
              // Materialized outputs live in PHV fields of domain_bits
              // width; clamp so u = raw + bias stays in-domain, keeping the
              // host path and the lowered pipeline bit-identical.
              raw[k] = std::clamp<std::int64_t>(raw[k], -out_q.bias,
                                                out_q.DomainMax() - out_q.bias);
            }
          }
        }

        // Propagate quantized outputs.
        auto& dst = env_r[op.map.output];
        dst.resize(n * od);
        for (std::size_t smp = 0; smp < n; ++smp) {
          std::copy_n(table.leaf_raw[leaf_of[smp]].begin(), od,
                      dst.begin() + static_cast<std::ptrdiff_t>(smp * od));
        }
        table.tree = std::move(tree);
        model.tables_[oi] = std::move(table);
        break;
      }
      case OpKind::kSumReduce: {
        const std::size_t d = dim_of(op.sum_reduce.output);
        const DimQuant& yq = quant[op.sum_reduce.output][0];
        auto& dst = env_r[op.sum_reduce.output];
        dst.resize(n * d);
        const std::int64_t dmax = yq.DomainMax();
        for (std::size_t smp = 0; smp < n; ++smp) {
          for (std::size_t k = 0; k < d; ++k) {
            std::int64_t acc = yq.bias;
            for (ValueId v : op.sum_reduce.inputs) {
              acc = ClampU(acc + env_r[v][smp * d + k], dmax);
            }
            dst[smp * d + k] = acc - yq.bias;
          }
        }
        break;
      }
    }
  }

  model.program_ = std::move(program);
  return model;
}

CompiledModel CompileProgram(Program program,
                             std::span<const float> train_inputs,
                             std::size_t n, const CompileOptions& options) {
  program.Validate();
  const std::size_t in_dim = program.value(program.input()).dim;
  if (n == 0 || train_inputs.size() != n * in_dim) {
    throw std::invalid_argument("CompileProgram: bad training data size");
  }
  std::size_t full_n = n;
  const std::vector<float> augmented =
      AugmentTrainingInputs(in_dim, train_inputs, n, options, full_n);
  const std::span<const float> full =
      augmented.empty() ? train_inputs : std::span<const float>(augmented);
  QuantizationPlan plan = PlanQuantization(program, full, full_n, options);
  return BuildFuzzyTables(std::move(program), std::move(plan), full, full_n,
                          options);
}

std::vector<std::int64_t> CompiledModel::EvaluateRaw(
    std::span<const float> input) const {
  const std::size_t in_dim = program_.value(program_.input()).dim;
  if (input.size() != in_dim) {
    throw std::invalid_argument("CompiledModel::Evaluate: input dim mismatch");
  }
  std::vector<std::vector<std::int64_t>> env(program_.NumValues());
  {
    auto& in = env[program_.input()];
    in.resize(in_dim);
    const std::int64_t dmax =
        (std::int64_t{1} << options_.input_bits) - 1;
    for (std::size_t i = 0; i < in_dim; ++i) {
      in[i] = ClampU(std::llround(input[i]), dmax);
    }
  }
  const auto& ops = program_.ops();
  for (std::size_t oi = 0; oi < ops.size(); ++oi) {
    const Op& op = ops[oi];
    switch (op.kind) {
      case OpKind::kPartition: {
        const auto& src = env[op.partition.input];
        for (const PartitionSegment& s : op.partition.segments) {
          env[s.output].assign(
              src.begin() + static_cast<std::ptrdiff_t>(s.offset),
              src.begin() + static_cast<std::ptrdiff_t>(s.offset + s.length));
        }
        break;
      }
      case OpKind::kConcat: {
        auto& dst = env[op.concat.output];
        dst.clear();
        for (ValueId v : op.concat.inputs) {
          dst.insert(dst.end(), env[v].begin(), env[v].end());
        }
        break;
      }
      case OpKind::kMap: {
        const std::size_t id = program_.value(op.map.input).dim;
        const auto& in_q = quant_[op.map.input];
        const FuzzyMapTable& table = *tables_[oi];
        std::vector<float> u(id);
        for (std::size_t k = 0; k < id; ++k) {
          u[k] = static_cast<float>(
              ClampU(env[op.map.input][k] + in_q[k].bias,
                     in_q[k].DomainMax()));
        }
        const std::size_t leaf = table.tree.Lookup(u);
        env[op.map.output] = table.leaf_raw[leaf];
        break;
      }
      case OpKind::kSumReduce: {
        const std::size_t d = program_.value(op.sum_reduce.output).dim;
        const DimQuant& yq = quant_[op.sum_reduce.output][0];
        auto& dst = env[op.sum_reduce.output];
        dst.resize(d);
        const std::int64_t dmax = yq.DomainMax();
        for (std::size_t k = 0; k < d; ++k) {
          std::int64_t acc = yq.bias;
          for (ValueId v : op.sum_reduce.inputs) {
            acc = ClampU(acc + env[v][k], dmax);
          }
          dst[k] = acc - yq.bias;
        }
        break;
      }
    }
  }
  return env[program_.output()];
}

std::vector<float> CompiledModel::Evaluate(std::span<const float> input) const {
  const std::vector<std::int64_t> raw = EvaluateRaw(input);
  const auto& oq = quant_[program_.output()];
  std::vector<float> out(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    out[i] = static_cast<float>(fixedpoint::Dequantize(raw[i], oq[i].fmt));
  }
  return out;
}

std::size_t CompiledModel::TotalLeaves() const {
  std::size_t total = 0;
  for (const auto& t : tables_) {
    if (t) total += t->tree.NumLeaves();
  }
  return total;
}

std::size_t CompiledModel::NumTables() const {
  std::size_t total = 0;
  for (const auto& t : tables_) {
    if (t) ++total;
  }
  return total;
}

}  // namespace pegasus::core
