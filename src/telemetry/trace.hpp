// Flight-recorder tracing (ISSUE 10 tentpole part 3): a fixed-size ring
// of timestamped events that keeps the LAST `capacity` things that
// happened — sampled packet spans plus every lifecycle event (swap
// begin/publish/rollback, delta apply, shed, watchdog stall/clear).
// Recording is lock-free and allocation-free; the ring can be dumped on
// demand (or on stall) while writers keep going, and
// tools/trace_to_chrome.py turns a dump into Chrome trace-event JSON
// viewable in Perfetto.
//
// Concurrency: most rings have one writer (the owning shard worker), but
// the control ring takes events from the producer thread, ingest threads
// and the watchdog at once — so Record() claims a slot with a fetch_add
// cursor and every slot field is a relaxed atomic, with the slot's `seq`
// written last (release). A reader validates seq before AND after copying
// the payload and drops the slot if a writer lapped it mid-read. Under a
// full wrap-race two writers can interleave payload stores in the same
// slot; the seq re-check catches the common tear and a flight recorder
// tolerates losing a lapped slot by design — it is a diagnostic buffer,
// not an accounting structure (counters own exactness).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <ostream>
#include <vector>

namespace pegasus::telemetry {

enum class TraceEventKind : std::uint8_t {
  /// One sampled packet's end-to-end span (dur_ns = push -> decision);
  /// arg_a = flow digest, arg_b = model version that decided it.
  kPacketSpan = 0,
  /// A batch flush span on a shard; arg_a = batch rows.
  kBatchFlush,
  /// Producer-side swap intent (control ring); arg_a = target version.
  kSwapBegin,
  /// One shard finished applying a swap (dur_ns = flush + engine rebuild
  /// gap); arg_a = new version.
  kSwapApply,
  /// Producer-side swap success (control ring); arg_a = new version.
  kSwapPublish,
  /// Producer-side swap failure rolled back (control ring); arg_a = the
  /// version that failed to publish, arg_b = the version still serving.
  kSwapRollback,
  /// O(delta) publish (control ring); arg_a = new version, arg_b = bytes
  /// pushed, dur_ns = clone+patch+publish wall time.
  kDeltaApply,
  /// Packets shed; arg_a = count, arg_b = reason (0 ring_full,
  /// 1 misrouted, 2 inference).
  kShed,
  /// Watchdog flagged / cleared a stall on shard `shard`.
  kStall,
  kStallClear,
};

const char* TraceEventKindName(TraceEventKind kind);

struct TraceEvent {
  /// Global claim order (1-based): a total order over ring writes, which
  /// breaks ties between events with equal timestamps.
  std::uint64_t seq = 0;
  /// Nanoseconds since the owning ServerTelemetry's steady-clock epoch.
  std::uint64_t ts_ns = 0;
  /// Span duration (0 for instant events).
  std::uint64_t dur_ns = 0;
  std::uint64_t arg_a = 0;
  std::uint64_t arg_b = 0;
  /// Owning shard, or TraceEvent::kControlTrack for server-wide events.
  std::uint32_t shard = 0;
  TraceEventKind kind = TraceEventKind::kPacketSpan;

  static constexpr std::uint32_t kControlTrack = 0xffffffffu;
};

/// The ring. Capacity 0 builds a disabled ring whose Record() is a no-op
/// returning immediately — the "telemetry compiled in but off" shape.
/// Nonzero capacities round up to a power of two.
class EventRing {
 public:
  explicit EventRing(std::size_t capacity);

  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  bool enabled() const { return capacity_ != 0; }
  std::size_t capacity() const { return capacity_; }
  /// Events ever recorded (recorded - capacity have been overwritten).
  std::uint64_t recorded() const {
    return cursor_.load(std::memory_order_relaxed);
  }

  void Record(TraceEventKind kind, std::uint32_t shard, std::uint64_t ts_ns,
              std::uint64_t dur_ns = 0, std::uint64_t arg_a = 0,
              std::uint64_t arg_b = 0);

  /// Copies out every valid slot (unsorted; order by (ts_ns, seq) after
  /// merging rings). Safe to call while writers record.
  std::vector<TraceEvent> Dump() const;

  void Reset();

 private:
  struct Slot {
    /// 0 = empty/in-flight; otherwise claim index + 1, stored with
    /// release ordering after the payload.
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> ts_ns{0};
    std::atomic<std::uint64_t> dur_ns{0};
    std::atomic<std::uint64_t> arg_a{0};
    std::atomic<std::uint64_t> arg_b{0};
    /// shard in the low 32 bits, kind in the high bits.
    std::atomic<std::uint64_t> kind_shard{0};
  };

  std::unique_ptr<Slot[]> slots_;
  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> cursor_{0};
};

/// Merges + time-orders the given per-ring dumps into one stream.
std::vector<TraceEvent> MergeTraceDumps(
    std::vector<std::vector<TraceEvent>> dumps);

/// Writes a dump as the repo's structured trace JSON:
///   {"clock": "steady_ns_since_telemetry_start", "events": [
///     {"seq":..,"ts_ns":..,"dur_ns":..,"kind":"swap_publish",
///      "shard":..,"a":..,"b":..}, ...]}
/// tools/trace_to_chrome.py converts this to Chrome trace-event JSON.
void WriteTraceJson(const std::vector<TraceEvent>& events, std::ostream& os);

}  // namespace pegasus::telemetry
