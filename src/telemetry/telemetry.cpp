#include "telemetry/telemetry.hpp"

namespace pegasus::telemetry {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kIngestNext:
      return "ingest_next";
    case Stage::kRingDwell:
      return "ring_dwell";
    case Stage::kFlowLookup:
      return "flow_lookup";
    case Stage::kFeatureExtract:
      return "feature_extract";
    case Stage::kInferFlush:
      return "infer_flush";
    case Stage::kSwapPublish:
      return "swap_publish";
    case Stage::kEndToEnd:
      return "end_to_end";
  }
  return "?";
}

}  // namespace pegasus::telemetry
