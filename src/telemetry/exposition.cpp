#include "telemetry/exposition.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace pegasus::telemetry {

void StageSnapshot::Finish() {
  count = hist.count;
  mean_ns = hist.Mean();
  p50_ns = hist.Quantile(0.50);
  p90_ns = hist.Quantile(0.90);
  p99_ns = hist.Quantile(0.99);
  p999_ns = hist.Quantile(0.999);
}

double TelemetrySnapshot::HitRate() const {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (const auto& s : shards) {
    hits += s.table_hits;
    misses += s.table_misses;
  }
  const std::uint64_t total = hits + misses;
  return total == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

void WriteJson(const TelemetrySnapshot& snap, std::ostream& os) {
  os << "{\n"
     << "  \"attached\": " << (snap.attached ? "true" : "false") << ",\n"
     << "  \"sample_every\": " << snap.sample_every << ",\n"
     << "  \"tracing\": " << (snap.tracing ? "true" : "false") << ",\n"
     << "  \"running\": " << (snap.running ? "true" : "false") << ",\n"
     << "  \"now_ns\": " << snap.now_ns << ",\n"
     << "  \"active_version\": " << snap.active_version << ",\n"
     << "  \"packets\": " << snap.packets << ",\n"
     << "  \"decisions\": " << snap.decisions << ",\n"
     << "  \"shed_total\": " << snap.shed_total << ",\n"
     << "  \"stall_events\": " << snap.stall_events << ",\n"
     << "  \"stalled_shards\": " << snap.stalled_shards << ",\n"
     << "  \"trace_events_recorded\": " << snap.trace_events_recorded
     << ",\n"
     << "  \"flow_table_hit_rate\": " << snap.HitRate() << ",\n"
     << "  \"stages\": {\n";
  for (std::size_t i = 0; i < kNumStages; ++i) {
    const StageSnapshot& st = snap.stages[i];
    os << "    \"" << StageName(static_cast<Stage>(i)) << "\": {"
       << "\"count\": " << st.count << ", \"mean_ns\": " << st.mean_ns
       << ", \"p50_ns\": " << st.p50_ns << ", \"p90_ns\": " << st.p90_ns
       << ", \"p99_ns\": " << st.p99_ns << ", \"p999_ns\": " << st.p999_ns
       << "}" << (i + 1 < kNumStages ? "," : "") << "\n";
  }
  os << "  },\n  \"shards\": [\n";
  for (std::size_t i = 0; i < snap.shards.size(); ++i) {
    const ShardTelemetrySnapshot& sh = snap.shards[i];
    os << "    {\"shard\": " << i << ", \"heartbeat\": " << sh.heartbeat
       << ", \"processed\": " << sh.processed
       << ", \"decisions\": " << sh.decisions
       << ", \"ring_depth\": " << sh.ring_depth
       << ", \"ring_depth_hwm\": " << sh.ring_depth_hwm
       << ", \"shed_ring_full\": " << sh.shed_ring_full
       << ", \"shed_misrouted\": " << sh.shed_misrouted
       << ", \"shed_inference\": " << sh.shed_inference
       << ", \"table_hits\": " << sh.table_hits
       << ", \"table_misses\": " << sh.table_misses
       << ", \"stalled\": " << (sh.stalled ? "true" : "false") << "}"
       << (i + 1 < snap.shards.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

namespace {

void WriteHistogramProm(std::ostream& os, const char* name,
                        const HistogramSnapshot& hist,
                        const char* stage_label) {
  // Cumulative le buckets in seconds (Prometheus convention). Only emit
  // buckets up to the last populated one, plus +Inf — 64 log2 buckets
  // per stage would be mostly-empty noise.
  std::size_t last = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    if (hist.buckets[i] != 0) last = i;
  }
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i <= last; ++i) {
    cum += hist.buckets[i];
    os << name << "_bucket{stage=\"" << stage_label << "\",le=\""
       << static_cast<double>(HistogramBucketHigh(i)) * 1e-9 << "\"} " << cum
       << "\n";
  }
  os << name << "_bucket{stage=\"" << stage_label << "\",le=\"+Inf\"} "
     << hist.count << "\n";
  os << name << "_sum{stage=\"" << stage_label << "\"} "
     << static_cast<double>(hist.sum) * 1e-9 << "\n";
  os << name << "_count{stage=\"" << stage_label << "\"} " << hist.count
     << "\n";
}

}  // namespace

void WritePrometheus(const TelemetrySnapshot& snap, std::ostream& os) {
  os << "# TYPE pegasus_packets_total counter\n"
     << "pegasus_packets_total " << snap.packets << "\n"
     << "# TYPE pegasus_decisions_total counter\n"
     << "pegasus_decisions_total " << snap.decisions << "\n"
     << "# TYPE pegasus_shed_total counter\n"
     << "pegasus_shed_total " << snap.shed_total << "\n"
     << "# TYPE pegasus_stall_events_total counter\n"
     << "pegasus_stall_events_total " << snap.stall_events << "\n"
     << "# TYPE pegasus_active_version gauge\n"
     << "pegasus_active_version " << snap.active_version << "\n"
     << "# TYPE pegasus_stalled_shards gauge\n"
     << "pegasus_stalled_shards " << snap.stalled_shards << "\n"
     << "# TYPE pegasus_flow_table_hit_rate gauge\n"
     << "pegasus_flow_table_hit_rate " << snap.HitRate() << "\n";
  os << "# TYPE pegasus_ring_depth gauge\n";
  for (std::size_t i = 0; i < snap.shards.size(); ++i) {
    os << "pegasus_ring_depth{shard=\"" << i << "\"} "
       << snap.shards[i].ring_depth << "\n";
  }
  os << "# TYPE pegasus_ring_depth_hwm gauge\n";
  for (std::size_t i = 0; i < snap.shards.size(); ++i) {
    os << "pegasus_ring_depth_hwm{shard=\"" << i << "\"} "
       << snap.shards[i].ring_depth_hwm << "\n";
  }
  os << "# TYPE pegasus_stage_latency_seconds histogram\n";
  for (std::size_t i = 0; i < kNumStages; ++i) {
    WriteHistogramProm(os, "pegasus_stage_latency_seconds",
                       snap.stages[i].hist,
                       StageName(static_cast<Stage>(i)));
  }
}

StatsReporter::StatsReporter(SnapshotFn take, std::ostream& os,
                             std::uint64_t interval_ms)
    : take_(std::move(take)), os_(os), interval_ms_(interval_ms) {}

StatsReporter::~StatsReporter() { Stop(); }

void StatsReporter::Start() {
  if (thread_.joinable()) return;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
}

void StatsReporter::Stop() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_release);
  thread_.join();
}

void StatsReporter::Loop() {
  // Sleep in small slices so Stop() returns promptly even with a long
  // interval; emit a final line on the way out so a run shorter than one
  // interval still reports.
  const auto slice = std::chrono::milliseconds(10);
  auto next = std::chrono::steady_clock::now() +
              std::chrono::milliseconds(interval_ms_);
  while (!stop_.load(std::memory_order_acquire)) {
    if (std::chrono::steady_clock::now() >= next) {
      EmitLine(take_());
      next += std::chrono::milliseconds(interval_ms_);
    }
    std::this_thread::sleep_for(slice);
  }
  EmitLine(take_());
}

void StatsReporter::EmitLine(const TelemetrySnapshot& cur) {
  double pps = 0.0;
  double shed_rate = 0.0;
  if (has_last_ && cur.now_ns > last_.now_ns) {
    const double dt =
        static_cast<double>(cur.now_ns - last_.now_ns) * 1e-9;
    pps = static_cast<double>(cur.packets - last_.packets) / dt;
    shed_rate =
        static_cast<double>(cur.shed_total - last_.shed_total) / dt;
  }
  std::size_t depth = 0;
  std::size_t hwm = 0;
  for (const auto& sh : cur.shards) {
    depth = std::max(depth, sh.ring_depth);
    hwm = std::max(hwm, sh.ring_depth_hwm);
  }
  const StageSnapshot& e2e = cur.stage(Stage::kEndToEnd);
  char line[256];
  std::snprintf(line, sizeof(line),
                "[telemetry] pps=%.0f shed/s=%.0f ring=%zu hwm=%zu "
                "hit=%.3f e2e_p50=%.0fns p99=%.0fns p999=%.0fns v=%llu\n",
                pps, shed_rate, depth, hwm, cur.HitRate(), e2e.p50_ns,
                e2e.p99_ns, e2e.p999_ns,
                static_cast<unsigned long long>(cur.active_version));
  os_ << line;
  os_.flush();
  last_ = cur;
  has_last_ = true;
  ticks_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace pegasus::telemetry
