// Lock-free metrics primitives for the serving path (ISSUE 10 tentpole
// part 1). Everything here is built for ONE discipline: writers on the
// hot path pay a relaxed atomic add (no locks, no allocation, no fences
// stronger than relaxed), and readers may snapshot from any thread WHILE
// writers run — the same contract as ServerHealth, not the quiesced
// Stats(). Values observed mid-run are individually exact but mutually
// unordered (a snapshot is not a cross-counter consistent cut); that is
// the right trade for live observability, and tests only assert exact
// totals after quiescence.
//
// The histogram is log2-bucketed: Record(v) lands v in bucket
// bit_width(v) (bucket 0 holds exactly {0}, bucket k>=1 holds
// [2^(k-1), 2^k)). 64 buckets cover the full u64 range, so a nanosecond
// latency histogram spans 1ns..584 years with 64 words of storage and a
// single `bit_width` + `fetch_add` per record. Quantiles interpolate
// linearly inside the winning bucket — exact enough to tell p50 from
// p999 across orders of magnitude, which is what latency histograms are
// for (HdrHistogram-style; finer resolution would buy precision the
// sampled measurements don't have).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace pegasus::telemetry {

/// Monotonic event count. Cache-line padded so adjacent counters written
/// by different threads never false-share.
class alignas(64) Counter {
 public:
  void Add(std::uint64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value, plus a monotone-max variant for
/// high-watermark tracking (single-writer: the owning thread updates,
/// anyone reads).
class alignas(64) Gauge {
 public:
  void Set(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  /// Raise-only update. Single-writer discipline (no CAS): the owning
  /// thread is the only caller, observers just load.
  void UpdateMax(std::uint64_t v) {
    if (v > v_.load(std::memory_order_relaxed)) {
      v_.store(v, std::memory_order_relaxed);
    }
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

inline constexpr std::size_t kHistogramBuckets = 64;

/// Bucket index of a recorded value: 0 for 0, else bit_width(v) (clamped
/// by construction — bit_width(u64) <= 64, and bucket 64 would need
/// v >= 2^63 which maps to index 64... so clamp to 63).
inline std::size_t HistogramBucketOf(std::uint64_t v) {
  const std::size_t w = static_cast<std::size_t>(std::bit_width(v));
  return w < kHistogramBuckets ? w : kHistogramBuckets - 1;
}

/// Inclusive lower bound of bucket i (0, 1, 2, 4, 8, ...).
inline std::uint64_t HistogramBucketLow(std::size_t i) {
  return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
}

/// Inclusive upper bound of bucket i (0, 1, 3, 7, 15, ...).
inline std::uint64_t HistogramBucketHigh(std::size_t i) {
  if (i == 0) return 0;
  if (i >= kHistogramBuckets - 1) return ~std::uint64_t{0};
  return (std::uint64_t{1} << i) - 1;
}

/// A plain (non-atomic) copy of a histogram's state: what snapshotters
/// hand to quantile extraction, merging and the exposition writers.
struct HistogramSnapshot {
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) /
                                  static_cast<double>(count);
  }

  HistogramSnapshot& Merge(const HistogramSnapshot& o) {
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      buckets[i] += o.buckets[i];
    }
    count += o.count;
    sum += o.sum;
    return *this;
  }

  /// Value at quantile q in [0, 1]: walk the cumulative bucket counts to
  /// the bucket holding rank ceil(q * count), then interpolate linearly
  /// between the bucket's bounds by the rank's position inside it. Exact
  /// for single-bucket data; within one power of two otherwise.
  double Quantile(double q) const {
    if (count == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // Rank in [1, count]. ceil() without the float round-trip drama:
    // q*count then clamp.
    std::uint64_t rank =
        static_cast<std::uint64_t>(q * static_cast<double>(count));
    if (rank < 1) rank = 1;
    if (rank > count) rank = count;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      if (buckets[i] == 0) continue;
      if (cum + buckets[i] >= rank) {
        const double lo = static_cast<double>(HistogramBucketLow(i));
        const double hi = static_cast<double>(HistogramBucketHigh(i));
        const double within =
            static_cast<double>(rank - cum) / static_cast<double>(buckets[i]);
        return lo + (hi - lo) * within;
      }
      cum += buckets[i];
    }
    return static_cast<double>(HistogramBucketHigh(kHistogramBuckets - 1));
  }
};

/// The writer side: 64 relaxed-atomic buckets + count + sum. Record() is
/// wait-free (one bit_width, three fetch_adds); Snapshot() is callable
/// from any thread at any time.
class Log2Histogram {
 public:
  void Record(std::uint64_t v) {
    buckets_[HistogramBucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot s;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    // Derive count from the bucket reads so the snapshot is internally
    // consistent even if a Record() lands between the loops; sum stays
    // approximate mid-run (exact once writers quiesce).
    s.count = 0;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) s.count += s.buckets[i];
    s.sum = sum_.load(std::memory_order_relaxed);
    return s;
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

}  // namespace pegasus::telemetry
