#include "telemetry/trace.hpp"

#include <algorithm>
#include <bit>

namespace pegasus::telemetry {

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kPacketSpan:
      return "packet_span";
    case TraceEventKind::kBatchFlush:
      return "batch_flush";
    case TraceEventKind::kSwapBegin:
      return "swap_begin";
    case TraceEventKind::kSwapApply:
      return "swap_apply";
    case TraceEventKind::kSwapPublish:
      return "swap_publish";
    case TraceEventKind::kSwapRollback:
      return "swap_rollback";
    case TraceEventKind::kDeltaApply:
      return "delta_apply";
    case TraceEventKind::kShed:
      return "shed";
    case TraceEventKind::kStall:
      return "stall";
    case TraceEventKind::kStallClear:
      return "stall_clear";
  }
  return "?";
}

EventRing::EventRing(std::size_t capacity) {
  if (capacity == 0) return;  // disabled: Record() no-ops
  capacity_ = std::bit_ceil(capacity);
  mask_ = capacity_ - 1;
  slots_ = std::make_unique<Slot[]>(capacity_);
}

void EventRing::Record(TraceEventKind kind, std::uint32_t shard,
                       std::uint64_t ts_ns, std::uint64_t dur_ns,
                       std::uint64_t arg_a, std::uint64_t arg_b) {
  if (slots_ == nullptr) [[unlikely]] {
    return;  // disabled ring — single predictable branch
  }
  const std::uint64_t claim = cursor_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[claim & mask_];
  // Invalidate first so a concurrent reader lapped by this write drops the
  // slot instead of mixing old/new fields, then publish seq last.
  s.seq.store(0, std::memory_order_relaxed);
  s.ts_ns.store(ts_ns, std::memory_order_relaxed);
  s.dur_ns.store(dur_ns, std::memory_order_relaxed);
  s.arg_a.store(arg_a, std::memory_order_relaxed);
  s.arg_b.store(arg_b, std::memory_order_relaxed);
  s.kind_shard.store(
      (static_cast<std::uint64_t>(kind) << 32) | shard,
      std::memory_order_relaxed);
  s.seq.store(claim + 1, std::memory_order_release);
}

std::vector<TraceEvent> EventRing::Dump() const {
  std::vector<TraceEvent> out;
  if (slots_ == nullptr) return out;
  out.reserve(capacity_);
  for (std::size_t i = 0; i < capacity_; ++i) {
    const Slot& s = slots_[i];
    const std::uint64_t seq = s.seq.load(std::memory_order_acquire);
    if (seq == 0) continue;
    TraceEvent e;
    e.seq = seq;
    e.ts_ns = s.ts_ns.load(std::memory_order_relaxed);
    e.dur_ns = s.dur_ns.load(std::memory_order_relaxed);
    e.arg_a = s.arg_a.load(std::memory_order_relaxed);
    e.arg_b = s.arg_b.load(std::memory_order_relaxed);
    const std::uint64_t ks = s.kind_shard.load(std::memory_order_relaxed);
    e.shard = static_cast<std::uint32_t>(ks & 0xffffffffu);
    e.kind = static_cast<TraceEventKind>(ks >> 32);
    // Re-check: a writer that lapped this slot mid-copy invalidated (or
    // re-published) seq — drop the torn read.
    if (s.seq.load(std::memory_order_acquire) != seq) continue;
    out.push_back(e);
  }
  return out;
}

void EventRing::Reset() {
  if (slots_ == nullptr) return;
  for (std::size_t i = 0; i < capacity_; ++i) {
    slots_[i].seq.store(0, std::memory_order_relaxed);
  }
  cursor_.store(0, std::memory_order_relaxed);
}

std::vector<TraceEvent> MergeTraceDumps(
    std::vector<std::vector<TraceEvent>> dumps) {
  std::vector<TraceEvent> all;
  std::size_t total = 0;
  for (const auto& d : dumps) total += d.size();
  all.reserve(total);
  for (auto& d : dumps) {
    all.insert(all.end(), d.begin(), d.end());
  }
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              if (a.shard != b.shard) return a.shard < b.shard;
              return a.seq < b.seq;
            });
  return all;
}

void WriteTraceJson(const std::vector<TraceEvent>& events, std::ostream& os) {
  os << "{\n  \"clock\": \"steady_ns_since_telemetry_start\",\n"
     << "  \"events\": [\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    os << "    {\"seq\": " << e.seq << ", \"ts_ns\": " << e.ts_ns
       << ", \"dur_ns\": " << e.dur_ns << ", \"kind\": \""
       << TraceEventKindName(e.kind) << "\", \"shard\": ";
    if (e.shard == TraceEvent::kControlTrack) {
      os << -1;
    } else {
      os << e.shard;
    }
    os << ", \"a\": " << e.arg_a << ", \"b\": " << e.arg_b << "}"
       << (i + 1 < events.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace pegasus::telemetry
