// Exposition (ISSUE 10 tentpole part 4): the snapshot struct
// StreamServer::TelemetrySnapshot() fills, plus JSON and Prometheus-text
// writers over it, plus an optional background StatsReporter thread that
// emits one line-rate summary per tick to any ostream.
//
// A TelemetrySnapshot is a plain value: take one at any time (including
// while the server runs — every source field is an atomic), diff two of
// them for rates, serialize them for artifacts. bench_stream writes one
// to BENCH_telemetry.json; the CI latency gate compares runs by the
// quantiles recorded here.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace pegasus::telemetry {

/// One stage's merged histogram + extracted quantiles.
struct StageSnapshot {
  Stage stage = Stage::kIngestNext;
  HistogramSnapshot hist;
  std::uint64_t count = 0;
  double mean_ns = 0.0;
  double p50_ns = 0.0;
  double p90_ns = 0.0;
  double p99_ns = 0.0;
  double p999_ns = 0.0;

  /// Fills count/mean/quantiles from `hist`.
  void Finish();
};

/// One shard's live row.
struct ShardTelemetrySnapshot {
  std::uint64_t heartbeat = 0;
  std::uint64_t processed = 0;
  std::uint64_t decisions = 0;
  std::size_t ring_depth = 0;
  std::size_t ring_depth_hwm = 0;
  std::uint64_t shed_ring_full = 0;
  std::uint64_t shed_misrouted = 0;
  std::uint64_t shed_inference = 0;
  std::uint64_t table_hits = 0;
  std::uint64_t table_misses = 0;
  bool stalled = false;
};

struct TelemetrySnapshot {
  /// False when the server was built with telemetry detached (the true
  /// zero-overhead shape): only the health-backed fields below are
  /// populated, stage histograms and decision counters stay zero.
  bool attached = false;
  std::uint32_t sample_every = 0;
  bool tracing = false;
  /// Clock reading (ns since telemetry start) when the snapshot was
  /// taken; diff two snapshots for rates.
  std::uint64_t now_ns = 0;
  std::uint64_t active_version = 0;
  bool running = false;

  std::uint64_t packets = 0;    // sum of shard processed counters
  std::uint64_t decisions = 0;  // sum of shard decision counters (attached)
  std::uint64_t shed_total = 0;
  std::uint64_t stall_events = 0;
  std::size_t stalled_shards = 0;
  std::uint64_t trace_events_recorded = 0;

  std::array<StageSnapshot, kNumStages> stages{};
  std::vector<ShardTelemetrySnapshot> shards;

  const StageSnapshot& stage(Stage s) const {
    return stages[static_cast<std::size_t>(s)];
  }
  /// Flow-table hit fraction over the gauges' last publish (0 when the
  /// tables have seen nothing).
  double HitRate() const;
};

/// Machine-readable JSON (one object; stable key order; no dependency on
/// a JSON library — same discipline as the bench emitters).
void WriteJson(const TelemetrySnapshot& snap, std::ostream& os);

/// Prometheus text exposition format (# TYPE lines + samples; histograms
/// as cumulative le-labelled buckets in seconds, counters as _total).
void WritePrometheus(const TelemetrySnapshot& snap, std::ostream& os);

/// Background reporter: calls `take` every `interval_ms` and writes one
/// human-oriented line per tick (pps, shed rate, max ring depth/HWM, hit
/// rate, e2e p50/p99/p999) to `os`. Rates come from diffing consecutive
/// snapshots. The callback form keeps this header free of the runtime —
/// pass [&server] { return server.TelemetrySnapshot(); }.
class StatsReporter {
 public:
  using SnapshotFn = std::function<TelemetrySnapshot()>;

  StatsReporter(SnapshotFn take, std::ostream& os,
                std::uint64_t interval_ms = 1000);
  ~StatsReporter();

  StatsReporter(const StatsReporter&) = delete;
  StatsReporter& operator=(const StatsReporter&) = delete;

  void Start();
  /// Stops the thread after emitting one final line (so short runs still
  /// produce output). Idempotent; the destructor calls it.
  void Stop();
  std::uint64_t ticks() const {
    return ticks_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();
  void EmitLine(const TelemetrySnapshot& cur);

  SnapshotFn take_;
  std::ostream& os_;
  std::uint64_t interval_ms_;
  TelemetrySnapshot last_;
  bool has_last_ = false;
  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace pegasus::telemetry
