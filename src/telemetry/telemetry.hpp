// Stage-latency telemetry (ISSUE 10 tentpole part 2): what the metrics
// core + flight recorder look like once wired to the serving path. One
// ServerTelemetry owns a cache-line-padded ShardTelemetry per shard
// (stage histograms + a private event ring + live gauges) plus a control
// ring for producer/ingest/watchdog events, and a monotonic clock whose
// epoch every timestamp shares.
//
// Sampling discipline (same as the fault hooks, runtime/fault.hpp): the
// per-producer Sampler costs one predictable branch when sample_every is
// 0, and a countdown decrement — no modulo, no RNG — when it is not.
// A sampled packet carries a 32-bit truncated enqueue timestamp through
// the ring (in TracePacket's padding hole, so ShardItem stays 2x64
// bytes); 0 means "unsampled", and the 1-in-4-billion stamp that truly
// lands on 0 is nudged to 1 — a 1ns bias on one sample, not a lost one.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace pegasus::telemetry {

/// The instrumented stages of a packet's life. kSwapPublish is the odd
/// one out (per-swap, not per-packet) but lives in the same set so swap
/// gaps get the same quantile treatment as packet latencies.
enum class Stage : std::uint8_t {
  /// PacketSource::Next — trace decode / pcap parse time at ingest.
  kIngestNext = 0,
  /// Push -> worker pop: time spent queued in the shard's SPSC ring.
  kRingDwell,
  /// FlowTable::FindOrInsert.
  kFlowLookup,
  /// OnlineFeatureExtractor Update + Emit*.
  kFeatureExtract,
  /// One batch flush: Infer + argmax + decision emit, amortized whole-
  /// batch cost (recorded once per flush, not per packet).
  kInferFlush,
  /// ApplySwap's serving gap: partial-batch flush + engine rebuild.
  kSwapPublish,
  /// Push (or ingest stamp) -> decision emitted, per sampled packet.
  kEndToEnd,
};

inline constexpr std::size_t kNumStages = 7;

const char* StageName(Stage stage);

struct TelemetryOptions {
  /// Record stage latencies for 1 in N packets; 0 disables sampling (one
  /// predictable branch on the hot path, nothing else).
  std::uint32_t sample_every = 0;
  /// Per-shard flight-recorder capacity in events (rounded to a power of
  /// two; the control ring gets the same). 0 disables tracing.
  std::size_t trace_events = 0;
  /// Force the telemetry structures to exist even with sampling and
  /// tracing off — live gauges/counters (ring-depth HWM gauge, decision
  /// counter, table hit gauges) still update, and TelemetrySnapshot()
  /// reports them. This is the "disabled" arm of the CI overhead gate:
  /// telemetry attached, per-packet sampling off.
  bool attach = false;

  bool Attached() const {
    return attach || sample_every != 0 || trace_events != 0;
  }
};

/// 1-in-N countdown. Owned by exactly one thread (each producer/worker
/// keeps its own); never shared.
struct Sampler {
  std::uint32_t every = 0;
  std::uint32_t countdown = 1;  // first eligible event is sampled

  explicit Sampler(std::uint32_t n = 0) : every(n) {}

  bool Sample() {
    if (every == 0) [[likely]] {
      return false;
    }
    if (--countdown != 0) return false;
    countdown = every;
    return true;
  }
};

/// One histogram per stage.
class StageHistograms {
 public:
  void Record(Stage stage, std::uint64_t ns) {
    h_[static_cast<std::size_t>(stage)].Record(ns);
  }
  const Log2Histogram& Of(Stage stage) const {
    return h_[static_cast<std::size_t>(stage)];
  }
  HistogramSnapshot Snapshot(Stage stage) const {
    return h_[static_cast<std::size_t>(stage)].Snapshot();
  }
  void Reset() {
    for (auto& h : h_) h.Reset();
  }

 private:
  Log2Histogram h_[kNumStages];
};

/// Everything one shard writes. alignas keeps neighbouring shards'
/// telemetry off each other's cache lines (the members are padded
/// individually too — Counter/Gauge are alignas(64)).
struct alignas(64) ShardTelemetry {
  explicit ShardTelemetry(std::size_t trace_capacity)
      : ring(trace_capacity) {}

  StageHistograms stages;
  EventRing ring;
  /// Decisions emitted (live; Stats().decisions is the quiesced truth).
  Counter decisions;
  /// Inference-shed packets (mirrors the worker-owned plain counter so
  /// the live snapshot can see sheds happening).
  Counter shed_inference;
  /// FlowTable hit/miss counters, copied from the (worker-private) table
  /// stats once per batch flush so the live snapshot can derive hit rate.
  Gauge table_hits;
  Gauge table_misses;
};

/// The server-wide aggregate: per-shard blocks + the multi-writer control
/// ring + the shared clock.
class ServerTelemetry {
 public:
  ServerTelemetry(const TelemetryOptions& opts, std::size_t num_shards)
      : opts_(opts), control_(opts.trace_events),
        base_(std::chrono::steady_clock::now()) {
    shards_.reserve(num_shards);
    for (std::size_t i = 0; i < num_shards; ++i) {
      shards_.push_back(std::make_unique<ShardTelemetry>(opts.trace_events));
    }
  }

  const TelemetryOptions& options() const { return opts_; }
  std::uint32_t sample_every() const { return opts_.sample_every; }
  bool tracing() const { return control_.enabled(); }
  std::size_t num_shards() const { return shards_.size(); }
  ShardTelemetry& shard(std::size_t i) { return *shards_[i]; }
  const ShardTelemetry& shard(std::size_t i) const { return *shards_[i]; }
  EventRing& control_ring() { return control_; }
  const EventRing& control_ring() const { return control_; }

  /// Nanoseconds since this telemetry instance was built (steady clock —
  /// every event and stamp shares the epoch).
  std::uint64_t NowNs() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - base_)
            .count());
  }

  /// Truncated 32-bit stamp for the in-ring dwell/end-to-end clock.
  /// Wraps every ~4.29s; u32 subtraction at the consumer handles one
  /// wrap, and a span longer than that is far beyond any sane ring dwell.
  /// Never returns 0 (the "unsampled" sentinel).
  std::uint32_t Stamp32() const {
    const auto s = static_cast<std::uint32_t>(NowNs());
    return s == 0 ? 1u : s;
  }
  std::uint32_t Stamp32(std::uint64_t now_ns) const {
    const auto s = static_cast<std::uint32_t>(now_ns);
    return s == 0 ? 1u : s;
  }

  /// Merged, time-ordered dump of the control ring + every shard ring.
  std::vector<TraceEvent> DumpTrace() const {
    std::vector<std::vector<TraceEvent>> dumps;
    dumps.reserve(shards_.size() + 1);
    dumps.push_back(control_.Dump());
    for (const auto& s : shards_) dumps.push_back(s->ring.Dump());
    return MergeTraceDumps(std::move(dumps));
  }

  void Reset() {
    control_.Reset();
    for (auto& s : shards_) {
      s->stages.Reset();
      s->ring.Reset();
      s->decisions.Reset();
      s->shed_inference.Reset();
      s->table_hits.Reset();
      s->table_misses.Reset();
    }
  }

 private:
  TelemetryOptions opts_;
  EventRing control_;
  std::chrono::steady_clock::time_point base_;
  std::vector<std::unique_ptr<ShardTelemetry>> shards_;
};

}  // namespace pegasus::telemetry
