// Neural-network layers used by the paper's models (Table 4):
// FC (Dense), Conv1D, BatchNorm, activations (ReLU/tanh/sigmoid),
// pooling, Embedding and a windowed simple-RNN cell.
//
// Training is plain backprop: every layer caches what it needs in Forward
// and produces input gradients in Backward. No autograd graph — the models
// in this repo are small feed-forward stacks, and an explicit layer API
// keeps the substrate auditable.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace pegasus::nn {

/// A trainable parameter: value plus the gradient accumulated by Backward.
struct Param {
  Tensor value;
  Tensor grad;

  explicit Param(std::vector<std::size_t> shape)
      : value(shape), grad(std::move(shape)) {}
  std::size_t size() const { return value.size(); }
};

/// Base class for all layers. Layers own their parameters.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Runs the layer. `training` switches BatchNorm statistics and similar
  /// mode-dependent behaviour.
  virtual Tensor Forward(const Tensor& x, bool training) = 0;

  /// Propagates `grad_out` (dLoss/dOutput) backwards, accumulating parameter
  /// gradients and returning dLoss/dInput. Must be called after Forward.
  virtual Tensor Backward(const Tensor& grad_out) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Param*> Params() { return {}; }

  virtual std::string Name() const = 0;

  /// Number of scalar parameters; model size in the paper's tables is
  /// ParamCount * 32 bits for full-precision models.
  std::size_t ParamCount() {
    std::size_t n = 0;
    for (Param* p : Params()) n += p->size();
    return n;
  }
};

/// Fully connected layer: y = xW + b, x:[N,in] -> y:[N,out].
class Dense : public Layer {
 public:
  Dense(std::size_t in, std::size_t out, std::mt19937_64& rng);

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Param*> Params() override { return {&w_, &b_}; }
  std::string Name() const override { return "Dense"; }

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }
  const Param& weight() const { return w_; }
  const Param& bias() const { return b_; }
  Param& weight() { return w_; }
  Param& bias() { return b_; }

 private:
  std::size_t in_, out_;
  Param w_, b_;
  Tensor cached_x_;
};

/// Batch normalization over feature dimension of x:[N,F].
/// Inference uses running statistics, matching the paper's deployment where
/// BN folds into an element-wise linear transform (gamma*(x-mu)/sigma+beta).
class BatchNorm1d : public Layer {
 public:
  explicit BatchNorm1d(std::size_t features, float momentum = 0.1f,
                       float eps = 1e-5f);

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Param*> Params() override { return {&gamma_, &beta_}; }
  std::string Name() const override { return "BatchNorm1d"; }

  /// Effective inference-time affine transform: y = scale*x + shift.
  /// This is what the Pegasus compiler folds into mapping tables.
  void InferenceAffine(std::vector<float>& scale,
                       std::vector<float>& shift) const;

 private:
  std::size_t features_;
  float momentum_, eps_;
  Param gamma_, beta_;
  Tensor running_mean_, running_var_;
  // caches
  Tensor cached_x_hat_, cached_inv_std_, cached_x_centered_;
};

/// Layer normalization over the feature dimension of x:[N,F] (Table 4's
/// "Layer Normalization" — a Multi-Input Operation on the dataplane, since
/// each output depends on the whole row).
class LayerNorm : public Layer {
 public:
  explicit LayerNorm(std::size_t features, float eps = 1e-5f);

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Param*> Params() override { return {&gamma_, &beta_}; }
  std::string Name() const override { return "LayerNorm"; }

 private:
  std::size_t features_;
  float eps_;
  Param gamma_, beta_;
  Tensor cached_x_hat_, cached_inv_std_;
};

/// Element-wise product of two equal halves of the input (Table 4's
/// "Hadamard", the gating operation of recurrent cells): x:[N,2F] ->
/// y:[N,F] with y = x[:, :F] * x[:, F:].
class HadamardGate : public Layer {
 public:
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::string Name() const override { return "HadamardGate"; }

 private:
  Tensor cached_x_;
};

class ReLU : public Layer {
 public:
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::string Name() const override { return "ReLU"; }

 private:
  Tensor cached_mask_;
};

class Tanh : public Layer {
 public:
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::string Name() const override { return "Tanh"; }

 private:
  Tensor cached_y_;
};

class Sigmoid : public Layer {
 public:
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::string Name() const override { return "Sigmoid"; }

 private:
  Tensor cached_y_;
};

/// 1-D convolution over x:[N,C,L] with weight [OC,C,K] and stride S,
/// producing [N,OC,Lo], Lo = (L-K)/S + 1 (valid padding, as in textcnn).
class Conv1D : public Layer {
 public:
  Conv1D(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t stride, std::mt19937_64& rng);

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Param*> Params() override { return {&w_, &b_}; }
  std::string Name() const override { return "Conv1D"; }

  std::size_t kernel() const { return kernel_; }
  std::size_t stride() const { return stride_; }
  const Param& weight() const { return w_; }
  const Param& bias() const { return b_; }

 private:
  std::size_t in_ch_, out_ch_, kernel_, stride_;
  Param w_, b_;
  Tensor cached_x_;
};

/// Max pooling over the length dimension of x:[N,C,L].
class MaxPool1D : public Layer {
 public:
  MaxPool1D(std::size_t kernel, std::size_t stride);

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::string Name() const override { return "MaxPool1D"; }

 private:
  std::size_t kernel_, stride_;
  std::vector<std::size_t> argmax_;
  std::vector<std::size_t> in_shape_;
};

/// Average pooling over the length dimension of x:[N,C,L].
class AvgPool1D : public Layer {
 public:
  AvgPool1D(std::size_t kernel, std::size_t stride);

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::string Name() const override { return "AvgPool1D"; }

 private:
  std::size_t kernel_, stride_;
  std::vector<std::size_t> in_shape_;
};

/// Collapses [N, d1, d2, ...] to [N, d1*d2*...].
class Flatten : public Layer {
 public:
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::string Name() const override { return "Flatten"; }

 private:
  std::vector<std::size_t> in_shape_;
};

/// Embedding lookup: x:[N,L] of integer indices (stored as floats) ->
/// [N, L, D]. Indices outside [0, num_embeddings) are clamped, mirroring
/// the saturating behaviour of the dataplane lookup.
class Embedding : public Layer {
 public:
  Embedding(std::size_t num_embeddings, std::size_t dim,
            std::mt19937_64& rng);

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Param*> Params() override { return {&table_}; }
  std::string Name() const override { return "Embedding"; }

  std::size_t num_embeddings() const { return num_; }
  std::size_t dim() const { return dim_; }
  const Param& table() const { return table_; }

 private:
  std::size_t num_, dim_;
  Param table_;
  Tensor cached_idx_;
};

/// Windowed simple RNN: h_t = tanh(x_t Wx + h_{t-1} Wh + b), unrolled over a
/// fixed window of T steps (the paper's RNN-B processes multiple time steps
/// on the switch without hidden-state write-back). Input [N, T, F], output
/// final hidden state [N, H]. Backward is truncated BPTT over the window.
class SimpleRNN : public Layer {
 public:
  SimpleRNN(std::size_t in_features, std::size_t hidden,
            std::mt19937_64& rng);

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Param*> Params() override { return {&wx_, &wh_, &b_}; }
  std::string Name() const override { return "SimpleRNN"; }

  std::size_t hidden() const { return hidden_; }

 private:
  std::size_t in_, hidden_;
  Param wx_, wh_, b_;
  Tensor cached_x_;
  std::vector<Tensor> cached_h_;  // h_0..h_T, each [N,H]
};

/// Sequential container; owns its layers.
class Sequential {
 public:
  Sequential() = default;

  template <typename L, typename... Args>
  L* Emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L* raw = layer.get();
    layers_.push_back(std::move(layer));
    return raw;
  }

  void Append(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
  }

  Tensor Forward(const Tensor& x, bool training);
  Tensor Backward(const Tensor& grad_out);

  std::vector<Param*> Params();
  std::size_t ParamCount();

  /// Model size in kilobits at the given weight precision (32 for
  /// full-precision Pegasus models, 1 for binarized baselines).
  double ModelSizeKb(int bits_per_weight = 32);

  std::size_t NumLayers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }
  const Layer& layer(std::size_t i) const { return *layers_.at(i); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace pegasus::nn
