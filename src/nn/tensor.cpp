#include "nn/tensor.hpp"

#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace pegasus::nn {

namespace {
std::size_t Product(const std::vector<std::size_t>& shape) {
  return std::accumulate(shape.begin(), shape.end(), std::size_t{1},
                         std::multiplies<>());
}
}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(Product(shape_), 0.0f) {
  stride0_ = shape_.empty() ? 0 : data_.size() / shape_[0];
}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (Product(shape_) != data_.size()) {
    throw std::invalid_argument("Tensor: data size " +
                                std::to_string(data_.size()) +
                                " does not match shape product " +
                                std::to_string(Product(shape_)));
  }
  stride0_ = shape_.empty() ? 0 : data_.size() / shape_[0];
}

Tensor Tensor::FromVector(std::vector<float> v) {
  const std::size_t n = v.size();
  return Tensor({n}, std::move(v));
}

Tensor Tensor::Reshaped(std::vector<std::size_t> shape) const {
  if (Product(shape) != data_.size()) {
    throw std::invalid_argument("Reshaped: size mismatch");
  }
  return Tensor(std::move(shape), data_);
}

void Tensor::Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::Add(const Tensor& other) {
  if (other.size() != size()) {
    throw std::invalid_argument("Tensor::Add: size mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::Scale(float s) {
  for (float& v : data_) v *= s;
}

bool Tensor::HasNonFinite() const noexcept {
  for (float v : data_) {
    if (!std::isfinite(v)) return true;
  }
  return false;
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ',';
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(0)) {
    throw std::invalid_argument("MatMul: incompatible shapes " +
                                a.ShapeString() + " x " + b.ShapeString());
  }
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const float aval = a.at(i, p);
      if (aval == 0.0f) continue;
      for (std::size_t j = 0; j < n; ++j) {
        c.at(i, j) += aval * b.at(p, j);
      }
    }
  }
  return c;
}

Tensor MatMulTransposedB(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(1)) {
    throw std::invalid_argument("MatMulTransposedB: incompatible shapes");
  }
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += a.at(i, p) * b.at(j, p);
      c.at(i, j) = acc;
    }
  }
  return c;
}

Tensor MatMulTransposedA(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(0) != b.dim(0)) {
    throw std::invalid_argument("MatMulTransposedA: incompatible shapes");
  }
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t i = 0; i < m; ++i) {
      const float aval = a.at(p, i);
      if (aval == 0.0f) continue;
      for (std::size_t j = 0; j < n; ++j) c.at(i, j) += aval * b.at(p, j);
    }
  }
  return c;
}

void XavierInit(Tensor& w, std::size_t fan_in, std::size_t fan_out,
                std::mt19937_64& rng) {
  const float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  std::uniform_real_distribution<float> dist(-limit, limit);
  for (float& v : w.data()) v = dist(rng);
}

void HeInit(Tensor& w, std::size_t fan_in, std::mt19937_64& rng) {
  std::normal_distribution<float> dist(
      0.0f, std::sqrt(2.0f / static_cast<float>(fan_in)));
  for (float& v : w.data()) v = dist(rng);
}

}  // namespace pegasus::nn
