// Mini-batch training loops shared by all models: a classifier trainer
// (softmax cross-entropy) and an autoencoder trainer (MSE reconstruction).
#pragma once

#include <cstdint>
#include <functional>
#include <random>
#include <vector>

#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace pegasus::nn {

struct TrainConfig {
  std::size_t epochs = 30;
  std::size_t batch_size = 64;
  float lr = 1e-3f;
  /// Multiplied into lr after each epoch (1.0 = constant).
  float lr_decay = 1.0f;
  std::uint64_t seed = 1;
  /// Optional per-epoch callback (epoch, mean train loss).
  std::function<void(std::size_t, float)> on_epoch;
};

/// Gathers rows `idx` from x:[N,...] into a batch tensor preserving trailing
/// dims.
Tensor GatherRows(const Tensor& x, const std::vector<std::size_t>& idx);

/// Trains `model` as a classifier on (x, labels). Returns final-epoch mean
/// training loss. Throws if the loss diverges to a non-finite value.
float TrainClassifier(Sequential& model, const Tensor& x,
                      const std::vector<std::int32_t>& labels,
                      const TrainConfig& cfg);

/// Trains `model` to reconstruct `target` from `x` (same row count). When
/// `target` is `x` itself this is a plain autoencoder.
float TrainAutoencoder(Sequential& model, const Tensor& x,
                       const Tensor& target, const TrainConfig& cfg);

/// Batched inference helper (no gradient state kept beyond the last batch).
Tensor Predict(Sequential& model, const Tensor& x,
               std::size_t batch_size = 256);

}  // namespace pegasus::nn
