#include "nn/layers.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace pegasus::nn {

// ---------------------------------------------------------------- Dense

Dense::Dense(std::size_t in, std::size_t out, std::mt19937_64& rng)
    : in_(in), out_(out), w_({in, out}), b_({out}) {
  XavierInit(w_.value, in, out, rng);
}

Tensor Dense::Forward(const Tensor& x, bool /*training*/) {
  if (x.rank() != 2 || x.dim(1) != in_) {
    throw std::invalid_argument("Dense: expected [N," + std::to_string(in_) +
                                "], got " + x.ShapeString());
  }
  cached_x_ = x;
  Tensor y = MatMul(x, w_.value);
  for (std::size_t i = 0; i < y.dim(0); ++i)
    for (std::size_t j = 0; j < out_; ++j) y.at(i, j) += b_.value[j];
  return y;
}

Tensor Dense::Backward(const Tensor& grad_out) {
  // dW = x^T g ; db = colsum(g) ; dx = g W^T
  Tensor dw = MatMulTransposedA(cached_x_, grad_out);
  w_.grad.Add(dw);
  for (std::size_t i = 0; i < grad_out.dim(0); ++i)
    for (std::size_t j = 0; j < out_; ++j)
      b_.grad[j] += grad_out.at(i, j);
  return MatMulTransposedB(grad_out, w_.value);
}

// ----------------------------------------------------------- BatchNorm1d

BatchNorm1d::BatchNorm1d(std::size_t features, float momentum, float eps)
    : features_(features),
      momentum_(momentum),
      eps_(eps),
      gamma_({features}),
      beta_({features}),
      running_mean_({features}),
      running_var_({features}) {
  gamma_.value.Fill(1.0f);
  running_var_.Fill(1.0f);
}

Tensor BatchNorm1d::Forward(const Tensor& x, bool training) {
  if (x.rank() != 2 || x.dim(1) != features_) {
    throw std::invalid_argument("BatchNorm1d: bad input " + x.ShapeString());
  }
  const std::size_t n = x.dim(0);
  Tensor y({n, features_});
  if (training) {
    cached_x_centered_ = Tensor({n, features_});
    cached_x_hat_ = Tensor({n, features_});
    cached_inv_std_ = Tensor({features_});
    for (std::size_t f = 0; f < features_; ++f) {
      float mean = 0.0f;
      for (std::size_t i = 0; i < n; ++i) mean += x.at(i, f);
      mean /= static_cast<float>(n);
      float var = 0.0f;
      for (std::size_t i = 0; i < n; ++i) {
        const float d = x.at(i, f) - mean;
        var += d * d;
      }
      var /= static_cast<float>(n);
      const float inv_std = 1.0f / std::sqrt(var + eps_);
      cached_inv_std_[f] = inv_std;
      running_mean_[f] = (1 - momentum_) * running_mean_[f] + momentum_ * mean;
      running_var_[f] = (1 - momentum_) * running_var_[f] + momentum_ * var;
      for (std::size_t i = 0; i < n; ++i) {
        const float xc = x.at(i, f) - mean;
        cached_x_centered_.at(i, f) = xc;
        const float xh = xc * inv_std;
        cached_x_hat_.at(i, f) = xh;
        y.at(i, f) = gamma_.value[f] * xh + beta_.value[f];
      }
    }
  } else {
    for (std::size_t f = 0; f < features_; ++f) {
      const float inv_std = 1.0f / std::sqrt(running_var_[f] + eps_);
      for (std::size_t i = 0; i < n; ++i) {
        y.at(i, f) =
            gamma_.value[f] * (x.at(i, f) - running_mean_[f]) * inv_std +
            beta_.value[f];
      }
    }
  }
  return y;
}

Tensor BatchNorm1d::Backward(const Tensor& grad_out) {
  const std::size_t n = grad_out.dim(0);
  Tensor dx({n, features_});
  const float nf = static_cast<float>(n);
  for (std::size_t f = 0; f < features_; ++f) {
    float dgamma = 0.0f, dbeta = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
      dgamma += grad_out.at(i, f) * cached_x_hat_.at(i, f);
      dbeta += grad_out.at(i, f);
    }
    gamma_.grad[f] += dgamma;
    beta_.grad[f] += dbeta;
    const float inv_std = cached_inv_std_[f];
    // dx = (gamma*inv_std/N) * (N*g - sum(g) - x_hat * sum(g*x_hat))
    for (std::size_t i = 0; i < n; ++i) {
      dx.at(i, f) = gamma_.value[f] * inv_std / nf *
                    (nf * grad_out.at(i, f) - dbeta -
                     cached_x_hat_.at(i, f) * dgamma);
    }
  }
  return dx;
}

void BatchNorm1d::InferenceAffine(std::vector<float>& scale,
                                  std::vector<float>& shift) const {
  scale.resize(features_);
  shift.resize(features_);
  for (std::size_t f = 0; f < features_; ++f) {
    const float inv_std = 1.0f / std::sqrt(running_var_[f] + eps_);
    scale[f] = gamma_.value[f] * inv_std;
    shift[f] = beta_.value[f] - gamma_.value[f] * running_mean_[f] * inv_std;
  }
}

// -------------------------------------------------------------- LayerNorm

LayerNorm::LayerNorm(std::size_t features, float eps)
    : features_(features),
      eps_(eps),
      gamma_({features}),
      beta_({features}) {
  gamma_.value.Fill(1.0f);
}

Tensor LayerNorm::Forward(const Tensor& x, bool /*training*/) {
  if (x.rank() != 2 || x.dim(1) != features_) {
    throw std::invalid_argument("LayerNorm: bad input " + x.ShapeString());
  }
  const std::size_t n = x.dim(0);
  Tensor y({n, features_});
  cached_x_hat_ = Tensor({n, features_});
  cached_inv_std_ = Tensor({n});
  const float ff = static_cast<float>(features_);
  for (std::size_t i = 0; i < n; ++i) {
    float mean = 0.0f;
    for (std::size_t f = 0; f < features_; ++f) mean += x.at(i, f);
    mean /= ff;
    float var = 0.0f;
    for (std::size_t f = 0; f < features_; ++f) {
      const float d = x.at(i, f) - mean;
      var += d * d;
    }
    var /= ff;
    const float inv_std = 1.0f / std::sqrt(var + eps_);
    cached_inv_std_[i] = inv_std;
    for (std::size_t f = 0; f < features_; ++f) {
      const float xh = (x.at(i, f) - mean) * inv_std;
      cached_x_hat_.at(i, f) = xh;
      y.at(i, f) = gamma_.value[f] * xh + beta_.value[f];
    }
  }
  return y;
}

Tensor LayerNorm::Backward(const Tensor& grad_out) {
  const std::size_t n = grad_out.dim(0);
  Tensor dx({n, features_});
  const float ff = static_cast<float>(features_);
  for (std::size_t i = 0; i < n; ++i) {
    float sum_g = 0.0f, sum_gx = 0.0f;
    for (std::size_t f = 0; f < features_; ++f) {
      const float g = grad_out.at(i, f) * gamma_.value[f];
      sum_g += g;
      sum_gx += g * cached_x_hat_.at(i, f);
      gamma_.grad[f] += grad_out.at(i, f) * cached_x_hat_.at(i, f);
      beta_.grad[f] += grad_out.at(i, f);
    }
    for (std::size_t f = 0; f < features_; ++f) {
      const float g = grad_out.at(i, f) * gamma_.value[f];
      dx.at(i, f) = cached_inv_std_[i] / ff *
                    (ff * g - sum_g - cached_x_hat_.at(i, f) * sum_gx);
    }
  }
  return dx;
}

// ----------------------------------------------------------- HadamardGate

Tensor HadamardGate::Forward(const Tensor& x, bool /*training*/) {
  if (x.rank() != 2 || x.dim(1) % 2 != 0) {
    throw std::invalid_argument("HadamardGate: input dim must be even");
  }
  cached_x_ = x;
  const std::size_t n = x.dim(0), half = x.dim(1) / 2;
  Tensor y({n, half});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t f = 0; f < half; ++f) {
      y.at(i, f) = x.at(i, f) * x.at(i, half + f);
    }
  }
  return y;
}

Tensor HadamardGate::Backward(const Tensor& grad_out) {
  const std::size_t n = cached_x_.dim(0), half = cached_x_.dim(1) / 2;
  Tensor dx({n, 2 * half});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t f = 0; f < half; ++f) {
      dx.at(i, f) = grad_out.at(i, f) * cached_x_.at(i, half + f);
      dx.at(i, half + f) = grad_out.at(i, f) * cached_x_.at(i, f);
    }
  }
  return dx;
}

// ------------------------------------------------------------ activations

Tensor ReLU::Forward(const Tensor& x, bool /*training*/) {
  cached_mask_ = Tensor(x.shape());
  Tensor y(x.shape());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const bool pos = x[i] > 0.0f;
    cached_mask_[i] = pos ? 1.0f : 0.0f;
    y[i] = pos ? x[i] : 0.0f;
  }
  return y;
}

Tensor ReLU::Backward(const Tensor& grad_out) {
  Tensor dx(grad_out.shape());
  for (std::size_t i = 0; i < grad_out.size(); ++i)
    dx[i] = grad_out[i] * cached_mask_[i];
  return dx;
}

Tensor Tanh::Forward(const Tensor& x, bool /*training*/) {
  Tensor y(x.shape());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = std::tanh(x[i]);
  cached_y_ = y;
  return y;
}

Tensor Tanh::Backward(const Tensor& grad_out) {
  Tensor dx(grad_out.shape());
  for (std::size_t i = 0; i < grad_out.size(); ++i)
    dx[i] = grad_out[i] * (1.0f - cached_y_[i] * cached_y_[i]);
  return dx;
}

Tensor Sigmoid::Forward(const Tensor& x, bool /*training*/) {
  Tensor y(x.shape());
  for (std::size_t i = 0; i < x.size(); ++i)
    y[i] = 1.0f / (1.0f + std::exp(-x[i]));
  cached_y_ = y;
  return y;
}

Tensor Sigmoid::Backward(const Tensor& grad_out) {
  Tensor dx(grad_out.shape());
  for (std::size_t i = 0; i < grad_out.size(); ++i)
    dx[i] = grad_out[i] * cached_y_[i] * (1.0f - cached_y_[i]);
  return dx;
}

// ---------------------------------------------------------------- Conv1D

Conv1D::Conv1D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::mt19937_64& rng)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      kernel_(kernel),
      stride_(stride),
      w_({out_channels, in_channels, kernel}),
      b_({out_channels}) {
  if (stride == 0 || kernel == 0) {
    throw std::invalid_argument("Conv1D: kernel and stride must be positive");
  }
  HeInit(w_.value, in_channels * kernel, rng);
}

Tensor Conv1D::Forward(const Tensor& x, bool /*training*/) {
  if (x.rank() != 3 || x.dim(1) != in_ch_ || x.dim(2) < kernel_) {
    throw std::invalid_argument("Conv1D: bad input " + x.ShapeString());
  }
  cached_x_ = x;
  const std::size_t n = x.dim(0), l = x.dim(2);
  const std::size_t lo = (l - kernel_) / stride_ + 1;
  Tensor y({n, out_ch_, lo});
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      for (std::size_t t = 0; t < lo; ++t) {
        float acc = b_.value[oc];
        const std::size_t base = t * stride_;
        for (std::size_t ic = 0; ic < in_ch_; ++ic)
          for (std::size_t k = 0; k < kernel_; ++k)
            acc += w_.value.at(oc, ic, k) * x.at(b, ic, base + k);
        y.at(b, oc, t) = acc;
      }
    }
  }
  return y;
}

Tensor Conv1D::Backward(const Tensor& grad_out) {
  const std::size_t n = cached_x_.dim(0), l = cached_x_.dim(2);
  const std::size_t lo = grad_out.dim(2);
  Tensor dx({n, in_ch_, l});
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      for (std::size_t t = 0; t < lo; ++t) {
        const float g = grad_out.at(b, oc, t);
        if (g == 0.0f) continue;
        b_.grad[oc] += g;
        const std::size_t base = t * stride_;
        for (std::size_t ic = 0; ic < in_ch_; ++ic) {
          for (std::size_t k = 0; k < kernel_; ++k) {
            w_.grad.at(oc, ic, k) += g * cached_x_.at(b, ic, base + k);
            dx.at(b, ic, base + k) += g * w_.value.at(oc, ic, k);
          }
        }
      }
    }
  }
  return dx;
}

// ----------------------------------------------------------------- pools

MaxPool1D::MaxPool1D(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride) {
  if (kernel == 0 || stride == 0) {
    throw std::invalid_argument("MaxPool1D: kernel/stride must be positive");
  }
}

Tensor MaxPool1D::Forward(const Tensor& x, bool /*training*/) {
  if (x.rank() != 3 || x.dim(2) < kernel_) {
    throw std::invalid_argument("MaxPool1D: bad input " + x.ShapeString());
  }
  in_shape_ = x.shape();
  const std::size_t n = x.dim(0), c = x.dim(1), l = x.dim(2);
  const std::size_t lo = (l - kernel_) / stride_ + 1;
  Tensor y({n, c, lo});
  argmax_.assign(n * c * lo, 0);
  std::size_t out_i = 0;
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      for (std::size_t t = 0; t < lo; ++t, ++out_i) {
        const std::size_t base = t * stride_;
        float best = -std::numeric_limits<float>::infinity();
        std::size_t best_k = base;
        for (std::size_t k = 0; k < kernel_; ++k) {
          const float v = x.at(b, ch, base + k);
          if (v > best) {
            best = v;
            best_k = base + k;
          }
        }
        y.at(b, ch, t) = best;
        argmax_[out_i] = best_k;
      }
    }
  }
  return y;
}

Tensor MaxPool1D::Backward(const Tensor& grad_out) {
  Tensor dx(in_shape_);
  const std::size_t n = grad_out.dim(0), c = grad_out.dim(1),
                    lo = grad_out.dim(2);
  std::size_t out_i = 0;
  for (std::size_t b = 0; b < n; ++b)
    for (std::size_t ch = 0; ch < c; ++ch)
      for (std::size_t t = 0; t < lo; ++t, ++out_i)
        dx.at(b, ch, argmax_[out_i]) += grad_out.at(b, ch, t);
  return dx;
}

AvgPool1D::AvgPool1D(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride) {
  if (kernel == 0 || stride == 0) {
    throw std::invalid_argument("AvgPool1D: kernel/stride must be positive");
  }
}

Tensor AvgPool1D::Forward(const Tensor& x, bool /*training*/) {
  if (x.rank() != 3 || x.dim(2) < kernel_) {
    throw std::invalid_argument("AvgPool1D: bad input " + x.ShapeString());
  }
  in_shape_ = x.shape();
  const std::size_t n = x.dim(0), c = x.dim(1), l = x.dim(2);
  const std::size_t lo = (l - kernel_) / stride_ + 1;
  Tensor y({n, c, lo});
  for (std::size_t b = 0; b < n; ++b)
    for (std::size_t ch = 0; ch < c; ++ch)
      for (std::size_t t = 0; t < lo; ++t) {
        float acc = 0.0f;
        for (std::size_t k = 0; k < kernel_; ++k)
          acc += x.at(b, ch, t * stride_ + k);
        y.at(b, ch, t) = acc / static_cast<float>(kernel_);
      }
  return y;
}

Tensor AvgPool1D::Backward(const Tensor& grad_out) {
  Tensor dx(in_shape_);
  const std::size_t n = grad_out.dim(0), c = grad_out.dim(1),
                    lo = grad_out.dim(2);
  const float inv_k = 1.0f / static_cast<float>(kernel_);
  for (std::size_t b = 0; b < n; ++b)
    for (std::size_t ch = 0; ch < c; ++ch)
      for (std::size_t t = 0; t < lo; ++t)
        for (std::size_t k = 0; k < kernel_; ++k)
          dx.at(b, ch, t * stride_ + k) += grad_out.at(b, ch, t) * inv_k;
  return dx;
}

// --------------------------------------------------------------- Flatten

Tensor Flatten::Forward(const Tensor& x, bool /*training*/) {
  in_shape_ = x.shape();
  return x.Reshaped({x.dim(0), x.size() / x.dim(0)});
}

Tensor Flatten::Backward(const Tensor& grad_out) {
  return grad_out.Reshaped(in_shape_);
}

// ------------------------------------------------------------- Embedding

Embedding::Embedding(std::size_t num_embeddings, std::size_t dim,
                     std::mt19937_64& rng)
    : num_(num_embeddings), dim_(dim), table_({num_embeddings, dim}) {
  XavierInit(table_.value, num_embeddings, dim, rng);
}

Tensor Embedding::Forward(const Tensor& x, bool /*training*/) {
  if (x.rank() != 2) {
    throw std::invalid_argument("Embedding: expected [N,L], got " +
                                x.ShapeString());
  }
  cached_idx_ = x;
  const std::size_t n = x.dim(0), l = x.dim(1);
  Tensor y({n, l, dim_});
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t t = 0; t < l; ++t) {
      auto idx = static_cast<std::int64_t>(x.at(b, t));
      idx = std::clamp<std::int64_t>(idx, 0,
                                     static_cast<std::int64_t>(num_) - 1);
      for (std::size_t d = 0; d < dim_; ++d)
        y.at(b, t, d) = table_.value.at(static_cast<std::size_t>(idx), d);
    }
  }
  return y;
}

Tensor Embedding::Backward(const Tensor& grad_out) {
  const std::size_t n = cached_idx_.dim(0), l = cached_idx_.dim(1);
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t t = 0; t < l; ++t) {
      auto idx = static_cast<std::int64_t>(cached_idx_.at(b, t));
      idx = std::clamp<std::int64_t>(idx, 0,
                                     static_cast<std::int64_t>(num_) - 1);
      for (std::size_t d = 0; d < dim_; ++d)
        table_.grad.at(static_cast<std::size_t>(idx), d) +=
            grad_out.at(b, t, d);
    }
  }
  // Indices are discrete; no gradient flows to them.
  return Tensor(cached_idx_.shape());
}

// ------------------------------------------------------------- SimpleRNN

SimpleRNN::SimpleRNN(std::size_t in_features, std::size_t hidden,
                     std::mt19937_64& rng)
    : in_(in_features),
      hidden_(hidden),
      wx_({in_features, hidden}),
      wh_({hidden, hidden}),
      b_({hidden}) {
  XavierInit(wx_.value, in_features, hidden, rng);
  XavierInit(wh_.value, hidden, hidden, rng);
}

Tensor SimpleRNN::Forward(const Tensor& x, bool /*training*/) {
  if (x.rank() != 3 || x.dim(2) != in_) {
    throw std::invalid_argument("SimpleRNN: expected [N,T," +
                                std::to_string(in_) + "], got " +
                                x.ShapeString());
  }
  cached_x_ = x;
  const std::size_t n = x.dim(0), steps = x.dim(1);
  cached_h_.assign(steps + 1, Tensor({n, hidden_}));
  for (std::size_t t = 0; t < steps; ++t) {
    Tensor& h_prev = cached_h_[t];
    Tensor& h = cached_h_[t + 1];
    for (std::size_t b = 0; b < n; ++b) {
      for (std::size_t j = 0; j < hidden_; ++j) {
        float acc = b_.value[j];
        for (std::size_t f = 0; f < in_; ++f)
          acc += x.at(b, t, f) * wx_.value.at(f, j);
        for (std::size_t k = 0; k < hidden_; ++k)
          acc += h_prev.at(b, k) * wh_.value.at(k, j);
        h.at(b, j) = std::tanh(acc);
      }
    }
  }
  return cached_h_.back();
}

Tensor SimpleRNN::Backward(const Tensor& grad_out) {
  const std::size_t n = cached_x_.dim(0), steps = cached_x_.dim(1);
  Tensor dx(cached_x_.shape());
  Tensor dh = grad_out;  // gradient w.r.t. h_t flowing backwards
  for (std::size_t t = steps; t-- > 0;) {
    const Tensor& h = cached_h_[t + 1];
    const Tensor& h_prev = cached_h_[t];
    // through tanh
    Tensor dpre({n, hidden_});
    for (std::size_t b = 0; b < n; ++b)
      for (std::size_t j = 0; j < hidden_; ++j)
        dpre.at(b, j) = dh.at(b, j) * (1.0f - h.at(b, j) * h.at(b, j));
    Tensor dh_prev({n, hidden_});
    for (std::size_t b = 0; b < n; ++b) {
      for (std::size_t j = 0; j < hidden_; ++j) {
        const float g = dpre.at(b, j);
        if (g == 0.0f) continue;
        b_.grad[j] += g;
        for (std::size_t f = 0; f < in_; ++f) {
          wx_.grad.at(f, j) += g * cached_x_.at(b, t, f);
          dx.at(b, t, f) += g * wx_.value.at(f, j);
        }
        for (std::size_t k = 0; k < hidden_; ++k) {
          wh_.grad.at(k, j) += g * h_prev.at(b, k);
          dh_prev.at(b, k) += g * wh_.value.at(k, j);
        }
      }
    }
    dh = std::move(dh_prev);
  }
  return dx;
}

// ------------------------------------------------------------ Sequential

Tensor Sequential::Forward(const Tensor& x, bool training) {
  Tensor cur = x;
  for (auto& layer : layers_) cur = layer->Forward(cur, training);
  return cur;
}

Tensor Sequential::Backward(const Tensor& grad_out) {
  Tensor cur = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    cur = (*it)->Backward(cur);
  return cur;
}

std::vector<Param*> Sequential::Params() {
  std::vector<Param*> out;
  for (auto& layer : layers_)
    for (Param* p : layer->Params()) out.push_back(p);
  return out;
}

std::size_t Sequential::ParamCount() {
  std::size_t n = 0;
  for (auto& layer : layers_) n += layer->ParamCount();
  return n;
}

double Sequential::ModelSizeKb(int bits_per_weight) {
  return static_cast<double>(ParamCount()) * bits_per_weight / 1000.0;
}

}  // namespace pegasus::nn
