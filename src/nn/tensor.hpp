// Minimal dense tensor for training the paper's models.
//
// Pegasus trains models at full precision off the switch (paper §4.4,
// "Pegasus first trains an initial model on the training dataset") and only
// the precomputed mapping tables reach the dataplane. This tensor library is
// the training substrate: row-major float storage, up to 3 logical
// dimensions (batch, channel, length), and the handful of BLAS-level
// operations the layers in layers.hpp need.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <random>
#include <span>
#include <string>
#include <vector>

namespace pegasus::nn {

/// Dense row-major float tensor. Rank 1..3.
///
/// Invariant: data_.size() == product of shape_. An empty shape denotes an
/// empty tensor (size 0), which is a valid moved-from/default state.
class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<std::size_t> shape);

  /// Tensor with explicit contents; `data.size()` must equal the shape
  /// product (throws std::invalid_argument otherwise).
  Tensor(std::vector<std::size_t> shape, std::vector<float> data);

  /// Convenience rank-1 constructor.
  static Tensor FromVector(std::vector<float> v);

  const std::vector<std::size_t>& shape() const noexcept { return shape_; }
  std::size_t rank() const noexcept { return shape_.size(); }
  std::size_t size() const noexcept { return data_.size(); }
  std::size_t dim(std::size_t i) const { return shape_.at(i); }

  std::span<float> data() noexcept { return data_; }
  std::span<const float> data() const noexcept { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  float& at(std::size_t i, std::size_t j) { return data_[i * stride0_ + j]; }
  float at(std::size_t i, std::size_t j) const {
    return data_[i * stride0_ + j];
  }
  float& at(std::size_t i, std::size_t j, std::size_t k) {
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }
  float at(std::size_t i, std::size_t j, std::size_t k) const {
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }

  /// Reinterpret with a new shape of identical total size (no copy).
  Tensor Reshaped(std::vector<std::size_t> shape) const;

  void Fill(float v);

  /// In-place element-wise accumulate: *this += other (same size required).
  void Add(const Tensor& other);

  /// In-place scale: *this *= s.
  void Scale(float s);

  /// Returns true if any element is NaN or infinite.
  bool HasNonFinite() const noexcept;

  std::string ShapeString() const;

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
  std::size_t stride0_ = 0;  // product of shape_[1..], cached for at(i,j)
};

/// C = A(MxK) * B(KxN). Shapes validated; throws std::invalid_argument.
Tensor MatMul(const Tensor& a, const Tensor& b);

/// C = A(MxK) * B^T where B is (NxK).
Tensor MatMulTransposedB(const Tensor& a, const Tensor& b);

/// C = A^T(KxM) * B(KxN) -> (MxN).
Tensor MatMulTransposedA(const Tensor& a, const Tensor& b);

/// Xavier/Glorot uniform initialization for a weight of shape [fan_in, fan_out].
void XavierInit(Tensor& w, std::size_t fan_in, std::size_t fan_out,
                std::mt19937_64& rng);

/// He (Kaiming) normal initialization, appropriate before ReLU.
void HeInit(Tensor& w, std::size_t fan_in, std::mt19937_64& rng);

}  // namespace pegasus::nn
