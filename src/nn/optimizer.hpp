// Optimizers for the training substrate: SGD with momentum and Adam.
#pragma once

#include <vector>

#include "nn/layers.hpp"

namespace pegasus::nn {

/// Base optimizer: binds to a parameter set once, then Step() applies the
/// accumulated gradients and ZeroGrad() clears them.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Param*> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void Step() = 0;

  void ZeroGrad() {
    for (Param* p : params_) p->grad.Fill(0.0f);
  }

 protected:
  std::vector<Param*> params_;
};

/// SGD with classical momentum and optional gradient clipping (by global
/// element magnitude; keeps RNN training stable).
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Param*> params, float lr, float momentum = 0.9f,
      float clip = 5.0f);
  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_, momentum_, clip_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Param*> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_, beta1_, beta2_, eps_;
  std::size_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

}  // namespace pegasus::nn
