// Loss functions: softmax cross-entropy for the classification models
// (MLP-B, RNN-B, CNN-*) and MSE/MAE for the AutoEncoder (paper §6.3 uses
// mean absolute error as the reconstruction / anomaly score).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"

namespace pegasus::nn {

/// Result of a loss evaluation: scalar loss plus dLoss/dLogits ready to feed
/// into Sequential::Backward.
struct LossResult {
  float loss = 0.0f;
  Tensor grad;
};

/// Numerically-stable softmax over the last dim of logits:[N,C].
Tensor Softmax(const Tensor& logits);

/// Mean softmax cross-entropy against integer labels. Gradient is
/// (softmax - onehot)/N.
LossResult SoftmaxCrossEntropy(const Tensor& logits,
                               const std::vector<std::int32_t>& labels);

/// Mean squared error against a target of identical shape.
LossResult MseLoss(const Tensor& pred, const Tensor& target);

/// Mean absolute error; the gradient uses sign(pred-target)/size.
LossResult MaeLoss(const Tensor& pred, const Tensor& target);

/// Per-sample mean absolute error over rows of pred/target:[N,F]; this is
/// the AutoEncoder's anomaly score on the dataplane.
std::vector<float> PerSampleMae(const Tensor& pred, const Tensor& target);

/// Argmax class per row of logits:[N,C].
std::vector<std::int32_t> ArgmaxRows(const Tensor& logits);

}  // namespace pegasus::nn
