#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pegasus::nn {

Tensor Softmax(const Tensor& logits) {
  if (logits.rank() != 2) {
    throw std::invalid_argument("Softmax: expected rank-2 logits");
  }
  const std::size_t n = logits.dim(0), c = logits.dim(1);
  Tensor out({n, c});
  for (std::size_t i = 0; i < n; ++i) {
    float mx = logits.at(i, 0);
    for (std::size_t j = 1; j < c; ++j) mx = std::max(mx, logits.at(i, j));
    float sum = 0.0f;
    for (std::size_t j = 0; j < c; ++j) {
      const float e = std::exp(logits.at(i, j) - mx);
      out.at(i, j) = e;
      sum += e;
    }
    for (std::size_t j = 0; j < c; ++j) out.at(i, j) /= sum;
  }
  return out;
}

LossResult SoftmaxCrossEntropy(const Tensor& logits,
                               const std::vector<std::int32_t>& labels) {
  const std::size_t n = logits.dim(0), c = logits.dim(1);
  if (labels.size() != n) {
    throw std::invalid_argument("SoftmaxCrossEntropy: label count mismatch");
  }
  Tensor probs = Softmax(logits);
  LossResult res;
  res.grad = probs;
  float loss = 0.0f;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto y = static_cast<std::size_t>(labels[i]);
    if (y >= c) {
      throw std::invalid_argument("SoftmaxCrossEntropy: label out of range");
    }
    loss -= std::log(std::max(probs.at(i, y), 1e-12f));
    res.grad.at(i, y) -= 1.0f;
  }
  res.grad.Scale(inv_n);
  res.loss = loss * inv_n;
  return res;
}

LossResult MseLoss(const Tensor& pred, const Tensor& target) {
  if (pred.size() != target.size()) {
    throw std::invalid_argument("MseLoss: size mismatch");
  }
  LossResult res;
  res.grad = Tensor(pred.shape());
  const float inv = 1.0f / static_cast<float>(pred.size());
  float loss = 0.0f;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const float d = pred[i] - target[i];
    loss += d * d;
    res.grad[i] = 2.0f * d * inv;
  }
  res.loss = loss * inv;
  return res;
}

LossResult MaeLoss(const Tensor& pred, const Tensor& target) {
  if (pred.size() != target.size()) {
    throw std::invalid_argument("MaeLoss: size mismatch");
  }
  LossResult res;
  res.grad = Tensor(pred.shape());
  const float inv = 1.0f / static_cast<float>(pred.size());
  float loss = 0.0f;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const float d = pred[i] - target[i];
    loss += std::abs(d);
    res.grad[i] = (d > 0.0f ? 1.0f : (d < 0.0f ? -1.0f : 0.0f)) * inv;
  }
  res.loss = loss * inv;
  return res;
}

std::vector<float> PerSampleMae(const Tensor& pred, const Tensor& target) {
  const std::size_t n = pred.dim(0), f = pred.dim(1);
  std::vector<float> out(n, 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    float acc = 0.0f;
    for (std::size_t j = 0; j < f; ++j)
      acc += std::abs(pred.at(i, j) - target.at(i, j));
    out[i] = acc / static_cast<float>(f);
  }
  return out;
}

std::vector<std::int32_t> ArgmaxRows(const Tensor& logits) {
  const std::size_t n = logits.dim(0), c = logits.dim(1);
  std::vector<std::int32_t> out(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t best = 0;
    for (std::size_t j = 1; j < c; ++j)
      if (logits.at(i, j) > logits.at(i, best)) best = j;
    out[i] = static_cast<std::int32_t>(best);
  }
  return out;
}

}  // namespace pegasus::nn
