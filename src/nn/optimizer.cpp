#include "nn/optimizer.hpp"

#include <algorithm>
#include <cmath>

namespace pegasus::nn {

Sgd::Sgd(std::vector<Param*> params, float lr, float momentum, float clip)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum), clip_(clip) {
  velocity_.reserve(params_.size());
  for (Param* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::Step() {
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    Param* p = params_[pi];
    Tensor& vel = velocity_[pi];
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      float g = std::clamp(p->grad[i], -clip_, clip_);
      vel[i] = momentum_ * vel[i] - lr_ * g;
      p->value[i] += vel[i];
    }
  }
}

Adam::Adam(std::vector<Param*> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    Param* p = params_[pi];
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      const float g = p->grad[i];
      m_[pi][i] = beta1_ * m_[pi][i] + (1 - beta1_) * g;
      v_[pi][i] = beta2_ * v_[pi][i] + (1 - beta2_) * g * g;
      const float mhat = m_[pi][i] / bc1;
      const float vhat = v_[pi][i] / bc2;
      p->value[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace pegasus::nn
