#include "nn/trainer.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace pegasus::nn {

Tensor GatherRows(const Tensor& x, const std::vector<std::size_t>& idx) {
  std::vector<std::size_t> shape = x.shape();
  shape[0] = idx.size();
  Tensor out(shape);
  const std::size_t row = x.size() / x.dim(0);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    std::copy_n(x.data().data() + idx[i] * row, row,
                out.data().data() + i * row);
  }
  return out;
}

namespace {

/// Shared epoch loop; `step` computes loss+grad for one batch and returns
/// the batch loss after running backward.
float RunEpochs(Sequential& model, std::size_t n, const TrainConfig& cfg,
                const std::function<float(const std::vector<std::size_t>&)>&
                    step_batch) {
  if (n == 0) throw std::invalid_argument("Train: empty dataset");
  std::mt19937_64 rng(cfg.seed);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  Adam opt(model.Params(), cfg.lr);
  float last_epoch_loss = 0.0f;
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng);
    float epoch_loss = 0.0f;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < n; start += cfg.batch_size) {
      const std::size_t end = std::min(n, start + cfg.batch_size);
      std::vector<std::size_t> idx(order.begin() + start, order.begin() + end);
      opt.ZeroGrad();
      const float loss = step_batch(idx);
      if (!std::isfinite(loss)) {
        throw std::runtime_error("Training diverged: non-finite loss");
      }
      opt.Step();
      epoch_loss += loss;
      ++batches;
    }
    last_epoch_loss = epoch_loss / static_cast<float>(batches);
    opt.set_lr(opt.lr() * cfg.lr_decay);
    if (cfg.on_epoch) cfg.on_epoch(epoch, last_epoch_loss);
  }
  return last_epoch_loss;
}

}  // namespace

float TrainClassifier(Sequential& model, const Tensor& x,
                      const std::vector<std::int32_t>& labels,
                      const TrainConfig& cfg) {
  if (x.dim(0) != labels.size()) {
    throw std::invalid_argument("TrainClassifier: label count mismatch");
  }
  return RunEpochs(model, x.dim(0), cfg,
                   [&](const std::vector<std::size_t>& idx) {
                     Tensor bx = GatherRows(x, idx);
                     std::vector<std::int32_t> by(idx.size());
                     for (std::size_t i = 0; i < idx.size(); ++i)
                       by[i] = labels[idx[i]];
                     Tensor logits = model.Forward(bx, /*training=*/true);
                     LossResult res = SoftmaxCrossEntropy(logits, by);
                     model.Backward(res.grad);
                     return res.loss;
                   });
}

float TrainAutoencoder(Sequential& model, const Tensor& x,
                       const Tensor& target, const TrainConfig& cfg) {
  if (x.dim(0) != target.dim(0)) {
    throw std::invalid_argument("TrainAutoencoder: row count mismatch");
  }
  return RunEpochs(model, x.dim(0), cfg,
                   [&](const std::vector<std::size_t>& idx) {
                     Tensor bx = GatherRows(x, idx);
                     Tensor bt = GatherRows(target, idx);
                     Tensor pred = model.Forward(bx, /*training=*/true);
                     LossResult res = MseLoss(pred, bt);
                     model.Backward(res.grad);
                     return res.loss;
                   });
}

Tensor Predict(Sequential& model, const Tensor& x, std::size_t batch_size) {
  const std::size_t n = x.dim(0);
  Tensor out;
  std::size_t out_cols = 0;
  for (std::size_t start = 0; start < n; start += batch_size) {
    const std::size_t end = std::min(n, start + batch_size);
    std::vector<std::size_t> idx(end - start);
    std::iota(idx.begin(), idx.end(), start);
    Tensor batch_out = model.Forward(GatherRows(x, idx), /*training=*/false);
    if (start == 0) {
      out_cols = batch_out.size() / batch_out.dim(0);
      out = Tensor({n, out_cols});
    }
    std::copy_n(batch_out.data().data(), batch_out.size(),
                out.data().data() + start * out_cols);
  }
  return out;
}

}  // namespace pegasus::nn
