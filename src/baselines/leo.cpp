#include "baselines/leo.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "dataplane/crc.hpp"

namespace pegasus::baselines {

namespace {

struct Work {
  std::vector<std::size_t> rows;
  int node_slot = 0;
  // cached best split
  bool best_valid = false;
  int best_feature = -1;
  std::uint32_t best_threshold = 0;
  double best_gain = 0.0;
  // leaf box for rule accounting
  std::vector<std::uint32_t> lo, hi;
};

double Gini(const std::vector<std::size_t>& counts, std::size_t total) {
  if (total == 0) return 0.0;
  double g = 1.0;
  for (std::size_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    g -= p * p;
  }
  return g;
}

}  // namespace

DecisionTree DecisionTree::Fit(std::span<const float> x,
                               const std::vector<std::int32_t>& labels,
                               std::size_t n, std::size_t dim,
                               std::size_t num_classes,
                               const LeoConfig& cfg) {
  if (n == 0 || x.size() != n * dim || labels.size() != n) {
    throw std::invalid_argument("DecisionTree::Fit: bad data");
  }
  const std::uint32_t domain_max =
      (std::uint32_t{1} << cfg.input_bits) - 1;
  std::vector<std::uint32_t> q(n * dim);
  for (std::size_t i = 0; i < n * dim; ++i) {
    q[i] = static_cast<std::uint32_t>(std::lround(
        std::clamp(x[i], 0.0f, static_cast<float>(domain_max))));
  }

  DecisionTree tree;
  tree.dim_ = dim;
  tree.input_bits_ = cfg.input_bits;
  tree.nodes_.push_back(Node{});

  auto find_best = [&](Work& w) {
    w.best_valid = false;
    w.best_gain = 0.0;
    const std::size_t rows = w.rows.size();
    if (rows < 2 * cfg.min_leaf_samples) return;
    std::vector<std::size_t> total_counts(num_classes, 0);
    for (std::size_t r : w.rows) {
      ++total_counts[static_cast<std::size_t>(labels[r])];
    }
    const double parent = Gini(total_counts, rows) *
                          static_cast<double>(rows);
    std::vector<std::size_t> order(w.rows);
    for (std::size_t f = 0; f < dim; ++f) {
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                  return q[a * dim + f] < q[b * dim + f];
                });
      std::vector<std::size_t> left_counts(num_classes, 0);
      for (std::size_t i = 0; i + 1 < rows; ++i) {
        ++left_counts[static_cast<std::size_t>(labels[order[i]])];
        const std::uint32_t cur = q[order[i] * dim + f];
        const std::uint32_t next = q[order[i + 1] * dim + f];
        if (cur == next) continue;
        const std::size_t ln = i + 1, rn = rows - ln;
        if (ln < cfg.min_leaf_samples || rn < cfg.min_leaf_samples) continue;
        std::vector<std::size_t> right_counts(num_classes);
        for (std::size_t c = 0; c < num_classes; ++c) {
          right_counts[c] = total_counts[c] - left_counts[c];
        }
        const double child = Gini(left_counts, ln) * static_cast<double>(ln) +
                             Gini(right_counts, rn) * static_cast<double>(rn);
        const double gain = parent - child;
        if (gain > w.best_gain + 1e-9) {
          w.best_valid = true;
          w.best_gain = gain;
          w.best_feature = static_cast<int>(f);
          w.best_threshold = cur;
        }
      }
    }
  };

  std::vector<Work> actives;
  {
    Work root;
    root.rows.resize(n);
    std::iota(root.rows.begin(), root.rows.end(), 0);
    root.node_slot = 0;
    root.lo.assign(dim, 0);
    root.hi.assign(dim, domain_max);
    find_best(root);
    actives.push_back(std::move(root));
  }

  // Best-first growth: each split adds two nodes.
  while (tree.nodes_.size() + 2 <= cfg.max_nodes) {
    std::size_t best_i = actives.size();
    double best_gain = 0.0;
    for (std::size_t i = 0; i < actives.size(); ++i) {
      if (actives[i].best_valid && actives[i].best_gain > best_gain) {
        best_gain = actives[i].best_gain;
        best_i = i;
      }
    }
    if (best_i == actives.size()) break;
    Work parent = std::move(actives[best_i]);
    actives.erase(actives.begin() + static_cast<std::ptrdiff_t>(best_i));

    const auto f = static_cast<std::size_t>(parent.best_feature);
    const std::uint32_t t = parent.best_threshold;
    Work left, right;
    left.lo = parent.lo;
    left.hi = parent.hi;
    right.lo = parent.lo;
    right.hi = parent.hi;
    left.hi[f] = t;
    right.lo[f] = t + 1;
    for (std::size_t r : parent.rows) {
      (q[r * dim + f] <= t ? left.rows : right.rows).push_back(r);
    }
    const int ls = static_cast<int>(tree.nodes_.size());
    tree.nodes_.push_back(Node{});
    const int rs = static_cast<int>(tree.nodes_.size());
    tree.nodes_.push_back(Node{});
    Node& pn = tree.nodes_[static_cast<std::size_t>(parent.node_slot)];
    pn.feature = parent.best_feature;
    pn.threshold = t;
    pn.left = ls;
    pn.right = rs;
    left.node_slot = ls;
    right.node_slot = rs;
    find_best(left);
    find_best(right);
    actives.push_back(std::move(left));
    actives.push_back(std::move(right));
  }

  for (const Work& w : actives) {
    std::vector<std::size_t> counts(num_classes, 0);
    for (std::size_t r : w.rows) {
      ++counts[static_cast<std::size_t>(labels[r])];
    }
    tree.nodes_[static_cast<std::size_t>(w.node_slot)].leaf_class =
        static_cast<std::int32_t>(std::distance(
            counts.begin(), std::max_element(counts.begin(), counts.end())));
  }
  return tree;
}

std::int32_t DecisionTree::Predict(std::span<const float> x) const {
  const std::uint32_t domain_max =
      (std::uint32_t{1} << input_bits_) - 1;
  int node = 0;
  while (true) {
    const Node& nd = nodes_[static_cast<std::size_t>(node)];
    if (nd.leaf_class >= 0) return nd.leaf_class;
    const float v = std::clamp(x[static_cast<std::size_t>(nd.feature)], 0.0f,
                               static_cast<float>(domain_max));
    node = static_cast<std::uint32_t>(std::lround(v)) <= nd.threshold
               ? nd.left
               : nd.right;
  }
}

std::vector<std::int32_t> DecisionTree::PredictBatch(std::span<const float> x,
                                                     std::size_t n) const {
  std::vector<std::int32_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = Predict(x.subspan(i * dim_, dim_));
  }
  return out;
}

std::size_t DecisionTree::NumLeaves() const {
  std::size_t leaves = 0;
  for (const Node& nd : nodes_) {
    if (nd.leaf_class >= 0) ++leaves;
  }
  return leaves;
}

std::size_t DecisionTree::Depth() const {
  struct Frame {
    int node;
    std::size_t depth;
  };
  std::vector<Frame> stack{{0, 0}};
  std::size_t max_depth = 0;
  while (!stack.empty()) {
    const Frame fr = stack.back();
    stack.pop_back();
    const Node& nd = nodes_[static_cast<std::size_t>(fr.node)];
    if (nd.leaf_class >= 0) {
      max_depth = std::max(max_depth, fr.depth);
      continue;
    }
    stack.push_back({nd.left, fr.depth + 1});
    stack.push_back({nd.right, fr.depth + 1});
  }
  return max_depth;
}

dataplane::ResourceReport DecisionTree::Footprint(
    const dataplane::SwitchModel& sw) const {
  // Re-derive leaf boxes by walking the tree, then expand with CRC exactly
  // as the switch lowering would.
  const std::uint32_t domain_max =
      (std::uint32_t{1} << input_bits_) - 1;
  struct Frame {
    int node;
    std::vector<std::uint32_t> lo, hi;
  };
  std::vector<Frame> stack;
  stack.push_back({0, std::vector<std::uint32_t>(dim_, 0),
                   std::vector<std::uint32_t>(dim_, domain_max)});
  std::size_t entries = 0;
  while (!stack.empty()) {
    Frame fr = std::move(stack.back());
    stack.pop_back();
    const Node& nd = nodes_[static_cast<std::size_t>(fr.node)];
    if (nd.leaf_class >= 0) {
      std::size_t leaf_entries = 1;
      for (std::size_t d = 0; d < dim_ && leaf_entries <= 4096; ++d) {
        leaf_entries *=
            dataplane::RangeToTernary(fr.lo[d], fr.hi[d], input_bits_).size();
      }
      // Like the Pegasus lowering, a compiler would fall back to native
      // range matching (DirtCAM: 2x the per-bit cost of a ternary entry,
      // i.e. equivalent to 2 ternary entries) when the cross-product
      // explodes.
      entries += std::min<std::size_t>(leaf_entries, 2);
      continue;
    }
    Frame left{nd.left, fr.lo, fr.hi};
    left.hi[static_cast<std::size_t>(nd.feature)] = nd.threshold;
    Frame right{nd.right, std::move(fr.lo), std::move(fr.hi)};
    right.lo[static_cast<std::size_t>(nd.feature)] = nd.threshold + 1;
    stack.push_back(std::move(left));
    stack.push_back(std::move(right));
  }
  dataplane::ResourceReport rep;
  const std::size_t key_bits = dim_ * static_cast<std::size_t>(input_bits_);
  rep.tcam_bits = entries * 2 * key_bits;
  rep.sram_bits = entries * 8;  // class-id action data
  rep.stages_used = 1;
  rep.total_action_bus_bits = 8;
  rep.max_stage_action_bus_bits = 8;
  // Leo keeps the same flow statistics MLP-B uses: min/max length (2x8b),
  // min/max IPD (2x8b), previous timestamp (16b), 5-packet history would
  // exceed its budget so Leo stores a compacted 32b digest: 80 bits total.
  rep.stateful_bits_per_flow = 80;
  (void)sw;
  return rep;
}

}  // namespace pegasus::baselines
