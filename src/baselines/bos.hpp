// BoS baseline (Yan et al., NSDI'24 "Brain-on-Switch"): a windowed binary
// RNN executed by computation bypassing — every time step is one exact
// lookup from (binary input bits, binary hidden bits) to the next hidden
// bits, so internal arithmetic is full precision but activations crossing
// table boundaries are binary.
//
// The scaling law the paper criticizes is explicit here: a step table has
// 2^(input_bits + hidden_bits) entries, which is why BoS caps its per-step
// input at a few bits (18-bit total input scale in Table 5) and why a
// 21-bit input cannot fit Tofino 2 (§2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dataplane/resources.hpp"

namespace pegasus::baselines {

struct BosConfig {
  /// Time steps processed on the switch (last `steps` packets of a window).
  std::size_t steps = 6;
  /// Binary input bits per step: 2 from packet length + 1 from IPD.
  std::size_t bits_per_step = 3;
  std::size_t hidden = 16;
  std::size_t epochs = 40;
  std::size_t batch = 64;
  float lr = 0.01f;
  std::uint64_t seed = 13;
};

class BosRnn {
 public:
  /// Trains on (len, IPD) sequence windows (dim = 2 * window, window >=
  /// steps; the last `steps` packets are used).
  static BosRnn Train(std::span<const float> x,
                      const std::vector<std::int32_t>& labels, std::size_t n,
                      std::size_t dim, std::size_t num_classes,
                      const BosConfig& cfg);

  std::int32_t Predict(std::span<const float> features) const;
  std::vector<std::int32_t> PredictBatch(std::span<const float> x,
                                         std::size_t n) const;

  /// Total binary input bits consumed per inference (Table 5's "Input
  /// Scale" column; 6 steps x 3 bits = 18).
  std::size_t InputScaleBits() const { return cfg_.steps * cfg_.bits_per_step; }

  /// Full-precision parameters stored behind the mapping tables.
  double ModelSizeKb() const;

  /// Exact-match step tables: 2^(bits_per_step + hidden) entries each.
  std::size_t TableEntriesPerStep() const {
    return std::size_t{1} << (cfg_.bits_per_step + cfg_.hidden);
  }

  /// Switch footprint of the step tables (SRAM-resident exact matches, no
  /// TCAM — matching Table 6's BoS row).
  dataplane::ResourceReport Footprint(
      const dataplane::SwitchModel& sw) const;

 private:
  BosConfig cfg_;
  std::size_t window_ = 8;
  std::size_t num_classes_ = 0;
  std::vector<float> wx_;  // [bits_per_step x hidden]
  std::vector<float> wh_;  // [hidden x hidden]
  std::vector<float> b_;   // [hidden]
  std::vector<float> v_;   // [hidden x classes] readout
  std::vector<float> c_;   // [classes]

  std::vector<float> StepBits(std::span<const float> features,
                              std::size_t step) const;
};

}  // namespace pegasus::baselines
