// N3IC baseline (Siracusano et al., NSDI'22): a fully binarized MLP whose
// MatMuls run as XNOR + population count on the NIC/switch dataplane.
//
// Training uses the standard straight-through estimator (float shadow
// weights, sign() in the forward pass, hard-tanh gradient gate); inference
// runs bit-packed XNOR/popcount — the exact dataplane arithmetic — and a
// test asserts it matches the float-sign forward pass.
//
// The paper evaluates N3IC in software because its largest configuration
// does not fit the switch (§7.1); we do the same, so no Footprint() here.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace pegasus::baselines {

struct N3icConfig {
  /// Binary input width: each 8-bit feature contributes 8 raw bits.
  std::size_t input_bits = 128;
  std::vector<std::size_t> hidden = {128, 64};
  std::size_t epochs = 60;
  std::size_t batch = 64;
  /// Binary nets need aggressive rates: sign() only flips when the shadow
  /// weight crosses zero.
  float lr = 0.3f;
  float momentum = 0.9f;
  std::uint64_t seed = 11;
};

class BinaryMlp {
 public:
  /// Trains on quantized 8-bit features (row-major, `dim` features per
  /// sample; input_bits must equal dim*8).
  static BinaryMlp Train(std::span<const float> x,
                         const std::vector<std::int32_t>& labels,
                         std::size_t n, std::size_t dim,
                         std::size_t num_classes, const N3icConfig& cfg);

  std::int32_t Predict(std::span<const float> features) const;
  std::vector<std::int32_t> PredictBatch(std::span<const float> x,
                                         std::size_t n) const;

  /// Integer XNOR+popcount logits, bit-for-bit what the dataplane computes.
  std::vector<int> PopcountLogits(std::span<const float> features) const;

  /// Binary weights: 1 bit each.
  double ModelSizeKb() const;

  std::size_t num_classes() const { return num_classes_; }

 private:
  struct BinLayer {
    std::size_t in = 0, out = 0;
    std::vector<float> w;  // float shadow weights, sign() at use
  };
  std::vector<BinLayer> layers_;
  std::size_t dim_ = 0;
  std::size_t num_classes_ = 0;

  std::vector<float> Binarize(std::span<const float> features) const;
};

}  // namespace pegasus::baselines
