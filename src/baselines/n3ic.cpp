#include "baselines/n3ic.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace pegasus::baselines {

namespace {

float Sign(float v) { return v >= 0.0f ? 1.0f : -1.0f; }

}  // namespace

std::vector<float> BinaryMlp::Binarize(std::span<const float> features) const {
  std::vector<float> bits;
  bits.reserve(dim_ * 8);
  for (std::size_t f = 0; f < dim_; ++f) {
    const auto v = static_cast<std::uint32_t>(std::lround(
        std::clamp(features[f], 0.0f, 255.0f)));
    for (int b = 7; b >= 0; --b) {
      bits.push_back((v >> b) & 1u ? 1.0f : -1.0f);
    }
  }
  return bits;
}

BinaryMlp BinaryMlp::Train(std::span<const float> x,
                           const std::vector<std::int32_t>& labels,
                           std::size_t n, std::size_t dim,
                           std::size_t num_classes, const N3icConfig& cfg) {
  if (n == 0 || x.size() != n * dim || labels.size() != n) {
    throw std::invalid_argument("BinaryMlp::Train: bad data");
  }
  if (cfg.input_bits != dim * 8) {
    throw std::invalid_argument("BinaryMlp::Train: input_bits != dim*8");
  }
  BinaryMlp model;
  model.dim_ = dim;
  model.num_classes_ = num_classes;

  std::mt19937_64 rng(cfg.seed);
  std::vector<std::size_t> sizes{cfg.input_bits};
  sizes.insert(sizes.end(), cfg.hidden.begin(), cfg.hidden.end());
  sizes.push_back(num_classes);
  for (std::size_t li = 0; li + 1 < sizes.size(); ++li) {
    BinLayer layer;
    layer.in = sizes[li];
    layer.out = sizes[li + 1];
    layer.w.resize(layer.in * layer.out);
    std::uniform_real_distribution<float> dist(-0.5f, 0.5f);
    for (float& w : layer.w) w = dist(rng);
    model.layers_.push_back(std::move(layer));
  }

  // Pre-binarize all inputs.
  std::vector<std::vector<float>> xb(n);
  for (std::size_t i = 0; i < n; ++i) {
    xb[i] = model.Binarize(x.subspan(i * dim, dim));
  }

  const std::size_t num_layers = model.layers_.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<std::vector<float>> velocity(num_layers);
  for (std::size_t li = 0; li < num_layers; ++li) {
    velocity[li].assign(model.layers_[li].w.size(), 0.0f);
  }

  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng);
    for (std::size_t start = 0; start < n; start += cfg.batch) {
      const std::size_t end = std::min(n, start + cfg.batch);
      std::vector<std::vector<float>> grads(num_layers);
      for (std::size_t li = 0; li < num_layers; ++li) {
        grads[li].assign(model.layers_[li].w.size(), 0.0f);
      }
      for (std::size_t bi = start; bi < end; ++bi) {
        const std::size_t smp = order[bi];
        // forward, caching activations and pre-activations
        std::vector<std::vector<float>> act(num_layers + 1);
        std::vector<std::vector<float>> pre(num_layers);
        act[0] = xb[smp];
        for (std::size_t li = 0; li < num_layers; ++li) {
          const BinLayer& L = model.layers_[li];
          const float scale = 1.0f / std::sqrt(static_cast<float>(L.in));
          pre[li].assign(L.out, 0.0f);
          for (std::size_t i = 0; i < L.in; ++i) {
            const float a = act[li][i];
            for (std::size_t j = 0; j < L.out; ++j) {
              pre[li][j] += a * Sign(L.w[i * L.out + j]);
            }
          }
          for (float& v : pre[li]) v *= scale;
          act[li + 1].resize(L.out);
          if (li + 1 == num_layers) {
            act[li + 1] = pre[li];  // logits stay real
          } else {
            for (std::size_t j = 0; j < L.out; ++j) {
              act[li + 1][j] = Sign(pre[li][j]);
            }
          }
        }
        // softmax CE gradient
        std::vector<float>& logits = act[num_layers];
        const float mx = *std::max_element(logits.begin(), logits.end());
        float sum = 0.0f;
        std::vector<float> dlogits(num_classes);
        for (std::size_t c = 0; c < num_classes; ++c) {
          dlogits[c] = std::exp(logits[c] - mx);
          sum += dlogits[c];
        }
        for (std::size_t c = 0; c < num_classes; ++c) dlogits[c] /= sum;
        dlogits[static_cast<std::size_t>(labels[smp])] -= 1.0f;

        // backward with STE
        std::vector<float> dact = dlogits;
        for (std::size_t li = num_layers; li-- > 0;) {
          const BinLayer& L = model.layers_[li];
          const float scale = 1.0f / std::sqrt(static_cast<float>(L.in));
          // gradient wrt pre-activation
          std::vector<float> dpre(L.out);
          if (li + 1 == num_layers) {
            dpre = dact;
          } else {
            for (std::size_t j = 0; j < L.out; ++j) {
              // hard-tanh STE gate on sign()
              dpre[j] = std::abs(pre[li][j]) <= 1.0f ? dact[j] : 0.0f;
            }
          }
          std::vector<float> dinput(L.in, 0.0f);
          for (std::size_t i = 0; i < L.in; ++i) {
            const float a = act[li][i];
            for (std::size_t j = 0; j < L.out; ++j) {
              const float g = dpre[j] * scale;
              grads[li][i * L.out + j] += g * a;  // STE through sign(w)
              dinput[i] += g * Sign(L.w[i * L.out + j]);
            }
          }
          dact = std::move(dinput);
        }
      }
      // SGD + momentum step, then clip shadow weights to [-1, 1].
      const float lr = cfg.lr / static_cast<float>(end - start);
      for (std::size_t li = 0; li < num_layers; ++li) {
        auto& w = model.layers_[li].w;
        auto& vel = velocity[li];
        for (std::size_t k = 0; k < w.size(); ++k) {
          vel[k] = cfg.momentum * vel[k] - lr * grads[li][k];
          w[k] = std::clamp(w[k] + vel[k], -1.0f, 1.0f);
        }
      }
    }
  }
  return model;
}

std::vector<int> BinaryMlp::PopcountLogits(
    std::span<const float> features) const {
  // Bit-packed XNOR+popcount — the dataplane arithmetic. For a binary dot
  // product over {-1,+1}: dot = 2*popcount(~(a^w)) - n.
  std::vector<float> act = Binarize(features);
  std::vector<int> cur;
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const BinLayer& L = layers_[li];
    const std::size_t words = (L.in + 63) / 64;
    std::vector<std::uint64_t> a_bits(words, 0);
    for (std::size_t i = 0; i < L.in; ++i) {
      if (act[i] > 0.0f) a_bits[i / 64] |= (1ull << (i % 64));
    }
    cur.assign(L.out, 0);
    for (std::size_t j = 0; j < L.out; ++j) {
      std::vector<std::uint64_t> w_bits(words, 0);
      for (std::size_t i = 0; i < L.in; ++i) {
        if (L.w[i * L.out + j] >= 0.0f) w_bits[i / 64] |= (1ull << (i % 64));
      }
      int matches = 0;
      for (std::size_t wd = 0; wd < words; ++wd) {
        std::uint64_t xnor = ~(a_bits[wd] ^ w_bits[wd]);
        if (wd + 1 == words && L.in % 64 != 0) {
          xnor &= (1ull << (L.in % 64)) - 1;  // mask tail bits
        }
        matches += std::popcount(xnor);
      }
      cur[j] = 2 * matches - static_cast<int>(L.in);
    }
    if (li + 1 < layers_.size()) {
      act.resize(L.out);
      for (std::size_t j = 0; j < L.out; ++j) {
        act[j] = cur[j] >= 0 ? 1.0f : -1.0f;
      }
    }
  }
  return cur;
}

std::int32_t BinaryMlp::Predict(std::span<const float> features) const {
  const std::vector<int> logits = PopcountLogits(features);
  return static_cast<std::int32_t>(std::distance(
      logits.begin(), std::max_element(logits.begin(), logits.end())));
}

std::vector<std::int32_t> BinaryMlp::PredictBatch(std::span<const float> x,
                                                  std::size_t n) const {
  std::vector<std::int32_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = Predict(x.subspan(i * dim_, dim_));
  }
  return out;
}

double BinaryMlp::ModelSizeKb() const {
  std::size_t bits = 0;
  for (const BinLayer& L : layers_) bits += L.w.size();
  return static_cast<double>(bits) / 1000.0;
}

}  // namespace pegasus::baselines
