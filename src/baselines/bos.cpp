#include "baselines/bos.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <stdexcept>

namespace pegasus::baselines {

namespace {
float Sign(float v) { return v >= 0.0f ? 1.0f : -1.0f; }
}  // namespace

std::vector<float> BosRnn::StepBits(std::span<const float> features,
                                    std::size_t step) const {
  // Use the last cfg_.steps packets of the window. Per packet: the top two
  // bits of the quantized length and the top bit of the quantized IPD —
  // BoS's aggressive input binarization.
  const std::size_t pkt = window_ - cfg_.steps + step;
  const auto len = static_cast<std::uint32_t>(std::lround(
      std::clamp(features[pkt * 2], 0.0f, 255.0f)));
  const auto ipd = static_cast<std::uint32_t>(std::lround(
      std::clamp(features[pkt * 2 + 1], 0.0f, 255.0f)));
  std::vector<float> bits(cfg_.bits_per_step, -1.0f);
  bits[0] = (len & 0x80u) ? 1.0f : -1.0f;
  if (cfg_.bits_per_step > 1) bits[1] = (len & 0x40u) ? 1.0f : -1.0f;
  if (cfg_.bits_per_step > 2) bits[2] = (ipd & 0x80u) ? 1.0f : -1.0f;
  return bits;
}

BosRnn BosRnn::Train(std::span<const float> x,
                     const std::vector<std::int32_t>& labels, std::size_t n,
                     std::size_t dim, std::size_t num_classes,
                     const BosConfig& cfg) {
  if (n == 0 || x.size() != n * dim || labels.size() != n) {
    throw std::invalid_argument("BosRnn::Train: bad data");
  }
  if (dim % 2 != 0 || dim / 2 < cfg.steps) {
    throw std::invalid_argument("BosRnn::Train: window too small");
  }
  BosRnn m;
  m.cfg_ = cfg;
  m.window_ = dim / 2;
  m.num_classes_ = num_classes;

  std::mt19937_64 rng(cfg.seed);
  std::uniform_real_distribution<float> dist(-0.5f, 0.5f);
  const std::size_t ib = cfg.bits_per_step, h = cfg.hidden;
  m.wx_.resize(ib * h);
  m.wh_.resize(h * h);
  m.b_.assign(h, 0.0f);
  m.v_.resize(h * num_classes);
  m.c_.assign(num_classes, 0.0f);
  for (float& w : m.wx_) w = dist(rng);
  for (float& w : m.wh_) w = dist(rng) * 0.3f;
  for (float& w : m.v_) w = dist(rng);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  const float scale = 1.0f / std::sqrt(static_cast<float>(ib + h));

  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng);
    for (std::size_t start = 0; start < n; start += cfg.batch) {
      const std::size_t end = std::min(n, start + cfg.batch);
      std::vector<float> gwx(m.wx_.size(), 0.0f), gwh(m.wh_.size(), 0.0f),
          gb(h, 0.0f), gv(m.v_.size(), 0.0f), gc(num_classes, 0.0f);
      for (std::size_t bi = start; bi < end; ++bi) {
        const std::size_t smp = order[bi];
        const auto feats = x.subspan(smp * dim, dim);
        // forward (binary hidden via STE)
        std::vector<std::vector<float>> xs(cfg.steps), pre(cfg.steps),
            hs(cfg.steps + 1);
        hs[0].assign(h, -1.0f);
        for (std::size_t t = 0; t < cfg.steps; ++t) {
          xs[t] = m.StepBits(feats, t);
          pre[t].assign(h, 0.0f);
          for (std::size_t j = 0; j < h; ++j) {
            float acc = m.b_[j];
            for (std::size_t i = 0; i < ib; ++i) {
              acc += xs[t][i] * m.wx_[i * h + j];
            }
            for (std::size_t k = 0; k < h; ++k) {
              acc += hs[t][k] * m.wh_[k * h + j];
            }
            pre[t][j] = acc * scale;
          }
          hs[t + 1].resize(h);
          for (std::size_t j = 0; j < h; ++j) {
            hs[t + 1][j] = Sign(pre[t][j]);
          }
        }
        // readout + softmax CE
        std::vector<float> logits(num_classes);
        for (std::size_t c = 0; c < num_classes; ++c) {
          float acc = m.c_[c];
          for (std::size_t j = 0; j < h; ++j) {
            acc += hs[cfg.steps][j] * m.v_[j * num_classes + c];
          }
          logits[c] = acc;
        }
        const float mx = *std::max_element(logits.begin(), logits.end());
        float sum = 0.0f;
        std::vector<float> dl(num_classes);
        for (std::size_t c = 0; c < num_classes; ++c) {
          dl[c] = std::exp(logits[c] - mx);
          sum += dl[c];
        }
        for (std::size_t c = 0; c < num_classes; ++c) dl[c] /= sum;
        dl[static_cast<std::size_t>(labels[smp])] -= 1.0f;

        // backward through readout
        std::vector<float> dh(h, 0.0f);
        for (std::size_t c = 0; c < num_classes; ++c) {
          gc[c] += dl[c];
          for (std::size_t j = 0; j < h; ++j) {
            gv[j * num_classes + c] += dl[c] * hs[cfg.steps][j];
            dh[j] += dl[c] * m.v_[j * num_classes + c];
          }
        }
        // BPTT with STE gates
        for (std::size_t t = cfg.steps; t-- > 0;) {
          std::vector<float> dpre(h);
          for (std::size_t j = 0; j < h; ++j) {
            dpre[j] = std::abs(pre[t][j]) <= 1.0f ? dh[j] * scale : 0.0f;
          }
          std::vector<float> dh_prev(h, 0.0f);
          for (std::size_t j = 0; j < h; ++j) {
            const float g = dpre[j];
            if (g == 0.0f) continue;
            gb[j] += g;
            for (std::size_t i = 0; i < ib; ++i) {
              gwx[i * h + j] += g * xs[t][i];
            }
            for (std::size_t k = 0; k < h; ++k) {
              gwh[k * h + j] += g * hs[t][k];
              dh_prev[k] += g * m.wh_[k * h + j];
            }
          }
          dh = std::move(dh_prev);
        }
      }
      const float lr = cfg.lr / static_cast<float>(end - start);
      auto step = [lr](std::vector<float>& w, const std::vector<float>& g) {
        for (std::size_t i = 0; i < w.size(); ++i) {
          w[i] = std::clamp(w[i] - lr * g[i], -2.0f, 2.0f);
        }
      };
      step(m.wx_, gwx);
      step(m.wh_, gwh);
      step(m.b_, gb);
      step(m.v_, gv);
      step(m.c_, gc);
    }
  }
  return m;
}

std::int32_t BosRnn::Predict(std::span<const float> features) const {
  const std::size_t ib = cfg_.bits_per_step, h = cfg_.hidden;
  const float scale = 1.0f / std::sqrt(static_cast<float>(ib + h));
  std::vector<float> hidden(h, -1.0f);
  for (std::size_t t = 0; t < cfg_.steps; ++t) {
    const std::vector<float> bits = StepBits(features, t);
    std::vector<float> next(h);
    for (std::size_t j = 0; j < h; ++j) {
      float acc = b_[j];
      for (std::size_t i = 0; i < ib; ++i) acc += bits[i] * wx_[i * h + j];
      for (std::size_t k = 0; k < h; ++k) acc += hidden[k] * wh_[k * h + j];
      next[j] = Sign(acc * scale);
    }
    hidden = std::move(next);
  }
  std::size_t best = 0;
  float best_score = -1e30f;
  for (std::size_t c = 0; c < num_classes_; ++c) {
    float acc = c_[c];
    for (std::size_t j = 0; j < h; ++j) acc += hidden[j] * v_[j * num_classes_ + c];
    if (acc > best_score) {
      best_score = acc;
      best = c;
    }
  }
  return static_cast<std::int32_t>(best);
}

std::vector<std::int32_t> BosRnn::PredictBatch(std::span<const float> x,
                                               std::size_t n) const {
  const std::size_t dim = window_ * 2;
  std::vector<std::int32_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = Predict(x.subspan(i * dim, dim));
  }
  return out;
}

double BosRnn::ModelSizeKb() const {
  const std::size_t params =
      wx_.size() + wh_.size() + b_.size() + v_.size() + c_.size();
  return static_cast<double>(params) * 32.0 / 1000.0;
}

dataplane::ResourceReport BosRnn::Footprint(
    const dataplane::SwitchModel& sw) const {
  dataplane::ResourceReport rep;
  const std::size_t key_bits = cfg_.bits_per_step + cfg_.hidden;
  const std::size_t entries = TableEntriesPerStep();
  // Exact-match step tables (SRAM), one per time step; the final readout
  // table maps the last hidden state to a class id.
  rep.sram_bits = cfg_.steps * entries * (key_bits + cfg_.hidden) +
                  (std::size_t{1} << cfg_.hidden) * 8;
  rep.tcam_bits = 0;
  rep.stages_used = cfg_.steps + 1;
  rep.total_action_bus_bits = (cfg_.steps + 1) * cfg_.hidden;
  rep.max_stage_action_bus_bits = cfg_.hidden;
  // BoS per-flow state: stored binary step inputs for the window plus the
  // previous-packet timestamp: 6 steps x 3 bits (rounded to bytes) + 16b ts
  // + flow bookkeeping = 72 bits (Table 6).
  rep.stateful_bits_per_flow = 72;
  (void)sw;
  return rep;
}

}  // namespace pegasus::baselines
