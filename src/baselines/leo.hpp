// Leo baseline (Jafri et al., NSDI'24): an online decision-tree classifier
// lowered to range-match MATs. We implement CART with Gini impurity and
// best-first growth capped at a node budget (the paper's accuracy config
// uses Leo's largest published model; the Table 6 resource config uses
// 1024 nodes).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dataplane/resources.hpp"

namespace pegasus::baselines {

struct LeoConfig {
  std::size_t max_nodes = 1024;  // internal + leaf nodes
  std::size_t min_leaf_samples = 4;
  int input_bits = 8;
};

class DecisionTree {
 public:
  /// Fits on row-major quantized features (values in [0, 2^input_bits)).
  static DecisionTree Fit(std::span<const float> x,
                          const std::vector<std::int32_t>& labels,
                          std::size_t n, std::size_t dim,
                          std::size_t num_classes, const LeoConfig& cfg);

  std::int32_t Predict(std::span<const float> x) const;
  std::vector<std::int32_t> PredictBatch(std::span<const float> x,
                                         std::size_t n) const;

  std::size_t NumNodes() const { return nodes_.size(); }
  std::size_t NumLeaves() const;
  std::size_t Depth() const;

  /// MAT footprint: each leaf is a hyperrectangle expanded into ternary
  /// rules (same CRC path as Pegasus fuzzy tables); the action data is just
  /// a class id.
  dataplane::ResourceReport Footprint(
      const dataplane::SwitchModel& sw) const;

 private:
  struct Node {
    int feature = -1;
    std::uint32_t threshold = 0;
    int left = -1, right = -1;
    std::int32_t leaf_class = -1;
  };
  std::vector<Node> nodes_;
  std::size_t dim_ = 0;
  int input_bits_ = 8;
};

}  // namespace pegasus::baselines
