#include "runtime/affinity.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#include <unistd.h>
#endif

namespace pegasus::runtime {

const char* CpuPinPolicyName(CpuPinPolicy p) {
  switch (p) {
    case CpuPinPolicy::kNone:
      return "none";
    case CpuPinPolicy::kCompact:
      return "compact";
    case CpuPinPolicy::kScatter:
      return "scatter";
    case CpuPinPolicy::kExplicit:
      return "explicit";
  }
  return "unknown";
}

int OnlineCpuCount() {
#if defined(__linux__)
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  if (n > 0) return static_cast<int>(n);
#endif
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

int NumaNodeOfCpu(int cpu) {
  if (cpu < 0) return -1;
#if defined(__linux__)
  // /sys/devices/system/cpu/cpuN/ contains a nodeM symlink on NUMA
  // systems. Probe a bounded range of node ids; single-node and
  // non-NUMA-aware kernels simply report node 0 or nothing.
  for (int node = 0; node < 64; ++node) {
    const std::string path = "/sys/devices/system/cpu/cpu" +
                             std::to_string(cpu) + "/node" +
                             std::to_string(node);
    std::ifstream probe(path + "/cpulist");
    if (probe.good()) return node;
  }
#endif
  return -1;
}

std::string PinPlan::Describe() const {
  std::string s = "w:";
  for (std::size_t i = 0; i < worker_cpu.size(); ++i) {
    if (i) s += ',';
    s += std::to_string(worker_cpu[i]);
  }
  s += " i:";
  for (std::size_t i = 0; i < ingest_cpu.size(); ++i) {
    if (i) s += ',';
    s += std::to_string(ingest_cpu[i]);
  }
  return s;
}

namespace {

void ValidateCpuList(const std::vector<int>& cpus, int ncpu,
                     const char* what) {
  for (int c : cpus) {
    if (c < 0 || c >= ncpu) {
      throw std::invalid_argument(std::string("MakePinPlan: ") + what +
                                  " cpu id " + std::to_string(c) +
                                  " out of range [0, " + std::to_string(ncpu) +
                                  ")");
    }
  }
}

}  // namespace

PinPlan MakePinPlan(CpuPinPolicy policy, std::size_t num_workers,
                    std::size_t num_ingest,
                    const std::vector<int>& worker_cpus,
                    const std::vector<int>& ingest_cpus) {
  PinPlan plan;
  plan.worker_cpu.assign(num_workers, -1);
  plan.ingest_cpu.assign(num_ingest, -1);
  const int ncpu = OnlineCpuCount();

  switch (policy) {
    case CpuPinPolicy::kNone:
      break;

    case CpuPinPolicy::kCompact:
      // Workers first on consecutive CPUs, then ingest right after them —
      // a worker and the producer feeding it land as close as the box
      // allows (same core complex / socket), which keeps the SPSC ring's
      // cache lines bouncing the shortest possible distance.
      for (std::size_t i = 0; i < num_workers; ++i) {
        plan.worker_cpu[i] = static_cast<int>(i % static_cast<std::size_t>(ncpu));
      }
      for (std::size_t t = 0; t < num_ingest; ++t) {
        plan.ingest_cpu[t] =
            static_cast<int>((num_workers + t) % static_cast<std::size_t>(ncpu));
      }
      break;

    case CpuPinPolicy::kScatter: {
      // Spread the thread set across the CPU range with a uniform stride so
      // each thread gets as much private cache / memory bandwidth as the
      // topology offers.
      const std::size_t total = num_workers + num_ingest;
      const std::size_t stride = std::max<std::size_t>(
          1, static_cast<std::size_t>(ncpu) / std::max<std::size_t>(1, total));
      std::size_t k = 0;
      for (std::size_t i = 0; i < num_workers; ++i, ++k) {
        plan.worker_cpu[i] =
            static_cast<int>((k * stride) % static_cast<std::size_t>(ncpu));
      }
      for (std::size_t t = 0; t < num_ingest; ++t, ++k) {
        plan.ingest_cpu[t] =
            static_cast<int>((k * stride) % static_cast<std::size_t>(ncpu));
      }
      break;
    }

    case CpuPinPolicy::kExplicit:
      if (worker_cpus.empty() && num_workers > 0) {
        throw std::invalid_argument(
            "MakePinPlan: explicit policy needs a non-empty worker cpu list");
      }
      ValidateCpuList(worker_cpus, ncpu, "worker");
      ValidateCpuList(ingest_cpus, ncpu, "ingest");
      for (std::size_t i = 0; i < num_workers; ++i) {
        plan.worker_cpu[i] = worker_cpus[i % worker_cpus.size()];
      }
      for (std::size_t t = 0; t < num_ingest; ++t) {
        plan.ingest_cpu[t] = ingest_cpus.empty()
                                 ? -1
                                 : ingest_cpus[t % ingest_cpus.size()];
      }
      break;
  }
  return plan;
}

bool PinThisThread(int cpu) {
  if (cpu < 0) return true;  // "leave unpinned" is always satisfiable
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  (void)cpu;
  return true;  // pinning is advisory off-Linux
#endif
}

ScopedThreadPin::ScopedThreadPin(int cpu) {
  if (cpu < 0) return;
#if defined(__linux__)
  static_assert(sizeof(saved_mask_) >= sizeof(cpu_set_t),
                "saved affinity storage too small");
  cpu_set_t prev;
  CPU_ZERO(&prev);
  if (sched_getaffinity(0, sizeof(prev), &prev) == 0) {
    std::memcpy(saved_mask_, &prev, sizeof(prev));
    saved_ = true;
  }
  active_ = PinThisThread(cpu);
#else
  active_ = true;
#endif
}

ScopedThreadPin::~ScopedThreadPin() {
#if defined(__linux__)
  if (saved_) {
    cpu_set_t prev;
    std::memcpy(&prev, saved_mask_, sizeof(prev));
    sched_setaffinity(0, sizeof(prev), &prev);
  }
#endif
}

}  // namespace pegasus::runtime
