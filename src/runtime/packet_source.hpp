// Pull-based packet ingestion for the StreamServer.
//
// A PacketSource produces the per-packet stream the server consumes —
// in-memory merged traces (traffic::MergeTrace), pcap captures decoded on
// the fly (io/replay.hpp's PcapPacketSource), or any of those wrapped in a
// pacing TraceReplayer. StreamServer::Serve(PacketSource&) pulls until the
// source runs dry, so the runtime never needs to know where packets come
// from — the io layer plugs in from above.
#pragma once

#include <span>

#include "traffic/stream.hpp"

namespace pegasus::runtime {

class PacketSource {
 public:
  virtual ~PacketSource() = default;

  /// Produces the next packet. Returns false at end of stream. `out.packet`
  /// only needs to stay valid until the next call — sources may reuse one
  /// internal buffer; the server copies the payload where it must outlive
  /// the call (its multi-threaded rings).
  virtual bool Next(traffic::TracePacket& out) = 0;
};

/// The in-memory case: iterates a borrowed trace (must outlive the source).
class SpanPacketSource final : public PacketSource {
 public:
  explicit SpanPacketSource(std::span<const traffic::TracePacket> trace)
      : trace_(trace) {}

  bool Next(traffic::TracePacket& out) override {
    if (at_ >= trace_.size()) return false;
    out = trace_[at_++];
    return true;
  }

 private:
  std::span<const traffic::TracePacket> trace_;
  std::size_t at_ = 0;
};

}  // namespace pegasus::runtime
