// Pull-based packet ingestion for the StreamServer.
//
// A PacketSource produces the per-packet stream the server consumes —
// in-memory merged traces (traffic::MergeTrace), pcap captures decoded on
// the fly (io/replay.hpp's PcapPacketSource), or any of those wrapped in a
// pacing TraceReplayer. StreamServer::Serve(PacketSource&) pulls until the
// source runs dry, so the runtime never needs to know where packets come
// from — the io layer plugs in from above.
//
// A PartitionedPacketSource is the multi-ingest (RSS-style) counterpart:
// the stream is split by flow digest into disjoint partitions, one per
// ingest thread, so N threads pull concurrently with no shared dispatch
// point — the receive-side-scaling idiom NICs implement in hardware. Each
// partition must cover exactly the shards its ingest thread owns (build the
// partition function from StreamServer::IngestPartitionOf), because each
// shard ring is single-producer.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <vector>

#include "traffic/stream.hpp"

namespace pegasus::runtime {

class PacketSource {
 public:
  virtual ~PacketSource() = default;

  /// Produces the next packet. Returns false at end of stream. `out.packet`
  /// only needs to stay valid until the next call — sources may reuse one
  /// internal buffer; the server copies the payload where it must outlive
  /// the call (its multi-threaded rings).
  virtual bool Next(traffic::TracePacket& out) = 0;
};

/// The in-memory case: iterates a borrowed trace (must outlive the source).
class SpanPacketSource final : public PacketSource {
 public:
  explicit SpanPacketSource(std::span<const traffic::TracePacket> trace)
      : trace_(trace) {}

  bool Next(traffic::TracePacket& out) override {
    if (at_ >= trace_.size()) return false;
    out = trace_[at_++];
    return true;
  }

 private:
  std::span<const traffic::TracePacket> trace_;
  std::size_t at_ = 0;
};

/// Adapts any object with `bool Next(traffic::TracePacket&)` (e.g.
/// traffic::ChurnGenerator) to the PacketSource interface without the
/// generator having to know about the runtime layer. The generator's
/// buffer-reuse behaviour already matches the PacketSource contract.
template <typename Generator>
class GeneratorPacketSource final : public PacketSource {
 public:
  explicit GeneratorPacketSource(Generator& gen) : gen_(gen) {}

  bool Next(traffic::TracePacket& out) override { return gen_.Next(out); }

 private:
  Generator& gen_;
};

// ---------------------------------------------------------------------------
// Multi-ingest partitioning.
// ---------------------------------------------------------------------------

/// Maps a flow digest to the ingest partition that owns it. Must be pure
/// (same digest -> same partition) and callable concurrently from every
/// ingest thread.
using DigestPartitionFn = std::function<std::size_t(std::uint64_t digest)>;

/// A packet stream pre-split into disjoint per-ingest partitions. Distinct
/// partitions are consumed concurrently by distinct threads; implementations
/// must keep per-partition cursors independent (no shared mutable state
/// across partition indexes). Within a partition, packets arrive in stream
/// order — a flow lives in exactly one partition, so per-flow order is the
/// trace order.
class PartitionedPacketSource {
 public:
  virtual ~PartitionedPacketSource() = default;

  virtual std::size_t partitions() const = 0;

  /// Produces the next packet of partition `p`. Same buffer-reuse contract
  /// as PacketSource::Next. Only the ingest thread owning `p` may call it.
  virtual bool Next(std::size_t p, traffic::TracePacket& out) = 0;
};

/// Splits a borrowed in-memory trace by flow digest: one pre-pass routes
/// every packet index to its partition, then each ingest thread walks its
/// own index list — zero coordination at pull time. The trace must outlive
/// the source.
class DigestPartitionedSource final : public PartitionedPacketSource {
 public:
  DigestPartitionedSource(std::span<const traffic::TracePacket> trace,
                          std::size_t partitions, DigestPartitionFn fn)
      : trace_(trace) {
    if (partitions == 0) {
      throw std::invalid_argument("DigestPartitionedSource: zero partitions");
    }
    if (!fn) {
      throw std::invalid_argument(
          "DigestPartitionedSource: null partition function");
    }
    order_.resize(partitions);
    cursors_.resize(partitions);
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const std::size_t p = fn(trace[i].key.digest);
      if (p >= partitions) {
        throw std::out_of_range(
            "DigestPartitionedSource: partition function out of range");
      }
      order_[p].push_back(static_cast<std::uint32_t>(i));
    }
  }

  std::size_t partitions() const override { return order_.size(); }

  bool Next(std::size_t p, traffic::TracePacket& out) override {
    Cursor& cur = cursors_[p];
    const auto& order = order_[p];
    if (cur.at >= order.size()) return false;
    out = trace_[order[cur.at++]];
    return true;
  }

 private:
  /// One cursor per partition, each on its own cache line: partition p is
  /// advanced only by ingest thread p, and padding keeps neighbours from
  /// false-sharing the line.
  struct alignas(64) Cursor {
    std::size_t at = 0;
  };

  std::span<const traffic::TracePacket> trace_;
  std::vector<std::vector<std::uint32_t>> order_;
  std::vector<Cursor> cursors_;
};

}  // namespace pegasus::runtime
