// Preallocated open-addressing per-flow table — the serving-runtime
// counterpart of the register-array view in runtime/flow_state.hpp.
//
// The paper's §7.3 concurrency study (and the SFC / 5GC²ache lessons the
// ROADMAP cites) says per-flow state at line rate must live in fixed,
// preallocated structures with bounded, cache-local access. FlowTable
// delivers exactly that: one flat slot array sized at construction, linear
// probing bounded by `max_probe` slots, and LRU-ish eviction inside the
// probe window when it is full — the same policy a hardware flow cache
// implements. Nothing allocates after construction.
//
// Keys are 64-bit FlowKey digests; two flows only collide into one entry if
// their digests are equal (a property real switches share — the digest IS
// the flow identity past the parser). Slots never empty once occupied
// (eviction replaces in place), which keeps the probe invariant simple: a
// key can only live between its home slot and the first empty slot of its
// probe window.
//
// Per-table stats (hits / misses / inserts / evictions / probes) feed the
// StreamServer's shard accounting; SramBits() prices the table like the
// dataplane would (dataplane::FlowTableSramBits).
#pragma once

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "dataplane/registers.hpp"
#include "dataplane/resources.hpp"

namespace pegasus::runtime {

struct FlowTableStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  std::uint64_t probes = 0;

  FlowTableStats& operator+=(const FlowTableStats& o) {
    hits += o.hits;
    misses += o.misses;
    inserts += o.inserts;
    evictions += o.evictions;
    probes += o.probes;
    return *this;
  }
};

/// Mixes a flow digest into a well-distributed hash (splitmix64 finalizer).
inline std::uint64_t MixDigest(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

template <typename Value>
class FlowTable {
 public:
  /// `capacity` is rounded up to a power of two; `max_probe` bounds the
  /// linear probe length (and therefore the worst-case per-packet work).
  explicit FlowTable(std::size_t capacity, std::size_t max_probe = 8)
      : max_probe_(max_probe) {
    if (capacity == 0) {
      throw std::invalid_argument("FlowTable: zero capacity");
    }
    if (max_probe == 0) {
      throw std::invalid_argument("FlowTable: zero probe length");
    }
    const std::size_t pow2 = std::bit_ceil(capacity);
    if (max_probe_ > pow2) max_probe_ = pow2;
    slots_.resize(pow2);
    mask_ = pow2 - 1;
  }

  std::size_t capacity() const { return slots_.size(); }
  std::size_t size() const { return size_; }
  std::size_t max_probe() const { return max_probe_; }
  const FlowTableStats& stats() const { return stats_; }

  /// Zeroes the counters; resident entries (and their LRU stamps) are
  /// untouched. Lets the StreamServer report per-phase stats — e.g. before
  /// vs after a model swap — without disturbing live flow state.
  void ResetStats() { stats_ = {}; }

  /// Batch key-gather hook: software-prefetches the home slot of `key`'s
  /// probe window. A shard worker draining a burst off its ring prefetches
  /// every key up front, then processes the packets — the flow-state cache
  /// misses overlap instead of serializing (the 5GC²ache lesson: LLC
  /// behavior, not instruction count, governs per-packet serving cost).
  void Prefetch(const dataplane::FlowKey& key) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(
        static_cast<const void*>(&slots_[MixDigest(key.digest) & mask_]),
        /*rw=*/1, /*locality=*/3);
#else
    (void)key;
#endif
  }

  /// Looks the flow up without inserting. Returns nullptr when absent (and
  /// counts a miss). A hit refreshes the entry's LRU stamp.
  Value* Find(const dataplane::FlowKey& key) {
    std::size_t idx = MixDigest(key.digest) & mask_;
    for (std::size_t p = 0; p < max_probe_; ++p, idx = (idx + 1) & mask_) {
      Slot& s = slots_[idx];
      ++stats_.probes;
      if (!s.occupied) break;  // never-emptied invariant: key is absent
      if (s.digest == key.digest) {
        ++stats_.hits;
        s.last_used = ++tick_;
        return &s.value;
      }
    }
    ++stats_.misses;
    return nullptr;
  }

  /// Looks the flow up, inserting a value-initialized entry when absent.
  /// When the probe window is full, the least-recently-used entry in the
  /// window is evicted (deterministically: LRU stamps are unique). The
  /// evicted flow's state is reset, never merged — surviving entries are
  /// untouched.
  Value& FindOrInsert(const dataplane::FlowKey& key) {
    const std::size_t home = MixDigest(key.digest) & mask_;
    std::size_t idx = home;
    std::size_t victim = home;
    std::uint64_t victim_stamp = ~std::uint64_t{0};
    std::size_t empty = kNone;
    for (std::size_t p = 0; p < max_probe_; ++p, idx = (idx + 1) & mask_) {
      Slot& s = slots_[idx];
      ++stats_.probes;
      if (!s.occupied) {
        empty = idx;
        break;
      }
      if (s.digest == key.digest) {
        ++stats_.hits;
        s.last_used = ++tick_;
        return s.value;
      }
      if (s.last_used < victim_stamp) {
        victim_stamp = s.last_used;
        victim = idx;
      }
    }
    ++stats_.misses;
    ++stats_.inserts;
    std::size_t at = empty;
    if (at == kNone) {
      ++stats_.evictions;
      at = victim;
    } else {
      ++size_;
    }
    Slot& s = slots_[at];
    s.occupied = true;
    s.digest = key.digest;
    s.last_used = ++tick_;
    s.value = Value{};
    return s.value;
  }

  /// Drops every entry (capacity and stats are kept).
  void Clear() {
    for (Slot& s : slots_) {
      s.occupied = false;
      s.value = Value{};
    }
    size_ = 0;
  }

  /// Dataplane SRAM footprint of this table given the logical per-flow
  /// state width (see runtime/stream_server.hpp's OnlineFlowStateSpec).
  std::size_t SramBits(std::size_t bits_per_flow) const {
    return dataplane::FlowTableSramBits(bits_per_flow, slots_.size());
  }

 private:
  static constexpr std::size_t kNone = ~std::size_t{0};

  struct Slot {
    std::uint64_t digest = 0;
    std::uint64_t last_used = 0;
    bool occupied = false;
    Value value{};
  };

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t max_probe_;
  std::size_t size_ = 0;
  std::uint64_t tick_ = 0;
  FlowTableStats stats_;
};

}  // namespace pegasus::runtime
