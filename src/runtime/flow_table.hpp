// Preallocated open-addressing per-flow table — the serving-runtime
// counterpart of the register-array view in runtime/flow_state.hpp.
//
// The paper's §7.3 concurrency study (and the SFC / 5GC²ache lessons the
// ROADMAP cites) says per-flow state at line rate must live in fixed,
// preallocated structures with bounded, cache-local access. FlowTable
// delivers exactly that: one flat table sized at construction, linear
// probing bounded by `max_probe` slots, and deterministic eviction inside
// the probe window when it is full — the same policy a hardware flow cache
// implements. Nothing allocates after construction.
//
// Layout is split-lane by default: probing walks a dense metadata lane
// (16-byte digest + stamp entries, four probe slots per 64-byte cache
// line) and the cold per-flow Value lane is touched only on hit or insert.
// At million-flow scale every probe step in the old interleaved layout
// dragged a cold value line through the LLC; the split lane turns an
// 8-slot probe window into 2–3 metadata lines. The interleaved layout is
// kept selectable (FlowTableOptions::layout) as the measured baseline —
// bench_flowscale A/Bs the two — and the semantics are identical by
// construction: both layouts share one probe/eviction implementation.
//
// Keys are 64-bit FlowKey digests; two flows only collide into one entry if
// their digests are equal (a property real switches share — the digest IS
// the flow identity past the parser). Slots never empty once occupied
// (eviction replaces in place), which keeps the probe invariant simple: a
// key can only live between its home slot and the first empty slot of its
// probe window. Occupancy is encoded in the stamp (stamp == 0 ⇔ empty;
// ticks start at 1), so the metadata entry stays at 16 bytes.
//
// Eviction is exact-LRU inside the probe window by default (unique stamps,
// fully deterministic — the MT == ST equality proofs rely on it). A
// second-chance/CLOCK policy is selectable: a hit sets a reference bit
// (stamp bit 63) instead of re-stamping, and the victim scan walks the
// window in probe order clearing reference bits until it finds an
// unreferenced entry (falling back to the home slot when every entry was
// referenced). Still deterministic — just a different, cheaper policy.
//
// Per-table stats (hits / misses / inserts / evictions / probes + a
// probe-length histogram) feed the StreamServer's shard accounting;
// SramBits() prices the table like the dataplane would
// (dataplane::FlowTableSramBits).
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "dataplane/registers.hpp"
#include "dataplane/resources.hpp"

namespace pegasus::runtime {

/// Physical layout of the table. kSplit probes a dense metadata lane and
/// touches values only on hit/insert; kInterleaved stores metadata and
/// value together (the pre-split baseline, kept for A/B measurement).
enum class FlowTableLayout { kSplit, kInterleaved };

/// Eviction policy inside a full probe window. kLru is exact-LRU on unique
/// stamps (deterministic default); kSecondChance is a CLOCK-style scan over
/// the window in probe order (also deterministic, cheaper per hit).
enum class FlowTableEviction { kLru, kSecondChance };

inline const char* FlowTableLayoutName(FlowTableLayout l) {
  return l == FlowTableLayout::kSplit ? "split" : "interleaved";
}

inline const char* FlowTableEvictionName(FlowTableEviction e) {
  return e == FlowTableEviction::kLru ? "lru" : "second_chance";
}

struct FlowTableOptions {
  std::size_t capacity = std::size_t{1} << 12;
  std::size_t max_probe = 8;
  FlowTableLayout layout = FlowTableLayout::kSplit;
  FlowTableEviction eviction = FlowTableEviction::kLru;
};

struct FlowTableStats {
  static constexpr std::size_t kProbeHistBuckets = 16;

  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  std::uint64_t probes = 0;
  /// probe_hist[i] counts operations whose probe sequence examined i+1
  /// slots; the last bucket absorbs anything longer. sum(probe_hist) ==
  /// the number of Find/FindOrInsert calls.
  std::array<std::uint64_t, kProbeHistBuckets> probe_hist{};
  /// Occupancy snapshot (filled by SnapshotStats, zero on the live counter
  /// struct): resident entries and total slots at snapshot time. Summing
  /// across shards keeps resident/slots a meaningful aggregate load factor.
  std::uint64_t resident = 0;
  std::uint64_t slots = 0;

  double LoadFactor() const {
    return slots ? static_cast<double>(resident) / static_cast<double>(slots)
                 : 0.0;
  }

  /// Mean probe-sequence length per operation.
  double MeanProbe() const {
    const std::uint64_t ops = hits + misses;
    return ops ? static_cast<double>(probes) / static_cast<double>(ops) : 0.0;
  }

  FlowTableStats& operator+=(const FlowTableStats& o) {
    hits += o.hits;
    misses += o.misses;
    inserts += o.inserts;
    evictions += o.evictions;
    probes += o.probes;
    for (std::size_t i = 0; i < kProbeHistBuckets; ++i) {
      probe_hist[i] += o.probe_hist[i];
    }
    resident += o.resident;
    slots += o.slots;
    return *this;
  }
};

/// Mixes a flow digest into a well-distributed hash (splitmix64 finalizer).
inline std::uint64_t MixDigest(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

template <typename Value>
class FlowTable {
 public:
  /// `capacity` is rounded up to a power of two; `max_probe` bounds the
  /// linear probe length (and therefore the worst-case per-packet work).
  explicit FlowTable(const FlowTableOptions& opts)
      : max_probe_(opts.max_probe),
        layout_(opts.layout),
        eviction_(opts.eviction) {
    if (opts.capacity == 0) {
      throw std::invalid_argument("FlowTable: zero capacity");
    }
    if (opts.max_probe == 0) {
      throw std::invalid_argument("FlowTable: zero probe length");
    }
    const std::size_t pow2 = std::bit_ceil(opts.capacity);
    if (max_probe_ > pow2) max_probe_ = pow2;
    capacity_ = pow2;
    mask_ = pow2 - 1;
    if (layout_ == FlowTableLayout::kSplit) {
      meta_.resize(pow2);
      values_.resize(pow2);
    } else {
      islots_.resize(pow2);
    }
  }

  explicit FlowTable(std::size_t capacity, std::size_t max_probe = 8)
      : FlowTable(FlowTableOptions{capacity, max_probe,
                                   FlowTableLayout::kSplit,
                                   FlowTableEviction::kLru}) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return size_; }
  std::size_t max_probe() const { return max_probe_; }
  FlowTableLayout layout() const { return layout_; }
  FlowTableEviction eviction() const { return eviction_; }
  const FlowTableStats& stats() const { return stats_; }

  /// Live-table load factor (resident entries / slots).
  double LoadFactor() const {
    return static_cast<double>(size_) / static_cast<double>(capacity_);
  }

  /// Counters plus an occupancy snapshot (resident/slots) — what the
  /// StreamServer aggregates per shard.
  FlowTableStats SnapshotStats() const {
    FlowTableStats s = stats_;
    s.resident = size_;
    s.slots = capacity_;
    return s;
  }

  /// Zeroes the counters; resident entries (and their LRU stamps) are
  /// untouched. Lets the StreamServer report per-phase stats — e.g. before
  /// vs after a model swap — without disturbing live flow state.
  void ResetStats() { stats_ = {}; }

  /// Batch key-gather hook: software-prefetches the metadata line(s) of
  /// `key`'s whole probe window, with a read hint — the lookup path is
  /// read-mostly, and a probe can end anywhere in the window. A shard
  /// worker draining a burst off its ring prefetches every key up front,
  /// then processes the packets — the flow-state cache misses overlap
  /// instead of serializing (the 5GC²ache lesson: LLC behavior, not
  /// instruction count, governs per-packet serving cost).
  void Prefetch(const dataplane::FlowKey& key) const {
#if defined(__GNUC__) || defined(__clang__)
    const std::size_t home = MixDigest(key.digest) & mask_;
    if (layout_ == FlowTableLayout::kSplit) {
      constexpr std::size_t kStride = 64 / sizeof(Meta);
      for (std::size_t off = 0; off < max_probe_; off += kStride) {
        __builtin_prefetch(
            static_cast<const void*>(&meta_[(home + off) & mask_]),
            /*rw=*/0, /*locality=*/3);
      }
      // The window rarely starts line-aligned: cover the straddled tail.
      __builtin_prefetch(
          static_cast<const void*>(&meta_[(home + max_probe_ - 1) & mask_]),
          /*rw=*/0, /*locality=*/3);
    } else {
      constexpr std::size_t kStride =
          sizeof(ISlot) >= 64 ? 1 : 64 / sizeof(ISlot);
      for (std::size_t off = 0; off < max_probe_; off += kStride) {
        __builtin_prefetch(
            static_cast<const void*>(&islots_[(home + off) & mask_]),
            /*rw=*/0, /*locality=*/3);
      }
      __builtin_prefetch(
          static_cast<const void*>(&islots_[(home + max_probe_ - 1) & mask_]),
          /*rw=*/0, /*locality=*/3);
    }
#else
    (void)key;
#endif
  }

  /// Looks the flow up without inserting. Returns nullptr when absent (and
  /// counts a miss). A hit refreshes the entry's recency (LRU stamp or
  /// second-chance reference bit).
  Value* Find(const dataplane::FlowKey& key) {
    return layout_ == FlowTableLayout::kSplit ? FindImpl<true>(key)
                                              : FindImpl<false>(key);
  }

  /// Looks the flow up, inserting a value-initialized entry when absent.
  /// When the probe window is full, the eviction policy picks a victim in
  /// the window (deterministically; exact-LRU by default). The evicted
  /// flow's state is reset, never merged — surviving entries are untouched.
  Value& FindOrInsert(const dataplane::FlowKey& key) {
    return layout_ == FlowTableLayout::kSplit ? FindOrInsertImpl<true>(key)
                                              : FindOrInsertImpl<false>(key);
  }

  /// Drops every entry (capacity and stats are kept).
  void Clear() {
    if (layout_ == FlowTableLayout::kSplit) {
      for (Meta& m : meta_) m = Meta{};
      for (Value& v : values_) v = Value{};
    } else {
      for (ISlot& s : islots_) {
        s.meta = Meta{};
        s.value = Value{};
      }
    }
    size_ = 0;
  }

  /// Dataplane SRAM footprint of this table given the logical per-flow
  /// state width (see runtime/stream_server.hpp's OnlineFlowStateSpec).
  std::size_t SramBits(std::size_t bits_per_flow) const {
    return dataplane::FlowTableSramBits(bits_per_flow, capacity_);
  }

 private:
  static constexpr std::size_t kNone = ~std::size_t{0};
  /// Second-chance reference bit, kept inside the stamp so metadata stays
  /// 16 bytes. LRU mode never sets it, so LRU stamps order exactly by age.
  static constexpr std::uint64_t kRefBit = std::uint64_t{1} << 63;

  /// Hot-lane entry: everything a probe step needs. stamp == 0 ⇔ empty.
  struct Meta {
    std::uint64_t digest = 0;
    std::uint64_t stamp = 0;
  };
  static_assert(sizeof(Meta) == 16, "four probe slots per 64-byte line");

  struct ISlot {
    Meta meta{};
    Value value{};
  };

  template <bool Split>
  Meta& MetaAt(std::size_t i) {
    if constexpr (Split) {
      return meta_[i];
    } else {
      return islots_[i].meta;
    }
  }

  template <bool Split>
  Value& ValueAt(std::size_t i) {
    if constexpr (Split) {
      return values_[i];
    } else {
      return islots_[i].value;
    }
  }

  void Touch(Meta& m) {
    if (eviction_ == FlowTableEviction::kLru) {
      m.stamp = ++tick_;
    } else {
      m.stamp |= kRefBit;
    }
  }

  void RecordProbe(std::size_t len) {
    stats_.probe_hist[std::min(len, FlowTableStats::kProbeHistBuckets) - 1]++;
  }

  /// CLOCK sweep: walk the window in probe order, clear reference bits,
  /// evict the first unreferenced entry. Every entry referenced → all bits
  /// are now clear and the home slot is the victim (deterministic).
  template <bool Split>
  std::size_t SecondChanceVictim(std::size_t home) {
    std::size_t idx = home;
    for (std::size_t p = 0; p < max_probe_; ++p, idx = (idx + 1) & mask_) {
      Meta& m = MetaAt<Split>(idx);
      if (m.stamp & kRefBit) {
        m.stamp &= ~kRefBit;
        continue;
      }
      return idx;
    }
    return home;
  }

  template <bool Split>
  Value* FindImpl(const dataplane::FlowKey& key) {
    std::size_t idx = MixDigest(key.digest) & mask_;
    std::size_t len = 0;
    for (std::size_t p = 0; p < max_probe_; ++p, idx = (idx + 1) & mask_) {
      Meta& m = MetaAt<Split>(idx);
      ++stats_.probes;
      ++len;
      if (m.stamp == 0) break;  // never-emptied invariant: key is absent
      if (m.digest == key.digest) {
        ++stats_.hits;
        Touch(m);
        RecordProbe(len);
        return &ValueAt<Split>(idx);
      }
    }
    RecordProbe(len);
    ++stats_.misses;
    return nullptr;
  }

  template <bool Split>
  Value& FindOrInsertImpl(const dataplane::FlowKey& key) {
    const std::size_t home = MixDigest(key.digest) & mask_;
    std::size_t idx = home;
    std::size_t victim = home;
    std::uint64_t victim_stamp = ~std::uint64_t{0};
    std::size_t empty = kNone;
    std::size_t len = 0;
    for (std::size_t p = 0; p < max_probe_; ++p, idx = (idx + 1) & mask_) {
      Meta& m = MetaAt<Split>(idx);
      ++stats_.probes;
      ++len;
      if (m.stamp == 0) {
        empty = idx;
        break;
      }
      if (m.digest == key.digest) {
        ++stats_.hits;
        Touch(m);
        RecordProbe(len);
        return ValueAt<Split>(idx);
      }
      if (m.stamp < victim_stamp) {
        victim_stamp = m.stamp;
        victim = idx;
      }
    }
    RecordProbe(len);
    ++stats_.misses;
    ++stats_.inserts;
    std::size_t at = empty;
    if (at == kNone) {
      ++stats_.evictions;
      at = eviction_ == FlowTableEviction::kSecondChance
               ? SecondChanceVictim<Split>(home)
               : victim;
    } else {
      ++size_;
    }
    Meta& m = MetaAt<Split>(at);
    m.digest = key.digest;
    m.stamp = ++tick_;
    Value& v = ValueAt<Split>(at);
    v = Value{};
    return v;
  }

  std::vector<Meta> meta_;     // split: hot lane (probed)
  std::vector<Value> values_;  // split: cold lane (hit/insert only)
  std::vector<ISlot> islots_;  // interleaved baseline
  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  std::size_t max_probe_;
  std::size_t size_ = 0;
  std::uint64_t tick_ = 0;
  FlowTableLayout layout_;
  FlowTableEviction eviction_;
  FlowTableStats stats_;
};

}  // namespace pegasus::runtime
