// Single-producer single-consumer ring buffer for the StreamServer's
// multi-threaded mode: the driver thread pushes packets, exactly one shard
// worker pops them. Fixed capacity, preallocated, wait-free on both sides
// (callers spin/yield on full/empty).
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

namespace pegasus::runtime {

template <typename T>
class SpscQueue {
 public:
  /// `capacity` is rounded up to a power of two.
  explicit SpscQueue(std::size_t capacity) {
    if (capacity == 0) {
      throw std::invalid_argument("SpscQueue: zero capacity");
    }
    const std::size_t pow2 = std::bit_ceil(capacity);
    buffer_.resize(pow2);
    mask_ = pow2 - 1;
  }

  std::size_t capacity() const { return buffer_.size(); }

  /// Producer side. Returns false when full (the element is untouched, so
  /// callers can retry the same value). Pass an rvalue to move elements
  /// carrying owning handles (the StreamServer's in-band swap items move
  /// their shared_ptr instead of bumping refcounts through the ring).
  bool TryPush(T&& v) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) == buffer_.size()) {
      return false;
    }
    buffer_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }
  bool TryPush(const T& v) { return TryPush(T(v)); }

  /// Consumer side. Returns false when empty. Moves the slot out, so
  /// elements holding owning handles (shared_ptr) leave the ring empty
  /// behind them instead of staying pinned until the slot is overwritten.
  bool TryPop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) {
      return false;
    }
    out = std::move(buffer_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

 private:
  std::vector<T> buffer_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer cursor
};

}  // namespace pegasus::runtime
