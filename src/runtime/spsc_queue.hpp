// Single-producer single-consumer ring buffer for the StreamServer's
// multi-threaded mode: exactly one ingest thread pushes packets, exactly one
// shard worker pops them. Fixed capacity, preallocated, wait-free on both
// sides (callers spin/yield on full/empty — or shed, see StreamServer's
// overload story).
//
// Two throughput levers beyond the textbook SPSC ring, both borrowed from
// DPDK-style dataplanes (ndn-dpdk's ringbuffer / burst RX loops):
//  * burst transfers — TryPushBurst/TryPopBurst move a whole span with ONE
//    cursor publish, amortizing the release/acquire pair (and its cache-line
//    handoff) over the burst instead of paying it per packet;
//  * cached opposite cursors — the producer keeps a stale copy of `head_`
//    and only re-reads the shared atomic when the ring *looks* full (the
//    consumer symmetrically caches `tail_`), so in steady state each side
//    touches the other's cache line once per wrap, not once per element.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

namespace pegasus::runtime {

template <typename T>
class SpscQueue {
 public:
  /// `capacity` is rounded up to a power of two.
  explicit SpscQueue(std::size_t capacity) {
    if (capacity == 0) {
      throw std::invalid_argument("SpscQueue: zero capacity");
    }
    const std::size_t pow2 = std::bit_ceil(capacity);
    buffer_.resize(pow2);
    mask_ = pow2 - 1;
  }

  std::size_t capacity() const { return buffer_.size(); }

  /// Approximate occupancy, callable from ANY thread (not just the two
  /// endpoints): both cursors are read relaxed, so the value can be
  /// momentarily stale in either direction. Intended for observers — the
  /// watchdog uses "ring non-empty while the consumer's heartbeat is
  /// stagnant" as its stall signal, where approximate is exactly enough.
  std::size_t SizeApprox() const {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t diff = tail - head;
    // A torn read pair can transiently show head ahead of tail; clamp
    // rather than report a wrapped huge value.
    return diff > buffer_.size() ? 0 : diff;
  }

  /// Producer side. Returns false when full (the element is untouched, so
  /// callers can retry the same value). Pass an rvalue to move elements
  /// carrying owning handles (the StreamServer's in-band swap items move
  /// their shared_ptr instead of bumping refcounts through the ring).
  bool TryPush(T&& v) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ == buffer_.size()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ == buffer_.size()) return false;
    }
    buffer_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }
  bool TryPush(const T& v) { return TryPush(T(v)); }

  /// Producer side, burst variant: moves as many leading elements of
  /// `items` as fit right now into the ring under a single tail publish.
  /// Returns the number moved (0 when full); elements [0, n) are
  /// moved-from, [n, size) are untouched and can be retried.
  std::size_t TryPushBurst(std::span<T> items) {
    if (items.empty()) return 0;
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t free = buffer_.size() - (tail - head_cache_);
    if (free < items.size()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      free = buffer_.size() - (tail - head_cache_);
      if (free == 0) return 0;
    }
    const std::size_t n = std::min(free, items.size());
    for (std::size_t i = 0; i < n; ++i) {
      buffer_[(tail + i) & mask_] = std::move(items[i]);
    }
    tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  /// Consumer side. Returns false when empty. Moves the slot out, so
  /// elements holding owning handles (shared_ptr) leave the ring empty
  /// behind them instead of staying pinned until the slot is overwritten.
  bool TryPop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = std::move(buffer_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side, burst variant: moves up to `out.size()` elements into
  /// `out` under a single head publish. Returns the number popped (0 when
  /// empty).
  std::size_t TryPopBurst(std::span<T> out) {
    if (out.empty()) return 0;
    const std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t avail = tail_cache_ - head;
    if (avail < out.size()) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      avail = tail_cache_ - head;
      if (avail == 0) return 0;
    }
    const std::size_t n = std::min(avail, out.size());
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = std::move(buffer_[(head + i) & mask_]);
    }
    head_.store(head + n, std::memory_order_release);
    return n;
  }

 private:
  std::vector<T> buffer_;
  std::size_t mask_ = 0;
  /// Producer-owned cache line: its cursor + its stale view of the
  /// consumer's.
  alignas(64) std::atomic<std::size_t> tail_{0};
  std::size_t head_cache_ = 0;
  /// Consumer-owned cache line, symmetrically.
  alignas(64) std::atomic<std::size_t> head_{0};
  std::size_t tail_cache_ = 0;
};

}  // namespace pegasus::runtime
