#include "runtime/fault.hpp"

namespace pegasus::runtime {

namespace fault_detail {
std::atomic<bool> g_fault_enabled{false};
}  // namespace fault_detail

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kRingPushStall:
      return "ring_push_stall";
    case FaultSite::kWorkerSlow:
      return "worker_slow";
    case FaultSite::kWorkerStuck:
      return "worker_stuck";
    case FaultSite::kInferenceFault:
      return "inference_fault";
    case FaultSite::kEnvelopeBitFlip:
      return "envelope_bit_flip";
    case FaultSite::kEnvelopeTruncate:
      return "envelope_truncate";
    case FaultSite::kSwapPublishFail:
      return "swap_publish_fail";
    case FaultSite::kWireCorrupt:
      return "wire_corrupt";
  }
  return "unknown";
}

FaultPlan& FaultPlan::Arm(FaultSite site, std::uint64_t first,
                          std::uint64_t every, std::uint64_t limit,
                          std::uint64_t param) {
  FaultSpec& spec = at(site);
  spec.armed = true;
  spec.first = first;
  spec.every = every == 0 ? 1 : every;
  spec.limit = limit;
  spec.param = param;
  return *this;
}

namespace {

// splitmix64: the plan generator must not depend on libc rand state.
std::uint64_t Mix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

FaultPlan FaultPlan::Randomized(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  std::uint64_t state = seed * 0x2545f4914f6cdd1dull + 0x853c49e6748fea9bull;

  // Each dataplane site: armed with probability 1/2, schedules kept small
  // enough that the worst case (every site armed at max) still drains in
  // well under a second of stall time.
  const auto arm_maybe = [&](FaultSite site, std::uint64_t max_first,
                             std::uint64_t max_every, std::uint64_t max_limit,
                             std::uint64_t max_param) {
    if ((Mix64(state) & 1) == 0) return;
    plan.Arm(site, Mix64(state) % (max_first + 1),
             1 + Mix64(state) % max_every, 1 + Mix64(state) % max_limit,
             max_param == 0 ? 0 : 1 + Mix64(state) % max_param);
  };

  // Ring stalls: up to 64 forced-full rounds spread over the run.
  arm_maybe(FaultSite::kRingPushStall, 512, 97, 64, 0);
  // Slow worker: up to 8 sleeps of <=200us after a burst.
  arm_maybe(FaultSite::kWorkerSlow, 64, 53, 8, 200);
  // Stuck worker: up to 2 heartbeat-frozen stalls of <=2000us — long
  // enough for a tight-interval watchdog to notice, short enough to drain.
  arm_maybe(FaultSite::kWorkerStuck, 32, 41, 2, 2000);
  // Transient inference faults: up to 6 throws; the retry ladder recovers
  // any batch whose remaining fault budget is below the retry budget.
  arm_maybe(FaultSite::kInferenceFault, 4, 7, 6, 0);
  // Swap publish failure: up to 2 failed swaps, rolled back.
  arm_maybe(FaultSite::kSwapPublishFail, 1, 2, 2, 0);
  return plan;
}

FaultInjectedError::FaultInjectedError(FaultSite site,
                                       const std::string& detail)
    : std::runtime_error("injected fault at " +
                         std::string(FaultSiteName(site)) +
                         (detail.empty() ? "" : ": " + detail)),
      site_(site) {}

FaultInjector& FaultInjector::Instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::Arm(const FaultPlan& plan) {
  // Publish specs before flipping the gate so hooks never observe a
  // half-armed plan. Hooks racing with Arm may miss the first few hits;
  // that is fine — schedules, not exact positions, are the contract.
  for (std::size_t i = 0; i < kNumFaultSites; ++i) {
    sites_[i].spec = plan.sites[i];
    sites_[i].hits.store(0, std::memory_order_relaxed);
    sites_[i].fires.store(0, std::memory_order_relaxed);
  }
  fault_detail::g_fault_enabled.store(true, std::memory_order_release);
}

void FaultInjector::Disarm() {
  fault_detail::g_fault_enabled.store(false, std::memory_order_release);
}

bool FaultInjector::armed() const {
  return fault_detail::g_fault_enabled.load(std::memory_order_acquire);
}

bool FaultInjector::Hit(FaultSite site) {
  Site& s = sites_[static_cast<std::size_t>(site)];
  const std::uint64_t hit = s.hits.fetch_add(1, std::memory_order_relaxed);
  const FaultSpec& spec = s.spec;
  if (!spec.armed) return false;
  if (hit < spec.first) return false;
  if ((hit - spec.first) % spec.every != 0) return false;
  // Claim one of the `limit` fire slots; losers of the race past the
  // limit do not fire, keeping the bound exact under concurrency.
  std::uint64_t fired = s.fires.load(std::memory_order_relaxed);
  while (fired < spec.limit) {
    if (s.fires.compare_exchange_weak(fired, fired + 1,
                                      std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

std::uint64_t FaultInjector::Param(FaultSite site) const {
  if (!armed()) return 0;
  return sites_[static_cast<std::size_t>(site)].spec.param;
}

FaultInjector::SiteStats FaultInjector::stats(FaultSite site) const {
  const Site& s = sites_[static_cast<std::size_t>(site)];
  return SiteStats{s.hits.load(std::memory_order_relaxed),
                   s.fires.load(std::memory_order_relaxed)};
}

std::uint64_t FaultInjector::TotalFires() const {
  std::uint64_t total = 0;
  for (const Site& s : sites_) {
    total += s.fires.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace pegasus::runtime
