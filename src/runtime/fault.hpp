// Deterministic fault injection for the serving stack.
//
// Production dataplanes do not get to choose their failures: corrupted
// model envelopes, stalled shard workers, transient inference faults and
// overloaded rings all happen, and the only way to prove the system
// survives them is to make them happen on demand. This header defines the
// repo's failpoint mechanism (the libfailpoint / fail-rs idiom): named
// fault *sites* are compiled permanently into the runtime's hot paths as
// `FaultFires(site)` hooks, and a seed-driven FaultPlan arms a subset of
// them with deterministic trigger schedules.
//
// Cost when disarmed (the only state production code ever runs in): one
// relaxed atomic load of a process-global flag and a fall-through branch —
// the branch predictor learns it immediately, so Release throughput is
// unchanged (bench_stream numbers are identical with the hooks compiled
// in). Only when a plan is armed does the hook take the out-of-line slow
// path that counts hits and consults the schedule.
//
// Determinism: a site's schedule is a pure function of its hit counter
// (fire from hit `first`, every `every` hits, at most `limit` times), so a
// single-threaded run under a fixed plan is exactly reproducible. Under
// multiple threads the global hit order depends on interleaving — the soak
// tests therefore assert *invariants* (no deadlock, exact accounting,
// rollback) rather than exact fire positions. Every plan is bounded:
// `limit` is finite, so injected faults always clear and backpressure
// always drains.
//
// Arming is process-global (the hooks live in code that has no test handle
// to thread a context through); tests serialize access via FaultScope,
// which disarms on scope exit even on exception paths.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace pegasus::runtime {

/// The named fault sites compiled into the runtime. Each one lives at a
/// specific seam of the serving stack (see the table in README's
/// "Robustness & fault injection" section).
enum class FaultSite : std::uint8_t {
  /// StreamServer ingest push: the target ring pretends to be full for
  /// this round, driving the spin→yield→backoff→shed escalation ladder.
  kRingPushStall = 0,
  /// Shard worker: sleeps `param` microseconds after a burst (slow
  /// consumer — backpressure builds up but progress continues).
  kWorkerSlow = 1,
  /// Shard worker: sleeps `param` microseconds with the heartbeat frozen
  /// (stuck consumer — the watchdog must flag the stall and clear it when
  /// the worker resumes).
  kWorkerStuck = 2,
  /// Shard flush: the inference engine throws before the batch runs
  /// (transient by construction — bounded by `limit` — so the bounded
  /// retry ladder either recovers the batch or sheds it, accounted).
  kInferenceFault = 3,
  /// ModelRegistry file publish: one byte of the serialized envelope is
  /// flipped before it reaches disk (torn/corrupt write). The CRC32 check
  /// in LoadModel must reject it with CorruptArtifactError.
  kEnvelopeBitFlip = 4,
  /// ModelRegistry file publish: the envelope is truncated to half before
  /// it reaches disk. Load must reject it, never over-allocate.
  kEnvelopeTruncate = 5,
  /// StreamServer::SwapModel: the swap's engine build throws mid-publish.
  /// The transactional swap must roll every shard back to the serving
  /// model and surface SwapError.
  kSwapPublishFail = 6,
  /// io::WireParser: one byte of the frame is flipped before parsing
  /// (corrupt capture bytes). The parser must drop or mis-parse cleanly —
  /// never crash, never read out of bounds.
  kWireCorrupt = 7,
};

inline constexpr std::size_t kNumFaultSites = 8;

const char* FaultSiteName(FaultSite site);

/// One site's trigger schedule, evaluated against the site's hit counter:
/// armed sites fire on hits `first, first + every, first + 2*every, ...`
/// until `limit` fires have happened. `param` carries a site-specific
/// magnitude (stall microseconds, corruption byte seed).
struct FaultSpec {
  bool armed = false;
  std::uint64_t first = 0;
  std::uint64_t every = 1;
  std::uint64_t limit = 1;
  std::uint64_t param = 0;
};

/// A full schedule over every site. Build by hand for targeted tests or
/// via Randomized() for soak runs.
struct FaultPlan {
  std::uint64_t seed = 0;
  std::array<FaultSpec, kNumFaultSites> sites{};

  FaultSpec& at(FaultSite site) {
    return sites[static_cast<std::size_t>(site)];
  }
  const FaultSpec& at(FaultSite site) const {
    return sites[static_cast<std::size_t>(site)];
  }

  /// Arms `site` with a simple schedule (fires `limit` times starting at
  /// hit `first`, every `every` hits). Returns *this for chaining.
  FaultPlan& Arm(FaultSite site, std::uint64_t first = 0,
                 std::uint64_t every = 1, std::uint64_t limit = 1,
                 std::uint64_t param = 0);

  /// Seed-driven soak schedule over the *dataplane* sites (ring stall,
  /// slow/stuck worker, inference fault, swap failure): each site is armed
  /// with probability ~1/2 with bounded fire counts and small stall
  /// magnitudes, so any seed yields a run that stresses the escalation /
  /// retry / rollback machinery yet always drains. The artifact sites
  /// (envelope corruption, wire corruption) are left to targeted tests —
  /// they fault *inputs*, not the serving loop.
  static FaultPlan Randomized(std::uint64_t seed);
};

/// Thrown by fault sites that simulate a component failure (inference
/// engine fault, swap publish failure). Deliberately a distinct type so
/// tests can tell an injected fault from a genuine one.
class FaultInjectedError : public std::runtime_error {
 public:
  FaultInjectedError(FaultSite site, const std::string& detail);
  FaultSite site() const { return site_; }

 private:
  FaultSite site_;
};

/// Process-global fault state. Hot paths call the inline FaultFires()
/// below; everything else (arming, stats) goes through Instance().
class FaultInjector {
 public:
  struct SiteStats {
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
  };

  static FaultInjector& Instance();

  /// Installs `plan` and enables the hooks. Counters reset to zero.
  void Arm(const FaultPlan& plan);
  /// Disables the hooks (counters keep their final values for reading).
  void Disarm();
  bool armed() const;

  /// Slow path behind FaultFires(): counts a hit at `site` and reports
  /// whether the armed schedule fires on it.
  bool Hit(FaultSite site);
  /// The armed `param` of `site` (0 when disarmed).
  std::uint64_t Param(FaultSite site) const;

  SiteStats stats(FaultSite site) const;
  std::uint64_t TotalFires() const;

 private:
  FaultInjector() = default;

  struct Site {
    FaultSpec spec;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> fires{0};
  };
  std::array<Site, kNumFaultSites> sites_;
};

namespace fault_detail {
/// The one word every hook loads. Outside FaultInjector so the inline
/// fast path needs no function call at all.
extern std::atomic<bool> g_fault_enabled;
}  // namespace fault_detail

/// The hook compiled into runtime hot paths. Disarmed (always, outside
/// fault tests): one relaxed load + never-taken branch.
inline bool FaultFires(FaultSite site) {
  if (!fault_detail::g_fault_enabled.load(std::memory_order_relaxed))
      [[likely]] {
    return false;
  }
  return FaultInjector::Instance().Hit(site);
}

/// RAII arming for tests: arms `plan` on construction, disarms on scope
/// exit (exception-safe — a throwing assertion cannot leak an armed plan
/// into the next test).
class FaultScope {
 public:
  explicit FaultScope(const FaultPlan& plan) {
    FaultInjector::Instance().Arm(plan);
  }
  ~FaultScope() { FaultInjector::Instance().Disarm(); }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;
};

}  // namespace pegasus::runtime
