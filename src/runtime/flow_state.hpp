// Per-flow state *accounting* (paper §7.3, "Number of Concurrent Flows
// Supported").
//
// Sequence models need the features of the previous W-1 packets of a flow
// when a new packet arrives. Pegasus stores *fuzzy indexes* (4 or 8 bits)
// instead of raw features, which is what lets CNN-L run with 28-72 bits of
// state per flow. A FlowStateSpec declares the layout; FlowStateTable
// simulates the hash-addressed register arrays and accounts their SRAM.
//
// This is the dataplane *register-array* view: fields are addressed by flow
// hash and distinct flows may alias a slot, exactly like switch registers.
// The serving runtime keeps its per-flow state in the collision-safe,
// preallocated runtime::FlowTable instead (flow_table.hpp) and uses
// FlowStateSpec (see stream_server.hpp's OnlineFlowStateSpec) purely to
// price that state in SRAM bits.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dataplane/registers.hpp"
#include "dataplane/resources.hpp"

namespace pegasus::runtime {

/// One per-flow field: `count` instances of `bits` bits each (e.g. 7 stored
/// fuzzy indexes of 4 bits).
struct FlowStateField {
  std::string name;
  int bits = 8;
  std::size_t count = 1;
};

class FlowStateSpec {
 public:
  FlowStateSpec& Add(std::string name, int bits, std::size_t count = 1) {
    fields_.push_back(FlowStateField{std::move(name), bits, count});
    return *this;
  }

  const std::vector<FlowStateField>& fields() const { return fields_; }

  /// Logical bits per flow — the "Stateful bits/flow" column of Table 6.
  std::size_t BitsPerFlow() const {
    std::size_t bits = 0;
    for (const auto& f : fields_) {
      bits += static_cast<std::size_t>(f.bits) * f.count;
    }
    return bits;
  }

  /// SRAM bits needed to support `flows` concurrent flows (Figure 7's
  /// X-axis), including hardware slot rounding and hash-table overhead.
  std::size_t SramBitsFor(std::size_t flows) const {
    return dataplane::PerFlowSramBits(BitsPerFlow(), flows);
  }

 private:
  std::vector<FlowStateField> fields_;
};

/// Simulated per-flow storage backed by register arrays. Field instances
/// are addressed as (field index, instance index).
class FlowStateTable {
 public:
  FlowStateTable(FlowStateSpec spec, std::size_t num_flows);

  const FlowStateSpec& spec() const { return spec_; }

  std::int64_t Read(const dataplane::FlowKey& key, std::size_t field,
                    std::size_t instance = 0) const;
  void Write(const dataplane::FlowKey& key, std::size_t field,
             std::size_t instance, std::int64_t value);

  /// Shifts instance i -> i+1 within a field (dropping the oldest) and
  /// writes `value` at instance 0 — the per-packet window update.
  void PushWindow(const dataplane::FlowKey& key, std::size_t field,
                  std::int64_t value);

  std::size_t SramBits() const;

 private:
  FlowStateSpec spec_;
  // arrays_[field][instance]
  std::vector<std::vector<dataplane::RegisterArray>> arrays_;
};

}  // namespace pegasus::runtime
