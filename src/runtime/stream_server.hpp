// StreamServer — the sharded streaming flow-serving runtime (paper §7.3's
// deployment story: a switch classifying live per-flow traffic, scaled out
// the way a software dataplane would shard it).
//
// One server owns N shards. A packet is routed to shard
// ShardIndexOf(flow digest, N); the shard looks its flow up in a
// preallocated open-addressing FlowTable (runtime/flow_table.hpp) holding
// the flow's OnlineFlowState (running min/max, stored fuzzy indexes, raw
// window — traffic/stream.hpp), updates it in place, and once the window is
// full renders the model's feature family into the shard's batch buffer.
// Full batches flush through the shard's private InferenceEngine
// (Pipeline::ProcessBatch under the hood), turning per-packet inference
// into entry-major batched table matches. The per-packet path performs no
// heap allocation — flow state, batch rows, logits and the PHV pool are all
// preallocated. Decisions append to per-shard sinks that the caller merges
// after Stop() (TakeDecisions); Serve(span) sizes each sink from the
// trace's *observed* shard shares (an exact routing pre-pass), so a skewed
// flow-hash distribution no longer grows a hot shard's vector mid-run.
//
// Execution modes:
//  * single-threaded (default): Push() processes synchronously in trace
//    order — fully deterministic, the mode the parity tests pin down;
//  * multi-threaded: Start() spawns one worker per shard; packets reach a
//    shard through its SPSC ring and the worker drains them in bursts
//    (SpscQueue::TryPopBurst — one cursor publish per burst, with a
//    FlowTable::Prefetch pass over the burst's keys before processing).
//    Ingest does only digest routing; ALL per-packet work (flow lookup,
//    feature extraction, inference) runs on the shard core where the
//    flow's state is cache-resident. Because a flow maps to exactly one
//    shard and the ring preserves order, every shard sees the same packet
//    sequence as in single-threaded mode — per-flow decisions are
//    identical, only cross-shard interleaving differs.
//  * multi-ingest (multi-threaded + Serve(PartitionedPacketSource&)):
//    num_ingest threads each pull their own digest-disjoint partition and
//    feed only the shards they own (shard % num_ingest == ingest), staging
//    packets into per-shard burst buffers flushed with TryPushBurst —
//    RSS-style receive scaling with no shared dispatch point at all. The
//    partition function MUST agree with IngestPartitionOf: a packet whose
//    shard belongs to another ingest thread cannot be enqueued (the rings
//    are single-producer) and is shed + counted (ShedStats::misrouted).
//
// Overload story (SFC-style near-source signaling): when a shard's ring
// stays full, the ingest side walks a bounded escalation ladder — busy
// spin, then sched_yield, then exponential-backoff sleeps — and only once
// the whole ladder is exhausted with zero progress does it shed the
// packets instead of stalling the whole ingest loop, counting them per
// shard and per reason (StreamServerStats::shed / shard_shed). Shedding is
// OFF by default — ingest then parks at the ladder's top rung and retries
// forever (pure backpressure), the configuration under which MT == ST
// decision equality is exact: the ladder changes only timing, never
// outcomes.
//
// Self-healing (fault story, see runtime/fault.hpp and tests/
// test_fault.cpp): every shard worker maintains heartbeat/progress
// counters; a watchdog thread samples them and flags a shard whose
// heartbeat stagnates while its ring holds work (stall detection is
// self-clearing when the worker resumes). Health() reports the per-shard
// picture lock-free WHILE the server runs — unlike Stats(), which needs
// quiescence. A batch whose engine throws is retried on a bounded
// backoff ladder and then shed (counted as ShedStats::inference), so a
// transient inference fault degrades throughput, never liveness. SwapModel
// is transactional: a publish failure anywhere rolls every shard back to
// the serving model and surfaces SwapError — the server never runs mixed
// versions and never loses its serving model to a failed push.
//
// Bit-exactness: with a large enough flow table (no evictions) the per-
// packet decisions equal the offline Extract*Features +
// eval::PredictClassesLowered path bit for bit — asserted by
// tests/test_stream_server.cpp. Under eviction pressure a re-inserted flow
// restarts its window (counted in the stats), exactly like a switch whose
// register slot was reclaimed.
//
// Hitless model hot-swap (the control plane's retrain-and-push story):
// shards serve through an epoch/RCU-style shared_ptr<const ServingState>
// handle. SwapModel(model, version) retires the active model at a *packet
// boundary*: every packet pushed before the call is decided by the old
// version, every packet after by the new one. In single-threaded mode the
// swap applies synchronously between Push calls; in multi-threaded mode it
// rides each shard's SPSC ring as an in-band control item, so a shard
// applies it after exactly the packets enqueued before the call — the swap
// point in every per-shard (and therefore per-flow) packet sequence is
// identical in both modes, and MT == ST decision equality holds across the
// swap. (SwapModel is a producer-side call: it must come from the thread
// calling Push, and must not race a running Serve(PartitionedPacketSource&)
// — the ingest threads own the rings' producer cursors for that span.)
// Per-flow state in the FlowTables survives (feature extraction is
// model-independent): a flow whose window was full keeps producing a
// decision per packet straight through the swap, with no re-warm-up. The
// shard flushes its partial batch through the outgoing engine first, so no
// decision is lost or reordered; each decision carries the version that
// produced it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runtime/affinity.hpp"
#include "runtime/flow_state.hpp"
#include "runtime/flow_table.hpp"
#include "runtime/inference_engine.hpp"
#include "runtime/packet_source.hpp"
#include "telemetry/exposition.hpp"
#include "telemetry/telemetry.hpp"
#include "traffic/stream.hpp"

namespace pegasus::runtime {

/// Which feature family feeds the model (stat and seq are both 16-dim, so
/// the input width alone cannot disambiguate).
enum class FeatureKind { kStat, kSeq, kRaw };

std::size_t FeatureDim(FeatureKind kind);
const char* FeatureKindName(FeatureKind kind);

/// Per-flow register layout of OnlineFlowState for dataplane SRAM
/// accounting (Table 6's "Stateful bits/flow" column, now backed by the
/// actual serving structure): min/max statistics, the stored fuzzy-index
/// rings, the previous-packet timestamp, and — for the raw family — the
/// raw-byte window.
FlowStateSpec OnlineFlowStateSpec(FeatureKind kind);

/// The bounded backpressure ladder a producer walks while a shard's ring
/// stays full: `spin` busy retries, then `yield` sched_yield retries, then
/// `backoff` sleeps doubling from `backoff_start_us` up to
/// `backoff_max_us`. Any successful push resets the ladder. Once the
/// ladder is exhausted with zero progress the producer sheds (when
/// StreamServerOptions::shed) or parks at the top rung and keeps retrying
/// (pure backpressure — the default, under which MT == ST equality is
/// exact). Replaces the old flat `shed_spin` counter: overload now costs
/// escalating-but-bounded CPU instead of a hot spin, and the shed decision
/// happens after a principled amount of waiting instead of N failed CAS
/// loops.
struct EscalationPolicy {
  std::size_t spin = 64;
  std::size_t yield = 128;
  std::size_t backoff = 64;
  std::uint64_t backoff_start_us = 1;
  std::uint64_t backoff_max_us = 256;

  std::size_t rounds() const { return spin + yield + backoff; }
  /// Shed on the very first failed push (the old `shed_spin = 0` idiom).
  static EscalationPolicy Immediate() { return {0, 0, 0, 0, 0}; }
};

/// Thrown by SwapModel when publishing the new model fails. The swap is
/// transactional: by the time this surfaces, every shard has been rolled
/// back to (or never left) the previously serving model.
class SwapError : public std::runtime_error {
 public:
  explicit SwapError(const std::string& what) : std::runtime_error(what) {}
};

struct StreamServerOptions {
  std::size_t num_shards = 1;
  /// FlowTable capacity per shard (rounded up to a power of two).
  std::size_t flows_per_shard = 1 << 12;
  /// Probe bound of each shard's FlowTable.
  std::size_t max_probe = 8;
  /// Physical layout + eviction policy of each shard's FlowTable (split
  /// hot/cold lanes by default; interleaved is the measured baseline —
  /// bench_flowscale A/Bs the two). Both eviction policies are
  /// deterministic; LRU is the default the equality proofs pin down.
  FlowTableLayout table_layout = FlowTableLayout::kSplit;
  FlowTableEviction table_eviction = FlowTableEviction::kLru;
  /// Inference batch size per shard (also the engine's PHV pool size).
  std::size_t batch_size = InferenceEngine::kDefaultBatchCapacity;
  FeatureKind feature = FeatureKind::kSeq;
  /// false: Push() processes synchronously. true: Start()/Stop() run one
  /// worker thread per shard fed by SPSC rings.
  bool multithreaded = false;
  /// Per-shard SPSC ring capacity (multi-threaded mode).
  std::size_t queue_capacity = 1 << 12;
  /// Ingest threads for Serve(PartitionedPacketSource&). Thread t owns the
  /// shards where shard % num_ingest == t and is the sole producer on
  /// their rings.
  std::size_t num_ingest = 1;
  /// Ring transfer granularity: ingest stages up to this many packets per
  /// shard before a TryPushBurst, and workers drain up to this many per
  /// TryPopBurst — one cursor publish per burst instead of per packet.
  std::size_t burst = 64;
  /// Deterministic overload shedding. false (default): a full ring applies
  /// backpressure — ingest walks the escalation ladder and then parks at
  /// its top rung retrying forever, and MT == ST decision equality is
  /// exact. true: once the ladder is exhausted with no progress, the
  /// packets are dropped near the source and counted per shard/per reason
  /// instead of stalling ingest.
  bool shed = false;
  /// The spin → yield → backoff ladder walked on a full ring (see
  /// EscalationPolicy; EscalationPolicy::Immediate() sheds on the first
  /// failed push).
  EscalationPolicy escalation;
  /// Watchdog sampling interval (multi-threaded mode; 0 disables the
  /// watchdog thread). Each tick samples every shard's heartbeat and ring
  /// depth.
  std::uint64_t watchdog_interval_us = 1000;
  /// Consecutive stagnant samples (heartbeat unchanged while the ring
  /// holds work) before a shard is flagged stalled. The flag self-clears
  /// when the heartbeat advances again.
  std::size_t watchdog_stall_intervals = 4;
  /// Bounded retries of a failing InferenceEngine::Infer call before the
  /// batch is shed (ShedStats::inference). Retry k sleeps
  /// k * inference_retry_backoff_us first.
  std::size_t inference_retries = 3;
  std::uint64_t inference_retry_backoff_us = 50;
  /// Core placement of shard workers and ingest threads in multi-threaded
  /// mode (runtime/affinity.hpp): kNone leaves scheduling to the OS;
  /// kCompact / kScatter / kExplicit pin each thread to a CPU. With any
  /// pinning policy (and in MT mode generally) a shard's FlowTable is
  /// constructed on its worker thread, so first-touch places the table's
  /// pages on the worker's NUMA node — the worker probes local memory.
  /// The plan is validated at construction (kExplicit needs a non-empty
  /// worker_cpus list; CPU ids must be < OnlineCpuCount()).
  CpuPinPolicy pin_policy = CpuPinPolicy::kNone;
  /// Explicit CPU lists (pin_policy == kExplicit only): thread i pins to
  /// list[i % list.size()]. An empty ingest list leaves ingest unpinned.
  std::vector<int> worker_cpus;
  std::vector<int> ingest_cpus;
  /// Observability (src/telemetry/): stage-latency sampling, flight-
  /// recorder tracing, live counters. Default-constructed = detached =
  /// the zero-overhead shape (one null-pointer test per packet); see
  /// telemetry::TelemetryOptions. MT == ST decision equality holds at
  /// every setting — telemetry observes, never steers.
  telemetry::TelemetryOptions telemetry;
};

/// One per-packet classification (or anomaly score) produced by the server.
struct StreamDecision {
  std::uint64_t flow_digest = 0;
  /// TracePacket.flow / .index of the packet that triggered the decision.
  std::uint32_t flow = 0;
  std::uint32_t index = 0;
  std::int32_t label = 0;
  /// Argmax class over the dequantized outputs (0 for 1-output models).
  std::int32_t predicted = 0;
  /// The winning output value (top logit, or the anomaly score for
  /// 1-output models such as the AutoEncoder).
  float score = 0.0f;
  /// End-to-end latency of the packet that produced this decision
  /// (push/ingest-stamp -> decision emit), filled only when telemetry
  /// sampling picked the packet; 0 otherwise. Lets eval correlate
  /// accuracy with serving latency per model version (sits in what was
  /// the padding hole before `version` — StreamDecision stays 40 bytes).
  std::uint32_t latency_ns = 0;
  /// Model version that produced this decision (see SwapModel).
  std::uint64_t version = 0;
};

/// The immutable per-epoch serving snapshot shards point at. A swap
/// publishes a new ServingState; shards drop their reference at the next
/// packet boundary and the old model is reclaimed when the last shard (and
/// the control plane's registry) lets go — classic RCU grace period, with
/// shared_ptr as the epoch counter.
struct ServingState {
  std::uint64_t version = 0;
  std::shared_ptr<const LoweredModel> model;
};

/// Packets dropped instead of decided, by reason. ring_full and misrouted
/// are shed near the source (never enqueued); inference is shed at the
/// shard (processed into a batch whose engine kept failing). The exact
/// accounting identity the fault soak pins down:
///   offered == stats.packets + shed.ring_full + shed.misrouted
///   stats.packets == stats.decisions + stats.warmup + shed.inference
struct ShedStats {
  /// Ring stayed full through the whole escalation ladder with zero
  /// progress (overload; only with StreamServerOptions::shed).
  std::uint64_t ring_full = 0;
  /// Partition function disagreed with the server's shard->ingest map:
  /// the packet's shard ring belongs to another ingest thread, so
  /// enqueueing it would break the single-producer invariant. Always
  /// counted (zero under a correct partitioner).
  std::uint64_t misrouted = 0;
  /// Packets whose batch was dropped after the bounded inference retry
  /// ladder was exhausted (transient engine faults; zero in normal runs).
  std::uint64_t inference = 0;

  std::uint64_t total() const { return ring_full + misrouted + inference; }
  ShedStats& operator+=(const ShedStats& o) {
    ring_full += o.ring_full;
    misrouted += o.misrouted;
    inference += o.inference;
    return *this;
  }
};

/// One shard's liveness picture, sampled lock-free from the worker's
/// progress counters (see ServerHealth).
struct ShardHealth {
  /// Worker loop iterations (ticks even when idle — a live-but-idle
  /// worker keeps beating; only a genuinely wedged one goes quiet).
  std::uint64_t heartbeat = 0;
  /// Ring items the worker has handled (packets + control items).
  std::uint64_t processed = 0;
  /// Approximate ring occupancy right now.
  std::size_t ring_depth = 0;
  /// High-watermark ring occupancy observed by the worker since the last
  /// ResetStats(): the burst size in hand plus what remained queued at
  /// each drain. An instantaneous ring_depth misses transients entirely;
  /// the HWM is the backlog signal capacity planning actually wants.
  /// Always tracked (telemetry attached or not); 0 in single-threaded
  /// mode (no ring).
  std::size_t ring_depth_hwm = 0;
  /// The watchdog's current verdict: heartbeat stagnant for
  /// watchdog_stall_intervals samples while the ring held work.
  bool stalled = false;
  /// Times this shard has been flagged stalled (a recovered stall stays
  /// counted).
  std::uint64_t stall_events = 0;
};

/// Server liveness report. Unlike Stats() this is readable WHILE the
/// server runs — every field loads from an atomic — so an operator (or
/// the fault soak) can watch a live dataplane degrade and recover.
struct ServerHealth {
  bool running = false;
  std::uint64_t watchdog_checks = 0;
  /// Sum of per-shard stall_events.
  std::uint64_t stall_events = 0;
  /// Shards currently flagged stalled.
  std::size_t stalled_shards = 0;
  std::vector<ShardHealth> shards;

  /// No shard is currently wedged (historical, recovered stalls are fine).
  bool healthy() const { return stalled_shards == 0; }
};

struct StreamServerStats {
  std::uint64_t packets = 0;
  /// Packets that produced an inference (window full, batched + flushed).
  std::uint64_t decisions = 0;
  /// Packets absorbed into per-flow state before the window filled.
  std::uint64_t warmup = 0;
  std::uint64_t batches = 0;
  /// Packets shed at ingest, aggregated / per shard. packets + shed.total()
  /// equals the offered load.
  ShedStats shed;
  std::vector<ShedStats> shard_shed;
  /// Per-shard processed-packet counts (same indexing as shard_shed), so
  /// the offered == packets + shed identity can be checked shard by shard.
  std::vector<std::uint64_t> shard_packets;
  /// Aggregated over all shards, occupancy snapshot included
  /// (table.resident / table.slots sum each shard's live entries and
  /// capacity, so table.LoadFactor() is the server-wide load factor; the
  /// probe-length histogram sums per-shard histograms).
  FlowTableStats table;
  /// Batched-engine work counters, aggregated over all shards and across
  /// model swaps (engines retired by SwapModel fold their counters into a
  /// per-shard carry, so every inferred packet stays accounted).
  InferenceEngine::Stats engine;
  std::size_t flows_resident = 0;
  /// Register accounting: logical bits per flow and the SRAM footprint of
  /// all shards' flow tables (dataplane::FlowTableSramBits).
  std::size_t stateful_bits_per_flow = 0;
  std::size_t flow_table_sram_bits = 0;
  /// Model lifecycle: swap applications summed over shards (one SwapModel
  /// call = num_shards applications; a rolled-back swap counts its
  /// forward and rollback rebuilds) and the total wall time shards spent
  /// flushing + rebuilding engines, i.e. the per-shard serving gap.
  std::uint64_t swaps = 0;
  double swap_wall_ms = 0.0;
  /// O(delta) update path (SwapModelDelta): successful delta publishes,
  /// the control-plane bytes they pushed, and the dataplane's own delta
  /// counters aggregated from the patched model's match indexes
  /// (Pipeline::IndexReport) — leaf words rewritten in place, full
  /// reseals avoided, and clone+patch wall time on the producer thread.
  std::uint64_t delta_swaps = 0;
  std::uint64_t delta_bytes_pushed = 0;
  std::uint64_t deltas_applied = 0;
  std::uint64_t leaf_words_patched = 0;
  std::uint64_t reseals_avoided = 0;
  std::uint64_t delta_apply_ns = 0;
  double delta_swap_wall_ms = 0.0;
  /// Version of the model the server is currently serving.
  std::uint64_t active_version = 0;
  /// Self-healing counters: Infer() exceptions absorbed (including ones a
  /// retry recovered), batches dropped after the retry ladder, watchdog
  /// samples taken, and stall flags raised across the run.
  std::uint64_t inference_faults = 0;
  std::uint64_t batches_dropped = 0;
  std::uint64_t watchdog_checks = 0;
  std::uint64_t stall_events = 0;

  /// Zeroes every counter (a fresh value-initialized snapshot).
  void Reset() { *this = {}; }
};

class StreamServer {
 public:
  /// Serves `model` as version `version`. The model must consume
  /// FeatureDim(opts.feature) inputs; throws std::invalid_argument
  /// otherwise. Shared ownership keeps the artifact alive across swaps
  /// even if the registry drops it.
  StreamServer(std::shared_ptr<const LoweredModel> model,
               StreamServerOptions opts = {}, std::uint64_t version = 1);

  /// Borrowing convenience (pre-lifecycle API): `model` must outlive the
  /// server AND any model published later via SwapModel must not be needed
  /// past the server either — prefer the shared_ptr overload.
  explicit StreamServer(const LoweredModel& model,
                        StreamServerOptions opts = {});
  ~StreamServer();

  StreamServer(const StreamServer&) = delete;
  StreamServer& operator=(const StreamServer&) = delete;

  const StreamServerOptions& options() const { return opts_; }
  std::size_t num_shards() const { return shards_.size(); }
  /// Version most recently published to the shards (shards in MT mode may
  /// still be draining packets enqueued before the swap).
  std::uint64_t active_version() const { return serving_->version; }

  /// The shard routing map: high bits of the mixed digest, modulo the
  /// shard count (FlowTable slot selection uses the low bits — decorrelated
  /// views of the same mix).
  static std::size_t ShardIndexOf(std::uint64_t digest,
                                  std::size_t num_shards) {
    return (MixDigest(digest) >> 32) % num_shards;
  }

  /// The ingest thread owning `digest`'s shard under this server's
  /// geometry — the partition function Serve(PartitionedPacketSource&)
  /// expects its source to be split by.
  std::size_t IngestPartitionOf(std::uint64_t digest) const {
    return ShardIndexOf(digest, shards_.size()) % opts_.num_ingest;
  }

  /// Routes one packet to its shard. Single-threaded mode processes it
  /// synchronously; multi-threaded mode (after Start()) enqueues it,
  /// spinning if the shard's ring is full (or shedding, when enabled).
  /// The caller is the single producer — do not mix with a concurrent
  /// Serve(PartitionedPacketSource&).
  void Push(const traffic::TracePacket& packet);

  /// Hitless hot swap: every packet pushed before this call is decided by
  /// the previous model, every packet pushed after by `model`; partial
  /// batches flush through the outgoing engine, per-flow state survives.
  /// Call from the producer thread (the one calling Push). Requires the
  /// same input dim as the serving feature family (the output dim may
  /// change) and a strictly increasing version; throws
  /// std::invalid_argument otherwise.
  ///
  /// Transactional: if publishing fails (engine build throws — exercised
  /// by fault site kSwapPublishFail), every shard is rolled back to (or in
  /// multi-threaded mode never leaves) the previously serving model and
  /// SwapError is thrown; active_version() is unchanged and a retry with
  /// the same version number is legal.
  void SwapModel(std::shared_ptr<const LoweredModel> model,
                 std::uint64_t version);

  /// O(delta) hot swap: instead of publishing a freshly lowered artifact,
  /// clones the serving model (tables, placement and compiled match
  /// indexes — no re-lowering), applies the planner's entry patches in
  /// place on the clone (MatchIndex::ApplyDelta), and publishes the clone
  /// through the identical epoch handoff as SwapModel — single-threaded
  /// at the packet boundary, multi-threaded in-band through the rings.
  /// MT == ST decision equality and the transactional guarantee carry
  /// over unchanged: on publish failure the patched clone is discarded,
  /// SwapError is thrown and active_version() still names the old model.
  ///
  /// `patches` must come from control::CollectPatches on an UpdatePlan
  /// against the serving version (no structure change, no reseals); a
  /// patch the dataplane cannot absorb in place throws
  /// std::invalid_argument before anything is published. Call from the
  /// producer thread; requires a strictly increasing version.
  void SwapModelDelta(std::span<const dataplane::TablePatch> patches,
                      std::uint64_t version);

  /// Flushes every shard's partial batch (single-threaded mode; in
  /// multi-threaded mode Stop() flushes instead).
  void Flush();

  /// Multi-threaded mode only: spawn / drain-and-join the shard workers.
  void Start();
  void Stop();

  /// Replays a whole trace: Start + Push each packet + Stop (or Push +
  /// Flush in single-threaded mode) and returns the decisions. Per-shard
  /// decision sinks are reserved from the trace's observed shard shares.
  std::vector<StreamDecision> Serve(
      std::span<const traffic::TracePacket> trace);

  /// Pull-based ingestion: drains `source` (a merged trace, a pcap capture
  /// decoded on the fly, or a pacing io::TraceReplayer) through the shard
  /// rings in bursts. Sources may reuse their packet buffer between Next
  /// calls — the multi-threaded rings carry the payload by value.
  std::vector<StreamDecision> Serve(PacketSource& source);

  /// Multi-ingest ingestion: spawns opts.num_ingest threads (partition 0
  /// runs on the calling thread), each pulling its own partition of
  /// `source` and feeding only the shards it owns. Requires
  /// source.partitions() == opts.num_ingest in multi-threaded mode; the
  /// partition split must follow IngestPartitionOf (misrouted packets are
  /// shed + counted, never enqueued). Single-threaded mode drains the
  /// partitions sequentially — per-flow decisions are identical either
  /// way (with shedding off), since a flow lives in exactly one partition.
  std::vector<StreamDecision> Serve(PartitionedPacketSource& source);

  /// Moves out the accumulated decisions, shard-major (within a shard:
  /// processing order). Throws std::logic_error while workers are running
  /// (the shards are owned by their worker threads until Stop()).
  std::vector<StreamDecision> TakeDecisions();

  /// Aggregated over shards. Throws std::logic_error while workers are
  /// running — reading shard counters mid-run would race the workers.
  StreamServerStats Stats() const;

  /// Liveness report, callable from any thread at any time (including
  /// while workers run — every field is sampled from atomics). This is
  /// the observer the watchdog feeds; Stats() remains the quiesced,
  /// exact-counters view.
  ServerHealth Health() const;

  /// Live observability snapshot: merged per-stage latency histograms
  /// with p50/p90/p99/p999, per-shard counters/gauges (processed,
  /// decisions, ring depth + high watermark, shed, table hit/miss) and
  /// trace-ring occupancy. Same callable-anytime contract as Health() —
  /// every source field is an atomic. With telemetry detached
  /// (options().telemetry.Attached() == false) only the health-backed
  /// fields are populated and `attached` is false. Serialize with
  /// telemetry::WriteJson / WritePrometheus.
  telemetry::TelemetrySnapshot TelemetrySnapshot() const;

  /// Merged, time-ordered flight-recorder dump (empty when telemetry is
  /// detached or trace_events == 0). Callable while running.
  std::vector<telemetry::TraceEvent> DumpTrace() const;

  /// DumpTrace() serialized as the structured trace JSON that
  /// tools/trace_to_chrome.py converts for Perfetto.
  void WriteTrace(std::ostream& os) const;

  /// Zeroes the per-shard packet/decision/batch/swap/shed counters, the
  /// flow tables' stats and the engines' work counters — resident flow
  /// state and the active model stay untouched, so callers can report
  /// per-phase numbers (e.g. before vs after a swap). Throws
  /// std::logic_error while workers are running.
  void ResetStats();

 private:
  struct Shard;
  struct ShardItem;

  Shard& ShardOf(std::uint64_t digest);
  /// `stamp` is the packet's telemetry enqueue stamp (Stamp32; 0 =
  /// unsampled): nonzero triggers stage timing and flows into the
  /// decision's latency_ns.
  void Process(Shard& shard, const traffic::TracePacket& packet,
               std::uint32_t stamp);
  void FlushShard(Shard& shard);
  /// Rebuilds the shard's engine over `next` at a packet boundary.
  /// `inject_faults` gates the kSwapPublishFail site: true only on the
  /// producer-driven single-threaded apply (which can roll back); the
  /// worker-side in-band apply and the rollback path run fault-free.
  void ApplySwap(Shard& shard, std::shared_ptr<const ServingState> next,
                 bool inject_faults);
  /// Shared publish tail of SwapModel / SwapModelDelta: transactional
  /// single-threaded apply-with-rollback, or multi-threaded probe build +
  /// in-band control items. Throws SwapError on publish failure with
  /// `serving_` unchanged.
  void PublishState(std::shared_ptr<const ServingState> next);
  void WorkerLoop(Shard& shard, int cpu);
  void WatchdogLoop();
  /// Burst-pushes `items` onto the shard's ring: yields under backpressure,
  /// sheds the un-pushed remainder once the no-progress spin budget is
  /// exhausted (shedding mode only).
  void PushStage(Shard& shard, std::span<ShardItem> items);
  /// One ingest thread: pulls partition `t` of `source`, stages packets
  /// into per-shard burst buffers, flushes them with PushStage. `fanout`
  /// is the total ingest thread count (shard ownership: shard % fanout).
  void IngestLoop(PartitionedPacketSource& source, std::size_t t,
                  std::size_t fanout);

  StreamServerOptions opts_;
  traffic::OnlineFeatureExtractor extractor_;
  std::size_t dim_ = 0;
  /// Producer-side view of the active epoch (shards hold their own
  /// references; in MT mode the handle reaches them in-band through the
  /// rings, so no cross-thread load happens on the hot path).
  std::shared_ptr<const ServingState> serving_;
  /// Producer-side O(delta) accounting (written only by SwapModelDelta on
  /// the producer thread, read by the quiesced Stats()): successful delta
  /// publishes, bytes pushed, match-index delta counters accumulated from
  /// each patched clone, and clone+patch wall time.
  std::uint64_t delta_swaps_ = 0;
  std::uint64_t delta_bytes_pushed_ = 0;
  std::uint64_t deltas_applied_ = 0;
  std::uint64_t leaf_words_patched_ = 0;
  std::uint64_t reseals_avoided_ = 0;
  std::uint64_t delta_apply_ns_ = 0;
  double delta_swap_wall_ms_ = 0.0;
  /// Per-thread CPU assignment resolved from opts_.pin_policy at
  /// construction (-1 entries = unpinned).
  PinPlan pin_plan_;
  /// Observability (null when opts_.telemetry is detached — the hot-path
  /// cost of "off" is one pointer test). Shards hold a raw pointer to
  /// their block; the control ring takes producer/watchdog events.
  std::unique_ptr<telemetry::ServerTelemetry> tele_;
  /// Producer-side 1-in-N countdown for Push() (both modes; the ingest
  /// threads carry their own).
  telemetry::Sampler push_sampler_;
  /// Mirror of serving_->version readable from any thread (serving_
  /// itself is producer-owned): TelemetrySnapshot's live version field.
  std::atomic<std::uint64_t> published_version_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> closed_{false};
  /// Written by Start/Stop on the producer thread; atomic so Health() can
  /// read it from any thread.
  std::atomic<bool> running_{false};
  /// Watchdog thread (MT mode, watchdog_interval_us > 0): samples shard
  /// heartbeats, flags/clears stalls.
  std::thread watchdog_;
  std::atomic<bool> watchdog_stop_{false};
  std::atomic<std::uint64_t> watchdog_checks_{0};
};

}  // namespace pegasus::runtime
