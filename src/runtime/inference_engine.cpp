#include "runtime/inference_engine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "fixedpoint/fixedpoint.hpp"

namespace pegasus::runtime {

InferenceEngine::InferenceEngine(const LoweredModel& model,
                                 std::size_t batch_capacity)
    : model_(&model) {
  if (batch_capacity == 0) {
    throw std::invalid_argument("InferenceEngine: batch_capacity must be > 0");
  }
  // Lower() places every table through Pipeline::PlaceTable, which seals
  // it; assert that here so the batched hot loop is guaranteed to serve
  // from compiled match indexes, never the linear fallback.
  if (!model.pipeline().FullySealed()) {
    throw std::logic_error(
        "InferenceEngine: lowered pipeline has unsealed tables");
  }
  pool_.reserve(batch_capacity);
  for (std::size_t i = 0; i < batch_capacity; ++i) {
    pool_.emplace_back(model.layout());
  }
  raw_scratch_.resize(batch_capacity * model.OutputDim());
  pipeline_generation_ = model.pipeline().Generation();
}

void InferenceEngine::RunChunk(const float* rows, std::size_t n) {
  // Use-after-invalidate guard: the pipeline must not have been resealed
  // or mutated since this engine snapshotted it.
  assert(model_->pipeline().Generation() == pipeline_generation_ &&
         "InferenceEngine: pipeline mutated under a live engine");
  const auto& input_fields = model_->input_fields();
  const auto& parser_inits = model_->parser_inits();
  const std::size_t in_dim = input_fields.size();
  const std::int64_t dmax = (std::int64_t{1} << model_->input_bits()) - 1;
  for (std::size_t i = 0; i < n; ++i) {
    dataplane::Phv& phv = pool_[i];
    phv.Reset();
    const float* row = rows + i * in_dim;
    for (std::size_t d = 0; d < in_dim; ++d) {
      const std::int64_t u =
          std::clamp<std::int64_t>(std::llround(row[d]), 0, dmax);
      phv.Set(input_fields[d], u);
    }
    for (const auto& [field, value] : parser_inits) {
      phv.Set(field, value);
    }
  }
  stats_.table_hits +=
      model_->pipeline().ProcessBatch(std::span<dataplane::Phv>(pool_.data(), n));
  stats_.packets += n;
  ++stats_.chunks;
}

void InferenceEngine::InferRaw(std::span<const float> features, std::size_t n,
                               std::span<std::int64_t> out_raw) {
  const std::size_t in_dim = input_dim();
  const std::size_t out_dim = output_dim();
  if (features.size() != n * in_dim) {
    throw std::invalid_argument("InferenceEngine::InferRaw: feature buffer "
                                "size does not match n x input_dim");
  }
  if (out_raw.size() != n * out_dim) {
    throw std::invalid_argument("InferenceEngine::InferRaw: output buffer "
                                "size does not match n x output_dim");
  }
  const auto& output_fields = model_->output_fields();
  const auto& output_quant = model_->output_quant();
  std::size_t done = 0;
  while (done < n) {
    const std::size_t chunk = std::min(n - done, pool_.size());
    RunChunk(features.data() + done * in_dim, chunk);
    for (std::size_t i = 0; i < chunk; ++i) {
      std::int64_t* out_row = out_raw.data() + (done + i) * out_dim;
      const dataplane::Phv& phv = pool_[i];
      for (std::size_t d = 0; d < out_dim; ++d) {
        out_row[d] = phv.Get(output_fields[d]) - output_quant[d].bias;
      }
    }
    done += chunk;
  }
}

void InferenceEngine::Infer(std::span<const float> features, std::size_t n,
                            std::span<float> out) {
  const std::size_t in_dim = input_dim();
  const std::size_t out_dim = output_dim();
  if (features.size() != n * in_dim) {
    throw std::invalid_argument("InferenceEngine::Infer: feature buffer "
                                "size does not match n x input_dim");
  }
  if (out.size() != n * out_dim) {
    throw std::invalid_argument("InferenceEngine::Infer: output buffer "
                                "size does not match n x output_dim");
  }
  const auto& output_quant = model_->output_quant();
  std::size_t done = 0;
  while (done < n) {
    const std::size_t chunk = std::min(n - done, pool_.size());
    const std::span<std::int64_t> raw(raw_scratch_.data(), chunk * out_dim);
    InferRaw(features.subspan(done * in_dim, chunk * in_dim), chunk, raw);
    for (std::size_t i = 0; i < chunk * out_dim; ++i) {
      out[done * out_dim + i] = static_cast<float>(
          fixedpoint::Dequantize(raw[i], output_quant[i % out_dim].fmt));
    }
    done += chunk;
  }
}

std::vector<std::int64_t> InferenceEngine::InferRaw(
    std::span<const float> features) {
  if (features.size() != input_dim()) {
    throw std::invalid_argument(
        "InferenceEngine::InferRaw: feature dim mismatch");
  }
  std::vector<std::int64_t> raw(output_dim());
  InferRaw(features, 1, raw);
  return raw;
}

std::vector<float> InferenceEngine::Infer(std::span<const float> features) {
  if (features.size() != input_dim()) {
    throw std::invalid_argument(
        "InferenceEngine::Infer: feature dim mismatch");
  }
  std::vector<float> out(output_dim());
  Infer(features, 1, out);
  return out;
}

}  // namespace pegasus::runtime
