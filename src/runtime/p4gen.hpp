// P4-16 code generation — the artifact the paper's Pegasus-Syntax
// translator produces for the real switch (§6.2: "To support the
// translation of Pegasus Syntax into P4 language, we developed a
// translation tool").
//
// EmitP4 renders a CompiledModel as a Tofino-flavoured P4 control block:
// a metadata struct with one field per materialized value dimension,
// one action + table per Map op (ternary or range match keys, exact sizes
// from the fuzzy tables), accumulator initialization in the parser-state
// comment, and a dependency-ordered apply block. Table *entries* are
// control-plane state, so they are summarized in comments rather than
// inlined (as on real deployments, where the agent installs them at
// runtime).
#pragma once

#include <string>

#include "core/tablegen.hpp"

namespace pegasus::runtime {

struct P4GenOptions {
  std::string control_name = "PegasusIngress";
  /// Same threshold the lowering uses to pick ternary vs range match.
  std::size_t max_ternary_entries_per_table = 4096;
};

/// Renders the model as P4-16 source text.
std::string EmitP4(const core::CompiledModel& model,
                   const P4GenOptions& options = {});

}  // namespace pegasus::runtime
