#include "runtime/stream_server.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "runtime/fault.hpp"
#include "runtime/spsc_queue.hpp"

namespace pegasus::runtime {

std::size_t FeatureDim(FeatureKind kind) {
  switch (kind) {
    case FeatureKind::kStat:
      return traffic::kStatDim;
    case FeatureKind::kSeq:
      return traffic::kSeqDim;
    case FeatureKind::kRaw:
      return traffic::kRawDim;
  }
  throw std::invalid_argument("FeatureDim: unknown kind");
}

const char* FeatureKindName(FeatureKind kind) {
  switch (kind) {
    case FeatureKind::kStat:
      return "stat";
    case FeatureKind::kSeq:
      return "seq";
    case FeatureKind::kRaw:
      return "raw";
  }
  return "?";
}

FlowStateSpec OnlineFlowStateSpec(FeatureKind kind) {
  FlowStateSpec spec;
  spec.Add("min_len", 8)
      .Add("max_len", 8)
      .Add("min_ipd", 8)
      .Add("max_ipd", 8)
      .Add("fuzzy_len", 8, traffic::kWindow)
      .Add("fuzzy_ipd", 8, traffic::kWindow)
      .Add("prev_ts", 48);
  if (kind == FeatureKind::kRaw) {
    spec.Add("raw_window", 8, traffic::kWindow * traffic::kRawBytesPerPacket);
  }
  return spec;
}

namespace {

struct PendingMeta {
  std::uint64_t digest = 0;
  std::uint32_t flow = 0;
  std::uint32_t index = 0;
  std::int32_t label = 0;
  /// Telemetry enqueue stamp of the packet that filled this row (0 =
  /// unsampled): carried to the batch flush so the decision's
  /// end-to-end latency spans push -> emit, not just the flush.
  std::uint32_t start = 0;
};

std::shared_ptr<const ServingState> MakeServingState(
    std::shared_ptr<const LoweredModel> model, std::uint64_t version) {
  auto state = std::make_shared<ServingState>();
  state->version = version;
  state->model = std::move(model);
  return state;
}

/// Walks one producer's EscalationPolicy ladder against a full ring. The
/// caller resets it on any progress; Exhausted() is the shed gate.
class Escalator {
 public:
  explicit Escalator(const EscalationPolicy& policy) : policy_(policy) {}

  void Reset() { round_ = 0; }
  bool Exhausted() const { return round_ >= policy_.rounds(); }

  /// One rung: busy-spin, yield, or a capped exponentially-growing sleep.
  /// Saturates at the top rung, so a no-shed producer parks at
  /// backoff_max_us per retry instead of burning a core.
  void Wait() {
    if (round_ < policy_.spin) {
      // Busy rung: nothing — the retry itself is the wait.
    } else if (round_ < policy_.spin + policy_.yield) {
      std::this_thread::yield();
    } else {
      const std::size_t k = round_ - policy_.spin - policy_.yield;
      std::uint64_t us = policy_.backoff_start_us == 0
                             ? policy_.backoff_max_us
                             : policy_.backoff_start_us
                                   << std::min<std::size_t>(k, 20);
      us = std::min(us, policy_.backoff_max_us);
      if (us == 0) {
        std::this_thread::yield();  // degenerate policy: never hot-spin
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(us));
      }
    }
    if (round_ < policy_.rounds()) ++round_;
  }

 private:
  const EscalationPolicy& policy_;
  std::size_t round_ = 0;
};

}  // namespace

/// One ring element in multi-threaded mode: either a packet or an in-band
/// control item (`swap != nullptr`) that retires the shard's model at
/// exactly this position in the shard's packet sequence. The payload rides
/// by value: a PacketSource may reuse its buffer the moment Push returns,
/// so the borrowed TracePacket::packet pointer cannot cross the ring — the
/// worker re-aims it at `payload` after popping. Cache-line alignment keeps
/// every element on whole lines (sizeof is already 2×64), so a producer
/// writing slot i and a consumer reading slot i±1 never share a line.
struct alignas(64) StreamServer::ShardItem {
  traffic::TracePacket packet;
  traffic::Packet payload;
  std::shared_ptr<const ServingState> swap;
};

struct StreamServer::Shard {
  Shard(std::shared_ptr<const ServingState> state,
        const StreamServerOptions& opts, std::size_t dim)
      : serving(std::move(state)),
        engine(std::make_unique<InferenceEngine>(*serving->model,
                                                 opts.batch_size)),
        out_dim(serving->model->OutputDim()),
        features(opts.batch_size * dim),
        logits(opts.batch_size * out_dim),
        meta(opts.batch_size),
        feature(opts.feature),
        table_opts{opts.flows_per_shard, opts.max_probe, opts.table_layout,
                   opts.table_eviction},
        slot_count(std::bit_ceil(opts.flows_per_shard)) {
    // In multi-threaded mode table construction is deferred to the worker
    // thread (EnsureTables at WorkerLoop entry, after pinning): first-touch
    // then places the table's pages on the worker's NUMA node, which is
    // the other half of core pinning. Single-threaded mode builds eagerly —
    // caller and server are the same thread anyway.
    if (!opts.multithreaded) {
      EnsureTables();
    } else {
      queue = std::make_unique<SpscQueue<ShardItem>>(opts.queue_capacity);
    }
  }

  /// Builds the flow table on the calling thread (idempotent). Exactly one
  /// flow table exists, typed for the feature family, so stat/seq shards
  /// never carry (or reset on eviction) the 480-byte raw-byte window.
  void EnsureTables() {
    if (table || raw_table) return;
    if (feature == FeatureKind::kRaw) {
      raw_table = std::make_unique<FlowTable<traffic::OnlineFlowStateRaw>>(
          table_opts);
    } else {
      table = std::make_unique<FlowTable<traffic::OnlineFlowState>>(
          table_opts);
    }
  }

  /// Counters + occupancy snapshot; a not-yet-built (deferred) table
  /// reports zero counters over `slot_count` slots.
  FlowTableStats TableStats() const {
    if (table) return table->SnapshotStats();
    if (raw_table) return raw_table->SnapshotStats();
    FlowTableStats s;
    s.slots = slot_count;
    return s;
  }
  void ResetTableStats() {
    if (table) {
      table->ResetStats();
    } else if (raw_table) {
      raw_table->ResetStats();
    }
  }
  std::size_t FlowsResident() const {
    return table ? table->size() : raw_table ? raw_table->size() : 0;
  }
  std::size_t TableSramBits(std::size_t bits_per_flow) const {
    // Priced from the configured slot count so accounting works before a
    // deferred table is built (matches FlowTable::SramBits exactly).
    return dataplane::FlowTableSramBits(bits_per_flow, slot_count);
  }
  void PrefetchFlow(const dataplane::FlowKey& key) const {
    if (table) {
      table->Prefetch(key);
    } else if (raw_table) {
      raw_table->Prefetch(key);
    }
  }

  std::unique_ptr<FlowTable<traffic::OnlineFlowState>> table;
  std::unique_ptr<FlowTable<traffic::OnlineFlowStateRaw>> raw_table;
  /// This shard's index in shards_ (trace events + shed accounting need
  /// it from contexts that only hold the Shard&).
  std::uint32_t index = 0;
  /// This shard's telemetry block, or nullptr when detached — the "off"
  /// hot path tests exactly one pointer.
  telemetry::ShardTelemetry* tele = nullptr;
  /// Epoch handle + the engine built over it. Owned by the worker thread
  /// while running; swapped together at packet boundaries (ApplySwap).
  std::shared_ptr<const ServingState> serving;
  std::unique_ptr<InferenceEngine> engine;
  /// Work counters of engines retired by swaps; Stats() reports
  /// engine_carry + the current engine's counters so a run containing
  /// swaps still accounts every inferred packet.
  InferenceEngine::Stats engine_carry;
  std::size_t out_dim = 0;
  std::vector<float> features;  // batch_size x dim rows
  std::vector<float> logits;    // batch_size x out_dim
  std::vector<PendingMeta> meta;
  FeatureKind feature = FeatureKind::kSeq;
  FlowTableOptions table_opts;
  /// bit_ceil(flows_per_shard): the capacity a (possibly deferred) table
  /// will have, for accounting that must not wait for construction.
  std::size_t slot_count = 0;
  std::size_t pending = 0;
  std::vector<StreamDecision> decisions;
  std::uint64_t packets = 0;
  std::uint64_t warmup = 0;
  std::uint64_t batches = 0;
  std::uint64_t decided = 0;
  std::uint64_t swaps = 0;
  double swap_wall_ms = 0.0;
  /// Self-healing counters (worker-owned, read after Stop like `packets`).
  std::uint64_t shed_inference = 0;
  std::uint64_t inference_faults = 0;
  std::uint64_t batches_dropped = 0;
  /// Ingest-side shed counters. ring_full has a single writer (the ingest
  /// thread owning this shard) but misroutes can come from ANY ingest
  /// thread — both are atomics so Stats() reads stay race-free under TSan.
  std::atomic<std::uint64_t> shed_ring_full{0};
  std::atomic<std::uint64_t> shed_misrouted{0};
  /// Liveness counters: written by the worker, sampled lock-free by the
  /// watchdog and Health(). Own cache line so the watchdog's polling
  /// never bounces the worker's hot counters.
  alignas(64) std::atomic<std::uint64_t> heartbeat{0};
  std::atomic<std::uint64_t> processed{0};
  std::atomic<bool> stalled{false};
  std::atomic<std::uint64_t> stall_events{0};
  /// Highest ring occupancy the worker has observed (burst in hand +
  /// SizeApprox remainder at each drain). Single writer (the worker);
  /// Health()/TelemetrySnapshot() read it live. Telemetry-independent:
  /// tracked even with telemetry detached.
  std::atomic<std::size_t> ring_depth_hwm{0};
  /// Only allocated in multi-threaded mode.
  std::unique_ptr<SpscQueue<ShardItem>> queue;
  std::thread worker;
};

StreamServer::StreamServer(std::shared_ptr<const LoweredModel> model,
                           StreamServerOptions opts, std::uint64_t version)
    : opts_(opts), dim_(FeatureDim(opts.feature)) {
  if (model == nullptr) {
    throw std::invalid_argument("StreamServer: null model");
  }
  if (opts_.num_shards == 0) {
    throw std::invalid_argument("StreamServer: zero shards");
  }
  if (opts_.batch_size == 0) {
    throw std::invalid_argument("StreamServer: zero batch size");
  }
  if (opts_.num_ingest == 0) {
    throw std::invalid_argument("StreamServer: zero ingest threads");
  }
  if (opts_.burst == 0) {
    throw std::invalid_argument("StreamServer: zero burst size");
  }
  if (opts_.flows_per_shard == 0) {
    throw std::invalid_argument("StreamServer: zero flows per shard");
  }
  if (opts_.max_probe == 0) {
    throw std::invalid_argument("StreamServer: zero probe length");
  }
  if (model->InputDim() != dim_) {
    throw std::invalid_argument(
        "StreamServer: model input dim does not match the feature family");
  }
  // Resolve (and validate) the thread placement up front, even in
  // single-threaded mode — a bad explicit CPU list should fail at
  // construction, not at Start().
  pin_plan_ = MakePinPlan(opts_.pin_policy, opts_.num_shards,
                          opts_.num_ingest, opts_.worker_cpus,
                          opts_.ingest_cpus);
  serving_ = MakeServingState(std::move(model), version);
  published_version_.store(version, std::memory_order_relaxed);
  shards_.reserve(opts_.num_shards);
  for (std::size_t i = 0; i < opts_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(serving_, opts_, dim_));
    shards_.back()->index = static_cast<std::uint32_t>(i);
  }
  if (opts_.telemetry.Attached()) {
    tele_ = std::make_unique<telemetry::ServerTelemetry>(opts_.telemetry,
                                                         opts_.num_shards);
    for (std::size_t i = 0; i < opts_.num_shards; ++i) {
      shards_[i]->tele = &tele_->shard(i);
    }
    push_sampler_ = telemetry::Sampler(opts_.telemetry.sample_every);
  }
}

StreamServer::StreamServer(const LoweredModel& model, StreamServerOptions opts)
    : StreamServer(
          std::shared_ptr<const LoweredModel>(std::shared_ptr<void>{}, &model),
          opts) {}

StreamServer::~StreamServer() {
  if (running_) Stop();
}

StreamServer::Shard& StreamServer::ShardOf(std::uint64_t digest) {
  return *shards_[ShardIndexOf(digest, shards_.size())];
}

void StreamServer::Push(const traffic::TracePacket& packet) {
  Shard& shard = ShardOf(packet.key.digest);
  // Sampling decision at the boundary (one predictable branch when
  // telemetry is off or sample_every == 0): the stamp starts the packet's
  // end-to-end clock and, in MT mode, the ring-dwell clock.
  const std::uint32_t stamp =
      (tele_ != nullptr && push_sampler_.Sample()) ? tele_->Stamp32() : 0;
  if (!running_) {
    // `processed` mirrors the MT worker counter so live pps reads work in
    // both modes (relaxed add, single writer — the producer IS the
    // processor here).
    shard.processed.fetch_add(1, std::memory_order_relaxed);
    Process(shard, packet, stamp);
    return;
  }
  ShardItem item;
  item.packet = packet;
  item.packet.tele_stamp = stamp;
  item.payload = *packet.packet;
  Escalator esc(opts_.escalation);
  // kRingPushStall makes the ring look full for a round, driving the
  // ladder without needing a genuinely backlogged worker.
  while (FaultFires(FaultSite::kRingPushStall) ||
         !shard.queue->TryPush(std::move(item))) {
    if (opts_.shed && esc.Exhausted()) {
      shard.shed_ring_full.fetch_add(1, std::memory_order_relaxed);
      // Per-packet sheds are a high-rate event under sustained overload:
      // trace only the sampled packets (same 1-in-N as packet spans), or
      // a drop storm evicts every lifecycle event from the fixed ring.
      // The batch-level shed records (burst remainder, inference) stay
      // unconditional. The shed *counter* above counts every drop.
      if (shard.tele != nullptr && stamp != 0) {
        shard.tele->ring.Record(telemetry::TraceEventKind::kShed,
                                shard.index, tele_->NowNs(), 0, 1,
                                /*reason=*/0);
      }
      return;
    }
    esc.Wait();  // shard backlogged; escalate backpressure
  }
}

void StreamServer::PushStage(Shard& shard, std::span<ShardItem> items) {
  std::span<ShardItem> rest = items;
  Escalator esc(opts_.escalation);
  while (!rest.empty()) {
    const std::size_t pushed = FaultFires(FaultSite::kRingPushStall)
                                   ? 0
                                   : shard.queue->TryPushBurst(rest);
    rest = rest.subspan(pushed);
    if (rest.empty()) break;
    if (pushed != 0) {
      esc.Reset();  // progress resets the ladder: shed only on a STUCK ring
      continue;
    }
    if (opts_.shed && esc.Exhausted()) {
      // Near-source signal: the remainder of this burst targets a ring
      // that stayed full through the whole escalation ladder — shed it
      // here, deterministically, instead of stalling every other shard
      // this ingest thread feeds.
      shard.shed_ring_full.fetch_add(rest.size(), std::memory_order_relaxed);
      if (shard.tele != nullptr) {
        // The shard's event ring is multi-writer safe (claim cursor +
        // per-slot seq), so the ingest thread can drop the shed marker
        // on the shard's own track.
        shard.tele->ring.Record(telemetry::TraceEventKind::kShed,
                                shard.index, tele_->NowNs(), 0, rest.size(),
                                /*reason=*/0);
      }
      break;
    }
    esc.Wait();
  }
}

void StreamServer::IngestLoop(PartitionedPacketSource& source, std::size_t t,
                              std::size_t fanout) {
  const std::size_t burst = opts_.burst;
  struct Stage {
    std::vector<ShardItem> items;
    std::size_t n = 0;
  };
  // Staging buffers only for the shards this thread owns; the vector is
  // indexed by shard for O(1) routing.
  std::vector<Stage> stages(shards_.size());
  for (std::size_t s = t; s < shards_.size(); s += fanout) {
    stages[s].items.resize(burst);
  }
  // Each ingest thread keeps its own countdown: a sampled pull times the
  // source decode (Next) and stamps the packet for dwell/end-to-end
  // measurement downstream. With telemetry off this is one predictable
  // branch per packet, same as the fault hooks.
  telemetry::Sampler sampler(tele_ != nullptr ? tele_->sample_every() : 0);
  traffic::TracePacket pkt;
  for (;;) {
    const bool sampled = sampler.Sample();
    const std::uint64_t t0 = sampled ? tele_->NowNs() : 0;
    if (!source.Next(t, pkt)) break;
    std::uint64_t now = 0;
    std::uint32_t stamp = 0;
    if (sampled) {
      now = tele_->NowNs();
      stamp = tele_->Stamp32(now);
    }
    const std::size_t s = ShardIndexOf(pkt.key.digest, shards_.size());
    if (s % fanout != t) {
      // The partition function disagrees with the shard map: shard s's
      // ring has another producer, so enqueueing from here would break the
      // SPSC invariant. Count and shed — zero under a correct partitioner.
      shards_[s]->shed_misrouted.fetch_add(1, std::memory_order_relaxed);
      if (shards_[s]->tele != nullptr) {
        shards_[s]->tele->ring.Record(telemetry::TraceEventKind::kShed,
                                      static_cast<std::uint32_t>(s),
                                      tele_->NowNs(), 0, 1, /*reason=*/1);
      }
      continue;
    }
    if (sampled) {
      shards_[s]->tele->stages.Record(telemetry::Stage::kIngestNext,
                                      now - t0);
    }
    Stage& stage = stages[s];
    ShardItem& item = stage.items[stage.n];
    item.packet = pkt;
    item.packet.tele_stamp = stamp;
    item.payload = *pkt.packet;
    item.swap = nullptr;  // staged slots are reused after a flush
    if (++stage.n == burst) {
      PushStage(*shards_[s], std::span<ShardItem>(stage.items.data(),
                                                  stage.n));
      stage.n = 0;
    }
  }
  for (std::size_t s = t; s < shards_.size(); s += fanout) {
    Stage& stage = stages[s];
    if (stage.n != 0) {
      PushStage(*shards_[s], std::span<ShardItem>(stage.items.data(),
                                                  stage.n));
      stage.n = 0;
    }
  }
}

void StreamServer::SwapModel(std::shared_ptr<const LoweredModel> model,
                             std::uint64_t version) {
  if (model == nullptr) {
    throw std::invalid_argument("StreamServer::SwapModel: null model");
  }
  if (model->InputDim() != dim_) {
    throw std::invalid_argument(
        "StreamServer::SwapModel: model input dim does not match the "
        "serving feature family");
  }
  if (version <= serving_->version) {
    throw std::invalid_argument(
        "StreamServer::SwapModel: version must increase (active v" +
        std::to_string(serving_->version) + ", got v" +
        std::to_string(version) + ")");
  }
  PublishState(MakeServingState(std::move(model), version));
}

void StreamServer::SwapModelDelta(
    std::span<const dataplane::TablePatch> patches, std::uint64_t version) {
  if (version <= serving_->version) {
    throw std::invalid_argument(
        "StreamServer::SwapModelDelta: version must increase (active v" +
        std::to_string(serving_->version) + ", got v" +
        std::to_string(version) + ")");
  }
  // Clone-then-patch: the shards keep serving the untouched epoch (they
  // hold their own references and, in MT mode, may not reach the swap
  // boundary for a while), so the patches land on a private deep copy.
  // The clone preserves placement and every compiled match index —
  // ApplyDelta rewrites only the moved action words and the affected
  // chunk-bitset / interval rows, never re-sealing a table — so the
  // producer-side cost is O(clone + delta), not O(re-lower). Throws
  // std::invalid_argument (pipeline untouched, nothing published) when a
  // patch cannot be absorbed in place.
  const auto t0 = std::chrono::steady_clock::now();
  auto patched = std::make_shared<LoweredModel>(serving_->model->Clone());
  const auto before = patched->pipeline().MatchIndexReport();
  const std::size_t bytes = patched->ApplyDelta(patches);
  const auto after = patched->pipeline().MatchIndexReport();
  PublishState(MakeServingState(std::move(patched), version));
  const auto t1 = std::chrono::steady_clock::now();
  // Account only on success: a failed publish discarded the clone and the
  // server still serves (and re-reports) the previous version.
  if (tele_ != nullptr) {
    tele_->control_ring().Record(
        telemetry::TraceEventKind::kDeltaApply,
        telemetry::TraceEvent::kControlTrack, tele_->NowNs(),
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()),
        version, bytes);
  }
  ++delta_swaps_;
  delta_bytes_pushed_ += bytes;
  deltas_applied_ += after.deltas_applied - before.deltas_applied;
  leaf_words_patched_ += after.leaf_words_patched - before.leaf_words_patched;
  reseals_avoided_ += after.reseals_avoided - before.reseals_avoided;
  delta_apply_ns_ += after.delta_apply_ns - before.delta_apply_ns;
  delta_swap_wall_ms_ +=
      std::chrono::duration<double, std::milli>(t1 - t0).count();
}

void StreamServer::PublishState(std::shared_ptr<const ServingState> next) {
  const std::uint64_t version = next->version;
  const auto prev = serving_;
  if (tele_ != nullptr) {
    tele_->control_ring().Record(telemetry::TraceEventKind::kSwapBegin,
                                 telemetry::TraceEvent::kControlTrack,
                                 tele_->NowNs(), 0, version, prev->version);
  }
  if (!running_) {
    // Synchronous apply: the caller owns the shards, and "now" is a packet
    // boundary by definition in single-threaded mode. Transactional: a
    // publish failure on shard k (engine build throws — fault site
    // kSwapPublishFail) rolls shards [0, k) back to the serving model, so
    // the server never runs mixed versions.
    std::size_t applied = 0;
    try {
      for (; applied < shards_.size(); ++applied) {
        ApplySwap(*shards_[applied], next, /*inject_faults=*/true);
      }
    } catch (const std::exception& e) {
      for (std::size_t i = 0; i < applied; ++i) {
        // Fault-free by contract: rebuilding over the previously serving
        // model repeats a build that already succeeded.
        ApplySwap(*shards_[i], prev, /*inject_faults=*/false);
      }
      if (tele_ != nullptr) {
        tele_->control_ring().Record(telemetry::TraceEventKind::kSwapRollback,
                                     telemetry::TraceEvent::kControlTrack,
                                     tele_->NowNs(), 0, version,
                                     prev->version);
      }
      throw SwapError("StreamServer::SwapModel: publish of v" +
                      std::to_string(version) + " failed (" + e.what() +
                      "); rolled back to v" +
                      std::to_string(prev->version));
    }
    serving_ = std::move(next);
    published_version_.store(version, std::memory_order_relaxed);
    if (tele_ != nullptr) {
      tele_->control_ring().Record(telemetry::TraceEventKind::kSwapPublish,
                                   telemetry::TraceEvent::kControlTrack,
                                   tele_->NowNs(), 0, version, 0);
    }
    return;
  }
  // Multi-threaded publish: validate on THIS thread before anything
  // reaches the rings — a worker cannot roll back its siblings, so the
  // in-band apply must be infallible by the time it is enqueued. The
  // probe build is exactly the work each worker will repeat.
  try {
    if (FaultFires(FaultSite::kSwapPublishFail)) {
      throw FaultInjectedError(FaultSite::kSwapPublishFail,
                               "probe engine build");
    }
    InferenceEngine probe(*next->model, opts_.batch_size);
    (void)probe;
  } catch (const std::exception& e) {
    if (tele_ != nullptr) {
      tele_->control_ring().Record(telemetry::TraceEventKind::kSwapRollback,
                                   telemetry::TraceEvent::kControlTrack,
                                   tele_->NowNs(), 0, version, prev->version);
    }
    throw SwapError("StreamServer::SwapModel: publish of v" +
                    std::to_string(version) + " failed (" + e.what() +
                    "); still serving v" + std::to_string(prev->version));
  }
  serving_ = next;
  published_version_.store(version, std::memory_order_relaxed);
  // In-band apply: the control item is ordered after every packet already
  // enqueued and before everything pushed later — the same swap point the
  // single-threaded path applies, per shard. Control items are never shed:
  // a lost swap would leave shards serving different versions.
  for (auto& shard : shards_) {
    ShardItem item;
    item.swap = next;
    while (!shard->queue->TryPush(std::move(item))) {
      std::this_thread::yield();
    }
  }
  if (tele_ != nullptr) {
    tele_->control_ring().Record(telemetry::TraceEventKind::kSwapPublish,
                                 telemetry::TraceEvent::kControlTrack,
                                 tele_->NowNs(), 0, version, 0);
  }
}

void StreamServer::ApplySwap(Shard& shard,
                             std::shared_ptr<const ServingState> next,
                             bool inject_faults) {
  // Drain the partial batch through the outgoing engine so no decision is
  // lost, then rebuild the engine over the incoming model. Flow state is
  // untouched — feature extraction is model-independent. The recorded gap
  // covers both: the shard serves nothing from flush start to rebuild end.
  const auto t0 = std::chrono::steady_clock::now();
  FlushShard(shard);
  if (inject_faults && FaultFires(FaultSite::kSwapPublishFail)) {
    throw FaultInjectedError(FaultSite::kSwapPublishFail,
                             "engine rebuild mid-apply");
  }
  // Build the incoming engine BEFORE retiring the outgoing one: if the
  // build throws, the shard still holds a fully consistent old engine
  // (and its stats), so the caller's rollback has nothing to repair here.
  auto incoming =
      std::make_unique<InferenceEngine>(*next->model, opts_.batch_size);
  shard.engine_carry += shard.engine->stats();
  shard.engine = std::move(incoming);
  shard.out_dim = next->model->OutputDim();
  shard.logits.resize(opts_.batch_size * shard.out_dim);
  shard.serving = std::move(next);
  const auto t1 = std::chrono::steady_clock::now();
  ++shard.swaps;
  shard.swap_wall_ms +=
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  if (shard.tele != nullptr) {
    // The serving gap is a lifecycle event, not a sampled one: every
    // apply lands in the swap_publish histogram and on the shard's trace
    // track, so a slow rebuild is visible even at sample_every == 0.
    const auto gap_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    shard.tele->stages.Record(telemetry::Stage::kSwapPublish, gap_ns);
    shard.tele->ring.Record(telemetry::TraceEventKind::kSwapApply,
                            shard.index, tele_->NowNs(), gap_ns,
                            shard.serving->version, 0);
  }
}

void StreamServer::Process(Shard& shard, const traffic::TracePacket& packet,
                           std::uint32_t stamp) {
  // MT mode defers table construction to the worker; the one path that can
  // get here first without a worker is Push() before Start(), where the
  // caller owns the shard — build on demand (idempotent, single-threaded).
  if (!shard.table && !shard.raw_table) shard.EnsureTables();
  ++shard.packets;
  // Sampled packets (nonzero stamp, telemetry attached) pay three extra
  // clock reads to split lookup from extraction; everything else takes
  // one predictable branch here and none below.
  const bool sampled = stamp != 0 && shard.tele != nullptr;
  std::uint64_t t0 = 0;
  std::uint64_t t1 = 0;
  float* row = shard.features.data() + shard.pending * dim_;
  bool full;
  if (sampled) t0 = tele_->NowNs();
  if (opts_.feature == FeatureKind::kRaw) {
    traffic::OnlineFlowStateRaw& state =
        shard.raw_table->FindOrInsert(packet.key);
    if (sampled) t1 = tele_->NowNs();
    extractor_.Update(state, *packet.packet, packet.ts_us);
    full = state.WindowFull();
    if (full) extractor_.EmitRaw(state, row);
  } else {
    traffic::OnlineFlowState& state = shard.table->FindOrInsert(packet.key);
    if (sampled) t1 = tele_->NowNs();
    extractor_.Update(state, *packet.packet, packet.ts_us);
    full = state.WindowFull();
    if (full) {
      if (opts_.feature == FeatureKind::kStat) {
        extractor_.EmitStat(state, row);
      } else {
        extractor_.EmitSeq(state, row);
      }
    }
  }
  if (sampled) {
    const std::uint64_t t2 = tele_->NowNs();
    shard.tele->stages.Record(telemetry::Stage::kFlowLookup, t1 - t0);
    shard.tele->stages.Record(telemetry::Stage::kFeatureExtract, t2 - t1);
  }
  if (!full) {
    ++shard.warmup;
    return;
  }
  shard.meta[shard.pending] = {packet.key.digest, packet.flow, packet.index,
                               packet.label, sampled ? stamp : 0};
  if (++shard.pending == opts_.batch_size) FlushShard(shard);
}

void StreamServer::FlushShard(Shard& shard) {
  const std::size_t n = shard.pending;
  if (n == 0) return;
  const std::size_t out_dim = shard.out_dim;
  telemetry::ShardTelemetry* const tele = shard.tele;
  // The flush is timed whole (Infer + argmax + emit) whenever sampling is
  // enabled — it is already batch-amortized, so per-flush (not 1-in-N)
  // costs two clock reads per `batch_size` packets.
  const bool timed = tele != nullptr && tele_->sample_every() != 0;
  const std::uint64_t flush_t0 = timed ? tele_->NowNs() : 0;
  // Bounded retry ladder around the engine: a transient Infer failure
  // (fault site kInferenceFault, or a genuine blip) is retried with a
  // linear backoff; once the budget is exhausted the batch is shed and
  // counted (ShedStats::inference) — the shard keeps serving either way.
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      if (FaultFires(FaultSite::kInferenceFault)) {
        throw FaultInjectedError(FaultSite::kInferenceFault, "Infer");
      }
      shard.engine->Infer(
          std::span<const float>(shard.features.data(), n * dim_), n,
          std::span<float>(shard.logits.data(), n * out_dim));
      break;
    } catch (const std::exception&) {
      ++shard.inference_faults;
      if (attempt >= opts_.inference_retries) {
        shard.shed_inference += n;
        ++shard.batches_dropped;
        shard.pending = 0;
        if (tele != nullptr) {
          tele->shed_inference.Add(n);
          tele->ring.Record(telemetry::TraceEventKind::kShed, shard.index,
                            tele_->NowNs(), 0, n, /*reason=*/2);
        }
        return;
      }
      if (opts_.inference_retry_backoff_us != 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(
            (attempt + 1) * opts_.inference_retry_backoff_us));
      }
    }
  }
  // One clock read covers every sampled packet in the batch: their
  // end-to-end spans all close at this flush.
  std::uint64_t emit_ns = 0;
  std::uint32_t emit32 = 0;
  if (tele != nullptr) {
    emit_ns = tele_->NowNs();
    emit32 = static_cast<std::uint32_t>(emit_ns);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = shard.logits.data() + i * out_dim;
    std::size_t best = 0;
    for (std::size_t d = 1; d < out_dim; ++d) {
      if (row[d] > row[best]) best = d;
    }
    StreamDecision decision;
    decision.flow_digest = shard.meta[i].digest;
    decision.flow = shard.meta[i].flow;
    decision.index = shard.meta[i].index;
    decision.label = shard.meta[i].label;
    decision.predicted = static_cast<std::int32_t>(best);
    decision.score = row[best];
    decision.version = shard.serving->version;
    const std::uint32_t start = shard.meta[i].start;
    if (start != 0 && tele != nullptr) {
      // u32 wraparound subtraction: correct for spans < ~4.29s.
      const std::uint32_t lat = emit32 - start;
      decision.latency_ns = lat;
      tele->stages.Record(telemetry::Stage::kEndToEnd, lat);
      tele->ring.Record(telemetry::TraceEventKind::kPacketSpan, shard.index,
                        emit_ns - lat, lat, decision.flow_digest,
                        decision.version);
    }
    shard.decisions.push_back(decision);
  }
  ++shard.batches;
  shard.decided += n;
  shard.pending = 0;
  if (tele != nullptr) {
    tele->decisions.Add(n);
    if (timed) {
      tele->stages.Record(telemetry::Stage::kInferFlush,
                          tele_->NowNs() - flush_t0);
    }
    // Refresh the live hit-rate gauges from the (worker-private) table
    // counters — once per flush, so the live snapshot sees them move.
    const FlowTableStats ts = shard.TableStats();
    tele->table_hits.Set(ts.hits);
    tele->table_misses.Set(ts.misses);
  }
}

void StreamServer::Flush() {
  if (running_) {
    throw std::logic_error("StreamServer::Flush: workers are running");
  }
  for (auto& shard : shards_) FlushShard(*shard);
}

void StreamServer::Start() {
  if (!opts_.multithreaded) {
    throw std::logic_error("StreamServer::Start: single-threaded server");
  }
  if (running_) return;
  closed_.store(false, std::memory_order_release);
  running_ = true;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard* s = shards_[i].get();
    const int cpu = pin_plan_.worker_cpu[i];
    s->worker = std::thread([this, s, cpu] { WorkerLoop(*s, cpu); });
  }
  if (opts_.watchdog_interval_us != 0) {
    watchdog_stop_.store(false, std::memory_order_release);
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
}

void StreamServer::Stop() {
  if (!running_) return;
  closed_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  if (watchdog_.joinable()) {
    watchdog_stop_.store(true, std::memory_order_release);
    watchdog_.join();
  }
  // Every worker drained its ring and exited: whatever the watchdog's last
  // sample said, a quiesced server is not stalled. stall_events stays — a
  // recovered stall remains part of the run's history.
  for (auto& shard : shards_) {
    shard->stalled.store(false, std::memory_order_relaxed);
  }
  running_ = false;
}

void StreamServer::WatchdogLoop() {
  const auto interval = std::chrono::microseconds(opts_.watchdog_interval_us);
  std::vector<std::uint64_t> last_beat(shards_.size(), 0);
  std::vector<std::size_t> stagnant(shards_.size(), 0);
  while (!watchdog_stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(interval);
    watchdog_checks_.fetch_add(1, std::memory_order_relaxed);
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      Shard& s = *shards_[i];
      const std::uint64_t beat = s.heartbeat.load(std::memory_order_relaxed);
      const bool has_work = s.queue && s.queue->SizeApprox() != 0;
      if (beat == last_beat[i] && has_work) {
        // Worker hasn't ticked since the last sample while its ring
        // holds work: count toward a stall verdict.
        if (++stagnant[i] >= opts_.watchdog_stall_intervals &&
            !s.stalled.load(std::memory_order_relaxed)) {
          s.stalled.store(true, std::memory_order_relaxed);
          s.stall_events.fetch_add(1, std::memory_order_relaxed);
          if (tele_ != nullptr) {
            tele_->control_ring().Record(telemetry::TraceEventKind::kStall,
                                         s.index, tele_->NowNs(), 0,
                                         beat, s.queue->SizeApprox());
          }
        }
      } else {
        // Progress (or an empty ring): self-clear.
        stagnant[i] = 0;
        if (s.stalled.load(std::memory_order_relaxed)) {
          s.stalled.store(false, std::memory_order_relaxed);
          if (tele_ != nullptr) {
            tele_->control_ring().Record(
                telemetry::TraceEventKind::kStallClear, s.index,
                tele_->NowNs(), 0, beat, 0);
          }
        }
      }
      last_beat[i] = beat;
    }
  }
}

ServerHealth StreamServer::Health() const {
  ServerHealth health;
  health.running = running_.load(std::memory_order_acquire);
  health.watchdog_checks = watchdog_checks_.load(std::memory_order_relaxed);
  health.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardHealth sh;
    sh.heartbeat = shard->heartbeat.load(std::memory_order_relaxed);
    sh.processed = shard->processed.load(std::memory_order_relaxed);
    sh.ring_depth = shard->queue ? shard->queue->SizeApprox() : 0;
    sh.ring_depth_hwm =
        shard->ring_depth_hwm.load(std::memory_order_relaxed);
    sh.stalled = shard->stalled.load(std::memory_order_relaxed);
    sh.stall_events = shard->stall_events.load(std::memory_order_relaxed);
    health.stall_events += sh.stall_events;
    if (sh.stalled) ++health.stalled_shards;
    health.shards.push_back(sh);
  }
  return health;
}

telemetry::TelemetrySnapshot StreamServer::TelemetrySnapshot() const {
  telemetry::TelemetrySnapshot snap;
  snap.attached = tele_ != nullptr;
  snap.sample_every = opts_.telemetry.sample_every;
  snap.tracing = tele_ != nullptr && tele_->tracing();
  snap.running = running_.load(std::memory_order_acquire);
  snap.now_ns = tele_ != nullptr ? tele_->NowNs() : 0;
  snap.active_version = published_version_.load(std::memory_order_relaxed);
  std::array<telemetry::HistogramSnapshot, telemetry::kNumStages> merged{};
  snap.shards.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& shard = *shards_[i];
    telemetry::ShardTelemetrySnapshot sh;
    sh.heartbeat = shard.heartbeat.load(std::memory_order_relaxed);
    sh.processed = shard.processed.load(std::memory_order_relaxed);
    sh.ring_depth = shard.queue ? shard.queue->SizeApprox() : 0;
    sh.ring_depth_hwm =
        shard.ring_depth_hwm.load(std::memory_order_relaxed);
    sh.shed_ring_full =
        shard.shed_ring_full.load(std::memory_order_relaxed);
    sh.shed_misrouted =
        shard.shed_misrouted.load(std::memory_order_relaxed);
    sh.stalled = shard.stalled.load(std::memory_order_relaxed);
    snap.stall_events +=
        shard.stall_events.load(std::memory_order_relaxed);
    if (shard.tele != nullptr) {
      sh.decisions = shard.tele->decisions.value();
      sh.shed_inference = shard.tele->shed_inference.value();
      sh.table_hits = shard.tele->table_hits.value();
      sh.table_misses = shard.tele->table_misses.value();
      for (std::size_t s = 0; s < telemetry::kNumStages; ++s) {
        merged[s].Merge(
            shard.tele->stages.Snapshot(static_cast<telemetry::Stage>(s)));
      }
      snap.trace_events_recorded += shard.tele->ring.recorded();
    }
    snap.packets += sh.processed;
    snap.decisions += sh.decisions;
    snap.shed_total +=
        sh.shed_ring_full + sh.shed_misrouted + sh.shed_inference;
    if (sh.stalled) ++snap.stalled_shards;
    snap.shards.push_back(sh);
  }
  if (tele_ != nullptr) {
    snap.trace_events_recorded += tele_->control_ring().recorded();
  }
  for (std::size_t s = 0; s < telemetry::kNumStages; ++s) {
    snap.stages[s].stage = static_cast<telemetry::Stage>(s);
    snap.stages[s].hist = merged[s];
    snap.stages[s].Finish();
  }
  return snap;
}

std::vector<telemetry::TraceEvent> StreamServer::DumpTrace() const {
  if (tele_ == nullptr) return {};
  return tele_->DumpTrace();
}

void StreamServer::WriteTrace(std::ostream& os) const {
  telemetry::WriteTraceJson(DumpTrace(), os);
}

void StreamServer::WorkerLoop(Shard& shard, int cpu) {
  // Pin first, then build the shard's tables: the first write to each page
  // happens on this (now placed) thread, so the kernel's first-touch
  // policy backs the table with memory local to the pinned core's node.
  PinThisThread(cpu);
  shard.EnsureTables();
  const auto handle = [this, &shard](ShardItem& item) {
    if (item.swap) {
      // Worker-side applies are fault-free by contract: SwapModel probed
      // the build on the producer thread before enqueueing, and a worker
      // cannot roll back its siblings.
      ApplySwap(shard, std::move(item.swap), /*inject_faults=*/false);
    } else {
      item.packet.packet = &item.payload;  // rebind after the ring move
      Process(shard, item.packet, item.packet.tele_stamp);
    }
  };
  // Burst drain: one head publish per burst, and a prefetch pass over the
  // burst's flow keys before any per-packet work — by the time packet i is
  // processed, its flow entry is (likely) already in flight to this core's
  // cache.
  std::vector<ShardItem> burst(opts_.burst);
  std::size_t hwm = 0;
  const auto drain = [&](std::size_t n) {
    // Ring-depth high watermark: the burst in hand plus what is still
    // queued behind it. One relaxed store only when the mark moves, so
    // the common case is a compare against a local.
    const std::size_t depth = n + shard.queue->SizeApprox();
    if (depth > hwm) {
      hwm = depth;
      shard.ring_depth_hwm.store(depth, std::memory_order_relaxed);
    }
    if (shard.tele != nullptr) {
      // Ring dwell closes here for every sampled packet in the burst —
      // one clock read per burst, u32 wrap-safe subtraction per packet.
      const std::uint32_t pop32 =
          static_cast<std::uint32_t>(tele_->NowNs());
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t stamp = burst[i].packet.tele_stamp;
        if (stamp != 0 && !burst[i].swap) {
          shard.tele->stages.Record(telemetry::Stage::kRingDwell,
                                    pop32 - stamp);
        }
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!burst[i].swap) shard.PrefetchFlow(burst[i].packet.key);
    }
    for (std::size_t i = 0; i < n; ++i) handle(burst[i]);
    shard.processed.fetch_add(n, std::memory_order_relaxed);
    // Worker fault sites, after a burst so backpressure is real: kSlow is
    // a hiccup shorter than the watchdog window; kStuck freezes the
    // heartbeat long enough for the watchdog to flag (and then clear)
    // a stall.
    if (FaultFires(FaultSite::kWorkerSlow)) {
      std::this_thread::sleep_for(std::chrono::microseconds(
          FaultInjector::Instance().Param(FaultSite::kWorkerSlow)));
    }
    if (FaultFires(FaultSite::kWorkerStuck)) {
      std::this_thread::sleep_for(std::chrono::microseconds(
          FaultInjector::Instance().Param(FaultSite::kWorkerStuck)));
    }
  };
  for (;;) {
    // The heartbeat ticks every loop iteration, idle ones included: a
    // live-but-idle worker keeps beating, so the watchdog's stall signal
    // (stagnant heartbeat + non-empty ring) has no idle false positives.
    shard.heartbeat.fetch_add(1, std::memory_order_relaxed);
    const std::size_t n = shard.queue->TryPopBurst(std::span<ShardItem>(burst));
    if (n != 0) {
      drain(n);
      continue;
    }
    if (closed_.load(std::memory_order_acquire)) {
      // The producer has stopped; drain what raced in, then exit.
      std::size_t tail;
      while ((tail = shard.queue->TryPopBurst(
                  std::span<ShardItem>(burst))) != 0) {
        drain(tail);
      }
      break;
    }
    std::this_thread::yield();
  }
  FlushShard(shard);
}

std::vector<StreamDecision> StreamServer::Serve(
    std::span<const traffic::TracePacket> trace) {
  // Reserve each shard's decision sink from the trace's observed shard
  // share (an exact routing pre-pass — MixDigest per packet, nothing
  // else), not an even-split estimate: a skewed flow-hash distribution no
  // longer reallocates a hot shard's vector mid-run, and light shards no
  // longer over-reserve.
  std::vector<std::size_t> share(shards_.size(), 0);
  for (const auto& p : trace) {
    ++share[ShardIndexOf(p.key.digest, shards_.size())];
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->decisions.reserve(shards_[i]->decisions.size() + share[i]);
  }
  SpanPacketSource source(trace);
  return Serve(source);
}

namespace {

/// Adapts a plain PacketSource to the ingest loop: one partition, pulled by
/// the calling thread, which owns every shard (fanout 1).
class SinglePartitionSource final : public PartitionedPacketSource {
 public:
  explicit SinglePartitionSource(PacketSource& inner) : inner_(inner) {}
  std::size_t partitions() const override { return 1; }
  bool Next(std::size_t, traffic::TracePacket& out) override {
    return inner_.Next(out);
  }

 private:
  PacketSource& inner_;
};

}  // namespace

std::vector<StreamDecision> StreamServer::Serve(PacketSource& source) {
  if (opts_.multithreaded) {
    // The calling thread is the single ingest thread; it stages per-shard
    // bursts exactly like the multi-ingest path with fanout 1. Ingest
    // pinning is scoped — the caller's affinity mask is restored on exit.
    SinglePartitionSource adapter(source);
    Start();
    {
      ScopedThreadPin pin(pin_plan_.ingest_cpu[0]);
      IngestLoop(adapter, 0, 1);
    }
    Stop();
  } else {
    traffic::TracePacket packet;
    while (source.Next(packet)) Push(packet);
    Flush();
  }
  return TakeDecisions();
}

std::vector<StreamDecision> StreamServer::Serve(
    PartitionedPacketSource& source) {
  const std::size_t parts = source.partitions();
  if (parts == 0) {
    throw std::invalid_argument("StreamServer::Serve: zero partitions");
  }
  if (!opts_.multithreaded) {
    // Deterministic reference mode: drain the partitions sequentially. A
    // flow lives in exactly one partition, so per-flow decision streams
    // match the multi-ingest run exactly (with shedding off).
    traffic::TracePacket packet;
    for (std::size_t p = 0; p < parts; ++p) {
      while (source.Next(p, packet)) Push(packet);
    }
    Flush();
    return TakeDecisions();
  }
  if (parts != opts_.num_ingest) {
    throw std::invalid_argument(
        "StreamServer::Serve: source partitions (" + std::to_string(parts) +
        ") != num_ingest (" + std::to_string(opts_.num_ingest) + ")");
  }
  Start();
  std::vector<std::thread> ingest;
  ingest.reserve(parts - 1);
  for (std::size_t t = 1; t < parts; ++t) {
    const int cpu = pin_plan_.ingest_cpu[t];
    ingest.emplace_back([this, &source, t, parts, cpu] {
      PinThisThread(cpu);
      IngestLoop(source, t, parts);
    });
  }
  {
    // Partition 0 rides the calling thread; pin it only for the loop.
    ScopedThreadPin pin(pin_plan_.ingest_cpu[0]);
    IngestLoop(source, 0, parts);
  }
  for (auto& th : ingest) th.join();
  Stop();
  return TakeDecisions();
}

std::vector<StreamDecision> StreamServer::TakeDecisions() {
  if (running_) {
    throw std::logic_error(
        "StreamServer::TakeDecisions: workers are running (Stop first)");
  }
  std::vector<StreamDecision> out;
  std::size_t total = 0;
  for (auto& shard : shards_) total += shard->decisions.size();
  out.reserve(total);
  for (auto& shard : shards_) {
    out.insert(out.end(), shard->decisions.begin(), shard->decisions.end());
    shard->decisions.clear();
  }
  return out;
}

StreamServerStats StreamServer::Stats() const {
  if (running_) {
    throw std::logic_error(
        "StreamServer::Stats: workers are running (Stop first)");
  }
  StreamServerStats stats;
  const FlowStateSpec spec = OnlineFlowStateSpec(opts_.feature);
  stats.stateful_bits_per_flow = spec.BitsPerFlow();
  stats.active_version = serving_->version;
  stats.watchdog_checks = watchdog_checks_.load(std::memory_order_relaxed);
  stats.shard_shed.reserve(shards_.size());
  stats.shard_packets.reserve(shards_.size());
  for (const auto& shard : shards_) {
    stats.packets += shard->packets;
    stats.shard_packets.push_back(shard->packets);
    stats.warmup += shard->warmup;
    stats.decisions += shard->decided;
    stats.batches += shard->batches;
    const ShedStats shed{
        shard->shed_ring_full.load(std::memory_order_relaxed),
        shard->shed_misrouted.load(std::memory_order_relaxed),
        shard->shed_inference};
    stats.shed += shed;
    stats.shard_shed.push_back(shed);
    stats.inference_faults += shard->inference_faults;
    stats.batches_dropped += shard->batches_dropped;
    stats.stall_events +=
        shard->stall_events.load(std::memory_order_relaxed);
    stats.table += shard->TableStats();
    stats.engine += shard->engine_carry;
    stats.engine += shard->engine->stats();
    stats.flows_resident += shard->FlowsResident();
    stats.flow_table_sram_bits +=
        shard->TableSramBits(stats.stateful_bits_per_flow);
    stats.swaps += shard->swaps;
    stats.swap_wall_ms += shard->swap_wall_ms;
  }
  stats.delta_swaps = delta_swaps_;
  stats.delta_bytes_pushed = delta_bytes_pushed_;
  stats.deltas_applied = deltas_applied_;
  stats.leaf_words_patched = leaf_words_patched_;
  stats.reseals_avoided = reseals_avoided_;
  stats.delta_apply_ns = delta_apply_ns_;
  stats.delta_swap_wall_ms = delta_swap_wall_ms_;
  return stats;
}

void StreamServer::ResetStats() {
  if (running_) {
    throw std::logic_error(
        "StreamServer::ResetStats: workers are running (Stop first)");
  }
  for (auto& shard : shards_) {
    shard->packets = 0;
    shard->warmup = 0;
    shard->batches = 0;
    shard->decided = 0;
    shard->swaps = 0;
    shard->swap_wall_ms = 0.0;
    shard->shed_ring_full.store(0, std::memory_order_relaxed);
    shard->shed_misrouted.store(0, std::memory_order_relaxed);
    shard->shed_inference = 0;
    shard->inference_faults = 0;
    shard->batches_dropped = 0;
    shard->stall_events.store(0, std::memory_order_relaxed);
    shard->stalled.store(false, std::memory_order_relaxed);
    shard->ring_depth_hwm.store(0, std::memory_order_relaxed);
    shard->ResetTableStats();
    shard->engine_carry = {};
    shard->engine->ResetStats();
  }
  if (tele_ != nullptr) tele_->Reset();
  delta_swaps_ = 0;
  delta_bytes_pushed_ = 0;
  deltas_applied_ = 0;
  leaf_words_patched_ = 0;
  reseals_avoided_ = 0;
  delta_apply_ns_ = 0;
  delta_swap_wall_ms_ = 0.0;
  watchdog_checks_.store(0, std::memory_order_relaxed);
}

}  // namespace pegasus::runtime
