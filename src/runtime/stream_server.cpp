#include "runtime/stream_server.hpp"

#include <stdexcept>
#include <thread>

#include "runtime/spsc_queue.hpp"

namespace pegasus::runtime {

std::size_t FeatureDim(FeatureKind kind) {
  switch (kind) {
    case FeatureKind::kStat:
      return traffic::kStatDim;
    case FeatureKind::kSeq:
      return traffic::kSeqDim;
    case FeatureKind::kRaw:
      return traffic::kRawDim;
  }
  throw std::invalid_argument("FeatureDim: unknown kind");
}

const char* FeatureKindName(FeatureKind kind) {
  switch (kind) {
    case FeatureKind::kStat:
      return "stat";
    case FeatureKind::kSeq:
      return "seq";
    case FeatureKind::kRaw:
      return "raw";
  }
  return "?";
}

FlowStateSpec OnlineFlowStateSpec(FeatureKind kind) {
  FlowStateSpec spec;
  spec.Add("min_len", 8)
      .Add("max_len", 8)
      .Add("min_ipd", 8)
      .Add("max_ipd", 8)
      .Add("fuzzy_len", 8, traffic::kWindow)
      .Add("fuzzy_ipd", 8, traffic::kWindow)
      .Add("prev_ts", 48);
  if (kind == FeatureKind::kRaw) {
    spec.Add("raw_window", 8, traffic::kWindow * traffic::kRawBytesPerPacket);
  }
  return spec;
}

namespace {

struct PendingMeta {
  std::uint64_t digest = 0;
  std::uint32_t flow = 0;
  std::uint32_t index = 0;
  std::int32_t label = 0;
};

}  // namespace

struct StreamServer::Shard {
  Shard(const LoweredModel& model, const StreamServerOptions& opts,
        std::size_t dim, std::size_t out_dim)
      : engine(model, opts.batch_size),
        features(opts.batch_size * dim),
        logits(opts.batch_size * out_dim),
        meta(opts.batch_size) {
    // Exactly one flow table exists, typed for the feature family, so
    // stat/seq shards never carry (or reset on eviction) the 480-byte
    // raw-byte window.
    if (opts.feature == FeatureKind::kRaw) {
      raw_table = std::make_unique<FlowTable<traffic::OnlineFlowStateRaw>>(
          opts.flows_per_shard, opts.max_probe);
    } else {
      table = std::make_unique<FlowTable<traffic::OnlineFlowState>>(
          opts.flows_per_shard, opts.max_probe);
    }
    if (opts.multithreaded) {
      queue = std::make_unique<SpscQueue<traffic::TracePacket>>(
          opts.queue_capacity);
    }
  }

  const FlowTableStats& TableStats() const {
    return table ? table->stats() : raw_table->stats();
  }
  std::size_t FlowsResident() const {
    return table ? table->size() : raw_table->size();
  }
  std::size_t TableSramBits(std::size_t bits_per_flow) const {
    return table ? table->SramBits(bits_per_flow)
                 : raw_table->SramBits(bits_per_flow);
  }

  std::unique_ptr<FlowTable<traffic::OnlineFlowState>> table;
  std::unique_ptr<FlowTable<traffic::OnlineFlowStateRaw>> raw_table;
  InferenceEngine engine;
  std::vector<float> features;  // batch_size x dim rows
  std::vector<float> logits;    // batch_size x out_dim
  std::vector<PendingMeta> meta;
  std::size_t pending = 0;
  std::vector<StreamDecision> decisions;
  std::uint64_t packets = 0;
  std::uint64_t warmup = 0;
  std::uint64_t batches = 0;
  std::uint64_t decided = 0;
  /// Only allocated in multi-threaded mode.
  std::unique_ptr<SpscQueue<traffic::TracePacket>> queue;
  std::thread worker;
};

StreamServer::StreamServer(const LoweredModel& model, StreamServerOptions opts)
    : model_(&model),
      opts_(opts),
      dim_(FeatureDim(opts.feature)),
      out_dim_(model.OutputDim()) {
  if (opts_.num_shards == 0) {
    throw std::invalid_argument("StreamServer: zero shards");
  }
  if (opts_.batch_size == 0) {
    throw std::invalid_argument("StreamServer: zero batch size");
  }
  if (model.InputDim() != dim_) {
    throw std::invalid_argument(
        "StreamServer: model input dim does not match the feature family");
  }
  shards_.reserve(opts_.num_shards);
  for (std::size_t i = 0; i < opts_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(model, opts_, dim_, out_dim_));
  }
}

StreamServer::~StreamServer() {
  if (running_) Stop();
}

StreamServer::Shard& StreamServer::ShardOf(std::uint64_t digest) {
  // Shard selection uses the high hash bits; FlowTable slot selection uses
  // the low bits — decorrelated views of the same mix.
  return *shards_[(MixDigest(digest) >> 32) % shards_.size()];
}

void StreamServer::Push(const traffic::TracePacket& packet) {
  Shard& shard = ShardOf(packet.key.digest);
  if (!running_) {
    Process(shard, packet);
    return;
  }
  while (!shard.queue->TryPush(packet)) {
    std::this_thread::yield();  // shard backlogged; apply backpressure
  }
}

void StreamServer::Process(Shard& shard, const traffic::TracePacket& packet) {
  ++shard.packets;
  float* row = shard.features.data() + shard.pending * dim_;
  bool full;
  if (opts_.feature == FeatureKind::kRaw) {
    traffic::OnlineFlowStateRaw& state =
        shard.raw_table->FindOrInsert(packet.key);
    extractor_.Update(state, *packet.packet, packet.ts_us);
    full = state.WindowFull();
    if (full) extractor_.EmitRaw(state, row);
  } else {
    traffic::OnlineFlowState& state = shard.table->FindOrInsert(packet.key);
    extractor_.Update(state, *packet.packet, packet.ts_us);
    full = state.WindowFull();
    if (full) {
      if (opts_.feature == FeatureKind::kStat) {
        extractor_.EmitStat(state, row);
      } else {
        extractor_.EmitSeq(state, row);
      }
    }
  }
  if (!full) {
    ++shard.warmup;
    return;
  }
  shard.meta[shard.pending] = {packet.key.digest, packet.flow, packet.index,
                               packet.label};
  if (++shard.pending == opts_.batch_size) FlushShard(shard);
}

void StreamServer::FlushShard(Shard& shard) {
  const std::size_t n = shard.pending;
  if (n == 0) return;
  shard.engine.Infer(
      std::span<const float>(shard.features.data(), n * dim_), n,
      std::span<float>(shard.logits.data(), n * out_dim_));
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = shard.logits.data() + i * out_dim_;
    std::size_t best = 0;
    for (std::size_t d = 1; d < out_dim_; ++d) {
      if (row[d] > row[best]) best = d;
    }
    StreamDecision decision;
    decision.flow_digest = shard.meta[i].digest;
    decision.flow = shard.meta[i].flow;
    decision.index = shard.meta[i].index;
    decision.label = shard.meta[i].label;
    decision.predicted = static_cast<std::int32_t>(best);
    decision.score = row[best];
    shard.decisions.push_back(decision);
  }
  ++shard.batches;
  shard.decided += n;
  shard.pending = 0;
}

void StreamServer::Flush() {
  if (running_) {
    throw std::logic_error("StreamServer::Flush: workers are running");
  }
  for (auto& shard : shards_) FlushShard(*shard);
}

void StreamServer::Start() {
  if (!opts_.multithreaded) {
    throw std::logic_error("StreamServer::Start: single-threaded server");
  }
  if (running_) return;
  closed_.store(false, std::memory_order_release);
  running_ = true;
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->worker = std::thread([this, s] { WorkerLoop(*s); });
  }
}

void StreamServer::Stop() {
  if (!running_) return;
  closed_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  running_ = false;
}

void StreamServer::WorkerLoop(Shard& shard) {
  traffic::TracePacket packet;
  for (;;) {
    if (shard.queue->TryPop(packet)) {
      Process(shard, packet);
      continue;
    }
    if (closed_.load(std::memory_order_acquire)) {
      // The producer has stopped; drain what raced in, then exit.
      while (shard.queue->TryPop(packet)) Process(shard, packet);
      break;
    }
    std::this_thread::yield();
  }
  FlushShard(shard);
}

std::vector<StreamDecision> StreamServer::Serve(
    std::span<const traffic::TracePacket> trace) {
  for (auto& shard : shards_) {
    shard->decisions.reserve(shard->decisions.size() +
                             trace.size() / shards_.size() + 1);
  }
  if (opts_.multithreaded) {
    Start();
    for (const auto& packet : trace) Push(packet);
    Stop();
  } else {
    for (const auto& packet : trace) Push(packet);
    Flush();
  }
  return TakeDecisions();
}

std::vector<StreamDecision> StreamServer::TakeDecisions() {
  if (running_) {
    throw std::logic_error(
        "StreamServer::TakeDecisions: workers are running (Stop first)");
  }
  std::vector<StreamDecision> out;
  std::size_t total = 0;
  for (auto& shard : shards_) total += shard->decisions.size();
  out.reserve(total);
  for (auto& shard : shards_) {
    out.insert(out.end(), shard->decisions.begin(), shard->decisions.end());
    shard->decisions.clear();
  }
  return out;
}

StreamServerStats StreamServer::Stats() const {
  if (running_) {
    throw std::logic_error(
        "StreamServer::Stats: workers are running (Stop first)");
  }
  StreamServerStats stats;
  const FlowStateSpec spec = OnlineFlowStateSpec(opts_.feature);
  stats.stateful_bits_per_flow = spec.BitsPerFlow();
  for (const auto& shard : shards_) {
    stats.packets += shard->packets;
    stats.warmup += shard->warmup;
    stats.decisions += shard->decided;
    stats.batches += shard->batches;
    stats.table += shard->TableStats();
    stats.flows_resident += shard->FlowsResident();
    stats.flow_table_sram_bits +=
        shard->TableSramBits(stats.stateful_bits_per_flow);
  }
  return stats;
}

}  // namespace pegasus::runtime
