// Lowering a CompiledModel onto the PISA pipeline simulator — the role the
// paper's Pegasus-Syntax-to-P4 translator plays on the real switch (§6.2).
//
// Correspondence (Figure 4):
//   Partition  -> key-field selection (free: PHV aliasing)
//   Map        -> one TCAM table per Map op; entries are the clustering-
//                 tree leaf hyperrectangles expanded to ternary rules via
//                 Consecutive Range Coding; action data = the leaf's
//                 precomputed output words
//   SumReduce  -> AddFromData action ops executed by the contributing Map
//                 tables against a shared accumulator field (initialized to
//                 the accumulator's bias at parse time)
//   Concat     -> PHV aliasing (free)
//
// The lowering preserves the CompiledModel's evaluation semantics exactly:
// same clamping, same saturating-add order. LoweredModel::InferRaw and
// CompiledModel::EvaluateRaw are bit-identical (asserted by integration
// tests).
#pragma once

#include <memory>
#include <vector>

#include "core/tablegen.hpp"
#include "dataplane/pipeline.hpp"

namespace pegasus::runtime {

struct LoweringOptions {
  dataplane::SwitchModel switch_model;
  /// Extra per-flow stateful bits the application needs (previous-packet
  /// timestamp, stored fuzzy indexes, ...). Reported, not simulated.
  std::size_t stateful_bits_per_flow = 0;
  /// When a Map's CRC cross-product expansion would exceed this many
  /// ternary entries, the table is lowered as a native range match
  /// (DirtCAM encoding) with one entry per leaf instead — the same
  /// escape hatch the Tofino compiler offers for wide multi-field ranges.
  std::size_t max_ternary_entries_per_table = 4096;
};

class InferenceEngine;

/// A model placed on the simulated switch.
///
/// Per-call Infer/InferRaw are implemented on top of a lazily created
/// single-packet InferenceEngine (see runtime/inference_engine.hpp), so they
/// are allocation-free on the hot path but NOT thread-safe; for concurrent
/// or high-throughput use, construct one InferenceEngine per thread.
class LoweredModel {
 public:
  LoweredModel();
  ~LoweredModel();
  LoweredModel(LoweredModel&& other) noexcept;
  LoweredModel& operator=(LoweredModel&& other) noexcept;

  /// Runs one inference: writes features into the parser-stage PHV fields,
  /// processes the pipeline, reads back the output fields. Returns
  /// dequantized outputs.
  std::vector<float> Infer(std::span<const float> features) const;

  /// Raw fixed-point outputs (for bit-exactness tests).
  std::vector<std::int64_t> InferRaw(std::span<const float> features) const;

  dataplane::ResourceReport Report() const;

  const dataplane::Pipeline& pipeline() const { return *pipeline_; }
  std::size_t NumTables() const { return pipeline_->NumTables(); }
  std::size_t StagesUsed() const { return pipeline_->StagesUsed(); }

  // Execution-surface accessors (the seam the batched InferenceEngine is
  // built on).
  const dataplane::PhvLayout& layout() const { return *layout_; }
  const std::vector<dataplane::FieldId>& input_fields() const {
    return input_fields_;
  }
  const std::vector<dataplane::FieldId>& output_fields() const {
    return output_fields_;
  }
  /// (field, value) pairs the parser writes before the pipeline runs
  /// (accumulator biases).
  const std::vector<std::pair<dataplane::FieldId, std::int64_t>>&
  parser_inits() const {
    return parser_inits_;
  }
  const std::vector<core::DimQuant>& output_quant() const {
    return output_quant_;
  }
  int input_bits() const { return input_bits_; }
  std::size_t InputDim() const { return input_fields_.size(); }
  std::size_t OutputDim() const { return output_fields_.size(); }

 private:
  friend LoweredModel Lower(const core::CompiledModel& model,
                            const LoweringOptions& options);

  std::unique_ptr<dataplane::PhvLayout> layout_;
  std::unique_ptr<dataplane::Pipeline> pipeline_;
  std::vector<dataplane::FieldId> input_fields_;
  std::vector<dataplane::FieldId> output_fields_;
  std::vector<std::pair<dataplane::FieldId, std::int64_t>> parser_inits_;
  std::vector<core::DimQuant> output_quant_;
  int input_bits_ = 8;
  /// Lazy single-packet engine backing Infer/InferRaw. Dropped on move (it
  /// holds a pointer back to this object) and rebuilt on next use.
  mutable std::unique_ptr<InferenceEngine> scratch_;
};

/// Places every Map table of `model` onto the simulated switch.
/// Throws dataplane::PlacementError if the model does not fit — the
/// simulator's rendition of a Tofino compile failure.
LoweredModel Lower(const core::CompiledModel& model,
                   const LoweringOptions& options);

}  // namespace pegasus::runtime
