// Lowering a CompiledModel onto the PISA pipeline simulator — the role the
// paper's Pegasus-Syntax-to-P4 translator plays on the real switch (§6.2).
//
// Correspondence (Figure 4):
//   Partition  -> key-field selection (free: PHV aliasing)
//   Map        -> one TCAM table per Map op; entries are the clustering-
//                 tree leaf hyperrectangles expanded to ternary rules via
//                 Consecutive Range Coding; action data = the leaf's
//                 precomputed output words
//   SumReduce  -> AddFromData action ops executed by the contributing Map
//                 tables against a shared accumulator field (initialized to
//                 the accumulator's bias at parse time)
//   Concat     -> PHV aliasing (free)
//
// The lowering preserves the CompiledModel's evaluation semantics exactly:
// same clamping, same saturating-add order. LoweredModel::InferRaw and
// CompiledModel::EvaluateRaw are bit-identical (asserted by integration
// tests).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/tablegen.hpp"
#include "dataplane/pipeline.hpp"

namespace pegasus::runtime {

struct LoweringOptions {
  dataplane::SwitchModel switch_model;
  /// Extra per-flow stateful bits the application needs (previous-packet
  /// timestamp, stored fuzzy indexes, ...). Reported, not simulated.
  std::size_t stateful_bits_per_flow = 0;
  /// When a Map's CRC cross-product expansion would exceed this many
  /// ternary entries, the table is lowered as a native range match
  /// (DirtCAM encoding) with one entry per leaf instead — the same
  /// escape hatch the Tofino compiler offers for wide multi-field ranges.
  std::size_t max_ternary_entries_per_table = 4096;
};

class InferenceEngine;

/// One lowered leaf of a Map table: CRC per-dimension rule lists, the
/// domain-clipped box, and the action-data words. Unreachable leaves
/// (clipped empty) are omitted entirely — they expand to zero entries.
struct LoweredLeaf {
  std::size_t leaf = 0;  // ClusterTree leaf index
  std::vector<std::vector<dataplane::TernaryRule>> per_dim;
  std::vector<std::uint64_t> lo, hi;
  std::vector<std::int64_t> data;
  std::size_t expansion = 1;  // ternary cross-product entry count
};

/// The complete entry lowering of one Map op — the single source of truth
/// shared by Lower(), the UpdatePlanner's patch / push-sequence emission,
/// and the p4gen conformance path, so all three agree on entry order,
/// match kind and per-leaf entry spans by construction.
struct TableLowering {
  std::string name;        // "map_<op index>"
  bool use_range = false;  // range fallback vs CRC-expanded ternary
  std::size_t total_ternary_entries = 0;
  std::vector<LoweredLeaf> leaves;
  /// entry_first[i] = table entry index of leaves[i]'s first expanded
  /// entry; has leaves.size()+1 slots (back() == num_entries).
  std::vector<std::size_t> entry_first;
  std::size_t num_entries = 0;
  std::vector<int> key_widths;  // per key dim: quantized domain_bits
};

/// Lowers Map op `op_index`'s entries (leaf expansion + range/ternary
/// decision) without building a table. `model.tables()[op_index]` must be
/// populated.
TableLowering LowerMapEntries(const core::CompiledModel& model,
                              std::size_t op_index,
                              std::size_t max_ternary_entries_per_table);

/// Appends one lowered leaf's entries (odometer cross-product order for
/// ternary, a single entry for range) to `out`.
void AppendLeafEntries(const TableLowering& tl, const LoweredLeaf& leaf,
                       std::vector<dataplane::TableEntry>& out);

/// A full-table entry install as a control plane would push it over the
/// wire: table name plus ready-to-install entries.
struct TableEntryPush {
  std::string table;
  dataplane::MatchKind kind = dataplane::MatchKind::kTernary;
  std::vector<dataplane::TableEntry> entries;
};

class LoweredModel;
namespace detail {
/// Shared body of Lower / LowerFromPush (pushes == nullptr regenerates
/// entries from tablegen).
LoweredModel LowerImpl(const core::CompiledModel& model,
                       const LoweringOptions& options,
                       const TableEntryPush* pushes, std::size_t num_pushes);
}  // namespace detail

/// A model placed on the simulated switch.
///
/// Per-call Infer/InferRaw are implemented on top of a lazily created
/// single-packet InferenceEngine (see runtime/inference_engine.hpp), so they
/// are allocation-free on the hot path but NOT thread-safe; for concurrent
/// or high-throughput use, construct one InferenceEngine per thread.
class LoweredModel {
 public:
  LoweredModel();
  ~LoweredModel();
  LoweredModel(LoweredModel&& other) noexcept;
  LoweredModel& operator=(LoweredModel&& other) noexcept;

  /// Runs one inference: writes features into the parser-stage PHV fields,
  /// processes the pipeline, reads back the output fields. Returns
  /// dequantized outputs.
  std::vector<float> Infer(std::span<const float> features) const;

  /// Raw fixed-point outputs (for bit-exactness tests).
  std::vector<std::int64_t> InferRaw(std::span<const float> features) const;

  dataplane::ResourceReport Report() const;

  const dataplane::Pipeline& pipeline() const { return *pipeline_; }
  std::size_t NumTables() const { return pipeline_->NumTables(); }
  std::size_t StagesUsed() const { return pipeline_->StagesUsed(); }

  // Execution-surface accessors (the seam the batched InferenceEngine is
  // built on).
  const dataplane::PhvLayout& layout() const { return *layout_; }
  const std::vector<dataplane::FieldId>& input_fields() const {
    return input_fields_;
  }
  const std::vector<dataplane::FieldId>& output_fields() const {
    return output_fields_;
  }
  /// (field, value) pairs the parser writes before the pipeline runs
  /// (accumulator biases).
  const std::vector<std::pair<dataplane::FieldId, std::int64_t>>&
  parser_inits() const {
    return parser_inits_;
  }
  const std::vector<core::DimQuant>& output_quant() const {
    return output_quant_;
  }
  int input_bits() const { return input_bits_; }
  std::size_t InputDim() const { return input_fields_.size(); }
  std::size_t OutputDim() const { return output_fields_.size(); }

  /// Deep copy preserving placement and every compiled match index (no
  /// re-lowering, no index recompilation). The clone half of the
  /// clone→patch→publish O(delta) update path.
  LoweredModel Clone() const;

  /// Applies per-table entry deltas in place (see Pipeline::ApplyDelta).
  /// Tables stay sealed throughout; the pipeline generation moves, so this
  /// must run BEFORE any InferenceEngine is built over this model — i.e.
  /// on a private Clone(), never on a model already being served. Returns
  /// control-plane bytes pushed.
  std::size_t ApplyDelta(std::span<const dataplane::TablePatch> patches);

 private:
  friend LoweredModel detail::LowerImpl(const core::CompiledModel& model,
                                        const LoweringOptions& options,
                                        const TableEntryPush* pushes,
                                        std::size_t num_pushes);

  std::unique_ptr<dataplane::PhvLayout> layout_;
  std::unique_ptr<dataplane::Pipeline> pipeline_;
  std::vector<dataplane::FieldId> input_fields_;
  std::vector<dataplane::FieldId> output_fields_;
  std::vector<std::pair<dataplane::FieldId, std::int64_t>> parser_inits_;
  std::vector<core::DimQuant> output_quant_;
  int input_bits_ = 8;
  /// Lazy single-packet engine backing Infer/InferRaw. Dropped on move (it
  /// holds a pointer back to this object) and rebuilt on next use.
  mutable std::unique_ptr<InferenceEngine> scratch_;
};

/// Places every Map table of `model` onto the simulated switch.
/// Throws dataplane::PlacementError if the model does not fit — the
/// simulator's rendition of a Tofino compile failure.
LoweredModel Lower(const core::CompiledModel& model,
                   const LoweringOptions& options);

/// Lower variant that installs table entries from a control-plane push
/// sequence instead of regenerating them from tablegen — the replay half
/// of the P4 export conformance test: `EmitP4` + the planner's push
/// sequence must reproduce the served artifact exactly. Layout, action
/// programs and placement are built identically to Lower(); every Map
/// table's entries come from the matching push (throws
/// std::invalid_argument when a table's push is missing or its match kind
/// disagrees with the lowering's ternary/range decision).
LoweredModel LowerFromPush(const core::CompiledModel& model,
                           const LoweringOptions& options,
                           std::span<const TableEntryPush> pushes);

}  // namespace pegasus::runtime
