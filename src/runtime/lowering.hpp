// Lowering a CompiledModel onto the PISA pipeline simulator — the role the
// paper's Pegasus-Syntax-to-P4 translator plays on the real switch (§6.2).
//
// Correspondence (Figure 4):
//   Partition  -> key-field selection (free: PHV aliasing)
//   Map        -> one TCAM table per Map op; entries are the clustering-
//                 tree leaf hyperrectangles expanded to ternary rules via
//                 Consecutive Range Coding; action data = the leaf's
//                 precomputed output words
//   SumReduce  -> AddFromData action ops executed by the contributing Map
//                 tables against a shared accumulator field (initialized to
//                 the accumulator's bias at parse time)
//   Concat     -> PHV aliasing (free)
//
// The lowering preserves the CompiledModel's evaluation semantics exactly:
// same clamping, same saturating-add order. LoweredModel::InferRaw and
// CompiledModel::EvaluateRaw are bit-identical (asserted by integration
// tests).
#pragma once

#include <memory>
#include <vector>

#include "core/tablegen.hpp"
#include "dataplane/pipeline.hpp"

namespace pegasus::runtime {

struct LoweringOptions {
  dataplane::SwitchModel switch_model;
  /// Extra per-flow stateful bits the application needs (previous-packet
  /// timestamp, stored fuzzy indexes, ...). Reported, not simulated.
  std::size_t stateful_bits_per_flow = 0;
  /// When a Map's CRC cross-product expansion would exceed this many
  /// ternary entries, the table is lowered as a native range match
  /// (DirtCAM encoding) with one entry per leaf instead — the same
  /// escape hatch the Tofino compiler offers for wide multi-field ranges.
  std::size_t max_ternary_entries_per_table = 4096;
};

/// A model placed on the simulated switch.
class LoweredModel {
 public:
  /// Runs one inference: writes features into the parser-stage PHV fields,
  /// processes the pipeline, reads back the output fields. Returns
  /// dequantized outputs.
  std::vector<float> Infer(std::span<const float> features) const;

  /// Raw fixed-point outputs (for bit-exactness tests).
  std::vector<std::int64_t> InferRaw(std::span<const float> features) const;

  dataplane::ResourceReport Report() const;

  const dataplane::Pipeline& pipeline() const { return *pipeline_; }
  std::size_t NumTables() const { return pipeline_->NumTables(); }
  std::size_t StagesUsed() const { return pipeline_->StagesUsed(); }

 private:
  friend LoweredModel Lower(const core::CompiledModel& model,
                            const LoweringOptions& options);

  std::unique_ptr<dataplane::PhvLayout> layout_;
  std::unique_ptr<dataplane::Pipeline> pipeline_;
  std::vector<dataplane::FieldId> input_fields_;
  std::vector<dataplane::FieldId> output_fields_;
  /// (field, value) pairs the parser writes before the pipeline runs
  /// (accumulator biases).
  std::vector<std::pair<dataplane::FieldId, std::int64_t>> parser_inits_;
  std::vector<core::DimQuant> output_quant_;
  int input_bits_ = 8;
};

/// Places every Map table of `model` onto the simulated switch.
/// Throws dataplane::PlacementError if the model does not fit — the
/// simulator's rendition of a Tofino compile failure.
LoweredModel Lower(const core::CompiledModel& model,
                   const LoweringOptions& options);

}  // namespace pegasus::runtime
