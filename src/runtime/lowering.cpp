#include "runtime/lowering.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "runtime/inference_engine.hpp"

namespace pegasus::runtime {

namespace {

using core::DimQuant;
using core::Op;
using core::OpKind;
using core::ValueId;
using dataplane::ActionOp;
using dataplane::FieldId;
using dataplane::MatchActionTable;
using dataplane::MatchKind;
using dataplane::TableEntry;
using dataplane::TernaryRule;

}  // namespace

TableLowering LowerMapEntries(const core::CompiledModel& model,
                              std::size_t op_index,
                              std::size_t max_ternary_entries_per_table) {
  const core::Program& p = model.program();
  const auto& quant = model.quant();
  const auto& ops = p.ops();
  const Op& op = ops[op_index];
  if (op.kind != OpKind::kMap || !model.tables()[op_index]) {
    throw std::invalid_argument("LowerMapEntries: op " +
                                std::to_string(op_index) +
                                " is not a tabled Map");
  }
  const core::FuzzyMapTable& fuzzy = *model.tables()[op_index];
  const ValueId in_v = op.map.input;
  const ValueId t = op.map.output;
  bool to_sum = false;
  for (const Op& o : ops) {
    if (o.kind != OpKind::kSumReduce) continue;
    for (ValueId v : o.sum_reduce.inputs) {
      if (v == t) to_sum = true;
    }
  }
  const std::size_t id = p.value(in_v).dim;
  const std::size_t od = p.value(t).dim;
  const auto& tq = quant[t];

  TableLowering tl;
  tl.name = "map_" + std::to_string(op_index);
  for (std::size_t d = 0; d < id; ++d) {
    tl.key_widths.push_back(quant[in_v][d].domain_bits);
  }
  for (std::size_t leaf = 0; leaf < fuzzy.tree.NumLeaves(); ++leaf) {
    const core::LeafBox& box = fuzzy.tree.Box(leaf);
    LoweredLeaf ll;
    ll.leaf = leaf;
    ll.per_dim.resize(id);
    ll.lo.resize(id);
    ll.hi.resize(id);
    bool reachable = true;
    std::size_t expansion = 1;
    for (std::size_t d = 0; d < id; ++d) {
      const auto dmax =
          static_cast<std::uint64_t>(quant[in_v][d].DomainMax());
      const std::uint64_t lo = box.lo[d];
      const std::uint64_t hi = std::min<std::uint64_t>(box.hi[d], dmax);
      if (lo > hi) {
        reachable = false;
        break;
      }
      ll.lo[d] = lo;
      ll.hi[d] = hi;
      ll.per_dim[d] =
          dataplane::RangeToTernary(lo, hi, quant[in_v][d].domain_bits);
      expansion *= ll.per_dim[d].size();
    }
    if (!reachable) continue;  // clipped empty: expands to no entries
    ll.data.resize(od);
    for (std::size_t d = 0; d < od; ++d) {
      std::int64_t word = fuzzy.leaf_raw[leaf][d];
      if (!to_sum) {
        // Materialized outputs are stored pre-biased (u domain).
        word = std::clamp<std::int64_t>(word + tq[d].bias, 0,
                                        tq[d].DomainMax());
      }
      ll.data[d] = word;
    }
    ll.expansion = expansion;
    tl.total_ternary_entries += expansion;
    tl.leaves.push_back(std::move(ll));
  }
  tl.use_range = tl.total_ternary_entries > max_ternary_entries_per_table;
  tl.entry_first.resize(tl.leaves.size() + 1, 0);
  for (std::size_t i = 0; i < tl.leaves.size(); ++i) {
    tl.entry_first[i + 1] =
        tl.entry_first[i] + (tl.use_range ? 1 : tl.leaves[i].expansion);
  }
  tl.num_entries = tl.entry_first.back();
  return tl;
}

void AppendLeafEntries(const TableLowering& tl, const LoweredLeaf& leaf,
                       std::vector<TableEntry>& out) {
  if (tl.use_range) {
    TableEntry entry;
    entry.range_lo = leaf.lo;
    entry.range_hi = leaf.hi;
    entry.action_data = leaf.data;
    out.push_back(std::move(entry));
    return;
  }
  // Cross-product expansion of the per-dimension CRC rule lists, odometer
  // order (dim 0 fastest) — entry order is part of the push-sequence ABI.
  std::vector<std::size_t> idx(leaf.per_dim.size(), 0);
  while (true) {
    TableEntry entry;
    entry.ternary.reserve(leaf.per_dim.size());
    for (std::size_t d = 0; d < leaf.per_dim.size(); ++d) {
      entry.ternary.push_back(leaf.per_dim[d][idx[d]]);
    }
    entry.action_data = leaf.data;
    out.push_back(std::move(entry));
    std::size_t d = 0;
    while (d < leaf.per_dim.size()) {
      if (++idx[d] < leaf.per_dim[d].size()) break;
      idx[d] = 0;
      ++d;
    }
    if (d == leaf.per_dim.size()) break;
  }
}

namespace detail {

LoweredModel LowerImpl(const core::CompiledModel& model,
                       const LoweringOptions& options,
                       const TableEntryPush* pushes,
                       std::size_t num_pushes) {
  const core::Program& p = model.program();
  const auto& quant = model.quant();
  const auto& ops = p.ops();

  LoweredModel lowered;
  lowered.layout_ = std::make_unique<dataplane::PhvLayout>();
  lowered.input_bits_ = model.options().input_bits;

  // Consumer analysis: which Map outputs feed a SumReduce, and which
  // SumReduce consumes them.
  std::vector<int> sum_consumer(p.NumValues(), -1);
  for (std::size_t oi = 0; oi < ops.size(); ++oi) {
    if (ops[oi].kind != OpKind::kSumReduce) continue;
    for (ValueId v : ops[oi].sum_reduce.inputs) {
      sum_consumer[v] = static_cast<int>(oi);
    }
  }

  // ------------------------------------------------------------------
  // Field assignment. fields[v] = one FieldId per dim; SumReduce
  // contributors get no fields (their data is accumulated directly).
  // ------------------------------------------------------------------
  std::vector<std::vector<FieldId>> fields(p.NumValues());
  {
    const std::size_t in_dim = p.value(p.input()).dim;
    for (std::size_t d = 0; d < in_dim; ++d) {
      fields[p.input()].push_back(lowered.layout_->AddField(
          "in_" + std::to_string(d), model.options().input_bits));
    }
  }
  for (std::size_t oi = 0; oi < ops.size(); ++oi) {
    const Op& op = ops[oi];
    switch (op.kind) {
      case OpKind::kPartition: {
        const auto& pf = fields[op.partition.input];
        for (const core::PartitionSegment& s : op.partition.segments) {
          fields[s.output].assign(
              pf.begin() + static_cast<std::ptrdiff_t>(s.offset),
              pf.begin() + static_cast<std::ptrdiff_t>(s.offset + s.length));
        }
        break;
      }
      case OpKind::kConcat: {
        auto& dst = fields[op.concat.output];
        for (ValueId v : op.concat.inputs) {
          dst.insert(dst.end(), fields[v].begin(), fields[v].end());
        }
        break;
      }
      case OpKind::kMap: {
        const ValueId t = op.map.output;
        if (sum_consumer[t] >= 0) break;  // never materialized
        const std::size_t od = p.value(t).dim;
        for (std::size_t d = 0; d < od; ++d) {
          fields[t].push_back(lowered.layout_->AddField(
              "v" + std::to_string(t) + "_" + std::to_string(d),
              quant[t][d].domain_bits));
        }
        break;
      }
      case OpKind::kSumReduce: {
        const ValueId y = op.sum_reduce.output;
        const std::size_t od = p.value(y).dim;
        for (std::size_t d = 0; d < od; ++d) {
          const FieldId f = lowered.layout_->AddField(
              "v" + std::to_string(y) + "_" + std::to_string(d),
              quant[y][d].domain_bits);
          fields[y].push_back(f);
          lowered.parser_inits_.emplace_back(f, quant[y][d].bias);
        }
        break;
      }
    }
  }
  if (lowered.layout_->TotalBits() > options.switch_model.phv_bits) {
    throw dataplane::PlacementError(
        "PHV overflow: program needs " +
        std::to_string(lowered.layout_->TotalBits()) + " bits, switch has " +
        std::to_string(options.switch_model.phv_bits));
  }

  // ------------------------------------------------------------------
  // Table construction + placement.
  // ------------------------------------------------------------------
  lowered.pipeline_ =
      std::make_unique<dataplane::Pipeline>(options.switch_model);
  // Stage after which each value is complete. -1 = available at parse.
  std::vector<int> ready_stage(p.NumValues(), -1);
  // Monotonic placement floor per SumReduce group (keeps saturating-add
  // order identical to the CompiledModel's op order).
  std::unordered_map<int, int> group_floor;

  for (std::size_t oi = 0; oi < ops.size(); ++oi) {
    const Op& op = ops[oi];
    switch (op.kind) {
      case OpKind::kPartition: {
        for (const core::PartitionSegment& s : op.partition.segments) {
          ready_stage[s.output] = ready_stage[op.partition.input];
        }
        break;
      }
      case OpKind::kConcat: {
        int stage = -1;
        for (ValueId v : op.concat.inputs) {
          stage = std::max(stage, ready_stage[v]);
        }
        ready_stage[op.concat.output] = stage;
        break;
      }
      case OpKind::kMap: {
        const ValueId in_v = op.map.input;
        const ValueId t = op.map.output;
        const std::size_t id = p.value(in_v).dim;
        const std::size_t od = p.value(t).dim;
        const bool to_sum = sum_consumer[t] >= 0;

        // Action program.
        std::vector<ActionOp> program;
        const std::vector<FieldId>& targets =
            to_sum ? fields[ops[static_cast<std::size_t>(sum_consumer[t])]
                                .sum_reduce.output]
                   : fields[t];
        const auto& yq =
            to_sum
                ? quant[ops[static_cast<std::size_t>(sum_consumer[t])]
                            .sum_reduce.output]
                : quant[t];
        for (std::size_t d = 0; d < od; ++d) {
          ActionOp a;
          a.kind = to_sum ? ActionOp::Kind::kAddFromData
                          : ActionOp::Kind::kSetFromData;
          a.target = targets[d];
          a.data_index = d;
          a.sat_max = to_sum ? yq[d].DomainMax() : -1;
          program.push_back(a);
        }

        std::vector<FieldId> key_fields = fields[in_v];
        std::vector<int> key_widths;
        for (std::size_t d = 0; d < id; ++d) {
          key_widths.push_back(quant[in_v][d].domain_bits);
        }

        // Per-leaf CRC expansions, clipped boxes and the ternary/range
        // decision come from the shared helper, so the planner's push
        // sequences and patches agree with this lowering by construction.
        TableLowering tl = LowerMapEntries(
            model, oi, options.max_ternary_entries_per_table);
        auto table = std::make_unique<MatchActionTable>(
            tl.name, tl.use_range ? MatchKind::kRange : MatchKind::kTernary,
            std::move(key_fields), std::move(key_widths), std::move(program),
            model.options().value_bits);
        if (pushes == nullptr) {
          std::vector<TableEntry> entries;
          entries.reserve(tl.num_entries);
          for (const LoweredLeaf& ll : tl.leaves) {
            AppendLeafEntries(tl, ll, entries);
          }
          for (TableEntry& e : entries) table->AddEntry(std::move(e));
        } else {
          const TableEntryPush* push = nullptr;
          for (std::size_t pi = 0; pi < num_pushes; ++pi) {
            if (pushes[pi].table == table->name()) {
              push = &pushes[pi];
              break;
            }
          }
          if (push == nullptr) {
            throw std::invalid_argument("LowerFromPush: no push for table '" +
                                        table->name() + "'");
          }
          if (push->kind != table->kind()) {
            throw std::invalid_argument(
                "LowerFromPush: match-kind mismatch for table '" +
                table->name() + "'");
          }
          for (const TableEntry& e : push->entries) table->AddEntry(e);
        }

        int min_stage = ready_stage[in_v] + 1;
        if (to_sum) {
          auto it = group_floor.find(sum_consumer[t]);
          if (it != group_floor.end()) {
            min_stage = std::max(min_stage, it->second);
          }
        }
        const std::size_t placed = lowered.pipeline_->PlaceTable(
            std::move(table), static_cast<std::size_t>(std::max(0, min_stage)));
        if (to_sum) {
          group_floor[sum_consumer[t]] = static_cast<int>(placed);
          // Accumulator completes no earlier than its last contributor.
          ValueId y = ops[static_cast<std::size_t>(sum_consumer[t])]
                          .sum_reduce.output;
          ready_stage[y] = std::max(ready_stage[y], static_cast<int>(placed));
        } else {
          ready_stage[t] = static_cast<int>(placed);
        }
        break;
      }
      case OpKind::kSumReduce:
        // Realized entirely by contributor actions; ready_stage updated
        // as contributors were placed.
        break;
    }
  }

  // Every Map table went through Pipeline::PlaceTable above, which seals
  // it (compiling its bit-vector match index) — the lowered model serves
  // exclusively from the indexed lookup path; InferenceEngine asserts this.
  lowered.input_fields_ = fields[p.input()];
  lowered.output_fields_ = fields[p.output()];
  lowered.output_quant_ = quant[p.output()];
  if (options.stateful_bits_per_flow > 0) {
    lowered.pipeline_->DeclareFlowState(options.stateful_bits_per_flow);
  }
  return lowered;
}

}  // namespace detail

LoweredModel Lower(const core::CompiledModel& model,
                   const LoweringOptions& options) {
  return detail::LowerImpl(model, options, nullptr, 0);
}

LoweredModel LowerFromPush(const core::CompiledModel& model,
                           const LoweringOptions& options,
                           std::span<const TableEntryPush> pushes) {
  // An empty push list must still take the push path (and throw on the
  // first Map table) — an empty span's data() can be null, which LowerImpl
  // would read as "regenerate from tablegen".
  static const TableEntryPush kEmpty{};
  return detail::LowerImpl(model, options,
                           pushes.empty() ? &kEmpty : pushes.data(),
                           pushes.size());
}

LoweredModel LoweredModel::Clone() const {
  LoweredModel copy;
  copy.layout_ = std::make_unique<dataplane::PhvLayout>(*layout_);
  copy.pipeline_ = pipeline_->Clone();
  copy.input_fields_ = input_fields_;
  copy.output_fields_ = output_fields_;
  copy.parser_inits_ = parser_inits_;
  copy.output_quant_ = output_quant_;
  copy.input_bits_ = input_bits_;
  return copy;
}

std::size_t LoweredModel::ApplyDelta(
    std::span<const dataplane::TablePatch> patches) {
  // Any cached single-packet engine snapshots the pipeline generation;
  // drop it so the next Infer rebuilds against the patched tables.
  scratch_.reset();
  return pipeline_->ApplyDelta(patches);
}

LoweredModel::LoweredModel() = default;
LoweredModel::~LoweredModel() = default;

LoweredModel::LoweredModel(LoweredModel&& other) noexcept
    : layout_(std::move(other.layout_)),
      pipeline_(std::move(other.pipeline_)),
      input_fields_(std::move(other.input_fields_)),
      output_fields_(std::move(other.output_fields_)),
      parser_inits_(std::move(other.parser_inits_)),
      output_quant_(std::move(other.output_quant_)),
      input_bits_(other.input_bits_) {
  // scratch_ holds a pointer back to `other`; drop it and rebuild lazily.
  other.scratch_.reset();
}

LoweredModel& LoweredModel::operator=(LoweredModel&& other) noexcept {
  if (this != &other) {
    layout_ = std::move(other.layout_);
    pipeline_ = std::move(other.pipeline_);
    input_fields_ = std::move(other.input_fields_);
    output_fields_ = std::move(other.output_fields_);
    parser_inits_ = std::move(other.parser_inits_);
    output_quant_ = std::move(other.output_quant_);
    input_bits_ = other.input_bits_;
    scratch_.reset();
    other.scratch_.reset();
  }
  return *this;
}

std::vector<std::int64_t> LoweredModel::InferRaw(
    std::span<const float> features) const {
  if (!scratch_) {
    scratch_ = std::make_unique<InferenceEngine>(*this, 1);
  }
  return scratch_->InferRaw(features);
}

std::vector<float> LoweredModel::Infer(std::span<const float> features) const {
  if (!scratch_) {
    scratch_ = std::make_unique<InferenceEngine>(*this, 1);
  }
  return scratch_->Infer(features);
}

dataplane::ResourceReport LoweredModel::Report() const {
  return pipeline_->Report();
}

}  // namespace pegasus::runtime
