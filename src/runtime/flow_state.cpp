#include "runtime/flow_state.hpp"

#include <stdexcept>

namespace pegasus::runtime {

FlowStateTable::FlowStateTable(FlowStateSpec spec, std::size_t num_flows)
    : spec_(std::move(spec)) {
  if (num_flows == 0) {
    throw std::invalid_argument("FlowStateTable: zero flows");
  }
  for (const FlowStateField& f : spec_.fields()) {
    std::vector<dataplane::RegisterArray> instances;
    instances.reserve(f.count);
    for (std::size_t i = 0; i < f.count; ++i) {
      instances.emplace_back(f.name + "[" + std::to_string(i) + "]",
                             f.bits, num_flows);
    }
    arrays_.push_back(std::move(instances));
  }
}

std::int64_t FlowStateTable::Read(const dataplane::FlowKey& key,
                                  std::size_t field,
                                  std::size_t instance) const {
  return arrays_.at(field).at(instance).Read(key);
}

void FlowStateTable::Write(const dataplane::FlowKey& key, std::size_t field,
                           std::size_t instance, std::int64_t value) {
  arrays_.at(field).at(instance).Write(key, value);
}

void FlowStateTable::PushWindow(const dataplane::FlowKey& key,
                                std::size_t field, std::int64_t value) {
  auto& instances = arrays_.at(field);
  for (std::size_t i = instances.size(); i-- > 1;) {
    instances[i].Write(key, instances[i - 1].Read(key));
  }
  instances[0].Write(key, value);
}

std::size_t FlowStateTable::SramBits() const {
  std::size_t bits = 0;
  for (const auto& instances : arrays_) {
    for (const auto& arr : instances) bits += arr.SramBits();
  }
  return bits;
}

}  // namespace pegasus::runtime
