// Batched, allocation-free inference over a LoweredModel.
//
// The per-call LoweredModel::Infer path used to allocate a fresh PHV and
// output vectors for every packet. The engine instead preallocates a pool
// of PHVs at construction and, per batch, (1) resets + fills the parser
// state for up to `batch_capacity` packets, (2) runs the whole batch
// through the pipeline stage-major (dataplane::Pipeline::ProcessBatch, so
// each table's entries stay cache-hot across packets), and (3) reads the
// raw / dequantized outputs into caller-provided buffers. Nothing is
// allocated after construction on the span-based paths.
//
// Bit-exactness: every packet sees exactly the writes LoweredModel::InferRaw
// performed — zeroed PHV, clamped features, parser inits, stages in order —
// so batched outputs are bit-identical to N sequential per-call inferences
// (asserted by tests/test_inference_engine.cpp). LoweredModel::Infer and
// InferRaw are themselves reimplemented on a capacity-1 engine.
//
// Thread-safety: an engine owns mutable scratch state; use one engine per
// thread. The engine borrows the LoweredModel and must not outlive it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dataplane/phv.hpp"
#include "runtime/lowering.hpp"

namespace pegasus::runtime {

class InferenceEngine {
 public:
  static constexpr std::size_t kDefaultBatchCapacity = 64;

  /// Cumulative work counters, aggregated by StreamServerStats per shard.
  /// `chunks` counts pipeline batch launches (<= batch_capacity packets
  /// each); `table_hits` is summed over Pipeline::ProcessBatch.
  struct Stats {
    std::uint64_t packets = 0;
    std::uint64_t chunks = 0;
    std::uint64_t table_hits = 0;

    Stats& operator+=(const Stats& o) {
      packets += o.packets;
      chunks += o.chunks;
      table_hits += o.table_hits;
      return *this;
    }
  };

  explicit InferenceEngine(const LoweredModel& model,
                           std::size_t batch_capacity = kDefaultBatchCapacity);

  std::size_t batch_capacity() const { return pool_.size(); }
  std::size_t input_dim() const { return model_->InputDim(); }
  std::size_t output_dim() const { return model_->OutputDim(); }

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = {}; }

  /// Batched raw inference. `features` holds `n` rows of input_dim floats
  /// (row-major); `out_raw` must hold n * output_dim words. Batches larger
  /// than the capacity are processed in capacity-sized chunks. Throws
  /// std::invalid_argument on size mismatches.
  void InferRaw(std::span<const float> features, std::size_t n,
                std::span<std::int64_t> out_raw);

  /// Batched dequantized inference; `out` must hold n * output_dim floats.
  void Infer(std::span<const float> features, std::size_t n,
             std::span<float> out);

  /// Single-packet conveniences reusing the pool (only the returned vector
  /// is allocated). These are what LoweredModel::Infer/InferRaw delegate to.
  std::vector<std::int64_t> InferRaw(std::span<const float> features);
  std::vector<float> Infer(std::span<const float> features);

 private:
  /// Fills + runs pool_[0..n) for rows starting at `rows`; outputs are read
  /// back by the caller.
  void RunChunk(const float* rows, std::size_t n);

  const LoweredModel* model_;
  std::vector<dataplane::Phv> pool_;
  /// Per-chunk raw outputs for the dequantizing Infer path.
  std::vector<std::int64_t> raw_scratch_;
  Stats stats_;
  /// Pipeline::Generation() snapshot from construction; RunChunk asserts it
  /// unchanged in debug builds (use-after-invalidate detection — a placed
  /// table mutated under a live engine).
  std::uint64_t pipeline_generation_ = 0;
};

}  // namespace pegasus::runtime
