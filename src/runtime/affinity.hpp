// CPU affinity / NUMA placement for the streaming dataplane.
//
// PR 6 built the thread geometry (N ingest producers, per-shard consumer
// workers, SPSC rings between them); this completes it with placement. A
// shard's FlowTable and rings are only fast if the worker that owns them
// runs on a core near the memory holding them — cross-socket probes double
// the miss cost the split-lane layout just removed. The policy layer here
// is deliberately dependency-free: Linux sched_setaffinity for pinning and
// a sysfs probe for CPU→NUMA-node mapping (no libnuma), with graceful
// no-ops on other platforms.
//
// First-touch discipline does the actual NUMA placement: StreamServer
// defers FlowTable construction to the pinned worker thread, so the pages
// backing a shard's state fault in on (and stay local to) the worker's
// node.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pegasus::runtime {

/// Where dataplane threads run.
///  kNone     — leave scheduling to the OS (default; MT == ST equality and
///              every existing configuration are unaffected).
///  kCompact  — pack workers onto consecutive CPUs from 0, ingest threads
///              on the CPUs after them (shares caches, minimizes sockets).
///  kScatter  — spread threads across the CPU range with a uniform stride
///              (maximizes per-thread cache/memory bandwidth).
///  kExplicit — caller-provided CPU lists (worker_cpus / ingest_cpus).
enum class CpuPinPolicy { kNone, kCompact, kScatter, kExplicit };

const char* CpuPinPolicyName(CpuPinPolicy p);

/// Number of online CPUs (≥ 1; falls back to hardware_concurrency).
int OnlineCpuCount();

/// NUMA node of `cpu` from sysfs, or -1 when unknown (non-Linux, or no
/// NUMA topology exposed).
int NumaNodeOfCpu(int cpu);

/// Resolved placement: one CPU id per thread, -1 = leave unpinned.
struct PinPlan {
  std::vector<int> worker_cpu;  // [num_workers]
  std::vector<int> ingest_cpu;  // [num_ingest]

  /// Human-readable "w:0,1 i:2,3" summary for logs/bench JSON.
  std::string Describe() const;
};

/// Builds the per-thread CPU assignment for `num_workers` shard workers and
/// `num_ingest` ingest threads. For kExplicit the provided lists are used
/// modulo their size (so 4 workers over "0,2" alternate between the two);
/// an empty worker list under kExplicit, or any out-of-range CPU id, throws
/// std::invalid_argument. Other policies ignore the lists.
PinPlan MakePinPlan(CpuPinPolicy policy, std::size_t num_workers,
                    std::size_t num_ingest,
                    const std::vector<int>& worker_cpus = {},
                    const std::vector<int>& ingest_cpus = {});

/// Pins the calling thread to `cpu`. cpu < 0 is a successful no-op; returns
/// false when the platform call fails (non-Linux always returns true for
/// cpu < 0 and false otherwise is avoided — it no-ops true, pinning is
/// advisory).
bool PinThisThread(int cpu);

/// Pins the calling thread for a scope and restores the previous affinity
/// mask on destruction — used for ingest work that rides a caller's thread
/// (Serve()'s partition 0), where leaking a one-CPU mask to the caller
/// would be rude.
class ScopedThreadPin {
 public:
  explicit ScopedThreadPin(int cpu);
  ~ScopedThreadPin();

  ScopedThreadPin(const ScopedThreadPin&) = delete;
  ScopedThreadPin& operator=(const ScopedThreadPin&) = delete;

  bool active() const { return active_; }

 private:
  bool active_ = false;
#if defined(__linux__)
  // Opaque storage for the saved cpu_set_t (kept out of the header).
  unsigned long saved_mask_[16] = {};
  bool saved_ = false;
#endif
};

}  // namespace pegasus::runtime
