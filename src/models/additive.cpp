#include "models/additive.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"

namespace pegasus::models {

AdditiveModel::AdditiveModel(const AdditiveConfig& cfg) : cfg_(cfg) {
  if (cfg_.segments.empty()) {
    throw std::invalid_argument("AdditiveModel: no segments");
  }
  std::mt19937_64 rng(cfg_.seed);
  for (const Segment& seg : cfg_.segments) {
    nn::Sequential net;
    std::size_t prev = seg.length;
    for (std::size_t h : cfg_.hidden) {
      net.Emplace<nn::Dense>(prev, h, rng);
      net.Emplace<nn::ReLU>();
      prev = h;
    }
    net.Emplace<nn::Dense>(prev, cfg_.out_dim, rng);
    subnets_.push_back(std::move(net));
  }
}

std::vector<nn::Param*> AdditiveModel::Params() {
  std::vector<nn::Param*> out;
  for (auto& net : subnets_) {
    for (nn::Param* p : net.Params()) out.push_back(p);
  }
  return out;
}

std::size_t AdditiveModel::ParamCount() {
  std::size_t n = 0;
  for (auto& net : subnets_) n += net.ParamCount();
  return n;
}

nn::Tensor AdditiveModel::ForwardBatch(const nn::Tensor& x, bool training) {
  const std::size_t n = x.dim(0);
  nn::Tensor out({n, cfg_.out_dim});
  for (std::size_t si = 0; si < subnets_.size(); ++si) {
    const Segment& seg = cfg_.segments[si];
    nn::Tensor slice({n, seg.length});
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k = 0; k < seg.length; ++k) {
        slice.at(i, k) = x.at(i, seg.offset + k);
      }
    }
    out.Add(subnets_[si].Forward(slice, training));
  }
  return out;
}

void AdditiveModel::BackwardBatch(const nn::Tensor& grad) {
  // d(sum)/d(subnet_i output) = identity: every subnet receives `grad`.
  for (auto& net : subnets_) net.Backward(grad);
}

void AdditiveModel::TrainClassifier(std::span<const float> x,
                                    const std::vector<std::int32_t>& labels,
                                    std::size_t n, std::size_t dim) {
  if (n == 0 || x.size() != n * dim || labels.size() != n) {
    throw std::invalid_argument("AdditiveModel::TrainClassifier: bad data");
  }
  nn::Adam opt(Params(), cfg_.lr);
  std::mt19937_64 rng(cfg_.seed + 1);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng);
    for (std::size_t start = 0; start < n; start += cfg_.batch) {
      const std::size_t end = std::min(n, start + cfg_.batch);
      const std::size_t bn = end - start;
      nn::Tensor bx({bn, dim});
      std::vector<std::int32_t> by(bn);
      for (std::size_t i = 0; i < bn; ++i) {
        const std::size_t smp = order[start + i];
        std::copy_n(x.data() + smp * dim, dim,
                    bx.data().data() + i * dim);
        by[i] = labels[smp];
      }
      opt.ZeroGrad();
      nn::Tensor logits = ForwardBatch(bx, /*training=*/true);
      nn::LossResult res = nn::SoftmaxCrossEntropy(logits, by);
      if (!std::isfinite(res.loss)) {
        throw std::runtime_error("AdditiveModel: training diverged");
      }
      BackwardBatch(res.grad);
      opt.Step();
    }
  }
}

std::vector<float> AdditiveModel::Predict(std::span<const float> x) {
  nn::Tensor bx({1, x.size()}, std::vector<float>(x.begin(), x.end()));
  nn::Tensor out = ForwardBatch(bx, /*training=*/false);
  return std::vector<float>(out.data().begin(), out.data().end());
}

std::vector<float> AdditiveModel::SegmentContribution(
    std::size_t i, std::span<const float> seg_x) {
  nn::Tensor bx({1, seg_x.size()},
                std::vector<float>(seg_x.begin(), seg_x.end()));
  nn::Tensor out = subnets_.at(i).Forward(bx, /*training=*/false);
  return std::vector<float>(out.data().begin(), out.data().end());
}

}  // namespace pegasus::models
