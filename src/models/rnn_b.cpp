#include "models/rnn_b.hpp"

#include <cmath>

#include "compiler/compiler.hpp"
#include "core/operators.hpp"
#include "nn/trainer.hpp"

namespace pegasus::models {

namespace {

/// One RNN step as a Map function: input = (len, ipd, h_prev...) raw
/// domain; normalization of the feature dims is folded in. h_prev dims are
/// already in the model's activation domain.
core::MapFunction StepMap(const nn::SimpleRNN& rnn_weights,
                          std::span<const float> wx,
                          std::span<const float> wh,
                          std::span<const float> bias, std::size_t hidden,
                          std::size_t step) {
  (void)rnn_weights;
  std::vector<float> wx_v(wx.begin(), wx.end());
  std::vector<float> wh_v(wh.begin(), wh.end());
  std::vector<float> b_v(bias.begin(), bias.end());
  const bool first = step == 0;
  const std::size_t in_dim = first ? 2 : 2 + hidden;
  return core::MakeSubnet(
      "rnn_step" + std::to_string(step), in_dim, hidden,
      [wx_v, wh_v, b_v, hidden, first](std::span<const float> x) {
        std::vector<float> h(hidden);
        const float f0 = Normalize(x[0]);
        const float f1 = Normalize(x[1]);
        for (std::size_t j = 0; j < hidden; ++j) {
          float acc = b_v[j] + f0 * wx_v[0 * hidden + j] +
                      f1 * wx_v[1 * hidden + j];
          if (!first) {
            for (std::size_t k = 0; k < hidden; ++k) {
              acc += x[2 + k] * wh_v[k * hidden + j];
            }
          }
          h[j] = std::tanh(acc);
        }
        return h;
      });
}

}  // namespace

std::unique_ptr<RnnB> RnnB::Train(std::span<const float> x,
                                  const std::vector<std::int32_t>& labels,
                                  std::size_t n, std::size_t dim,
                                  std::size_t num_classes,
                                  const RnnBConfig& cfg) {
  if (dim % 2 != 0) {
    throw std::invalid_argument("RnnB::Train: dim must be 2*window");
  }
  auto model = std::make_unique<RnnB>();
  model->dim_ = dim;
  model->window_ = dim / 2;

  // ---- float training -------------------------------------------------
  std::mt19937_64 rng(cfg.seed);
  nn::SimpleRNN* rnn =
      model->net_.Emplace<nn::SimpleRNN>(2, cfg.hidden, rng);
  nn::Dense* readout =
      model->net_.Emplace<nn::Dense>(cfg.hidden, num_classes, rng);
  model->size_kb_ = model->net_.ModelSizeKb(32);

  std::vector<float> xn(x.begin(), x.end());
  for (float& v : xn) v = Normalize(v);
  nn::Tensor tx({n, model->window_, 2}, xn);
  nn::TrainConfig tc;
  tc.epochs = cfg.epochs;
  tc.seed = cfg.seed;
  nn::TrainClassifier(model->net_, tx, labels, tc);

  // ---- primitive program ----------------------------------------------
  // Step t's Map is keyed on (len_t, ipd_t, h_{t-1}); the readout Map maps
  // h_{T-1} to logits.
  core::ProgramBuilder b(dim);
  std::vector<std::pair<std::size_t, std::size_t>> segs;
  for (std::size_t t = 0; t < model->window_; ++t) {
    segs.emplace_back(2 * t, 2);
  }
  const std::vector<core::ValueId> steps = b.PartitionExplicit(b.input(), segs);
  const auto& wx = rnn->Params()[0]->value;
  const auto& wh = rnn->Params()[1]->value;
  const auto& bias = rnn->Params()[2]->value;

  core::ValueId h = b.Map(
      steps[0],
      StepMap(*rnn, wx.data(), wh.data(), bias.data(), cfg.hidden, 0),
      cfg.fuzzy_leaves_step);
  for (std::size_t t = 1; t < model->window_; ++t) {
    const core::ValueId cat = b.Concat({steps[t], h});
    h = b.Map(cat,
              StepMap(*rnn, wx.data(), wh.data(), bias.data(), cfg.hidden, t),
              cfg.fuzzy_leaves_step);
  }
  std::vector<float> v_w(readout->weight().value.data().begin(),
                         readout->weight().value.data().end());
  std::vector<float> v_b(readout->bias().value.data().begin(),
                         readout->bias().value.data().end());
  const core::ValueId logits =
      b.Map(h,
            core::MakeLinear(std::move(v_w), cfg.hidden, num_classes,
                             std::move(v_b), "readout"),
            cfg.fuzzy_leaves_readout);
  core::Program program = b.Finish(logits);
  model->compiled_ =
      compiler::CompileToModel(std::move(program), x, n, cfg.compile).model;
  return model;
}

std::vector<float> RnnB::FloatPredict(std::span<const float> features) const {
  std::vector<float> xn(features.begin(), features.end());
  for (float& v : xn) v = Normalize(v);
  nn::Tensor tx({1, window_, 2}, xn);
  nn::Tensor out = net_.Forward(tx, /*training=*/false);
  return std::vector<float>(out.data().begin(), out.data().end());
}

runtime::FlowStateSpec RnnB::FlowState() const {
  // 240 bits: the raw (len, ipd) of the previous 7 packets (112), the
  // previous-packet timestamp (16), and the per-step hidden checkpoint the
  // switch carries between pipeline passes (14 x 8 = 112).
  runtime::FlowStateSpec spec;
  spec.Add("win_len", 8, 7)
      .Add("win_ipd", 8, 7)
      .Add("prev_ts", 16)
      .Add("hidden_ckpt", 8, 14);
  return spec;
}

}  // namespace pegasus::models
