// RNN-B (paper §6.3): a windowed simple RNN over (length, IPD) sequences,
// following BoS's windowed design — all time steps execute on the switch
// within one window, no hidden-state write-back. On the dataplane every
// step is ONE fuzzy Map keyed on (x_t, h_{t-1}); the readout is a final
// Map. Unlike BoS, inputs and hidden states are 8/quantized fixed-point,
// not binary.
#pragma once

#include <memory>

#include "models/common.hpp"
#include "nn/layers.hpp"

namespace pegasus::models {

struct RnnBConfig {
  std::size_t hidden = 14;
  std::size_t fuzzy_leaves_step = 160;
  std::size_t fuzzy_leaves_readout = 96;
  std::size_t epochs = 30;
  std::uint64_t seed = 41;
  core::CompileOptions compile;
};

class RnnB : public TrainedModel {
 public:
  /// `dim` must be 2*window (interleaved len, ipd).
  static std::unique_ptr<RnnB> Train(std::span<const float> x,
                                     const std::vector<std::int32_t>& labels,
                                     std::size_t n, std::size_t dim,
                                     std::size_t num_classes,
                                     const RnnBConfig& cfg = {});

  const std::string& Name() const override { return name_; }
  std::vector<float> FloatPredict(
      std::span<const float> features) const override;
  const core::CompiledModel& Compiled() const override { return compiled_; }
  std::size_t InputScaleBits() const override { return dim_ * 8; }
  double ModelSizeKb() const override { return size_kb_; }
  runtime::FlowStateSpec FlowState() const override;

 private:
  std::string name_ = "RNN-B";
  mutable nn::Sequential net_;  // SimpleRNN + Dense readout
  core::CompiledModel compiled_;
  std::size_t dim_ = 0;
  std::size_t window_ = 8;
  double size_kb_ = 0.0;
};

}  // namespace pegasus::models
