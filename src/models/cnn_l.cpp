#include "models/cnn_l.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "compiler/compiler.hpp"
#include "core/operators.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace pegasus::models {

namespace {

constexpr std::size_t kPkts = traffic::kWindow;              // 8
constexpr std::size_t kBytes = traffic::kRawBytesPerPacket;  // 60

/// Quantization of extractor features for the standalone classifier
/// program: feat in (-4, 4) -> [0, 255].
float QuantFeat(float f) {
  return std::clamp((f + 4.0f) * 32.0f, 0.0f, 255.0f);
}
float DequantFeat(float q) { return q / 32.0f - 4.0f; }

}  // namespace

std::vector<float> CnnL::PackInput(std::span<const float> bytes,
                                   std::span<const float> seq, bool use_ipd) {
  std::vector<float> packed(bytes.begin(), bytes.end());
  if (use_ipd) {
    for (std::size_t t = 0; t < kPkts; ++t) {
      packed.push_back(seq[2 * t + 1]);  // ipd of packet t
    }
  }
  return packed;
}

std::unique_ptr<CnnL> CnnL::Train(std::span<const float> x,
                                  std::span<const float> seq,
                                  const std::vector<std::int32_t>& labels,
                                  std::size_t n, std::size_t num_classes,
                                  const CnnLConfig& cfg) {
  if (n == 0 || x.size() != n * kPkts * kBytes || labels.size() != n ||
      seq.size() != n * kPkts * 2) {
    throw std::invalid_argument("CnnL::Train: bad data shapes");
  }
  if (kBytes % cfg.byte_segment != 0) {
    throw std::invalid_argument("CnnL::Train: byte_segment must divide 60");
  }
  auto model = std::make_unique<CnnL>();
  model->cfg_ = cfg;
  model->num_classes_ = num_classes;

  // ---- architecture ----------------------------------------------------
  AdditiveConfig ecfg;
  for (std::size_t off = 0; off < kBytes; off += cfg.byte_segment) {
    ecfg.segments.push_back(Segment{off, cfg.byte_segment});
  }
  ecfg.hidden = cfg.extractor_hidden;
  ecfg.out_dim = cfg.feat_dim;
  ecfg.seed = cfg.seed;
  model->extractor_ = std::make_unique<AdditiveModel>(ecfg);

  std::mt19937_64 rng(cfg.seed + 1);
  const std::size_t head_in = cfg.feat_dim + (cfg.use_ipd ? 1 : 0);
  for (std::size_t t = 0; t < kPkts; ++t) {
    nn::Sequential head;
    head.Emplace<nn::Dense>(head_in, cfg.head_hidden, rng);
    head.Emplace<nn::ReLU>();
    head.Emplace<nn::Dense>(cfg.head_hidden, num_classes, rng);
    model->heads_.push_back(std::move(head));
  }
  std::size_t params = model->extractor_->ParamCount();
  for (auto& h : model->heads_) params += h.ParamCount();
  model->size_kb_ = static_cast<double>(params) * 32.0 / 1000.0;

  // ---- end-to-end training (deep sets, shared extractor) ---------------
  std::vector<nn::Param*> all_params = model->extractor_->Params();
  for (auto& h : model->heads_) {
    for (nn::Param* p : h.Params()) all_params.push_back(p);
  }
  nn::Adam opt(all_params, cfg.lr);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::mt19937_64 shuffle_rng(cfg.seed + 2);

  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), shuffle_rng);
    for (std::size_t start = 0; start < n; start += cfg.batch) {
      const std::size_t end = std::min(n, start + cfg.batch);
      const std::size_t bn = end - start;

      // Extractor batch: every packet of every sample is one row.
      nn::Tensor bytes_b({bn * kPkts, kBytes});
      std::vector<float> ipd_n(bn * kPkts);
      std::vector<std::int32_t> by(bn);
      for (std::size_t i = 0; i < bn; ++i) {
        const std::size_t smp = order[start + i];
        by[i] = labels[smp];
        for (std::size_t t = 0; t < kPkts; ++t) {
          for (std::size_t bb = 0; bb < kBytes; ++bb) {
            bytes_b.at(i * kPkts + t, bb) =
                Normalize(x[(smp * kPkts + t) * kBytes + bb]);
          }
          ipd_n[i * kPkts + t] = Normalize(seq[smp * kPkts * 2 + 2 * t + 1]);
        }
      }
      opt.ZeroGrad();
      nn::Tensor feats =
          model->extractor_->ForwardBatch(bytes_b, /*training=*/true);
      // tanh bound on the summed features
      nn::Tensor tfeats(feats.shape());
      for (std::size_t i = 0; i < feats.size(); ++i) {
        tfeats[i] = std::tanh(feats[i]);
      }
      // heads
      nn::Tensor logits({bn, num_classes});
      std::vector<nn::Tensor> head_inputs(kPkts);
      for (std::size_t t = 0; t < kPkts; ++t) {
        nn::Tensor hin({bn, head_in});
        for (std::size_t i = 0; i < bn; ++i) {
          for (std::size_t k = 0; k < cfg.feat_dim; ++k) {
            hin.at(i, k) = tfeats.at(i * kPkts + t, k);
          }
          if (cfg.use_ipd) {
            hin.at(i, cfg.feat_dim) = ipd_n[i * kPkts + t];
          }
        }
        head_inputs[t] = hin;
        logits.Add(model->heads_[t].Forward(hin, /*training=*/true));
      }
      nn::LossResult res = nn::SoftmaxCrossEntropy(logits, by);
      if (!std::isfinite(res.loss)) {
        throw std::runtime_error("CnnL: training diverged");
      }
      // backward
      nn::Tensor dfeats({bn * kPkts, cfg.feat_dim});
      for (std::size_t t = 0; t < kPkts; ++t) {
        nn::Tensor dhin = model->heads_[t].Backward(res.grad);
        for (std::size_t i = 0; i < bn; ++i) {
          for (std::size_t k = 0; k < cfg.feat_dim; ++k) {
            const float tv = tfeats.at(i * kPkts + t, k);
            dfeats.at(i * kPkts + t, k) +=
                dhin.at(i, k) * (1.0f - tv * tv);
          }
        }
      }
      model->extractor_->BackwardBatch(dfeats);
      opt.Step();
    }
  }

  // ---- primitive programs ----------------------------------------------
  AdditiveModel* ext = model->extractor_.get();
  std::vector<nn::Sequential>* heads = &model->heads_;
  const std::size_t F = cfg.feat_dim;
  const bool use_ipd = cfg.use_ipd;
  const std::size_t head_leaves = std::size_t{1} << cfg.index_bits;

  auto seg_map = [&](std::size_t si, std::size_t seg_len) {
    return core::MakeSubnet(
        "cnnl_enc" + std::to_string(si), seg_len, F,
        [ext, si](std::span<const float> seg) {
          std::vector<float> norm(seg.size());
          for (std::size_t i = 0; i < seg.size(); ++i) {
            norm[i] = Normalize(seg[i]);
          }
          return ext->SegmentContribution(si, norm);
        });
  };
  // Head fn over (raw feature sums, raw ipd): tanh + head MLP.
  auto head_map = [&](std::size_t t, bool dequant_feat) {
    const std::size_t in_dim = F + (use_ipd ? 1 : 0);
    return core::MakeSubnet(
        "cnnl_head" + std::to_string(t), in_dim, model->num_classes_,
        [heads, t, F, use_ipd, dequant_feat](std::span<const float> in) {
          std::vector<float> hin(F + (use_ipd ? 1 : 0));
          for (std::size_t k = 0; k < F; ++k) {
            const float f = dequant_feat ? DequantFeat(in[k]) : in[k];
            hin[k] = std::tanh(f);
          }
          if (use_ipd) hin[F] = Normalize(in[F]);
          nn::Tensor tx({1, hin.size()}, hin);
          nn::Tensor out = (*heads)[t].Forward(tx, /*training=*/false);
          return std::vector<float>(out.data().begin(), out.data().end());
        });
  };

  // (a) End-to-end program: accuracy path.
  {
    const std::size_t in_dim = kPkts * kBytes + (use_ipd ? kPkts : 0);
    core::ProgramBuilder b(in_dim);
    std::vector<core::ValueId> head_outs;
    for (std::size_t t = 0; t < kPkts; ++t) {
      std::vector<std::pair<std::size_t, std::size_t>> segs;
      for (std::size_t off = 0; off < kBytes; off += cfg.byte_segment) {
        segs.emplace_back(t * kBytes + off, cfg.byte_segment);
      }
      if (use_ipd) {
        segs.emplace_back(kPkts * kBytes + t, 1);
      }
      const std::vector<core::ValueId> parts =
          b.PartitionExplicit(b.input(), segs);
      std::vector<core::ValueId> contribs;
      for (std::size_t si = 0; si + (use_ipd ? 1 : 0) < parts.size(); ++si) {
        contribs.push_back(b.Map(parts[si], seg_map(si, cfg.byte_segment),
                                 cfg.extractor_leaves));
      }
      core::ValueId feat =
          b.SumReduce(std::span<const core::ValueId>(contribs));
      core::ValueId head_in =
          use_ipd ? b.Concat({feat, parts.back()}) : feat;
      head_outs.push_back(b.Map(head_in, head_map(t, /*dequant=*/false),
                                head_leaves));
    }
    const core::ValueId logits =
        b.SumReduce(std::span<const core::ValueId>(head_outs));
    core::Program program = b.Finish(logits);
    // Pack training inputs.
    std::vector<float> packed;
    packed.reserve(n * (kPkts * kBytes + (use_ipd ? kPkts : 0)));
    for (std::size_t i = 0; i < n; ++i) {
      const auto row = CnnL::PackInput(
          x.subspan(i * kPkts * kBytes, kPkts * kBytes),
          seq.subspan(i * kPkts * 2, kPkts * 2), use_ipd);
      packed.insert(packed.end(), row.begin(), row.end());
    }
    model->compiled_ = compiler::CompileToModel(std::move(program), packed, n,
                                                cfg.compile)
                           .model;
  }

  // (b) Per-packet extractor program (shared tables): resource path.
  {
    core::ProgramBuilder b(kBytes);
    const std::vector<core::ValueId> parts =
        b.Partition(b.input(), cfg.byte_segment, cfg.byte_segment);
    std::vector<core::ValueId> contribs;
    for (std::size_t si = 0; si < parts.size(); ++si) {
      contribs.push_back(
          b.Map(parts[si], seg_map(si, cfg.byte_segment),
                cfg.extractor_leaves));
    }
    const core::ValueId feat =
        b.SumReduce(std::span<const core::ValueId>(contribs));
    core::Program program = b.Finish(feat);
    // Training inputs: every packet of every sample.
    std::vector<float> pkt_rows(x.begin(), x.end());
    model->compiled_extractor_ =
        compiler::CompileToModel(std::move(program), pkt_rows, n * kPkts,
                                 cfg.compile)
            .model;
  }

  // (c) Window classifier program over stored (quantized feature, IPD)
  // tuples: resource path.
  {
    const std::size_t per_pkt = F + (use_ipd ? 1 : 0);
    core::ProgramBuilder b(kPkts * per_pkt);
    const std::vector<core::ValueId> parts =
        b.Partition(b.input(), per_pkt, per_pkt);
    std::vector<core::ValueId> contribs;
    for (std::size_t t = 0; t < kPkts; ++t) {
      contribs.push_back(
          b.Map(parts[t], head_map(t, /*dequant=*/true), head_leaves));
    }
    const core::ValueId logits =
        b.SumReduce(std::span<const core::ValueId>(contribs));
    core::Program program = b.Finish(logits);
    // Build classifier training rows from float extractor outputs.
    const std::size_t rows = std::min<std::size_t>(n, 4000);
    std::vector<float> cx(rows * kPkts * per_pkt);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t t = 0; t < kPkts; ++t) {
        std::vector<float> norm(kBytes);
        for (std::size_t bb = 0; bb < kBytes; ++bb) {
          norm[bb] = Normalize(x[(i * kPkts + t) * kBytes + bb]);
        }
        // Raw (pre-tanh) feature sums, then quantize.
        std::vector<float> feat = ext->Predict(norm);
        for (std::size_t k = 0; k < F; ++k) {
          cx[(i * kPkts + t) * per_pkt + k] = QuantFeat(feat[k]);
        }
        if (use_ipd) {
          cx[(i * kPkts + t) * per_pkt + F] =
              seq[i * kPkts * 2 + 2 * t + 1];
        }
      }
    }
    model->compiled_classifier_ =
        compiler::CompileToModel(std::move(program), cx, rows, cfg.compile)
            .model;
  }
  return model;
}

std::vector<float> CnnL::FloatPredict(std::span<const float> features) const {
  const std::size_t in_dim =
      kPkts * kBytes + (cfg_.use_ipd ? kPkts : 0);
  if (features.size() != in_dim) {
    throw std::invalid_argument("CnnL::FloatPredict: bad input dim");
  }
  std::vector<float> logits(num_classes_, 0.0f);
  for (std::size_t t = 0; t < kPkts; ++t) {
    std::vector<float> norm(kBytes);
    for (std::size_t bb = 0; bb < kBytes; ++bb) {
      norm[bb] = Normalize(features[t * kBytes + bb]);
    }
    std::vector<float> feat = extractor_->Predict(norm);
    std::vector<float> hin(cfg_.feat_dim + (cfg_.use_ipd ? 1 : 0));
    for (std::size_t k = 0; k < cfg_.feat_dim; ++k) {
      hin[k] = std::tanh(feat[k]);
    }
    if (cfg_.use_ipd) {
      hin[cfg_.feat_dim] = Normalize(features[kPkts * kBytes + t]);
    }
    nn::Tensor tx({1, hin.size()}, hin);
    nn::Tensor out = heads_[t].Forward(tx, /*training=*/false);
    for (std::size_t c = 0; c < num_classes_; ++c) {
      logits[c] += out.at(0, c);
    }
  }
  return logits;
}

runtime::FlowStateSpec CnnL::FlowState() const {
  // index_bits=4 with IPD: 16 + 7*4 = 44 bits (Figure 7's middle point).
  // Without IPD: 28 bits. index_bits=8: 72 bits. Note: PISA has no 4-bit
  // registers, so 4-bit indexes pack pairwise into 8-bit slots — the
  // PerFlowSramBits model rounds accordingly (paper footnote 2).
  runtime::FlowStateSpec spec;
  spec.Add("fuzzy_idx", cfg_.index_bits, traffic::kWindow - 1);
  if (cfg_.use_ipd) {
    spec.Add("prev_ts", 16);
  }
  return spec;
}

}  // namespace pegasus::models
