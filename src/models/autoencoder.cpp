#include "models/autoencoder.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "compiler/compiler.hpp"
#include "core/operators.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace pegasus::models {

std::unique_ptr<Autoencoder> Autoencoder::Train(std::span<const float> x,
                                                std::size_t n,
                                                std::size_t dim,
                                                const AutoencoderConfig& cfg) {
  if (n == 0 || x.size() != n * dim || dim % 2 != 0) {
    throw std::invalid_argument("Autoencoder::Train: bad data");
  }
  auto model = std::make_unique<Autoencoder>();
  model->dim_ = dim;

  // ---- architecture ----------------------------------------------------
  AdditiveConfig ecfg;
  for (std::size_t off = 0; off < dim; off += 2) {
    ecfg.segments.push_back(Segment{off, 2});
  }
  ecfg.hidden = cfg.enc_hidden;
  ecfg.out_dim = cfg.latent_dim;
  ecfg.seed = cfg.seed;
  model->encoder_ = std::make_unique<AdditiveModel>(ecfg);

  std::mt19937_64 rng(cfg.seed + 1);
  std::size_t prev = cfg.latent_dim;
  for (std::size_t h : cfg.dec_hidden) {
    model->decoder_.Emplace<nn::Dense>(prev, h, rng);
    model->decoder_.Emplace<nn::ReLU>();
    prev = h;
  }
  model->decoder_.Emplace<nn::Dense>(prev, dim, rng);
  model->size_kb_ = static_cast<double>(model->encoder_->ParamCount() +
                                        model->decoder_.ParamCount()) *
                    32.0 / 1000.0;

  // ---- training: reconstruct normalized input, MSE ----------------------
  std::vector<float> xn(x.begin(), x.end());
  for (float& v : xn) v = Normalize(v);

  std::vector<nn::Param*> params = model->encoder_->Params();
  for (nn::Param* p : model->decoder_.Params()) params.push_back(p);
  nn::Adam opt(params, cfg.lr);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::mt19937_64 shuffle_rng(cfg.seed + 2);
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), shuffle_rng);
    for (std::size_t start = 0; start < n; start += cfg.batch) {
      const std::size_t end = std::min(n, start + cfg.batch);
      const std::size_t bn = end - start;
      nn::Tensor bx({bn, dim});
      for (std::size_t i = 0; i < bn; ++i) {
        std::copy_n(xn.data() + order[start + i] * dim, dim,
                    bx.data().data() + i * dim);
      }
      opt.ZeroGrad();
      nn::Tensor z = model->encoder_->ForwardBatch(bx, /*training=*/true);
      nn::Tensor recon = model->decoder_.Forward(z, /*training=*/true);
      nn::LossResult res = nn::MseLoss(recon, bx);
      if (!std::isfinite(res.loss)) {
        throw std::runtime_error("Autoencoder: training diverged");
      }
      nn::Tensor dz = model->decoder_.Backward(res.grad);
      model->encoder_->BackwardBatch(dz);
      opt.Step();
    }
  }

  // ---- primitive program ------------------------------------------------
  AdditiveModel* enc = model->encoder_.get();
  nn::Sequential* dec = &model->decoder_;
  const std::size_t Z = cfg.latent_dim;
  const std::size_t num_segs = dim / 2;

  core::ProgramBuilder b(dim);
  const std::vector<core::ValueId> parts = b.Partition(b.input(), 2, 2);
  std::vector<core::ValueId> enc_outs;
  for (std::size_t si = 0; si < num_segs; ++si) {
    enc_outs.push_back(b.Map(
        parts[si],
        core::MakeSubnet("ae_enc" + std::to_string(si), 2, Z,
                         [enc, si](std::span<const float> seg) {
                           std::vector<float> norm{Normalize(seg[0]),
                                                   Normalize(seg[1])};
                           return enc->SegmentContribution(si, norm);
                         }),
        cfg.enc_leaves));
  }
  const core::ValueId z = b.SumReduce(std::span<const core::ValueId>(enc_outs));

  // Error maps need (z, x_i): partition the input again for fresh segment
  // values (a segment value may feed only one consumer chain).
  const std::vector<core::ValueId> parts2 = b.Partition(b.input(), 2, 2);
  std::vector<core::ValueId> errs;
  const float inv_dim = 1.0f / static_cast<float>(dim);
  for (std::size_t si = 0; si < num_segs; ++si) {
    const core::ValueId key = b.Concat({z, parts2[si]});
    errs.push_back(b.Map(
        key,
        core::MakeSubnet(
            "ae_err" + std::to_string(si), Z + 2, 1,
            [dec, si, Z, inv_dim](std::span<const float> in) {
              nn::Tensor tz({1, Z},
                            std::vector<float>(in.begin(),
                                               in.begin() +
                                                   static_cast<std::ptrdiff_t>(
                                                       Z)));
              nn::Tensor recon = dec->Forward(tz, /*training=*/false);
              float err = 0.0f;
              for (std::size_t d = 0; d < 2; ++d) {
                const float target = Normalize(in[Z + d]);
                err += std::abs(recon.at(0, si * 2 + d) - target);
              }
              return std::vector<float>{err * inv_dim};
            }),
        cfg.err_leaves));
  }
  const core::ValueId mae = b.SumReduce(std::span<const core::ValueId>(errs));
  core::Program program = b.Finish(mae);

  // Probe inputs for table construction. Anomalous traffic is often highly
  // *regular* (floods, C2 beaconing): whole windows of near-constant
  // (len, ipd). Under iid-uniform augmentation the encoder's SumReduce
  // concentrates (CLT), so those latent regions would stay unprobed and
  // the error tables would extrapolate benign-ish values there. We append
  // constant-window probes — the reconstruction error function is known,
  // so probing anywhere is sound (§4.4 tables are precomputed, not
  // learned).
  std::vector<float> compile_inputs(x.begin(), x.end());
  std::size_t probes = 0;
  {
    std::mt19937_64 rng(cfg.seed + 3);
    std::uniform_int_distribution<int> byte(0, 255);
    std::uniform_int_distribution<int> period(1, 4);
    std::normal_distribution<float> jitter(0.0f, 4.0f);
    probes = n;
    const std::size_t window = dim / 2;
    for (std::size_t p = 0; p < probes; ++p) {
      // Two anchor (len, ipd) pairs alternating with random period: covers
      // constant traffic (period 1 / equal anchors) through bursty
      // request-response beacons.
      const float len_a = static_cast<float>(byte(rng));
      const float len_b = static_cast<float>(byte(rng));
      const float ipd_a = static_cast<float>(byte(rng));
      const float ipd_b = static_cast<float>(byte(rng));
      const int pp = period(rng);
      for (std::size_t t = 0; t < window; ++t) {
        const bool hi = (t % static_cast<std::size_t>(2 * pp)) <
                        static_cast<std::size_t>(pp);
        compile_inputs.push_back(std::clamp(
            (hi ? len_a : len_b) + jitter(rng), 0.0f, 255.0f));
        compile_inputs.push_back(std::clamp(
            (hi ? ipd_a : ipd_b) + jitter(rng), 0.0f, 255.0f));
      }
    }
  }
  model->compiled_ = compiler::CompileToModel(std::move(program),
                                              compile_inputs, n + probes,
                                              cfg.compile)
                         .model;
  return model;
}

std::vector<float> Autoencoder::FloatPredict(
    std::span<const float> features) const {
  std::vector<float> xn(features.begin(), features.end());
  for (float& v : xn) v = Normalize(v);
  std::vector<float> z = encoder_->Predict(xn);
  nn::Tensor tz({1, z.size()}, z);
  nn::Tensor recon = decoder_.Forward(tz, /*training=*/false);
  float err = 0.0f;
  for (std::size_t d = 0; d < dim_; ++d) {
    err += std::abs(recon.at(0, d) - xn[d]);
  }
  return {err / static_cast<float>(dim_)};
}

runtime::FlowStateSpec Autoencoder::FlowState() const {
  // 240 bits: window raw (len, ipd) for 7 packets (112), previous-packet
  // timestamp (16), and the latent checkpoint carried across pipeline
  // passes (14 x 8 = 112).
  runtime::FlowStateSpec spec;
  spec.Add("win_len", 8, 7)
      .Add("win_ipd", 8, 7)
      .Add("prev_ts", 16)
      .Add("latent_ckpt", 8, 14);
  return spec;
}

}  // namespace pegasus::models
