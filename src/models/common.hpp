// Shared model plumbing.
//
// Every Pegasus model in §6.3 follows the same lifecycle:
//   1. train a full-precision float model (src/nn) on normalized features;
//   2. emit a primitive Program whose Map functions wrap the trained
//      weights (plus the feature normalization, so programs consume raw
//      8-bit features);
//   3. run compiler::CompileToModel — the PassManager's fuse-basic →
//      augment → quantize-plan → tablegen pipeline — against the training
//      inputs;
//   4. optionally lower onto the switch simulator (compiler::PlaceOnSwitch)
//      for resource accounting.
//
// TrainedModel carries all of it, so Table 5 / Figures 7-9 drivers can
// treat every model uniformly: FloatPredict is the paper's "CPU/GPU" path,
// Compiled().Evaluate the Pegasus path.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/fusion.hpp"
#include "core/tablegen.hpp"
#include "runtime/flow_state.hpp"
#include "traffic/features.hpp"

namespace pegasus::models {

/// Features are 8-bit [0,255]; models train on (x-128)/64. The constants
/// are baked into Map functions so dataplane programs take raw features.
inline constexpr float kNormShift = 128.0f;
inline constexpr float kNormScale = 1.0f / 64.0f;

inline float Normalize(float v) { return (v - kNormShift) * kNormScale; }

/// Uniform handle over a trained + compiled model.
class TrainedModel {
 public:
  virtual ~TrainedModel() = default;

  virtual const std::string& Name() const = 0;

  /// Full-precision logits (or anomaly score) — the control-plane path.
  virtual std::vector<float> FloatPredict(
      std::span<const float> features) const = 0;

  /// The compiled Pegasus realization (fuzzy + fixed-point).
  virtual const core::CompiledModel& Compiled() const = 0;

  /// Input scale in bits (Table 5 column).
  virtual std::size_t InputScaleBits() const = 0;

  /// Model size in Kb at full precision (Table 5 column).
  virtual double ModelSizeKb() const = 0;

  /// Per-flow stateful layout (Table 6 column).
  virtual runtime::FlowStateSpec FlowState() const = 0;

  /// Argmax helper shared by classifiers.
  std::int32_t PredictClassFuzzy(std::span<const float> features) const {
    const std::vector<float> logits = Compiled().Evaluate(features);
    std::size_t best = 0;
    for (std::size_t i = 1; i < logits.size(); ++i) {
      if (logits[i] > logits[best]) best = i;
    }
    return static_cast<std::int32_t>(best);
  }
  std::int32_t PredictClassFloat(std::span<const float> features) const {
    const std::vector<float> logits = FloatPredict(features);
    std::size_t best = 0;
    for (std::size_t i = 1; i < logits.size(); ++i) {
      if (logits[i] > logits[best]) best = i;
    }
    return static_cast<std::int32_t>(best);
  }
};

struct TrainBudget {
  std::size_t epochs = 30;
  std::size_t max_train_samples = 20000;
  std::uint64_t seed = 5;
};

}  // namespace pegasus::models
