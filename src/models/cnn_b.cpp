#include "models/cnn_b.hpp"

#include <cmath>

#include "compiler/compiler.hpp"
#include "core/operators.hpp"
#include "nn/trainer.hpp"

namespace pegasus::models {

std::unique_ptr<CnnB> CnnB::Train(std::span<const float> x,
                                  const std::vector<std::int32_t>& labels,
                                  std::size_t n, std::size_t dim,
                                  std::size_t num_classes,
                                  const CnnBConfig& cfg) {
  if (dim % 2 != 0) {
    throw std::invalid_argument("CnnB::Train: dim must be 2*window");
  }
  auto model = std::make_unique<CnnB>();
  model->dim_ = dim;
  model->window_ = dim / 2;
  const std::size_t num_windows =
      model->window_ / cfg.conv_kernel;  // stride == kernel (valid, disjoint)
  const std::size_t flat = num_windows * cfg.conv_channels;

  // ---- float training: Conv1D -> ReLU -> FC -> ReLU -> FC --------------
  std::mt19937_64 rng(cfg.seed);
  nn::Conv1D* conv = model->net_.Emplace<nn::Conv1D>(
      2, cfg.conv_channels, cfg.conv_kernel, cfg.conv_kernel, rng);
  model->net_.Emplace<nn::ReLU>();
  model->net_.Emplace<nn::Flatten>();
  nn::Dense* fc1 = model->net_.Emplace<nn::Dense>(flat, cfg.fc_hidden, rng);
  model->net_.Emplace<nn::ReLU>();
  nn::Dense* fc2 =
      model->net_.Emplace<nn::Dense>(cfg.fc_hidden, num_classes, rng);
  model->size_kb_ = model->net_.ModelSizeKb(32);

  // Float model consumes [N, 2, window] (channels = len / ipd).
  std::vector<float> xn(n * dim);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t t = 0; t < model->window_; ++t) {
      xn[s * dim + 0 * model->window_ + t] = Normalize(x[s * dim + 2 * t]);
      xn[s * dim + 1 * model->window_ + t] =
          Normalize(x[s * dim + 2 * t + 1]);
    }
  }
  nn::Tensor tx({n, 2, model->window_}, xn);
  nn::TrainConfig tc;
  tc.epochs = cfg.epochs;
  tc.seed = cfg.seed;
  nn::TrainClassifier(model->net_, tx, labels, tc);

  // ---- primitive program ----------------------------------------------
  // Window w covers packets [w*K, w*K+K): interleaved input dims
  // [2wK, 2wK+2K). Each window is one Map producing the conv channels.
  core::ProgramBuilder b(dim);
  const std::size_t K = cfg.conv_kernel;
  const std::size_t C = cfg.conv_channels;
  std::vector<std::pair<std::size_t, std::size_t>> segs;
  for (std::size_t w = 0; w < num_windows; ++w) {
    segs.emplace_back(2 * w * K, 2 * K);
  }
  const std::vector<core::ValueId> windows =
      b.PartitionExplicit(b.input(), segs);

  const auto& wt = conv->weight().value;  // [C, 2, K]
  const auto& bt = conv->bias().value;
  std::vector<core::ValueId> conv_outs;
  for (std::size_t w = 0; w < num_windows; ++w) {
    std::vector<float> cw(wt.data().begin(), wt.data().end());
    std::vector<float> cb(bt.data().begin(), bt.data().end());
    conv_outs.push_back(b.Map(
        windows[w],
        core::MakeSubnet(
            "conv_w" + std::to_string(w), 2 * K, C,
            [cw, cb, K, C](std::span<const float> seg) {
              // seg is interleaved raw (len, ipd) pairs; normalize inline.
              std::vector<float> y(C);
              for (std::size_t oc = 0; oc < C; ++oc) {
                float acc = cb[oc];
                for (std::size_t k = 0; k < K; ++k) {
                  acc += cw[(oc * 2 + 0) * K + k] * Normalize(seg[2 * k]);
                  acc += cw[(oc * 2 + 1) * K + k] *
                         Normalize(seg[2 * k + 1]);
                }
                y[oc] = acc;
              }
              return y;
            }),
        cfg.fuzzy_leaves_conv));
  }
  core::ValueId feat = b.Concat(std::span<const core::ValueId>(conv_outs));
  feat = b.Map(feat, core::MakeReLU(flat), cfg.fuzzy_leaves_fc);
  // The float model's Flatten is channel-major ([C, Lo] row-major) but the
  // program concatenates window-major (w0c0, w0c1, ...): permute FC1's
  // input rows accordingly.
  std::vector<float> fc1_w(flat * cfg.fc_hidden);
  for (std::size_t w = 0; w < num_windows; ++w) {
    for (std::size_t c = 0; c < C; ++c) {
      const std::size_t prog_row = w * C + c;
      const std::size_t float_row = c * num_windows + w;
      std::copy_n(
          fc1->weight().value.data().data() + float_row * cfg.fc_hidden,
          cfg.fc_hidden, fc1_w.data() + prog_row * cfg.fc_hidden);
    }
  }
  core::ValueId h = core::AppendFullyConnected(
      b, feat, fc1_w, flat, cfg.fc_hidden, fc1->bias().value.data(),
      cfg.segment_dim, cfg.fuzzy_leaves_fc);
  h = b.Map(h, core::MakeReLU(cfg.fc_hidden), cfg.fuzzy_leaves_fc);
  const core::ValueId logits = core::AppendFullyConnected(
      b, h, fc2->weight().value.data(), cfg.fc_hidden, num_classes,
      fc2->bias().value.data(), cfg.segment_dim, cfg.fuzzy_leaves_fc);
  core::Program program = b.Finish(logits);
  model->compiled_ =
      compiler::CompileToModel(std::move(program), x, n, cfg.compile).model;
  return model;
}

std::vector<float> CnnB::FloatPredict(std::span<const float> features) const {
  std::vector<float> xn(dim_);
  for (std::size_t t = 0; t < window_; ++t) {
    xn[0 * window_ + t] = Normalize(features[2 * t]);
    xn[1 * window_ + t] = Normalize(features[2 * t + 1]);
  }
  nn::Tensor tx({1, 2, window_}, xn);
  nn::Tensor out = net_.Forward(tx, /*training=*/false);
  return std::vector<float>(out.data().begin(), out.data().end());
}

runtime::FlowStateSpec CnnB::FlowState() const {
  // 72 bits: per-packet 8-bit compressed features for 7 stored packets plus
  // the previous-packet timestamp.
  runtime::FlowStateSpec spec;
  spec.Add("pkt_feat", 8, 7).Add("prev_ts", 16);
  return spec;
}

}  // namespace pegasus::models
