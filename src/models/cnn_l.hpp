// CNN-L (paper §6.3, §7.3): the large raw-byte model.
//
// Two stages, mirroring the paper's description of how CNN-L fits the
// switch at all:
//
//  * a shared per-packet feature extractor g: 60 raw payload bytes -> a
//    small feature vector ("Pegasus first uses a neural network to extract
//    high-level, refined features from each packet"). On the dataplane the
//    extractor is Partition(bytes) -> Maps -> SumReduce, and its output is
//    compressed to a 4- or 8-bit *fuzzy index* stored per flow;
//
//  * a NAM classifier over the window's 8 per-packet (feature, IPD)
//    segments -> one fused Map per packet position -> final SumReduce.
//
// Per-flow state is therefore 7 indexes x 4 bits + a 16-bit timestamp =
// 44 bits (Figure 7's middle point); variants drop the IPD (28 b) or use
// 8-bit indexes (72 b).
//
// Training is a deep-sets model: logits = sum_t f_t(g(bytes_t), ipd_t),
// trained end-to-end with a weight-shared g.
#pragma once

#include <memory>

#include "models/additive.hpp"
#include "models/common.hpp"
#include "nn/layers.hpp"

namespace pegasus::models {

struct CnnLConfig {
  /// Extractor: NAM over 10 byte-segments, each 6 -> hidden -> feat_dim
  /// contributions (Advanced Primitive Fusion keeps it one Map per
  /// segment); feat = tanh(sum of contributions), folded into the heads.
  std::vector<std::size_t> extractor_hidden = {192};
  std::size_t feat_dim = 4;
  /// Per-position head: (feat_dim [+1 ipd]) -> head_hidden -> classes.
  std::size_t head_hidden = 128;
  /// Fuzzy-index width for the per-packet feature (4 -> 16 leaves,
  /// 8 -> 256 leaves). This is the per-flow storage knob of Figure 7.
  int index_bits = 4;
  bool use_ipd = true;
  /// Extractor lowering: bytes are partitioned into segments of this size.
  std::size_t byte_segment = 6;
  std::size_t extractor_leaves = 64;
  std::size_t epochs = 12;
  std::size_t batch = 32;
  float lr = 1e-3f;
  std::uint64_t seed = 71;
  core::CompileOptions compile;
};

class CnnL : public TrainedModel {
 public:
  /// `x` holds raw-byte windows ([n x 480], 8 packets x 60 bytes);
  /// `seq` holds the matching (len, ipd) windows ([n x 16]) the IPD feature
  /// comes from. Rows must correspond.
  static std::unique_ptr<CnnL> Train(std::span<const float> x,
                                     std::span<const float> seq,
                                     const std::vector<std::int32_t>& labels,
                                     std::size_t n, std::size_t num_classes,
                                     const CnnLConfig& cfg = {});

  const std::string& Name() const override { return name_; }

  /// FloatPredict consumes the packed program input (480 bytes + 8 IPDs =
  /// 488 dims; without IPD, 480).
  std::vector<float> FloatPredict(
      std::span<const float> features) const override;
  const core::CompiledModel& Compiled() const override { return compiled_; }
  std::size_t InputScaleBits() const override {
    return traffic::kRawDim * 8;  // 3840 b
  }
  double ModelSizeKb() const override { return size_kb_; }
  runtime::FlowStateSpec FlowState() const override;

  /// Packs raw-byte + seq rows into the program input layout.
  static std::vector<float> PackInput(std::span<const float> bytes,
                                      std::span<const float> seq,
                                      bool use_ipd);

  /// Per-packet extractor as its own primitive program (the table set the
  /// switch shares across all packets) — used for resource accounting.
  const core::CompiledModel& CompiledExtractor() const {
    return compiled_extractor_;
  }
  /// Window classifier program over stored per-packet features.
  const core::CompiledModel& CompiledClassifier() const {
    return compiled_classifier_;
  }

 private:
  std::string name_ = "CNN-L";
  mutable std::unique_ptr<AdditiveModel> extractor_;
  mutable std::vector<nn::Sequential> heads_;
  core::CompiledModel compiled_;             // end-to-end (accuracy path)
  core::CompiledModel compiled_extractor_;   // resource path
  core::CompiledModel compiled_classifier_;  // resource path
  CnnLConfig cfg_;
  std::size_t num_classes_ = 0;
  double size_kb_ = 0.0;
};

}  // namespace pegasus::models
