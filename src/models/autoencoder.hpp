// AutoEncoder (paper §6.3, §7.4): unsupervised anomaly detection by
// reconstruction error (MAE) over (length, IPD) windows, trained on benign
// traffic only.
//
// Dataplane-friendly structure (Advanced Primitive Fusion):
//   encoder  — NAM over per-packet segments: z = sum_i enc_i(x_i)
//              (one fused Map per segment + one SumReduce);
//   decoder  — per-segment error Maps keyed on (z, x_i): each stores
//              e_i = sum_d |dec(z)[i,d] - norm(x_i)[d]| / dim,
//              so the final SumReduce yields the MAE anomaly score
//              directly in a PHV field.
// The switch thresholds that field (or exports it) — §7.4's deployment
// story.
#pragma once

#include <memory>

#include "models/additive.hpp"
#include "models/common.hpp"
#include "nn/layers.hpp"

namespace pegasus::models {

struct AutoencoderConfig {
  std::size_t latent_dim = 8;
  std::vector<std::size_t> enc_hidden = {32};
  std::vector<std::size_t> dec_hidden = {64};
  std::size_t enc_leaves = 96;
  std::size_t err_leaves = 256;
  std::size_t epochs = 60;
  std::size_t batch = 64;
  float lr = 2e-3f;
  std::uint64_t seed = 81;
  core::CompileOptions compile;

  AutoencoderConfig() {
    // Anomaly scores must be meaningful OUTSIDE the benign training
    // distribution, so the mapping tables are probed with uniform inputs
    // in addition to benign traffic (see CompileOptions::uniform_augment).
    compile.uniform_augment = 1.0;
  }
};

class Autoencoder : public TrainedModel {
 public:
  /// Trains on benign (len, ipd) windows only (`dim` = 2*window).
  static std::unique_ptr<Autoencoder> Train(std::span<const float> x,
                                            std::size_t n, std::size_t dim,
                                            const AutoencoderConfig& cfg = {});

  const std::string& Name() const override { return name_; }

  /// Returns {MAE reconstruction error} — 1-element vector.
  std::vector<float> FloatPredict(
      std::span<const float> features) const override;
  const core::CompiledModel& Compiled() const override { return compiled_; }
  std::size_t InputScaleBits() const override { return dim_ * 8; }
  double ModelSizeKb() const override { return size_kb_; }
  runtime::FlowStateSpec FlowState() const override;

  /// Fuzzy (dataplane) anomaly score.
  float ScoreFuzzy(std::span<const float> features) const {
    return Compiled().Evaluate(features)[0];
  }
  float ScoreFloat(std::span<const float> features) const {
    return FloatPredict(features)[0];
  }

 private:
  std::string name_ = "AutoEncoder";
  mutable std::unique_ptr<AdditiveModel> encoder_;
  mutable nn::Sequential decoder_;
  core::CompiledModel compiled_;
  std::size_t dim_ = 0;
  double size_kb_ = 0.0;
};

}  // namespace pegasus::models
