// CNN-B (paper §6.3): the baseline 1-D textcnn over (length, IPD) windows
// using Basic Primitive Fusion only — conv windows become per-window Maps,
// the FC head becomes Partition/Map/SumReduce chains, and ReLU fuses into
// the downstream tables.
#pragma once

#include <memory>

#include "models/common.hpp"
#include "nn/layers.hpp"

namespace pegasus::models {

struct CnnBConfig {
  std::size_t conv_channels = 10;
  std::size_t conv_kernel = 2;  // packets per window
  std::size_t fc_hidden = 8;
  std::size_t segment_dim = 2;
  std::size_t fuzzy_leaves_conv = 96;
  std::size_t fuzzy_leaves_fc = 64;
  std::size_t epochs = 30;
  std::uint64_t seed = 51;
  core::CompileOptions compile;
};

class CnnB : public TrainedModel {
 public:
  /// `dim` = 2*window, interleaved (len, ipd).
  static std::unique_ptr<CnnB> Train(std::span<const float> x,
                                     const std::vector<std::int32_t>& labels,
                                     std::size_t n, std::size_t dim,
                                     std::size_t num_classes,
                                     const CnnBConfig& cfg = {});

  const std::string& Name() const override { return name_; }
  std::vector<float> FloatPredict(
      std::span<const float> features) const override;
  const core::CompiledModel& Compiled() const override { return compiled_; }
  std::size_t InputScaleBits() const override { return dim_ * 8; }
  double ModelSizeKb() const override { return size_kb_; }
  runtime::FlowStateSpec FlowState() const override;

 private:
  std::string name_ = "CNN-B";
  mutable nn::Sequential net_;
  core::CompiledModel compiled_;
  std::size_t dim_ = 0;
  std::size_t window_ = 8;
  double size_kb_ = 0.0;
};

}  // namespace pegasus::models
