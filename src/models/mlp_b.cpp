#include "models/mlp_b.hpp"

#include "compiler/compiler.hpp"
#include "core/operators.hpp"
#include "nn/trainer.hpp"

namespace pegasus::models {

namespace {

/// Elementwise feature normalization as a Map function: raw 8-bit features
/// -> the (x-128)/64 domain the float model trained in.
core::MapFunction NormMap(std::size_t dim) {
  return core::MakeAffine(std::vector<float>(dim, kNormScale),
                          std::vector<float>(dim, -kNormShift * kNormScale),
                          "featnorm");
}

}  // namespace

std::unique_ptr<MlpB> MlpB::Train(std::span<const float> x,
                                  const std::vector<std::int32_t>& labels,
                                  std::size_t n, std::size_t dim,
                                  std::size_t num_classes,
                                  const MlpBConfig& cfg) {
  auto model = std::make_unique<MlpB>();
  model->dim_ = dim;

  // ---- float training -------------------------------------------------
  std::mt19937_64 rng(cfg.seed);
  std::vector<nn::BatchNorm1d*> bns;
  std::vector<nn::Dense*> fcs;
  std::size_t prev = dim;
  for (std::size_t h : cfg.hidden) {
    bns.push_back(model->net_.Emplace<nn::BatchNorm1d>(prev));
    fcs.push_back(model->net_.Emplace<nn::Dense>(prev, h, rng));
    model->net_.Emplace<nn::ReLU>();
    prev = h;
  }
  nn::Dense* out_fc = model->net_.Emplace<nn::Dense>(prev, num_classes, rng);
  model->size_kb_ = model->net_.ModelSizeKb(32);

  std::vector<float> xn(x.begin(), x.end());
  for (float& v : xn) v = Normalize(v);
  nn::Tensor tx({n, dim}, xn);
  nn::TrainConfig tc;
  tc.epochs = cfg.epochs;
  tc.seed = cfg.seed;
  nn::TrainClassifier(model->net_, tx, labels, tc);

  // ---- primitive program ----------------------------------------------
  core::ProgramBuilder b(dim);
  core::ValueId v = b.Map(b.input(), NormMap(dim), cfg.fuzzy_leaves);
  prev = dim;
  for (std::size_t li = 0; li < cfg.hidden.size(); ++li) {
    std::vector<float> scale, shift;
    bns[li]->InferenceAffine(scale, shift);
    v = b.Map(v, core::MakeAffine(scale, shift, "bn" + std::to_string(li)),
              cfg.fuzzy_leaves);
    const nn::Param& w = fcs[li]->weight();
    const nn::Param& bias = fcs[li]->bias();
    v = core::AppendFullyConnected(
        b, v, w.value.data(), prev, cfg.hidden[li], bias.value.data(),
        cfg.segment_dim, cfg.fuzzy_leaves);
    v = b.Map(v, core::MakeReLU(cfg.hidden[li]), cfg.fuzzy_leaves);
    prev = cfg.hidden[li];
  }
  v = core::AppendFullyConnected(b, v, out_fc->weight().value.data(), prev,
                                 num_classes, out_fc->bias().value.data(),
                                 cfg.segment_dim, cfg.fuzzy_leaves);
  core::Program program = b.Finish(v);
  auto compile =
      compiler::CompileToModel(std::move(program), x, n, cfg.compile);
  model->fusion_stats_ = compile.fusion;
  model->compiled_ = std::move(compile.model);
  return model;
}

std::vector<float> MlpB::FloatPredict(std::span<const float> features) const {
  std::vector<float> xn(features.begin(), features.end());
  for (float& v : xn) v = Normalize(v);
  nn::Tensor tx({1, xn.size()}, xn);
  nn::Tensor out = net_.Forward(tx, /*training=*/false);
  return std::vector<float>(out.data().begin(), out.data().end());
}

runtime::FlowStateSpec MlpB::FlowState() const {
  // 80 bits: running min/max length and IPD (4x8), previous-packet
  // timestamp (16), and a 32-bit compacted 5-packet history digest the
  // statistical features are rebuilt from.
  runtime::FlowStateSpec spec;
  spec.Add("min_len", 8)
      .Add("max_len", 8)
      .Add("min_ipd", 8)
      .Add("max_ipd", 8)
      .Add("prev_ts", 16)
      .Add("hist_digest", 32);
  return spec;
}

}  // namespace pegasus::models
