// CNN-M (paper §6.3): CNN-B extended with Advanced Primitive Fusion ❸ —
// the whole network is restructured NAM-style so each (overlapping) packet
// -pair window runs a deep per-segment subnet that the compiler collapses
// into a SINGLE fuzzy Map lookup; only the final SumReduce crosses
// segments. Bigger model, fewer tables (Table 6's point: "larger model
// size but lower resource overhead").
#pragma once

#include <memory>

#include "models/additive.hpp"
#include "models/common.hpp"

namespace pegasus::models {

struct CnnMConfig {
  std::vector<std::size_t> hidden = {40, 80};
  std::size_t fuzzy_leaves = 128;
  std::size_t epochs = 30;
  std::uint64_t seed = 61;
  core::CompileOptions compile;
};

class CnnM : public TrainedModel {
 public:
  static std::unique_ptr<CnnM> Train(std::span<const float> x,
                                     const std::vector<std::int32_t>& labels,
                                     std::size_t n, std::size_t dim,
                                     std::size_t num_classes,
                                     const CnnMConfig& cfg = {});

  const std::string& Name() const override { return name_; }
  std::vector<float> FloatPredict(
      std::span<const float> features) const override;
  const core::CompiledModel& Compiled() const override { return compiled_; }
  std::size_t InputScaleBits() const override { return dim_ * 8; }
  double ModelSizeKb() const override { return size_kb_; }
  runtime::FlowStateSpec FlowState() const override;

 private:
  std::string name_ = "CNN-M";
  mutable std::unique_ptr<AdditiveModel> net_;
  core::CompiledModel compiled_;
  std::size_t dim_ = 0;
  double size_kb_ = 0.0;
};

}  // namespace pegasus::models
