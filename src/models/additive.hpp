// Neural-additive-style classifier: logits = sum_i subnet_i(x[segment_i]).
//
// This is the model architecture Advanced Primitive Fusion ❸ produces
// ("retaining only the final SumReduce ... similar to Neural Additive
// Models"): on the dataplane each per-segment subnet collapses into ONE
// fuzzy Map lookup regardless of its depth, and the only cross-segment
// operation is the final SumReduce. CNN-M, CNN-L's classifier stage and the
// AutoEncoder's encoder are instances.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "nn/layers.hpp"

namespace pegasus::models {

struct Segment {
  std::size_t offset = 0;
  std::size_t length = 0;
};

struct AdditiveConfig {
  std::vector<Segment> segments;
  /// Hidden widths of each per-segment MLP (ReLU between layers).
  std::vector<std::size_t> hidden = {32, 64};
  std::size_t out_dim = 3;  // classes (or latent dim when used as encoder)
  std::size_t epochs = 30;
  std::size_t batch = 64;
  float lr = 2e-3f;
  std::uint64_t seed = 21;
};

/// Trains/evaluates the additive model. Inputs are *normalized* features.
class AdditiveModel {
 public:
  explicit AdditiveModel(const AdditiveConfig& cfg);

  /// Trains as a softmax classifier.
  void TrainClassifier(std::span<const float> x,
                       const std::vector<std::int32_t>& labels,
                       std::size_t n, std::size_t dim);

  /// Forward for one (normalized) sample.
  std::vector<float> Predict(std::span<const float> x);

  /// Forward restricted to segment `i` only — this is exactly the function
  /// a fused Map table stores.
  std::vector<float> SegmentContribution(std::size_t i,
                                         std::span<const float> seg_x);

  const std::vector<Segment>& segments() const { return cfg_.segments; }
  std::size_t out_dim() const { return cfg_.out_dim; }
  std::size_t ParamCount();

  /// Shared gradient-step plumbing, exposed so NamAutoencoder can reuse the
  /// subnets: forward all segments for a batch and accumulate summed
  /// outputs; backward distributes the same output gradient to every
  /// subnet.
  nn::Tensor ForwardBatch(const nn::Tensor& x, bool training);
  void BackwardBatch(const nn::Tensor& grad);

  std::vector<nn::Param*> Params();

 private:
  AdditiveConfig cfg_;
  std::vector<nn::Sequential> subnets_;
};

}  // namespace pegasus::models
