// MLP-B (paper §6.3): a three-hidden-layer MLP over flow/packet statistical
// features, each hidden layer = BatchNorm -> FC -> ReLU. Uses fuzzy
// matching and Basic Primitive Fusion only.
#pragma once

#include <memory>

#include "models/common.hpp"
#include "nn/layers.hpp"

namespace pegasus::models {

struct MlpBConfig {
  std::vector<std::size_t> hidden = {20, 16, 12};
  std::size_t segment_dim = 2;
  std::size_t fuzzy_leaves = 64;
  std::size_t epochs = 30;
  std::uint64_t seed = 31;
  core::CompileOptions compile;
};

class MlpB : public TrainedModel {
 public:
  /// Trains the float model on raw 8-bit statistical features, builds the
  /// primitive program, fuses and compiles it.
  static std::unique_ptr<MlpB> Train(std::span<const float> x,
                                     const std::vector<std::int32_t>& labels,
                                     std::size_t n, std::size_t dim,
                                     std::size_t num_classes,
                                     const MlpBConfig& cfg = {});

  const std::string& Name() const override { return name_; }
  std::vector<float> FloatPredict(
      std::span<const float> features) const override;
  const core::CompiledModel& Compiled() const override { return compiled_; }
  std::size_t InputScaleBits() const override { return dim_ * 8; }
  double ModelSizeKb() const override { return size_kb_; }
  runtime::FlowStateSpec FlowState() const override;

  const core::FusionStats& fusion_stats() const { return fusion_stats_; }

 private:
  std::string name_ = "MLP-B";
  mutable nn::Sequential net_;
  core::CompiledModel compiled_;
  core::FusionStats fusion_stats_;
  std::size_t dim_ = 0;
  double size_kb_ = 0.0;
};

}  // namespace pegasus::models
