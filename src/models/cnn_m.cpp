#include "models/cnn_m.hpp"

#include "compiler/compiler.hpp"
#include "core/operators.hpp"

namespace pegasus::models {

std::unique_ptr<CnnM> CnnM::Train(std::span<const float> x,
                                  const std::vector<std::int32_t>& labels,
                                  std::size_t n, std::size_t dim,
                                  std::size_t num_classes,
                                  const CnnMConfig& cfg) {
  if (dim % 4 != 0) {
    throw std::invalid_argument("CnnM::Train: dim must be a multiple of 4");
  }
  auto model = std::make_unique<CnnM>();
  model->dim_ = dim;

  // Overlapping packet-pair windows (stride 1 packet-pair, width 2
  // packets): offsets 0,2,4,... and 2,6,10,... interleaved — a textcnn's
  // kernel-2 receptive fields, each realized as one fused Map.
  AdditiveConfig acfg;
  for (std::size_t off = 0; off + 4 <= dim; off += 2) {
    acfg.segments.push_back(Segment{off, 4});
  }
  acfg.hidden = cfg.hidden;
  acfg.out_dim = num_classes;
  acfg.epochs = cfg.epochs;
  acfg.seed = cfg.seed;
  model->net_ = std::make_unique<AdditiveModel>(acfg);
  model->size_kb_ =
      static_cast<double>(model->net_->ParamCount()) * 32.0 / 1000.0;

  std::vector<float> xn(x.begin(), x.end());
  for (float& v : xn) v = Normalize(v);
  model->net_->TrainClassifier(xn, labels, n, dim);

  // ---- primitive program: Partition -> fused Maps -> one SumReduce -----
  core::ProgramBuilder b(dim);
  std::vector<std::pair<std::size_t, std::size_t>> segs;
  for (const Segment& s : model->net_->segments()) {
    segs.emplace_back(s.offset, s.length);
  }
  const std::vector<core::ValueId> parts = b.PartitionExplicit(b.input(), segs);
  AdditiveModel* net = model->net_.get();
  std::vector<core::ValueId> contribs;
  for (std::size_t si = 0; si < parts.size(); ++si) {
    const std::size_t seg_len = model->net_->segments()[si].length;
    contribs.push_back(b.Map(
        parts[si],
        core::MakeSubnet("cnnm_seg" + std::to_string(si), seg_len,
                         num_classes,
                         [net, si](std::span<const float> seg) {
                           std::vector<float> norm(seg.size());
                           for (std::size_t i = 0; i < seg.size(); ++i) {
                             norm[i] = Normalize(seg[i]);
                           }
                           return net->SegmentContribution(si, norm);
                         }),
        cfg.fuzzy_leaves));
  }
  const core::ValueId logits =
      b.SumReduce(std::span<const core::ValueId>(contribs));
  core::Program program = b.Finish(logits);
  model->compiled_ =
      compiler::CompileToModel(std::move(program), x, n, cfg.compile).model;
  return model;
}

std::vector<float> CnnM::FloatPredict(std::span<const float> features) const {
  std::vector<float> xn(features.begin(), features.end());
  for (float& v : xn) v = Normalize(v);
  return net_->Predict(xn);
}

runtime::FlowStateSpec CnnM::FlowState() const {
  // 72 bits: same window storage as CNN-B (7 x 8-bit packet features +
  // 16-bit previous timestamp); the bigger model lives entirely in tables.
  runtime::FlowStateSpec spec;
  spec.Add("pkt_feat", 8, 7).Add("prev_ts", 16);
  return spec;
}

}  // namespace pegasus::models
