// Fixed-point number support (paper §4.4, "Adaptive Fixed-Point
// Quantization").
//
// PISA dataplanes have no floating point: activations travel through the
// pipeline as fixed-point integers and SumReduce is integer addition.
// Pegasus stores mapping-table *outputs* pre-quantized at a per-table
// fixed-point position chosen from the observed numerical range, so tables
// with very different output ranges (e.g. [-100,100] vs [0,5]) each use
// their full register width.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pegasus::fixedpoint {

/// A signed fixed-point format: `total_bits` two's-complement bits with
/// `frac_bits` fractional bits (Q(total-frac-1).(frac) plus sign).
struct Format {
  int total_bits = 16;
  int frac_bits = 8;

  /// Smallest representable increment.
  double Resolution() const;
  /// Largest representable value.
  double MaxValue() const;
  /// Most negative representable value.
  double MinValue() const;

  bool operator==(const Format&) const = default;
};

/// Quantizes `v` to the nearest representable raw integer, saturating at the
/// format bounds (dataplane adders saturate rather than wrap in our model).
std::int64_t Quantize(double v, const Format& fmt);

/// Raw integer back to real value.
double Dequantize(std::int64_t raw, const Format& fmt);

/// Round-trip helper: Dequantize(Quantize(v)).
double QuantizeValue(double v, const Format& fmt);

/// Saturating add of two raw values in the same format.
std::int64_t SaturatingAdd(std::int64_t a, std::int64_t b, const Format& fmt);

/// Re-scales a raw value from one format to another (shift by the
/// difference in frac_bits, then saturate). This is what a Map table does
/// implicitly when its stored outputs use a different fixed-point position
/// than its inputs.
std::int64_t Rescale(std::int64_t raw, const Format& from, const Format& to);

/// Chooses the largest frac_bits such that every value in `values` fits in
/// `total_bits` (the adaptive part of adaptive quantization). `headroom`
/// multiplies the observed max magnitude to leave margin for accumulation.
Format ChooseFormat(std::span<const float> values, int total_bits,
                    double headroom = 1.0);

/// Worst-case absolute quantization error for the format (half an LSB).
double MaxAbsError(const Format& fmt);

}  // namespace pegasus::fixedpoint
