#include "fixedpoint/fixedpoint.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pegasus::fixedpoint {

namespace {
std::int64_t RawMax(const Format& fmt) {
  return (std::int64_t{1} << (fmt.total_bits - 1)) - 1;
}
std::int64_t RawMin(const Format& fmt) {
  return -(std::int64_t{1} << (fmt.total_bits - 1));
}
void Validate(const Format& fmt) {
  if (fmt.total_bits < 2 || fmt.total_bits > 62) {
    throw std::invalid_argument("Format: total_bits out of [2,62]");
  }
}
}  // namespace

double Format::Resolution() const { return std::ldexp(1.0, -frac_bits); }

double Format::MaxValue() const {
  return static_cast<double>(RawMax(*this)) * Resolution();
}

double Format::MinValue() const {
  return static_cast<double>(RawMin(*this)) * Resolution();
}

std::int64_t Quantize(double v, const Format& fmt) {
  Validate(fmt);
  const double scaled = std::round(std::ldexp(v, fmt.frac_bits));
  const double lo = static_cast<double>(RawMin(fmt));
  const double hi = static_cast<double>(RawMax(fmt));
  return static_cast<std::int64_t>(std::clamp(scaled, lo, hi));
}

double Dequantize(std::int64_t raw, const Format& fmt) {
  return std::ldexp(static_cast<double>(raw), -fmt.frac_bits);
}

double QuantizeValue(double v, const Format& fmt) {
  return Dequantize(Quantize(v, fmt), fmt);
}

std::int64_t SaturatingAdd(std::int64_t a, std::int64_t b, const Format& fmt) {
  const std::int64_t sum = a + b;  // raw values fit in <=62 bits; no overflow
  return std::clamp(sum, RawMin(fmt), RawMax(fmt));
}

std::int64_t Rescale(std::int64_t raw, const Format& from, const Format& to) {
  std::int64_t shifted;
  const int diff = to.frac_bits - from.frac_bits;
  if (diff >= 0) {
    shifted = raw << diff;
  } else {
    // Round-to-nearest on right shift.
    const std::int64_t half = std::int64_t{1} << (-diff - 1);
    shifted = (raw + (raw >= 0 ? half : -half)) >> (-diff);
  }
  return std::clamp(shifted, RawMin(to), RawMax(to));
}

Format ChooseFormat(std::span<const float> values, int total_bits,
                    double headroom) {
  Format fmt{total_bits, 0};
  Validate(fmt);
  double max_abs = 0.0;
  for (float v : values) max_abs = std::max(max_abs, std::abs(double{v}));
  max_abs *= headroom;
  if (max_abs == 0.0) {
    fmt.frac_bits = total_bits - 2;
    return fmt;
  }
  // Integer bits needed to hold max_abs (sign bit excluded).
  int int_bits = 0;
  while (std::ldexp(1.0, int_bits) <= max_abs && int_bits < total_bits) {
    ++int_bits;
  }
  fmt.frac_bits = std::max(0, total_bits - 1 - int_bits);
  return fmt;
}

double MaxAbsError(const Format& fmt) { return 0.5 * fmt.Resolution(); }

}  // namespace pegasus::fixedpoint
