#include "control/registry.hpp"

#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/serialize.hpp"
#include "core/stream_io.hpp"
#include "dataplane/crc.hpp"
#include "runtime/fault.hpp"

namespace pegasus::control {

namespace {

using core::WritePod;

// Shared helper from core/stream_io.hpp; the local wrapper just pins the
// loader name reported on truncation.
template <typename T>
T ReadPod(std::istream& is) {
  return core::ReadPod<T>(is, "ModelRegistry::LoadModel");
}

}  // namespace

std::uint64_t ModelRegistry::Publish(const std::string& name,
                                     compiler::VersionedModel artifact) {
  if (artifact.lowered == nullptr || artifact.compiled == nullptr) {
    throw std::invalid_argument(
        "ModelRegistry::Publish: artifact is missing its compiled/lowered "
        "model (use compiler::CompileVersioned)");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto& versions = models_[name];
  const std::uint64_t version =
      versions.empty() ? 1 : versions.rbegin()->first + 1;
  artifact.name = name;
  artifact.version = version;
  versions.emplace(
      version, std::make_shared<const compiler::VersionedModel>(
                   std::move(artifact)));
  return version;
}

ModelRegistry::Snapshot ModelRegistry::Get(const std::string& name,
                                           std::uint64_t version) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto ni = models_.find(name);
  if (ni == models_.end()) return nullptr;
  const auto vi = ni->second.find(version);
  return vi == ni->second.end() ? nullptr : vi->second;
}

ModelRegistry::Snapshot ModelRegistry::Latest(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto ni = models_.find(name);
  if (ni == models_.end() || ni->second.empty()) return nullptr;
  return ni->second.rbegin()->second;
}

std::vector<std::string> ModelRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, versions] : models_) {
    if (!versions.empty()) names.push_back(name);
  }
  return names;
}

std::vector<std::uint64_t> ModelRegistry::Versions(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::uint64_t> out;
  const auto ni = models_.find(name);
  if (ni == models_.end()) return out;
  out.reserve(ni->second.size());
  for (const auto& [version, snapshot] : ni->second) out.push_back(version);
  return out;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [name, versions] : models_) n += versions.size();
  return n;
}

void ModelRegistry::SaveModel(std::ostream& os, const std::string& name,
                              std::uint64_t version) const {
  const Snapshot snap = Get(name, version);
  if (snap == nullptr) {
    throw std::out_of_range("ModelRegistry::SaveModel: unknown model " +
                            name + " v" + std::to_string(version));
  }
  // Serialize the payload first so the v2 header can seal it with its
  // size + CRC-32: LoadModel verifies both before parsing a single
  // payload byte.
  std::ostringstream payload_os(std::ios::binary);
  WritePod<std::uint32_t>(payload_os,
                          static_cast<std::uint32_t>(snap->name.size()));
  payload_os.write(snap->name.data(),
                   static_cast<std::streamsize>(snap->name.size()));
  WritePod<std::uint64_t>(payload_os, snap->version);
  // Lowering knobs: the switch model the artifact was placed against plus
  // the per-flow state and expansion-cap options. Stored so LoadModel can
  // reproduce the exact placement.
  const runtime::LoweringOptions& lo = snap->lowering;
  WritePod<std::uint64_t>(payload_os, lo.switch_model.num_stages);
  WritePod<std::uint64_t>(payload_os, lo.switch_model.sram_bits_per_stage);
  WritePod<std::uint64_t>(payload_os, lo.switch_model.tcam_bits_per_stage);
  WritePod<std::uint64_t>(payload_os,
                          lo.switch_model.action_bus_bits_per_stage);
  WritePod<std::uint64_t>(payload_os, lo.switch_model.phv_bits);
  WritePod<double>(payload_os, lo.switch_model.line_rate_bits_per_sec);
  WritePod<std::uint64_t>(payload_os, lo.stateful_bits_per_flow);
  WritePod<std::uint64_t>(payload_os, lo.max_ternary_entries_per_table);
  core::SaveCompiledModel(payload_os, *snap->compiled);

  const std::string payload = std::move(payload_os).str();
  WritePod(os, kRegistryArtifactMagic);
  WritePod(os, kRegistryArtifactVersion);
  WritePod<std::uint64_t>(os, payload.size());
  WritePod<std::uint32_t>(os,
                          dataplane::Crc32(payload.data(), payload.size()));
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!os) {
    throw std::runtime_error("ModelRegistry::SaveModel: write failed");
  }
}

ModelRegistry::Snapshot ModelRegistry::LoadModel(std::istream& is) {
  if (ReadPod<std::uint64_t>(is) != kRegistryArtifactMagic) {
    throw core::CorruptArtifactError("ModelRegistry::LoadModel: bad magic");
  }
  if (ReadPod<std::uint32_t>(is) != kRegistryArtifactVersion) {
    throw core::CorruptArtifactError(
        "ModelRegistry::LoadModel: unsupported envelope version");
  }
  const std::uint64_t payload_size = core::ReadLength<std::uint64_t>(
      is, "ModelRegistry::LoadModel", kMaxEnvelopePayloadBytes);
  const auto expected_crc = ReadPod<std::uint32_t>(is);
  std::string payload(payload_size, '\0');
  is.read(payload.data(), static_cast<std::streamsize>(payload_size));
  if (!is) {
    throw core::CorruptArtifactError(
        "ModelRegistry::LoadModel: truncated payload");
  }
  const std::uint32_t actual_crc =
      dataplane::Crc32(payload.data(), payload.size());
  if (actual_crc != expected_crc) {
    throw core::CorruptArtifactError(
        "ModelRegistry::LoadModel: CRC mismatch (corrupt envelope)");
  }

  std::istringstream ps(std::move(payload), std::ios::binary);
  const auto name_len =
      core::ReadLength<std::uint32_t>(ps, "ModelRegistry::LoadModel", 4096);
  std::string name(name_len, '\0');
  ps.read(name.data(), name_len);
  if (!ps) {
    throw core::CorruptArtifactError(
        "ModelRegistry::LoadModel: truncated name");
  }
  const auto version = ReadPod<std::uint64_t>(ps);

  runtime::LoweringOptions lo;
  lo.switch_model.num_stages = ReadPod<std::uint64_t>(ps);
  lo.switch_model.sram_bits_per_stage = ReadPod<std::uint64_t>(ps);
  lo.switch_model.tcam_bits_per_stage = ReadPod<std::uint64_t>(ps);
  lo.switch_model.action_bus_bits_per_stage = ReadPod<std::uint64_t>(ps);
  lo.switch_model.phv_bits = ReadPod<std::uint64_t>(ps);
  lo.switch_model.line_rate_bits_per_sec = ReadPod<double>(ps);
  lo.stateful_bits_per_flow = ReadPod<std::uint64_t>(ps);
  lo.max_ternary_entries_per_table = ReadPod<std::uint64_t>(ps);

  compiler::VersionedModel vm =
      compiler::CompileVersioned(core::LoadCompiledModel(ps), lo);
  vm.name = name;
  vm.version = version;

  auto snap = std::make_shared<const compiler::VersionedModel>(std::move(vm));
  std::lock_guard<std::mutex> lock(mu_);
  auto& versions = models_[name];
  if (versions.count(version) != 0) {
    throw std::invalid_argument("ModelRegistry::LoadModel: " + name + " v" +
                                std::to_string(version) +
                                " is already published");
  }
  versions.emplace(version, snap);
  return snap;
}

void ModelRegistry::SaveModelToFile(const std::string& path,
                                    const std::string& name,
                                    std::uint64_t version) const {
  std::ostringstream os(std::ios::binary);
  SaveModel(os, name, version);
  std::string bytes = std::move(os).str();

  // Fault sites modeling corruption the atomic rename cannot prevent: the
  // bytes are damaged before they reach the disk (bad DMA, bit rot, a
  // buggy transfer). The CRC seal is what catches these at load time.
  if (runtime::FaultFires(runtime::FaultSite::kEnvelopeBitFlip) &&
      !bytes.empty()) {
    const std::uint64_t param =
        runtime::FaultInjector::Instance().Param(
            runtime::FaultSite::kEnvelopeBitFlip);
    // Flip a payload byte (past the 24-byte header) so the damage is
    // CRC-detected rather than magic-detected — the harder case.
    const std::size_t header = bytes.size() > 24 ? 24 : 0;
    const std::size_t index = header + param % (bytes.size() - header);
    bytes[index] = static_cast<char>(bytes[index] ^ (1u << (param % 8)));
  }
  if (runtime::FaultFires(runtime::FaultSite::kEnvelopeTruncate)) {
    bytes.resize(bytes.size() / 2);
  }

  // Tmp-file + rename publish: readers of `path` see the old complete
  // artifact or the new complete artifact, never a partial write.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("ModelRegistry::SaveModelToFile: cannot open " +
                               tmp);
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      throw std::runtime_error(
          "ModelRegistry::SaveModelToFile: write failed for " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw std::runtime_error("ModelRegistry::SaveModelToFile: rename to " +
                             path + " failed");
  }
}

ModelRegistry::Snapshot ModelRegistry::LoadModelFromFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw core::CorruptArtifactError(
        "ModelRegistry::LoadModelFromFile: cannot open " + path);
  }
  return LoadModel(in);
}

}  // namespace pegasus::control
