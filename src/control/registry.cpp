#include "control/registry.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "core/serialize.hpp"
#include "core/stream_io.hpp"

namespace pegasus::control {

namespace {

using core::WritePod;

// Shared helper from core/stream_io.hpp; the local wrapper just pins the
// loader name reported on truncation.
template <typename T>
T ReadPod(std::istream& is) {
  return core::ReadPod<T>(is, "ModelRegistry::LoadModel");
}

}  // namespace

std::uint64_t ModelRegistry::Publish(const std::string& name,
                                     compiler::VersionedModel artifact) {
  if (artifact.lowered == nullptr || artifact.compiled == nullptr) {
    throw std::invalid_argument(
        "ModelRegistry::Publish: artifact is missing its compiled/lowered "
        "model (use compiler::CompileVersioned)");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto& versions = models_[name];
  const std::uint64_t version =
      versions.empty() ? 1 : versions.rbegin()->first + 1;
  artifact.name = name;
  artifact.version = version;
  versions.emplace(
      version, std::make_shared<const compiler::VersionedModel>(
                   std::move(artifact)));
  return version;
}

ModelRegistry::Snapshot ModelRegistry::Get(const std::string& name,
                                           std::uint64_t version) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto ni = models_.find(name);
  if (ni == models_.end()) return nullptr;
  const auto vi = ni->second.find(version);
  return vi == ni->second.end() ? nullptr : vi->second;
}

ModelRegistry::Snapshot ModelRegistry::Latest(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto ni = models_.find(name);
  if (ni == models_.end() || ni->second.empty()) return nullptr;
  return ni->second.rbegin()->second;
}

std::vector<std::string> ModelRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, versions] : models_) {
    if (!versions.empty()) names.push_back(name);
  }
  return names;
}

std::vector<std::uint64_t> ModelRegistry::Versions(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::uint64_t> out;
  const auto ni = models_.find(name);
  if (ni == models_.end()) return out;
  out.reserve(ni->second.size());
  for (const auto& [version, snapshot] : ni->second) out.push_back(version);
  return out;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [name, versions] : models_) n += versions.size();
  return n;
}

void ModelRegistry::SaveModel(std::ostream& os, const std::string& name,
                              std::uint64_t version) const {
  const Snapshot snap = Get(name, version);
  if (snap == nullptr) {
    throw std::out_of_range("ModelRegistry::SaveModel: unknown model " +
                            name + " v" + std::to_string(version));
  }
  WritePod(os, kRegistryArtifactMagic);
  WritePod(os, kRegistryArtifactVersion);
  WritePod<std::uint32_t>(os, static_cast<std::uint32_t>(snap->name.size()));
  os.write(snap->name.data(),
           static_cast<std::streamsize>(snap->name.size()));
  WritePod<std::uint64_t>(os, snap->version);
  // Lowering knobs: the switch model the artifact was placed against plus
  // the per-flow state and expansion-cap options. Stored so LoadModel can
  // reproduce the exact placement.
  const runtime::LoweringOptions& lo = snap->lowering;
  WritePod<std::uint64_t>(os, lo.switch_model.num_stages);
  WritePod<std::uint64_t>(os, lo.switch_model.sram_bits_per_stage);
  WritePod<std::uint64_t>(os, lo.switch_model.tcam_bits_per_stage);
  WritePod<std::uint64_t>(os, lo.switch_model.action_bus_bits_per_stage);
  WritePod<std::uint64_t>(os, lo.switch_model.phv_bits);
  WritePod<double>(os, lo.switch_model.line_rate_bits_per_sec);
  WritePod<std::uint64_t>(os, lo.stateful_bits_per_flow);
  WritePod<std::uint64_t>(os, lo.max_ternary_entries_per_table);
  core::SaveCompiledModel(os, *snap->compiled);
}

ModelRegistry::Snapshot ModelRegistry::LoadModel(std::istream& is) {
  if (ReadPod<std::uint64_t>(is) != kRegistryArtifactMagic) {
    throw std::runtime_error("ModelRegistry::LoadModel: bad magic");
  }
  if (ReadPod<std::uint32_t>(is) != kRegistryArtifactVersion) {
    throw std::runtime_error(
        "ModelRegistry::LoadModel: unsupported envelope version");
  }
  const auto name_len = ReadPod<std::uint32_t>(is);
  // Sanity-cap before allocating: a corrupt length field must surface as
  // the documented runtime_error, not a multi-GiB bad_alloc.
  if (name_len > 4096) {
    throw std::runtime_error(
        "ModelRegistry::LoadModel: implausible name length (corrupt "
        "envelope)");
  }
  std::string name(name_len, '\0');
  is.read(name.data(), name_len);
  if (!is) {
    throw std::runtime_error("ModelRegistry::LoadModel: truncated name");
  }
  const auto version = ReadPod<std::uint64_t>(is);

  runtime::LoweringOptions lo;
  lo.switch_model.num_stages = ReadPod<std::uint64_t>(is);
  lo.switch_model.sram_bits_per_stage = ReadPod<std::uint64_t>(is);
  lo.switch_model.tcam_bits_per_stage = ReadPod<std::uint64_t>(is);
  lo.switch_model.action_bus_bits_per_stage = ReadPod<std::uint64_t>(is);
  lo.switch_model.phv_bits = ReadPod<std::uint64_t>(is);
  lo.switch_model.line_rate_bits_per_sec = ReadPod<double>(is);
  lo.stateful_bits_per_flow = ReadPod<std::uint64_t>(is);
  lo.max_ternary_entries_per_table = ReadPod<std::uint64_t>(is);

  compiler::VersionedModel vm =
      compiler::CompileVersioned(core::LoadCompiledModel(is), lo);
  vm.name = name;
  vm.version = version;

  auto snap = std::make_shared<const compiler::VersionedModel>(std::move(vm));
  std::lock_guard<std::mutex> lock(mu_);
  auto& versions = models_[name];
  if (versions.count(version) != 0) {
    throw std::invalid_argument("ModelRegistry::LoadModel: " + name + " v" +
                                std::to_string(version) +
                                " is already published");
  }
  versions.emplace(version, snap);
  return snap;
}

}  // namespace pegasus::control
